package diffusion_test

import (
	"bytes"
	"crypto/sha256"
	"testing"
	"time"

	"diffusion"
)

// The sharded kernel's contract: a run is a pure function of its seed —
// not of the shard count, not of goroutine scheduling. These tests assert
// it end to end, on the full protocol stack, by comparing the exported
// JSONL trace and the metrics snapshot byte for byte.

// detRun executes a loaded testbed scenario — four sources reporting to
// the sink over the lossy default channel, with node churn injected — and
// returns the exported trace and metrics snapshot.
func detRun(t *testing.T, seed int64, shards int) (trace, metrics []byte) {
	return detRunSampled(t, seed, shards, 0)
}

// detRunSampled is detRun with flight-path tracing at the given sampling
// rate.
func detRunSampled(t *testing.T, seed int64, shards int, sampling float64) (trace, metrics []byte) {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:          seed,
		Topology:      diffusion.TestbedTopology(),
		Shards:        shards,
		TraceSampling: sampling,
	})
	tr := net.NewTrace(0)
	interest, publication := surveillance()
	net.Node(diffusion.TestbedSink).Subscribe(interest, func(*diffusion.Message) {})
	for _, id := range diffusion.TestbedSources() {
		src := net.Node(id)
		pub := src.Publish(publication)
		seq := int32(0)
		net.Every(2*time.Second, func() {
			seq++
			src.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			})
		})
	}
	inj := net.NewFaultInjector()
	inj.Churn(diffusion.ChurnConfig{
		Start: 30 * time.Second,
		Stop:  4 * time.Minute,
		MTBF:  time.Minute,
		MTTR:  20 * time.Second,
		Nodes: []uint32{20, 21, 24},
	})
	net.Run(5 * time.Minute)
	var tb, mb bytes.Buffer
	if err := tr.ExportJSONL(&tb); err != nil {
		t.Fatalf("export: %v", err)
	}
	net.MetricsSnapshot().Write(&mb)
	return tb.Bytes(), mb.Bytes()
}

func TestSameSeedIdenticalTraceHash(t *testing.T) {
	t1, m1 := detRun(t, 42, 1)
	t2, m2 := detRun(t, 42, 1)
	if sha256.Sum256(t1) != sha256.Sum256(t2) {
		t.Error("same seed produced different traces")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("same seed produced different metrics snapshots")
	}
	t3, _ := detRun(t, 43, 1)
	if sha256.Sum256(t1) == sha256.Sum256(t3) {
		t.Error("different seeds produced identical traces")
	}
}

func TestShardCountInvarianceTestbed(t *testing.T) {
	// Parallel runs at any shard count must be byte-identical to the
	// sequential run — the acceptance bar for the sharded kernel.
	baseTrace, baseMetrics := detRun(t, 42, 1)
	if len(baseTrace) == 0 {
		t.Fatal("sequential run produced an empty trace")
	}
	for _, shards := range []int{2, 4, 7} {
		tr, m := detRun(t, 42, shards)
		if !bytes.Equal(tr, baseTrace) {
			t.Errorf("shards=%d: trace differs from sequential run (%d vs %d bytes)",
				shards, len(tr), len(baseTrace))
		}
		if !bytes.Equal(m, baseMetrics) {
			t.Errorf("shards=%d: metrics snapshot differs from sequential run", shards)
		}
	}
}

// TestShardCountInvarianceTraced is shard invariance with flight-path
// tracing sampled at 100%: the span records merged into the exported
// trace must be byte-identical at any shard count — per-node rings plus
// a deterministic merge, never cross-shard state.
func TestShardCountInvarianceTraced(t *testing.T) {
	baseTrace, baseMetrics := detRunSampled(t, 42, 1, 1.0)
	if !bytes.Contains(baseTrace, []byte(`"flow":`)) {
		t.Fatal("sampled run exported no flight-path spans")
	}
	for _, shards := range []int{2, 7} {
		tr, m := detRunSampled(t, 42, shards, 1.0)
		if !bytes.Equal(tr, baseTrace) {
			t.Errorf("shards=%d: traced run differs from sequential run (%d vs %d bytes)",
				shards, len(tr), len(baseTrace))
		}
		if !bytes.Equal(m, baseMetrics) {
			t.Errorf("shards=%d: traced metrics differ from sequential run", shards)
		}
	}
	// Sub-unity sampling must be deterministic too (it draws from the
	// per-node streams), and tracing off must stay byte-identical to the
	// pre-trace baseline scenario.
	p1, _ := detRunSampled(t, 42, 1, 0.25)
	p2, _ := detRunSampled(t, 42, 4, 0.25)
	if !bytes.Equal(p1, p2) {
		t.Error("25% sampling: shard count changed the trace")
	}
	off, _ := detRunSampled(t, 42, 1, 0)
	base, _ := detRun(t, 42, 1)
	if !bytes.Equal(off, base) {
		t.Error("sampling=0 run differs from untraced run")
	}
}

// gridRun exercises shard invariance on a 16x16 grid — 256 nodes, many
// per shard, with shard boundaries cutting through active radio
// neighborhoods.
func gridRun(t *testing.T, shards int) (trace, metrics []byte) {
	t.Helper()
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     7,
		Topology: diffusion.GridTopology(16, 16, 9),
		Shards:   shards,
	})
	tr := net.NewTrace(0)
	interest, publication := surveillance()
	// Sink in one corner, sources in the other three: traffic crosses
	// every strip of the partition.
	net.Node(1).Subscribe(interest, func(*diffusion.Message) {})
	for _, id := range []uint32{16, 241, 256} {
		src := net.Node(id)
		pub := src.Publish(publication)
		seq := int32(0)
		net.Every(5*time.Second, func() {
			seq++
			src.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			})
		})
	}
	net.Run(2 * time.Minute)
	var tb, mb bytes.Buffer
	if err := tr.ExportJSONL(&tb); err != nil {
		t.Fatalf("export: %v", err)
	}
	net.MetricsSnapshot().Write(&mb)
	return tb.Bytes(), mb.Bytes()
}

func TestShardCountInvarianceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("256-node grid run")
	}
	baseTrace, baseMetrics := gridRun(t, 1)
	if len(baseTrace) == 0 {
		t.Fatal("sequential run produced an empty trace")
	}
	for _, shards := range []int{4, 6} {
		tr, m := gridRun(t, shards)
		if !bytes.Equal(tr, baseTrace) {
			t.Errorf("shards=%d: grid trace differs from sequential run", shards)
		}
		if !bytes.Equal(m, baseMetrics) {
			t.Errorf("shards=%d: grid metrics differ from sequential run", shards)
		}
	}
}
