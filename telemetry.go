package diffusion

import (
	"fmt"
	"io"
	"sort"
	"time"

	"diffusion/internal/telemetry"
)

// Telemetry types, re-exported from the telemetry layer. The network
// wires a MetricsRegistry per node (plus one named "channel" for the
// shared medium) and an always-on FlightRecorder per full-diffusion node;
// see Metrics, MetricsSnapshot and FlightRecorder.
type (
	// MetricsRegistry is one scope's named counters, gauges and histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time view of every metric, per scope
	// and summed network-wide.
	MetricsSnapshot = telemetry.Snapshot
	// FlightRecorder is a fixed-size always-on ring of recent per-node
	// protocol activity, dumped when something goes wrong.
	FlightRecorder = telemetry.Flight
	// TraceRecord is one structured (JSONL/Chrome-exportable) trace record.
	TraceRecord = telemetry.Record
	// TraceRunInfo is the self-describing header of an exported trace.
	TraceRunInfo = telemetry.RunInfo
	// Span is one flight-path event: a sampled message touching one layer
	// of one node (see NetworkConfig.TraceSampling).
	Span = telemetry.Span
	// SpanRing is a bounded per-node ring of flight-path spans.
	SpanRing = telemetry.SpanRing
)

// Telemetry returns the network-wide metrics hub (advanced use: register
// extra scopes; most callers want MetricsSnapshot).
func (net *Network) Telemetry() *telemetry.Hub { return net.hub }

// Metrics returns the metrics registry of the node (or mote) with the
// given topology ID; application code and filters register their own
// counters here. It panics on unknown IDs (a configuration error).
func (net *Network) Metrics(id uint32) *MetricsRegistry {
	r, ok := net.regs[id]
	if !ok {
		panic(fmt.Sprintf("diffusion: no node %d in topology %q", id, net.cfg.Topology.Name))
	}
	return r
}

// MetricsSnapshot reads every layer's counters across every node — radio,
// MAC, diffusion core, energy — keyed on the simulation clock. Equal
// seeds produce identical snapshots at identical times.
func (net *Network) MetricsSnapshot() MetricsSnapshot { return net.hub.Snapshot() }

// FlightRecorder returns the node's flight-recorder ring. It panics on
// unknown or mote IDs (motes are not flight-recorded).
func (net *Network) FlightRecorder(id uint32) *FlightRecorder {
	f, ok := net.flights[id]
	if !ok {
		panic(fmt.Sprintf("diffusion: no flight recorder for node %d in topology %q", id, net.cfg.Topology.Name))
	}
	return f
}

// Spans returns the node's flight-path span ring, or nil when
// NetworkConfig.TraceSampling is zero (or for mote IDs — motes are not
// traced).
func (net *Network) Spans(id uint32) *SpanRing { return net.spans[id] }

// SpanRecords converts every node's recorded spans into structured trace
// records, merged across nodes into one deterministic timeline: ordered
// by timestamp, ties broken by topology order (each node's ring is
// already in its own event order). Empty when tracing is off.
func (net *Network) SpanRecords() []TraceRecord {
	var out []TraceRecord
	for _, id := range net.order {
		ring, ok := net.spans[id]
		if !ok {
			continue
		}
		for _, sp := range ring.Spans() {
			out = append(out, sp.TraceRecord())
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].US < out[j].US })
	return out
}

// SetFlightDump directs an automatic flight-recorder dump of the affected
// node(s) to w on every subsequent fault event. nil disables dumping (the
// rings keep recording either way).
func (net *Network) SetFlightDump(w io.Writer) { net.flightSink = w }

// DumpFlightRecorders writes every node's flight-recorder ring to w, in
// topology order — call it from a failing test to make the run
// self-diagnosing.
func (net *Network) DumpFlightRecorders(w io.Writer) {
	for _, id := range net.order {
		if f, ok := net.flights[id]; ok {
			fmt.Fprintf(w, "--- node %d ---\n", id)
			f.Dump(w, faultKindName)
		}
	}
}

// faultKindName renders a FlightRecord fault kind.
func faultKindName(k uint8) string { return FaultKind(k).String() }

// recordFaultFlight stamps ev into the affected nodes' flight recorders
// and, when a dump sink is set, dumps those rings.
func (net *Network) recordFaultFlight(ev FaultEvent) {
	affected := make([]uint32, 0, 2)
	stamp := func(id, peer uint32) {
		f, ok := net.flights[id]
		if !ok {
			return
		}
		f.Record(telemetry.FlightRecord{
			At: ev.At, Node: id, Peer: peer,
			Verb: telemetry.VerbFault, Kind: uint8(ev.Kind),
		})
		affected = append(affected, id)
	}
	switch ev.Kind {
	case FaultLinkDown, FaultLinkUp:
		stamp(ev.Node, ev.Peer)
		stamp(ev.Peer, ev.Node)
	default:
		stamp(ev.Node, 0)
	}
	if net.flightSink == nil {
		return
	}
	fmt.Fprintf(net.flightSink, "flight dump on fault: %v\n", ev)
	for _, id := range affected {
		fmt.Fprintf(net.flightSink, "--- node %d ---\n", id)
		net.flights[id].Dump(net.flightSink, faultKindName)
	}
}

// RunInfo describes this network's configuration as a trace header:
// seed, topology and the protocol rates with defaults applied — enough to
// rebuild the network and replay the run.
func (net *Network) RunInfo() TraceRunInfo {
	cfg := net.cfg
	ii := cfg.InterestInterval
	if ii <= 0 {
		ii = 60 * time.Second
	}
	gl := cfg.GradientLifetime
	if gl <= 0 {
		gl = ii*2 + ii/2
	}
	ei := cfg.ExploratoryInterval
	if ei <= 0 && cfg.ExploratoryEvery <= 0 {
		ei = 60 * time.Second
	}
	ttl := int(cfg.TTL)
	if ttl == 0 {
		ttl = 16
	}
	info := TraceRunInfo{
		Seed:             cfg.Seed,
		Topology:         cfg.Topology.Name,
		Nodes:            len(net.order),
		InterestInterval: ii.String(),
		GradientLifetime: gl.String(),
		ExploratoryEvery: cfg.ExploratoryEvery,
		TTL:              ttl,
	}
	if ei > 0 {
		info.ExploratoryInterval = ei.String()
	}
	return info
}
