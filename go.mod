module diffusion

go 1.22
