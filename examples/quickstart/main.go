// Quickstart: the smallest useful diffusion network — a three-node line
// with a sink subscribing to temperature readings and a source publishing
// them, run for five simulated minutes over the lossy 13 kb/s radio.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"diffusion"
)

func main() {
	// Three nodes in a line, 10 m apart: 1 (sink) - 2 (relay) - 3 (source).
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     1,
		Topology: diffusion.LineTopology(3, 10),
	})

	// The sink names the data it wants with attribute formals. This is
	// low-level naming: no addresses, no routes, just attributes.
	sink := net.Node(1)
	received := 0
	sink.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "temperature"),
		diffusion.Int32(diffusion.KeyInterval, diffusion.IS, 5000),
	}, func(m *diffusion.Message) {
		received++
		val, _ := m.Attrs.FindActual(diffusion.KeyIntensity)
		seq, _ := m.Attrs.FindActual(diffusion.KeySequence)
		fmt.Printf("[%8v] sink got reading #%v: %v°C (%v)\n",
			net.Now().Truncate(time.Millisecond), seq.Val, val.Val, m.Class)
	})

	// The source publishes matching actuals and reports every 5 seconds.
	// Data leaves the node only once the sink's interest establishes
	// gradients; the first message is exploratory and floods, the rest
	// follow the reinforced path.
	source := net.Node(3)
	pub := source.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.IS, "temperature"),
	})
	seq := int32(0)
	net.Every(5*time.Second, func() {
		seq++
		source.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Float64(diffusion.KeyIntensity, diffusion.IS, 20+float64(seq%5)),
		})
	})

	net.Run(5 * time.Minute) // virtual time: completes in milliseconds

	fmt.Printf("\ndelivered %d of %d readings over a lossy 2-hop path\n", received, seq)
	fmt.Printf("diffusion bytes sent network-wide: %d\n", net.TotalDiffusionBytes())
	fmt.Printf("channel: %+v\n", net.ChannelStats())
}
