// Nestedquery: the paper's section 5.2 application — a user wants acoustic
// data correlated with light sensors. The nested implementation tasks the
// audio sensor, which sub-tasks the nearby light sensors itself
// (localizing their chatter one hop away), instead of hauling every light
// report across the network to the user. The example runs both variants on
// the paper's testbed topology and compares event delivery.
//
//	go run ./examples/nestedquery
package main

import (
	"fmt"
	"time"

	"diffusion"
)

func main() {
	nested := run(true)
	flat := run(false)
	fmt.Println()
	fmt.Printf("nested query: %2d%% of light-change events produced audio at the user\n", nested)
	fmt.Printf("flat query:   %2d%%\n", flat)
	fmt.Println("(section 5.2: nesting localizes the light traffic next to the audio")
	fmt.Println(" sensor — 1 hop — instead of crossing the network to the user — 3 hops;")
	fmt.Println(" note the nested variant also moves ~40% fewer diffusion bytes)")
}

func run(nested bool) int {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     1,
		Topology: diffusion.TestbedTopology(),
	})
	user := net.Node(diffusion.TestbedUser)
	audio := net.Node(diffusion.TestbedAudio)
	lights := diffusion.TestbedSources()[:2]

	// Light sensors toggle their simulated state every minute and report
	// it every 2 seconds; the first report after a toggle is the change
	// event.
	toggle := 0
	reported := make([]int, len(lights))
	var pubs []diffusion.PublicationHandle
	for _, id := range lights {
		pubs = append(pubs, net.Node(id).Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "light"),
		}))
	}
	net.Every(time.Minute, func() { toggle++ })
	for i, id := range lights {
		i, id := i, id
		net.Every(2*time.Second, func() {
			change := int32(0)
			if toggle > reported[i] {
				reported[i] = toggle
				change = 1
			}
			net.Node(id).Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeyInstance, diffusion.IS, int32(id)),
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, int32(toggle)),
				diffusion.Int32(diffusion.KeyCount, diffusion.IS, change),
			})
		})
	}

	// The user hears audio either way.
	type ev struct{ light, k int32 }
	gotAudio := map[ev]bool{}
	user.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "audio"),
	}, func(m *diffusion.Message) {
		l, _ := m.Attrs.FindActual(diffusion.KeyInstance)
		k, _ := m.Attrs.FindActual(diffusion.KeySequence)
		gotAudio[ev{l.Val.Int32(), k.Val.Int32()}] = true
	})

	gotLight := map[ev]bool{}
	if nested {
		// The responder watches for the user's audio interest, then
		// sub-tasks the lights and reports audio per change — all with
		// the library's NestedQueryResponder.
		diffusion.NewNestedQueryResponder(diffusion.NestedQueryConfig{
			Node: audio.Node,
			TriggerWatch: diffusion.Attributes{
				diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
				diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
			},
			InitialInterest: diffusion.Attributes{
				diffusion.String(diffusion.KeyType, diffusion.EQ, "light"),
			},
			Publication: diffusion.Attributes{
				diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
			},
			OnInitial: func(m *diffusion.Message) diffusion.Attributes {
				c, ok := m.Attrs.FindActual(diffusion.KeyCount)
				if !ok || c.Val.Int32() != 1 {
					return nil // not a change event: stay silent
				}
				l, _ := m.Attrs.FindActual(diffusion.KeyInstance)
				k, _ := m.Attrs.FindActual(diffusion.KeySequence)
				return diffusion.Attributes{l, k}
			},
		})
	} else {
		// Flat: the user subscribes to the lights across the whole
		// network and the audio node reports on the known schedule.
		user.Subscribe(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.EQ, "light"),
		}, func(m *diffusion.Message) {
			c, ok := m.Attrs.FindActual(diffusion.KeyCount)
			if !ok || c.Val.Int32() != 1 {
				return
			}
			l, _ := m.Attrs.FindActual(diffusion.KeyInstance)
			k, _ := m.Attrs.FindActual(diffusion.KeySequence)
			if k.Val.Int32() > 0 {
				gotLight[ev{l.Val.Int32(), k.Val.Int32()}] = true
			}
		})
		audioPub := audio.Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "audio"),
		})
		net.Every(time.Minute, func() {
			for _, id := range lights {
				audio.Send(audioPub, diffusion.Attributes{
					diffusion.Int32(diffusion.KeyInstance, diffusion.IS, int32(id)),
					diffusion.Int32(diffusion.KeySequence, diffusion.IS, int32(toggle)),
				})
			}
		})
	}

	net.Run(20 * time.Minute)

	success, possible := 0, 0
	for _, id := range lights {
		for k := 1; k <= toggle; k++ {
			possible++
			e := ev{int32(id), int32(k)}
			if nested {
				if gotAudio[e] {
					success++
				}
			} else if gotAudio[e] && gotLight[e] {
				success++
			}
		}
	}
	mode := "flat  "
	if nested {
		mode = "nested"
	}
	fmt.Printf("%s: %d/%d events delivered, %d diffusion bytes\n",
		mode, success, possible, net.TotalDiffusionBytes())
	return 100 * success / possible
}
