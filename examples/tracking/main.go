// Tracking: the paper's section 3.2 worked example — a user tasks a field
// of sensors to watch for four-legged animals in a rectangular region, with
// the section 5.1 in-network aggregation filters suppressing duplicate
// detections, and geographic scoping keeping interests out of irrelevant
// parts of the field.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"time"

	"diffusion"
)

const radioRange = 13.5

func main() {
	// A 5x5 grid of sensors, 10 m apart. The user is at the corner (node
	// 1); animals wander the far quadrant.
	tp := diffusion.GridTopology(5, 5, 10)
	net := diffusion.NewNetwork(diffusion.NetworkConfig{Seed: 7, Topology: tp})

	// Every node runs the duplicate-suppression aggregation filter and
	// geographic interest scoping, as the testbed did.
	for _, id := range net.IDs() {
		n := net.Node(id)
		net.NewSuppression(n, diffusion.SuppressionOptions{
			IdentityKeys: []diffusion.Key{diffusion.KeyType, diffusion.KeySequence},
		})
		net.NewGeoScope(n, radioRange)
	}

	// The user's interest, straight from the paper: "(type EQ
	// four-legged-animal-search, interval IS 20 ms, duration IS 10
	// seconds, x GE -100, x LE 200, y GE 100, y LE 400)" — here scaled to
	// the grid: the region x in [18, 45], y in [18, 45] covers the far
	// 3x3 corner.
	interest := diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "four-legged-animal-search"),
		diffusion.Int32(diffusion.KeyInterval, diffusion.IS, 2000),
		diffusion.Int32(diffusion.KeyDuration, diffusion.IS, 600000),
		diffusion.Float64(diffusion.KeyX, diffusion.GE, 18),
		diffusion.Float64(diffusion.KeyX, diffusion.LE, 45),
		diffusion.Float64(diffusion.KeyY, diffusion.GE, 18),
		diffusion.Float64(diffusion.KeyY, diffusion.LE, 45),
	}

	user := net.Node(1)
	detections := 0
	user.Subscribe(interest, func(m *diffusion.Message) {
		detections++
		inst, _ := m.Attrs.FindActual(diffusion.KeyInstance)
		conf, _ := m.Attrs.FindActual(diffusion.KeyConfidence)
		seq, _ := m.Attrs.FindActual(diffusion.KeySequence)
		fmt.Printf("[%8v] detection #%v: %v (confidence %v)\n",
			net.Now().Truncate(time.Millisecond), seq.Val, inst.Val, conf.Val)
	})

	// Sensors in the region detect the same animal (overlapping coverage,
	// as the paper's surveillance scenario assumes); each publishes with
	// its position as actuals so the region formals match.
	animals := []string{"elephant", "zebra", "wildebeest"}
	type sensor struct {
		n   *diffusion.Node
		pub diffusion.PublicationHandle
	}
	seq := int32(0)
	var sensors []sensor
	for _, id := range net.IDs() {
		p, _ := tp.Node(id)
		if p.X < 18 || p.Y < 18 {
			continue // outside the tasked region
		}
		n := net.Node(id)
		pub := n.Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "four-legged-animal-search"),
			diffusion.Float64(diffusion.KeyX, diffusion.IS, p.X),
			diffusion.Float64(diffusion.KeyY, diffusion.IS, p.Y),
		})
		sensors = append(sensors, sensor{n, pub})
	}
	fmt.Printf("%d sensors cover the tasked region\n", len(sensors))

	// Every 20 seconds an animal is sensed by every sensor in the region
	// (with a little per-sensor detection latency, as real signal
	// processing would have); the suppression filters collapse the
	// duplicates on the way back to the user.
	net.Every(20*time.Second, func() {
		seq++
		k := seq
		animal := animals[int(seq)%len(animals)]
		for i, sn := range sensors {
			sn := sn
			net.After(time.Duration(i)*300*time.Millisecond, func() {
				sn.n.Send(sn.pub, diffusion.Attributes{
					diffusion.String(diffusion.KeyInstance, diffusion.IS, animal),
					diffusion.Float64(diffusion.KeyConfidence, diffusion.IS, 0.85),
					diffusion.Int32(diffusion.KeySequence, diffusion.IS, k),
					diffusion.Int64(diffusion.KeyTimestamp, diffusion.IS, int64(net.Now()/time.Millisecond)),
				})
			})
		}
	})

	net.Run(10 * time.Minute)

	fmt.Printf("\n%d aggregated detections delivered for %d animal appearances\n", detections, seq)
	fmt.Printf("(each appearance triggered %d sensors; aggregation collapsed the duplicates)\n", len(sensors))
	fmt.Printf("network bytes: %d\n", net.TotalDiffusionBytes())
}
