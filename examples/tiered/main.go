// Tiered: the paper's section 4.3 deployment — a first tier of capable
// nodes running full diffusion, and a second tier of mote-class devices
// running micro-diffusion (single-tag gradients, 5 gradient slots, a
// 10-packet cache) behind a gateway. A user on the first tier asks for
// photo-sensor data by attributes; the gateway condenses the interest to a
// micro tag, the motes route readings up their gradients, and the gateway
// expands them back into attribute-named data.
//
//	go run ./examples/tiered
package main

import (
	"fmt"
	"time"

	"diffusion"
)

const tagPhoto diffusion.MoteTag = 42

func main() {
	// Topology: user(1) - relay(2) - gateway(3) on the first tier, then a
	// string of motes 4 - 5 - 6 on the second tier. Node 3 hosts both the
	// gateway's diffusion node and, conceptually, the mote radio; here
	// node 4 is the gateway-side mote.
	tp := diffusion.LineTopology(6, 10)
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:      3,
		Topology:  tp,
		MoteNodes: []uint32{4, 5, 6},
	})

	fmt.Printf("micro-diffusion static budget: %d gradients, %d-packet cache, %dB protocol state\n",
		diffusion.MoteMaxGradients, diffusion.MoteCacheSize, diffusion.MoteMemoryFootprint())

	gwNode := net.Node(3)
	gwMote := net.Mote(4)
	diffusion.NewGateway(gwNode, gwMote, []diffusion.GatewayMapping{{
		Tag: tagPhoto,
		Watch: diffusion.Attributes{
			diffusion.Int32(diffusion.KeyClass, diffusion.EQ, diffusion.ClassInterestValue),
			diffusion.String(diffusion.KeyType, diffusion.IS, "photo"),
		},
		Publication: diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "photo"),
		},
	}})

	// The user knows nothing about motes or tags: it just subscribes to
	// photo data by attributes.
	user := net.Node(1)
	received := 0
	user.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "photo"),
	}, func(m *diffusion.Message) {
		received++
		v, _ := m.Attrs.FindActual(diffusion.KeyIntensity)
		fmt.Printf("[%8v] user got photo level %v\n",
			net.Now().Truncate(time.Millisecond), v.Val)
	})

	// The far mote (6) samples its photo sensor every 10 seconds and
	// sends the 16-bit reading up the micro-diffusion gradients (6 -> 5
	// -> 4), where the gateway lifts it into the first tier.
	leaf := net.Mote(6)
	level := uint16(100)
	net.Every(10*time.Second, func() {
		level = (level + 7) % 256
		leaf.Send(tagPhoto, level)
	})

	net.Run(5 * time.Minute)

	fmt.Printf("\nuser received %d readings that crossed both tiers\n", received)
	fmt.Printf("gateway mote: %v\n", gwMote)
	fmt.Printf("leaf mote:    %v\n", leaf)
}
