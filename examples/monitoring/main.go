// Monitoring: the section 7 tooling in action — residual-energy scans of
// the whole testbed aggregated in-network, plus a reliable bulk transfer
// (a stored "camera snapshot") hauled across the lossy radio with
// NACK-driven repair.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"time"

	"diffusion"
)

func main() {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     9,
		Topology: diffusion.TestbedTopology(),
	})

	// A surveillance workload keeps the network busy (and drains energy).
	interest := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
	}
	net.Node(diffusion.TestbedSink).Subscribe(interest, nil)
	src := net.Node(13)
	pub := src.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
	})
	seq := int32(0)
	net.Every(6*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 50)),
		})
	})

	// Every node answers energy scans (battery budget in the model's
	// relative units) and folds passing replies into composites.
	for _, id := range net.IDs() {
		n := net.Node(id)
		net.NewEnergyScanResponder(n, 50_000, 1.0)
		net.NewScanAggregator(n, "energy-scan", time.Second)
	}
	collector := net.NewScanCollector(net.Node(diffusion.TestbedSink), "energy-scan", nil)

	// Scan after 5 and after 25 minutes of operation.
	var early, late int32
	net.After(5*time.Minute, func() { early = collector.Start() })
	net.After(25*time.Minute, func() { late = collector.Start() })

	// Meanwhile node 20 serves a 4KB "snapshot" that the user fetches
	// reliably over the same lossy radio.
	snapshot := make([]byte, 4096)
	for i := range snapshot {
		snapshot[i] = byte(i * 31)
	}
	net.OfferBulk(net.Node(diffusion.TestbedAudio), "snapshot-001", snapshot)
	var fetched []byte
	var fetchedAt time.Duration
	net.FetchBulk(net.Node(diffusion.TestbedUser), "snapshot-001", func(data []byte) {
		fetched = data
		fetchedAt = net.Now()
	})

	net.Run(30 * time.Minute)

	r1, r2 := collector.Result(early), collector.Result(late)
	fmt.Printf("energy scan @5min:  %v\n", r1)
	fmt.Printf("energy scan @25min: %v\n", r2)
	fmt.Printf("(residual energy falls as the radios burn their budget; the scan reaches\n")
	fmt.Printf(" the sink as a handful of in-network-aggregated composites, not %d messages)\n\n", len(net.IDs()))

	if fetched == nil {
		fmt.Println("bulk transfer incomplete within the run")
	} else {
		ok := len(fetched) == len(snapshot)
		for i := range fetched {
			ok = ok && fetched[i] == snapshot[i]
		}
		fmt.Printf("bulk transfer: %d bytes fetched intact=%v after %v over the lossy radio\n",
			len(fetched), ok, fetchedAt.Truncate(time.Second))
	}
}
