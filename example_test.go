package diffusion_test

import (
	"fmt"
	"time"

	"diffusion"
)

// Example demonstrates the core publish/subscribe flow on a three-node
// line: attribute-named interests, gradient setup, and delivery over the
// simulated radio.
func Example() {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     42,
		Topology: diffusion.LineTopology(3, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})

	sink := net.Node(1)
	sink.Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "temperature"),
	}, func(m *diffusion.Message) {
		v, _ := m.Attrs.FindActual(diffusion.KeyIntensity)
		fmt.Printf("reading: %v\n", v.Val)
	})

	source := net.Node(3)
	pub := source.Publish(diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.IS, "temperature"),
	})
	net.After(2*time.Second, func() {
		source.Send(pub, diffusion.Attributes{
			diffusion.Float64(diffusion.KeyIntensity, diffusion.IS, 21.5),
		})
	})
	net.Run(10 * time.Second)
	// Output: reading: 21.5
}

// ExampleMatch shows the paper's two-way matching rules: formals (EQ, GT,
// ...) in one set must be satisfied by actuals (IS) in the other.
func ExampleMatch() {
	interest := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "detectAnimal"),
		diffusion.Float64(diffusion.KeyConfidence, diffusion.GT, 0.5),
	}
	strong := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "detectAnimal"),
		diffusion.Float64(diffusion.KeyConfidence, diffusion.IS, 0.85),
	}
	weak := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "detectAnimal"),
		diffusion.Float64(diffusion.KeyConfidence, diffusion.IS, 0.3),
	}
	fmt.Println(diffusion.Match(interest, strong))
	fmt.Println(diffusion.Match(interest, weak))
	// Output:
	// true
	// false
}

// ExampleNetwork_NewSuppression shows in-network aggregation: two sources
// report the same event, and the suppression filter on the shared relay
// delivers it once.
func ExampleNetwork_NewSuppression() {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     7,
		Topology: diffusion.LineTopology(4, 10), // sink-relay-srcA-srcB
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	net.NewSuppression(net.Node(2), diffusion.SuppressionOptions{
		IdentityKeys: []diffusion.Key{diffusion.KeySequence},
	})

	deliveries := 0
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "watch"),
	}, func(*diffusion.Message) { deliveries++ })

	for _, id := range []uint32{3, 4} {
		n := net.Node(id)
		pub := n.Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyTask, diffusion.IS, "watch"),
		})
		net.After(2*time.Second, func() {
			n.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, 99),
			})
		})
	}
	net.Run(30 * time.Second)
	fmt.Printf("event delivered %d time(s)\n", deliveries)
	// Output: event delivered 1 time(s)
}

func ptr[T any](v T) *T { return &v }
