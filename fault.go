package diffusion

import (
	"diffusion/internal/fault"
)

// Fault-injection types, re-exported from the fault layer.
type (
	// FaultInjector schedules scripted and randomized faults on the
	// simulation clock; build one with NewFaultInjector.
	FaultInjector = fault.Injector
	// FaultEvent is one injected fault with its simulation timestamp.
	FaultEvent = fault.Event
	// FaultKind classifies fault events.
	FaultKind = fault.Kind
	// ChurnConfig drives MTBF/MTTR random node churn.
	ChurnConfig = fault.ChurnConfig
)

// Fault event kinds.
const (
	FaultNodeDown = fault.NodeDown
	FaultNodeUp   = fault.NodeUp
	FaultLinkDown = fault.LinkDown
	FaultLinkUp   = fault.LinkUp
)

// NewFaultInjector returns a fault injector bound to this network's clock.
// Faults fire deterministically from the network seed, so a failure
// scenario is as replayable as a fault-free run.
func (net *Network) NewFaultInjector() *FaultInjector {
	return fault.New(net.kern, (*faultTarget)(net))
}

// faultTarget adapts Network to fault.Target without exposing the crash
// plumbing as part of the injector itself.
type faultTarget Network

func (t *faultTarget) CrashNode(id uint32)  { (*Network)(t).CrashNode(id) }
func (t *faultTarget) RebootNode(id uint32) { (*Network)(t).RebootNode(id) }
func (t *faultTarget) SetLinkDown(a, b uint32, down bool) {
	(*Network)(t).SetLinkDown(a, b, down)
}
func (t *faultTarget) NodeEnergy(id uint32) float64 {
	return (*Network)(t).NodeEnergyConsumed(id)
}

// OnFault registers fn to observe every fault applied to the network
// (crashes, reboots, link blackouts), however injected. Traces use it to
// make churn runs self-describing.
func (net *Network) OnFault(fn func(FaultEvent)) {
	net.faultHooks = append(net.faultHooks, fn)
}

func (net *Network) notifyFault(k FaultKind, node, peer uint32) {
	ev := FaultEvent{At: net.Now(), Kind: k, Node: node, Peer: peer}
	for _, fn := range net.faultHooks {
		fn(ev)
	}
}

// CrashNode kills the full-diffusion node id mid-run: its radio goes
// silent in both directions, the MAC queue and reassembly state are
// dropped, and the diffusion core freezes with its timers cancelled.
// Everything in flight through the node is lost, exactly as when a
// testbed node loses power. Crashing a crashed node is a no-op; motes
// cannot be crashed (Node panics on mote IDs).
func (net *Network) CrashNode(id uint32) {
	n := net.Node(id)
	if net.down[id] {
		return
	}
	net.down[id] = true
	net.channel.SetNodeDown(id, true)
	n.MAC.Detach()
	n.Node.Detach()
	net.notifyFault(FaultNodeDown, id, 0)
}

// RebootNode restarts a crashed node with fresh protocol state: gradients,
// caches and reinforcement traces are gone, and the application layer
// re-subscribes and re-publishes (subscriptions resume their interest
// floods; each publication's next message is exploratory). Rebooting a
// live node is a no-op.
func (net *Network) RebootNode(id uint32) {
	n := net.Node(id)
	if !net.down[id] {
		return
	}
	delete(net.down, id)
	net.channel.SetNodeDown(id, false)
	n.MAC.Restart()
	n.Node.Restart()
	net.notifyFault(FaultNodeUp, id, 0)
}

// NodeDown reports whether id is currently crashed.
func (net *Network) NodeDown(id uint32) bool { return net.down[id] }

// SetLinkDown forces the directed radio link a→b into or out of blackout
// (see radio.Channel.SetLinkDown). Use a FaultInjector for scheduled,
// bidirectional blackouts and partitions.
func (net *Network) SetLinkDown(a, b uint32, down bool) {
	net.channel.SetLinkDown(a, b, down)
	if down {
		net.notifyFault(FaultLinkDown, a, b)
	} else {
		net.notifyFault(FaultLinkUp, a, b)
	}
}

// NodeEnergyConsumed returns the node's consumed radio energy in the
// paper's model units at full listen duty cycle — the budget the
// energy-depletion fault counts down.
func (net *Network) NodeEnergyConsumed(id uint32) float64 {
	return net.Node(id).Energy(PaperEnergyRatios(), net.Now(), 1.0).Total()
}

// ReinforcedPath walks the reinforced gradient chain for the given
// subscription attributes from the sink toward the data source: each hop
// is the neighbor the previous node last positively reinforced. The walk
// stops at maxHops, at a node with no reinforced upstream (the source, in
// a converged network), at a crashed node, or on a loop. The returned path
// starts with the sink itself. Fault experiments use it to find the relay
// whose death must be repaired.
func (net *Network) ReinforcedPath(sink uint32, attrs Attributes, maxHops int) []uint32 {
	if maxHops <= 0 {
		maxHops = 32
	}
	path := []uint32{sink}
	visited := map[uint32]bool{sink: true}
	cur := sink
	for len(path) <= maxHops {
		if net.down[cur] {
			break
		}
		next, ok := net.Node(cur).ReinforcedUpstream(attrs)
		if !ok || visited[next] {
			break
		}
		if _, isNode := net.nodes[next]; !isNode {
			break // upstream is a mote or unknown; stop the walk
		}
		path = append(path, next)
		visited[next] = true
		cur = next
	}
	return path
}
