package diffusion

import (
	"time"

	"diffusion/internal/congestion"
	"diffusion/internal/monitor"
	"diffusion/internal/reliable"
)

// This file exposes the higher-level services built on top of diffusion —
// in-network monitoring scans (paper section 7), reliable bulk transfer
// (section 3.1 future work), and closed-loop congestion control (section
// 6.4) — through the public facade.

// Monitoring scan types, re-exported.
type (
	// ScanReadings is a scan result: one reading per covered node.
	ScanReadings = monitor.Readings
	// ScanResponder answers scan interests with a local reading.
	ScanResponder = monitor.Responder
	// ScanAggregator folds scan replies hop-by-hop into composites.
	ScanAggregator = monitor.Aggregator
	// ScanCollector issues scans and accumulates the replies.
	ScanCollector = monitor.Collector
)

// NewScanResponder installs a scan responder on a node: it answers scans
// named task with the reading returned by read.
func (net *Network) NewScanResponder(n *Node, task string, read func() float64) *ScanResponder {
	env := net.NodeEnv(n.ID())
	return monitor.NewResponder(monitor.ResponderConfig{
		Node:  n.Node,
		Clock: env,
		Rand:  env.Rand(),
		Task:  task,
		Read:  read,
	})
}

// NewEnergyScanResponder installs a residual-energy responder driven by
// the node's measured radio activity and the section 6.1 energy model.
// battery is the node's budget in the model's relative units; dutyCycle is
// its listen duty cycle.
func (net *Network) NewEnergyScanResponder(n *Node, battery, dutyCycle float64) *ScanResponder {
	env := net.NodeEnv(n.ID())
	return monitor.NewEnergyResponder(monitor.ResponderConfig{
		Node:  n.Node,
		Clock: env,
		Rand:  env.Rand(),
	}, PaperEnergyRatios(), battery, func() (time.Duration, time.Duration) {
		st := n.MAC.Radio().Stats
		return st.TxTime, st.RxTime
	}, dutyCycle)
}

// NewScanAggregator installs the in-network folding filter for a scan task
// on a node.
func (net *Network) NewScanAggregator(n *Node, task string, window time.Duration) *ScanAggregator {
	return monitor.NewAggregator(n.Node, net.NodeEnv(n.ID()), task, window)
}

// NewScanCollector installs a scan collector on a node; cb (optional)
// fires as readings accumulate.
func (net *Network) NewScanCollector(n *Node, task string, cb func(id int32, r ScanReadings)) *ScanCollector {
	return monitor.NewCollector(n.Node, net.NodeEnv(n.ID()), task, cb)
}

// Reliable bulk transfer, re-exported.
type (
	// BulkSender serves a large object with NACK-driven repair.
	BulkSender = reliable.Sender
	// BulkReceiver fetches a large object.
	BulkReceiver = reliable.Receiver
	// BulkReceiverConfig configures FetchBulk.
	BulkReceiverConfig = reliable.ReceiverConfig
)

// OfferBulk serves a named object from a node.
func (net *Network) OfferBulk(n *Node, name string, data []byte) *BulkSender {
	env := net.NodeEnv(n.ID())
	return reliable.Offer(reliable.SenderConfig{
		Node:  n.Node,
		Clock: env,
		Rand:  env.Rand(),
		Name:  name,
	}, data)
}

// FetchBulk fetches a named object at a node, invoking onComplete with the
// reassembled bytes.
func (net *Network) FetchBulk(n *Node, name string, onComplete func([]byte)) *BulkReceiver {
	return reliable.Fetch(reliable.ReceiverConfig{
		Node:       n.Node,
		Clock:      net.NodeEnv(n.ID()),
		Name:       name,
		OnComplete: onComplete,
	})
}

// Congestion control, re-exported.
type (
	// FlowFeedback is the sink-side delivery reporter of a controlled flow.
	FlowFeedback = congestion.Feedback
	// FlowController is the source-side AIMD admission controller.
	FlowController = congestion.Controller
)

// NewFlowFeedback installs sink-side feedback for a named flow; the
// application calls Saw(seq) for each distinct event received.
func (net *Network) NewFlowFeedback(n *Node, flow string, window time.Duration) *FlowFeedback {
	return congestion.NewFeedback(congestion.FeedbackConfig{
		Node:   n.Node,
		Clock:  net.NodeEnv(n.ID()),
		Flow:   flow,
		Window: window,
	})
}

// NewFlowController installs source-side rate adaptation for a named flow;
// the application gates each send on Admit().
func (net *Network) NewFlowController(n *Node, flow string, window time.Duration) *FlowController {
	return congestion.NewController(congestion.ControllerConfig{
		Node:   n.Node,
		Clock:  net.NodeEnv(n.ID()),
		Flow:   flow,
		Window: window,
	})
}
