// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Custom metrics carry the figures' units (B/event, delivered%,
// ns/match); run with:
//
//	go test -bench=. -benchmem
package diffusion_test

import (
	"testing"
	"time"

	"diffusion"
	"diffusion/internal/attr"
	"diffusion/internal/energy"
	"diffusion/internal/experiments"
	"diffusion/internal/trafficmodel"
)

// BenchmarkFig8Aggregation regenerates Figure 8: bytes sent from all
// diffusion modules per distinct delivered event, with and without
// in-network suppression, for 1 and 4 sources. Each iteration is a
// 10-minute simulated testbed run.
func BenchmarkFig8Aggregation(b *testing.B) {
	for _, bc := range []struct {
		name        string
		sources     int
		suppression bool
	}{
		{"1source/with", 1, true},
		{"1source/without", 1, false},
		{"4sources/with", 4, true},
		{"4sources/without", 4, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := experiments.DefaultFig8()
			cfg.Duration = 10 * time.Minute
			var bytesPerEvent, delivery float64
			for i := 0; i < b.N; i++ {
				cfg.Seeds = []int64{int64(i + 1)}
				points := experiments.RunFig8Point(cfg, bc.sources, bc.suppression)
				bytesPerEvent += points.BytesPerEvent.Mean
				delivery += points.DeliveryRate.Mean
			}
			b.ReportMetric(bytesPerEvent/float64(b.N), "B/event")
			b.ReportMetric(100*delivery/float64(b.N), "delivered%")
		})
	}
}

// BenchmarkFig9Nested regenerates Figure 9: the percentage of light-change
// events delivering audio to the user, nested vs flat queries.
func BenchmarkFig9Nested(b *testing.B) {
	for _, bc := range []struct {
		name    string
		sensors int
		nested  bool
	}{
		{"1sensor/nested", 1, true},
		{"1sensor/flat", 1, false},
		{"4sensors/nested", 4, true},
		{"4sensors/flat", 4, false},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := experiments.DefaultFig9()
			cfg.Duration = 10 * time.Minute
			var rate float64
			for i := 0; i < b.N; i++ {
				cfg.Seeds = []int64{int64(i + 1)}
				p := experiments.RunFig9Point(cfg, bc.sensors, bc.nested)
				rate += p.Delivered.Mean
			}
			b.ReportMetric(100*rate/float64(b.N), "delivered%")
		})
	}
}

// BenchmarkMatching regenerates Figures 10/11: the cost of the two-way
// match between the paper's interest and data sets as set B grows, for the
// four series. ns/op is the figure's y-axis.
func BenchmarkMatching(b *testing.B) {
	for _, series := range []struct {
		name     string
		matching bool
		mode     string
	}{
		{"match-IS", true, "IS"},
		{"match-EQ", true, "EQ"},
		{"no-match-IS", false, "IS"},
		{"no-match-EQ", false, "EQ"},
	} {
		for _, size := range []int{6, 18, 30} {
			series := series
			b.Run(series.name+"/"+itoa(size), func(b *testing.B) {
				a := experiments.Fig10Interest()
				set := experiments.GrowDataSet(experiments.Fig10Data(series.matching), size, series.mode)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if attr.Match(a, set) != series.matching {
						b.Fatal("unexpected match result")
					}
				}
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [4]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkTrafficModel evaluates the section 6.1 analytic model and
// reports its headline numbers (990 flat aggregated, ~3300 at 4 sources).
func BenchmarkTrafficModel(b *testing.B) {
	p := trafficmodel.Testbed()
	var agg, four float64
	for i := 0; i < b.N; i++ {
		agg = p.BytesPerEvent(4, true).Total()
		four = p.BytesPerEvent(4, false).Total()
	}
	b.ReportMetric(agg, "B/event-agg")
	b.ReportMetric(four, "B/event-noagg")
}

// BenchmarkEnergyModel evaluates the section 6.1 energy model at the
// paper's three duty-cycle points.
func BenchmarkEnergyModel(b *testing.B) {
	r := energy.PaperRatios()
	var f1, f22, f10 float64
	for i := 0; i < b.N; i++ {
		f1 = r.AtDutyCycle(1).ListenFraction()
		f22 = r.AtDutyCycle(0.22).ListenFraction()
		f10 = r.AtDutyCycle(0.10).ListenFraction()
	}
	b.ReportMetric(100*f1, "listen%@d=1")
	b.ReportMetric(100*f22, "listen%@d=0.22")
	b.ReportMetric(100*f10, "listen%@d=0.10")
}

// BenchmarkMessageCodec measures the wire codec on a paper-sized event
// message (the per-hop processing cost below matching).
func BenchmarkMessageCodec(b *testing.B) {
	m := &diffusion.Message{
		Class: diffusion.ClassData,
		Attrs: diffusion.Attributes{
			diffusion.Int32(diffusion.KeyClass, diffusion.IS, diffusion.ClassDataValue),
			diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, 7),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, make([]byte, 50)),
		},
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = m.Marshal()
		}
	})
	enc := m.Marshal()
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := diffusion.UnmarshalMessage(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatedMinute measures simulator throughput: one virtual
// minute of the full 14-node testbed (radio, MAC, diffusion) per
// iteration, with a single active source.
func BenchmarkSimulatedMinute(b *testing.B) {
	for i := 0; i < b.N; i++ {
		net := diffusion.NewNetwork(diffusion.NetworkConfig{
			Seed:     int64(i + 1),
			Topology: diffusion.TestbedTopology(),
		})
		net.Node(diffusion.TestbedSink).Subscribe(diffusion.Attributes{
			diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
		}, nil)
		src := net.Node(13)
		pub := src.Publish(diffusion.Attributes{
			diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
		})
		seq := int32(0)
		net.Every(6*time.Second, func() {
			seq++
			src.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			})
		})
		net.Run(time.Minute)
	}
}

// BenchmarkTracing measures the cost of causal flight-path tracing on
// the BenchmarkSimulatedMinute workload at three sampling rates: off
// (the only extra work is a skipped nil check plus, at origination
// sites, nothing — the sampling RNG draw is not even taken), 1% (the
// production setting: one RNG draw per origination, spans only for the
// sampled flows), and 100% (every message records a span at every
// layer). The off/minute ratio is the tracing tax on untraced runs and
// must stay within noise of BenchmarkSimulatedMinute; the checked-in
// baseline is BENCH_tracing.json.
func BenchmarkTracing(b *testing.B) {
	for _, bc := range []struct {
		name     string
		sampling float64
	}{
		{"off", 0},
		{"sample-1pct", 0.01},
		{"sample-100pct", 1.0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			spans := 0
			for i := 0; i < b.N; i++ {
				net := diffusion.NewNetwork(diffusion.NetworkConfig{
					Seed:          int64(i + 1),
					Topology:      diffusion.TestbedTopology(),
					TraceSampling: bc.sampling,
				})
				net.Node(diffusion.TestbedSink).Subscribe(diffusion.Attributes{
					diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
				}, nil)
				src := net.Node(13)
				pub := src.Publish(diffusion.Attributes{
					diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
				})
				seq := int32(0)
				net.Every(6*time.Second, func() {
					seq++
					src.Send(pub, diffusion.Attributes{
						diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
					})
				})
				net.Run(time.Minute)
				spans += len(net.SpanRecords())
			}
			b.ReportMetric(float64(spans)/float64(b.N), "spans/run")
		})
	}
}

// BenchmarkKernelShards measures event-kernel throughput on a 1024-node
// grid at increasing shard counts: one virtual minute of the full stack
// with five active sources and four corner sinks per iteration. Sequential
// (shards=1) is the baseline; the parallel runs produce byte-identical
// traces (asserted in determinism_test.go), so any wall-clock difference
// here is pure kernel overhead or speedup. On a single-core host the
// parallel path can only show its overhead; speedup needs GOMAXPROCS > 1.
// The checked-in baseline is BENCH_kernel.json.
func BenchmarkKernelShards(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run("shards-"+itoa(shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultParallelScale()
				cfg.Duration = time.Minute
				wall, delivered, _ := experiments.MeasureParallelScale(cfg, shards)
				if delivered == 0 {
					b.Fatal("workload delivered nothing")
				}
				_ = wall
			}
		})
	}
}

// BenchmarkCompiledMatching quantifies the section 6.3 optimization
// ("segregating actuals from formals can reduce search time"): the
// pre-indexed matcher against the paper's scan, on the Figure 10 sets
// grown to 30 attributes.
func BenchmarkCompiledMatching(b *testing.B) {
	av := experiments.Fig10Interest()
	bv := experiments.GrowDataSet(experiments.Fig10Data(true), 30, "IS")
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !attr.Match(av, bv) {
				b.Fatal("must match")
			}
		}
	})
	ca, cb := attr.Compile(av), attr.Compile(bv)
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !attr.MatchCompiled(ca, cb) {
				b.Fatal("must match")
			}
		}
	})
}
