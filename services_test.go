package diffusion_test

import (
	"bytes"
	"testing"
	"time"

	"diffusion"
)

func TestFacadeScans(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     21,
		Topology: diffusion.LineTopology(4, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	for _, id := range net.IDs() {
		n := net.Node(id)
		id := id
		net.NewScanResponder(n, "queue-scan", func() float64 { return float64(id) })
		net.NewScanAggregator(n, "queue-scan", time.Second)
	}
	var last diffusion.ScanReadings
	col := net.NewScanCollector(net.Node(1), "queue-scan", func(_ int32, r diffusion.ScanReadings) {
		last = r
	})
	net.Run(2 * time.Second)
	id := col.Start()
	net.Run(30 * time.Second)
	r := col.Result(id)
	if r.Count() != 4 {
		t.Fatalf("scan covered %d/4: %v", r.Count(), r)
	}
	if r.Min() != 1 || r.Mean() != 2.5 {
		t.Errorf("readings: %v", r)
	}
	if last == nil || last.Count() == 0 {
		t.Error("collector callback never fired")
	}
}

func TestFacadeEnergyScan(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     22,
		Topology: diffusion.LineTopology(3, 10),
	})
	for _, id := range net.IDs() {
		net.NewEnergyScanResponder(net.Node(id), 100_000, 1.0)
	}
	col := net.NewScanCollector(net.Node(1), "energy-scan", nil)
	net.Run(time.Minute)
	id := col.Start()
	net.Run(time.Minute)
	r := col.Result(id)
	if r.Count() == 0 {
		t.Fatal("energy scan returned nothing")
	}
	if r.Min() <= 0 || r.Min() > 1 {
		t.Errorf("residual out of range: %v", r)
	}
}

func TestFacadeBulkTransfer(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     23,
		Topology: diffusion.LineTopology(3, 10),
	})
	blob := bytes.Repeat([]byte("sensor-snapshot:"), 64)
	net.OfferBulk(net.Node(3), "snap", blob)
	var got []byte
	net.FetchBulk(net.Node(1), "snap", func(b []byte) { got = b })
	net.Run(10 * time.Minute)
	if !bytes.Equal(got, blob) {
		t.Fatalf("bulk transfer: got %d bytes, want %d intact", len(got), len(blob))
	}
}

func TestFacadeFlowControl(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     24,
		Topology: diffusion.LineTopology(3, 10),
	})
	interest, publication := surveillance()
	fb := net.NewFlowFeedback(net.Node(1), "surveillance", 30*time.Second)
	net.Node(1).Subscribe(interest, func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			fb.Saw(a.Val.Int32())
		}
	})
	ctl := net.NewFlowController(net.Node(3), "surveillance", 30*time.Second)
	src := net.Node(3)
	pub := src.Publish(publication)
	seq := int32(0)
	net.Every(3*time.Second, func() {
		seq++
		if ctl.Admit() {
			src.Send(pub, diffusion.Attributes{diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq)})
		}
	})
	net.Run(10 * time.Minute)
	if fb.Reports == 0 || ctl.Offered == 0 {
		t.Errorf("flow control plumbing: reports=%d offered=%d", fb.Reports, ctl.Offered)
	}
	if ctl.Rate() <= 0 || ctl.Rate() > 1 {
		t.Errorf("rate out of range: %v", ctl.Rate())
	}
}

func TestFacadeFusion(t *testing.T) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     25,
		Topology: diffusion.LineTopology(3, 10),
		Radio:    ptr(diffusion.PerfectRadio()),
	})
	fu := net.NewFusion(net.Node(2), nil, 500*time.Millisecond)
	got := 0
	net.Node(1).Subscribe(diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "detect"),
	}, func(*diffusion.Message) { got++ })
	src := net.Node(3)
	pub := src.Publish(diffusion.Attributes{diffusion.String(diffusion.KeyTask, diffusion.IS, "detect")})
	net.After(2*time.Second, func() {
		src.Send(pub, diffusion.Attributes{
			diffusion.String(diffusion.KeyType, diffusion.IS, "seismic"),
			diffusion.Float64(diffusion.KeyConfidence, diffusion.IS, 0.5),
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, 1),
		})
	})
	net.Run(30 * time.Second)
	if fu.Reports != 1 || got != 1 {
		t.Errorf("fusion facade: reports=%d delivered=%d", fu.Reports, got)
	}
}
