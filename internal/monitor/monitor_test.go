package monitor

import (
	"math"
	"testing"
	"time"

	"diffusion/internal/core"
	"diffusion/internal/energy"
	"diffusion/internal/nettest"
)

// scanNet builds a line of n nodes with responders reporting read(id), an
// aggregator on every node, and a collector at node 1.
func scanNet(t *testing.T, seed int64, n int, read func(id uint32) float64) (*nettest.Net, *Collector, []*Responder, []*Aggregator) {
	t.Helper()
	tn := nettest.New(seed)
	nodes := tn.Line(n)
	collector := NewCollector(nodes[0], tn.Sched, "test-scan", nil)
	var resps []*Responder
	var aggs []*Aggregator
	for i, node := range nodes {
		id := uint32(i + 1)
		resps = append(resps, NewResponder(ResponderConfig{
			Node:  node,
			Clock: tn.Sched,
			Rand:  tn.Sched.Rand(),
			Task:  "test-scan",
			Read:  func() float64 { return read(id) },
		}))
		aggs = append(aggs, NewAggregator(node, tn.Sched, "test-scan", time.Second))
	}
	return tn, collector, resps, aggs
}

func TestScanCoversAllNodes(t *testing.T) {
	tn, collector, resps, _ := scanNet(t, 1, 5, func(id uint32) float64 {
		return float64(id) / 10
	})
	tn.Sched.RunUntil(2 * time.Second) // let the standing subscription set up
	id := collector.Start()
	tn.Sched.RunUntil(30 * time.Second)

	r := collector.Result(id)
	if r.Count() != 5 {
		t.Fatalf("scan covered %d of 5 nodes: %v", r.Count(), r)
	}
	// Exact values survive the union folding.
	if math.Abs(r.Min()-0.1) > 1e-6 {
		t.Errorf("min = %v, want 0.1", r.Min())
	}
	if math.Abs(r.Mean()-0.3) > 1e-6 {
		t.Errorf("mean = %v, want 0.3", r.Mean())
	}
	for _, resp := range resps {
		if resp.Replies < 1 || resp.Replies > 3 {
			t.Errorf("responder replied %d times, want 1-3 (per announcement)", resp.Replies)
		}
	}
}

func TestAggregatorCompressesReplies(t *testing.T) {
	tn, collector, _, aggs := scanNet(t, 2, 6, func(id uint32) float64 { return 1 })
	tn.Sched.RunUntil(2 * time.Second)
	id := collector.Start()
	tn.Sched.RunUntil(30 * time.Second)
	if collector.Result(id).Count() != 6 {
		t.Fatalf("coverage: %v", collector.Result(id))
	}
	merged := 0
	for _, a := range aggs {
		merged += a.Merged
	}
	if merged == 0 {
		t.Error("aggregators should fold some replies together")
	}
}

func TestRepeatedScansAreIndependent(t *testing.T) {
	val := 1.0
	tn, collector, _, _ := scanNet(t, 3, 3, func(id uint32) float64 { return val })
	tn.Sched.RunUntil(2 * time.Second)
	first := collector.Start()
	tn.Sched.RunUntil(2 * time.Minute)
	val = 0.5
	second := collector.Start()
	tn.Sched.RunUntil(4 * time.Minute)

	r1, r2 := collector.Result(first), collector.Result(second)
	if r1.Count() != 3 || r2.Count() != 3 {
		t.Fatalf("coverage: %v / %v", r1, r2)
	}
	if math.Abs(r1.Mean()-1.0) > 1e-6 || math.Abs(r2.Mean()-0.5) > 1e-6 {
		t.Errorf("scan readings leaked across scans: %v / %v", r1, r2)
	}
}

func TestUnionFoldIdempotent(t *testing.T) {
	a := Readings{1: 0.5, 2: 0.8}
	b := Readings{2: 0.8, 3: 0.2}
	a.fold(b)
	a.fold(b) // duplicate composites must be harmless
	if a.Count() != 3 {
		t.Errorf("union count = %d, want 3", a.Count())
	}
	if math.Abs(a.Min()-0.2) > 1e-6 {
		t.Errorf("min = %v", a.Min())
	}
	if math.Abs(a.Mean()-0.5) > 1e-6 {
		t.Errorf("mean = %v", a.Mean())
	}
}

func TestReadingsCodec(t *testing.T) {
	r := Readings{7: 0.25, 3: 1, 65535: 0}
	got, ok := decodeReadings(r.encode())
	if !ok || got.Count() != 3 {
		t.Fatalf("round trip: %v %v", got, ok)
	}
	for id, v := range r {
		if got[id] != v {
			t.Errorf("reading %d = %v, want %v", id, got[id], v)
		}
	}
	if _, ok := decodeReadings([]byte{1, 2, 3}); ok {
		t.Error("truncated blob must fail")
	}
	if empty, ok := decodeReadings(nil); !ok || empty.Count() != 0 {
		t.Error("empty blob decodes to empty readings")
	}
	if r.String() == "" {
		t.Error("String")
	}
	if (Readings{}).Min() != 0 || (Readings{}).Mean() != 0 {
		t.Error("empty readings stats")
	}
}

func TestEnergyResponder(t *testing.T) {
	tn := nettest.New(4)
	nodes := tn.Line(2)
	collector := NewCollector(nodes[0], tn.Sched, "energy-scan", nil)

	var tx, rx time.Duration
	NewEnergyResponder(ResponderConfig{
		Node:  nodes[1],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
	}, energy.PaperRatios(), 10_000,
		func() (time.Duration, time.Duration) { return tx, rx }, 1.0)

	// Also give the collector node a responder so the scan covers both.
	NewEnergyResponder(ResponderConfig{
		Node:  nodes[0],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
	}, energy.PaperRatios(), 10_000,
		func() (time.Duration, time.Duration) { return 0, 0 }, 1.0)

	tn.Sched.RunUntil(2 * time.Second)
	// Simulate a busy radio on node 2.
	tx, rx = 20*time.Minute, 30*time.Minute
	tn.Sched.RunUntil(time.Hour)
	id := collector.Start()
	tn.Sched.RunUntil(time.Hour + time.Minute)

	r := collector.Result(id)
	if r.Count() != 2 {
		t.Fatalf("energy scan coverage: %v", r)
	}
	// Node 2 burned energy; residual must be below node 1's and within
	// (0, 1).
	if r[2] >= r[1] {
		t.Errorf("busy node should have lower residual: %v", r)
	}
	if r.Min() <= 0 || r.Min() >= 1 {
		t.Errorf("residual out of range: %v", r)
	}
}

func TestResponderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing Read must panic")
		}
	}()
	tn := nettest.New(5)
	NewResponder(ResponderConfig{Node: tn.AddNode(1, nil), Clock: tn.Sched, Rand: tn.Sched.Rand(), Task: "x"})
}

func TestCollectorIgnoresUnknownScans(t *testing.T) {
	tn := nettest.New(6)
	nodes := tn.Line(2)
	collector := NewCollector(nodes[0], tn.Sched, "test-scan", nil)
	NewResponder(ResponderConfig{
		Node:  nodes[1],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
		Task:  "test-scan",
		Read:  func() float64 { return 1 },
	})
	// A second collector elsewhere starts a scan this collector never
	// started; its Result for an unknown id must be nil and replies for
	// foreign ids must not corrupt state.
	if collector.Result(99) != nil {
		t.Error("unknown scan id should return nil")
	}
	_ = core.Broadcast
	tn.Sched.RunUntil(time.Second)
}

func TestResponderClose(t *testing.T) {
	tn, collector, resps, _ := scanNet(t, 7, 3, func(uint32) float64 { return 1 })
	tn.Sched.RunUntil(2 * time.Second)
	resps[2].Close() // node 3 leaves the scan population
	id := collector.Start()
	tn.Sched.RunUntil(30 * time.Second)
	r := collector.Result(id)
	if r.Count() != 2 {
		t.Errorf("closed responder must not reply: %v", r)
	}
}
