// Package monitor implements the in-network monitoring tools the paper
// calls for (section 7: "we have begun work on in-network monitoring
// tools, but more work is needed", citing Zhao et al.'s residual energy
// scans): a generic scan facility built entirely out of diffusion
// primitives — scan interests flood, every node's responder replies with
// its local reading, and an aggregation filter folds replies together
// hop-by-hop so the collector receives composite scans instead of one
// message per node.
//
// Composites carry the set of (node, reading) pairs they cover, so folding
// is a set union: idempotent under the duplication inherent in flooding,
// and exact at the collector no matter how replies and composites overlap
// in flight. This trades payload bytes for message count, which is the
// right trade on a contention-limited radio.
//
// Two concrete scans are provided: residual-energy scans (driven by the
// section 6.1 energy model over measured radio times) and arbitrary
// user-supplied readings (e.g. neighbor counts, queue depths — "tools are
// needed to report the changing radio topology").
package monitor

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/energy"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Readings is a scan state: one reading per covered node.
type Readings map[uint16]float32

// Count returns the number of covered nodes.
func (r Readings) Count() int { return len(r) }

// Min returns the smallest reading (0 for an empty scan).
func (r Readings) Min() float64 {
	if len(r) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, v := range r {
		if float64(v) < min {
			min = float64(v)
		}
	}
	return min
}

// Mean returns the average reading (0 for an empty scan).
func (r Readings) Mean() float64 {
	if len(r) == 0 {
		return 0
	}
	var sum float64
	for _, v := range r {
		sum += float64(v)
	}
	return sum / float64(len(r))
}

// fold unions other into r; overlapping nodes keep r's value (they carry
// the same reading anyway: one reply per node per scan).
func (r Readings) fold(other Readings) {
	for id, v := range other {
		if _, ok := r[id]; !ok {
			r[id] = v
		}
	}
}

// clone copies r.
func (r Readings) clone() Readings {
	out := make(Readings, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// String renders the scan state.
func (r Readings) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f", r.Count(), r.Mean(), r.Min())
}

// encode serializes the readings as (uint16 id, float32 value) pairs in
// ascending id order.
func (r Readings) encode() []byte {
	ids := make([]int, 0, len(r))
	for id := range r {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]byte, 0, 6*len(ids))
	for _, id := range ids {
		out = binary.BigEndian.AppendUint16(out, uint16(id))
		out = binary.BigEndian.AppendUint32(out, math.Float32bits(r[uint16(id)]))
	}
	return out
}

// decodeReadings parses an encoded readings blob.
func decodeReadings(b []byte) (Readings, bool) {
	if len(b)%6 != 0 {
		return nil, false
	}
	out := make(Readings, len(b)/6)
	for off := 0; off < len(b); off += 6 {
		id := binary.BigEndian.Uint16(b[off:])
		out[id] = math.Float32frombits(binary.BigEndian.Uint32(b[off+2:]))
	}
	return out, true
}

// replyAttrs builds a scan reply/composite attribute set (without the task
// actual, which the responder's publication supplies).
func replyExtras(scanID int32, r Readings) attr.Vec {
	return attr.Vec{
		attr.Int32Attr(attr.KeySequence, attr.IS, scanID),
		attr.BlobAttr(attr.KeyPayload, attr.IS, r.encode()),
	}
}

// parseReply extracts the scan id and readings from a reply message.
func parseReply(attrs attr.Vec) (scanID int32, r Readings, ok bool) {
	seq, ok1 := attrs.FindActual(attr.KeySequence)
	blob, ok2 := attrs.FindActual(attr.KeyPayload)
	if !ok1 || !ok2 || blob.Val.Type != attr.TypeBlob {
		return 0, nil, false
	}
	r, ok = decodeReadings(blob.Val.Blob())
	return seq.Val.Int32(), r, ok
}

// Responder answers scan interests on one node with a local reading.
type Responder struct {
	node    *core.Node
	clock   sim.Clock
	rng     *rand.Rand
	task    string
	read    func() float64
	jitter  time.Duration
	pub     core.PublicationHandle
	watch   core.SubscriptionHandle
	replied map[int32]int

	// Replies counts scan replies sent.
	Replies int
}

// ResponderConfig configures a scan responder.
type ResponderConfig struct {
	Node  *core.Node
	Clock sim.Clock
	Rand  *rand.Rand
	// Task names the scan ("energy-scan", "neighbor-scan", ...).
	Task string
	// Read returns the node's current reading when a scan arrives.
	Read func() float64
	// Jitter is the maximum random delay before replying, spreading the
	// reply implosion out (default 2 s).
	Jitter time.Duration
}

// NewResponder installs a responder.
func NewResponder(cfg ResponderConfig) *Responder {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Rand == nil || cfg.Read == nil || cfg.Task == "" {
		panic("monitor: ResponderConfig requires Node, Clock, Rand, Task and Read")
	}
	if cfg.Jitter <= 0 {
		cfg.Jitter = 2 * time.Second
	}
	r := &Responder{
		node:    cfg.Node,
		clock:   cfg.Clock,
		rng:     cfg.Rand,
		task:    cfg.Task,
		read:    cfg.Read,
		jitter:  cfg.Jitter,
		replied: map[int32]int{},
	}
	r.pub = cfg.Node.Publish(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, cfg.Task),
	})
	// Passive tap on the scan interest ("subscribe for subscriptions").
	r.watch = cfg.Node.Subscribe(attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
		attr.StringAttr(attr.KeyTask, attr.IS, cfg.Task),
	}, r.onScan)
	return r
}

// Close removes the responder from its node.
func (r *Responder) Close() {
	_ = r.node.Unsubscribe(r.watch)
	_ = r.node.Unpublish(r.pub)
}

func (r *Responder) onScan(m *message.Message) {
	seq, ok := m.Attrs.FindActual(attr.KeySequence)
	if !ok {
		return
	}
	id := seq.Val.Int32()
	// Reply once per announcement, at most a few times per scan: the
	// collector re-announces so that a lost announcement or a lost reply
	// does not erase a node from the scan on a congested radio.
	const maxRepliesPerScan = 3
	if r.replied[id] >= maxRepliesPerScan {
		return
	}
	r.replied[id]++
	delay := time.Duration(r.rng.Int63n(int64(r.jitter) + 1))
	r.clock.After(delay, func() {
		self := Readings{uint16(r.node.ID()): float32(r.read())}
		// Replies flood: a scan is a one-shot report, so exploratory
		// robustness beats reinforced-path efficiency.
		if r.node.SendExploratory(r.pub, replyExtras(id, self)) == nil {
			r.Replies++
		}
	})
}

// Aggregator is the in-network folding filter: it delays scan replies
// briefly and merges replies for the same scan into one composite message
// covering the union of their nodes. Each node emits at most one composite
// per scan; later replies pass through untouched, so no reading is ever
// lost and nothing loops.
type Aggregator struct {
	node    *core.Node
	clock   sim.Clock
	task    string
	window  time.Duration
	handle  core.FilterHandle
	pending map[int32]*pendingScan
	done    map[int32]bool

	// Merged counts replies folded into composites; Flushed counts
	// composites sent onward.
	Merged, Flushed int
}

type pendingScan struct {
	readings Readings
}

// NewAggregator installs the folding filter on n for the given scan task.
func NewAggregator(n *core.Node, clock sim.Clock, task string, window time.Duration) *Aggregator {
	if window <= 0 {
		window = time.Second
	}
	a := &Aggregator{
		node:    n,
		clock:   clock,
		task:    task,
		window:  window,
		pending: map[int32]*pendingScan{},
		done:    map[int32]bool{},
	}
	pattern := attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, task)}
	a.handle = n.AddFilter(pattern, 150, a.onMessage)
	return a
}

// Remove uninstalls the filter.
func (a *Aggregator) Remove() { _ = a.node.RemoveFilter(a.handle) }

func (a *Aggregator) onMessage(m *message.Message, h core.FilterHandle) {
	if !m.IsData() {
		a.node.SendMessageToNext(m, h)
		return
	}
	id, readings, ok := parseReply(m.Attrs)
	if !ok || a.done[id] {
		// Not a reply, or this node already composed its composite for
		// the scan: pass through untouched.
		a.node.SendMessageToNext(m, h)
		return
	}
	if p, exists := a.pending[id]; exists {
		p.readings.fold(readings)
		a.Merged++
		return // folded; the composite flushes later
	}
	a.pending[id] = &pendingScan{readings: readings.clone()}
	a.clock.After(a.window, func() { a.flush(id) })
}

func (a *Aggregator) flush(id int32) {
	p, ok := a.pending[id]
	if !ok {
		return
	}
	delete(a.pending, id)
	a.done[id] = true
	a.Flushed++
	// The composite is a fresh origination (new message ID): held
	// originals were consumed here, so reusing their IDs would make
	// downstream duplicate suppression discard folded readings.
	a.node.InjectMessage(&message.Message{
		Class:   message.ExploratoryData,
		NextHop: message.Broadcast,
		Attrs: attr.Vec{
			attr.ClassIsData(),
			attr.StringAttr(attr.KeyTask, attr.IS, a.task),
		}.With(replyExtras(id, p.readings)...),
	})
}

// Collector issues scans from a sink node and accumulates the composite
// replies exactly (union semantics make duplicate composites harmless).
type Collector struct {
	node   *core.Node
	clock  sim.Clock
	task   string
	sub    core.SubscriptionHandle
	nextID int32
	scans  map[int32]Readings
	onFold func(id int32, r Readings)
}

// NewCollector subscribes a collector for the given scan task on n. cb, if
// non-nil, fires as replies accumulate. A nil clock disables the
// re-announcement robustness (single-shot scans).
func NewCollector(n *core.Node, clock sim.Clock, task string, cb func(id int32, r Readings)) *Collector {
	c := &Collector{node: n, clock: clock, task: task, scans: map[int32]Readings{}, onFold: cb}
	c.sub = n.Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, task),
		attr.Any(attr.KeySequence),
	}, c.onReply)
	return c
}

// Close removes the collector's subscription.
func (c *Collector) Close() { _ = c.node.Unsubscribe(c.sub) }

// Start floods a new scan and returns its id. The announcement repeats a
// few seconds apart (when the collector has a clock): on a congested radio
// a single flood can die before covering the network, and responders cap
// their replies per scan, so repetition is cheap and safe.
func (c *Collector) Start() int32 {
	c.nextID++
	id := c.nextID
	c.scans[id] = Readings{}
	c.announce(id)
	if c.clock != nil {
		c.clock.After(4*time.Second, func() { c.announce(id) })
		c.clock.After(9*time.Second, func() { c.announce(id) })
	}
	return id
}

func (c *Collector) announce(id int32) {
	c.node.InjectMessage(&message.Message{
		Class:   message.Interest,
		NextHop: message.Broadcast,
		Attrs: attr.Vec{
			attr.ClassIsInterest(),
			attr.StringAttr(attr.KeyTask, attr.EQ, c.task),
			attr.Int32Attr(attr.KeySequence, attr.IS, id),
		},
	})
}

// Result returns the accumulated readings for a scan (nil if unknown).
func (c *Collector) Result(id int32) Readings {
	r, ok := c.scans[id]
	if !ok {
		return nil
	}
	return r.clone()
}

func (c *Collector) onReply(m *message.Message) {
	id, readings, ok := parseReply(m.Attrs)
	if !ok {
		return
	}
	r, tracked := c.scans[id]
	if !tracked {
		return
	}
	r.fold(readings)
	if c.onFold != nil {
		c.onFold(id, r.clone())
	}
}

// NewEnergyResponder wires a Responder that reports residual energy from
// measured radio activity: residual = 1 − consumed/battery, with
// consumption from the section 6.1 model. battery is in the model's
// relative energy units.
func NewEnergyResponder(cfg ResponderConfig, ratios energy.Ratios, battery float64,
	radioTimes func() (tx, rx time.Duration), dutyCycle float64) *Responder {
	if battery <= 0 {
		panic("monitor: battery must be positive")
	}
	if cfg.Clock == nil {
		panic("monitor: ResponderConfig requires Clock")
	}
	start := cfg.Clock.Now()
	cfg.Read = func() float64 {
		tx, rx := radioTimes()
		elapsed := cfg.Clock.Now() - start
		used := ratios.Measured(tx, rx, elapsed, dutyCycle).Total()
		residual := 1 - used/battery
		if residual < 0 {
			residual = 0
		}
		return residual
	}
	if cfg.Task == "" {
		cfg.Task = "energy-scan"
	}
	return NewResponder(cfg)
}
