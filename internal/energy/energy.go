// Package energy implements the paper's section 6.1 energy model. The
// paper cannot measure energy directly ("we do not have hardware to
// directly measure energy consumption"), so it analyses radio energy as
//
//	P_d = d·p_l·t_l + p_r·t_r + p_s·t_s
//
// where p and t are the relative power and time spent listening, receiving
// and sending, and d is the required listen duty cycle. The paper's
// observed time ratio is 1:3:40 (send:receive:listen — listening dominates
// an idle-heavy sensor radio; this ordering is the one that reproduces the
// paper's stated conclusions) and it assumes power ratios of 1:2:2
// (listen:receive:send). Under those parameters:
//
//   - at duty cycle 1, energy is completely dominated by listening;
//   - at duty cycle 0.22, half the energy is spent listening;
//   - at duty cycle 0.10, listening no longer dominates and transmission
//     costs take over.
package energy

import (
	"fmt"
	"time"
)

// Ratios holds the relative power and time parameters of the model.
type Ratios struct {
	// PowerListen, PowerReceive and PowerSend are relative radio powers.
	// The paper cites measured ratios from 1:1.05:1.4 to 1:2:2.5 and
	// assumes 1:2:2 "for simplicity".
	PowerListen, PowerReceive, PowerSend float64
	// TimeListen, TimeReceive and TimeSend are relative air-interface
	// times. The paper's aggregate observation corresponds to 40:3:1.
	TimeListen, TimeReceive, TimeSend float64
}

// PaperRatios returns the parameter set used in the paper's analysis.
func PaperRatios() Ratios {
	return Ratios{
		PowerListen: 1, PowerReceive: 2, PowerSend: 2,
		TimeListen: 40, TimeReceive: 3, TimeSend: 1,
	}
}

// Breakdown is a relative energy decomposition.
type Breakdown struct {
	Listen, Receive, Send float64
}

// Total returns the summed relative energy.
func (b Breakdown) Total() float64 { return b.Listen + b.Receive + b.Send }

// ListenFraction returns the share of energy spent listening.
func (b Breakdown) ListenFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Listen / t
}

// SendFraction returns the share of energy spent sending.
func (b Breakdown) SendFraction() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b.Send / t
}

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("listen=%.3g receive=%.3g send=%.3g (listen %.0f%%)",
		b.Listen, b.Receive, b.Send, 100*b.ListenFraction())
}

// AtDutyCycle evaluates the paper's closed form P_d for listen duty cycle
// d in [0,1].
func (r Ratios) AtDutyCycle(d float64) Breakdown {
	if d < 0 || d > 1 {
		panic(fmt.Sprintf("energy: duty cycle %v out of [0,1]", d))
	}
	return Breakdown{
		Listen:  d * r.PowerListen * r.TimeListen,
		Receive: r.PowerReceive * r.TimeReceive,
		Send:    r.PowerSend * r.TimeSend,
	}
}

// HalfListenDutyCycle returns the duty cycle at which exactly half the
// energy is spent listening (the paper's 22% point for its parameters).
func (r Ratios) HalfListenDutyCycle() float64 {
	// d·p_l·t_l = p_r·t_r + p_s·t_s
	return (r.PowerReceive*r.TimeReceive + r.PowerSend*r.TimeSend) /
		(r.PowerListen * r.TimeListen)
}

// Measured evaluates the model on measured per-node radio times rather
// than the paper's aggregate ratios: txTime and rxTime come from the radio
// layer, elapsed is the experiment duration, and d is the listen duty
// cycle. Idle time (elapsed − tx − rx) is charged at listen power scaled
// by the duty cycle.
func (r Ratios) Measured(txTime, rxTime, elapsed time.Duration, d float64) Breakdown {
	if d < 0 || d > 1 {
		panic(fmt.Sprintf("energy: duty cycle %v out of [0,1]", d))
	}
	idle := elapsed - txTime - rxTime
	if idle < 0 {
		idle = 0
	}
	return Breakdown{
		Listen:  d * r.PowerListen * idle.Seconds(),
		Receive: r.PowerReceive * rxTime.Seconds(),
		Send:    r.PowerSend * txTime.Seconds(),
	}
}
