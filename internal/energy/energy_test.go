package energy

import (
	"math"
	"testing"
	"time"
)

// TestPaperDutyCycleClaims checks the three section 6.1 statements.
func TestPaperDutyCycleClaims(t *testing.T) {
	r := PaperRatios()

	// "Energy usage for nodes with a duty cycle of 1 are completely
	// dominated by energy spent listening."
	if f := r.AtDutyCycle(1).ListenFraction(); f < 0.8 {
		t.Errorf("duty 1: listen fraction %.2f, want >0.8", f)
	}

	// "At duty cycle of 22% half of the energy is spent listening."
	if f := r.AtDutyCycle(0.22).ListenFraction(); math.Abs(f-0.5) > 0.05 {
		t.Errorf("duty 0.22: listen fraction %.2f, want ~0.5", f)
	}
	if d := r.HalfListenDutyCycle(); math.Abs(d-0.20) > 0.03 {
		t.Errorf("half-listen duty cycle %.3f, want ~0.20-0.22", d)
	}

	// "Duty cycles of 10% begin to be dominated by send cost": listening
	// is no longer the majority and tx+rx costs exceed it.
	b := r.AtDutyCycle(0.10)
	if b.ListenFraction() >= 0.5 {
		t.Errorf("duty 0.10: listening still dominates (%.2f)", b.ListenFraction())
	}
	if b.Send+b.Receive <= b.Listen {
		t.Error("duty 0.10: communication costs should exceed listening")
	}
}

func TestBreakdownMonotoneInDuty(t *testing.T) {
	r := PaperRatios()
	prev := -1.0
	for d := 0.0; d <= 1.0; d += 0.05 {
		tot := r.AtDutyCycle(d).Total()
		if tot <= prev {
			t.Fatalf("total energy must increase with duty cycle (d=%.2f)", d)
		}
		prev = tot
	}
	// Receive and send terms are duty-independent.
	a, b := r.AtDutyCycle(0.1), r.AtDutyCycle(0.9)
	if a.Receive != b.Receive || a.Send != b.Send {
		t.Error("receive/send energy must not depend on duty cycle")
	}
}

func TestDutyCycleBounds(t *testing.T) {
	for _, d := range []float64{-0.1, 1.1} {
		d := d
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("duty cycle %v must panic", d)
				}
			}()
			PaperRatios().AtDutyCycle(d)
		}()
	}
}

func TestMeasured(t *testing.T) {
	r := PaperRatios()
	// 1 hour, 1 minute sending, 3 minutes receiving, duty 1.0.
	b := r.Measured(time.Minute, 3*time.Minute, time.Hour, 1.0)
	wantListen := 56 * time.Minute.Seconds() // (60-1-3) min at power 1
	if math.Abs(b.Listen-wantListen) > 1e-6 {
		t.Errorf("listen energy %v, want %v", b.Listen, wantListen)
	}
	if math.Abs(b.Send-2*60) > 1e-6 {
		t.Errorf("send energy %v, want 120", b.Send)
	}
	if math.Abs(b.Receive-2*180) > 1e-6 {
		t.Errorf("receive energy %v, want 360", b.Receive)
	}
	// Zero duty cycle: no listen cost at all.
	if b := r.Measured(time.Minute, time.Minute, time.Hour, 0); b.Listen != 0 {
		t.Error("zero duty cycle should zero listen energy")
	}
	// Radio busier than elapsed should clamp idle at zero, not go negative.
	b = r.Measured(2*time.Hour, 0, time.Hour, 1)
	if b.Listen != 0 {
		t.Error("idle time must clamp at zero")
	}
}

func TestFractionsOnZero(t *testing.T) {
	var b Breakdown
	if b.ListenFraction() != 0 || b.SendFraction() != 0 {
		t.Error("zero breakdown fractions must be 0, not NaN")
	}
	if s := b.String(); s == "" {
		t.Error("String on zero breakdown")
	}
}
