package microdiff

import (
	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
)

// Gateway bridges a full-diffusion node and a micro-diffusion mote,
// realizing the paper's tiered architecture (section 4.3): interests from
// the attribute-rich first tier are condensed to micro tags and injected
// into the mote tier, and mote data is expanded back to attribute-named
// data on the full-diffusion side. "Most of the network intelligence is
// programmed into the first tier."
type Gateway struct {
	node *core.Node
	mote *Mote

	mappings []Mapping

	// Bridged counts packets translated in each direction.
	InterestsDown, DataUp int
}

// Mapping binds one micro tag to its attribute-space meaning.
type Mapping struct {
	// Tag is the condensed identifier on the mote tier.
	Tag Tag
	// Watch is the passive interest tap on the full-diffusion side: when
	// a matching interest arrives, the gateway injects a micro-interest
	// for Tag (it must contain a "class EQ interest" formal plus actuals
	// satisfying the interest's formals).
	Watch attr.Vec
	// Publication describes the data the gateway publishes on behalf of
	// the mote tier.
	Publication attr.Vec
	// Expand converts a mote value into the extra data attributes sent
	// upward. A nil Expand sends the value as "intensity IS value".
	Expand func(value uint16) attr.Vec
}

// NewGateway wires a gateway between node and mote. The mote must belong
// to the gateway (same physical device, two radios in the paper's
// deployment).
func NewGateway(node *core.Node, mote *Mote, mappings []Mapping) *Gateway {
	g := &Gateway{node: node, mote: mote, mappings: mappings}
	for i := range g.mappings {
		mp := &g.mappings[i]
		if mp.Expand == nil {
			mp.Expand = func(value uint16) attr.Vec {
				return attr.Vec{attr.Int32Attr(attr.KeyIntensity, attr.IS, int32(value))}
			}
		}
		pub := node.Publish(mp.Publication)
		// Full-tier interest arrives: task the mote tier.
		node.Subscribe(mp.Watch, func(*message.Message) {
			g.InterestsDown++
			mote.Subscribe(mp.Tag, func(_ Tag, value uint16) {
				g.DataUp++
				_ = node.Send(pub, mp.Expand(value))
			})
		})
	}
	return g
}
