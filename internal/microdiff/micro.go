// Package microdiff implements micro-diffusion, the paper's section 4.3
// subset of directed diffusion for 8-bit motes: it retains only gradients,
// condenses attributes to a single tag, and supports only limited filters.
// Like the original (2050 bytes of code, 106 bytes of data on TinyOS), the
// mote state here is statically bounded: at most 5 active gradients and a
// duplicate cache of 10 packets holding the 2 relevant bytes per packet.
//
// A Gateway (gateway.go) bridges motes to a full-diffusion node, realizing
// the paper's tiered architecture: "less resource-constrained nodes will
// form the highest tier and act as gateways to the second tier".
package microdiff

import (
	"encoding/binary"
	"fmt"

	"diffusion/internal/core"
)

// Tag is the single condensed attribute identifying a micro-diffusion flow
// (the paper: "condensing attributes to a single tag").
type Tag uint16

// Static limits from the paper's implementation.
const (
	// MaxGradients is the static gradient table size (paper: "statically
	// configured to support 5 active gradients").
	MaxGradients = 5
	// CacheSize is the duplicate-suppression cache depth (paper: "a cache
	// of 10 packets of the 2 relevant bytes per packet").
	CacheSize = 10
)

// Micro packet classes.
const (
	classInterest = 1
	classData     = 2
)

// packetSize is the fixed micro wire format:
// class(1) tag(2) origin(2) seq(2) value(2).
const packetSize = 9

// Handler receives data values delivered to a local subscription.
type Handler func(tag Tag, value uint16)

// FilterFunc is micro-diffusion's limited filter: it may rewrite the value
// or suppress the packet (ok=false). One filter per tag.
type FilterFunc func(value uint16) (out uint16, ok bool)

// gradientSlot is one statically allocated gradient.
type gradientSlot struct {
	tag      Tag
	neighbor uint32
	active   bool
	age      uint16 // LRU counter
}

// cacheSlot is one duplicate-cache entry: the 2 relevant bytes are the
// origin and sequence identifying a packet.
type cacheSlot struct {
	origin, seq uint16
	valid       bool
}

// Mote is one micro-diffusion instance. It is event-driven and
// single-threaded like the full node.
type Mote struct {
	link core.Link
	seq  uint16
	tick uint16

	gradients [MaxGradients]gradientSlot
	cache     [CacheSize]cacheSlot
	cacheNext int

	subs    map[Tag]Handler
	filters map[Tag]FilterFunc

	Stats MoteStats
}

// MoteStats counts mote activity.
type MoteStats struct {
	PacketsSent      int
	PacketsReceived  int
	Duplicates       int
	GradientOverflow int
	Filtered         int
	Delivered        int
}

// NewMote creates a mote on the given link.
func NewMote(link core.Link) *Mote {
	if link == nil {
		panic("microdiff: link required")
	}
	return &Mote{
		link:    link,
		subs:    map[Tag]Handler{},
		filters: map[Tag]FilterFunc{},
	}
}

// ID returns the mote's link identifier.
func (m *Mote) ID() uint32 { return m.link.ID() }

// MemoryFootprint returns the static protocol state size in bytes,
// mirroring the paper's 106-byte data budget: gradients (5 × 9B as laid
// out on a mote: tag 2 + neighbor 2 + active 1, padded) plus cache
// (10 × 5B) plus counters.
func MemoryFootprint() int {
	const gradientBytes = 2 + 2 + 1 // tag, neighbor (16-bit on motes), active
	const cacheBytes = 2 + 2 + 1    // origin, seq, valid
	const counters = 4              // seq, tick
	return MaxGradients*gradientBytes + CacheSize*cacheBytes + counters
}

// Subscribe registers a local handler for tag and floods a micro-interest
// so upstream motes build gradients toward this mote.
func (m *Mote) Subscribe(tag Tag, h Handler) {
	m.subs[tag] = h
	m.seq++
	m.broadcastPacket(classInterest, tag, uint16(m.ID()), m.seq, 0)
}

// Unsubscribe removes the local handler. Gradients at other motes persist
// until evicted (motes have no timers to expire them).
func (m *Mote) Unsubscribe(tag Tag) { delete(m.subs, tag) }

// SetFilter installs the per-tag filter; a nil f removes it.
func (m *Mote) SetFilter(tag Tag, f FilterFunc) {
	if f == nil {
		delete(m.filters, tag)
		return
	}
	m.filters[tag] = f
}

// Send originates a data packet for tag carrying value. It is forwarded
// along matching gradients; without any, it goes nowhere.
func (m *Mote) Send(tag Tag, value uint16) {
	m.seq++
	origin := uint16(m.ID())
	m.remember(origin, m.seq)
	m.forwardData(tag, origin, m.seq, value, 0, true)
}

// Receive is the link-layer upcall.
func (m *Mote) Receive(from uint32, payload []byte) {
	if len(payload) != packetSize {
		return
	}
	class := payload[0]
	tag := Tag(binary.BigEndian.Uint16(payload[1:]))
	origin := binary.BigEndian.Uint16(payload[3:])
	seq := binary.BigEndian.Uint16(payload[5:])
	value := binary.BigEndian.Uint16(payload[7:])
	m.Stats.PacketsReceived++

	switch class {
	case classInterest:
		// Gradient toward the sender, then re-flood once.
		m.addGradient(tag, from)
		if m.isDuplicate(origin, seq) {
			m.Stats.Duplicates++
			return
		}
		m.remember(origin, seq)
		m.broadcastPacket(classInterest, tag, origin, seq, 0)
	case classData:
		if m.isDuplicate(origin, seq) {
			m.Stats.Duplicates++
			return
		}
		m.remember(origin, seq)
		if f, ok := m.filters[tag]; ok {
			out, pass := f(value)
			if !pass {
				m.Stats.Filtered++
				return
			}
			value = out
		}
		if h, ok := m.subs[tag]; ok && h != nil {
			m.Stats.Delivered++
			h(tag, value)
		}
		m.forwardData(tag, origin, seq, value, from, false)
	}
}

// forwardData unicasts a data packet along every gradient for tag except
// back to the arrival neighbor.
func (m *Mote) forwardData(tag Tag, origin, seq, value uint16, except uint32, local bool) {
	for i := range m.gradients {
		g := &m.gradients[i]
		if !g.active || g.tag != tag {
			continue
		}
		if !local && g.neighbor == except {
			continue
		}
		m.sendPacket(g.neighbor, classData, tag, origin, seq, value)
	}
}

// addGradient installs or refreshes a gradient, evicting the oldest slot
// when the static table is full.
func (m *Mote) addGradient(tag Tag, neighbor uint32) {
	m.tick++
	var free *gradientSlot
	var oldest *gradientSlot
	for i := range m.gradients {
		g := &m.gradients[i]
		if g.active && g.tag == tag && g.neighbor == neighbor {
			g.age = m.tick
			return
		}
		if !g.active && free == nil {
			free = g
		}
		if g.active && (oldest == nil || g.age < oldest.age) {
			oldest = g
		}
	}
	slot := free
	if slot == nil {
		slot = oldest
		m.Stats.GradientOverflow++
	}
	*slot = gradientSlot{tag: tag, neighbor: neighbor, active: true, age: m.tick}
}

// Gradients returns the number of active gradient slots (diagnostics).
func (m *Mote) Gradients() int {
	n := 0
	for i := range m.gradients {
		if m.gradients[i].active {
			n++
		}
	}
	return n
}

// isDuplicate checks the static packet cache.
func (m *Mote) isDuplicate(origin, seq uint16) bool {
	for i := range m.cache {
		c := &m.cache[i]
		if c.valid && c.origin == origin && c.seq == seq {
			return true
		}
	}
	return false
}

// remember records a packet identity in the ring cache.
func (m *Mote) remember(origin, seq uint16) {
	m.cache[m.cacheNext] = cacheSlot{origin: origin, seq: seq, valid: true}
	m.cacheNext = (m.cacheNext + 1) % CacheSize
}

func (m *Mote) broadcastPacket(class byte, tag Tag, origin, seq, value uint16) {
	m.sendPacket(core.Broadcast, class, tag, origin, seq, value)
}

func (m *Mote) sendPacket(dst uint32, class byte, tag Tag, origin, seq, value uint16) {
	var b [packetSize]byte
	b[0] = class
	binary.BigEndian.PutUint16(b[1:], uint16(tag))
	binary.BigEndian.PutUint16(b[3:], origin)
	binary.BigEndian.PutUint16(b[5:], seq)
	binary.BigEndian.PutUint16(b[7:], value)
	m.Stats.PacketsSent++
	if err := m.link.Send(dst, b[:]); err != nil {
		// Best-effort, like the radio itself.
		_ = err
	}
}

// String renders a diagnostic summary.
func (m *Mote) String() string {
	return fmt.Sprintf("mote %d: %d gradients, stats %+v", m.ID(), m.Gradients(), m.Stats)
}
