package microdiff

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

const tagLight Tag = 7

// moteNet builds a chain of k motes (ids 1..k).
func moteNet(seed int64, k int) (*nettest.Net, []*Mote) {
	tn := nettest.New(seed)
	motes := make([]*Mote, k)
	for i := 1; i <= k; i++ {
		id := uint32(i)
		m := NewMote(tn.NewLink(id))
		tn.SetReceiver(id, m)
		motes[i-1] = m
		if i > 1 {
			tn.Connect(uint32(i-1), id)
		}
	}
	return tn, motes
}

func TestMicroEndToEnd(t *testing.T) {
	tn, motes := moteNet(1, 4)
	var got []uint16
	motes[0].Subscribe(tagLight, func(_ Tag, v uint16) { got = append(got, v) })
	tn.Sched.RunUntil(time.Second)

	// Gradients must have formed along the chain.
	for i, m := range motes[1:] {
		if m.Gradients() == 0 {
			t.Fatalf("mote %d has no gradients", i+2)
		}
	}
	for i := 0; i < 5; i++ {
		v := uint16(100 + i)
		tn.Sched.After(time.Duration(i)*100*time.Millisecond, func() { motes[3].Send(tagLight, v) })
	}
	tn.Sched.RunUntil(5 * time.Second)
	if len(got) != 5 {
		t.Fatalf("delivered %d of 5 values: %v", len(got), got)
	}
	for i, v := range got {
		if v != uint16(100+i) {
			t.Errorf("value %d = %d", i, v)
		}
	}
}

func TestMicroDuplicateSuppression(t *testing.T) {
	// Triangle: each packet reaches peers twice; dedup keeps deliveries
	// single and stops re-forwarding.
	tn := nettest.New(2)
	var motes []*Mote
	for i := uint32(1); i <= 3; i++ {
		m := NewMote(tn.NewLink(i))
		tn.SetReceiver(i, m)
		motes = append(motes, m)
	}
	tn.Connect(1, 2)
	tn.Connect(2, 3)
	tn.Connect(1, 3)

	delivered := 0
	motes[0].Subscribe(tagLight, func(Tag, uint16) { delivered++ })
	tn.Sched.RunUntil(time.Second)
	motes[2].Send(tagLight, 9)
	tn.Sched.RunUntil(2 * time.Second)
	if delivered != 1 {
		t.Errorf("delivered %d copies, want 1", delivered)
	}
	if motes[0].Stats.Duplicates+motes[1].Stats.Duplicates == 0 {
		t.Error("triangle should produce suppressed duplicates")
	}
}

func TestMicroGradientTableBounded(t *testing.T) {
	// Subscribe to more tags than gradient slots: the table must stay at
	// MaxGradients with LRU eviction, never growing.
	tn, motes := moteNet(3, 2)
	relay := motes[1]
	for tag := Tag(1); tag <= 8; tag++ {
		motes[0].Subscribe(tag, nil)
	}
	tn.Sched.RunUntil(time.Second)
	if g := relay.Gradients(); g != MaxGradients {
		t.Errorf("relay holds %d gradients, want the static maximum %d", g, MaxGradients)
	}
	if relay.Stats.GradientOverflow == 0 {
		t.Error("overflow evictions should be counted")
	}
}

func TestMicroMemoryFootprint(t *testing.T) {
	// The paper's mote kept 106 bytes of protocol data; our accounting
	// must stay in that class (well under 256 bytes).
	if f := MemoryFootprint(); f > 256 {
		t.Errorf("static footprint %dB exceeds the mote budget", f)
	}
	if f := MemoryFootprint(); f < 50 {
		t.Errorf("footprint %dB suspiciously small; accounting broken?", f)
	}
}

func TestMicroFilter(t *testing.T) {
	tn, motes := moteNet(4, 3)
	var got []uint16
	motes[0].Subscribe(tagLight, func(_ Tag, v uint16) { got = append(got, v) })
	tn.Sched.RunUntil(time.Second)

	// The relay doubles values and suppresses zeros — the paper's
	// "limited filters".
	motes[1].SetFilter(tagLight, func(v uint16) (uint16, bool) {
		if v == 0 {
			return 0, false
		}
		return v * 2, true
	})
	motes[2].Send(tagLight, 21)
	motes[2].Send(tagLight, 0)
	tn.Sched.RunUntil(2 * time.Second)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("filtered delivery: %v", got)
	}
	if motes[1].Stats.Filtered != 1 {
		t.Errorf("suppression count: %+v", motes[1].Stats)
	}
	// Removing the filter restores pass-through.
	motes[1].SetFilter(tagLight, nil)
	motes[2].Send(tagLight, 5)
	tn.Sched.RunUntil(3 * time.Second)
	if len(got) != 2 || got[1] != 5 {
		t.Errorf("after filter removal: %v", got)
	}
}

func TestMicroRuntPacketsIgnored(t *testing.T) {
	tn, motes := moteNet(5, 2)
	motes[0].Receive(2, []byte{1, 2, 3})
	motes[0].Receive(2, nil)
	tn.Sched.RunUntil(time.Second)
	if motes[0].Stats.PacketsReceived != 0 {
		t.Error("runt packets must be dropped before accounting")
	}
}

func TestGatewayBridgesTiers(t *testing.T) {
	// Full-diffusion tier: user(100) - gateway(101). Mote tier:
	// gateway-mote(201) - mote(202). The gateway node owns both the
	// diffusion node 101 and the mote 201.
	tn := nettest.New(6)
	user := tn.AddNode(100, nil)
	gwNode := tn.AddNode(101, nil)
	tn.Connect(100, 101)

	gwMote := NewMote(tn.NewLink(201))
	tn.SetReceiver(201, gwMote)
	leaf := NewMote(tn.NewLink(202))
	tn.SetReceiver(202, leaf)
	tn.Connect(201, 202)

	gw := NewGateway(gwNode, gwMote, []Mapping{{
		Tag: tagLight,
		Watch: attr.Vec{
			attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
			attr.StringAttr(attr.KeyType, attr.IS, "light"),
		},
		Publication: attr.Vec{
			attr.StringAttr(attr.KeyType, attr.IS, "light"),
		},
	}})

	var got []int32
	user.Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyType, attr.EQ, "light"),
	}, func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeyIntensity); ok {
			got = append(got, a.Val.Int32())
		}
	})
	tn.Sched.RunUntil(2 * time.Second)
	if gw.InterestsDown == 0 {
		t.Fatal("gateway never saw the interest")
	}
	// The mote tier reports periodically.
	for i := 0; i < 5; i++ {
		v := uint16(10 * (i + 1))
		tn.Sched.After(time.Duration(i)*time.Second, func() { leaf.Send(tagLight, v) })
	}
	tn.Sched.RunUntil(30 * time.Second)
	if gw.DataUp == 0 {
		t.Fatal("gateway bridged no data upward")
	}
	if len(got) == 0 {
		t.Fatal("user received no mote data through the gateway")
	}
	if got[0] != 10 {
		t.Errorf("first value %d, want 10", got[0])
	}
}
