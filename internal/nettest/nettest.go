// Package nettest provides a perfect in-memory link layer with an explicit
// adjacency graph for protocol-level tests: it lets core, filters and
// micro-diffusion tests exercise diffusion logic deterministically without
// the MAC and radio models. It is a test substrate, not part of the public
// system.
package nettest

import (
	"sort"
	"time"

	"diffusion/internal/core"
	"diffusion/internal/sim"
)

// Receiver is anything that accepts link-layer payloads (full diffusion
// nodes and micro-diffusion motes alike).
type Receiver interface {
	Receive(from uint32, payload []byte)
}

// Net is an in-memory network of diffusion nodes.
type Net struct {
	Sched *sim.Scheduler
	Nodes map[uint32]*core.Node
	recvs map[uint32]Receiver
	adj   map[uint32]map[uint32]bool
	dead  map[uint32]bool
	// Delay is the per-hop delivery latency.
	Delay time.Duration
	// LossProb drops each delivery independently with this probability
	// (loss injection for reliability tests).
	LossProb float64
}

// New returns an empty network driven by a scheduler seeded with seed.
func New(seed int64) *Net {
	return &Net{
		Sched: sim.New(seed),
		Nodes: map[uint32]*core.Node{},
		recvs: map[uint32]Receiver{},
		adj:   map[uint32]map[uint32]bool{},
		dead:  map[uint32]bool{},
		Delay: time.Millisecond,
	}
}

// Link is the in-memory core.Link for one node.
type Link struct {
	net *Net
	id  uint32
}

// ID returns the node id.
func (l *Link) ID() uint32 { return l.id }

// Send delivers payload to the destination (or all neighbors on
// broadcast) after the network delay. Dead nodes neither send nor receive.
func (l *Link) Send(dst uint32, payload []byte) error {
	if l.net.dead[l.id] {
		return nil
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	from := l.id
	// Sorted neighbor order keeps delivery (and loss-draw consumption)
	// deterministic; map iteration order would make runs flaky.
	nbrs := make([]uint32, 0, len(l.net.adj[l.id]))
	for nb := range l.net.adj[l.id] {
		nbrs = append(nbrs, nb)
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	for _, nb := range nbrs {
		if dst != core.Broadcast && dst != nb {
			continue
		}
		nb := nb
		if l.net.LossProb > 0 && l.net.Sched.Rand().Float64() < l.net.LossProb {
			continue
		}
		l.net.Sched.After(l.net.Delay, func() {
			if l.net.dead[nb] || l.net.dead[from] {
				return
			}
			if r := l.net.recvs[nb]; r != nil {
				r.Receive(from, data)
			}
		})
	}
	return nil
}

// AddNode creates a diffusion node with fast test timings; tweak may
// adjust the configuration before construction.
func (n *Net) AddNode(id uint32, tweak func(*core.Config)) *core.Node {
	cfg := core.Config{
		Clock:            n.Sched,
		Rand:             n.Sched.Rand(),
		Link:             &Link{net: n, id: id},
		InterestInterval: 10 * time.Second,
		ExploratoryEvery: 5,
		ForwardJitter:    5 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	node := core.NewNode(cfg)
	n.Nodes[id] = node
	n.recvs[id] = node
	if n.adj[id] == nil {
		n.adj[id] = map[uint32]bool{}
	}
	return node
}

// NewLink creates a bare link endpoint for id without a diffusion node;
// the caller must register the receiver with SetReceiver. Used to attach
// micro-diffusion motes.
func (n *Net) NewLink(id uint32) *Link {
	if n.adj[id] == nil {
		n.adj[id] = map[uint32]bool{}
	}
	return &Link{net: n, id: id}
}

// SetReceiver registers the payload handler for a link created with
// NewLink.
func (n *Net) SetReceiver(id uint32, r Receiver) { n.recvs[id] = r }

// Connect links a and b bidirectionally.
func (n *Net) Connect(a, b uint32) {
	if n.adj[a] == nil {
		n.adj[a] = map[uint32]bool{}
	}
	if n.adj[b] == nil {
		n.adj[b] = map[uint32]bool{}
	}
	n.adj[a][b] = true
	n.adj[b][a] = true
}

// Line builds nodes 1..k connected in a chain and returns them in order.
func (n *Net) Line(k int) []*core.Node {
	nodes := make([]*core.Node, k)
	for i := 1; i <= k; i++ {
		nodes[i-1] = n.AddNode(uint32(i), nil)
		if i > 1 {
			n.Connect(uint32(i-1), uint32(i))
		}
	}
	return nodes
}

// Kill disconnects a node permanently.
func (n *Net) Kill(id uint32) { n.dead[id] = true }

// Revive reconnects a killed node.
func (n *Net) Revive(id uint32) { delete(n.dead, id) }
