// Package flightpath reconstructs causal flight paths from flight-path
// span records: the per-layer events (recv, match, enqueue, tx, deliver,
// drop, custody-accept, custody-replay) that every node records for
// sampled messages. The same analysis runs over a simulator trace
// (cmd/difftrace) and over span records scraped from a live cluster
// (cmd/diffscope) — both speak telemetry.Record, with timestamps already
// on one common base (virtual time in the simulator; collector-rebased
// absolute time live).
package flightpath

import (
	"fmt"
	"sort"

	"diffusion/internal/telemetry"
)

// Flow is the reconstructed story of one sampled origination: the hops
// its primary message took, whether and where it was delivered, where it
// died if it was not, and the reinforcement traffic it triggered.
type Flow struct {
	// Flow is the 16-bit trace-context flow ID.
	Flow uint16
	// ID is the primary message's origination ID ("%08x:%d").
	ID string
	// Class is the primary message's class at origination.
	Class string
	// Origin is the originating node (the first event's node).
	Origin uint32
	// StartUS and EndUS bound the flow's observed activity.
	StartUS, EndUS int64
	// Hops is the hop-by-hop relay chain, ordered by hop counter.
	Hops []Hop
	// Delivered reports a local delivery at a sink; DeliverNode and
	// DeliverUS locate the first one.
	Delivered   bool
	DeliverNode uint32
	DeliverUS   int64
	// Dropped reports a terminal drop: the flow's last primary-message
	// event is a drop. DropNode, DropHop and DropCause localize it.
	Dropped   bool
	DropNode  uint32
	DropHop   uint8
	DropCause string
	// CustodyNodes lists nodes that took custody of the message (sorted);
	// a dropped flow with no custodian died for good.
	CustodyNodes []uint32
	// Reinforcements is the time-ordered reinforcement traffic sharing
	// this flow (positive and negative), as recorded at the core layer.
	Reinforcements []Edge
	// Events is every span record of the flow, time-ordered.
	Events []telemetry.Record
}

// Hop is one hop-counter value of a flow's primary message: the node that
// transmitted at that hop count and the first node that received it.
// A flood can have several receivers per hop; RxNode is the earliest.
type Hop struct {
	Hop uint8
	// TxNode transmitted the message carrying this hop count; TxUS is the
	// tx event time (MAC or transport layer), -1 when only enqueued or
	// unobserved.
	TxNode uint32
	TxUS   int64
	// RxNode is the first node that recorded a recv at this hop count;
	// RxUS its time. -1 when the hop was transmitted but never received
	// (the loss hop).
	RxNode uint32
	RxUS   int64
}

// LatencyUS returns the hop's tx-to-recv latency, or -1 when either end
// is unobserved.
func (h Hop) LatencyUS() int64 {
	if h.TxUS < 0 || h.RxUS < 0 {
		return -1
	}
	return h.RxUS - h.TxUS
}

// Edge is one reinforcement sighting: a node handling a (positive or
// negative) reinforcement message of the flow.
type Edge struct {
	US   int64
	Node uint32
	// Verb is the span verb at the sighting (recv, enqueue, tx, ...).
	Verb     string
	Negative bool
}

// E2EUS returns origin-to-delivery latency, or -1 when undelivered or
// unbounded.
func (f *Flow) E2EUS() int64 {
	if !f.Delivered || f.DeliverUS < f.StartUS {
		return -1
	}
	return f.DeliverUS - f.StartUS
}

// reinforcement classes as rendered by message.Class.String.
const (
	classPosReinf = "POSITIVE_REINFORCEMENT"
	classNegReinf = "NEGATIVE_REINFORCEMENT"
)

// Assemble groups span records (Flow != 0) into flows, ordered by first
// appearance. Non-span records pass through untouched by simply being
// ignored, so a full difftrace JSONL export can be fed directly.
func Assemble(recs []telemetry.Record) []*Flow {
	byFlow := map[uint16]*Flow{}
	var order []uint16
	for _, r := range recs {
		if r.Flow == 0 {
			continue
		}
		f, ok := byFlow[r.Flow]
		if !ok {
			f = &Flow{Flow: r.Flow, StartUS: r.US, Origin: r.Node}
			byFlow[r.Flow] = f
			order = append(order, r.Flow)
		}
		f.Events = append(f.Events, r)
		if r.US > f.EndUS {
			f.EndUS = r.US
		}
	}
	flows := make([]*Flow, 0, len(order))
	for _, id := range order {
		f := byFlow[id]
		sort.SliceStable(f.Events, func(i, j int) bool { return f.Events[i].US < f.Events[j].US })
		f.StartUS = f.Events[0].US
		f.Origin = f.Events[0].Node
		analyze(f)
		flows = append(flows, f)
	}
	return flows
}

// analyze fills a flow's derived fields from its sorted events.
func analyze(f *Flow) {
	hops := map[uint8]*Hop{}
	var hopOrder []uint8
	hop := func(h uint8) *Hop {
		p, ok := hops[h]
		if !ok {
			p = &Hop{Hop: h, TxUS: -1, RxUS: -1}
			hops[h] = p
			hopOrder = append(hopOrder, h)
		}
		return p
	}
	custody := map[uint32]bool{}
	var lastPrimary *telemetry.Record
	for i := range f.Events {
		r := &f.Events[i]
		reinf := r.Class == classPosReinf || r.Class == classNegReinf
		if reinf {
			f.Reinforcements = append(f.Reinforcements, Edge{
				US: r.US, Node: r.Node, Verb: r.Verb, Negative: r.Class == classNegReinf,
			})
			continue
		}
		if f.Class == "" && r.Class != "" {
			f.Class = r.Class
		}
		if f.ID == "" && r.ID != "" {
			f.ID = r.ID
		}
		lastPrimary = r
		h := uint8(r.Hops)
		switch r.Verb {
		case "tx":
			p := hop(h)
			if p.TxUS < 0 || r.US < p.TxUS {
				p.TxNode, p.TxUS = r.Node, r.US
			}
		case "recv":
			p := hop(h)
			if p.RxUS < 0 || r.US < p.RxUS {
				p.RxNode, p.RxUS = r.Node, r.US
			}
		case "deliver":
			if !f.Delivered {
				f.Delivered = true
				f.DeliverNode = r.Node
				f.DeliverUS = r.US
			}
		case "custody-accept":
			custody[r.Node] = true
		}
	}
	sort.Slice(hopOrder, func(i, j int) bool { return hopOrder[i] < hopOrder[j] })
	for _, h := range hopOrder {
		f.Hops = append(f.Hops, *hops[h])
	}
	for n := range custody {
		f.CustodyNodes = append(f.CustodyNodes, n)
	}
	sort.Slice(f.CustodyNodes, func(i, j int) bool { return f.CustodyNodes[i] < f.CustodyNodes[j] })
	// A flow whose primary story ends in a drop — and was never locally
	// delivered — died at that hop.
	if !f.Delivered && lastPrimary != nil && lastPrimary.Verb == "drop" {
		f.Dropped = true
		f.DropNode = lastPrimary.Node
		f.DropHop = uint8(lastPrimary.Hops)
		f.DropCause = lastPrimary.Cause
	}
}

// Localize renders a one-line drop (or delivery) verdict for a flow —
// the "flow 7 died at node 4: link-refused, custody not enabled" line.
func Localize(f *Flow) string {
	switch {
	case f.Delivered:
		return fmt.Sprintf("flow %04x delivered at node %d (+%dus)", f.Flow, f.DeliverNode, f.E2EUS())
	case f.Dropped && len(f.CustodyNodes) > 0:
		return fmt.Sprintf("flow %04x died at node %d (hop %d): %s; in custody at node %d",
			f.Flow, f.DropNode, f.DropHop, f.DropCause, f.CustodyNodes[len(f.CustodyNodes)-1])
	case f.Dropped:
		return fmt.Sprintf("flow %04x died at node %d (hop %d): %s, custody not enabled",
			f.Flow, f.DropNode, f.DropHop, f.DropCause)
	case len(f.CustodyNodes) > 0:
		return fmt.Sprintf("flow %04x in custody at node %d, awaiting a path",
			f.Flow, f.CustodyNodes[len(f.CustodyNodes)-1])
	default:
		return fmt.Sprintf("flow %04x in flight (last seen node %d)", f.Flow, lastNode(f))
	}
}

// lastNode returns the node of the flow's final event.
func lastNode(f *Flow) uint32 {
	if len(f.Events) == 0 {
		return f.Origin
	}
	return f.Events[len(f.Events)-1].Node
}

// PerHopLatencies collects every observed tx-to-recv hop latency (µs)
// across the given flows.
func PerHopLatencies(flows []*Flow) []int64 {
	var out []int64
	for _, f := range flows {
		for _, h := range f.Hops {
			if l := h.LatencyUS(); l >= 0 {
				out = append(out, l)
			}
		}
	}
	return out
}

// E2ELatencies collects every delivered flow's end-to-end latency (µs).
func E2ELatencies(flows []*Flow) []int64 {
	var out []int64
	for _, f := range flows {
		if l := f.E2EUS(); l >= 0 {
			out = append(out, l)
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100, nearest-rank) of the
// samples, or -1 for an empty set. The input is not modified.
func Percentile(samples []int64, p float64) int64 {
	if len(samples) == 0 {
		return -1
	}
	s := append([]int64(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// PathString renders the relay chain as "n1 -> n2 -> n3", using each
// hop's receiving node (the origin leads). Missing receivers render "?".
func PathString(f *Flow) string {
	out := fmt.Sprintf("n%d", f.Origin)
	for _, h := range f.Hops {
		if h.RxUS >= 0 {
			out += fmt.Sprintf(" -> n%d", h.RxNode)
		} else if h.TxUS >= 0 {
			out += " -> ?"
		}
	}
	return out
}
