package flightpath

import (
	"strings"
	"testing"

	"diffusion/internal/telemetry"
)

// rec builds one span record.
func rec(us int64, node uint32, verb, class string, hops int, flow uint16, cause string) telemetry.Record {
	return telemetry.Record{
		US: us, Node: node, Layer: "core", Verb: verb, Class: class,
		ID: "00000001:1", Hops: hops, Flow: flow, Cause: cause,
	}
}

// TestAssembleDeliveredFlow reconstructs a 3-node chain: node 1
// originates, node 2 relays, node 3 delivers.
func TestAssembleDeliveredFlow(t *testing.T) {
	recs := []telemetry.Record{
		rec(100, 1, "enqueue", "DATA", 0, 7, ""),
		rec(150, 1, "tx", "DATA", 0, 7, ""),
		rec(200, 2, "recv", "DATA", 0, 7, ""),
		rec(250, 2, "tx", "DATA", 1, 7, ""),
		rec(320, 3, "recv", "DATA", 1, 7, ""),
		rec(330, 3, "deliver", "DATA", 1, 7, ""),
		// A second, unrelated flow interleaves.
		rec(artTime, 9, "recv", "DATA", 0, 9, ""),
	}
	flows := Assemble(recs)
	if len(flows) != 2 {
		t.Fatalf("got %d flows, want 2", len(flows))
	}
	f := flows[0]
	if f.Flow != 7 || f.Origin != 1 || !f.Delivered || f.DeliverNode != 3 {
		t.Errorf("flow: %+v", f)
	}
	if f.E2EUS() != 230 {
		t.Errorf("e2e %d, want 230", f.E2EUS())
	}
	if len(f.Hops) != 2 {
		t.Fatalf("hops: %+v", f.Hops)
	}
	if f.Hops[0].TxNode != 1 || f.Hops[0].RxNode != 2 || f.Hops[0].LatencyUS() != 50 {
		t.Errorf("hop0: %+v", f.Hops[0])
	}
	if f.Hops[1].TxNode != 2 || f.Hops[1].RxNode != 3 || f.Hops[1].LatencyUS() != 70 {
		t.Errorf("hop1: %+v", f.Hops[1])
	}
	if got := PathString(f); got != "n1 -> n2 -> n3" {
		t.Errorf("path %q", got)
	}
	if !strings.Contains(Localize(f), "delivered at node 3") {
		t.Errorf("localize: %s", Localize(f))
	}
}

const artTime = 400

// TestAssembleDroppedFlow localizes a drop with no custody.
func TestAssembleDroppedFlow(t *testing.T) {
	recs := []telemetry.Record{
		rec(10, 1, "tx", "DATA", 0, 5, ""),
		rec(20, 4, "recv", "DATA", 0, 5, ""),
		rec(25, 4, "drop", "DATA", 0, 5, "link-refused"),
	}
	f := Assemble(recs)[0]
	if !f.Dropped || f.DropNode != 4 || f.DropCause != "link-refused" {
		t.Fatalf("flow: %+v", f)
	}
	loc := Localize(f)
	if !strings.Contains(loc, "died at node 4") || !strings.Contains(loc, "link-refused") ||
		!strings.Contains(loc, "custody not enabled") {
		t.Errorf("localize: %s", loc)
	}
}

// TestAssembleCustodyFlow: a drop with a custodian is parked, not dead.
func TestAssembleCustodyFlow(t *testing.T) {
	recs := []telemetry.Record{
		rec(10, 1, "tx", "EXPLORATORY_DATA", 0, 3, ""),
		rec(20, 2, "recv", "EXPLORATORY_DATA", 0, 3, ""),
		{US: 22, Node: 2, Layer: "custody", Verb: "custody-accept",
			Class: "EXPLORATORY_DATA", ID: "00000001:1", Flow: 3},
	}
	f := Assemble(recs)[0]
	if f.Dropped || len(f.CustodyNodes) != 1 || f.CustodyNodes[0] != 2 {
		t.Fatalf("flow: %+v", f)
	}
	if !strings.Contains(Localize(f), "in custody at node 2") {
		t.Errorf("localize: %s", Localize(f))
	}
}

// TestReinforcementEdges: reinforcement records share the flow but stay
// out of the hop chain.
func TestReinforcementEdges(t *testing.T) {
	recs := []telemetry.Record{
		rec(10, 1, "tx", "EXPLORATORY_DATA", 0, 8, ""),
		rec(20, 2, "recv", "EXPLORATORY_DATA", 0, 8, ""),
		rec(30, 2, "tx", "POSITIVE_REINFORCEMENT", 0, 8, ""),
		rec(40, 1, "recv", "NEGATIVE_REINFORCEMENT", 0, 8, ""),
	}
	f := Assemble(recs)[0]
	if len(f.Hops) != 1 {
		t.Fatalf("reinforcements leaked into hops: %+v", f.Hops)
	}
	if len(f.Reinforcements) != 2 || f.Reinforcements[0].Negative || !f.Reinforcements[1].Negative {
		t.Errorf("edges: %+v", f.Reinforcements)
	}
	if f.Class != "EXPLORATORY_DATA" {
		t.Errorf("class %q", f.Class)
	}
}

// TestPercentile covers the nearest-rank estimator's edges.
func TestPercentile(t *testing.T) {
	if got := Percentile(nil, 50); got != -1 {
		t.Errorf("empty: %d", got)
	}
	s := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{{0, 10}, {50, 50}, {90, 90}, {100, 100}}
	for _, c := range cases {
		if got := Percentile(s, c.p); got != c.want {
			t.Errorf("p%v = %d, want %d", c.p, got, c.want)
		}
	}
	// The input must not be reordered.
	if s[0] != 10 || s[9] != 100 {
		t.Error("Percentile mutated its input")
	}
}

// TestLatencyCollectors.
func TestLatencyCollectors(t *testing.T) {
	recs := []telemetry.Record{
		rec(100, 1, "tx", "DATA", 0, 7, ""),
		rec(150, 2, "recv", "DATA", 0, 7, ""),
		rec(160, 2, "deliver", "DATA", 0, 7, ""),
	}
	flows := Assemble(recs)
	hops := PerHopLatencies(flows)
	if len(hops) != 1 || hops[0] != 50 {
		t.Errorf("hop latencies: %v", hops)
	}
	e2e := E2ELatencies(flows)
	if len(e2e) != 1 || e2e[0] != 60 {
		t.Errorf("e2e latencies: %v", e2e)
	}
}
