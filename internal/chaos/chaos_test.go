package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubMember is a fake control plane recording /chaos bodies and serving
// a switchable /healthz code.
type stubMember struct {
	mu      sync.Mutex
	chaos   []map[string]any
	healthy bool
	srv     *httptest.Server
}

func newStubMember(t *testing.T) *stubMember {
	s := &stubMember{healthy: true}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /chaos", func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		var body map[string]any
		json.Unmarshal(b, &body)
		s.mu.Lock()
		s.chaos = append(s.chaos, body)
		s.mu.Unlock()
		w.Write([]byte("{}"))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ok := s.healthy
		s.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		w.Write([]byte(`{"id": 1}`))
	})
	s.srv = httptest.NewServer(mux)
	t.Cleanup(s.srv.Close)
	return s
}

func (s *stubMember) addr() string { return strings.TrimPrefix(s.srv.URL, "http://") }

func (s *stubMember) last(t *testing.T) map[string]any {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.chaos) == 0 {
		t.Fatal("no /chaos posts recorded")
	}
	return s.chaos[len(s.chaos)-1]
}

// sleepArgv returns a command that just sleeps, the minimal process to
// kill and restart.
func sleepArgv(t *testing.T) []string {
	t.Helper()
	bin, err := exec.LookPath("sleep")
	if err != nil {
		t.Skip("no sleep binary on PATH")
	}
	return []string{bin, "60"}
}

// TestKillAndRestartLifecycle exercises the crash-fault cycle against a
// real (trivial) process: alive, SIGKILL, dead, re-exec, alive again.
func TestKillAndRestartLifecycle(t *testing.T) {
	stub := newStubMember(t)
	p, err := Start(ProcSpec{ID: 3, Argv: sleepArgv(t), HTTP: stub.addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Kill() })

	if !p.Alive() {
		t.Fatal("not alive after Start")
	}
	if p.Pid() <= 0 {
		t.Fatalf("pid = %d", p.Pid())
	}
	if err := p.Restart(); err == nil {
		t.Fatal("Restart of a running member must fail")
	}
	if err := p.Kill(); err != nil {
		t.Fatal(err)
	}
	if p.Alive() {
		t.Fatal("alive after Kill returned")
	}
	if err := p.WaitExit(time.Second); err != nil {
		t.Fatal(err)
	}
	pid := p.Pid()
	if err := p.Restart(); err != nil {
		t.Fatal(err)
	}
	if !p.Alive() || p.Pid() == pid {
		t.Fatalf("restart: alive=%v pid %d -> %d", p.Alive(), pid, p.Pid())
	}
	if err := p.WaitHealthy(2 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestTerminateEscalates: a process ignoring SIGTERM is killed past the
// deadline and Terminate reports the failure.
func TestTerminateEscalates(t *testing.T) {
	sh, err := exec.LookPath("sh")
	if err != nil {
		t.Skip("no sh on PATH")
	}
	stub := newStubMember(t)
	p, err := Start(ProcSpec{ID: 4, HTTP: stub.addr(),
		Argv: []string{sh, "-c", "trap '' TERM; while :; do sleep 1; done"}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the trap install
	if err := p.Terminate(300 * time.Millisecond); err == nil {
		t.Fatal("Terminate of a TERM-ignoring process reported success")
	}
	if p.Alive() {
		t.Fatal("process survived the SIGKILL escalation")
	}
}

// TestImpairmentLevers checks SetLoss/Block/Unblock/Partition compose a
// consistent blocked set and post it to the member's /chaos endpoint.
func TestImpairmentLevers(t *testing.T) {
	stubA, stubB := newStubMember(t), newStubMember(t)
	a, err := Start(ProcSpec{ID: 1, Argv: sleepArgv(t), HTTP: stubA.addr()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Start(ProcSpec{ID: 2, Argv: sleepArgv(t), HTTP: stubB.addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Kill(); b.Kill() })

	if err := a.SetLoss(0.5); err != nil {
		t.Fatal(err)
	}
	if v := stubA.last(t)["loss"]; v != 0.5 {
		t.Fatalf("loss posted = %v", v)
	}
	if err := a.Block(7); err != nil {
		t.Fatal(err)
	}
	if err := a.Block(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubA.last(t)["blocked"]); string(got) != "[2,7]" {
		t.Fatalf("blocked posted = %s", got)
	}
	if err := a.Unblock(7); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubA.last(t)["blocked"]); string(got) != "[2]" {
		t.Fatalf("blocked after unblock = %s", got)
	}

	if err := Partition(a, b); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubB.last(t)["blocked"]); string(got) != "[1]" {
		t.Fatalf("partition on b = %s", got)
	}
	if err := Heal(a, b); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubB.last(t)["blocked"]); string(got) != "[]" {
		t.Fatalf("heal on b = %s", got)
	}

	// A restart resets the impairment mirror: the next Block posts a set
	// without the pre-crash entries.
	if err := a.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := a.Restart(); err != nil {
		t.Fatal(err)
	}
	if err := a.Block(9); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubA.last(t)["blocked"]); string(got) != "[9]" {
		t.Fatalf("blocked after restart = %s", got)
	}
}

// TestLossRamp steps loss in increments and leaves it at the target.
func TestLossRamp(t *testing.T) {
	stub := newStubMember(t)
	p, err := Start(ProcSpec{ID: 5, Argv: sleepArgv(t), HTTP: stub.addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Kill() })
	if err := p.LossRamp(0.4, 4, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stub.mu.Lock()
	var losses []float64
	for _, c := range stub.chaos {
		if v, ok := c["loss"].(float64); ok {
			losses = append(losses, v)
		}
	}
	stub.mu.Unlock()
	want := []float64{0.1, 0.2, 0.3, 0.4}
	if len(losses) != len(want) {
		t.Fatalf("ramp steps = %v", losses)
	}
	for i, v := range want {
		if diff := losses[i] - v; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("ramp steps = %v, want %v", losses, want)
		}
	}
}

// TestGroupPartitionLevers drives PartitionGroups/HealAll/SetLossAll
// against live /chaos endpoints: islands block exactly the foreign IDs,
// dead members are skipped rather than erred on, HealAll empties every
// survivor's blocked set, and SetLossAll programs one mesh-wide level.
func TestGroupPartitionLevers(t *testing.T) {
	stubs := make([]*stubMember, 4)
	procs := make([]*Proc, 4)
	for i := range procs {
		stubs[i] = newStubMember(t)
		p, err := Start(ProcSpec{ID: uint32(i + 1), Argv: sleepArgv(t), HTTP: stubs[i].addr()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Kill() })
		procs[i] = p
	}

	// Bisect {1,2} | {3,4}: each side blocks exactly the other side.
	if err := PartitionGroups(procs[:2], procs[2:]); err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"[3,4]", "[3,4]", "[1,2]", "[1,2]"} {
		if got, _ := json.Marshal(stubs[i].last(t)["blocked"]); string(got) != want {
			t.Fatalf("member %d blocked = %s, want %s", i+1, got, want)
		}
	}

	// A dead member is skipped: re-partitioning into islands programs the
	// three survivors and does not fail on the corpse.
	if err := procs[3].Kill(); err != nil {
		t.Fatal(err)
	}
	stubs[3].mu.Lock()
	posted := len(stubs[3].chaos)
	stubs[3].mu.Unlock()
	if err := PartitionGroups([]*Proc{procs[0]}, []*Proc{procs[1]}, procs[2:]); err != nil {
		t.Fatal(err)
	}
	if got, _ := json.Marshal(stubs[0].last(t)["blocked"]); string(got) != "[2,3,4]" {
		t.Fatalf("island member 1 blocked = %s", got)
	}
	if got, _ := json.Marshal(stubs[2].last(t)["blocked"]); string(got) != "[1,2]" {
		t.Fatalf("island member 3 blocked = %s", got)
	}
	stubs[3].mu.Lock()
	after := len(stubs[3].chaos)
	stubs[3].mu.Unlock()
	if after != posted {
		t.Fatal("PartitionGroups posted to a dead member")
	}

	// HealAll clears every survivor's blocked set in one update each.
	if err := HealAll(procs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got, _ := json.Marshal(stubs[i].last(t)["blocked"]); string(got) != "[]" {
			t.Fatalf("member %d blocked after HealAll = %s", i+1, got)
		}
	}

	// SetLossAll programs the same level everywhere that is still alive.
	if err := SetLossAll(0.3, procs...); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if v := stubs[i].last(t)["loss"]; v != 0.3 {
			t.Fatalf("member %d loss = %v", i+1, v)
		}
	}
	stubs[3].mu.Lock()
	final := len(stubs[3].chaos)
	stubs[3].mu.Unlock()
	if final != posted {
		t.Fatal("HealAll/SetLossAll posted to a dead member")
	}
}
