package chaos

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"
)

// Port and address-file helpers shared by the harness's test drivers and
// cmd/difffleet. Pre-reserving ports (FreePorts) suits members that must
// restart on an identical argv; address files suit members launched on
// ":0", where only the member itself knows what it bound.

// FreePorts reserves n distinct free ports for the given network ("udp"
// or "tcp") by binding :0 sockets, reading the assigned ports back, and
// closing them. The usual caveat applies: the ports are only probably
// free, another process may grab one between close and reuse. Binding is
// done all at once so the kernel cannot hand the same port out twice.
func FreePorts(network string, n int) ([]int, error) {
	ports := make([]int, 0, n)
	var closers []func() error
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	for i := 0; i < n; i++ {
		switch network {
		case "udp":
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				return nil, fmt.Errorf("chaos: reserve udp port: %w", err)
			}
			closers = append(closers, conn.Close)
			ports = append(ports, conn.LocalAddr().(*net.UDPAddr).Port)
		case "tcp":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("chaos: reserve tcp port: %w", err)
			}
			closers = append(closers, ln.Close)
			ports = append(ports, ln.Addr().(*net.TCPAddr).Port)
		default:
			return nil, fmt.Errorf("chaos: reserve ports: unknown network %q", network)
		}
	}
	return ports, nil
}

// AddrFile is the JSON contract between a member process listening on
// ":0" and the orchestrator that launched it: the member writes the
// addresses it actually bound, the orchestrator waits for the file.
type AddrFile struct {
	ID   uint32 `json:"id"`
	UDP  string `json:"udp"`
	HTTP string `json:"http"`
}

// WriteAddrFile writes an address file atomically (temp file + rename),
// so a watcher never reads a torn write.
func WriteAddrFile(path string, a AddrFile) error {
	b, err := json.Marshal(a)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".addr-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WaitAddrFile polls for an address file until it parses or the timeout
// passes.
func WaitAddrFile(path string, timeout time.Duration) (AddrFile, error) {
	var a AddrFile
	deadline := time.Now().Add(timeout)
	for {
		b, err := os.ReadFile(path)
		if err == nil && json.Unmarshal(b, &a) == nil && a.UDP != "" {
			return a, nil
		}
		if time.Now().After(deadline) {
			return a, fmt.Errorf("chaos: no address file at %s after %v", path, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// SetHTTP re-points the member's control-plane address — for members
// launched with ":0" listeners, whose real address is only known from
// their address file after start.
func (p *Proc) SetHTTP(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.spec.HTTP = addr
}
