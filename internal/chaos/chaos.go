// Package chaos is a process-level fault-injection harness for live
// diffusion clusters. Where internal/fault perturbs the simulated
// network under a virtual clock, this package attacks real diffnode
// processes the way production does: SIGKILL and re-exec for crash
// faults, and each member's POST /chaos control endpoint for
// transport-level partitions and loss ramps.
//
// A Proc wraps one member process. Kill delivers an unhandleable
// SIGKILL — no drain, no state save beyond what the daemon already
// persisted — and Restart re-execs the identical argv, so a member
// configured with -state-file exercises the daemon's warm-restart path
// exactly as a supervisor (systemd, a k8s kubelet) would. The
// impairment levers (SetLoss, Block, Partition) mirror the daemon's
// chaos endpoint and keep a local copy of the intended state so
// successive calls compose.
package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sort"
	"sync"
	"syscall"
	"time"
)

// ProcSpec describes how to run and reach one member process.
type ProcSpec struct {
	// ID is the member's diffusion node ID (used in logs and Partition).
	ID uint32
	// Argv is the full command line, Argv[0] being the binary. Restart
	// re-execs it verbatim.
	Argv []string
	// HTTP is the member's control-plane address ("127.0.0.1:8001").
	HTTP string
	// Log receives the child's stdout and stderr (nil discards).
	Log io.Writer
}

// Proc is one managed member process.
type Proc struct {
	spec ProcSpec

	mu      sync.Mutex
	cmd     *exec.Cmd
	exited  chan struct{}
	exitErr error

	// Intended impairment, replayed to the member's /chaos endpoint on
	// every change. Reset when the process restarts (a fresh process
	// starts unimpaired).
	loss    float64
	blocked map[uint32]bool
}

// httpClient bounds every control-plane call the harness makes.
var httpClient = &http.Client{Timeout: 5 * time.Second}

// Start launches the member process.
func Start(spec ProcSpec) (*Proc, error) {
	if len(spec.Argv) == 0 {
		return nil, fmt.Errorf("chaos: member %d: empty argv", spec.ID)
	}
	p := &Proc{spec: spec, blocked: map[uint32]bool{}}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p, p.startLocked()
}

// startLocked execs the argv and watches for exit. Caller holds p.mu.
func (p *Proc) startLocked() error {
	cmd := exec.Command(p.spec.Argv[0], p.spec.Argv[1:]...)
	// Only wire pipes when a log sink was asked for: with a non-file
	// writer, Wait blocks until every pipe writer exits — including any
	// grandchildren surviving a SIGKILL of the member itself.
	if p.spec.Log != nil {
		cmd.Stdout = p.spec.Log
		cmd.Stderr = p.spec.Log
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("chaos: member %d: %w", p.spec.ID, err)
	}
	p.cmd = cmd
	exited := make(chan struct{})
	p.exited = exited
	go func() {
		err := cmd.Wait()
		p.mu.Lock()
		p.exitErr = err
		p.mu.Unlock()
		close(exited)
	}()
	return nil
}

// ID returns the member's node ID.
func (p *Proc) ID() uint32 { return p.spec.ID }

// HTTPAddr returns the member's control-plane address (see SetHTTP for
// members launched on ":0").
func (p *Proc) HTTPAddr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spec.HTTP
}

// Pid returns the current process ID (-1 when not running).
func (p *Proc) Pid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd == nil || p.cmd.Process == nil {
		return -1
	}
	return p.cmd.Process.Pid
}

// Alive reports whether the process is currently running.
func (p *Proc) Alive() bool {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if exited == nil {
		return false
	}
	select {
	case <-exited:
		return false
	default:
		return true
	}
}

// Kill delivers SIGKILL and waits for the process to be reaped. This is
// the crash fault: the member gets no chance to drain or save.
func (p *Proc) Kill() error {
	p.mu.Lock()
	cmd, exited := p.cmd, p.exited
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("chaos: member %d: not started", p.spec.ID)
	}
	cmd.Process.Kill()
	<-exited
	return nil
}

// Terminate delivers SIGTERM (the graceful path) and waits up to timeout
// for a clean exit, escalating to SIGKILL past the deadline.
func (p *Proc) Terminate(timeout time.Duration) error {
	p.mu.Lock()
	cmd, exited := p.cmd, p.exited
	p.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return fmt.Errorf("chaos: member %d: not started", p.spec.ID)
	}
	cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-exited:
	case <-time.After(timeout):
		cmd.Process.Kill()
		<-exited
		return fmt.Errorf("chaos: member %d: no exit within %v of SIGTERM", p.spec.ID, timeout)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exitErr != nil {
		return fmt.Errorf("chaos: member %d: exit: %w", p.spec.ID, p.exitErr)
	}
	return nil
}

// Restart re-execs the member's argv after it has exited. Impairment
// state is reset: the fresh process starts with no loss and no blocks.
func (p *Proc) Restart() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.exited != nil {
		select {
		case <-p.exited:
		default:
			return fmt.Errorf("chaos: member %d: still running", p.spec.ID)
		}
	}
	p.loss = 0
	p.blocked = map[uint32]bool{}
	return p.startLocked()
}

// WaitExit blocks until the process exits or the timeout passes.
func (p *Proc) WaitExit(timeout time.Duration) error {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if exited == nil {
		return nil
	}
	select {
	case <-exited:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("chaos: member %d: still running after %v", p.spec.ID, timeout)
	}
}

// Healthz fetches the member's /healthz. The decoded body is returned
// even on 503 (an isolated node still reports per-neighbor state).
func (p *Proc) Healthz() (int, map[string]any, error) {
	resp, err := httpClient.Get(fmt.Sprintf("http://%s/healthz", p.HTTPAddr()))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var body map[string]any
	raw, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(raw, &body)
	return resp.StatusCode, body, nil
}

// WaitHealthy polls /healthz until it answers 200 or the timeout passes.
func (p *Proc) WaitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		code, _, err := p.Healthz()
		if err == nil && code == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: member %d: not healthy after %v (last: code=%d err=%v)",
				p.spec.ID, timeout, code, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// SetLoss sets the member's egress loss probability.
func (p *Proc) SetLoss(f float64) error {
	p.mu.Lock()
	p.loss = f
	p.mu.Unlock()
	return p.postChaos(map[string]any{"loss": f})
}

// Block adds peers to the member's blocked set (traffic dropped both
// ways), composing with earlier blocks.
func (p *Proc) Block(peers ...uint32) error {
	p.mu.Lock()
	for _, id := range peers {
		p.blocked[id] = true
	}
	set := p.blockedLocked()
	p.mu.Unlock()
	return p.postChaos(map[string]any{"blocked": set})
}

// Unblock removes peers from the member's blocked set.
func (p *Proc) Unblock(peers ...uint32) error {
	p.mu.Lock()
	for _, id := range peers {
		delete(p.blocked, id)
	}
	set := p.blockedLocked()
	p.mu.Unlock()
	return p.postChaos(map[string]any{"blocked": set})
}

// blockedLocked renders the blocked set sorted; caller holds p.mu.
func (p *Proc) blockedLocked() []uint32 {
	set := make([]uint32, 0, len(p.blocked))
	for id := range p.blocked {
		set = append(set, id)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// postChaos sends one impairment update to the member.
func (p *Proc) postChaos(body map[string]any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := httpClient.Post(fmt.Sprintf("http://%s/chaos", p.HTTPAddr()),
		"application/json", bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("chaos: member %d: %w", p.spec.ID, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("chaos: member %d: /chaos answered %d", p.spec.ID, resp.StatusCode)
	}
	return nil
}

// LossRamp steps the member's egress loss from its current value to
// target in steps equal increments, holding each level for hold. The
// classic ramp experiment: watch retransmits climb and delivery hold.
func (p *Proc) LossRamp(target float64, steps int, hold time.Duration) error {
	if steps < 1 {
		steps = 1
	}
	p.mu.Lock()
	from := p.loss
	p.mu.Unlock()
	for i := 1; i <= steps; i++ {
		f := from + (target-from)*float64(i)/float64(steps)
		if err := p.SetLoss(f); err != nil {
			return err
		}
		time.Sleep(hold)
	}
	return nil
}

// Partition blocks all traffic between two members, both directions on
// both ends — a symmetric network split.
func Partition(a, b *Proc) error {
	if err := a.Block(b.ID()); err != nil {
		return err
	}
	return b.Block(a.ID())
}

// Heal lifts a Partition.
func Heal(a, b *Proc) error {
	if err := a.Unblock(b.ID()); err != nil {
		return err
	}
	return b.Unblock(a.ID())
}

// ClearBlocked empties the member's blocked set in one update,
// regardless of how the blocks accumulated.
func (p *Proc) ClearBlocked() error {
	p.mu.Lock()
	p.blocked = map[uint32]bool{}
	p.mu.Unlock()
	return p.postChaos(map[string]any{"blocked": []uint32{}})
}

// PartitionGroups splits the fleet into islands: every member of each
// group blocks every member of every other group, so no traffic crosses
// a group boundary while intra-group links stay intact. Members that are
// not running are skipped — a dead process has no endpoint to program,
// and the surviving side's blocks already drop both directions of every
// cross-boundary pair. Callers restarting a member inside a held
// partition rely on exactly that: Restart resets the fresh process to
// unimpaired, and the far side's blocks keep the split in force.
func PartitionGroups(groups ...[]*Proc) error {
	for gi, g := range groups {
		var foreign []uint32
		for gj, h := range groups {
			if gj == gi {
				continue
			}
			for _, q := range h {
				foreign = append(foreign, q.ID())
			}
		}
		if len(foreign) == 0 {
			continue
		}
		for _, p := range g {
			if !p.Alive() {
				continue
			}
			if err := p.Block(foreign...); err != nil {
				return err
			}
		}
	}
	return nil
}

// HealAll lifts every block on every running member, healing any
// partition regardless of how it was constructed. Loss settings are
// untouched — partitions and loss are independent levers.
func HealAll(procs ...*Proc) error {
	for _, p := range procs {
		if !p.Alive() {
			continue
		}
		if err := p.ClearBlocked(); err != nil {
			return err
		}
	}
	return nil
}

// SetLossAll sets the same egress loss probability on every running
// member — the mesh-wide level of a fleet loss ramp.
func SetLossAll(f float64, procs ...*Proc) error {
	for _, p := range procs {
		if !p.Alive() {
			continue
		}
		if err := p.SetLoss(f); err != nil {
			return err
		}
	}
	return nil
}
