// Package radio simulates the shared wireless medium the paper's testbed
// ran on: Radiometrix RPC packet radios at about 13 kb/s with attenuated
// antennas, where "radio range varies greatly depending on node position",
// links can be asymmetric or intermittent (paper section 6.4), and hidden
// terminals make collisions endemic (section 6.1).
//
// The model is a broadcast channel over a topology:
//
//   - Reception probability falls from (1-BaseLoss) inside SolidRange to
//     zero at MaxRange, as a function of per-link *effective distance*.
//   - Each directed link gets a frozen random distance offset
//     (AsymmetrySigma), so A may hear B while B cannot hear A.
//   - Each directed link runs a two-state Gilbert–Elliott process; in the
//     bad state an extra loss probability applies, producing the
//     intermittent connectivity the paper observed.
//   - Transmissions occupy the medium for their serialization time at
//     BitRate. Two transmissions overlapping at a receiver corrupt each
//     other there (no capture), and a half-duplex transceiver cannot
//     receive while sending — together these reproduce hidden terminals.
//
// The channel runs on any sim.Executor. Every stream of randomness is
// derived per directed link from the master seed (sim.LinkStream), and all
// link state is owned by exactly one node's context — the receiver for
// Gilbert–Elliott evolution and loss draws, fault-injection (global)
// events for blackout flags — so the sharded kernel can execute
// transceivers in parallel without locks and still reproduce sequential
// runs bit for bit. Cross-node delivery goes through Port.ScheduleRemote
// with the propagation delay, which is exactly the lookahead the
// conservative kernel schedules against.
package radio

import (
	"fmt"
	"math/rand"

	"time"

	"diffusion/internal/sim"
	"diffusion/internal/topo"
)

// Params configures the channel.
type Params struct {
	// BitRate is the radio bit rate in bits/second (paper: ~13 kb/s).
	BitRate int
	// PreambleBytes is per-frame physical overhead added to airtime.
	PreambleBytes int
	// SolidRange is the effective distance (m) up to which links are
	// reliable apart from BaseLoss.
	SolidRange float64
	// MaxRange is the effective distance at which reception probability
	// reaches zero; beyond it a transmitter is inaudible (it neither
	// delivers nor causes collisions or carrier).
	MaxRange float64
	// BaseLoss is the frame loss probability inside SolidRange.
	BaseLoss float64
	// AsymmetrySigma is the standard deviation (m) of the per-directed-link
	// effective-distance offset. Zero disables asymmetry.
	AsymmetrySigma float64
	// MeanGood and MeanBad are the Gilbert–Elliott state holding times.
	// MeanBad <= 0 disables intermittency.
	MeanGood, MeanBad time.Duration
	// BadLoss is the extra loss probability while a link is in the bad
	// state.
	BadLoss float64
	// PropDelay is the fixed propagation delay.
	PropDelay time.Duration
	// CaptureRatio enables the capture effect: when two frames overlap at
	// a receiver, a frame whose effective link distance is at most
	// CaptureRatio times the interferer's survives while the interferer
	// is corrupted. Zero disables capture (both frames corrupt).
	CaptureRatio float64
}

// DefaultParams returns the testbed-calibrated channel: 13 kb/s, reliable
// to 13.5 m, fading to nothing at 19 m, mildly lossy, asymmetric, and
// intermittent.
func DefaultParams() Params {
	return Params{
		BitRate:       13000,
		PreambleBytes: 8,
		SolidRange:    13.5,
		MaxRange:      19,
		// Loss is per fragment; a 112-byte event crosses 5 fragments and
		// 4-5 hops, so per-fragment loss compounds steeply. These values
		// are calibrated so end-to-end event delivery lands in the 55-80%
		// band the paper reports under load (section 6.1).
		BaseLoss:       0.005,
		AsymmetrySigma: 0.8,
		MeanGood:       120 * time.Second,
		MeanBad:        2 * time.Second,
		BadLoss:        0.5,
		PropDelay:      3 * time.Microsecond,
		CaptureRatio:   0.85,
	}
}

// PerfectParams returns an idealized loss-free channel (still rate-limited
// and collision-prone), useful for unit tests and ablations.
func PerfectParams() Params {
	p := DefaultParams()
	p.BaseLoss = 0
	p.AsymmetrySigma = 0
	p.MeanBad = 0
	return p
}

// Handler receives successfully decoded frames: the link-layer sender ID
// and the payload bytes.
type Handler func(from uint32, payload []byte)

// Channel is the shared medium.
type Channel struct {
	eng    sim.Executor
	params Params
	topo   *topo.Topology
	nodes  map[uint32]*Transceiver
	links  map[linkKey]*link
	// out lists each sender's audible links in topology order — the
	// receivers a transmission must be scheduled at. Precomputing it makes
	// Transmit O(neighbors) instead of O(nodes).
	out map[uint32][]outLink
}

// ChannelStats aggregates medium-wide counters.
type ChannelStats struct {
	FramesSent       int
	FramesDelivered  int
	FramesLost       int // channel loss draws
	FramesCollided   int // receptions corrupted by overlap
	FramesHalfDuplex int // receptions missed because the receiver was sending
	FramesBlackout   int // receptions suppressed by a forced-down link (fault injection)
}

// add accumulates other into s.
func (s *ChannelStats) add(o ChannelStats) {
	s.FramesSent += o.FramesSent
	s.FramesDelivered += o.FramesDelivered
	s.FramesLost += o.FramesLost
	s.FramesCollided += o.FramesCollided
	s.FramesHalfDuplex += o.FramesHalfDuplex
	s.FramesBlackout += o.FramesBlackout
}

type linkKey struct{ from, to uint32 }

type outLink struct {
	to uint32
	l  *link
}

// link is per-directed-link channel state. Ownership: effDist is frozen at
// construction; forcedDown is written only by global (fault-injection)
// events; bad/nextTransition and the rng evolve only in the receiver's
// context.
type link struct {
	effDist float64
	// rng is the link's derived random stream (Gilbert–Elliott sojourns,
	// loss draws); independent of every other stream, so traffic on one
	// link never perturbs another.
	rng *rand.Rand
	// forcedDown blacks the link out entirely (fault injection): the
	// transmitter is inaudible at the receiver — no delivery, no carrier,
	// no collisions — as if an obstruction severed the path.
	forcedDown bool
	// Gilbert–Elliott lazy state.
	bad            bool
	nextTransition time.Duration
}

// audibleCutoff returns the base distance beyond which a directed link can
// never be audible: MaxRange plus six sigmas of asymmetry offset. Pairs
// past it carry no frames, so no link state is materialized for them —
// a 1024-node grid stores thousands of links instead of a million.
func (p Params) audibleCutoff() float64 {
	return p.MaxRange + 6*p.AsymmetrySigma
}

// NewChannel builds a channel over the given topology on the executor. All
// randomness comes from per-link streams derived from the executor's seed.
func NewChannel(x sim.Executor, tp *topo.Topology, p Params) *Channel {
	if p.BitRate <= 0 {
		panic("radio: BitRate must be positive")
	}
	if p.MaxRange < p.SolidRange {
		panic("radio: MaxRange must be >= SolidRange")
	}
	c := &Channel{
		eng:    x,
		params: p,
		topo:   tp,
		nodes:  map[uint32]*Transceiver{},
		links:  map[linkKey]*link{},
		out:    map[uint32][]outLink{},
	}
	// Freeze per-directed-link effective distances up front so that the
	// channel realization is independent of traffic order.
	ids := tp.IDs()
	cutoff := p.audibleCutoff()
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			d := tp.Distance(a, b)
			if d >= cutoff {
				continue // inaudible regardless of the offset draw
			}
			rng := x.DeriveRand(sim.LinkStream(a, b)...)
			if p.AsymmetrySigma > 0 {
				d += rng.NormFloat64() * p.AsymmetrySigma
				if d < 0 {
					d = 0
				}
			}
			if d >= p.MaxRange {
				continue // inaudible; carries nothing, stores nothing
			}
			l := &link{effDist: d, rng: rng}
			if p.MeanBad > 0 {
				l.nextTransition = x.Now() + holdTime(l.rng, p.MeanGood)
			}
			c.links[linkKey{a, b}] = l
			c.out[a] = append(c.out[a], outLink{to: b, l: l})
		}
	}
	return c
}

// Airtime returns the serialization time of an n-byte frame.
func (c *Channel) Airtime(n int) time.Duration {
	bits := (n + c.params.PreambleBytes) * 8
	return time.Duration(bits) * time.Second / time.Duration(c.params.BitRate)
}

// Attach registers a transceiver for node id delivering frames to h.
func (c *Channel) Attach(id uint32, h Handler) *Transceiver {
	if _, ok := c.topo.Node(id); !ok {
		panic(fmt.Sprintf("radio: node %d not in topology", id))
	}
	if _, dup := c.nodes[id]; dup {
		panic(fmt.Sprintf("radio: node %d already attached", id))
	}
	t := &Transceiver{ch: c, id: id, port: c.eng.Port(id), handler: h}
	c.nodes[id] = t
	return t
}

// Stats sums the per-transceiver channel counters into the medium-wide
// view, in topology order.
func (c *Channel) Stats() ChannelStats {
	var s ChannelStats
	for _, id := range c.topo.IDs() {
		if t, ok := c.nodes[id]; ok {
			s.add(t.chStats)
		}
	}
	return s
}

// holdTime draws a Gilbert–Elliott sojourn with the given mean from rng.
func holdTime(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}

// linkBad lazily evolves and reports the Gilbert–Elliott state of l at
// time now (receiver context only).
func (c *Channel) linkBad(l *link, now time.Duration) bool {
	if c.params.MeanBad <= 0 {
		return false
	}
	for l.nextTransition <= now {
		l.bad = !l.bad
		at := l.nextTransition
		mean := c.params.MeanGood
		if l.bad {
			mean = c.params.MeanBad
		}
		l.nextTransition = at + holdTime(l.rng, mean)
		if l.nextTransition <= at {
			l.nextTransition = at + time.Nanosecond
		}
	}
	return l.bad
}

// lossProb returns the loss probability for effective distance d, before
// the Gilbert–Elliott penalty.
func (c *Channel) lossProb(d float64) float64 {
	p := c.params
	switch {
	case d <= p.SolidRange:
		return p.BaseLoss
	case d >= p.MaxRange:
		return 1
	default:
		// Quadratic ramp from BaseLoss at SolidRange to 1 at MaxRange.
		f := (d - p.SolidRange) / (p.MaxRange - p.SolidRange)
		return p.BaseLoss + (1-p.BaseLoss)*f*f
	}
}

// SetLinkDown forces the directed link from→to into (or out of) blackout.
// While down the link delivers nothing and contributes no carrier or
// interference, modelling a severed path rather than a noisy one. Fault
// injection uses it for link blackouts and partitions; unknown IDs panic
// (a scenario-construction error). Blacking out a pair that is already out
// of radio range is a no-op. Must be called from global (fault-injection)
// context, never from node event handlers.
func (c *Channel) SetLinkDown(from, to uint32, down bool) {
	if _, ok := c.topo.Node(from); !ok {
		panic(fmt.Sprintf("radio: no link %d->%d in topology", from, to))
	}
	if _, ok := c.topo.Node(to); !ok {
		panic(fmt.Sprintf("radio: no link %d->%d in topology", from, to))
	}
	if l, ok := c.links[linkKey{from, to}]; ok {
		l.forcedDown = down
	}
}

// SetNodeDown blacks out (or restores) every directed link to and from id,
// turning the node's radio off for the rest of the network: it neither
// delivers, is heard, nor interferes. The node-crash fault uses it.
// Restoring a node clears any per-link blackouts previously set on its
// links with SetLinkDown. Global (fault-injection) context only.
func (c *Channel) SetNodeDown(id uint32, down bool) {
	if _, ok := c.topo.Node(id); !ok {
		panic(fmt.Sprintf("radio: node %d not in topology", id))
	}
	for _, ol := range c.out[id] {
		ol.l.forcedDown = down
	}
	for _, other := range c.topo.IDs() {
		if l, ok := c.links[linkKey{other, id}]; ok {
			l.forcedDown = down
		}
	}
}

// LinkDown reports whether the directed link from→to is forced down.
func (c *Channel) LinkDown(from, to uint32) bool {
	l, ok := c.links[linkKey{from, to}]
	return ok && l.forcedDown
}

// Transceiver is one node's half-duplex radio. All mutable state is owned
// by the node's own event context.
type Transceiver struct {
	ch      *Channel
	id      uint32
	port    sim.Port
	handler Handler

	txUntil time.Duration // end of our own transmission
	rxCount int           // ongoing audible receptions
	ongoing []*reception
	Stats   TransceiverStats
	// chStats is this node's contribution to the medium-wide counters:
	// sender-side counts (sent, blackout) accumulate at the transmitter,
	// receiver-side counts (delivered, lost, collided, half-duplex) at the
	// receiver — so no counter is shared across shard boundaries.
	chStats ChannelStats
}

// TransceiverStats counts per-node radio activity; the Figure 8 experiment
// reads BytesSent, and the energy model reads the time accumulators.
type TransceiverStats struct {
	FramesSent     int
	BytesSent      int
	FramesReceived int
	BytesReceived  int
	TxTime         time.Duration
	RxTime         time.Duration
}

// ID returns the node id.
func (t *Transceiver) ID() uint32 { return t.id }

// Airtime returns the serialization time of an n-byte frame on this
// transceiver's channel.
func (t *Transceiver) Airtime(n int) time.Duration { return t.ch.Airtime(n) }

// Busy reports carrier: true while this node is transmitting or any audible
// transmission is in progress. MAC carrier sense uses this.
func (t *Transceiver) Busy() bool {
	return t.port.Now() < t.txUntil || t.rxCount > 0
}

// Transmitting reports whether this node's own transmitter is active.
func (t *Transceiver) Transmitting() bool { return t.port.Now() < t.txUntil }

// reception tracks one incoming frame at one receiver.
type reception struct {
	collided bool
	effDist  float64
}

// Transmit broadcasts payload on the medium. It returns the airtime. The
// caller (the MAC) must not call Transmit again until the airtime elapses;
// doing so panics, because it indicates a MAC bug rather than a channel
// condition. Under the sharded kernel, Transmit is only legal inside a
// transmission-commit (AfterTx) event.
func (t *Transceiver) Transmit(payload []byte) time.Duration {
	c := t.ch
	now := t.port.Now()
	if now < t.txUntil {
		panic(fmt.Sprintf("radio: node %d transmit while transmitting", t.id))
	}
	air := c.Airtime(len(payload))
	t.txUntil = now + air
	t.Stats.FramesSent++
	t.Stats.BytesSent += len(payload)
	t.Stats.TxTime += air
	t.chStats.FramesSent++

	data := make([]byte, len(payload))
	copy(data, payload)

	// Audible receivers were precomputed in topology order, so iteration
	// is deterministic and O(neighbors).
	for _, ol := range c.out[t.id] {
		rx, attached := c.nodes[ol.to]
		if !attached {
			continue
		}
		l := ol.l
		if l.forcedDown {
			// The link is blacked out by fault injection: the frame would
			// have been audible here but the severed path swallows it.
			t.chStats.FramesBlackout++
			continue
		}
		t.port.ScheduleRemote(ol.to, c.params.PropDelay, func() {
			rx.beginReception(t.id, l, data, air)
		})
	}
	return air
}

// beginReception starts one frame's arrival at this receiver (receiver
// context).
func (t *Transceiver) beginReception(from uint32, l *link, data []byte, air time.Duration) {
	c := t.ch
	rec := &reception{effDist: l.effDist}
	// Overlap resolution: without capture both frames corrupt; with
	// capture, a clearly stronger (closer) frame survives the overlap.
	for _, other := range t.ongoing {
		ratio := c.params.CaptureRatio
		switch {
		case ratio > 0 && rec.effDist <= ratio*other.effDist:
			other.collided = true
		case ratio > 0 && other.effDist <= ratio*rec.effDist:
			rec.collided = true
		default:
			other.collided = true
			rec.collided = true
		}
	}
	t.rxCount++
	t.Stats.RxTime += air
	t.ongoing = append(t.ongoing, rec)

	t.port.After(air, func() {
		t.rxCount--
		t.removeOngoing(rec)
		now := t.port.Now()
		// Half-duplex: if we transmitted during any part of the reception
		// window, the frame is missed.
		if t.txOverlapped(now - air) {
			t.chStats.FramesHalfDuplex++
			return
		}
		if rec.collided {
			t.chStats.FramesCollided++
			return
		}
		loss := c.lossProb(l.effDist)
		if c.linkBad(l, now) {
			loss = loss + (1-loss)*c.params.BadLoss
		}
		if l.rng.Float64() < loss {
			t.chStats.FramesLost++
			return
		}
		t.Stats.FramesReceived++
		t.Stats.BytesReceived += len(data)
		t.chStats.FramesDelivered++
		if t.handler != nil {
			t.handler(from, data)
		}
	})
}

func (t *Transceiver) removeOngoing(rec *reception) {
	for i, r := range t.ongoing {
		if r == rec {
			t.ongoing = append(t.ongoing[:i], t.ongoing[i+1:]...)
			return
		}
	}
}

// txOverlapped reports whether our transmitter was active at any point
// since the given instant. txUntil only moves forward, so checking the most
// recent transmission suffices.
func (t *Transceiver) txOverlapped(since time.Duration) bool {
	return t.txUntil > since
}
