package radio

import (
	"math"
	"testing"
	"time"

	"diffusion/internal/sim"
	"diffusion/internal/topo"
)

// pair builds a two-node channel at the given separation.
func pair(t *testing.T, dist float64, p Params, seed int64) (*sim.Scheduler, *Channel, *Transceiver, *Transceiver, *[]string) {
	t.Helper()
	tp := topo.New("pair")
	tp.Add(topo.Node{ID: 1, X: 0})
	tp.Add(topo.Node{ID: 2, X: dist})
	s := sim.New(seed)
	c := NewChannel(s, tp, p)
	var log []string
	t1 := c.Attach(1, func(from uint32, b []byte) { log = append(log, "1<-") })
	t2 := c.Attach(2, func(from uint32, b []byte) {
		log = append(log, "2<-"+string(b))
	})
	return s, c, t1, t2, &log
}

func TestDeliveryInRange(t *testing.T) {
	s, c, t1, _, log := pair(t, 10, PerfectParams(), 1)
	air := t1.Transmit([]byte("hello"))
	if want := c.Airtime(5); air != want {
		t.Errorf("airtime %v want %v", air, want)
	}
	s.Run()
	if len(*log) != 1 || (*log)[0] != "2<-hello" {
		t.Fatalf("delivery log: %v", *log)
	}
	if c.Stats().FramesDelivered != 1 || c.Stats().FramesSent != 1 {
		t.Errorf("stats: %+v", c.Stats())
	}
	if t1.Stats.BytesSent != 5 || t1.Stats.FramesSent != 1 {
		t.Errorf("tx stats: %+v", t1.Stats)
	}
}

func TestNoDeliveryBeyondMaxRange(t *testing.T) {
	s, c, t1, t2, log := pair(t, 25, PerfectParams(), 1)
	t1.Transmit([]byte("x"))
	s.Run()
	if len(*log) != 0 {
		t.Fatalf("should not deliver beyond MaxRange: %v", *log)
	}
	if t2.Stats.FramesReceived != 0 || c.Stats().FramesLost != 0 {
		t.Error("out-of-range node should not even count a loss")
	}
}

func TestFadeZoneLossy(t *testing.T) {
	// At 17m (between solid 13.5 and max 19) delivery should be partial.
	p := PerfectParams()
	delivered := 0
	const trials = 300
	for seed := int64(0); seed < trials; seed++ {
		s, _, t1, t2, _ := pair(t, 17, p, seed)
		t1.Transmit([]byte("x"))
		s.Run()
		delivered += t2.Stats.FramesReceived
	}
	if delivered == 0 || delivered == trials {
		t.Errorf("fade zone delivered %d/%d, want partial", delivered, trials)
	}
}

func TestAirtimeAt13kbps(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, topo.Line(2, 5), DefaultParams())
	// A 127-byte message + 8B preamble at 13 kb/s ≈ 83 ms: multi-hop
	// traffic is slow, as in the testbed.
	air := c.Airtime(127)
	if air < 80*time.Millisecond || air > 90*time.Millisecond {
		t.Errorf("airtime for 127B = %v, want ~83ms", air)
	}
}

func TestCarrierSense(t *testing.T) {
	s, _, t1, t2, _ := pair(t, 10, PerfectParams(), 1)
	if t1.Busy() || t2.Busy() {
		t.Fatal("idle medium must not be busy")
	}
	t1.Transmit(make([]byte, 100))
	if !t1.Busy() || !t1.Transmitting() {
		t.Error("transmitter must be busy during its own send")
	}
	// After propagation delay the peer hears carrier.
	s.RunUntil(s.Now() + time.Millisecond)
	if !t2.Busy() {
		t.Error("receiver in range must sense carrier")
	}
	s.Run()
	if t1.Busy() || t2.Busy() {
		t.Error("medium must go idle after airtime")
	}
}

func TestCollisionAtSharedReceiver(t *testing.T) {
	// Hidden terminals: 1 and 3 cannot hear each other but both reach 2.
	tp := topo.Line(3, 10) // 1-2-3, range 13.5 < 20
	s := sim.New(1)
	c := NewChannel(s, tp, PerfectParams())
	got := 0
	tx1 := c.Attach(1, nil)
	c.Attach(2, func(uint32, []byte) { got++ })
	tx3 := c.Attach(3, nil)
	tx1.Transmit(make([]byte, 50))
	// Overlapping transmission from the other side.
	s.After(time.Millisecond, func() { tx3.Transmit(make([]byte, 50)) })
	s.Run()
	if got != 0 {
		t.Errorf("collided frames must not deliver, got %d", got)
	}
	if c.Stats().FramesCollided != 2 {
		t.Errorf("both frames should be counted collided: %+v", c.Stats())
	}
}

func TestNoCollisionWhenSequential(t *testing.T) {
	tp := topo.Line(3, 10)
	s := sim.New(1)
	c := NewChannel(s, tp, PerfectParams())
	got := 0
	t1 := c.Attach(1, nil)
	c.Attach(2, func(uint32, []byte) { got++ })
	t3 := c.Attach(3, nil)
	air := t1.Transmit(make([]byte, 50))
	s.After(air+10*time.Millisecond, func() { t3.Transmit(make([]byte, 50)) })
	s.Run()
	if got != 2 {
		t.Errorf("sequential frames should both deliver, got %d", got)
	}
}

func TestHalfDuplex(t *testing.T) {
	// If the receiver transmits while a frame arrives, it misses it.
	s, c, t1, t2, log := pair(t, 10, PerfectParams(), 1)
	t1.Transmit(make([]byte, 100))
	s.After(2*time.Millisecond, func() { t2.Transmit(make([]byte, 10)) })
	s.Run()
	for _, l := range *log {
		if l[0] == '2' {
			t.Error("node 2 must miss the frame while transmitting")
		}
	}
	if c.Stats().FramesHalfDuplex == 0 {
		t.Error("half-duplex miss should be counted")
	}
	// Node 1 must also miss node 2's frame: it was transmitting.
	if t1.Stats.FramesReceived != 0 {
		t.Error("node 1 was transmitting and must miss node 2's frame")
	}
}

func TestAsymmetricLinks(t *testing.T) {
	// With strong asymmetry at a borderline distance, some directed links
	// deliver while their reverse does not.
	p := PerfectParams()
	p.AsymmetrySigma = 3
	asymmetric := 0
	for seed := int64(0); seed < 200; seed++ {
		tp := topo.Line(2, 15)
		s := sim.New(seed)
		c := NewChannel(s, tp, p)
		// A link whose offset pushed it past MaxRange is not stored at all;
		// treat it as infinitely distant.
		effDist := func(a, b uint32) float64 {
			if l, ok := c.links[linkKey{a, b}]; ok {
				return l.effDist
			}
			return math.Inf(1)
		}
		fwd := effDist(1, 2)
		rev := effDist(2, 1)
		if (fwd < p.SolidRange) != (rev < p.SolidRange) {
			asymmetric++
		}
	}
	if asymmetric == 0 {
		t.Error("expected some asymmetric link realizations")
	}
}

func TestGilbertElliottIntermittency(t *testing.T) {
	// With a harsh bad state, a long frame train shows bursty loss.
	p := PerfectParams()
	p.MeanGood = 2 * time.Second
	p.MeanBad = 2 * time.Second
	p.BadLoss = 1.0
	s, _, t1, t2, _ := pair(t, 5, p, 3)
	const frames = 400
	for i := 0; i < frames; i++ {
		d := time.Duration(i) * 100 * time.Millisecond
		s.After(d, func() { t1.Transmit(make([]byte, 10)) })
	}
	s.Run()
	got := t2.Stats.FramesReceived
	if got == 0 || got == frames {
		t.Errorf("intermittent link delivered %d/%d, want partial", got, frames)
	}
}

func TestDeterministicRealization(t *testing.T) {
	run := func() (int, int) {
		tp := topo.Testbed()
		s := sim.New(99)
		c := NewChannel(s, tp, DefaultParams())
		rx := 0
		var txs []*Transceiver
		for _, id := range tp.IDs() {
			txs = append(txs, c.Attach(id, func(uint32, []byte) { rx++ }))
		}
		for i, tx := range txs {
			d := time.Duration(i) * 50 * time.Millisecond
			tx := tx
			s.After(d, func() { tx.Transmit(make([]byte, 60)) })
		}
		s.Run()
		return rx, c.Stats().FramesLost
	}
	r1, l1 := run()
	r2, l2 := run()
	if r1 != r2 || l1 != l2 {
		t.Errorf("same seed must reproduce: (%d,%d) vs (%d,%d)", r1, l1, r2, l2)
	}
	if r1 == 0 {
		t.Error("testbed broadcast should reach someone")
	}
}

func TestTransmitWhileTransmittingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlapping Transmit must panic")
		}
	}()
	_, _, t1, _, _ := pair(t, 10, PerfectParams(), 1)
	t1.Transmit(make([]byte, 100))
	t1.Transmit(make([]byte, 100))
}

func TestAttachValidation(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, topo.Line(2, 5), PerfectParams())
	c.Attach(1, nil)
	for name, fn := range map[string]func(){
		"duplicate": func() { c.Attach(1, nil) },
		"unknown":   func() { c.Attach(77, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s Attach must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEnergyTimeAccounting(t *testing.T) {
	s, c, t1, t2, _ := pair(t, 5, PerfectParams(), 1)
	air := t1.Transmit(make([]byte, 100))
	s.Run()
	if t1.Stats.TxTime != air {
		t.Errorf("TxTime=%v want %v", t1.Stats.TxTime, air)
	}
	if t2.Stats.RxTime != air {
		t.Errorf("RxTime=%v want %v", t2.Stats.RxTime, air)
	}
	_ = c
}

func TestLossProbMonotone(t *testing.T) {
	s := sim.New(1)
	c := NewChannel(s, topo.Line(2, 5), DefaultParams())
	prev := -1.0
	for d := 0.0; d < 25; d += 0.25 {
		p := c.lossProb(d)
		if p < prev {
			t.Fatalf("loss probability must not decrease with distance (d=%v)", d)
		}
		if p < 0 || p > 1 {
			t.Fatalf("loss probability out of range at d=%v: %v", d, p)
		}
		prev = p
	}
	if c.lossProb(0) != DefaultParams().BaseLoss {
		t.Error("loss at zero distance should be the base loss")
	}
	if c.lossProb(100) != 1 {
		t.Error("loss beyond max range must be 1")
	}
}

func TestGilbertElliottLongRunFraction(t *testing.T) {
	// The bad-state fraction over a long horizon should approximate
	// MeanBad/(MeanGood+MeanBad).
	p := PerfectParams()
	p.MeanGood = 10 * time.Second
	p.MeanBad = 10 * time.Second
	s := sim.New(5)
	c := NewChannel(s, topo.Line(2, 5), p)
	l := c.links[linkKey{1, 2}]
	bad := 0
	const samples = 20000
	for i := 0; i < samples; i++ {
		s.After(100*time.Millisecond, func() {})
		s.Run()
		if c.linkBad(l, s.Now()) {
			bad++
		}
	}
	frac := float64(bad) / samples
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("bad-state fraction %.3f, want ~0.5", frac)
	}
}

func TestCaptureEffect(t *testing.T) {
	// A close transmitter's frame survives an overlapping far one.
	tp := topo.New("capture")
	tp.Add(topo.Node{ID: 1, X: 0})  // receiver
	tp.Add(topo.Node{ID: 2, X: 3})  // close sender
	tp.Add(topo.Node{ID: 3, X: 17}) // far interferer (audible, fading)
	p := PerfectParams()
	p.CaptureRatio = 0.7
	s := sim.New(9)
	c := NewChannel(s, tp, p)
	var got []string
	c.Attach(1, func(from uint32, b []byte) { got = append(got, string(b)) })
	t2 := c.Attach(2, nil)
	t3 := c.Attach(3, nil)
	t3.Transmit([]byte("far"))
	s.After(time.Millisecond, func() { t2.Transmit([]byte("near")) })
	s.Run()
	near := false
	for _, g := range got {
		if g == "far" {
			t.Error("the weaker overlapping frame must not survive")
		}
		if g == "near" {
			near = true
		}
	}
	if !near {
		t.Error("the stronger frame should capture the receiver")
	}
}

func TestForcedLinkBlackout(t *testing.T) {
	s, c, t1, _, log := pair(t, 10, PerfectParams(), 30)
	c.SetLinkDown(1, 2, true)
	if !c.LinkDown(1, 2) {
		t.Error("LinkDown(1,2) must report the blackout")
	}
	if c.LinkDown(2, 1) {
		t.Error("SetLinkDown is directional; 2->1 must stay up")
	}
	t1.Transmit([]byte("hi"))
	// Advance past the airtime by hand: with the link down no reception is
	// even scheduled, so draining events alone would not move the clock.
	s.RunUntil(s.Now() + time.Second)
	if len(*log) != 0 {
		t.Fatalf("delivery across a blacked-out link: %v", *log)
	}
	c.SetLinkDown(1, 2, false)
	t1.Transmit([]byte("hi"))
	s.RunUntil(s.Now() + time.Second)
	if len(*log) != 1 {
		t.Fatalf("delivery after restoration: %v", *log)
	}
}

func TestSetNodeDownSilencesBothDirections(t *testing.T) {
	s, c, t1, t2, log := pair(t, 10, PerfectParams(), 31)
	c.SetNodeDown(2, true)
	t1.Transmit([]byte("to2"))
	s.RunUntil(s.Now() + time.Second)
	t2.Transmit([]byte("from2"))
	s.RunUntil(s.Now() + time.Second)
	if len(*log) != 0 {
		t.Fatalf("a down node heard or was heard: %v", *log)
	}
	// A down node does not occupy the carrier either: 1 senses idle even
	// mid-transmission of 2.
	t2.Transmit([]byte("x"))
	s.RunUntil(s.Now() + time.Millisecond)
	if t1.Busy() {
		t.Error("down node's transmission held the carrier")
	}
	s.RunUntil(s.Now() + time.Second)
	c.SetNodeDown(2, false)
	t1.Transmit([]byte("to2"))
	s.RunUntil(s.Now() + time.Second)
	if len(*log) != 1 || (*log)[0] != "2<-to2" {
		t.Fatalf("delivery after node restore: %v", *log)
	}
}

func TestSetNodeDownRestoreClearsPerLinkBlackouts(t *testing.T) {
	_, c, _, _, _ := pair(t, 10, PerfectParams(), 32)
	c.SetLinkDown(1, 2, true)
	c.SetNodeDown(2, true)
	c.SetNodeDown(2, false)
	if c.LinkDown(1, 2) || c.LinkDown(2, 1) {
		t.Error("restoring a node must clear its links' blackouts")
	}
}

func TestSetLinkDownPanicsOnUnknownLink(t *testing.T) {
	_, c, _, _, _ := pair(t, 10, PerfectParams(), 33)
	defer func() {
		if recover() == nil {
			t.Error("SetLinkDown on an unknown link must panic")
		}
	}()
	c.SetLinkDown(1, 99, true)
}
