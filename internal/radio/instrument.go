package radio

import "diffusion/internal/telemetry"

// Instrument publishes the medium-wide counters on reg. The channel keeps
// incrementing its plain Stats fields on the hot path; the registry reads
// them only at snapshot time.
func (c *Channel) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		s := c.Stats()
		emit("radio.channel.frames_sent", float64(s.FramesSent))
		emit("radio.channel.frames_delivered", float64(s.FramesDelivered))
		emit("radio.channel.frames_lost", float64(s.FramesLost))
		emit("radio.channel.frames_collided", float64(s.FramesCollided))
		emit("radio.channel.frames_half_duplex", float64(s.FramesHalfDuplex))
		emit("radio.channel.frames_blackout", float64(s.FramesBlackout))
	})
}

// Instrument publishes this transceiver's counters on reg.
func (t *Transceiver) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		s := &t.Stats
		emit("radio.frames_sent", float64(s.FramesSent))
		emit("radio.bytes_sent", float64(s.BytesSent))
		emit("radio.frames_received", float64(s.FramesReceived))
		emit("radio.bytes_received", float64(s.BytesReceived))
		emit("radio.tx_seconds", s.TxTime.Seconds())
		emit("radio.rx_seconds", s.RxTime.Seconds())
	})
}
