package match

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"diffusion/internal/attr"
)

// Differential property test: over random attribute soups — including the
// nasty corners (NaN, signed zero, infinities, cross-type values, blobs,
// duplicate keys) — and random add/remove interleavings, the index must
// return exactly the tags the linear attr.Match/OneWayMatch scan returns.
// The oracle is the plain matcher; any divergence is an index bug.

// soupValue draws a random value biased toward collisions and edge cases.
func soupValue(r *rand.Rand) attr.Value {
	switch r.Intn(10) {
	case 0:
		return attr.Int32Value(int32(r.Intn(5) - 2))
	case 1:
		return attr.Int64Value(int64(r.Intn(7) - 3))
	case 2:
		return attr.Float32Value(float32(r.Intn(5)) / 2)
	case 3:
		switch r.Intn(5) {
		case 0:
			return attr.Float64Value(math.NaN())
		case 1:
			return attr.Float64Value(math.Copysign(0, -1))
		case 2:
			return attr.Float64Value(math.Inf(1))
		case 3:
			return attr.Float64Value(math.Inf(-1))
		default:
			return attr.Float64Value(float64(r.Intn(9)) / 4)
		}
	case 4, 5, 6:
		return attr.StringValue(string(rune('a' + r.Intn(4))))
	case 7:
		return attr.BlobValue([]byte{byte(r.Intn(3))})
	case 8:
		return attr.Float64Value(float64(r.Intn(3)))
	default:
		return attr.Int32Value(int32(r.Intn(3)))
	}
}

// soupVec draws a random attribute vector over a tiny key space so
// formals and actuals collide often.
func soupVec(r *rand.Rand, n int) attr.Vec {
	v := make(attr.Vec, 0, n)
	for i := 0; i < n; i++ {
		k := attr.Key(1 + r.Intn(5))
		op := attr.Op(r.Intn(8)) // IS..EQAny
		v = append(v, attr.Attribute{Key: k, Op: op, Val: soupValue(r)})
	}
	return v
}

// mirror is the linear reference the index is differentially tested
// against.
type mirror struct {
	mode Mode
	vecs map[uint64]attr.Vec
}

func (m *mirror) lookup(msg attr.Vec) []uint64 {
	var out []uint64
	for tag, v := range m.vecs {
		var ok bool
		if m.mode == TwoWay {
			ok = attr.Match(v, msg)
		} else {
			ok = attr.OneWayMatch(v, msg)
		}
		if ok {
			out = append(out, tag)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestDifferentialAgainstLinear(t *testing.T) {
	for _, mode := range []Mode{TwoWay, OneWay} {
		mode := mode
		name := map[Mode]string{TwoWay: "two-way", OneWay: "one-way"}[mode]
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 30; seed++ {
				r := rand.New(rand.NewSource(seed))
				ix := New(mode)
				ref := &mirror{mode: mode, vecs: map[uint64]attr.Vec{}}
				handles := map[uint64]Handle{}
				var tags []uint64
				nextTag := uint64(0)

				for op := 0; op < 400; op++ {
					switch x := r.Intn(10); {
					case x < 5: // add
						v := soupVec(r, r.Intn(6))
						nextTag++
						handles[nextTag] = ix.Add(v, nextTag)
						ref.vecs[nextTag] = v
						tags = append(tags, nextTag)
					case x < 7 && len(tags) > 0: // remove
						i := r.Intn(len(tags))
						tag := tags[i]
						tags[i] = tags[len(tags)-1]
						tags = tags[:len(tags)-1]
						ix.Remove(handles[tag])
						delete(handles, tag)
						delete(ref.vecs, tag)
					default: // lookup
						msg := soupVec(r, r.Intn(6))
						got := lookupTags(ix, msg)
						want := ref.lookup(msg)
						if !eqTags(got, want) {
							t.Fatalf("seed=%d op=%d msg=%v:\nindex  %v\nlinear %v",
								seed, op, msg, got, want)
						}
					}
				}
				// Every stored vector probed against itself and a fresh soup.
				for tag, v := range ref.vecs {
					got := lookupTags(ix, v)
					want := ref.lookup(v)
					if !eqTags(got, want) {
						t.Fatalf("seed=%d self-probe tag=%d vec=%v:\nindex  %v\nlinear %v",
							seed, tag, v, got, want)
					}
				}
				if ix.Len() != len(ref.vecs) {
					t.Fatalf("seed=%d Len=%d want %d", seed, ix.Len(), len(ref.vecs))
				}
			}
		})
	}
}

// TestDifferentialWiderKeySpace runs the same property over a wider key
// space and longer vectors, where most probes miss — the broker-shaped
// workload.
func TestDifferentialWiderKeySpace(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	ix := New(TwoWay)
	ref := &mirror{mode: TwoWay, vecs: map[uint64]attr.Vec{}}
	for tag := uint64(1); tag <= 500; tag++ {
		v := make(attr.Vec, 0, 3)
		v = append(v, attr.Int32Attr(attr.Key(1+r.Intn(20)), attr.EQ, int32(r.Intn(50))))
		if r.Intn(2) == 0 {
			v = append(v, attr.Float64Attr(attr.Key(1+r.Intn(20)), attr.Op(3+r.Intn(4)), r.Float64()))
		}
		ix.Add(v, tag)
		ref.vecs[tag] = v
	}
	for probe := 0; probe < 300; probe++ {
		msg := attr.Vec{
			attr.Int32Attr(attr.Key(1+r.Intn(20)), attr.IS, int32(r.Intn(50))),
			attr.Float64Attr(attr.Key(1+r.Intn(20)), attr.IS, r.Float64()),
		}
		got := lookupTags(ix, msg)
		want := ref.lookup(msg)
		if !eqTags(got, want) {
			t.Fatalf("probe=%d msg=%v:\nindex  %v\nlinear %v", probe, msg, got, want)
		}
	}
}

func ExampleIndex() {
	ix := New(TwoWay)
	ix.Add(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "detectAnimal"),
		attr.Float64Attr(attr.KeyConfidence, attr.GT, 0.5),
	}, 42)
	got := ix.Lookup(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, "detectAnimal"),
		attr.Float64Attr(attr.KeyConfidence, attr.IS, 0.7),
	}, nil)
	fmt.Println(got)
	// Output: [42]
}
