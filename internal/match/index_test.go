package match

import (
	"math"
	"sort"
	"testing"

	"diffusion/internal/attr"
)

// lookupTags runs a lookup and returns sorted tags.
func lookupTags(ix *Index, msg attr.Vec) []uint64 {
	out := ix.Lookup(msg, nil)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eqTags(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIndexEQBuckets(t *testing.T) {
	ix := New(TwoWay)
	for i := uint64(1); i <= 5; i++ {
		ix.Add(attr.Vec{attr.Int32Attr(attr.KeyTask, attr.EQ, int32(i))}, i)
	}
	msg := attr.Vec{attr.Int32Attr(attr.KeyTask, attr.IS, 3)}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{3}) {
		t.Fatalf("EQ bucket lookup = %v", got)
	}
	// A cross-width numeric equal must land in the same bucket.
	msgF := attr.Vec{attr.Float64Attr(attr.KeyTask, attr.IS, 3.0)}
	if got := lookupTags(ix, msgF); !eqTags(got, []uint64{3}) {
		t.Fatalf("cross-width EQ = %v", got)
	}
	if ix.Keys() != 1 || ix.Len() != 5 {
		t.Fatalf("Keys=%d Len=%d", ix.Keys(), ix.Len())
	}
}

func TestIndexRanges(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.GT, 0.5)}, 1)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.GE, 0.7)}, 2)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.LT, 0.7)}, 3)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.LE, 0.6)}, 4)
	cases := []struct {
		v    float64
		want []uint64
	}{
		{0.4, []uint64{3, 4}},
		{0.6, []uint64{1, 3, 4}},
		{0.7, []uint64{1, 2}},
		{0.9, []uint64{1, 2}},
	}
	for _, c := range cases {
		msg := attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.IS, c.v)}
		if got := lookupTags(ix, msg); !eqTags(got, c.want) {
			t.Errorf("v=%v: got %v want %v", c.v, got, c.want)
		}
	}
}

func TestIndexStringRanges(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.GE, "m")}, 1)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.LT, "m")}, 2)
	msg := attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "alpha")}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{2}) {
		t.Fatalf("string range = %v", got)
	}
}

func TestIndexEQAnyAndNE(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.Any(attr.KeyTask)}, 1)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.NE, "x")}, 2)
	if got := lookupTags(ix, attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "y")}); !eqTags(got, []uint64{1, 2}) {
		t.Fatalf("ne/any = %v", got)
	}
	if got := lookupTags(ix, attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "x")}); !eqTags(got, []uint64{1}) {
		t.Fatalf("ne equal value = %v", got)
	}
	// NE across types holds: a blob actual satisfies a string NE formal.
	if got := lookupTags(ix, attr.Vec{attr.BlobAttr(attr.KeyTask, attr.IS, []byte("x"))}); !eqTags(got, []uint64{1, 2}) {
		t.Fatalf("ne cross-type = %v", got)
	}
}

func TestIndexNaNSemantics(t *testing.T) {
	nan := math.NaN()
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.EQ, 5)}, 1)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.LE, 3)}, 2)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.LT, 3)}, 3)
	// NaN formals are unindexable: they match any numeric actual.
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.EQ, nan)}, 4)
	if ix.FallbackLen() != 1 {
		t.Fatalf("NaN formal must fall back, FallbackLen=%d", ix.FallbackLen())
	}
	// A NaN actual compares equal to everything: EQ/LE/GE hold, LT/GT fail.
	msg := attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.IS, nan)}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{1, 2, 4}) {
		t.Fatalf("NaN actual = %v", got)
	}
	// A plain actual still matches the NaN formal via the fallback list.
	msg2 := attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.IS, 7)}
	if got := lookupTags(ix, msg2); !eqTags(got, []uint64{4}) {
		t.Fatalf("actual vs NaN formal = %v", got)
	}
}

func TestIndexSignedZero(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyX, attr.EQ, math.Copysign(0, -1))}, 1)
	msg := attr.Vec{attr.Float64Attr(attr.KeyX, attr.IS, 0)}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{1}) {
		t.Fatalf("-0 formal vs +0 actual = %v", got)
	}
	msgNeg := attr.Vec{attr.Float64Attr(attr.KeyX, attr.IS, math.Copysign(0, -1))}
	if got := lookupTags(ix, msgNeg); !eqTags(got, []uint64{1}) {
		t.Fatalf("-0 actual = %v", got)
	}
}

func TestIndexBlobPivots(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.BlobAttr(attr.KeyTarget, attr.EQ, []byte{1, 2})}, 1)
	ix.Add(attr.Vec{attr.BlobAttr(attr.KeyTarget, attr.GT, []byte{5})}, 2) // always list
	if ix.FallbackLen() != 1 {
		t.Fatalf("blob range must fall back, FallbackLen=%d", ix.FallbackLen())
	}
	msg := attr.Vec{attr.BlobAttr(attr.KeyTarget, attr.IS, []byte{1, 2})}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{1}) {
		t.Fatalf("blob EQ = %v", got)
	}
	msg2 := attr.Vec{attr.BlobAttr(attr.KeyTarget, attr.IS, []byte{9})}
	if got := lookupTags(ix, msg2); !eqTags(got, []uint64{2}) {
		t.Fatalf("blob GT = %v", got)
	}
}

func TestIndexTwoWayVerification(t *testing.T) {
	ix := New(TwoWay)
	// Stored vector has a formal the message's actuals satisfy, but the
	// message carries a formal the stored actuals cannot satisfy.
	ix.Add(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "t"),
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassInterest),
	}, 1)
	msg := attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, "t"),
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassData),
	}
	if got := lookupTags(ix, msg); len(got) != 0 {
		t.Fatalf("two-way must reject: %v", got)
	}
	// OneWay mode ignores the message's formals.
	ox := New(OneWay)
	ox.Add(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "t"),
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassInterest),
	}, 1)
	if got := lookupTags(ox, msg); !eqTags(got, []uint64{1}) {
		t.Fatalf("one-way = %v", got)
	}
}

func TestIndexNoFormalsAlwaysMatchesOneWay(t *testing.T) {
	ix := New(OneWay)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "t")}, 7)
	ix.Add(nil, 8)
	if got := lookupTags(ix, attr.Vec{attr.Int32Attr(attr.KeyX, attr.IS, 1)}); !eqTags(got, []uint64{7, 8}) {
		t.Fatalf("formal-less stored vecs must match one-way: %v", got)
	}
	if ix.FallbackLen() != 2 {
		t.Fatalf("FallbackLen=%d", ix.FallbackLen())
	}
}

func TestIndexRemoveAndReuse(t *testing.T) {
	ix := New(TwoWay)
	h1 := ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 1)
	h2 := ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 2)
	ix.Add(attr.Vec{attr.Float64Attr(attr.KeyConfidence, attr.GT, 1)}, 3)
	msg := attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "a")}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{1, 2}) {
		t.Fatalf("before remove = %v", got)
	}
	ix.Remove(h1)
	ix.Remove(h1) // double remove is a no-op
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{2}) {
		t.Fatalf("after remove = %v", got)
	}
	h3 := ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 9)
	if h3 != h1 {
		t.Fatalf("freed handle not recycled: %v vs %v", h3, h1)
	}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{2, 9}) {
		t.Fatalf("after reuse = %v", got)
	}
	ix.Remove(h2)
	ix.Remove(h3)
	if ix.Len() != 1 {
		t.Fatalf("Len=%d", ix.Len())
	}
}

func TestIndexReset(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 1)
	ix.Reset()
	if ix.Len() != 0 || ix.Keys() != 0 || ix.FallbackLen() != 0 {
		t.Fatal("reset must empty the index")
	}
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 2)
	if got := lookupTags(ix, attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "a")}); !eqTags(got, []uint64{2}) {
		t.Fatalf("after reset = %v", got)
	}
}

func TestIndexDuplicateActualsDeduplicate(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.Any(attr.KeyTask)}, 1)
	// Two actuals with the same key probe the same postings; the result
	// must still carry one tag.
	msg := attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, "a"),
		attr.StringAttr(attr.KeyTask, attr.IS, "b"),
	}
	if got := lookupTags(ix, msg); !eqTags(got, []uint64{1}) {
		t.Fatalf("dedup = %v", got)
	}
}

func TestIndexStats(t *testing.T) {
	ix := New(TwoWay)
	ix.Add(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "a")}, 1)
	ix.Add(nil, 2) // fallback
	ix.Lookup(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "a")}, nil)
	st := ix.Stats()
	if st.Lookups != 1 {
		t.Errorf("Lookups=%d", st.Lookups)
	}
	if st.CandidatesScanned != 2 {
		t.Errorf("CandidatesScanned=%d", st.CandidatesScanned)
	}
	if st.FallbackScanned != 1 {
		t.Errorf("FallbackScanned=%d", st.FallbackScanned)
	}
	if st.Hits != 2 {
		t.Errorf("Hits=%d", st.Hits)
	}
}

func TestIndexLookupZeroAlloc(t *testing.T) {
	ix := New(TwoWay)
	for i := 0; i < 1000; i++ {
		ix.Add(attr.Vec{
			attr.Int32Attr(attr.KeyTask, attr.EQ, int32(i)),
			attr.Float64Attr(attr.KeyConfidence, attr.GT, float64(i)/1000),
		}, uint64(i))
	}
	msg := attr.Vec{
		attr.Int32Attr(attr.KeyTask, attr.IS, 500),
		attr.Float64Attr(attr.KeyConfidence, attr.IS, 0.9),
	}
	dst := make([]uint64, 0, 64)
	// Warm the scratch buffers.
	dst = ix.Lookup(msg, dst[:0])
	allocs := testing.AllocsPerRun(100, func() {
		dst = ix.Lookup(msg, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocates %v per op", allocs)
	}
	if !eqTags(dst, []uint64{500}) {
		t.Fatalf("lookup = %v", dst)
	}
}
