// Package match implements an inverted attribute index over attr.Vec:
// the broker-scale matching engine section 6.3 of the paper anticipates
// ("attributes could be statically or dynamically optimized").
//
// The index stores attribute vectors and answers "which stored vectors
// match this message?" in sub-linear time. Each stored vector elects one
// *pivot* formal — its most selective indexable formal — and is filed
// into a per-key, per-operator posting structure keyed by that pivot:
//
//   - EQ formals land in hash buckets keyed by the canonicalized value
//     (numerics widened to float64 with -0 folded into +0; strings and
//     blobs by content), so an EQ pivot costs one map probe.
//   - LT/LE/GT/GE formals with numeric or string thresholds land in
//     per-operator threshold lists kept sorted, so a probe value selects
//     a contiguous prefix or suffix by binary search.
//   - EQ_ANY and NE formals land in per-key presence lists: any actual
//     with the key makes every such poster a candidate (NE is
//     deliberately conservative — inequality and cross-type mismatches
//     both satisfy it, so presence is the cheapest sound pre-filter).
//
// Vectors with no indexable formal (no formals at all, blob range
// thresholds, NaN-valued comparisons — NaN compares equal to everything
// under the matcher's three-way comparison, so it cannot be bucketed or
// ordered) go on an always-scanned fallback list; Stats.FallbackScanned
// counts how often that list is paid for.
//
// Lookup gathers candidates from the postings selected by the message's
// actuals, de-duplicates them with an epoch-stamped mark array, and
// verifies each against the exact matcher (attr.Compiled, semantically
// identical to attr.Match/OneWayMatch — those stay the oracle). The
// pre-filter may over-include, never under-include, so results are
// exact. Steady-state lookups are allocation-free: candidates live in a
// reusable scratch buffer and results are appended to a caller-supplied
// slice.
//
// The index is not safe for concurrent use; it belongs to a single-
// threaded diffusion node like every other core structure.
package match

import (
	"math"

	"diffusion/internal/attr"
)

// Mode selects the match semantics Lookup verifies.
type Mode uint8

const (
	// TwoWay verifies attr.Match(stored, msg): both directions.
	TwoWay Mode = iota
	// OneWay verifies attr.OneWayMatch(stored, msg): every formal of the
	// stored vector satisfied by an actual of the message.
	OneWay
)

// Handle identifies a stored vector inside an Index. Handles are dense
// small integers and are recycled after Remove.
type Handle int32

// Stats counts index activity since creation (Reset does not clear them).
type Stats struct {
	// Lookups is the number of Lookup calls.
	Lookups uint64
	// CandidatesScanned is the total number of candidates verified
	// against the exact matcher across all lookups (the index's work).
	CandidatesScanned uint64
	// FallbackScanned counts candidates that came from the always-scan
	// fallback list (vectors with no indexable pivot).
	FallbackScanned uint64
	// Hits is the number of candidates that verified as true matches.
	Hits uint64
}

// pivotKind says which posting structure holds a slot's pivot.
type pivotKind uint8

const (
	pivotAlways pivotKind = iota
	pivotEQNum
	pivotEQStr
	pivotEQBlob
	pivotEQAny
	pivotNE
	pivotNumRange
	pivotStrRange
)

// pivot locates a slot's posting for removal.
type pivot struct {
	kind pivotKind
	key  attr.Key
	op   attr.Op // range pivots: which threshold list
	num  uint64  // canonical float64 bits (EQNum bucket, NumRange threshold)
	str  string  // EQStr/EQBlob bucket key, StrRange threshold
}

type slot struct {
	comp *attr.Compiled
	tag  uint64
	pv   pivot
	pos  int32 // position on the always list (pivotAlways only)
	live bool
}

// Threshold-list indices by comparison operator.
const (
	rLT = iota
	rLE
	rGT
	rGE
)

func rangeIdx(op attr.Op) int {
	switch op {
	case attr.LT:
		return rLT
	case attr.LE:
		return rLE
	case attr.GT:
		return rGT
	default:
		return rGE
	}
}

type numPost struct {
	t float64
	h Handle
}

type strPost struct {
	t string
	h Handle
}

// keyIndex holds every posting structure for one attribute key.
type keyIndex struct {
	eqNum  map[uint64][]Handle
	eqStr  map[string][]Handle
	eqBlob map[string][]Handle
	eqAny  []Handle
	ne     []Handle
	// numAll holds every handle whose pivot is a numeric-valued EQ or
	// range formal on this key: the candidate set for a NaN actual,
	// which compares equal to every number under the matcher's
	// three-way comparison and so can satisfy any of them.
	numAll []Handle

	numRange [4][]numPost // sorted ascending by threshold
	strRange [4][]strPost
}

// Index is an inverted attribute index. The zero value is not usable;
// call New.
type Index struct {
	mode   Mode
	slots  []slot
	free   []Handle
	keys   map[attr.Key]*keyIndex
	always []Handle
	live   int

	// Lookup scratch: candidate buffer plus an epoch-stamped mark per
	// slot for duplicate suppression. No user code runs during Lookup,
	// so one scratch set per index suffices.
	cand []Handle
	mark []uint32
	gen  uint32

	stat Stats
}

// New returns an empty index verifying the given mode's semantics.
func New(mode Mode) *Index {
	return &Index{mode: mode, keys: map[attr.Key]*keyIndex{}}
}

// Add stores v under tag and returns its handle. The vector is retained
// and must not be mutated afterwards. Tags need not be unique, but every
// matching slot's tag is reported by Lookup, so duplicate tags yield
// duplicate results.
func (ix *Index) Add(v attr.Vec, tag uint64) Handle {
	var h Handle
	if n := len(ix.free); n > 0 {
		h = ix.free[n-1]
		ix.free = ix.free[:n-1]
	} else {
		ix.slots = append(ix.slots, slot{})
		ix.mark = append(ix.mark, 0)
		h = Handle(len(ix.slots) - 1)
	}
	s := &ix.slots[h]
	s.comp = attr.Compile(v)
	s.tag = tag
	s.pv = choosePivot(v)
	s.live = true
	ix.install(h, s)
	ix.live++
	return h
}

// Remove deletes the slot h. Removing an already-removed handle is a
// no-op.
func (ix *Index) Remove(h Handle) {
	if int(h) >= len(ix.slots) || !ix.slots[h].live {
		return
	}
	s := &ix.slots[h]
	ix.uninstall(h, s)
	s.live = false
	s.comp = nil
	s.pv = pivot{}
	ix.free = append(ix.free, h)
	ix.live--
}

// Reset empties the index, retaining accumulated Stats and allocated
// scratch capacity.
func (ix *Index) Reset() {
	ix.slots = ix.slots[:0]
	ix.free = ix.free[:0]
	ix.keys = map[attr.Key]*keyIndex{}
	ix.always = ix.always[:0]
	ix.mark = ix.mark[:0]
	ix.gen = 0
	ix.live = 0
}

// Len returns the number of live stored vectors.
func (ix *Index) Len() int { return ix.live }

// Keys returns the number of distinct attribute keys with postings.
func (ix *Index) Keys() int { return len(ix.keys) }

// FallbackLen returns the number of stored vectors on the always-scan
// fallback list.
func (ix *Index) FallbackLen() int { return len(ix.always) }

// Stats returns a copy of the accumulated counters.
func (ix *Index) Stats() Stats { return ix.stat }

// Lookup appends the tag of every stored vector matching msg (under the
// index mode) to dst and returns the extended slice. Results carry no
// particular order; callers needing the canonical order sort the tags.
// Steady-state calls allocate nothing beyond dst growth.
func (ix *Index) Lookup(msg attr.Vec, dst []uint64) []uint64 {
	ix.stat.Lookups++
	ix.gen++
	if ix.gen == 0 { // epoch wrap: invalidate all marks once per 2^32 lookups
		for i := range ix.mark {
			ix.mark[i] = 0
		}
		ix.gen = 1
	}
	cand := ix.cand[:0]
	for _, a := range msg {
		if !a.Op.IsActual() {
			continue
		}
		ki := ix.keys[a.Key]
		if ki == nil {
			continue
		}
		cand = ix.gather(cand, ki, a.Val)
	}
	for _, h := range ix.always {
		cand = ix.note(cand, h)
	}
	ix.stat.FallbackScanned += uint64(len(ix.always))
	ix.stat.CandidatesScanned += uint64(len(cand))
	for _, h := range cand {
		c := ix.slots[h].comp
		ok := c.MatchAgainst(msg)
		if ok && ix.mode == TwoWay {
			ok = c.ActualsSatisfy(msg)
		}
		if ok {
			ix.stat.Hits++
			dst = append(dst, ix.slots[h].tag)
		}
	}
	ix.cand = cand[:0]
	return dst
}

// note appends h to cand unless it was already gathered this lookup.
func (ix *Index) note(cand []Handle, h Handle) []Handle {
	if ix.mark[h] == ix.gen {
		return cand
	}
	ix.mark[h] = ix.gen
	return append(cand, h)
}

// gather collects the candidates an actual value v for one key selects.
func (ix *Index) gather(cand []Handle, ki *keyIndex, v attr.Value) []Handle {
	// Presence-based postings: EQ_ANY matches any actual with the key;
	// NE is satisfied by differing values and by cross-type actuals, so
	// presence is its only sound cheap pre-filter.
	for _, h := range ki.eqAny {
		cand = ix.note(cand, h)
	}
	for _, h := range ki.ne {
		cand = ix.note(cand, h)
	}
	switch {
	case v.Numeric():
		f := v.AsFloat()
		if math.IsNaN(f) {
			// NaN compares equal to every number (compareFloat yields 0),
			// so every numeric EQ/LE/GE formal on this key is satisfied;
			// include the whole numeric side and let verification decide.
			for _, h := range ki.numAll {
				cand = ix.note(cand, h)
			}
			return cand
		}
		if f == 0 {
			f = 0 // fold -0 into +0: they compare equal
		}
		for _, h := range ki.eqNum[math.Float64bits(f)] {
			cand = ix.note(cand, h)
		}
		// A formal "k OP t" is satisfied when f OP t holds; select the
		// threshold run on the correct side of f for each operator.
		posts := ki.numRange[rLT] // f < t: thresholds above f
		for i := searchNum(posts, f, false); i < len(posts); i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.numRange[rLE] // f <= t: thresholds at or above f
		for i := searchNum(posts, f, true); i < len(posts); i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.numRange[rGT] // f > t: thresholds below f
		for i, end := 0, searchNum(posts, f, true); i < end; i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.numRange[rGE] // f >= t: thresholds at or below f
		for i, end := 0, searchNum(posts, f, false); i < end; i++ {
			cand = ix.note(cand, posts[i].h)
		}
	case v.Type == attr.TypeString:
		s := v.Str()
		for _, h := range ki.eqStr[s] {
			cand = ix.note(cand, h)
		}
		posts := ki.strRange[rLT]
		for i := searchStr(posts, s, false); i < len(posts); i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.strRange[rLE]
		for i := searchStr(posts, s, true); i < len(posts); i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.strRange[rGT]
		for i, end := 0, searchStr(posts, s, true); i < end; i++ {
			cand = ix.note(cand, posts[i].h)
		}
		posts = ki.strRange[rGE]
		for i, end := 0, searchStr(posts, s, false); i < end; i++ {
			cand = ix.note(cand, posts[i].h)
		}
	default: // blob: EQ buckets only; blob ranges live on the always list
		for _, h := range ki.eqBlob[string(v.Blob())] {
			cand = ix.note(cand, h)
		}
	}
	return cand
}

// searchNum returns the first index whose threshold is >= v (orEq) or
// > v (!orEq). Thresholds are never NaN (NaN pivots are rejected).
func searchNum(p []numPost, v float64, orEq bool) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].t < v || (!orEq && p[mid].t == v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func searchStr(p []strPost, v string, orEq bool) int {
	lo, hi := 0, len(p)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p[mid].t < v || (!orEq && p[mid].t == v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// choosePivot elects the most selective indexable formal of v:
// EQ > numeric range > string range > EQ_ANY > NE, first in vector order
// among equals. Vectors without one fall back to the always list.
func choosePivot(v attr.Vec) pivot {
	best := pivot{kind: pivotAlways}
	bestRank := 0
	for _, a := range v {
		if !a.Op.IsFormal() {
			continue
		}
		p, rank := classify(a)
		if rank > bestRank {
			best, bestRank = p, rank
		}
	}
	return best
}

// classify maps one formal to its posting location and selectivity rank;
// rank 0 means not indexable.
func classify(a attr.Attribute) (pivot, int) {
	switch a.Op {
	case attr.EQ:
		switch {
		case a.Val.Numeric():
			f := a.Val.AsFloat()
			if math.IsNaN(f) {
				// "k EQ NaN" is satisfied by every numeric actual
				// (three-way comparison yields 0): no bucket holds it.
				return pivot{}, 0
			}
			if f == 0 {
				f = 0
			}
			return pivot{kind: pivotEQNum, key: a.Key, num: math.Float64bits(f)}, 5
		case a.Val.Type == attr.TypeString:
			return pivot{kind: pivotEQStr, key: a.Key, str: a.Val.Str()}, 5
		default:
			return pivot{kind: pivotEQBlob, key: a.Key, str: string(a.Val.Blob())}, 5
		}
	case attr.LT, attr.LE, attr.GT, attr.GE:
		switch {
		case a.Val.Numeric():
			f := a.Val.AsFloat()
			if math.IsNaN(f) {
				// "k LE NaN"/"k GE NaN" hold for every numeric actual;
				// NaN has no place in an ordered threshold list.
				return pivot{}, 0
			}
			if f == 0 {
				f = 0
			}
			return pivot{kind: pivotNumRange, key: a.Key, op: a.Op, num: math.Float64bits(f)}, 4
		case a.Val.Type == attr.TypeString:
			return pivot{kind: pivotStrRange, key: a.Key, op: a.Op, str: a.Val.Str()}, 3
		default:
			return pivot{}, 0 // blob ranges are rare; always-scan
		}
	case attr.EQAny:
		return pivot{kind: pivotEQAny, key: a.Key}, 2
	case attr.NE:
		return pivot{kind: pivotNE, key: a.Key}, 1
	}
	return pivot{}, 0
}

func (ix *Index) keyIndexFor(k attr.Key) *keyIndex {
	ki := ix.keys[k]
	if ki == nil {
		ki = &keyIndex{}
		ix.keys[k] = ki
	}
	return ki
}

// install files h into the posting its pivot names.
func (ix *Index) install(h Handle, s *slot) {
	p := s.pv
	if p.kind == pivotAlways {
		s.pos = int32(len(ix.always))
		ix.always = append(ix.always, h)
		return
	}
	ki := ix.keyIndexFor(p.key)
	switch p.kind {
	case pivotEQNum:
		if ki.eqNum == nil {
			ki.eqNum = map[uint64][]Handle{}
		}
		ki.eqNum[p.num] = append(ki.eqNum[p.num], h)
		ki.numAll = append(ki.numAll, h)
	case pivotEQStr:
		if ki.eqStr == nil {
			ki.eqStr = map[string][]Handle{}
		}
		ki.eqStr[p.str] = append(ki.eqStr[p.str], h)
	case pivotEQBlob:
		if ki.eqBlob == nil {
			ki.eqBlob = map[string][]Handle{}
		}
		ki.eqBlob[p.str] = append(ki.eqBlob[p.str], h)
	case pivotEQAny:
		ki.eqAny = append(ki.eqAny, h)
	case pivotNE:
		ki.ne = append(ki.ne, h)
	case pivotNumRange:
		i := rangeIdx(p.op)
		ki.numRange[i] = insertNum(ki.numRange[i], math.Float64frombits(p.num), h)
		ki.numAll = append(ki.numAll, h)
	case pivotStrRange:
		i := rangeIdx(p.op)
		ki.strRange[i] = insertStr(ki.strRange[i], p.str, h)
	}
}

// uninstall removes h from the posting its pivot names.
func (ix *Index) uninstall(h Handle, s *slot) {
	p := s.pv
	if p.kind == pivotAlways {
		last := len(ix.always) - 1
		moved := ix.always[last]
		ix.always[s.pos] = moved
		ix.slots[moved].pos = s.pos
		ix.always = ix.always[:last]
		return
	}
	ki := ix.keys[p.key]
	switch p.kind {
	case pivotEQNum:
		ki.eqNum[p.num] = dropHandle(ki.eqNum[p.num], h)
		if len(ki.eqNum[p.num]) == 0 {
			delete(ki.eqNum, p.num)
		}
		ki.numAll = dropHandle(ki.numAll, h)
	case pivotEQStr:
		ki.eqStr[p.str] = dropHandle(ki.eqStr[p.str], h)
		if len(ki.eqStr[p.str]) == 0 {
			delete(ki.eqStr, p.str)
		}
	case pivotEQBlob:
		ki.eqBlob[p.str] = dropHandle(ki.eqBlob[p.str], h)
		if len(ki.eqBlob[p.str]) == 0 {
			delete(ki.eqBlob, p.str)
		}
	case pivotEQAny:
		ki.eqAny = dropHandle(ki.eqAny, h)
	case pivotNE:
		ki.ne = dropHandle(ki.ne, h)
	case pivotNumRange:
		i := rangeIdx(p.op)
		ki.numRange[i] = removeNum(ki.numRange[i], math.Float64frombits(p.num), h)
		ki.numAll = dropHandle(ki.numAll, h)
	case pivotStrRange:
		i := rangeIdx(p.op)
		ki.strRange[i] = removeStr(ki.strRange[i], p.str, h)
	}
}

// dropHandle removes h from an unordered posting list (swap-delete).
func dropHandle(s []Handle, h Handle) []Handle {
	for i, x := range s {
		if x == h {
			last := len(s) - 1
			s[i] = s[last]
			return s[:last]
		}
	}
	return s
}

// insertNum inserts (t, h) keeping the list sorted by threshold.
func insertNum(p []numPost, t float64, h Handle) []numPost {
	i := searchNum(p, t, true)
	p = append(p, numPost{})
	copy(p[i+1:], p[i:])
	p[i] = numPost{t: t, h: h}
	return p
}

// removeNum deletes the post for h, located by its threshold.
func removeNum(p []numPost, t float64, h Handle) []numPost {
	for i := searchNum(p, t, true); i < len(p) && p[i].t == t; i++ {
		if p[i].h == h {
			return append(p[:i], p[i+1:]...)
		}
	}
	return p
}

func insertStr(p []strPost, t string, h Handle) []strPost {
	i := searchStr(p, t, true)
	p = append(p, strPost{})
	copy(p[i+1:], p[i:])
	p[i] = strPost{t: t, h: h}
	return p
}

func removeStr(p []strPost, t string, h Handle) []strPost {
	for i := searchStr(p, t, true); i < len(p) && p[i].t == t; i++ {
		if p[i].h == h {
			return append(p[:i], p[i+1:]...)
		}
	}
	return p
}
