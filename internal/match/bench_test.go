package match

import (
	"fmt"
	"math/rand"
	"testing"

	"diffusion/internal/attr"
)

// The BENCH_match.json workload: a broker-class node holding N
// subscriptions, each a task-EQ formal plus (for a third of them) a
// numeric range, matched against data messages carrying one task actual.
// The linear baseline is the pre-index data path: scan every stored
// vector with attr.Match.

func benchPopulation(n int) []attr.Vec {
	r := rand.New(rand.NewSource(7))
	out := make([]attr.Vec, n)
	for i := range out {
		v := attr.Vec{
			attr.StringAttr(attr.KeyTask, attr.EQ, fmt.Sprintf("task-%d", i)),
			attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassInterest),
		}
		if i%3 == 0 {
			v = append(v, attr.Float64Attr(attr.KeyConfidence, attr.GT, r.Float64()))
		}
		out[i] = v
	}
	return out
}

func benchMessages(n, count int) []attr.Vec {
	r := rand.New(rand.NewSource(11))
	out := make([]attr.Vec, count)
	for i := range out {
		out[i] = attr.Vec{
			attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassData),
			attr.StringAttr(attr.KeyTask, attr.IS, fmt.Sprintf("task-%d", r.Intn(n))),
			attr.Float64Attr(attr.KeyConfidence, attr.IS, r.Float64()),
		}
	}
	return out
}

func BenchmarkMatchLookup(b *testing.B) {
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		pop := benchPopulation(n)
		msgs := benchMessages(n, 256)

		b.Run(fmt.Sprintf("subs=%d/indexed", n), func(b *testing.B) {
			ix := New(TwoWay)
			for i, v := range pop {
				ix.Add(v, uint64(i))
			}
			dst := make([]uint64, 0, 16)
			dst = ix.Lookup(msgs[0], dst[:0]) // warm scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = ix.Lookup(msgs[i%len(msgs)], dst[:0])
			}
			_ = dst
		})

		b.Run(fmt.Sprintf("subs=%d/linear", n), func(b *testing.B) {
			dst := make([]uint64, 0, 16)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg := msgs[i%len(msgs)]
				dst = dst[:0]
				for tag, v := range pop {
					if attr.Match(v, msg) {
						dst = append(dst, uint64(tag))
					}
				}
			}
			_ = dst
		})
	}
}

// BenchmarkMatchChurn measures the lifecycle path: add + remove per op.
func BenchmarkMatchChurn(b *testing.B) {
	pop := benchPopulation(10000)
	ix := New(TwoWay)
	for i, v := range pop {
		ix.Add(v, uint64(i))
	}
	extra := attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "task-churn"),
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassInterest),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := ix.Add(extra, 1<<32)
		ix.Remove(h)
	}
}
