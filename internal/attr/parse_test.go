package attr

import (
	"testing"
)

func TestParsePaperInterest(t *testing.T) {
	// The section 3.2 worked example, verbatim modulo units.
	v, err := ParseVec("type EQ four-legged-animal-search, interval IS 20, duration IS 10000, x GE -100, x LE 200, y GE 100, y LE 400")
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 7 {
		t.Fatalf("parsed %d attributes: %v", len(v), v)
	}
	if v[0].Key != KeyType || v[0].Op != EQ || v[0].Val.Str() != "four-legged-animal-search" {
		t.Errorf("first clause: %v", v[0])
	}
	if v[3].Key != KeyX || v[3].Op != GE || v[3].Val.Int32() != -100 {
		t.Errorf("region clause: %v", v[3])
	}
	// It matches the corresponding data, built programmatically.
	data := Vec{
		StringAttr(KeyType, IS, "four-legged-animal-search"),
		Int32Attr(KeyX, IS, 125),
		Int32Attr(KeyY, IS, 220),
	}
	if !OneWayMatch(v, data) {
		t.Error("parsed interest should match in-region data")
	}
}

func TestParseValueTypes(t *testing.T) {
	v := MustParseVec(`task IS "hello, world", confidence GT 0.5, count IS 3, big IS 5000000000, instance EQ_ANY`)
	if v[0].Val.Str() != "hello, world" {
		t.Errorf("quoted string with comma: %v", v[0].Val)
	}
	if v[1].Val.Float64() != 0.5 {
		t.Errorf("float: %v", v[1].Val)
	}
	if v[2].Val.Int32() != 3 {
		t.Errorf("int32: %v", v[2].Val)
	}
	if v[3].Val.Int64() != 5000000000 {
		t.Errorf("int64 overflow promotion: %v", v[3].Val)
	}
	if v[4].Op != EQAny {
		t.Errorf("EQ_ANY: %v", v[4])
	}
}

func TestParseRegistersUnknownKeys(t *testing.T) {
	v := MustParseVec("parse-custom-key IS 7")
	if KeyName(v[0].Key) != "parse-custom-key" {
		t.Errorf("key registration: %v", v[0])
	}
	// Same name parses to the same key.
	w := MustParseVec("parse-custom-key IS 8")
	if v[0].Key != w[0].Key {
		t.Error("repeated parse must reuse the key")
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"task",                // no op
		"task FOO bar",        // unknown op
		"task IS",             // missing value
		"instance EQ_ANY boo", // EQ_ANY with value
	} {
		if _, err := ParseVec(bad); err == nil {
			t.Errorf("%q should fail to parse", bad)
		}
	}
	// Empty and whitespace inputs are empty vectors, not errors.
	for _, ok := range []string{"", "  ", ","} {
		if v, err := ParseVec(ok); err != nil || len(v) != 0 {
			t.Errorf("%q: %v %v", ok, v, err)
		}
	}
}

func TestParseMultiwordValue(t *testing.T) {
	// Unquoted values may contain spaces; the remainder of the clause is
	// the value (quoting is only needed to protect commas).
	v := MustParseVec("instance IS four legged animal")
	if v[0].Val.Str() != "four legged animal" {
		t.Errorf("multiword value: %v", v[0].Val)
	}
}

func TestParseOpNames(t *testing.T) {
	for s, want := range map[string]Op{
		"is": IS, "Eq": EQ, "NE": NE, "lt": LT, "LE": LE,
		"gt": GT, "ge": GE, "eq_any": EQAny, "any": EQAny,
	} {
		got, err := ParseOp(s)
		if err != nil || got != want {
			t.Errorf("ParseOp(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseOp("ISH"); err == nil {
		t.Error("bad op must error")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseVec must panic on bad input")
		}
	}()
	MustParseVec("task BOGUS x")
}
