package attr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// Wire format. Attribute vectors are encoded as:
//
//	uint16 count
//	count × { uint32 key | uint8 op | uint8 type | value }
//
// where value is 4 bytes (int32/float32), 8 bytes (int64/float64), or a
// uint16 length followed by that many bytes (string/blob). All integers are
// big-endian. The format is compact enough that the paper's ~100-127 byte
// message sizes are reachable with realistic attribute sets.

const (
	vecHeaderSize  = 2
	attrHeaderSize = 4 + 1 + 1
)

// Encoding errors.
var (
	ErrTruncated  = errors.New("attr: truncated encoding")
	ErrBadOp      = errors.New("attr: invalid operation")
	ErrBadType    = errors.New("attr: invalid value type")
	ErrTooManyAtt = errors.New("attr: too many attributes")
)

// maxVecLen bounds decoded vectors, protecting the diffusion core from
// malformed frames.
const maxVecLen = 4096

// AppendEncode appends the wire encoding of v to dst and returns the
// extended slice.
func (v Vec) AppendEncode(dst []byte) []byte {
	if len(v) > maxVecLen {
		panic(ErrTooManyAtt)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(v)))
	for _, a := range v {
		dst = binary.BigEndian.AppendUint32(dst, uint32(a.Key))
		dst = append(dst, byte(a.Op), byte(a.Val.Type))
		switch a.Val.Type {
		case TypeInt32, TypeFloat32:
			dst = binary.BigEndian.AppendUint32(dst, uint32(a.Val.num))
		case TypeInt64, TypeFloat64:
			dst = binary.BigEndian.AppendUint64(dst, a.Val.num)
		case TypeString:
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Val.str)))
			dst = append(dst, a.Val.str...)
		case TypeBlob:
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Val.blob)))
			dst = append(dst, a.Val.blob...)
		}
	}
	return dst
}

// Encode returns the wire encoding of v.
func (v Vec) Encode() []byte { return v.AppendEncode(make([]byte, 0, v.Size())) }

// DecodeVec decodes one attribute vector from the front of b and returns it
// together with the number of bytes consumed.
func DecodeVec(b []byte) (Vec, int, error) {
	if len(b) < vecHeaderSize {
		return nil, 0, ErrTruncated
	}
	n := int(binary.BigEndian.Uint16(b))
	if n > maxVecLen {
		return nil, 0, ErrTooManyAtt
	}
	off := vecHeaderSize
	v := make(Vec, 0, n)
	for i := 0; i < n; i++ {
		if len(b)-off < attrHeaderSize {
			return nil, 0, ErrTruncated
		}
		a := Attribute{
			Key: Key(binary.BigEndian.Uint32(b[off:])),
			Op:  Op(b[off+4]),
		}
		t := Type(b[off+5])
		off += attrHeaderSize
		if !a.Op.Valid() {
			return nil, 0, fmt.Errorf("%w: %d", ErrBadOp, a.Op)
		}
		switch t {
		case TypeInt32, TypeFloat32:
			if len(b)-off < 4 {
				return nil, 0, ErrTruncated
			}
			a.Val = Value{Type: t, num: uint64(binary.BigEndian.Uint32(b[off:]))}
			off += 4
		case TypeInt64, TypeFloat64:
			if len(b)-off < 8 {
				return nil, 0, ErrTruncated
			}
			a.Val = Value{Type: t, num: binary.BigEndian.Uint64(b[off:])}
			off += 8
		case TypeString, TypeBlob:
			if len(b)-off < 2 {
				return nil, 0, ErrTruncated
			}
			l := int(binary.BigEndian.Uint16(b[off:]))
			off += 2
			if len(b)-off < l {
				return nil, 0, ErrTruncated
			}
			if t == TypeString {
				a.Val = StringValue(string(b[off : off+l]))
			} else {
				a.Val = BlobValue(b[off : off+l])
			}
			off += l
		default:
			return nil, 0, fmt.Errorf("%w: %d", ErrBadType, t)
		}
		v = append(v, a)
	}
	return v, off, nil
}

// Hash returns a canonical 64-bit hash of the vector, insensitive to
// attribute order. The diffusion core compares hashes instead of complete
// attribute sets for duplicate suppression, the optimization section 3.1
// describes ("hashes of attributes can be computed and compared rather than
// complete data").
func (v Vec) Hash() uint64 {
	// Hash each attribute independently, then combine order-insensitively.
	var sum, xor uint64
	for _, a := range v {
		h := fnv.New64a()
		var buf [attrHeaderSize + 8]byte
		binary.BigEndian.PutUint32(buf[:], uint32(a.Key))
		buf[4] = byte(a.Op)
		buf[5] = byte(a.Val.Type)
		binary.BigEndian.PutUint64(buf[6:], a.Val.num)
		h.Write(buf[:])
		switch a.Val.Type {
		case TypeString:
			h.Write([]byte(a.Val.str))
		case TypeBlob:
			h.Write(a.Val.blob)
		}
		hv := h.Sum64()
		sum += hv
		xor ^= hv
	}
	return sum ^ (xor * 0x9e3779b97f4a7c15)
}

// Canonical returns a copy of v sorted by (key, op, type, value string),
// giving a deterministic rendering for logs and tests.
func (v Vec) Canonical() Vec {
	out := v.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Val.Type != b.Val.Type {
			return a.Val.Type < b.Val.Type
		}
		return a.Val.String() < b.Val.String()
	})
	return out
}

// Equal reports whether a and b contain the same attributes in the same
// order.
func (v Vec) Equal(o Vec) bool {
	if len(v) != len(o) {
		return false
	}
	for i := range v {
		if !attrEqual(v[i], o[i]) {
			return false
		}
	}
	return true
}

func attrEqual(a, b Attribute) bool {
	if a.Key != b.Key || a.Op != b.Op || a.Val.Type != b.Val.Type {
		return false
	}
	switch a.Val.Type {
	case TypeString:
		return a.Val.str == b.Val.str
	case TypeBlob:
		return string(a.Val.blob) == string(b.Val.blob)
	default:
		return a.Val.num == b.Val.num
	}
}
