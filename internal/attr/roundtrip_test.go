package attr

import (
	"strings"
	"testing"
)

// The HTTP control plane feeds untrusted text through ParseVec and echoes
// results with Notation, so the pair must round-trip: parse → attrs →
// render → parse must reproduce the attrs, and malformed input must fail
// cleanly rather than panic.

// TestNotationRoundTrip checks parse(render(parse(s))) is identical to
// parse(s) across the notation's surface.
func TestNotationRoundTrip(t *testing.T) {
	inputs := []string{
		"type EQ four-legged-animal-search, interval IS 6000",
		"type IS four-legged-animal-search, instance IS elephant, confidence IS 0.85",
		"x GE -100, x LE 200, y GE 0.5, y LE 300.1",
		`target EQ "two words", note IS "comma, inside"`,
		`quote IS "she said \"hi\""`,
		"task EQ_ANY",
		"seq IS 2147483647, big IS 9223372036854775807, neg IS -42",
		"rate IS 1e-3, huge IS 1.5e300",
		"class NE 4, hops LT 16, depth GT 2",
		"", // empty vector
		"  type  EQ   spaced  ,  interval IS 5  ",
	}
	for _, in := range inputs {
		first, err := ParseVec(in)
		if err != nil {
			t.Fatalf("ParseVec(%q): %v", in, err)
		}
		rendered := first.Notation()
		second, err := ParseVec(rendered)
		if err != nil {
			t.Fatalf("ParseVec(render(%q)) = ParseVec(%q): %v", in, rendered, err)
		}
		if !vecsEqual(first, second) {
			t.Errorf("round trip drifted:\n  in:       %q\n  parsed:   %v\n  rendered: %q\n  reparsed: %v",
				in, first, rendered, second)
		}
		// Rendering must be a fixpoint after one round.
		if again := second.Notation(); again != rendered {
			t.Errorf("render not stable: %q then %q", rendered, again)
		}
	}
}

// TestNotationRoundTripValueWidths documents the value-width conversions:
// a small int64 comes back as int32 and a float32 widens, with the
// numeric value preserved.
func TestNotationRoundTripValueWidths(t *testing.T) {
	v := Vec{
		Int64Attr(RegisterKey("n64"), IS, 7),
		Float32Attr(RegisterKey("f32"), IS, 0.25),
	}
	back, err := ParseVec(v.Notation())
	if err != nil {
		t.Fatal(err)
	}
	if back[0].Val.Type != TypeInt32 || back[0].Val.AsFloat() != 7 {
		t.Errorf("int64(7) reparsed as %v", back[0].Val)
	}
	if back[1].Val.Type != TypeFloat64 || back[1].Val.AsFloat() != 0.25 {
		t.Errorf("float32(0.25) reparsed as %v", back[1].Val)
	}
}

// vecsEqual compares two vectors attribute by attribute (key, op, value
// type and rendered value).
func vecsEqual(a, b Vec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Op != b[i].Op ||
			a[i].Val.Type != b[i].Val.Type || a[i].Val.String() != b[i].Val.String() {
			return false
		}
	}
	return true
}

// TestParseRejectsMalformed checks every malformed shape errors (never
// panics) with a message naming the offending clause.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		"type",                     // no op
		"type EQ",                  // missing value
		"type BETWEEN 1",           // unknown op
		"task EQ_ANY yes",          // EQ_ANY takes no value
		"a EQ 1, b",                // second clause bad
		"interval IS 1, type ALSO", // unknown op later
	}
	for _, in := range cases {
		if _, err := ParseVec(in); err == nil {
			t.Errorf("ParseVec(%q) accepted malformed input", in)
		}
	}
}

// TestParseUntrustedSoup throws byte soup at the parser: the control
// plane's exposure means anything may arrive; it must error or parse, not
// panic, and whatever parses must render.
func TestParseUntrustedSoup(t *testing.T) {
	soups := []string{
		strings.Repeat(",", 1000),
		strings.Repeat(`"`, 999),
		"\x00\x01\x02 EQ \xff",
		strings.Repeat("a EQ 1, ", 500) + "a EQ 1",
		`x IS "unterminated`,
		"𝓊𝓃𝒾𝒸ℴ𝒹ℯ IS 🜲",
	}
	for _, in := range soups {
		v, err := ParseVec(in)
		if err == nil {
			_ = v.Notation()
		}
	}
}
