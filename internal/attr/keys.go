package attr

import (
	"fmt"
	"sort"
	"sync"
)

// The key registry plays the role of the paper's "central authority" that
// assigns unique one-way match keys ("we implement these as simple 32-bit
// numbers and assume out-of-band coordination of their values"). Well-known
// keys used throughout the paper's examples are pre-registered; applications
// register their own with RegisterKey.

// Well-known keys. The numbering below the application range is fixed so
// that wire traffic is stable across builds.
const (
	// KeyClass distinguishes message roles: interest vs data.
	KeyClass Key = 1
	// KeyTask names the task ("detectAnimal", "four-legged-animal-search").
	KeyTask Key = 2
	// KeyType names a sensor or data type.
	KeyType Key = 3
	// KeyInterval is the requested reporting interval in milliseconds.
	KeyInterval Key = 4
	// KeyDuration is the query lifetime in milliseconds.
	KeyDuration Key = 5
	// KeyX and KeyY are planar coordinates for rectangular region scoping.
	KeyX Key = 6
	KeyY Key = 7
	// KeyLatitude and KeyLongitude are the geographic variants used in the
	// paper's Figure 10 matching experiment.
	KeyLatitude  Key = 8
	KeyLongitude Key = 9
	// KeyInstance identifies what was detected ("elephant").
	KeyInstance Key = 10
	// KeyIntensity and KeyConfidence qualify a detection.
	KeyIntensity  Key = 11
	KeyConfidence Key = 12
	// KeyTimestamp is the detection time in milliseconds since epoch.
	KeyTimestamp Key = 13
	// KeyTarget is the detection target class ("4-leg").
	KeyTarget Key = 14
	// KeySubtype clarifies a general type attribute (section 3.2).
	KeySubtype Key = 15
	// KeySequence carries the experiment sequence numbers used for
	// duplicate suppression in the Figure 8 aggregation filter.
	KeySequence Key = 16
	// KeyPayload carries opaque sensor bytes (used to pad messages to the
	// sizes the paper reports).
	KeyPayload Key = 17
	// KeyExtra is the filler attribute ("extra IS lot") from the Figure 11
	// matching cost experiment.
	KeyExtra Key = 18
	// KeyCount carries the number of aggregated detections (section 3.3:
	// "a more sophisticated filter could count the number of detecting
	// sensors and add that as an additional attribute").
	KeyCount Key = 19
	// KeyAlgorithm distinguishes diffusion variants on the wire (the
	// reference implementation's NRAlgorithmAttr): two-phase pull by
	// default, one-phase push for flows marked AlgorithmPush.
	KeyAlgorithm Key = 20

	// firstAppKey is the first key handed out by RegisterKey.
	firstAppKey Key = 1000
)

// Class attribute values. The paper adds an implicit "class IS interest"
// to every interest and "class IS data" to every data message.
const (
	// ClassInterest marks interest messages.
	ClassInterest int32 = 1
	// ClassData marks data messages.
	ClassData int32 = 2
)

// ClassIsInterest is the implicit attribute added to interests.
func ClassIsInterest() Attribute { return Int32Attr(KeyClass, IS, ClassInterest) }

// ClassIsData is the implicit attribute added to data messages.
func ClassIsData() Attribute { return Int32Attr(KeyClass, IS, ClassData) }

// Algorithm attribute values.
const (
	// AlgorithmPush marks one-phase-push data: exploratory messages flood
	// without pre-established interest state, and reinforcements install
	// the path state instead of interests.
	AlgorithmPush int32 = 2
)

// AlgorithmIsPush is the marker attribute on push data.
func AlgorithmIsPush() Attribute { return Int32Attr(KeyAlgorithm, IS, AlgorithmPush) }

var registry = struct {
	sync.Mutex
	names map[Key]string
	keys  map[string]Key
	next  Key
}{
	names: map[Key]string{
		KeyClass:      "class",
		KeyTask:       "task",
		KeyType:       "type",
		KeyInterval:   "interval",
		KeyDuration:   "duration",
		KeyX:          "x",
		KeyY:          "y",
		KeyLatitude:   "latitude",
		KeyLongitude:  "longitude",
		KeyInstance:   "instance",
		KeyIntensity:  "intensity",
		KeyConfidence: "confidence",
		KeyTimestamp:  "timestamp",
		KeyTarget:     "target",
		KeySubtype:    "subtype",
		KeySequence:   "sequence",
		KeyPayload:    "payload",
		KeyExtra:      "extra",
		KeyCount:      "count",
		KeyAlgorithm:  "algorithm",
	},
	keys: map[string]Key{},
	next: firstAppKey,
}

func init() {
	for k, n := range registry.names {
		registry.keys[n] = k
	}
}

// RegisterKey allocates (or returns the existing) key for name. It is safe
// for concurrent use. Registration stands in for the paper's out-of-band
// central authority.
func RegisterKey(name string) Key {
	registry.Lock()
	defer registry.Unlock()
	if k, ok := registry.keys[name]; ok {
		return k
	}
	k := registry.next
	registry.next++
	registry.keys[name] = k
	registry.names[k] = name
	return k
}

// KeyName returns the registered name for k, or a numeric rendering for
// unregistered keys.
func KeyName(k Key) string {
	registry.Lock()
	defer registry.Unlock()
	if n, ok := registry.names[k]; ok {
		return n
	}
	return fmt.Sprintf("key%d", uint32(k))
}

// RegisteredKeys returns all registered keys in ascending order; useful for
// diagnostics and the tap filter's human-readable logs.
func RegisteredKeys() []Key {
	registry.Lock()
	defer registry.Unlock()
	out := make([]Key, 0, len(registry.names))
	for k := range registry.names {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
