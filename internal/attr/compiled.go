package attr

// This file implements the matching optimizations section 6.3 anticipates:
// "segregating actuals from formals can reduce search time (since formals
// cannot match other formals there is no need to compare them); attributes
// could be statically or dynamically optimized to move the attributes
// least likely to match to the front."
//
// A Compiled set pre-separates formals from actuals and keeps the actuals
// sorted by key, so the inner loop of the Figure 2 algorithm becomes a
// binary search instead of a scan — with no per-set map, which matters
// when a broker-class node compiles millions of subscriptions. Matching
// semantics are identical to OneWayMatch/Match; the benchmarks quantify
// the speedup.

import "sort"

// Compiled is a pre-indexed attribute set for repeated matching.
type Compiled struct {
	vec     Vec
	formals []Attribute
	// actuals holds the IS attributes sorted by key (stable within a
	// key), so the bucket for a key is one binary search away.
	actuals []Attribute
}

// Compile indexes v. The original vector is retained (Vec()) and must not
// be mutated afterwards.
func Compile(v Vec) *Compiled {
	c := &Compiled{vec: v}
	for _, a := range v {
		if a.Op.IsFormal() {
			c.formals = append(c.formals, a)
		} else {
			c.actuals = append(c.actuals, a)
		}
	}
	sort.SliceStable(c.actuals, func(i, j int) bool {
		return c.actuals[i].Key < c.actuals[j].Key
	})
	return c
}

// Vec returns the underlying attribute vector.
func (c *Compiled) Vec() Vec { return c.vec }

// Formals returns the number of formal attributes.
func (c *Compiled) Formals() int { return len(c.formals) }

// actualsFor returns the contiguous run of actuals with the given key.
func (c *Compiled) actualsFor(k Key) []Attribute {
	a := c.actuals
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].Key < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := lo
	for hi = start; hi < len(a) && a[hi].Key == k; hi++ {
	}
	return a[start:hi]
}

// oneWayTo reports whether every formal of c is satisfied by an actual of
// other — the Figure 2 one-way match with the inner loop replaced by an
// index lookup.
func (c *Compiled) oneWayTo(other *Compiled) bool {
	for _, fa := range c.formals {
		matched := false
		for _, b := range other.actualsFor(fa.Key) {
			if satisfies(b.Val, fa.Op, fa.Val) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// MatchCompiled reports the complete two-way match between two compiled
// sets; it is semantically identical to Match(a.Vec(), b.Vec()).
func MatchCompiled(a, b *Compiled) bool {
	return a.oneWayTo(b) && b.oneWayTo(a)
}

// OneWayMatchCompiled reports the one-way match from a's formals to b's
// actuals, identical to OneWayMatch(a.Vec(), b.Vec()).
func OneWayMatchCompiled(a, b *Compiled) bool {
	return a.oneWayTo(b)
}

// MatchAgainst matches a compiled set against a plain vector, identical
// to OneWayMatch(c.Vec(), v): every formal of c must be satisfied by an
// actual in v. Allocation-free — it is the verification step of the
// inverted-index data path (internal/match).
func (c *Compiled) MatchAgainst(v Vec) bool {
	for _, fa := range c.formals {
		matched := false
		for _, b := range v {
			if b.Key != fa.Key || !b.Op.IsActual() {
				continue
			}
			if satisfies(b.Val, fa.Op, fa.Val) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// ActualsSatisfy reports whether every formal in v is satisfied by an
// actual of c, identical to OneWayMatch(v, c.Vec()) — the reverse
// direction of MatchAgainst, with c's side pre-indexed. Allocation-free.
func (c *Compiled) ActualsSatisfy(v Vec) bool {
	for _, fa := range v {
		if !fa.Op.IsFormal() {
			continue
		}
		matched := false
		for _, b := range c.actualsFor(fa.Key) {
			if satisfies(b.Val, fa.Op, fa.Val) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// MatchVec reports the complete two-way match between c and a plain
// vector, identical to Match(c.Vec(), v). Allocation-free.
func (c *Compiled) MatchVec(v Vec) bool {
	return c.MatchAgainst(v) && c.ActualsSatisfy(v)
}
