package attr

// This file implements the matching optimizations section 6.3 anticipates:
// "segregating actuals from formals can reduce search time (since formals
// cannot match other formals there is no need to compare them); attributes
// could be statically or dynamically optimized to move the attributes
// least likely to match to the front."
//
// A Compiled set pre-separates formals from actuals and indexes the
// actuals by key, so the inner loop of the Figure 2 algorithm becomes a
// bucket lookup instead of a scan. Matching semantics are identical to
// OneWayMatch/Match; the benchmarks quantify the speedup.

// Compiled is a pre-indexed attribute set for repeated matching.
type Compiled struct {
	vec     Vec
	formals []Attribute
	actuals map[Key][]Value
}

// Compile indexes v. The original vector is retained (Vec()) and must not
// be mutated afterwards.
func Compile(v Vec) *Compiled {
	c := &Compiled{vec: v, actuals: make(map[Key][]Value)}
	for _, a := range v {
		if a.Op.IsFormal() {
			c.formals = append(c.formals, a)
		} else {
			c.actuals[a.Key] = append(c.actuals[a.Key], a.Val)
		}
	}
	return c
}

// Vec returns the underlying attribute vector.
func (c *Compiled) Vec() Vec { return c.vec }

// Formals returns the number of formal attributes.
func (c *Compiled) Formals() int { return len(c.formals) }

// oneWayTo reports whether every formal of c is satisfied by an actual of
// other — the Figure 2 one-way match with the inner loop replaced by an
// index lookup.
func (c *Compiled) oneWayTo(other *Compiled) bool {
	for _, fa := range c.formals {
		bucket, ok := other.actuals[fa.Key]
		if !ok {
			return false
		}
		matched := false
		for _, val := range bucket {
			if satisfies(val, fa.Op, fa.Val) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// MatchCompiled reports the complete two-way match between two compiled
// sets; it is semantically identical to Match(a.Vec(), b.Vec()).
func MatchCompiled(a, b *Compiled) bool {
	return a.oneWayTo(b) && b.oneWayTo(a)
}

// OneWayMatchCompiled reports the one-way match from a's formals to b's
// actuals, identical to OneWayMatch(a.Vec(), b.Vec()).
func OneWayMatchCompiled(a, b *Compiled) bool {
	return a.oneWayTo(b)
}

// MatchAgainst matches a compiled set against a plain vector (compiling
// the vector's actuals on the fly is still cheaper than the quadratic scan
// when c has several formals). Semantically identical to
// OneWayMatch(c.Vec(), v).
func (c *Compiled) MatchAgainst(v Vec) bool {
	for _, fa := range c.formals {
		matched := false
		for _, b := range v {
			if b.Key != fa.Key || !b.Op.IsActual() {
				continue
			}
			if satisfies(b.Val, fa.Op, fa.Val) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}
