package attr

import (
	"fmt"
	"strconv"
	"strings"
)

// This file parses the paper's textual attribute notation, as used in its
// worked examples:
//
//	type EQ four-legged-animal-search, interval IS 20, x GE -100, x LE 200
//
// Each clause is `key OP value` (comma-separated); EQ_ANY takes no value.
// Keys resolve through the registry (unknown names are registered, exactly
// as an application would). Values parse as int32 when they look like
// integers, float64 when they look like reals, and strings otherwise;
// quoted strings are always strings. ParseVec is the inverse of
// Vec.String up to value-type details, and is what the query CLI uses.

// Notation renders v in the paper's parseable textual notation — the
// clause list ParseVec accepts, without Vec.String's surrounding parens.
// ParseVec(v.Notation()) reproduces v up to value-width details (an int64
// that fits in 32 bits parses back as int32, a float32 widens to float64)
// and except for blobs, which have no textual form. The HTTP control
// plane uses it to echo what it parsed.
func (v Vec) Notation() string {
	var b strings.Builder
	for i, a := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// ParseOp parses an operation name.
func ParseOp(s string) (Op, error) {
	switch strings.ToUpper(s) {
	case "IS":
		return IS, nil
	case "EQ":
		return EQ, nil
	case "NE":
		return NE, nil
	case "LT":
		return LT, nil
	case "LE":
		return LE, nil
	case "GT":
		return GT, nil
	case "GE":
		return GE, nil
	case "EQ_ANY", "EQANY", "ANY":
		return EQAny, nil
	default:
		return 0, fmt.Errorf("attr: unknown operation %q", s)
	}
}

// ParseVec parses a comma-separated list of `key OP value` clauses.
func ParseVec(s string) (Vec, error) {
	var out Vec
	for _, clause := range splitClauses(s) {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		a, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// MustParseVec is ParseVec for trusted literals; it panics on error.
func MustParseVec(s string) Vec {
	v, err := ParseVec(s)
	if err != nil {
		panic(err)
	}
	return v
}

// splitClauses splits on commas outside double quotes.
func splitClauses(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

func parseClause(clause string) (Attribute, error) {
	fields := splitFields(clause)
	if len(fields) < 2 {
		return Attribute{}, fmt.Errorf("attr: clause %q needs `key OP value`", clause)
	}
	key := RegisterKey(fields[0])
	op, err := ParseOp(fields[1])
	if err != nil {
		return Attribute{}, fmt.Errorf("attr: clause %q: %w", clause, err)
	}
	if op == EQAny {
		if len(fields) > 2 {
			return Attribute{}, fmt.Errorf("attr: clause %q: EQ_ANY takes no value", clause)
		}
		return Any(key), nil
	}
	if len(fields) != 3 {
		return Attribute{}, fmt.Errorf("attr: clause %q needs exactly one value", clause)
	}
	return Attribute{Key: key, Op: op, Val: parseValue(fields[2])}, nil
}

// splitFields splits a clause into at most three whitespace-separated
// fields, keeping a quoted final value intact.
func splitFields(clause string) []string {
	clause = strings.TrimSpace(clause)
	var out []string
	for len(clause) > 0 && len(out) < 2 {
		i := strings.IndexAny(clause, " \t")
		if i < 0 {
			out = append(out, clause)
			return out
		}
		out = append(out, clause[:i])
		clause = strings.TrimLeft(clause[i:], " \t")
	}
	if clause != "" {
		out = append(out, clause)
	}
	return out
}

// parseValue infers the value type: quoted → string; integer-looking →
// int32 (int64 when it overflows); real-looking → float64; otherwise a
// bare string.
func parseValue(s string) Value {
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		if unq, err := strconv.Unquote(s); err == nil {
			return StringValue(unq)
		}
		return StringValue(s[1 : len(s)-1])
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		if i >= -1<<31 && i < 1<<31 {
			return Int32Value(int32(i))
		}
		return Int64Value(i)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float64Value(f)
	}
	return StringValue(s)
}
