package attr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompiledMatchesPlainSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVec(r, r.Intn(10))
		b := randomVec(r, r.Intn(10))
		ca, cb := Compile(a), Compile(b)
		if MatchCompiled(ca, cb) != Match(a, b) {
			return false
		}
		if OneWayMatchCompiled(ca, cb) != OneWayMatch(a, b) {
			return false
		}
		return ca.MatchAgainst(b) == OneWayMatch(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCompiledAccessors(t *testing.T) {
	v := Vec{
		Float64Attr(KeyConfidence, GT, 0.5),
		Float64Attr(KeyConfidence, IS, 0.9),
		StringAttr(KeyTask, EQ, "t"),
	}
	c := Compile(v)
	if c.Formals() != 2 {
		t.Errorf("formals = %d", c.Formals())
	}
	if !c.Vec().Equal(v) {
		t.Error("Vec round trip")
	}
	if len(c.actualsFor(KeyConfidence)) != 1 {
		t.Error("actual indexing")
	}
	if len(c.actualsFor(KeyTask)) != 0 {
		t.Error("formal must not land in the actual index")
	}
}

func TestCompiledReverseDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVec(r, r.Intn(10))
		b := randomVec(r, r.Intn(10))
		ca := Compile(a)
		if ca.ActualsSatisfy(b) != OneWayMatch(b, a) {
			return false
		}
		return ca.MatchVec(b) == Match(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCompiledEmpty(t *testing.T) {
	e := Compile(nil)
	if !MatchCompiled(e, e) {
		t.Error("empty sets match")
	}
	d := Compile(Vec{Float64Attr(KeyX, GT, 1)})
	if MatchCompiled(d, e) || d.MatchAgainst(nil) {
		t.Error("unsatisfied formal must fail")
	}
}

// The section 6.3 claim: segregation+indexing beats the scan. Keep this a
// test (not just a bench) so a regression that makes Compile slower than
// the scan is caught: run both on the Figure 10-style sets and compare
// rough operation counts via testing.B would be flaky, so instead just
// assert semantic agreement on the worked example here; the speedup is
// measured by BenchmarkCompiledMatching.
func TestCompiledFigure10(t *testing.T) {
	a := Vec{
		Int32Attr(KeyClass, IS, ClassInterest),
		StringAttr(KeyTask, EQ, "detectAnimal"),
		Float64Attr(KeyConfidence, GT, 50),
		Float64Attr(KeyLatitude, GE, 10.0),
		Float64Attr(KeyLatitude, LE, 100.0),
		StringAttr(KeyTarget, IS, "4-leg"),
	}
	b := Vec{
		Int32Attr(KeyClass, IS, ClassData),
		StringAttr(KeyTask, IS, "detectAnimal"),
		Float64Attr(KeyConfidence, IS, 90),
		Float64Attr(KeyLatitude, IS, 20.0),
		StringAttr(KeyTarget, IS, "4-leg"),
	}
	if !MatchCompiled(Compile(a), Compile(b)) {
		t.Error("figure 10 sets must match compiled")
	}
	b[2] = Float64Attr(KeyConfidence, IS, 10)
	if MatchCompiled(Compile(a), Compile(b)) {
		t.Error("low confidence must fail compiled too")
	}
}
