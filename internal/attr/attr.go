// Package attr implements the attribute-value-operation tuples and the
// one-way/two-way matching rules that form the low-level naming layer of
// directed diffusion (SOSP 2001, section 3.2).
//
// An attribute is a (key, operation, value) triple. Keys are 32-bit numbers
// drawn from a central registry, mirroring the paper's out-of-band key
// assignment. The operation is either the single "actual" operation IS,
// which binds a literal value, or one of the "formal" comparison operations
// (EQ, NE, LT, LE, GT, GE, EQAny) which constrain the actuals of the peer
// attribute set during matching.
package attr

import (
	"encoding/base64"
	"fmt"
	"math"
	"strconv"
)

// Key identifies an attribute. Keys are allocated by the central registry
// (see keys.go), just as the paper assumes out-of-band coordination of
// 32-bit key numbers.
type Key uint32

// Op is the operation field of an attribute tuple.
type Op uint8

// Operation values. IS is the only actual (literal binding); the rest are
// formals (unbound comparisons resolved at match time).
const (
	// IS binds an actual (literal) value.
	IS Op = iota
	// EQ requires an actual equal to the formal's value.
	EQ
	// NE requires an actual different from the formal's value.
	NE
	// LT requires an actual strictly less than the formal's value.
	LT
	// LE requires an actual less than or equal to the formal's value.
	LE
	// GT requires an actual strictly greater than the formal's value.
	GT
	// GE requires an actual greater than or equal to the formal's value.
	GE
	// EQAny matches any actual with the same key, regardless of value.
	EQAny

	numOps
)

// IsFormal reports whether the operation is a formal (comparison) that must
// be satisfied by an actual in the peer attribute set.
func (op Op) IsFormal() bool { return op != IS }

// IsActual reports whether the operation binds a literal value.
func (op Op) IsActual() bool { return op == IS }

// Valid reports whether op is one of the defined operations.
func (op Op) Valid() bool { return op < numOps }

// String returns the paper's spelling of the operation.
func (op Op) String() string {
	switch op {
	case IS:
		return "IS"
	case EQ:
		return "EQ"
	case NE:
		return "NE"
	case LT:
		return "LT"
	case LE:
		return "LE"
	case GT:
		return "GT"
	case GE:
		return "GE"
	case EQAny:
		return "EQ_ANY"
	default:
		return fmt.Sprintf("Op(%d)", uint8(op))
	}
}

// Type is the data format of an attribute value. The paper supports
// "integers and floating point values of different sizes, strings, and
// uninterpreted binary data".
type Type uint8

// Value types.
const (
	TypeInt32 Type = iota
	TypeInt64
	TypeFloat32
	TypeFloat64
	TypeString
	TypeBlob

	numTypes
)

// Valid reports whether t is one of the defined value types.
func (t Type) Valid() bool { return t < numTypes }

// String returns a short name for the type.
func (t Type) String() string {
	switch t {
	case TypeInt32:
		return "int32"
	case TypeInt64:
		return "int64"
	case TypeFloat32:
		return "float32"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	case TypeBlob:
		return "blob"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a typed attribute value. The zero Value is an int32 zero.
type Value struct {
	Type Type
	// num holds integer values directly and float values via math.Float64bits.
	num uint64
	// str holds string values; blob holds binary values.
	str  string
	blob []byte
}

// Int32Value returns a Value holding v.
func Int32Value(v int32) Value { return Value{Type: TypeInt32, num: uint64(uint32(v))} }

// Int64Value returns a Value holding v.
func Int64Value(v int64) Value { return Value{Type: TypeInt64, num: uint64(v)} }

// Float32Value returns a Value holding v.
func Float32Value(v float32) Value {
	return Value{Type: TypeFloat32, num: uint64(math.Float32bits(v))}
}

// Float64Value returns a Value holding v.
func Float64Value(v float64) Value {
	return Value{Type: TypeFloat64, num: math.Float64bits(v)}
}

// StringValue returns a Value holding v.
func StringValue(v string) Value { return Value{Type: TypeString, str: v} }

// BlobValue returns a Value holding a copy of v.
func BlobValue(v []byte) Value {
	b := make([]byte, len(v))
	copy(b, v)
	return Value{Type: TypeBlob, blob: b}
}

// Int32 returns the value as an int32. It panics if the type differs.
func (v Value) Int32() int32 {
	v.mustBe(TypeInt32)
	return int32(uint32(v.num))
}

// Int64 returns the value as an int64. It panics if the type differs.
func (v Value) Int64() int64 {
	v.mustBe(TypeInt64)
	return int64(v.num)
}

// Float32 returns the value as a float32. It panics if the type differs.
func (v Value) Float32() float32 {
	v.mustBe(TypeFloat32)
	return math.Float32frombits(uint32(v.num))
}

// Float64 returns the value as a float64. It panics if the type differs.
func (v Value) Float64() float64 {
	v.mustBe(TypeFloat64)
	return math.Float64frombits(v.num)
}

// String returns the value as a string when it holds one, and otherwise a
// printable rendering (so Value satisfies fmt.Stringer safely).
func (v Value) String() string {
	switch v.Type {
	case TypeInt32:
		return strconv.FormatInt(int64(int32(uint32(v.num))), 10)
	case TypeInt64:
		return strconv.FormatInt(int64(v.num), 10)
	case TypeFloat32:
		return strconv.FormatFloat(float64(math.Float32frombits(uint32(v.num))), 'g', -1, 32)
	case TypeFloat64:
		return strconv.FormatFloat(math.Float64frombits(v.num), 'g', -1, 64)
	case TypeString:
		return strconv.Quote(v.str)
	case TypeBlob:
		return "0x" + base64.StdEncoding.EncodeToString(v.blob)
	default:
		return fmt.Sprintf("Value(type=%d)", v.Type)
	}
}

// Str returns the underlying string. It panics if the type differs.
func (v Value) Str() string {
	v.mustBe(TypeString)
	return v.str
}

// Blob returns the underlying bytes. Callers must not modify the result.
// It panics if the type differs.
func (v Value) Blob() []byte {
	v.mustBe(TypeBlob)
	return v.blob
}

// Numeric reports whether the value holds an integer or float.
func (v Value) Numeric() bool {
	switch v.Type {
	case TypeInt32, TypeInt64, TypeFloat32, TypeFloat64:
		return true
	}
	return false
}

// AsFloat returns a numeric value widened to float64 for cross-size
// comparisons. It panics for non-numeric values.
func (v Value) AsFloat() float64 {
	switch v.Type {
	case TypeInt32:
		return float64(int32(uint32(v.num)))
	case TypeInt64:
		return float64(int64(v.num))
	case TypeFloat32:
		return float64(math.Float32frombits(uint32(v.num)))
	case TypeFloat64:
		return math.Float64frombits(v.num)
	default:
		panic("attr: AsFloat on non-numeric value of type " + v.Type.String())
	}
}

func (v Value) mustBe(t Type) {
	if v.Type != t {
		panic(fmt.Sprintf("attr: value is %v, not %v", v.Type, t))
	}
}

// Size returns the encoded size of the value payload in bytes, used for the
// byte-level traffic accounting in the evaluation.
func (v Value) Size() int {
	switch v.Type {
	case TypeInt32, TypeFloat32:
		return 4
	case TypeInt64, TypeFloat64:
		return 8
	case TypeString:
		return 2 + len(v.str)
	case TypeBlob:
		return 2 + len(v.blob)
	default:
		return 0
	}
}

// Attribute is one attribute-value-operation tuple.
type Attribute struct {
	Key Key
	Op  Op
	Val Value
}

// String renders the tuple in the paper's "key OP value" notation.
func (a Attribute) String() string {
	if a.Op == EQAny {
		return fmt.Sprintf("%s EQ_ANY", KeyName(a.Key))
	}
	return fmt.Sprintf("%s %s %s", KeyName(a.Key), a.Op, a.Val)
}

// Size returns the encoded size of the attribute in bytes.
func (a Attribute) Size() int { return attrHeaderSize + a.Val.Size() }

// Convenience constructors. Each returns a single tuple; compose them into
// a Vec to form an interest or a data description.

// Int32Attr returns key op v with an int32 value.
func Int32Attr(k Key, op Op, v int32) Attribute { return Attribute{k, op, Int32Value(v)} }

// Int64Attr returns key op v with an int64 value.
func Int64Attr(k Key, op Op, v int64) Attribute { return Attribute{k, op, Int64Value(v)} }

// Float32Attr returns key op v with a float32 value.
func Float32Attr(k Key, op Op, v float32) Attribute { return Attribute{k, op, Float32Value(v)} }

// Float64Attr returns key op v with a float64 value.
func Float64Attr(k Key, op Op, v float64) Attribute { return Attribute{k, op, Float64Value(v)} }

// StringAttr returns key op v with a string value.
func StringAttr(k Key, op Op, v string) Attribute { return Attribute{k, op, StringValue(v)} }

// BlobAttr returns key op v with a binary value.
func BlobAttr(k Key, op Op, v []byte) Attribute { return Attribute{k, op, BlobValue(v)} }

// Any returns the wildcard formal "key EQ_ANY", which matches any actual
// for the key.
func Any(k Key) Attribute { return Attribute{k, EQAny, Int32Value(0)} }

// Vec is an attribute set: the unit of naming for interests and data.
type Vec []Attribute

// Clone returns a deep copy of the vector (blob payloads are shared, as
// Values are immutable by convention).
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Find returns the first attribute with the given key, or ok=false.
func (v Vec) Find(k Key) (Attribute, bool) {
	for _, a := range v {
		if a.Key == k {
			return a, true
		}
	}
	return Attribute{}, false
}

// FindActual returns the first actual (IS) attribute with the given key.
func (v Vec) FindActual(k Key) (Attribute, bool) {
	for _, a := range v {
		if a.Key == k && a.Op.IsActual() {
			return a, true
		}
	}
	return Attribute{}, false
}

// With returns a new Vec with extra appended (the receiver is not modified).
func (v Vec) With(extra ...Attribute) Vec {
	out := make(Vec, 0, len(v)+len(extra))
	out = append(out, v...)
	return append(out, extra...)
}

// Without returns a new Vec with every attribute for key k removed.
func (v Vec) Without(k Key) Vec {
	out := make(Vec, 0, len(v))
	for _, a := range v {
		if a.Key != k {
			out = append(out, a)
		}
	}
	return out
}

// Size returns the encoded size of the vector in bytes.
func (v Vec) Size() int {
	n := vecHeaderSize
	for _, a := range v {
		n += a.Size()
	}
	return n
}

// String renders the vector in the paper's parenthesized tuple-list form.
func (v Vec) String() string {
	s := "("
	for i, a := range v {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	return s + ")"
}
