package attr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure10Interest and figure10Data are the attribute sets of the paper's
// Figure 10, used for the matching experiments.
func figure10Interest() Vec {
	return Vec{
		Int32Attr(KeyClass, IS, ClassInterest),
		StringAttr(KeyTask, EQ, "detectAnimal"),
		Float64Attr(KeyConfidence, GT, 50),
		Float64Attr(KeyLatitude, GE, 10.0),
		Float64Attr(KeyLatitude, LE, 100.0),
		Float64Attr(KeyLongitude, GE, 5.0),
		Float64Attr(KeyLongitude, LE, 95.0),
		StringAttr(KeyTarget, IS, "4-leg"),
	}
}

func figure10Data() Vec {
	return Vec{
		Int32Attr(KeyClass, IS, ClassData),
		StringAttr(KeyTask, IS, "detectAnimal"),
		Float64Attr(KeyConfidence, IS, 90),
		Float64Attr(KeyLatitude, IS, 20.0),
		Float64Attr(KeyLongitude, IS, 80.0),
		StringAttr(KeyTarget, IS, "4-leg"),
	}
}

func TestFigure10SetsMatchOneWay(t *testing.T) {
	in, data := figure10Interest(), figure10Data()
	if !OneWayMatch(in, data) {
		t.Fatalf("interest formals should be satisfied by data actuals:\n%v\n%v", in, data)
	}
	// The data set has no formals, so the reverse one-way match holds
	// vacuously and the two-way match succeeds.
	if !OneWayMatch(data, in) {
		t.Fatal("data→interest one-way match should hold vacuously")
	}
	if !Match(in, data) {
		t.Fatal("two-way match should succeed")
	}
}

func TestFigure10NoMatchWhenConfidenceLow(t *testing.T) {
	in, data := figure10Interest(), figure10Data()
	// The Figure 11 "no-match" variant: confidence changed from 90 to 10
	// fails the "confidence GT 50" formal.
	for i, a := range data {
		if a.Key == KeyConfidence {
			data[i] = Float64Attr(KeyConfidence, IS, 10)
		}
	}
	if OneWayMatch(in, data) {
		t.Fatal("confidence IS 10 must not satisfy confidence GT 50")
	}
}

// TestPaperConfidenceExamples checks the worked example of section 3.2:
// "confidence GT 0.5" must have an actual such as "confidence IS 0.7" and
// would not match "confidence IS 0.3", "confidence LT 0.7", or
// "confidence GT 0.7".
func TestPaperConfidenceExamples(t *testing.T) {
	formal := Vec{Float64Attr(KeyConfidence, GT, 0.5)}
	cases := []struct {
		name string
		b    Vec
		want bool
	}{
		{"IS 0.7 matches", Vec{Float64Attr(KeyConfidence, IS, 0.7)}, true},
		{"IS 0.3 fails", Vec{Float64Attr(KeyConfidence, IS, 0.3)}, false},
		{"LT 0.7 is a formal, not an actual", Vec{Float64Attr(KeyConfidence, LT, 0.7)}, false},
		{"GT 0.7 is a formal, not an actual", Vec{Float64Attr(KeyConfidence, GT, 0.7)}, false},
		{"empty set fails", nil, false},
		{"actual for different key fails", Vec{Float64Attr(KeyIntensity, IS, 0.7)}, false},
	}
	for _, c := range cases {
		if got := OneWayMatch(formal, c.b); got != c.want {
			t.Errorf("%s: OneWayMatch=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestOperators(t *testing.T) {
	k := KeyConfidence
	cases := []struct {
		op     Op
		formal float64
		actual float64
		want   bool
	}{
		{EQ, 5, 5, true}, {EQ, 5, 6, false},
		{NE, 5, 6, true}, {NE, 5, 5, false},
		{LT, 5, 4, true}, {LT, 5, 5, false}, {LT, 5, 6, false},
		{LE, 5, 5, true}, {LE, 5, 6, false}, {LE, 5, 4, true},
		{GT, 5, 6, true}, {GT, 5, 5, false}, {GT, 5, 4, false},
		{GE, 5, 5, true}, {GE, 5, 4, false}, {GE, 5, 6, true},
		{EQAny, 5, -1e18, true},
	}
	for _, c := range cases {
		a := Vec{Float64Attr(k, c.op, c.formal)}
		b := Vec{Float64Attr(k, IS, c.actual)}
		if got := OneWayMatch(a, b); got != c.want {
			t.Errorf("formal %v %v vs actual IS %v: got %v, want %v",
				c.op, c.formal, c.actual, got, c.want)
		}
	}
}

func TestCrossNumericWidths(t *testing.T) {
	// Integer actuals satisfy float formals and vice versa: the region
	// check "x GE -100" must accept "x IS 125" whatever the integer width.
	formals := Vec{Int32Attr(KeyX, GE, -100), Int32Attr(KeyX, LE, 200)}
	for _, actual := range []Attribute{
		Int32Attr(KeyX, IS, 125),
		Int64Attr(KeyX, IS, 125),
		Float32Attr(KeyX, IS, 125),
		Float64Attr(KeyX, IS, 125),
	} {
		if !OneWayMatch(formals, Vec{actual}) {
			t.Errorf("actual %v should satisfy region formals", actual)
		}
	}
	if OneWayMatch(formals, Vec{Int32Attr(KeyX, IS, 300)}) {
		t.Error("x IS 300 must not satisfy x LE 200")
	}
}

func TestIncomparableTypes(t *testing.T) {
	// A string actual cannot satisfy a numeric EQ formal, but satisfies NE
	// (values of different types are trivially unequal) and EQAny.
	str := Vec{StringAttr(KeyInstance, IS, "elephant")}
	if OneWayMatch(Vec{Float64Attr(KeyInstance, EQ, 1)}, str) {
		t.Error("string actual must not satisfy numeric EQ")
	}
	if !OneWayMatch(Vec{Float64Attr(KeyInstance, NE, 1)}, str) {
		t.Error("string actual should satisfy numeric NE")
	}
	if !OneWayMatch(Vec{Any(KeyInstance)}, str) {
		t.Error("EQ_ANY must match any actual")
	}
	if OneWayMatch(Vec{StringAttr(KeyInstance, GT, "a")}, Vec{BlobAttr(KeyInstance, IS, []byte("b"))}) {
		t.Error("blob actual must not satisfy string GT")
	}
}

func TestStringAndBlobComparisons(t *testing.T) {
	if !OneWayMatch(Vec{StringAttr(KeyTask, EQ, "detectAnimal")},
		Vec{StringAttr(KeyTask, IS, "detectAnimal")}) {
		t.Error("string EQ should match identical actual")
	}
	if !OneWayMatch(Vec{StringAttr(KeyTask, GT, "a")}, Vec{StringAttr(KeyTask, IS, "b")}) {
		t.Error("string GT should use lexicographic order")
	}
	if !OneWayMatch(Vec{BlobAttr(KeyPayload, EQ, []byte{1, 2})},
		Vec{BlobAttr(KeyPayload, IS, []byte{1, 2})}) {
		t.Error("blob EQ should match identical bytes")
	}
	if OneWayMatch(Vec{BlobAttr(KeyPayload, EQ, []byte{1, 2})},
		Vec{BlobAttr(KeyPayload, IS, []byte{1, 3})}) {
		t.Error("blob EQ must fail on different bytes")
	}
}

// TestAllFormalsAnded verifies the paper's "anded together" semantics: all
// formals must be satisfied.
func TestAllFormalsAnded(t *testing.T) {
	formals := Vec{
		Float64Attr(KeyX, GE, -100), Float64Attr(KeyX, LE, 200),
		Float64Attr(KeyY, GE, 100), Float64Attr(KeyY, LE, 400),
	}
	inside := Vec{Float64Attr(KeyX, IS, 125), Float64Attr(KeyY, IS, 220)}
	outside := Vec{Float64Attr(KeyX, IS, 125), Float64Attr(KeyY, IS, 500)}
	if !OneWayMatch(formals, inside) {
		t.Error("point inside rectangle should match")
	}
	if OneWayMatch(formals, outside) {
		t.Error("point outside rectangle must not match")
	}
}

// TestMultipleActualsSameKey: a formal is satisfied if ANY actual with the
// key satisfies it (the inner loop of Figure 2 sets matched on any hit).
func TestMultipleActualsSameKey(t *testing.T) {
	a := Vec{Float64Attr(KeyConfidence, GT, 0.5)}
	b := Vec{
		Float64Attr(KeyConfidence, IS, 0.1),
		Float64Attr(KeyConfidence, IS, 0.9),
	}
	if !OneWayMatch(a, b) {
		t.Error("any satisfying actual should suffice")
	}
}

func TestEmptyVectors(t *testing.T) {
	if !OneWayMatch(nil, nil) {
		t.Error("no formals: vacuous one-way match must succeed")
	}
	if !Match(nil, nil) {
		t.Error("two empty sets match")
	}
	if !OneWayMatch(Vec{Float64Attr(KeyX, IS, 1)}, nil) {
		t.Error("actual-only set has no formals to satisfy")
	}
}

// Property: adding more actuals to B never breaks an existing one-way match
// from A (actuals only widen what B offers).
func TestQuickAddingActualsMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(formalVal, actualVal, extraVal int32, opPick uint8) bool {
		op := []Op{EQ, NE, LT, LE, GT, GE, EQAny}[int(opPick)%7]
		a := Vec{Int32Attr(KeyConfidence, op, formalVal)}
		b := Vec{Int32Attr(KeyConfidence, IS, actualVal)}
		before := OneWayMatch(a, b)
		b2 := b.With(Int32Attr(Key(rng.Intn(30)+1), IS, extraVal))
		after := OneWayMatch(a, b2)
		return !before || after
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: one-way matching is invariant under permutation of both sets.
func TestQuickMatchOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVec(r, 6)
		b := randomVec(r, 6)
		want := OneWayMatch(a, b)
		ap, bp := a.Clone(), b.Clone()
		r.Shuffle(len(ap), func(i, j int) { ap[i], ap[j] = ap[j], ap[i] })
		r.Shuffle(len(bp), func(i, j int) { bp[i], bp[j] = bp[j], bp[i] })
		return OneWayMatch(ap, bp) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Match is symmetric.
func TestQuickMatchSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomVec(r, 5)
		b := randomVec(r, 5)
		return Match(a, b) == Match(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: a vector of actuals always two-way-matches itself.
func TestQuickActualSelfMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := make(Vec, 0, 5)
		for i := 0; i < 5; i++ {
			v = append(v, Int32Attr(Key(r.Intn(10)+1), IS, int32(r.Intn(100))))
		}
		return Match(v, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func randomVec(r *rand.Rand, n int) Vec {
	v := make(Vec, 0, n)
	ops := []Op{IS, EQ, NE, LT, LE, GT, GE, EQAny}
	for i := 0; i < n; i++ {
		k := Key(r.Intn(8) + 1)
		op := ops[r.Intn(len(ops))]
		switch r.Intn(3) {
		case 0:
			v = append(v, Int32Attr(k, op, int32(r.Intn(10))))
		case 1:
			v = append(v, Float64Attr(k, op, float64(r.Intn(10))))
		default:
			v = append(v, StringAttr(k, op, string(rune('a'+r.Intn(4)))))
		}
	}
	return v
}
