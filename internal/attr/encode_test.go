package attr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := Vec{
		Int32Attr(KeyClass, IS, ClassData),
		Int64Attr(KeyTimestamp, IS, 1<<40),
		Float32Attr(KeyIntensity, IS, 0.6),
		Float64Attr(KeyConfidence, GT, 0.85),
		StringAttr(KeyInstance, IS, "elephant"),
		BlobAttr(KeyPayload, IS, []byte{0, 1, 2, 254, 255}),
		Any(KeyType),
	}
	enc := v.Encode()
	if len(enc) != v.Size() {
		t.Errorf("Size()=%d but encoding is %d bytes", v.Size(), len(enc))
	}
	got, n, err := DecodeVec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d of %d bytes", n, len(enc))
	}
	if !got.Equal(v) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, v)
	}
}

func TestDecodeTruncated(t *testing.T) {
	v := Vec{StringAttr(KeyTask, IS, "detectAnimal"), Int32Attr(KeyX, IS, 7)}
	enc := v.Encode()
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeVec(enc[:i]); err == nil {
			t.Errorf("decoding %d-byte prefix should fail", i)
		}
	}
}

func TestDecodeBadOpAndType(t *testing.T) {
	enc := Vec{Int32Attr(KeyX, IS, 1)}.Encode()
	bad := append([]byte(nil), enc...)
	bad[2+4] = 250 // op byte
	if _, _, err := DecodeVec(bad); !errors.Is(err, ErrBadOp) {
		t.Errorf("want ErrBadOp, got %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[2+5] = 250 // type byte
	if _, _, err := DecodeVec(bad); !errors.Is(err, ErrBadType) {
		t.Errorf("want ErrBadType, got %v", err)
	}
}

func TestDecodeEmpty(t *testing.T) {
	enc := Vec{}.Encode()
	got, n, err := DecodeVec(enc)
	if err != nil || n != 2 || len(got) != 0 {
		t.Errorf("empty vec round trip: got %v, n=%d, err=%v", got, n, err)
	}
}

func TestDecodeTrailingBytesIgnored(t *testing.T) {
	v := Vec{Int32Attr(KeyX, IS, 9)}
	enc := append(v.Encode(), 0xAA, 0xBB)
	got, n, err := DecodeVec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc)-2 || !got.Equal(v) {
		t.Errorf("decode with trailing bytes: n=%d got=%v", n, got)
	}
}

func TestHashOrderInsensitive(t *testing.T) {
	a := Vec{
		Int32Attr(KeyX, IS, 1),
		StringAttr(KeyTask, IS, "t"),
		Float64Attr(KeyConfidence, GT, 0.5),
	}
	b := Vec{a[2], a[0], a[1]}
	if a.Hash() != b.Hash() {
		t.Error("hash must be order-insensitive")
	}
	c := a.Clone()
	c[0] = Int32Attr(KeyX, IS, 2)
	if a.Hash() == c.Hash() {
		t.Error("different values should (overwhelmingly) hash differently")
	}
}

func TestHashDistinguishesOpAndType(t *testing.T) {
	a := Vec{Int32Attr(KeyX, IS, 1)}
	b := Vec{Int32Attr(KeyX, EQ, 1)}
	c := Vec{Int64Attr(KeyX, IS, 1)}
	if a.Hash() == b.Hash() {
		t.Error("op must affect the hash")
	}
	if a.Hash() == c.Hash() {
		t.Error("value type must affect the hash")
	}
}

func TestCanonicalDeterministic(t *testing.T) {
	a := Vec{Int32Attr(KeyY, IS, 2), Int32Attr(KeyX, IS, 1), Int32Attr(KeyX, EQ, 1)}
	c1, c2 := a.Canonical(), Vec{a[1], a[2], a[0]}.Canonical()
	if !c1.Equal(c2) {
		t.Errorf("canonical forms differ: %v vs %v", c1, c2)
	}
	if c1[0].Key != KeyX {
		t.Errorf("canonical should sort by key: %v", c1)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomVec(r, r.Intn(12))
		got, n, err := DecodeVec(v.Encode())
		return err == nil && n == v.Size() && got.Equal(v) && got.Hash() == v.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestValueAccessors(t *testing.T) {
	if Int32Value(-5).Int32() != -5 {
		t.Error("int32 round trip")
	}
	if Int64Value(math.MinInt64).Int64() != math.MinInt64 {
		t.Error("int64 round trip")
	}
	if Float32Value(1.5).Float32() != 1.5 {
		t.Error("float32 round trip")
	}
	if Float64Value(math.Pi).Float64() != math.Pi {
		t.Error("float64 round trip")
	}
	if StringValue("x").Str() != "x" {
		t.Error("string round trip")
	}
	if string(BlobValue([]byte("ab")).Blob()) != "ab" {
		t.Error("blob round trip")
	}
	// Blob values copy their input.
	src := []byte{1, 2}
	v := BlobValue(src)
	src[0] = 9
	if v.Blob()[0] != 1 {
		t.Error("BlobValue must copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong-type accessor must panic")
		}
	}()
	Int32Value(1).Str()
}

func TestVecHelpers(t *testing.T) {
	v := Vec{Int32Attr(KeyX, GE, 1), Int32Attr(KeyX, IS, 5), Int32Attr(KeyY, IS, 2)}
	if a, ok := v.Find(KeyX); !ok || a.Op != GE {
		t.Error("Find returns first occurrence")
	}
	if a, ok := v.FindActual(KeyX); !ok || a.Val.Int32() != 5 {
		t.Error("FindActual skips formals")
	}
	if _, ok := v.FindActual(KeyTask); ok {
		t.Error("FindActual on absent key")
	}
	w := v.Without(KeyX)
	if len(w) != 1 || w[0].Key != KeyY {
		t.Errorf("Without: %v", w)
	}
	if len(v) != 3 {
		t.Error("Without must not modify receiver")
	}
	u := v.With(Int32Attr(KeyTask, IS, 1))
	if len(u) != 4 || len(v) != 3 {
		t.Error("With must append to a copy")
	}
}

func TestKeyRegistry(t *testing.T) {
	k1 := RegisterKey("test-key-registry-a")
	k2 := RegisterKey("test-key-registry-a")
	k3 := RegisterKey("test-key-registry-b")
	if k1 != k2 {
		t.Error("re-registration must return the same key")
	}
	if k1 == k3 {
		t.Error("distinct names must get distinct keys")
	}
	if k1 < firstAppKey {
		t.Error("application keys start at the app range")
	}
	if KeyName(KeyConfidence) != "confidence" {
		t.Errorf("KeyName(confidence)=%q", KeyName(KeyConfidence))
	}
	if KeyName(Key(999999)) == "" {
		t.Error("unregistered keys still render")
	}
	keys := RegisteredKeys()
	if len(keys) < 18 {
		t.Errorf("expected the well-known keys, got %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Error("RegisteredKeys must be sorted ascending")
		}
	}
}

func TestStringRendering(t *testing.T) {
	v := Vec{
		StringAttr(KeyType, EQ, "four-legged-animal-search"),
		Int32Attr(KeyInterval, IS, 20),
		Any(KeyInstance),
	}
	s := v.String()
	want := `(type EQ "four-legged-animal-search", interval IS 20, instance EQ_ANY)`
	if s != want {
		t.Errorf("String()=%s\nwant     %s", s, want)
	}
}
