package attr

import "bytes"

// This file implements the paper's Figure 2 one-way matching algorithm and
// the two-way (complete) match built from it.
//
//	one-way match: given two attribute sets A and B
//	  for each attribute a in A where a.op is a formal {
//	    matched = false
//	    for each attribute b in B where a.key = b.key and b.op is an actual
//	      if a.val compares with b.val using a.op, then matched = true
//	    if not matched then return false (no match)
//	  }
//	  return true (successful one-way match)
//
// The comparison direction follows the paper's worked example: the formal
// "confidence GT 0.5" is satisfied by the actual "confidence IS 0.7" (and
// not by "confidence IS 0.3"), i.e. the actual's value must stand in the
// formal's relation to the formal's value: actual OP formal-value.

// OneWayMatch reports whether every formal in a is satisfied by some actual
// in b. Formals in b are ignored; a's actuals impose no constraints.
func OneWayMatch(a, b Vec) bool {
	for _, fa := range a {
		if !fa.Op.IsFormal() {
			continue
		}
		matched := false
		for _, ab := range b {
			if ab.Key != fa.Key || !ab.Op.IsActual() {
				continue
			}
			if satisfies(ab.Val, fa.Op, fa.Val) {
				matched = true
				// The paper's algorithm keeps scanning; breaking early is
				// behaviour-preserving and is one of the optimizations
				// section 6.3 anticipates.
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// Match reports a complete (two-way) match: OneWayMatch succeeds from a to
// b and from b to a.
func Match(a, b Vec) bool {
	return OneWayMatch(a, b) && OneWayMatch(b, a)
}

// satisfies reports whether the actual value av stands in relation op to
// the formal value fv. Comparisons across numeric widths widen to float64;
// other cross-type comparisons fail (except EQAny, which always succeeds,
// and NE, which is vacuously true for incomparable values).
func satisfies(av Value, op Op, fv Value) bool {
	if op == EQAny {
		return true
	}
	if av.Numeric() && fv.Numeric() {
		return cmpOK(compareFloat(av.AsFloat(), fv.AsFloat()), op)
	}
	if av.Type != fv.Type {
		// Incomparable types: only NE holds.
		return op == NE
	}
	switch av.Type {
	case TypeString:
		return cmpOK(compareString(av.str, fv.str), op)
	case TypeBlob:
		return cmpOK(bytes.Compare(av.blob, fv.blob), op)
	default:
		return false
	}
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpOK(c int, op Op) bool {
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}
