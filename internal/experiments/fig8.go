// Package experiments contains one harness per table and figure of the
// paper's evaluation (section 6), runnable from cmd/diffsim and from the
// repository's benchmarks. Each harness builds the testbed scenario,
// repeats it across seeds, and reports the same rows/series the paper
// does, with 95% confidence intervals.
package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/filters"
	"diffusion/internal/stats"
)

// Fig8Config parameterizes the aggregation experiment (paper Figure 8):
// a sink at testbed node 28, one to four sources at nodes 25, 16, 22 and
// 13 generating synchronized 112-byte events every 6 seconds, with and
// without duplicate-suppression filters on every node, for five 30-minute
// runs per point.
type Fig8Config struct {
	// Seeds are the experiment repetitions (paper: five runs).
	Seeds []int64
	// Duration is the per-run virtual time (paper: 30 minutes).
	Duration time.Duration
	// MaxSources sweeps 1..MaxSources sources (paper: 4).
	MaxSources int
	// EventInterval is the per-source event period (paper: 6 s).
	EventInterval time.Duration
	// PayloadBytes pads each event so the diffusion message reaches the
	// paper's 112 bytes.
	PayloadBytes int
	// ExploratoryEvery overrides the 1-in-10 exploratory cadence
	// (ablations); zero keeps the default.
	ExploratoryEvery int
	// Radio overrides the channel parameters (ablations); nil keeps the
	// testbed default.
	Radio *diffusion.RadioParams
	// DisableNegRF turns off negative reinforcement (ablation).
	DisableNegRF bool
}

// DefaultFig8 returns the paper's configuration.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		Seeds:         []int64{1, 2, 3, 4, 5},
		Duration:      30 * time.Minute,
		MaxSources:    4,
		EventInterval: 6 * time.Second,
		PayloadBytes:  50,
	}
}

// Fig8Point is one point of the Figure 8 series.
type Fig8Point struct {
	Sources     int
	Suppression bool
	// BytesPerEvent is the figure's y-axis: bytes sent from all diffusion
	// modules normalized to the number of distinct events received.
	BytesPerEvent stats.Summary
	// DeliveryRate is the fraction of distinct events that reached the
	// sink (the paper reports 55-80%).
	DeliveryRate stats.Summary
}

// RunFig8 runs the full sweep: sources 1..MaxSources, with and without
// suppression.
func RunFig8(cfg Fig8Config) []Fig8Point {
	var out []Fig8Point
	for _, suppression := range []bool{true, false} {
		for s := 1; s <= cfg.MaxSources; s++ {
			var bpe, rate []float64
			for _, seed := range cfg.Seeds {
				b, r := runFig8Once(cfg, s, suppression, seed)
				bpe = append(bpe, b)
				rate = append(rate, r)
			}
			out = append(out, Fig8Point{
				Sources:       s,
				Suppression:   suppression,
				BytesPerEvent: stats.Summarize(bpe),
				DeliveryRate:  stats.Summarize(rate),
			})
		}
	}
	return out
}

// RunFig8Point runs one point of the sweep (all seeds at one source count
// and suppression setting).
func RunFig8Point(cfg Fig8Config, sources int, suppression bool) Fig8Point {
	var bpe, rate []float64
	for _, seed := range cfg.Seeds {
		b, r := runFig8Once(cfg, sources, suppression, seed)
		bpe = append(bpe, b)
		rate = append(rate, r)
	}
	return Fig8Point{
		Sources:       sources,
		Suppression:   suppression,
		BytesPerEvent: stats.Summarize(bpe),
		DeliveryRate:  stats.Summarize(rate),
	}
}

// surveillanceInterest and surveillanceData name the Figure 8 event flow.
func surveillanceInterest() diffusion.Attributes {
	return diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "surveillance"),
		diffusion.Int32(diffusion.KeyInterval, diffusion.IS, 6000),
	}
}

func surveillanceData() diffusion.Attributes {
	return diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "surveillance"),
	}
}

// runFig8Once executes one 30-minute run and returns (bytes per distinct
// delivered event, delivery rate).
func runFig8Once(cfg Fig8Config, sources int, suppression bool, seed int64) (float64, float64) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:                         seed,
		Topology:                     diffusion.TestbedTopology(),
		ExploratoryEvery:             cfg.ExploratoryEvery,
		Radio:                        cfg.Radio,
		DisableNegativeReinforcement: cfg.DisableNegRF,
	})
	if suppression {
		// "All nodes were configured with aggregation filters that pass
		// the first unique event and suppress subsequent events with
		// identical sequence numbers."
		for _, id := range net.IDs() {
			filters.NewSuppression(net.Node(id).Node, net.NodeEnv(id), filters.SuppressionOptions{})
		}
	}

	distinct := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})

	ids := diffusion.TestbedSources()[:sources]
	nodes := make([]*diffusion.Node, sources)
	pubs := make([]diffusion.PublicationHandle, sources)
	for i, id := range ids {
		nodes[i] = net.Node(id)
		pubs[i] = nodes[i].Publish(surveillanceData())
	}
	// Synchronized sequence numbers, as in the paper ("given sequence
	// numbers that are synchronized at experiment start").
	seq := int32(0)
	payload := make([]byte, cfg.PayloadBytes)
	net.Every(cfg.EventInterval, func() {
		seq++
		for i := range nodes {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
			})
		}
	})
	net.Run(cfg.Duration)

	events := len(distinct)
	if events == 0 {
		return float64(net.TotalDiffusionBytes()), 0
	}
	return float64(net.TotalDiffusionBytes()) / float64(events),
		float64(events) / float64(seq)
}

// PrintFig8 renders the series as the paper's figure rows.
func PrintFig8(w io.Writer, points []Fig8Point) {
	fmt.Fprintln(w, "Figure 8: bytes sent from all diffusion modules per distinct event")
	fmt.Fprintln(w, "sources  suppression      B/event            delivery")
	for _, p := range points {
		mode := "without"
		if p.Suppression {
			mode = "with   "
		}
		fmt.Fprintf(w, "%7d  %s      %9.0f ± %5.0f   %5.1f%% ± %4.1f%%\n",
			p.Sources, mode, p.BytesPerEvent.Mean, p.BytesPerEvent.CI95,
			100*p.DeliveryRate.Mean, 100*p.DeliveryRate.CI95)
	}
	// The paper's headline: suppression cuts traffic by up to 42% at four
	// sources.
	var with4, without4 *Fig8Point
	for i := range points {
		p := &points[i]
		if p.Sources == 4 && p.Suppression {
			with4 = p
		}
		if p.Sources == 4 && !p.Suppression {
			without4 = p
		}
	}
	if with4 != nil && without4 != nil && without4.BytesPerEvent.Mean > 0 {
		save := 1 - with4.BytesPerEvent.Mean/without4.BytesPerEvent.Mean
		fmt.Fprintf(w, "suppression saves %.0f%% of bytes/event at 4 sources (paper: up to 42%%)\n",
			100*save)
	}
}

// Fig8Savings returns the fractional bytes/event reduction at the given
// source count.
func Fig8Savings(points []Fig8Point, sources int) float64 {
	var with, without float64
	for _, p := range points {
		if p.Sources != sources {
			continue
		}
		if p.Suppression {
			with = p.BytesPerEvent.Mean
		} else {
			without = p.BytesPerEvent.Mean
		}
	}
	if without == 0 {
		return 0
	}
	return 1 - with/without
}
