package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// Fig9Config parameterizes the nested-query experiment (paper Figure 9):
// the user at testbed node 39 wants acoustic data correlated with light
// sensors; the audio sensor is node 20 (one hop from the lights, two hops
// from the user); 1, 2 or 4 light sensors at nodes 16, 25, 22 and 13
// toggle simulated state every minute on the minute and report state every
// 2 seconds; three 20-minute runs per point.
type Fig9Config struct {
	Seeds          []int64
	Duration       time.Duration
	SensorCounts   []int
	ReportInterval time.Duration
	ToggleInterval time.Duration
	// PayloadBytes pads light and audio messages to the paper's ~100 B.
	PayloadBytes int
}

// DefaultFig9 returns the paper's configuration.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Seeds:          []int64{1, 2, 3},
		Duration:       20 * time.Minute,
		SensorCounts:   []int{1, 2, 4},
		ReportInterval: 2 * time.Second,
		ToggleInterval: time.Minute,
		PayloadBytes:   20,
	}
}

// fig9Debug enables diagnostic dumps from runFig9Once (tests only).
var fig9Debug bool

// Fig9Point is one bar of Figure 9.
type Fig9Point struct {
	Sensors int
	Nested  bool
	// Delivered is the percentage of light-change events that resulted in
	// audio data delivered to the user.
	Delivered stats.Summary
}

// RunFig9 runs nested and flat (one-level) variants across sensor counts.
func RunFig9(cfg Fig9Config) []Fig9Point {
	var out []Fig9Point
	for _, nested := range []bool{true, false} {
		for _, sensors := range cfg.SensorCounts {
			var rates []float64
			for _, seed := range cfg.Seeds {
				rates = append(rates, runFig9Once(cfg, sensors, nested, seed))
			}
			out = append(out, Fig9Point{
				Sensors:   sensors,
				Nested:    nested,
				Delivered: stats.Summarize(rates),
			})
		}
	}
	return out
}

// RunFig9Point runs one bar of the figure (all seeds at one sensor count
// and query style).
func RunFig9Point(cfg Fig9Config, sensors int, nested bool) Fig9Point {
	var rates []float64
	for _, seed := range cfg.Seeds {
		rates = append(rates, runFig9Once(cfg, sensors, nested, seed))
	}
	return Fig9Point{Sensors: sensors, Nested: nested, Delivered: stats.Summarize(rates)}
}

func lightInterest() diffusion.Attributes {
	return diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "light"),
		diffusion.Int32(diffusion.KeyInterval, diffusion.IS, 2000),
	}
}

func lightData() diffusion.Attributes {
	return diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "light")}
}

func audioInterest() diffusion.Attributes {
	return diffusion.Attributes{
		diffusion.String(diffusion.KeyType, diffusion.EQ, "audio"),
	}
}

func audioData() diffusion.Attributes {
	return diffusion.Attributes{diffusion.String(diffusion.KeyType, diffusion.IS, "audio")}
}

// runFig9Once returns the fraction of (light, toggle) events for which
// audio data reached the user.
//
// In the nested variant the audio node sub-tasks the lights directly: it
// detects each sensor's state change from the 2-second reports (one hop)
// and emits one audio message per detected change; the user subscribes to
// audio only. Success requires the light→audio hop and the audio→user
// path to work.
//
// In the flat (one-level) variant the user queries the lights itself
// (three hops) and separately receives audio data; the audio generation is
// schedule-driven, reproducing the paper's accounting of "three or five
// hops for nested or flat queries, respectively". Success requires the
// user to observe the light change and to receive the corresponding audio
// message.
func runFig9Once(cfg Fig9Config, sensors int, nested bool, seed int64) float64 {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.TestbedTopology(),
	})
	lights := diffusion.TestbedSources()[:sensors]
	user := net.Node(diffusion.TestbedUser)
	audio := net.Node(diffusion.TestbedAudio)
	payload := make([]byte, cfg.PayloadBytes)

	// Light sensors: simulated state toggles every minute on the minute;
	// reports every 2 s carry (light id, toggle count). The first report
	// after a toggle is the change event itself — a single best-effort
	// message, which is what makes the event chain "three or five hops"
	// of unreliable crossings in the paper's accounting. Later reports
	// re-state the level but are not change events.
	toggles := 0
	lightPubs := make([]diffusion.PublicationHandle, sensors)
	lastReported := make([]int, sensors)
	for i, id := range lights {
		lightPubs[i] = net.Node(id).Publish(lightData())
	}
	net.Every(cfg.ToggleInterval, func() { toggles++ })
	for i, id := range lights {
		i, id := i, id
		net.Every(cfg.ReportInterval, func() {
			change := int32(0)
			if toggles > lastReported[i] {
				lastReported[i] = toggles
				change = 1
			}
			net.Node(id).Send(lightPubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeyInstance, diffusion.IS, int32(id)),
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, int32(toggles)),
				diffusion.Int32(diffusion.KeyCount, diffusion.IS, change),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
			})
		})
	}

	audioPub := audio.Publish(audioData())
	sendAudio := func(lightID, toggle int32) {
		audio.Send(audioPub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeyInstance, diffusion.IS, lightID),
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, toggle),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		})
	}

	type event struct{ light, toggle int32 }
	audioAtUser := map[event]bool{}
	lightAtUser := map[event]bool{}

	user.Subscribe(audioInterest(), func(m *diffusion.Message) {
		l, ok1 := m.Attrs.FindActual(diffusion.KeyInstance)
		s, ok2 := m.Attrs.FindActual(diffusion.KeySequence)
		if ok1 && ok2 {
			audioAtUser[event{l.Val.Int32(), s.Val.Int32()}] = true
		}
	})

	// changeEvent extracts a change-marked report's (light, toggle) pair.
	changeEvent := func(m *diffusion.Message) (event, bool) {
		l, ok1 := m.Attrs.FindActual(diffusion.KeyInstance)
		s, ok2 := m.Attrs.FindActual(diffusion.KeySequence)
		c, ok3 := m.Attrs.FindActual(diffusion.KeyCount)
		if !ok1 || !ok2 || !ok3 || c.Val.Int32() != 1 || s.Val.Int32() == 0 {
			return event{}, false
		}
		return event{l.Val.Int32(), s.Val.Int32()}, true
	}

	if nested {
		// Audio node sub-tasks the lights (one hop) and triggers on each
		// change report.
		audio.Subscribe(lightInterest(), func(m *diffusion.Message) {
			if ev, ok := changeEvent(m); ok {
				sendAudio(ev.light, ev.toggle)
			}
		})
	} else {
		// Flat: the user watches the lights across the whole network
		// (three hops).
		user.Subscribe(lightInterest(), func(m *diffusion.Message) {
			if ev, ok := changeEvent(m); ok {
				lightAtUser[ev] = true
			}
		})
		// Audio generation is schedule-driven (the toggles are "every
		// minute on the minute"); one audio message per light per toggle.
		net.Every(cfg.ToggleInterval, func() {
			for _, id := range lights {
				sendAudio(int32(id), int32(toggles))
			}
		})
	}

	net.Run(cfg.Duration)

	if fig9Debug {
		fmt.Printf("debug: toggles=%d audioAtUser=%v lightAtUser=%v\n", toggles, audioAtUser, lightAtUser)
	}

	possible := sensors * toggles
	if possible == 0 {
		return 0
	}
	success := 0
	for _, id := range lights {
		for k := 1; k <= toggles; k++ {
			ev := event{int32(id), int32(k)}
			if nested {
				if audioAtUser[ev] {
					success++
				}
			} else {
				if audioAtUser[ev] && lightAtUser[ev] {
					success++
				}
			}
		}
	}
	return float64(success) / float64(possible)
}

// PrintFig9 renders the figure.
func PrintFig9(w io.Writer, points []Fig9Point) {
	fmt.Fprintln(w, "Figure 9: percentage of audio events successfully delivered to the user")
	fmt.Fprintln(w, "sensors  query    delivered")
	for _, p := range points {
		mode := "1-level"
		if p.Nested {
			mode = "nested "
		}
		fmt.Fprintf(w, "%7d  %s  %5.1f%% ± %4.1f%%\n",
			p.Sensors, mode, 100*p.Delivered.Mean, 100*p.Delivered.CI95)
	}
}

// Fig9Gap returns nested minus flat delivery at the given sensor count
// (the paper reports nested queries reduce loss rates by 15-30%).
func Fig9Gap(points []Fig9Point, sensors int) float64 {
	var nested, flat float64
	for _, p := range points {
		if p.Sensors != sensors {
			continue
		}
		if p.Nested {
			nested = p.Delivered.Mean
		} else {
			flat = p.Delivered.Mean
		}
	}
	return nested - flat
}
