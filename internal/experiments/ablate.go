package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file holds the ablation studies DESIGN.md calls out: design
// parameters the paper discusses qualitatively, quantified on the
// simulated testbed.

// ExploratorySweepPoint measures aggregation savings at one exploratory
// cadence.
type ExploratorySweepPoint struct {
	ExploratoryEvery int
	Savings          float64 // fractional bytes/event reduction at 4 sources
}

// RunExploratorySweep quantifies how the exploratory cadence shifts where
// aggregation's savings come from. Section 6.1 attributes the
// simulation-vs-testbed savings gap to the exploratory:data ratio (1:100
// vs 1:10). In this system the duplicate-suppression filter removes whole
// redundant exploratory floods, so measured savings are largest when
// exploratory messages are frequent and shrink toward the path-sharing
// component as they thin out — see EXPERIMENTS.md for the discussion of
// how this relates to the paper's account.
func RunExploratorySweep(seeds []int64, duration time.Duration, ratios []int) []ExploratorySweepPoint {
	var out []ExploratorySweepPoint
	for _, every := range ratios {
		cfg := DefaultFig8()
		cfg.Seeds = seeds
		cfg.Duration = duration
		cfg.ExploratoryEvery = every
		var with, without []float64
		for _, seed := range seeds {
			b, _ := runFig8Once(cfg, 4, true, seed)
			with = append(with, b)
			b, _ = runFig8Once(cfg, 4, false, seed)
			without = append(without, b)
		}
		w, wo := stats.Mean(with), stats.Mean(without)
		sv := 0.0
		if wo > 0 {
			sv = 1 - w/wo
		}
		out = append(out, ExploratorySweepPoint{ExploratoryEvery: every, Savings: sv})
	}
	return out
}

// PrintExploratorySweep renders the sweep.
func PrintExploratorySweep(w io.Writer, points []ExploratorySweepPoint) {
	fmt.Fprintln(w, "Ablation: aggregation savings vs exploratory cadence (4 sources)")
	fmt.Fprintln(w, "exploratory 1-in-N   savings")
	for _, p := range points {
		fmt.Fprintf(w, "%18d   %6.0f%%\n", p.ExploratoryEvery, 100*p.Savings)
	}
	fmt.Fprintln(w, "(suppressing redundant floods dominates: savings shrink as exploratory messages thin out)")
}

// AsymmetryPoint measures delivery at one link-asymmetry level.
type AsymmetryPoint struct {
	Sigma    float64
	Delivery stats.Summary
}

// RunAsymmetrySweep quantifies the section 6.4 observation that
// asymmetric links hurt diffusion ("diffusion does not currently work
// well with asymmetric links"): single-source delivery rate as the
// per-directed-link asymmetry grows.
func RunAsymmetrySweep(seeds []int64, duration time.Duration, sigmas []float64) []AsymmetryPoint {
	var out []AsymmetryPoint
	for _, sigma := range sigmas {
		rp := diffusion.DefaultRadio()
		rp.AsymmetrySigma = sigma
		cfg := DefaultFig8()
		cfg.Seeds = seeds
		cfg.Duration = duration
		cfg.Radio = &rp
		var rates []float64
		for _, seed := range seeds {
			_, r := runFig8Once(cfg, 1, false, seed)
			rates = append(rates, r)
		}
		out = append(out, AsymmetryPoint{Sigma: sigma, Delivery: stats.Summarize(rates)})
	}
	return out
}

// PrintAsymmetrySweep renders the sweep.
func PrintAsymmetrySweep(w io.Writer, points []AsymmetryPoint) {
	fmt.Fprintln(w, "Ablation: single-source event delivery vs link asymmetry (section 6.4)")
	fmt.Fprintln(w, "asymmetry sigma (m)   delivery")
	for _, p := range points {
		fmt.Fprintf(w, "%19.1f   %5.1f%% ± %4.1f%%\n",
			p.Sigma, 100*p.Delivery.Mean, 100*p.Delivery.CI95)
	}
}

// CapturePoint measures delivery at one radio capture setting.
type CapturePoint struct {
	CaptureRatio float64
	Delivery     stats.Summary
}

// RunCaptureSweep quantifies the capture effect, the substrate modelling
// choice that most affects behaviour under contention (DESIGN.md: the
// testbed's FM radios capture strongly; without capture, any overlap at a
// receiver destroys both frames and the shared medium melts down under
// the Figure 8 load).
func RunCaptureSweep(seeds []int64, duration time.Duration, ratios []float64) []CapturePoint {
	var out []CapturePoint
	for _, ratio := range ratios {
		rp := diffusion.DefaultRadio()
		rp.CaptureRatio = ratio
		cfg := DefaultFig8()
		cfg.Seeds = seeds
		cfg.Duration = duration
		cfg.Radio = &rp
		var rates []float64
		for _, seed := range seeds {
			_, r := runFig8Once(cfg, 4, false, seed)
			rates = append(rates, r)
		}
		out = append(out, CapturePoint{CaptureRatio: ratio, Delivery: stats.Summarize(rates)})
	}
	return out
}

// PrintCaptureSweep renders the sweep.
func PrintCaptureSweep(w io.Writer, points []CapturePoint) {
	fmt.Fprintln(w, "Ablation: radio capture effect (4 sources, no suppression)")
	fmt.Fprintln(w, "capture ratio   delivery")
	for _, p := range points {
		label := fmt.Sprintf("%13.2f", p.CaptureRatio)
		if p.CaptureRatio == 0 {
			label = "   off (0.00)"
		}
		fmt.Fprintf(w, "%s   %5.1f%% ± %4.1f%%\n",
			label, 100*p.Delivery.Mean, 100*p.Delivery.CI95)
	}
	fmt.Fprintln(w, "(FM radios like the testbed's capture strongly; without it, overlapping frames")
	fmt.Fprintln(w, " always destroy each other and hidden-terminal load collapses delivery)")
}

// NegRFPoint measures the negative-reinforcement ablation.
type NegRFPoint struct {
	Enabled       bool
	BytesPerEvent stats.Summary
	Duplicates    stats.Summary // duplicate data receptions across all nodes
}

// RunNegRFAblation compares runs with and without negative reinforcement:
// without teardown, redundant reinforced paths persist and duplicate data
// keeps flowing (section 3.1: "negative reinforcements suppress loops or
// duplicate paths").
func RunNegRFAblation(seeds []int64, duration time.Duration) []NegRFPoint {
	var out []NegRFPoint
	for _, enabled := range []bool{true, false} {
		cfg := DefaultFig8()
		cfg.Seeds = seeds
		cfg.Duration = duration
		cfg.DisableNegRF = !enabled
		var bpe, dups []float64
		for _, seed := range seeds {
			b, d := runNegRFOnce(cfg, seed)
			bpe = append(bpe, b)
			dups = append(dups, d)
		}
		out = append(out, NegRFPoint{
			Enabled:       enabled,
			BytesPerEvent: stats.Summarize(bpe),
			Duplicates:    stats.Summarize(dups),
		})
	}
	return out
}

// runNegRFOnce runs 2 sources without suppression and returns
// (bytes/event, duplicate data receptions summed over all nodes).
func runNegRFOnce(cfg Fig8Config, seed int64) (float64, float64) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:                         seed,
		Topology:                     diffusion.TestbedTopology(),
		DisableNegativeReinforcement: cfg.DisableNegRF,
	})
	distinct := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})
	ids := diffusion.TestbedSources()[:2]
	seq := int32(0)
	payload := make([]byte, cfg.PayloadBytes)
	var nodes []*diffusion.Node
	var pubs []diffusion.PublicationHandle
	for _, id := range ids {
		n := net.Node(id)
		nodes = append(nodes, n)
		pubs = append(pubs, n.Publish(surveillanceData()))
	}
	net.Every(cfg.EventInterval, func() {
		seq++
		for i := range nodes {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
			})
		}
	})
	net.Run(cfg.Duration)
	dups := 0
	for _, n := range net.Nodes() {
		dups += n.Stats.Duplicates
	}
	events := len(distinct)
	if events == 0 {
		events = 1
	}
	return float64(net.TotalDiffusionBytes()) / float64(events), float64(dups)
}

// PrintNegRFAblation renders the ablation.
func PrintNegRFAblation(w io.Writer, points []NegRFPoint) {
	fmt.Fprintln(w, "Ablation: negative reinforcement (2 sources, no suppression filters)")
	fmt.Fprintln(w, "neg-reinforcement   B/event           duplicate receptions")
	for _, p := range points {
		mode := "disabled"
		if p.Enabled {
			mode = "enabled "
		}
		fmt.Fprintf(w, "%s           %8.0f ± %5.0f   %8.0f ± %5.0f\n",
			mode, p.BytesPerEvent.Mean, p.BytesPerEvent.CI95,
			p.Duplicates.Mean, p.Duplicates.CI95)
	}
}
