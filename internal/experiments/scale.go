package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file probes the scalability claim the paper inherits from its
// simulation predecessor ("finding that scalability is good as numbers of
// nodes and traffic increases", section 1): the same one-sink/one-source
// surveillance workload on growing grids, measuring delivery and the
// per-node byte overhead. If diffusion scales, per-node control traffic
// stays roughly flat while the network grows.

// ScalePoint is one grid size measurement.
type ScalePoint struct {
	Nodes int
	// Delivery is the distinct-event delivery rate corner-to-corner.
	Delivery stats.Summary
	// BytesPerNode is total diffusion bytes divided by node count — the
	// per-node cost of participating.
	BytesPerNode stats.Summary
	// PathHops is the corner-to-corner hop distance.
	PathHops int
}

// RunScaleSweep measures delivery and per-node load on n×n grids.
func RunScaleSweep(seeds []int64, duration time.Duration, sizes []int) []ScalePoint {
	var out []ScalePoint
	for _, n := range sizes {
		var delivery, perNode []float64
		hops := 0
		for _, seed := range seeds {
			d, b, h := runScaleOnce(seed, duration, n)
			delivery = append(delivery, d)
			perNode = append(perNode, b)
			hops = h
		}
		out = append(out, ScalePoint{
			Nodes:        n * n,
			Delivery:     stats.Summarize(delivery),
			BytesPerNode: stats.Summarize(perNode),
			PathHops:     hops,
		})
	}
	return out
}

func runScaleOnce(seed int64, duration time.Duration, n int) (delivery, bytesPerNode float64, hops int) {
	tp := diffusion.GridTopology(n, n, 10)
	net := diffusion.NewNetwork(diffusion.NetworkConfig{Seed: seed, Topology: tp})
	sinkID, srcID := uint32(1), uint32(n*n)
	hops = tp.HopDistance(sinkID, srcID, 13.5)

	distinct := map[int32]bool{}
	net.Node(sinkID).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})
	src := net.Node(srcID)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	payload := make([]byte, 50)
	net.Every(6*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		})
	})
	net.Run(duration)
	delivery = float64(len(distinct)) / float64(seq)
	bytesPerNode = float64(net.TotalDiffusionBytes()) / float64(n*n)
	return delivery, bytesPerNode, hops
}

// PrintScaleSweep renders the sweep.
func PrintScaleSweep(w io.Writer, points []ScalePoint) {
	fmt.Fprintln(w, "Scalability: corner-to-corner surveillance on growing grids")
	fmt.Fprintln(w, "nodes   path-hops   delivery          bytes/node")
	for _, p := range points {
		fmt.Fprintf(w, "%5d   %9d   %5.1f%% ± %4.1f%%   %7.0f ± %4.0f\n",
			p.Nodes, p.PathHops,
			100*p.Delivery.Mean, 100*p.Delivery.CI95,
			p.BytesPerNode.Mean, p.BytesPerNode.CI95)
	}
	fmt.Fprintln(w, "(flooded control traffic costs each node about the same regardless of network size;")
	fmt.Fprintln(w, " delivery decays with path length, as any hop-by-hop best-effort system's must)")
}
