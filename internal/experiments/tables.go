package experiments

import (
	"fmt"
	"io"

	"diffusion/internal/energy"
	"diffusion/internal/microdiff"
	"diffusion/internal/trafficmodel"
)

// PrintTrafficModel renders the section 6.1 analytic model: aggregated
// flat ~990 B/event, unaggregated rising to ~3300 B/event at four sources.
func PrintTrafficModel(w io.Writer) {
	p := trafficmodel.Testbed()
	fmt.Fprintln(w, "Section 6.1 traffic model (127B messages, 60s interests, 1:10 exploratory, 5-hop paths)")
	fmt.Fprintln(w, "sources   aggregated B/event   unaggregated B/event")
	for s := 1; s <= 4; s++ {
		fmt.Fprintf(w, "%7d   %18.0f   %20.0f\n",
			s,
			p.BytesPerEvent(s, true).Total(),
			p.BytesPerEvent(s, false).Total())
	}
	fmt.Fprintf(w, "model savings at 4 sources: %.0f%% (paper predicts 990 vs 3289 B/event)\n",
		100*p.Savings(4))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "exploratory:data ratio ablation (why simulation showed 3-5x savings, testbed 1.7x):")
	fmt.Fprintln(w, "ratio     savings-factor at 5 sources")
	for _, ratio := range []float64{0.1, 0.05, 0.02, 0.01} {
		q := p
		q.ExploratoryRatio = ratio
		factor := q.BytesPerEvent(5, false).Total() / q.BytesPerEvent(5, true).Total()
		fmt.Fprintf(w, "1:%-6.0f  %.1fx\n", 1/ratio, factor)
	}
}

// PrintEnergyModel renders the section 6.1 duty-cycle analysis.
func PrintEnergyModel(w io.Writer) {
	r := energy.PaperRatios()
	fmt.Fprintln(w, "Section 6.1 energy model: P_d = d*p_l*t_l + p_r*t_r + p_s*t_s")
	fmt.Fprintln(w, "(power ratios 1:2:2; time ratios 40:3:1 listen:receive:send)")
	fmt.Fprintln(w, "duty-cycle   listen-share   send-share")
	for _, d := range []float64{1.0, 0.5, 0.22, 0.15, 0.10, 0.05} {
		b := r.AtDutyCycle(d)
		fmt.Fprintf(w, "%10.2f   %11.0f%%   %9.0f%%\n",
			d, 100*b.ListenFraction(), 100*b.SendFraction())
	}
	fmt.Fprintf(w, "half the energy is spent listening at duty cycle %.2f (paper: 22%%)\n",
		r.HalfListenDutyCycle())
}

// PrintMicroFootprint renders the section 4.3 micro-diffusion accounting.
func PrintMicroFootprint(w io.Writer) {
	fmt.Fprintln(w, "Section 4.3 micro-diffusion static budget")
	fmt.Fprintf(w, "gradients: %d slots (paper: 5)\n", microdiff.MaxGradients)
	fmt.Fprintf(w, "packet cache: %d entries (paper: 10 x 2 relevant bytes)\n", microdiff.CacheSize)
	fmt.Fprintf(w, "protocol state: %d bytes (paper: 106 bytes of data on TinyOS)\n",
		microdiff.MemoryFootprint())
}
