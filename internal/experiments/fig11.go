package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"diffusion/internal/attr"
)

// This file reproduces the paper's matching-cost experiment (Figures 10
// and 11): the cost of the two-way match between the Figure 10 interest
// (8 attributes) and data (6 attributes) sets, as the data set grows from
// 6 to 30 attributes in four variants:
//
//   - match/IS:    growth by actuals (repetitions of `extra IS "lot"`);
//     every added attribute is examined but needs no search.
//   - match/EQ:    growth by formals (repetitions of `class EQ interest`);
//     every added attribute must be matched against set A.
//   - no-match/IS and no-match/EQ: the same growth, but set B's
//     confidence is changed from 90 to 10 so the one-way match from A
//     fails early; added attributes in B are barely touched.
//
// Attribute order is randomized per trial, as in the paper.

// Fig10Interest returns the paper's Figure 10 set A (the interest).
func Fig10Interest() attr.Vec {
	return attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassInterest),
		attr.StringAttr(attr.KeyTask, attr.EQ, "detectAnimal"),
		attr.Float64Attr(attr.KeyConfidence, attr.GT, 50),
		attr.Float64Attr(attr.KeyLatitude, attr.GE, 10.0),
		attr.Float64Attr(attr.KeyLatitude, attr.LE, 100.0),
		attr.Float64Attr(attr.KeyLongitude, attr.GE, 5.0),
		attr.Float64Attr(attr.KeyLongitude, attr.LE, 95.0),
		attr.StringAttr(attr.KeyTarget, attr.IS, "4-leg"),
	}
}

// Fig10Data returns the paper's Figure 10 set B (the data). With
// matching=false the confidence actual is 10 instead of 90, failing the
// "confidence GT 50" formal.
func Fig10Data(matching bool) attr.Vec {
	conf := 90.0
	if !matching {
		conf = 10.0
	}
	return attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassData),
		attr.StringAttr(attr.KeyTask, attr.IS, "detectAnimal"),
		attr.Float64Attr(attr.KeyConfidence, attr.IS, conf),
		attr.Float64Attr(attr.KeyLatitude, attr.IS, 20.0),
		attr.Float64Attr(attr.KeyLongitude, attr.IS, 80.0),
		attr.StringAttr(attr.KeyTarget, attr.IS, "4-leg"),
	}
}

// GrowDataSet extends the Figure 10 data set to n attributes using the
// given growth mode ("IS" appends `extra IS "lot"` actuals; "EQ" appends
// `class EQ interest` formals).
func GrowDataSet(base attr.Vec, n int, mode string) attr.Vec {
	out := base.Clone()
	for len(out) < n {
		switch mode {
		case "IS":
			out = append(out, attr.StringAttr(attr.KeyExtra, attr.IS, "lot"))
		case "EQ":
			out = append(out, attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest))
		default:
			panic("experiments: growth mode must be IS or EQ")
		}
	}
	return out
}

// Fig11Point is one measurement of the matching-cost series.
type Fig11Point struct {
	Series     string // "match/IS", "match/EQ", "no-match/IS", "no-match/EQ"
	AttrsInB   int
	NsPerMatch float64
}

// Fig11Config controls the sweep.
type Fig11Config struct {
	// Sizes are the set-B attribute counts (paper: 6 to 30).
	Sizes []int
	// Iterations per (shuffle, size) measurement (paper: 5000 matching /
	// 10000 not).
	Iterations int
	// Shuffles is the number of order-randomized repetitions averaged per
	// point (the paper repeats each experiment 1000 times with the order
	// of attributes randomized each time; the match cost depends strongly
	// on where the deciding attribute lands).
	Shuffles int
	// Seed randomizes attribute order.
	Seed int64
}

// DefaultFig11 returns the paper's sweep, with fewer repetitions than the
// paper's 1000 (enough for stable means on a modern CPU).
func DefaultFig11() Fig11Config {
	return Fig11Config{
		Sizes:      []int{6, 10, 14, 18, 22, 26, 30},
		Iterations: 200,
		Shuffles:   100,
		Seed:       1,
	}
}

// RunFig11 measures the four series. Absolute numbers are host-CPU
// specific (the paper used a 66 MHz 486); the reproduced result is the
// shape: linear growth, actual-growth cheaper than formal-growth, and
// non-matching sets cheap and insensitive to set-B size.
func RunFig11(cfg Fig11Config) []Fig11Point {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []Fig11Point
	for _, series := range []struct {
		name     string
		matching bool
		mode     string
	}{
		{"match/IS", true, "IS"},
		{"match/EQ", true, "EQ"},
		{"no-match/IS", false, "IS"},
		{"no-match/EQ", false, "EQ"},
	} {
		for _, size := range cfg.Sizes {
			shuffles := cfg.Shuffles
			if shuffles <= 0 {
				shuffles = 1
			}
			iter := cfg.Iterations
			if !series.matching {
				iter *= 2 // paper: 10000 iterations for the cheap no-match case
			}
			var total time.Duration
			for rep := 0; rep < shuffles; rep++ {
				a := Fig10Interest()
				b := GrowDataSet(Fig10Data(series.matching), size, series.mode)
				// Randomize attribute order, as the paper does per
				// experiment: cost depends strongly on where the deciding
				// attributes land, so points are means over many orders.
				rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
				rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
				start := time.Now()
				for i := 0; i < iter; i++ {
					got := attr.Match(a, b)
					if got != series.matching {
						panic(fmt.Sprintf("experiments: %s size %d: match=%v", series.name, size, got))
					}
				}
				total += time.Since(start)
			}
			ns := float64(total.Nanoseconds()) / float64(iter*shuffles)
			out = append(out, Fig11Point{Series: series.name, AttrsInB: size, NsPerMatch: ns})
		}
	}
	return out
}

// PrintFig11 renders the series.
func PrintFig11(w io.Writer, points []Fig11Point) {
	fmt.Fprintln(w, "Figure 11: matching cost as the number of attributes in set B grows")
	fmt.Fprintln(w, "series        |B|   ns/match")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s  %3d   %8.0f\n", p.Series, p.AttrsInB, p.NsPerMatch)
	}
}

// Fig11SeriesSlope returns (first, last) ns/match for one series, letting
// callers check growth shape.
func Fig11SeriesSlope(points []Fig11Point, series string) (first, last float64) {
	got := false
	for _, p := range points {
		if p.Series != series {
			continue
		}
		if !got {
			first = p.NsPerMatch
			got = true
		}
		last = p.NsPerMatch
	}
	return
}
