package experiments

import "testing"

func TestBrokerDeliversExactlyOnce(t *testing.T) {
	cfg := BrokerConfig{
		Sizes:      []int{500, 2000},
		Msgs:       300,
		LinearMsgs: 10,
		RangeEvery: 3,
		Seed:       1,
	}
	points := RunBroker(cfg) // RunBroker panics on any delivery mismatch
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	for _, p := range points {
		if p.Deliveries != cfg.Msgs {
			t.Errorf("subs=%d: %d deliveries, want %d", p.Subs, p.Deliveries, cfg.Msgs)
		}
		if p.IndexKeys == 0 {
			t.Errorf("subs=%d: match index reports zero keys", p.Subs)
		}
		// The task-EQ pivot narrows each probe to its one topic: per-message
		// verification work must be bounded, not proportional to the table.
		if p.CandPerMsg > 16 {
			t.Errorf("subs=%d: %.1f candidates/msg, want O(1)", p.Subs, p.CandPerMsg)
		}
	}
}

func TestBrokerNoRangeFormals(t *testing.T) {
	p := runBrokerSize(BrokerConfig{Msgs: 100, LinearMsgs: 5, Seed: 2}, 300)
	if p.Deliveries != 100 {
		t.Errorf("deliveries = %d, want 100", p.Deliveries)
	}
}
