package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParallelScaleSmall(t *testing.T) {
	// A shrunken grid keeps the test fast; the full 1024-node run is the
	// experiment itself (cmd/diffsim -experiment scale-parallel).
	cfg := ParallelScaleConfig{
		Seed:           3,
		Side:           8,
		Spacing:        9,
		Duration:       45 * time.Second,
		Shards:         []int{2, 4},
		ReportInterval: 5 * time.Second,
		TraceLimit:     50_000,
	}
	points := RunParallelScale(cfg)
	if len(points) != 3 {
		t.Fatalf("got %d points, want 3", len(points))
	}
	if points[0].Delivered == 0 {
		t.Fatal("sequential baseline delivered nothing")
	}
	for _, p := range points {
		if !p.Identical {
			t.Errorf("shards=%d diverged from the sequential baseline (%s vs %s)",
				p.Shards, p.TraceSHA, points[0].TraceSHA)
		}
		if p.Delivered != points[0].Delivered {
			t.Errorf("shards=%d delivered %d, baseline %d",
				p.Shards, p.Delivered, points[0].Delivered)
		}
	}
	var buf bytes.Buffer
	PrintParallelScale(&buf, cfg, points)
	if !strings.Contains(buf.String(), "8x8 grid (64 nodes)") {
		t.Errorf("table header missing grid size:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "WARNING") {
		t.Errorf("table reports divergence:\n%s", buf.String())
	}
}
