package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// The broker experiment: one node carrying up to a million local
// subscriptions — the publish/subscribe broker shape the paper's low-level
// naming anticipates ("one-to-many and many-to-one communication
// expressed directly in attributes"). Every data message runs the full
// receive pipeline — filter chain, interest-entry matching, local
// delivery — and the point of the experiment is that per-message cost
// stays flat as the subscription table grows: the inverted match index
// (internal/match) turns what was a linear scan of every stored vector
// into a handful of posting-list probes.
//
// The linear column replays each probe message against a plain
// attr.Match scan over the same subscription vectors — the pre-index data
// path — capped at LinearMsgs probes so the 1e6 row finishes; the
// speedup column is the ratio of the two per-message costs.

// BrokerConfig controls the sweep.
type BrokerConfig struct {
	// Sizes are the subscription-table populations swept.
	Sizes []int
	// Msgs is the number of data messages dispatched per size.
	Msgs int
	// LinearMsgs caps the messages replayed against the linear reference
	// scan (the 1e6 linear row costs tens of ms per message).
	LinearMsgs int
	// RangeEvery adds a confidence-range formal to every RangeEvery-th
	// subscription (0 disables), exercising the interval index.
	RangeEvery int
	// Seed drives probe-target selection.
	Seed int64
}

// DefaultBroker returns the headline sweep: 1e4 → 1e6 subscriptions.
func DefaultBroker() BrokerConfig {
	return BrokerConfig{
		Sizes:      []int{10000, 100000, 1000000},
		Msgs:       2000,
		LinearMsgs: 20,
		RangeEvery: 3,
		Seed:       1,
	}
}

// BrokerPoint is one row of the sweep.
type BrokerPoint struct {
	Subs        int
	InstallSecs float64 // wall time to install all subscriptions
	NsPerMsg    float64 // full-pipeline dispatch cost per data message
	LinearNsPer float64 // linear-scan reference cost per message
	Speedup     float64 // LinearNsPer / NsPerMsg
	Deliveries  int     // total callback invocations (correctness check)
	IndexKeys   int     // distinct attribute keys with postings
	CandPerMsg  float64 // index candidates verified per message
}

// brokerLink is a sink link: the broker node never forwards (it has no
// gradients), so transmissions are counted and dropped.
type brokerLink struct{ sent int }

func (l *brokerLink) ID() uint32                { return 1 }
func (l *brokerLink) Send(uint32, []byte) error { l.sent++; return nil }

// brokerSubAttrs returns the i-th subscription's formals: a task-EQ
// selector, plus a confidence floor for every rangeEvery-th subscription.
func brokerSubAttrs(i, rangeEvery int) attr.Vec {
	v := attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, fmt.Sprintf("topic-%d", i))}
	if rangeEvery > 0 && i%rangeEvery == 0 {
		v = append(v, attr.Float64Attr(attr.KeyConfidence, attr.GT, 0.5))
	}
	return v
}

// brokerMsgAttrs returns a data message addressed at topic i.
func brokerMsgAttrs(i int, conf float64) attr.Vec {
	return attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.IS, attr.ClassData),
		attr.StringAttr(attr.KeyTask, attr.IS, fmt.Sprintf("topic-%d", i)),
		attr.Float64Attr(attr.KeyConfidence, attr.IS, conf),
	}
}

// RunBroker sweeps the subscription-table sizes.
func RunBroker(cfg BrokerConfig) []BrokerPoint {
	var out []BrokerPoint
	for _, size := range cfg.Sizes {
		out = append(out, runBrokerSize(cfg, size))
	}
	return out
}

func runBrokerSize(cfg BrokerConfig, size int) BrokerPoint {
	clock := sim.New(cfg.Seed)
	n := core.NewNode(core.Config{
		Clock: clock,
		Rand:  clock.Rand(),
		Link:  &brokerLink{},
	})

	delivered := 0
	start := time.Now()
	subVecs := make([]attr.Vec, size)
	for i := 0; i < size; i++ {
		v := brokerSubAttrs(i, cfg.RangeEvery)
		subVecs[i] = v
		n.SubscribeLocal(v, func(*message.Message) { delivered++ })
	}
	installSecs := time.Since(start).Seconds()

	// Pre-build the probe messages: always above the confidence floor, so
	// every probe delivers to exactly one subscription.
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	msgs := make([]*message.Message, cfg.Msgs)
	targets := make([]int, cfg.Msgs)
	for i := range msgs {
		targets[i] = rng.Intn(size)
		msgs[i] = &message.Message{
			Class:   message.Data,
			NextHop: message.Broadcast,
			Attrs:   brokerMsgAttrs(targets[i], 0.6+0.4*rng.Float64()),
		}
	}

	before := n.MatchStats()
	start = time.Now()
	for _, m := range msgs {
		n.InjectMessage(m)
	}
	dispatch := time.Since(start)
	after := n.MatchStats()

	nsPerMsg := float64(dispatch.Nanoseconds()) / float64(cfg.Msgs)
	candPerMsg := float64(after.CandidatesScanned+after.FallbackScans-
		before.CandidatesScanned-before.FallbackScans) / float64(cfg.Msgs)

	// Linear reference: the pre-index delivery path, one attr.Match per
	// stored subscription per message.
	linMsgs := cfg.LinearMsgs
	if linMsgs > len(msgs) {
		linMsgs = len(msgs)
	}
	var linear float64
	if linMsgs > 0 {
		hits := 0
		start = time.Now()
		for _, m := range msgs[:linMsgs] {
			for _, v := range subVecs {
				if attr.Match(v, m.Attrs) {
					hits++
				}
			}
		}
		linear = float64(time.Since(start).Nanoseconds()) / float64(linMsgs)
		if hits != linMsgs {
			panic(fmt.Sprintf("experiments: broker linear reference matched %d of %d probes", hits, linMsgs))
		}
	}

	if delivered != cfg.Msgs {
		panic(fmt.Sprintf("experiments: broker delivered %d of %d messages", delivered, cfg.Msgs))
	}

	speedup := 0.0
	if nsPerMsg > 0 {
		speedup = linear / nsPerMsg
	}
	return BrokerPoint{
		Subs:        size,
		InstallSecs: installSecs,
		NsPerMsg:    nsPerMsg,
		LinearNsPer: linear,
		Speedup:     speedup,
		Deliveries:  delivered,
		IndexKeys:   after.IndexKeys,
		CandPerMsg:  candPerMsg,
	}
}

// PrintBroker renders the sweep.
func PrintBroker(w io.Writer, points []BrokerPoint) {
	fmt.Fprintln(w, "Broker: million-subscription node behind the inverted match index")
	fmt.Fprintln(w, "(full dispatch pipeline per data message; linear = pre-index scan)")
	fmt.Fprintln(w, "subs      install(s)  ns/msg      linear ns/msg   speedup   cand/msg  index keys")
	for _, p := range points {
		fmt.Fprintf(w, "%-9d %9.2f  %10.0f  %13.0f  %7.0fx  %8.1f  %10d\n",
			p.Subs, p.InstallSecs, p.NsPerMsg, p.LinearNsPer, p.Speedup, p.CandPerMsg, p.IndexKeys)
	}
}
