package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/message"
	"diffusion/internal/stats"
	"diffusion/internal/trafficmodel"
)

// This file decomposes the Figure 8 traffic by message class and compares
// it with the section 6.1 analytic model's per-component prediction —
// the validation step the paper performs in prose ("we can confirm these
// results with a simple traffic model ... the shape of this prediction
// matches our experimental results").

// BreakdownPoint is the per-class byte decomposition for one
// configuration.
type BreakdownPoint struct {
	Sources     int
	Suppression bool
	// Per-class bytes per distinct delivered event.
	Interests, Data, Exploratory, Reinforcements stats.Summary
}

// RunBreakdown measures the byte decomposition at the given source count,
// with and without suppression.
func RunBreakdown(seeds []int64, duration time.Duration, sources int) []BreakdownPoint {
	var out []BreakdownPoint
	for _, suppression := range []bool{true, false} {
		acc := map[message.Class][]float64{}
		for _, seed := range seeds {
			byClass, events := runBreakdownOnce(seed, duration, sources, suppression)
			if events == 0 {
				events = 1
			}
			for c, b := range byClass {
				acc[c] = append(acc[c], float64(b)/float64(events))
			}
		}
		out = append(out, BreakdownPoint{
			Sources:        sources,
			Suppression:    suppression,
			Interests:      stats.Summarize(acc[message.Interest]),
			Data:           stats.Summarize(acc[message.Data]),
			Exploratory:    stats.Summarize(acc[message.ExploratoryData]),
			Reinforcements: stats.Summarize(acc[message.PositiveReinforcement]),
		})
	}
	return out
}

func runBreakdownOnce(seed int64, duration time.Duration, sources int, suppression bool) (map[message.Class]int, int) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.TestbedTopology(),
	})
	if suppression {
		for _, id := range net.IDs() {
			net.NewSuppression(net.Node(id), diffusion.SuppressionOptions{})
		}
	}
	// Count transmitted bytes per class with a near-wire tap on every
	// node (priority just above the trace range would also see consumed
	// messages, so instead use the core's own counters).
	distinct := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})
	ids := diffusion.TestbedSources()[:sources]
	nodes := make([]*diffusion.Node, sources)
	pubs := make([]diffusion.PublicationHandle, sources)
	for i, id := range ids {
		nodes[i] = net.Node(id)
		pubs[i] = nodes[i].Publish(surveillanceData())
	}
	seq := int32(0)
	payload := make([]byte, 50)
	net.Every(6*time.Second, func() {
		seq++
		for i := range nodes {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
			})
		}
	})
	net.Run(duration)

	// Approximate per-class bytes as per-class message counts times the
	// mean message size (the diffusion layer counts sends per class and
	// bytes in aggregate).
	byClass := map[message.Class]int{}
	totalMsgs, totalBytes := 0, 0
	for _, n := range net.Nodes() {
		for c := 0; c < message.NumClasses; c++ {
			byClass[message.Class(c)] += n.Stats.SentByClass[c]
			totalMsgs += n.Stats.SentByClass[c]
		}
		totalBytes += n.Stats.BytesSent
	}
	if totalMsgs > 0 {
		mean := float64(totalBytes) / float64(totalMsgs)
		for c, count := range byClass {
			byClass[c] = int(float64(count) * mean)
		}
	}
	return byClass, len(distinct)
}

// PrintBreakdown renders measured components next to the model's.
func PrintBreakdown(w io.Writer, points []BreakdownPoint) {
	fmt.Fprintln(w, "Figure 8 byte decomposition per distinct event, vs the section 6.1 model")
	fmt.Fprintln(w, "config            interests       data        exploratory   reinforcement")
	model := trafficmodel.Testbed()
	for _, p := range points {
		mode := "without supp"
		if p.Suppression {
			mode = "with supp   "
		}
		fmt.Fprintf(w, "%d src %s  %7.0f ± %3.0f  %7.0f ± %3.0f  %7.0f ± %3.0f  %7.0f ± %3.0f\n",
			p.Sources, mode,
			p.Interests.Mean, p.Interests.CI95,
			p.Data.Mean, p.Data.CI95,
			p.Exploratory.Mean, p.Exploratory.CI95,
			p.Reinforcements.Mean, p.Reinforcements.CI95)
		c := model.BytesPerEvent(p.Sources, p.Suppression)
		fmt.Fprintf(w, "  model:          %7.0f        %7.0f        %7.0f        %7.0f\n",
			c.Interests, c.Data, c.Exploratory, c.Reinforcements)
	}
}
