package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickChurn is a reduced configuration keeping test runtime low while
// preserving the scenario: a reinforced path forms, the relay dies, the
// repair machinery must re-converge.
func quickChurn() ChurnConfig {
	cfg := DefaultChurn()
	cfg.Seeds = []int64{1, 2, 3}
	cfg.Duration = 16 * time.Minute
	cfg.KillAt = 8 * time.Minute
	cfg.ChurnPoints = []ChurnPoint{
		{MTBF: 5 * time.Minute, MTTR: 30 * time.Second},
	}
	return cfg
}

// TestRelayKillRepairsWithinTwoExploratoryIntervals encodes the paper's
// repair-cadence argument (§3.1/§6.4) as an assertion: after the
// reinforced relay crashes, delivery resumes within two exploratory
// intervals, because the next exploratory flood re-discovers a route and
// the sink's reinforcement re-converges onto it.
func TestRelayKillRepairsWithinTwoExploratoryIntervals(t *testing.T) {
	cfg := quickChurn()
	res := RunRelayKill(cfg)
	if len(res.Runs) != len(cfg.Seeds) {
		t.Fatalf("got %d runs for %d seeds", len(res.Runs), len(cfg.Seeds))
	}
	if res.Repaired != len(res.Runs) {
		t.Fatalf("only %d/%d runs repaired", res.Repaired, len(res.Runs))
	}
	for _, r := range res.Runs {
		if r.Victim == 0 {
			t.Errorf("seed %d: no reinforced relay found to kill", r.Seed)
			continue
		}
		if r.TimeToRepair > res.RepairBound {
			t.Errorf("seed %d: repair took %v, beyond 2 exploratory intervals (%v)",
				r.Seed, r.TimeToRepair, res.RepairBound)
		}
		if r.DeliveryPre <= 0 || r.DeliveryPost <= 0 {
			t.Errorf("seed %d: delivery pre=%v post=%v", r.Seed, r.DeliveryPre, r.DeliveryPost)
		}
	}
	if res.TTRSeconds.N < 3 {
		t.Errorf("time-to-repair summarized over %d seeds; want >= 3", res.TTRSeconds.N)
	}
}

func TestChurnSweepDeliversUnderFaults(t *testing.T) {
	cfg := quickChurn()
	sweep := RunChurnSweep(cfg)
	if len(sweep) != 1 {
		t.Fatalf("expected 1 sweep point, got %d", len(sweep))
	}
	p := sweep[0]
	if p.Faults.Mean == 0 {
		t.Error("churn injected no crashes")
	}
	// Diffusion must keep delivering through relay churn: the flow's
	// endpoints are alive and exploratory floods keep finding routes.
	if p.Delivery.Mean < 0.15 {
		t.Errorf("delivery collapsed to %.1f%% under churn", 100*p.Delivery.Mean)
	}
	if p.BytesPerEvent.Mean <= 0 {
		t.Errorf("bytes/event = %v", p.BytesPerEvent.Mean)
	}
}

func TestChurnIsDeterministic(t *testing.T) {
	cfg := quickChurn()
	cfg.Seeds = []int64{7}
	cfg.Duration = 10 * time.Minute
	cfg.KillAt = 5 * time.Minute
	a := RunRelayKill(cfg)
	b := RunRelayKill(cfg)
	if a.Runs[0] != b.Runs[0] {
		t.Errorf("relay-kill run is not deterministic:\n%+v\n%+v", a.Runs[0], b.Runs[0])
	}
}

func TestPrintChurn(t *testing.T) {
	cfg := quickChurn()
	cfg.Seeds = []int64{1}
	cfg.Duration = 10 * time.Minute
	cfg.KillAt = 5 * time.Minute
	kill := RunRelayKill(cfg)
	sweep := RunChurnSweep(cfg)
	var buf bytes.Buffer
	PrintChurn(&buf, kill, sweep)
	out := buf.String()
	for _, want := range []string{"time-to-repair", "delivery", "repair overhead", "MTBF"} {
		if !strings.Contains(out, want) {
			t.Errorf("churn output missing %q:\n%s", want, out)
		}
	}
}
