package experiments

import (
	"bytes"
	"testing"
	"time"
)

// quickFerry shrinks the scenario while preserving the DTN regime: each
// ferry absence (half a contact period, 30s) still outlasts the 25-second
// gradient lifetime, so baseline soft state fully decays between contacts.
func quickFerry() FerryConfig {
	cfg := DefaultFerry()
	cfg.Seeds = []int64{1, 2}
	cfg.Duration = 6 * time.Minute
	return cfg
}

// TestFerryCustodyDeliversWhereBaselineLoses is the disruption-tolerance
// acceptance check in the simulator: under scheduled disconnection that
// outlasts the gradient lifetime, custody transfer delivers >= 99% of the
// source's events exactly once, while baseline diffusion — with nowhere
// to park data during a blackout — loses a substantial fraction.
func TestFerryCustodyDeliversWhereBaselineLoses(t *testing.T) {
	res := RunFerry(quickFerry())
	for i, c := range res.Custody {
		b := res.Baseline[i]
		if c.Sent == 0 {
			t.Fatalf("seed %d: no events sent", c.Seed)
		}
		if c.Delivery < 0.99 {
			t.Errorf("seed %d: custody delivery %.3f (%d/%d), want >= 0.99",
				c.Seed, c.Delivery, c.Delivered, c.Sent)
		}
		if c.Duplicates != 0 {
			t.Errorf("seed %d: %d duplicate deliveries with custody", c.Seed, c.Duplicates)
		}
		if c.Captured == 0 {
			t.Errorf("seed %d: custody arm never took custody", c.Seed)
		}
		if b.Captured != 0 {
			t.Errorf("seed %d: baseline arm reports %d custody captures", b.Seed, b.Captured)
		}
		if b.Delivery > c.Delivery-0.05 {
			t.Errorf("seed %d: baseline delivery %.3f not clearly below custody %.3f",
				b.Seed, b.Delivery, c.Delivery)
		}
	}
	var out bytes.Buffer
	PrintFerry(&out, res)
	if out.Len() == 0 {
		t.Error("PrintFerry produced no output")
	}
}

// TestFerryDeterministicAcrossShards reruns one seed on the sharded
// kernel and requires byte-identical results: same sequences delivered,
// same timestamps, same custody counters.
func TestFerryDeterministicAcrossShards(t *testing.T) {
	cfg := quickFerry()
	cfg.Seeds = []int64{1}
	run := func(shards int) string {
		c := cfg
		c.Shards = shards
		var out bytes.Buffer
		PrintFerry(&out, RunFerry(c))
		return out.String()
	}
	if one, four := run(1), run(4); one != four {
		t.Errorf("ferry results differ across shard counts:\n--- shards=1\n%s--- shards=4\n%s", one, four)
	}
}
