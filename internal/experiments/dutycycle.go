package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file turns the paper's section 6.1 duty-cycle analysis into a
// measured experiment: the same single-source surveillance workload runs
// over the duty-cycled MAC at the duty cycles the paper discusses, and we
// measure both what the analysis predicts (the listen share of radio
// energy) and what it cannot (the delivery cost of sleeping).

// DutyCyclePoint is one measured duty-cycle operating point.
type DutyCyclePoint struct {
	DutyCycle float64
	// Delivery is the distinct-event delivery rate at the sink.
	Delivery stats.Summary
	// ListenShare is the measured mean fraction of radio energy spent
	// listening (section 6.1 predicts ~83% at d=1, ~50% at d=0.22).
	ListenShare stats.Summary
	// EnergyPerEvent is total relative radio energy across the network
	// divided by delivered distinct events.
	EnergyPerEvent stats.Summary
}

// RunDutyCycleSweep measures the paper's duty-cycle operating points.
func RunDutyCycleSweep(seeds []int64, duration time.Duration, duties []float64) []DutyCyclePoint {
	var out []DutyCyclePoint
	for _, duty := range duties {
		var delivery, listen, perEvent []float64
		for _, seed := range seeds {
			d, l, e := runDutyCycleOnce(seed, duration, duty)
			delivery = append(delivery, d)
			listen = append(listen, l)
			perEvent = append(perEvent, e)
		}
		out = append(out, DutyCyclePoint{
			DutyCycle:      duty,
			Delivery:       stats.Summarize(delivery),
			ListenShare:    stats.Summarize(listen),
			EnergyPerEvent: stats.Summarize(perEvent),
		})
	}
	return out
}

func runDutyCycleOnce(seed int64, duration time.Duration, duty float64) (delivery, listenShare, energyPerEvent float64) {
	mp := diffusion.DefaultMAC()
	if duty < 1 {
		mp.DutyCycle = duty
		mp.CyclePeriod = 500 * time.Millisecond
	}
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.TestbedTopology(),
		MAC:      &mp,
	})
	distinct := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})
	src := net.Node(13)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	payload := make([]byte, 50)
	net.Every(6*time.Second, func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		})
	})
	net.Run(duration)

	ratios := diffusion.PaperEnergyRatios()
	var listenSum, totalEnergy float64
	nodes := net.Nodes()
	for _, n := range nodes {
		b := n.Energy(ratios, duration, duty)
		listenSum += b.ListenFraction()
		totalEnergy += b.Total()
	}
	events := len(distinct)
	delivery = float64(events) / float64(seq)
	listenShare = listenSum / float64(len(nodes))
	if events > 0 {
		energyPerEvent = totalEnergy / float64(events)
	} else {
		energyPerEvent = totalEnergy
	}
	return delivery, listenShare, energyPerEvent
}

// PrintDutyCycleSweep renders the sweep next to the analytic predictions.
func PrintDutyCycleSweep(w io.Writer, points []DutyCyclePoint) {
	fmt.Fprintln(w, "Measured duty-cycle operating points (section 6.1 analysis, now with delivery cost)")
	fmt.Fprintln(w, "duty-cycle   delivery          listen-share      energy/event")
	r := diffusion.PaperEnergyRatios()
	for _, p := range points {
		fmt.Fprintf(w, "%10.2f   %5.1f%% ± %4.1f%%   %5.1f%% (model %2.0f%%)   %8.1f ± %5.1f\n",
			p.DutyCycle,
			100*p.Delivery.Mean, 100*p.Delivery.CI95,
			100*p.ListenShare.Mean,
			100*r.AtDutyCycle(p.DutyCycle).ListenFraction(),
			p.EnergyPerEvent.Mean, p.EnergyPerEvent.CI95)
	}
	fmt.Fprintln(w, "(idle-dominated nodes track the model; sleeping saves energy but defers and drops traffic)")
}
