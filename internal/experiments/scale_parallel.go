package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"diffusion"
)

// The parallel-scale experiment: the paper's testbed stopped at 14 nodes,
// and its section 7 asks what "scaling to larger sensor networks" does to
// in-network processing. The grid scale sweep (scale.go) answers the
// protocol side at a few hundred nodes; this experiment answers the
// simulator side — a 1024-node grid is ~75x the testbed and too slow to
// sweep sequentially. It runs the same workload on the sharded kernel at
// several shard counts, checks every parallel run is byte-identical to the
// sequential one (the kernel's core guarantee), and reports the wall-clock
// speedup.

// ParallelScaleConfig parameterizes the 1024-node parallel run.
type ParallelScaleConfig struct {
	Seed int64
	// Side is the grid side length (Side x Side nodes; default 32).
	Side int
	// Spacing is the grid pitch in meters (default 9: solid links to the
	// 4-neighborhood, fading diagonals — multi-hop everywhere).
	Spacing float64
	// Duration is the virtual time simulated (default 2 minutes).
	Duration time.Duration
	// Shards lists the parallel shard counts to compare against the
	// sequential baseline (default 2, 4, 8).
	Shards []int
	// ReportInterval is each source's data cadence (default 5 s).
	ReportInterval time.Duration
	// TraceLimit bounds the comparison trace (default 200k events).
	TraceLimit int
}

// DefaultParallelScale returns the 1024-node configuration.
func DefaultParallelScale() ParallelScaleConfig {
	return ParallelScaleConfig{
		Seed:           1,
		Side:           32,
		Spacing:        9,
		Duration:       2 * time.Minute,
		Shards:         []int{2, 4, 8},
		ReportInterval: 5 * time.Second,
		TraceLimit:     200_000,
	}
}

// ParallelScalePoint is one run of the workload at one shard count.
type ParallelScalePoint struct {
	Shards int
	// Wall is the host wall-clock time the run took.
	Wall time.Duration
	// Delivered counts sink deliveries summed over all sinks — a
	// protocol-level progress check that the run did real work.
	Delivered int
	// TraceSHA fingerprints the exported trace plus metrics snapshot.
	TraceSHA string
	// Identical reports whether this run's fingerprint matches the
	// sequential baseline (always true for the baseline itself).
	Identical bool
	// Speedup is the baseline wall time divided by this run's.
	Speedup float64
}

// runParallelScaleOnce executes the workload at one shard count.
func runParallelScaleOnce(cfg ParallelScaleConfig, shards int) (time.Duration, int, string) {
	side := cfg.Side
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     cfg.Seed,
		Topology: diffusion.GridTopology(side, side, cfg.Spacing),
		Shards:   shards,
	})
	tr := net.NewTrace(cfg.TraceLimit)
	interest, publication := scaleAttrs()

	n := uint32(side * side)
	// Four corner sinks pull data across every partition strip; sources
	// sit at the edge midpoints and the center, so reinforced paths run
	// both along and across the strips.
	sinks := []uint32{1, uint32(side), n - uint32(side) + 1, n}
	sources := []uint32{
		uint32(side/2 + 1),             // top edge midpoint
		uint32(side*(side/2) + 1),      // left edge midpoint
		uint32(side*(side/2) + side),   // right edge midpoint
		uint32(side*(side-1) + side/2), // bottom edge midpoint
		uint32(side*(side/2) + side/2), // center
	}
	// Per-sink local counters: each subscription callback runs in its own
	// node's context, so counters must not be shared across sinks.
	counts := make([]int, len(sinks))
	for i, id := range sinks {
		i := i
		net.Node(id).Subscribe(interest, func(*diffusion.Message) { counts[i]++ })
	}
	for _, id := range sources {
		src := net.Node(id)
		pub := src.Publish(publication)
		seq := int32(0)
		net.Every(cfg.ReportInterval, func() {
			seq++
			src.Send(pub, diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			})
		})
	}

	start := time.Now()
	net.Run(cfg.Duration)
	wall := time.Since(start)

	var fp bytes.Buffer
	if err := tr.ExportJSONL(&fp); err != nil {
		panic(fmt.Sprintf("parallel scale: trace export: %v", err))
	}
	net.MetricsSnapshot().Write(&fp)
	sum := sha256.Sum256(fp.Bytes())
	delivered := 0
	for _, c := range counts {
		delivered += c
	}
	return wall, delivered, hex.EncodeToString(sum[:8])
}

// scaleAttrs returns the workload's interest and publication attributes.
func scaleAttrs() (diffusion.Attributes, diffusion.Attributes) {
	interest := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.EQ, "wide-area"),
	}
	publication := diffusion.Attributes{
		diffusion.String(diffusion.KeyTask, diffusion.IS, "wide-area"),
	}
	return interest, publication
}

// MeasureParallelScale runs the workload once at the given shard count and
// returns the wall time, the sink delivery count, and the trace
// fingerprint. It is the single-run entry point the kernel benchmark uses.
func MeasureParallelScale(cfg ParallelScaleConfig, shards int) (time.Duration, int, string) {
	return runParallelScaleOnce(cfg, shards)
}

// RunParallelScale runs the workload sequentially and at each configured
// shard count.
func RunParallelScale(cfg ParallelScaleConfig) []ParallelScalePoint {
	if cfg.Side <= 0 {
		cfg.Side = 32
	}
	if cfg.Spacing <= 0 {
		cfg.Spacing = 9
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Minute
	}
	if cfg.ReportInterval <= 0 {
		cfg.ReportInterval = 5 * time.Second
	}
	if cfg.TraceLimit <= 0 {
		cfg.TraceLimit = 200_000
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{2, 4, 8}
	}
	baseWall, baseDelivered, baseSHA := runParallelScaleOnce(cfg, 1)
	out := []ParallelScalePoint{{
		Shards: 1, Wall: baseWall, Delivered: baseDelivered,
		TraceSHA: baseSHA, Identical: true, Speedup: 1,
	}}
	for _, shards := range cfg.Shards {
		wall, delivered, sha := runParallelScaleOnce(cfg, shards)
		sp := 0.0
		if wall > 0 {
			sp = float64(baseWall) / float64(wall)
		}
		out = append(out, ParallelScalePoint{
			Shards: shards, Wall: wall, Delivered: delivered,
			TraceSHA: sha, Identical: sha == baseSHA, Speedup: sp,
		})
	}
	return out
}

// PrintParallelScale renders the comparison table.
func PrintParallelScale(w io.Writer, cfg ParallelScaleConfig, points []ParallelScalePoint) {
	fmt.Fprintf(w, "Parallel kernel at scale: %dx%d grid (%d nodes), %v simulated\n",
		cfg.Side, cfg.Side, cfg.Side*cfg.Side, cfg.Duration)
	fmt.Fprintf(w, "%-8s %12s %10s %10s %12s  %s\n",
		"shards", "wall", "speedup", "delivered", "trace", "identical")
	for _, p := range points {
		fmt.Fprintf(w, "%-8d %12v %9.2fx %10d %12s  %v\n",
			p.Shards, p.Wall.Round(time.Millisecond), p.Speedup,
			p.Delivered, p.TraceSHA, p.Identical)
	}
	for _, p := range points {
		if !p.Identical {
			fmt.Fprintf(w, "WARNING: shards=%d diverged from the sequential run\n", p.Shards)
		}
	}
}
