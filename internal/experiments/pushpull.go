package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file compares the two ends of the diffusion design space the paper's
// section 3.1 alludes to ("although our example describes a particular
// usage of the directed diffusion paradigm (a query-response type usage),
// the paradigm itself is more general than that"): two-phase pull (the
// paper's default: interests flood, data answers) versus one-phase push
// (sinks subscribe locally, sources flood exploratory data, and
// reinforcements install the paths). Pull pays one interest flood per sink
// per refresh; push pays one exploratory flood per source per cycle — so
// push wins as sinks outnumber sources.

// PushPullPoint compares the variants at one sink count.
type PushPullPoint struct {
	Sinks int
	Push  bool
	// BytesPerDelivery is total diffusion bytes over total distinct
	// event-deliveries (summed across sinks).
	BytesPerDelivery stats.Summary
	// Delivery is the mean per-sink distinct-event delivery rate.
	Delivery stats.Summary
}

// pushPullSinks are the sink placements (spread across the testbed).
func pushPullSinks() []uint32 { return []uint32{28, 39, 24, 11} }

// RunPushPull sweeps sink counts for both variants.
func RunPushPull(seeds []int64, duration time.Duration, sinkCounts []int) []PushPullPoint {
	var out []PushPullPoint
	for _, push := range []bool{false, true} {
		for _, sinks := range sinkCounts {
			var bpd, del []float64
			for _, seed := range seeds {
				b, d := runPushPullOnce(seed, duration, sinks, push)
				bpd = append(bpd, b)
				del = append(del, d)
			}
			out = append(out, PushPullPoint{
				Sinks:            sinks,
				Push:             push,
				BytesPerDelivery: stats.Summarize(bpd),
				Delivery:         stats.Summarize(del),
			})
		}
	}
	return out
}

func runPushPullOnce(seed int64, duration time.Duration, sinks int, push bool) (bytesPerDelivery, delivery float64) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.TestbedTopology(),
	})
	perSink := make([]map[int32]bool, sinks)
	for i, id := range pushPullSinks()[:sinks] {
		i := i
		perSink[i] = map[int32]bool{}
		cb := func(m *diffusion.Message) {
			if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
				perSink[i][a.Val.Int32()] = true
			}
		}
		if push {
			net.Node(id).SubscribeLocal(surveillanceInterest(), cb)
		} else {
			net.Node(id).Subscribe(surveillanceInterest(), cb)
		}
	}
	src := net.Node(13)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	payload := make([]byte, 50)
	net.Every(6*time.Second, func() {
		seq++
		extra := diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		}
		if push {
			src.SendPush(pub, extra)
		} else {
			src.Send(pub, extra)
		}
	})
	net.Run(duration)

	deliveries := 0
	var rateSum float64
	for _, events := range perSink {
		deliveries += len(events)
		rateSum += float64(len(events)) / float64(seq)
	}
	if deliveries == 0 {
		deliveries = 1
	}
	return float64(net.TotalDiffusionBytes()) / float64(deliveries), rateSum / float64(sinks)
}

// PrintPushPull renders the comparison.
func PrintPushPull(w io.Writer, points []PushPullPoint) {
	fmt.Fprintln(w, "Ablation: two-phase pull vs one-phase push (1 source, growing sink population)")
	fmt.Fprintln(w, "sinks   variant   bytes/delivery     delivery")
	for _, p := range points {
		mode := "pull"
		if p.Push {
			mode = "push"
		}
		fmt.Fprintf(w, "%5d   %s      %8.0f ± %5.0f   %5.1f%% ± %4.1f%%\n",
			p.Sinks, mode, p.BytesPerDelivery.Mean, p.BytesPerDelivery.CI95,
			100*p.Delivery.Mean, 100*p.Delivery.CI95)
	}
	fmt.Fprintln(w, "(pull floods one interest per sink per refresh; push floods one exploratory per")
	fmt.Fprintln(w, " source per cycle — push amortizes better as sinks multiply)")
}
