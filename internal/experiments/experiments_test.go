package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// quickFig8 is a reduced configuration keeping test runtime low while
// preserving the figure's shape.
func quickFig8() Fig8Config {
	cfg := DefaultFig8()
	cfg.Seeds = []int64{1, 2}
	cfg.Duration = 10 * time.Minute
	return cfg
}

func TestFig8Shape(t *testing.T) {
	points := RunFig8(quickFig8())
	if len(points) != 8 {
		t.Fatalf("expected 8 points, got %d", len(points))
	}
	byKey := map[[2]int]Fig8Point{}
	for _, p := range points {
		k := [2]int{p.Sources, 0}
		if p.Suppression {
			k[1] = 1
		}
		byKey[k] = p
	}
	// Paper shape 1: with one source, suppression and no-suppression are
	// basically identical.
	one := byKey[[2]int{1, 1}].BytesPerEvent.Mean
	oneNo := byKey[[2]int{1, 0}].BytesPerEvent.Mean
	if one == 0 || oneNo == 0 {
		t.Fatal("empty measurements")
	}
	ratio := one / oneNo
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("one source: with=%0.f without=%.0f should be close", one, oneNo)
	}
	// Paper shape 2: without suppression, bytes/event grow with sources.
	if byKey[[2]int{4, 0}].BytesPerEvent.Mean <= byKey[[2]int{1, 0}].BytesPerEvent.Mean {
		t.Error("no-suppression bytes/event must grow with sources")
	}
	// Paper shape 3: suppression wins clearly at four sources (paper: 42%).
	if sv := Fig8Savings(points, 4); sv < 0.15 {
		t.Errorf("suppression savings at 4 sources = %.0f%%, want substantial", 100*sv)
	}
	// Delivery lands in a plausible band (paper: 55-80%).
	for _, p := range points {
		if p.DeliveryRate.Mean < 0.2 || p.DeliveryRate.Mean > 1.0 {
			t.Errorf("delivery %v at %d sources (supp=%v) implausible",
				p.DeliveryRate, p.Sources, p.Suppression)
		}
	}
	var buf bytes.Buffer
	PrintFig8(&buf, points)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Error("PrintFig8 output")
	}
}

func TestFig9Shape(t *testing.T) {
	cfg := DefaultFig9()
	cfg.Seeds = []int64{3, 4}
	cfg.Duration = 10 * time.Minute
	points := RunFig9(cfg)
	if len(points) != 6 {
		t.Fatalf("expected 6 points, got %d", len(points))
	}
	get := func(sensors int, nested bool) Fig9Point {
		for _, p := range points {
			if p.Sensors == sensors && p.Nested == nested {
				return p
			}
		}
		t.Fatalf("missing point %d/%v", sensors, nested)
		return Fig9Point{}
	}
	// Paper shape 1: nested delivers more than flat at every sensor count
	// (flat requires light data to cross the network to the user).
	for _, s := range cfg.SensorCounts {
		n, f := get(s, true), get(s, false)
		if n.Delivered.Mean < f.Delivered.Mean-0.05 {
			t.Errorf("%d sensors: nested %.2f should beat flat %.2f",
				s, n.Delivered.Mean, f.Delivered.Mean)
		}
	}
	// Paper shape 2: the nested advantage is material at 4 sensors
	// (paper: 15-30% loss reduction).
	if gap := Fig9Gap(points, 4); gap < 0.05 {
		t.Errorf("nested advantage at 4 sensors = %.0f%%, want >5%%", 100*gap)
	}
	// Deliveries are nonzero everywhere.
	for _, p := range points {
		if p.Delivered.Mean <= 0 {
			t.Errorf("zero delivery at %d sensors nested=%v", p.Sensors, p.Nested)
		}
	}
	var buf bytes.Buffer
	PrintFig9(&buf, points)
	if !strings.Contains(buf.String(), "Figure 9") {
		t.Error("PrintFig9 output")
	}
}

func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11()
	cfg.Iterations = 100
	cfg.Shuffles = 60
	points := RunFig11(cfg)
	if len(points) != 4*len(cfg.Sizes) {
		t.Fatalf("points: %d", len(points))
	}
	firstEQ, lastEQ := Fig11SeriesSlope(points, "match/EQ")
	firstIS, lastIS := Fig11SeriesSlope(points, "match/IS")
	_, lastNoEQ := Fig11SeriesSlope(points, "no-match/EQ")
	_, lastNoIS := Fig11SeriesSlope(points, "no-match/IS")

	// Paper shape 1: matching cost grows with set size.
	if lastEQ <= firstEQ {
		t.Errorf("match/EQ must grow: %.0f -> %.0f ns", firstEQ, lastEQ)
	}
	// Paper shape 2: formal growth (EQ) costs more than actual growth
	// (IS) at the largest size.
	if lastEQ <= lastIS {
		t.Errorf("match/EQ (%.0f ns) should exceed match/IS (%.0f ns) at |B|=30",
			lastEQ, lastIS)
	}
	// Paper shape 3: the no-match series stay below the matching ones and
	// are relatively insensitive to set-B growth.
	if lastNoEQ >= lastEQ || lastNoIS >= lastEQ {
		t.Errorf("no-match (%.0f/%.0f ns) should be cheaper than match/EQ (%.0f ns)",
			lastNoEQ, lastNoIS, lastEQ)
	}
	// Paper shape 4: the cost of actual-growth also rises (attributes are
	// examined even if not searched).
	if lastIS < firstIS*0.8 {
		t.Errorf("match/IS should not shrink: %.0f -> %.0f ns", firstIS, lastIS)
	}
	var buf bytes.Buffer
	PrintFig11(&buf, points)
	if !strings.Contains(buf.String(), "Figure 11") {
		t.Error("PrintFig11 output")
	}
}

func TestGrowDataSet(t *testing.T) {
	base := Fig10Data(true)
	g := GrowDataSet(base, 30, "IS")
	if len(g) != 30 {
		t.Errorf("grown to %d", len(g))
	}
	if len(base) != 6 {
		t.Error("GrowDataSet must not mutate the base")
	}
	g2 := GrowDataSet(base, 3, "EQ")
	if len(g2) != 6 {
		t.Error("growth never shrinks below the base")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad growth mode must panic")
		}
	}()
	GrowDataSet(base, 10, "XX")
}

func TestTablePrinters(t *testing.T) {
	var buf bytes.Buffer
	PrintTrafficModel(&buf)
	if !strings.Contains(buf.String(), "990") && !strings.Contains(buf.String(), "991") {
		t.Errorf("traffic model should show ~990 B/event:\n%s", buf.String())
	}
	buf.Reset()
	PrintEnergyModel(&buf)
	if !strings.Contains(buf.String(), "duty-cycle") {
		t.Error("energy table output")
	}
	buf.Reset()
	PrintMicroFootprint(&buf)
	if !strings.Contains(buf.String(), "106") {
		t.Error("micro table should cite the paper budget")
	}
}

func TestExploratorySweep(t *testing.T) {
	points := RunExploratorySweep([]int64{1}, 10*time.Minute, []int{2, 20})
	if len(points) != 2 {
		t.Fatal("sweep size")
	}
	// In this system suppression removes whole redundant exploratory
	// floods, so savings are largest when exploratory messages are
	// frequent (1-in-2) and shrink as they thin out (1-in-20).
	if points[0].Savings <= points[1].Savings {
		t.Errorf("flood suppression should dominate savings: %v", points)
	}
	var buf bytes.Buffer
	PrintExploratorySweep(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestAsymmetrySweep(t *testing.T) {
	points := RunAsymmetrySweep([]int64{1, 2}, 10*time.Minute, []float64{0, 4})
	if len(points) != 2 {
		t.Fatal("sweep size")
	}
	// Strong asymmetry must hurt delivery.
	if points[1].Delivery.Mean >= points[0].Delivery.Mean {
		t.Errorf("asymmetry should reduce delivery: sym=%.2f asym=%.2f",
			points[0].Delivery.Mean, points[1].Delivery.Mean)
	}
	var buf bytes.Buffer
	PrintAsymmetrySweep(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestNegRFAblation(t *testing.T) {
	points := RunNegRFAblation([]int64{1, 2}, 10*time.Minute)
	if len(points) != 2 {
		t.Fatal("ablation size")
	}
	var on, off NegRFPoint
	for _, p := range points {
		if p.Enabled {
			on = p
		} else {
			off = p
		}
	}
	// Without teardown, duplicate receptions should not drop below the
	// enabled case (redundant paths persist).
	if off.Duplicates.Mean < on.Duplicates.Mean*0.8 {
		t.Errorf("disabling negative reinforcement should not reduce duplicates: on=%.0f off=%.0f",
			on.Duplicates.Mean, off.Duplicates.Mean)
	}
	var buf bytes.Buffer
	PrintNegRFAblation(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestDutyCycleSweep(t *testing.T) {
	points := RunDutyCycleSweep([]int64{1, 2}, 10*time.Minute, []float64{1.0, 0.22, 0.10})
	if len(points) != 3 {
		t.Fatal("sweep size")
	}
	full, mid, low := points[0], points[1], points[2]
	// The paper's 22% point: roughly half the energy spent listening, and
	// a large energy-per-event saving over the always-on radio.
	if mid.EnergyPerEvent.Mean >= full.EnergyPerEvent.Mean*0.7 {
		t.Errorf("d=0.22 should save energy/event: d=1 %.0f vs d=0.22 %.0f",
			full.EnergyPerEvent.Mean, mid.EnergyPerEvent.Mean)
	}
	// Listening dominates at d=1 (the paper's "completely dominated").
	if full.ListenShare.Mean < 0.7 {
		t.Errorf("at d=1 listening should dominate: %.2f", full.ListenShare.Mean)
	}
	if mid.ListenShare.Mean >= full.ListenShare.Mean {
		t.Error("listen share must fall with the duty cycle")
	}
	// Sleeping costs delivery; at d=0.10 the active windows no longer
	// carry the workload (a capacity effect the closed-form analysis
	// cannot see).
	if mid.Delivery.Mean >= full.Delivery.Mean {
		t.Error("duty cycling should cost some delivery")
	}
	if low.Delivery.Mean >= mid.Delivery.Mean {
		t.Error("d=0.10 should fall below the workload's capacity")
	}
	var buf bytes.Buffer
	PrintDutyCycleSweep(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestScaleSweep(t *testing.T) {
	points := RunScaleSweep([]int64{1}, 10*time.Minute, []int{3, 5})
	if len(points) != 2 {
		t.Fatal("sweep size")
	}
	small, big := points[0], points[1]
	if small.Nodes != 9 || big.Nodes != 25 {
		t.Fatalf("grid sizes: %+v", points)
	}
	if small.Delivery.Mean <= 0 || big.Delivery.Mean <= 0 {
		t.Error("both grids must deliver")
	}
	// Per-node cost should not blow up with network size (the essence of
	// the scalability claim): allow it to at most double from 9 to 25
	// nodes.
	if big.BytesPerNode.Mean > 2*small.BytesPerNode.Mean {
		t.Errorf("per-node bytes should stay roughly flat: 9 nodes %.0f vs 25 nodes %.0f",
			small.BytesPerNode.Mean, big.BytesPerNode.Mean)
	}
	if big.PathHops <= small.PathHops {
		t.Error("bigger grid should have longer paths")
	}
	var buf bytes.Buffer
	PrintScaleSweep(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestPushPull(t *testing.T) {
	points := RunPushPull([]int64{1, 2}, 10*time.Minute, []int{1, 4})
	if len(points) != 4 {
		t.Fatal("sweep size")
	}
	get := func(sinks int, push bool) PushPullPoint {
		for _, p := range points {
			if p.Sinks == sinks && p.Push == push {
				return p
			}
		}
		t.Fatalf("missing %d/%v", sinks, push)
		return PushPullPoint{}
	}
	for _, p := range points {
		if p.Delivery.Mean <= 0 {
			t.Errorf("no delivery at %d sinks push=%v", p.Sinks, p.Push)
		}
	}
	// Push's relative cost advantage should grow with the sink count:
	// compare the push/pull bytes-per-delivery ratio at 1 vs 4 sinks.
	r1 := get(1, true).BytesPerDelivery.Mean / get(1, false).BytesPerDelivery.Mean
	r4 := get(4, true).BytesPerDelivery.Mean / get(4, false).BytesPerDelivery.Mean
	if r4 >= r1 {
		t.Errorf("push should amortize better with more sinks: ratio@1=%.2f ratio@4=%.2f", r1, r4)
	}
	var buf bytes.Buffer
	PrintPushPull(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestLatencyClaim(t *testing.T) {
	window := 500 * time.Millisecond
	points := RunLatency([]int64{1, 2}, 10*time.Minute, window)
	if len(points) != 3 {
		t.Fatal("three modes")
	}
	byMode := map[string]LatencyPoint{}
	for _, p := range points {
		byMode[p.Mode] = p
		if p.Latency.N == 0 {
			t.Fatalf("mode %s measured no events", p.Mode)
		}
	}
	none, supp, count := byMode["none"], byMode["suppression"], byMode["counting"]
	// The paper's claim: pass-first suppression does not add latency.
	if supp.Latency.Mean > none.Latency.Mean+0.15 {
		t.Errorf("suppression should be latency-free: none=%.3fs supp=%.3fs",
			none.Latency.Mean, supp.Latency.Mean)
	}
	// Delaying aggregation adds roughly its window per traversed hop; at
	// minimum it must be clearly slower than suppression.
	if count.Latency.Mean < supp.Latency.Mean+float64(window)/float64(time.Second)/2 {
		t.Errorf("counting aggregation should add latency: supp=%.3fs count=%.3fs",
			supp.Latency.Mean, count.Latency.Mean)
	}
	var buf bytes.Buffer
	PrintLatency(&buf, points, window)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}

func TestBreakdown(t *testing.T) {
	points := RunBreakdown([]int64{1, 2}, 15*time.Minute, 4)
	if len(points) != 2 {
		t.Fatal("two configurations")
	}
	var with, without BreakdownPoint
	for _, p := range points {
		if p.Suppression {
			with = p
		} else {
			without = p
		}
	}
	// The model's shape: plain data dominates without suppression, and
	// suppression's savings come out of the data and exploratory shares
	// while interests cost the same either way.
	if without.Data.Mean <= without.Interests.Mean {
		t.Errorf("plain data should dominate interests without suppression: %+v", without)
	}
	if with.Data.Mean >= without.Data.Mean {
		t.Errorf("suppression should cut the data share: with=%.0f without=%.0f",
			with.Data.Mean, without.Data.Mean)
	}
	ratio := with.Interests.Mean / without.Interests.Mean
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("interest share should be roughly unchanged: ratio %.2f", ratio)
	}
	var buf bytes.Buffer
	PrintBreakdown(&buf, points)
	if !strings.Contains(buf.String(), "model:") {
		t.Error("print should include the model rows")
	}
}

func TestCaptureSweep(t *testing.T) {
	points := RunCaptureSweep([]int64{1, 2}, 10*time.Minute, []float64{0, 0.85})
	if len(points) != 2 {
		t.Fatal("sweep size")
	}
	// Capture should clearly improve delivery under the 4-source load.
	if points[1].Delivery.Mean <= points[0].Delivery.Mean {
		t.Errorf("capture should help under contention: off=%.2f on=%.2f",
			points[0].Delivery.Mean, points[1].Delivery.Mean)
	}
	var buf bytes.Buffer
	PrintCaptureSweep(&buf, points)
	if buf.Len() == 0 {
		t.Error("print output")
	}
}
