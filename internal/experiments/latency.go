package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file measures the paper's section 6.1 latency claim: "the effect of
// aggregation on latency is strongly dependent on the specific,
// application-determined aggregation algorithm. The algorithm used in
// these experiments does not affect latency at all, since we forward
// unique events immediately upon reception and then suppress any
// additional duplicates ... Other aggregation algorithms, such as those
// that delay transmitting a sensor reading with the hope of aggregating
// readings from other sensors, can add some latency."

// LatencyPoint measures one aggregation mode.
type LatencyPoint struct {
	Mode string // "none", "suppression", "counting"
	// Latency is the mean event delivery latency source→sink.
	Latency stats.Summary
}

// RunLatency measures first-delivery latency for two sources on the
// testbed under the three aggregation modes. The counting aggregator uses
// the given window.
func RunLatency(seeds []int64, duration, window time.Duration) []LatencyPoint {
	var out []LatencyPoint
	for _, mode := range []string{"none", "suppression", "counting"} {
		var lats []float64
		for _, seed := range seeds {
			lats = append(lats, runLatencyOnce(seed, duration, mode, window)...)
		}
		out = append(out, LatencyPoint{Mode: mode, Latency: stats.Summarize(lats)})
	}
	return out
}

func runLatencyOnce(seed int64, duration time.Duration, mode string, window time.Duration) []float64 {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:     seed,
		Topology: diffusion.TestbedTopology(),
	})
	switch mode {
	case "suppression":
		for _, id := range net.IDs() {
			net.NewSuppression(net.Node(id), diffusion.SuppressionOptions{})
		}
	case "counting":
		for _, id := range net.IDs() {
			net.NewCountingAggregator(net.Node(id), nil, window)
		}
	}

	sentAt := map[int32]time.Duration{}
	var lats []float64
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		a, ok := m.Attrs.FindActual(diffusion.KeySequence)
		if !ok {
			return
		}
		seq := a.Val.Int32()
		t0, ok := sentAt[seq]
		if !ok {
			return
		}
		delete(sentAt, seq) // first delivery only
		lats = append(lats, (net.Now() - t0).Seconds())
	})

	srcs := diffusion.TestbedSources()[:2]
	nodes := make([]*diffusion.Node, len(srcs))
	pubs := make([]diffusion.PublicationHandle, len(srcs))
	for i, id := range srcs {
		nodes[i] = net.Node(id)
		pubs[i] = nodes[i].Publish(surveillanceData())
	}
	seq := int32(0)
	payload := make([]byte, 50)
	net.Every(6*time.Second, func() {
		seq++
		sentAt[seq] = net.Now()
		for i := range nodes {
			nodes[i].Send(pubs[i], diffusion.Attributes{
				diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
				diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
			})
		}
	})
	net.Run(duration)
	return lats
}

// PrintLatency renders the comparison.
func PrintLatency(w io.Writer, points []LatencyPoint, window time.Duration) {
	fmt.Fprintln(w, "Section 6.1 latency claim: suppression is latency-free; delaying aggregators are not")
	fmt.Fprintf(w, "mode          mean latency (2 sources, 4 hops; counting window %v)\n", window)
	for _, p := range points {
		fmt.Fprintf(w, "%-12s  %6.3fs ± %5.3fs  (n=%d events)\n",
			p.Mode, p.Latency.Mean, p.Latency.CI95, p.Latency.N)
	}
}
