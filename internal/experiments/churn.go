package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"diffusion"
	"diffusion/internal/stats"
)

// This file is the churn experiment: the measured form of the paper's
// robustness claim (sections 3.1 and 6.4) that diffusion self-heals after
// node death — periodic exploratory data re-discovers routes and
// reinforcement re-converges onto a working path. Two scenarios run on the
// Figure 7 testbed:
//
//   - Relay kill: establish the surveillance flow, locate the reinforced
//     relay next to the sink by walking the reinforced gradient chain, and
//     crash it mid-run. Measured: time-to-repair, delivery before/after,
//     and the repair traffic overhead in bytes.
//   - Random churn: relays fail and recover under an MTBF/MTTR process
//     while the flow runs. Measured: delivery ratio and traffic cost per
//     delivered event across churn intensities.

// ChurnConfig parameterizes both scenarios.
type ChurnConfig struct {
	// Seeds are the experiment repetitions (≥3 for confidence intervals).
	Seeds []int64
	// Duration is the per-run virtual time.
	Duration time.Duration
	// KillAt is when the reinforced relay is crashed (relay-kill scenario).
	KillAt time.Duration
	// EventInterval is the per-source event period (paper: 6 s).
	EventInterval time.Duration
	// ExploratoryInterval is the exploratory-data period; the repair bound
	// the paper's cadence argument implies is two of these.
	ExploratoryInterval time.Duration
	// PayloadBytes pads events to the paper's 112-byte size.
	PayloadBytes int
	// ChurnPoints are the (MTBF, MTTR) settings of the random-churn sweep.
	ChurnPoints []ChurnPoint
	// TraceSampling enables causal flight-path tracing at this sampling
	// rate on traced runs (see NetworkConfig.TraceSampling). Non-zero
	// sampling consumes extra per-origination random draws, so a sampled
	// run's jitter stream differs from an unsampled one's.
	TraceSampling float64
}

// ChurnPoint is one setting of the random-churn process.
type ChurnPoint struct {
	MTBF, MTTR time.Duration
}

// DefaultChurn returns the standard configuration: 30-minute runs, relay
// kill at minute 10, the paper's 6-second events and 60-second exploratory
// cadence, and a churn sweep from gentle to brutal.
func DefaultChurn() ChurnConfig {
	return ChurnConfig{
		Seeds:               []int64{1, 2, 3, 4, 5},
		Duration:            30 * time.Minute,
		KillAt:              10 * time.Minute,
		EventInterval:       6 * time.Second,
		ExploratoryInterval: 60 * time.Second,
		PayloadBytes:        50,
		ChurnPoints: []ChurnPoint{
			{MTBF: 10 * time.Minute, MTTR: 30 * time.Second},
			{MTBF: 5 * time.Minute, MTTR: 30 * time.Second},
			{MTBF: 2 * time.Minute, MTTR: 30 * time.Second},
			{MTBF: 2 * time.Minute, MTTR: 2 * time.Minute},
		},
	}
}

// RelayKillRun is one seed's outcome of the relay-kill scenario.
type RelayKillRun struct {
	Seed   int64
	Victim uint32
	// Repaired reports whether any post-kill event was delivered.
	Repaired bool
	// TimeToRepair is the gap between the kill and the first delivery of
	// an event originated after it.
	TimeToRepair time.Duration
	// DeliveryPre and DeliveryPost are delivery ratios before the kill and
	// from the kill to the end of the run.
	DeliveryPre, DeliveryPost float64
	// OverheadBytes is the network-wide traffic sent between the kill and
	// the repair in excess of the pre-kill steady-state rate — what the
	// repair itself cost.
	OverheadBytes float64
}

// RelayKillResult aggregates the scenario across seeds.
type RelayKillResult struct {
	Runs     []RelayKillRun
	Repaired int
	// TTRSeconds, DeliveryPre, DeliveryPost and OverheadBytes summarize
	// the repaired runs with 95% confidence intervals.
	TTRSeconds    stats.Summary
	DeliveryPre   stats.Summary
	DeliveryPost  stats.Summary
	OverheadBytes stats.Summary
	// RepairBound is the cadence argument's bound: two exploratory
	// intervals.
	RepairBound time.Duration
}

// RunRelayKill executes the relay-kill scenario across the configured
// seeds.
func RunRelayKill(cfg ChurnConfig) RelayKillResult {
	res := RelayKillResult{RepairBound: 2 * cfg.ExploratoryInterval}
	var ttr, pre, post, overhead []float64
	for _, seed := range cfg.Seeds {
		run := runRelayKillOnce(cfg, seed)
		res.Runs = append(res.Runs, run)
		pre = append(pre, run.DeliveryPre)
		post = append(post, run.DeliveryPost)
		if run.Repaired {
			res.Repaired++
			ttr = append(ttr, run.TimeToRepair.Seconds())
			overhead = append(overhead, run.OverheadBytes)
		}
	}
	res.TTRSeconds = stats.Summarize(ttr)
	res.DeliveryPre = stats.Summarize(pre)
	res.DeliveryPost = stats.Summarize(post)
	res.OverheadBytes = stats.Summarize(overhead)
	return res
}

// runRelayKillOnce runs one seed: warm up the reinforced path, kill the
// relay the sink reinforces, and watch the repair.
func runRelayKillOnce(cfg ChurnConfig, seed int64) RelayKillRun {
	run, _, _ := relayKill(cfg, seed, false)
	return run
}

// RunRelayKillTraced runs one relay-kill seed with a full message trace
// installed and returns the run outcome, the trace (fault script set, ready
// for export), and the end-of-run metrics snapshot. The trace tap is
// pass-through and draws no randomness, so the returned RelayKillRun is
// bit-identical to the untraced RunRelayKill run for the same seed.
func RunRelayKillTraced(cfg ChurnConfig, seed int64) (RelayKillRun, *diffusion.Trace, diffusion.MetricsSnapshot) {
	return relayKill(cfg, seed, true)
}

// relayKill is the shared implementation; traced turns on the trace tap
// and the closing metrics snapshot.
func relayKill(cfg ChurnConfig, seed int64, traced bool) (RelayKillRun, *diffusion.Trace, diffusion.MetricsSnapshot) {
	netCfg := diffusion.NetworkConfig{
		Seed:                seed,
		Topology:            diffusion.TestbedTopology(),
		ExploratoryInterval: cfg.ExploratoryInterval,
	}
	if traced {
		netCfg.TraceSampling = cfg.TraceSampling
	}
	net := diffusion.NewNetwork(netCfg)
	var tr *diffusion.Trace
	if traced {
		tr = net.NewTrace(0)
	}
	run := RelayKillRun{Seed: seed}
	source := diffusion.TestbedSources()[3] // node 13, 4-5 hops from the sink

	sentAt := map[int32]time.Duration{}
	firstRx := map[int32]time.Duration{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			if _, seen := firstRx[a.Val.Int32()]; !seen {
				firstRx[a.Val.Int32()] = net.Now()
			}
		}
	})
	src := net.Node(source)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	payload := make([]byte, cfg.PayloadBytes)
	// bytesAt samples total diffusion traffic at every event tick, so the
	// repair window's byte cost can be read off afterwards.
	type sample struct {
		at    time.Duration
		bytes int
	}
	var samples []sample
	net.Every(cfg.EventInterval, func() {
		samples = append(samples, sample{net.Now(), net.TotalDiffusionBytes()})
		seq++
		sentAt[seq] = net.Now()
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		})
	})

	var killSeq int32
	net.After(cfg.KillAt, func() {
		path := net.ReinforcedPath(diffusion.TestbedSink, surveillanceInterest(), 0)
		// The victim is the first reinforced-path node that is neither the
		// sink nor the source: the relay whose death severs delivery.
		for _, id := range path[1:] {
			if id != source {
				run.Victim = id
				break
			}
		}
		if run.Victim == 0 {
			return // no reinforced relay (path never converged); no kill
		}
		killSeq = seq
		net.CrashNode(run.Victim)
		if tr != nil {
			// The kill bypasses the fault injector, so describe it by hand:
			// exported traces must carry the scenario that shaped them.
			tr.SetFaultScript([]string{
				fmt.Sprintf("crash node %d (reinforced relay) at %v", run.Victim, cfg.KillAt),
			})
		}
	})
	net.Run(cfg.Duration)
	var snap diffusion.MetricsSnapshot
	if traced {
		snap = net.MetricsSnapshot()
	}

	// Delivery ratios on either side of the kill.
	preSent, preGot, postSent, postGot := 0, 0, 0, 0
	for s, at := range sentAt {
		_, got := firstRx[s]
		if at < cfg.KillAt {
			preSent++
			if got {
				preGot++
			}
		} else {
			postSent++
			if got {
				postGot++
			}
		}
	}
	if preSent > 0 {
		run.DeliveryPre = float64(preGot) / float64(preSent)
	}
	if postSent > 0 {
		run.DeliveryPost = float64(postGot) / float64(postSent)
	}
	if run.Victim == 0 {
		return run, tr, snap
	}

	// Time to repair: first delivery of an event originated after the kill.
	repairAt := time.Duration(-1)
	for s, at := range firstRx {
		if s > killSeq && (repairAt < 0 || at < repairAt) {
			repairAt = at
		}
	}
	if repairAt < 0 {
		return run, tr, snap
	}
	run.Repaired = true
	run.TimeToRepair = repairAt - cfg.KillAt

	// Repair overhead: bytes sent during [kill, repair] beyond what the
	// pre-kill steady-state rate would have sent in the same span.
	bytesAt := func(at time.Duration) int {
		i := sort.Search(len(samples), func(i int) bool { return samples[i].at >= at })
		if i == len(samples) {
			return samples[len(samples)-1].bytes
		}
		return samples[i].bytes
	}
	window := 2 * cfg.ExploratoryInterval
	preWindow := cfg.KillAt - window
	if preWindow < 0 {
		preWindow = 0
	}
	preRate := float64(bytesAt(cfg.KillAt)-bytesAt(preWindow)) / (cfg.KillAt - preWindow).Seconds()
	spent := float64(bytesAt(repairAt) - bytesAt(cfg.KillAt))
	run.OverheadBytes = spent - preRate*run.TimeToRepair.Seconds()
	return run, tr, snap
}

// ChurnSweepPoint is one (MTBF, MTTR) row of the random-churn sweep.
type ChurnSweepPoint struct {
	MTBF, MTTR time.Duration
	// Delivery is the distinct-event delivery ratio over the churn window.
	Delivery stats.Summary
	// BytesPerEvent is traffic normalized per distinct delivered event.
	BytesPerEvent stats.Summary
	// Faults is the mean number of node crashes injected per run.
	Faults stats.Summary
}

// RunChurnSweep measures delivery under MTBF/MTTR-driven relay churn. All
// relays (every node but the sink and the source) churn; the endpoints
// stay up so the measurement is of the network's repair, not the
// workload's absence.
func RunChurnSweep(cfg ChurnConfig) []ChurnSweepPoint {
	var out []ChurnSweepPoint
	for _, p := range cfg.ChurnPoints {
		var delivery, bpe, faults []float64
		for _, seed := range cfg.Seeds {
			d, b, f := runChurnOnce(cfg, p, seed)
			delivery = append(delivery, d)
			bpe = append(bpe, b)
			faults = append(faults, f)
		}
		out = append(out, ChurnSweepPoint{
			MTBF:          p.MTBF,
			MTTR:          p.MTTR,
			Delivery:      stats.Summarize(delivery),
			BytesPerEvent: stats.Summarize(bpe),
			Faults:        stats.Summarize(faults),
		})
	}
	return out
}

// runChurnOnce returns (delivery ratio, bytes per delivered event, node
// crashes) for one seed at one churn point.
func runChurnOnce(cfg ChurnConfig, p ChurnPoint, seed int64) (float64, float64, float64) {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:                seed,
		Topology:            diffusion.TestbedTopology(),
		ExploratoryInterval: cfg.ExploratoryInterval,
	})
	source := diffusion.TestbedSources()[3]

	distinct := map[int32]bool{}
	net.Node(diffusion.TestbedSink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			distinct[a.Val.Int32()] = true
		}
	})
	src := net.Node(source)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	payload := make([]byte, cfg.PayloadBytes)
	net.Every(cfg.EventInterval, func() {
		seq++
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
			diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
		})
	})

	var relays []uint32
	for _, id := range net.IDs() {
		if id != diffusion.TestbedSink && id != source {
			relays = append(relays, id)
		}
	}
	inj := net.NewFaultInjector()
	// Let the flow establish before the first crash; end the churn early
	// enough that the final delivery ratio reflects repair, not luck.
	start := 2 * time.Minute
	if start > cfg.Duration/4 {
		start = cfg.Duration / 4
	}
	inj.Churn(diffusion.ChurnConfig{
		Start: start,
		Stop:  cfg.Duration,
		MTBF:  p.MTBF,
		MTTR:  p.MTTR,
		Nodes: relays,
	})
	net.Run(cfg.Duration)

	events := len(distinct)
	bpe := float64(net.TotalDiffusionBytes())
	if events > 0 {
		bpe /= float64(events)
	}
	var delivery float64
	if seq > 0 {
		delivery = float64(events) / float64(seq)
	}
	return delivery, bpe, float64(inj.Summarize().NodeDowns)
}

// PrintChurn renders both scenarios.
func PrintChurn(w io.Writer, kill RelayKillResult, sweep []ChurnSweepPoint) {
	fmt.Fprintln(w, "Churn: diffusion path repair under faults (Fig-7 topology)")
	fmt.Fprintf(w, "relay kill: reinforced relay crashed mid-run (repair bound = 2 exploratory intervals = %v)\n",
		kill.RepairBound)
	fmt.Fprintf(w, "  repaired             %d/%d runs\n", kill.Repaired, len(kill.Runs))
	fmt.Fprintf(w, "  time-to-repair       %6.1f s ± %.1f (n=%d)\n",
		kill.TTRSeconds.Mean, kill.TTRSeconds.CI95, kill.TTRSeconds.N)
	fmt.Fprintf(w, "  delivery pre-kill    %5.1f%% ± %.1f%%\n",
		100*kill.DeliveryPre.Mean, 100*kill.DeliveryPre.CI95)
	fmt.Fprintf(w, "  delivery post-kill   %5.1f%% ± %.1f%%\n",
		100*kill.DeliveryPost.Mean, 100*kill.DeliveryPost.CI95)
	fmt.Fprintf(w, "  repair overhead      %6.0f B ± %.0f\n",
		kill.OverheadBytes.Mean, kill.OverheadBytes.CI95)
	fmt.Fprintln(w, "random relay churn:")
	fmt.Fprintln(w, "  MTBF     MTTR     delivery          crashes/run   B/event")
	for _, p := range sweep {
		fmt.Fprintf(w, "  %-8v %-8v %5.1f%% ± %4.1f%%   %5.1f         %7.0f\n",
			p.MTBF, p.MTTR, 100*p.Delivery.Mean, 100*p.Delivery.CI95,
			p.Faults.Mean, p.BytesPerEvent.Mean)
	}
}
