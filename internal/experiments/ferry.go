package experiments

import (
	"fmt"
	"io"
	"time"

	"diffusion"
	"diffusion/internal/stats"
	"diffusion/internal/topo"
)

// This file is the ferry experiment: directed diffusion under scheduled
// disconnection, the mobile/DTN regime the paper's soft-state repair was
// never built for. Two island clusters sit beyond radio range of each
// other; the only path between them is a "message ferry" relay whose
// links alternate — it is in contact with exactly one island at a time,
// and each absence outlasts the gradient lifetime, so every soft-state
// trace of the far side decays before the ferry returns. Baseline
// diffusion loses everything originated while the ferry faces the wrong
// way: data reaches the ferry (or the source-side edge) and is dropped
// for want of a gradient. With custody transfer the same nodes park that
// data in bounded custody queues and replay it at the next contact,
// store-and-carry style, so delivery approaches 100% at the cost of
// latency — one contact period in the worst case.
//
// The topology is a 5-node line, sink 1 - 2 - ferry 3 - 4 - source 5,
// with 10 m spacing (adjacent nodes inside SolidRange, two-hop pairs
// beyond MaxRange). Ferry motion is a topo.Trajectory — a cyclic
// shuttle dwelling at a dock off each island's edge relay — and the
// contact schedule topo.Contacts derives from it drives the link layer:
// a window opening is a link-up with NeighborRecovered on both
// endpoints, a closing is a link-down with NeighborDead, exactly the
// verdicts a live deployment's failure detector would reach. The dwell
// and crossing times leave the contact windows disjoint (the islands
// are never bridged) and make each absence outlast the gradient
// lifetime. The schedule, not radio luck, decides connectivity, which
// keeps the scenario deterministic and lets the same seed compare
// custody against baseline message-for-message.

// FerryConfig parameterizes the ferry scenario.
type FerryConfig struct {
	// Seeds are the experiment repetitions.
	Seeds []int64
	// Duration is the per-run virtual time.
	Duration time.Duration
	// ContactPeriod is one full ferry cycle: half at the source island,
	// half at the sink island. Each absence must outlast the gradient
	// lifetime for the scenario to be a real DTN regime.
	ContactPeriod time.Duration
	// EventInterval is the source's data period.
	EventInterval time.Duration
	// InterestInterval refreshes interests (gradient lifetime is 2.5×).
	InterestInterval time.Duration
	// CustodyLimit bounds the custody queues in the custody arm.
	CustodyLimit int
	// Shards runs the kernel with this many shards (determinism checks
	// compare shard counts; the results must be byte-identical).
	Shards int
}

// DefaultFerry returns the standard configuration: 20-minute runs, a
// 60-second ferry cycle against a 25-second gradient lifetime (10 s
// interests), an event every 2 seconds.
func DefaultFerry() FerryConfig {
	return FerryConfig{
		Seeds:            []int64{1, 2, 3},
		Duration:         20 * time.Minute,
		ContactPeriod:    60 * time.Second,
		EventInterval:    2 * time.Second,
		InterestInterval: 10 * time.Second,
		CustodyLimit:     2048,
		Shards:           1,
	}
}

// FerryRun is one seed's outcome of one arm.
type FerryRun struct {
	Seed       int64
	Custody    bool
	Sent       int
	Delivered  int // unique sequences that reached the sink
	Duplicates int // deliveries beyond the first per sequence
	// Delivery is Delivered/Sent.
	Delivery float64
	// MeanLatency averages first-delivery latency over delivered events;
	// custody trades latency (up to a contact period) for completeness.
	MeanLatency time.Duration
	// Captured counts custody admissions across the network (0 in the
	// baseline arm).
	Captured int
}

// FerryResult aggregates both arms across seeds.
type FerryResult struct {
	Config   FerryConfig
	Baseline []FerryRun
	Custody  []FerryRun
	// DeliveryBaseline and DeliveryCustody summarize the arms' delivery
	// ratios with 95% confidence intervals.
	DeliveryBaseline stats.Summary
	DeliveryCustody  stats.Summary
	LatencyBaseline  stats.Summary // seconds
	LatencyCustody   stats.Summary
}

// RunFerry executes both arms across the configured seeds.
func RunFerry(cfg FerryConfig) FerryResult {
	res := FerryResult{Config: cfg}
	var db, dc, lb, lc []float64
	for _, seed := range cfg.Seeds {
		base := runFerryOnce(cfg, seed, false)
		cust := runFerryOnce(cfg, seed, true)
		res.Baseline = append(res.Baseline, base)
		res.Custody = append(res.Custody, cust)
		db = append(db, base.Delivery)
		dc = append(dc, cust.Delivery)
		lb = append(lb, base.MeanLatency.Seconds())
		lc = append(lc, cust.MeanLatency.Seconds())
	}
	res.DeliveryBaseline = stats.Summarize(db)
	res.DeliveryCustody = stats.Summarize(dc)
	res.LatencyBaseline = stats.Summarize(lb)
	res.LatencyCustody = stats.Summarize(lc)
	return res
}

// Ferry topology constants: sink 1 - edgeA 2 - ferry 3 - edgeB 4 - source 5.
const (
	ferrySink   = 1
	ferryEdgeA  = 2
	ferryNode   = 3
	ferryEdgeB  = 4
	ferrySource = 5
)

// Ferry motion constants. The docks sit 4 m off each island's edge relay
// (nodes 2 and 4 at x = 10 and 30) — inside the contact radius of that
// relay, outside everything else's. The contact radius is deliberately
// tighter than the radio's 13.5 m solid range: custody hand-off wants
// solid contact, and a 9 m radius keeps the two relays' contact windows
// disjoint while the ferry crosses between docks.
const (
	ferryContactRadius = 9.0
	ferryDockA         = 14.0 // dwell point for island A (sink side)
	ferryDockB         = 26.0 // dwell point for island B (source side)
	ferryContactStep   = 250 * time.Millisecond
)

// ferryShuttle returns the ferry's cyclic trajectory: dwell at the
// source-island dock, cross the 12 m gap in cycle/12 (2.4 m/s at the
// default 60 s cycle), dwell at the sink-island dock, cross back.
func ferryShuttle(cycle time.Duration) *topo.Trajectory {
	travel := cycle / 12
	dwell := cycle/2 - travel
	return &topo.Trajectory{
		Cyclic: true,
		Waypoints: []topo.Waypoint{
			{T: 0, X: ferryDockB},
			{T: dwell, X: ferryDockB},
			{T: dwell + travel, X: ferryDockA},
			{T: 2*dwell + travel, X: ferryDockA},
			{T: cycle, X: ferryDockB},
		},
	}
}

// runFerryOnce runs one seed of one arm.
func runFerryOnce(cfg FerryConfig, seed int64, withCustody bool) FerryRun {
	net := diffusion.NewNetwork(diffusion.NetworkConfig{
		Seed:             seed,
		Topology:         diffusion.LineTopology(5, 10),
		InterestInterval: cfg.InterestInterval,
		Custody:          withCustody,
		CustodyLimit:     cfg.CustodyLimit,
		// Deduplication must span a full disconnection, or a replayed
		// message whose ID aged out would double-deliver.
		SeenTTL: 4 * cfg.ContactPeriod,
		Shards:  cfg.Shards,
	})
	run := FerryRun{Seed: seed, Custody: withCustody}

	sentAt := map[int32]time.Duration{}
	firstRx := map[int32]time.Duration{}
	net.Node(ferrySink).Subscribe(surveillanceInterest(), func(m *diffusion.Message) {
		if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
			if _, seen := firstRx[a.Val.Int32()]; seen {
				run.Duplicates++
			} else {
				firstRx[a.Val.Int32()] = net.Now()
			}
		}
	})
	src := net.Node(ferrySource)
	pub := src.Publish(surveillanceData())
	seq := int32(0)
	// Stop originating two contact periods before the end: the last
	// events may need a full crossing to reach the ferry-side custodian
	// and another for the ferry to face the sink again.
	sendUntil := cfg.Duration - 2*cfg.ContactPeriod
	net.Every(cfg.EventInterval, func() {
		if net.Now() > sendUntil {
			return
		}
		seq++
		sentAt[seq] = net.Now()
		src.Send(pub, diffusion.Attributes{
			diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
		})
	})

	// The ferry schedule: contact windows derived from the shuttle
	// trajectory. A window opening brings the link up with
	// NeighborRecovered on both endpoints (re-offering cached interests
	// and replaying custody); a closing takes it down with NeighborDead,
	// as a live failure detector would conclude. The ferry starts docked
	// at the source island; the first crossing ferries the initial
	// interests over.
	setLink := func(peer uint32, up bool) {
		net.SetLinkDown(ferryNode, peer, !up)
		net.SetLinkDown(peer, ferryNode, !up)
		if up {
			net.Node(ferryNode).NeighborRecovered(peer)
			net.Node(peer).NeighborRecovered(ferryNode)
		} else {
			net.Node(ferryNode).NeighborDead(peer)
			net.Node(peer).NeighborDead(ferryNode)
		}
	}
	setLink(ferryEdgeA, false)
	setLink(ferryEdgeB, false)
	contacts := diffusion.LineTopology(5, 10).Contacts(
		ferryShuttle(cfg.ContactPeriod),
		[]uint32{ferryEdgeA, ferryEdgeB},
		ferryContactRadius, cfg.Duration, ferryContactStep)
	for _, c := range contacts {
		c := c
		if c.From == 0 {
			setLink(c.Peer, true)
		} else {
			net.After(c.From, func() { setLink(c.Peer, true) })
		}
		if c.To < cfg.Duration {
			net.After(c.To, func() { setLink(c.Peer, false) })
		}
	}

	net.Run(cfg.Duration)

	run.Sent = int(seq)
	run.Delivered = len(firstRx)
	if run.Sent > 0 {
		run.Delivery = float64(run.Delivered) / float64(run.Sent)
	}
	var lat time.Duration
	for s, at := range firstRx {
		lat += at - sentAt[s]
	}
	if run.Delivered > 0 {
		run.MeanLatency = lat / time.Duration(run.Delivered)
	}
	for _, n := range net.Nodes() {
		run.Captured += n.Stats.CustodyCaptured
	}
	return run
}

// PrintFerry renders the scenario.
func PrintFerry(w io.Writer, res FerryResult) {
	cfg := res.Config
	fmt.Fprintln(w, "Ferry: custody transfer vs baseline under scheduled disconnection")
	fmt.Fprintf(w, "line 1(sink)-2-3(ferry)-4-5(source); ferry shuttles between islands on a %v cycle; gradient lifetime %v\n",
		cfg.ContactPeriod, 5*cfg.InterestInterval/2)
	fmt.Fprintf(w, "  baseline delivery   %5.1f%% ± %.1f%%   latency %5.1f s\n",
		100*res.DeliveryBaseline.Mean, 100*res.DeliveryBaseline.CI95,
		res.LatencyBaseline.Mean)
	fmt.Fprintf(w, "  custody delivery    %5.1f%% ± %.1f%%   latency %5.1f s\n",
		100*res.DeliveryCustody.Mean, 100*res.DeliveryCustody.CI95,
		res.LatencyCustody.Mean)
	for i := range res.Custody {
		b, c := res.Baseline[i], res.Custody[i]
		fmt.Fprintf(w, "  seed %-3d  baseline %4d/%4d   custody %4d/%4d (dup %d, captured %d)\n",
			b.Seed, b.Delivered, b.Sent, c.Delivered, c.Sent, c.Duplicates, c.Captured)
	}
}
