// Package telemetry is the measurement substrate of the simulator: the
// paper's section 7 asks for tools that "permit more flexible logging"
// and help understand "what was going on in a network of dozens of
// physically distributed nodes". Three pieces provide that:
//
//   - A metrics registry (this file): named counters, gauges and
//     log-bucketed histograms per scope (typically one scope per node),
//     aggregated network-wide by a Hub into point-in-time Snapshots keyed
//     on the deterministic simulation clock. Hot paths pay a single field
//     increment and never allocate; everything string-keyed happens at
//     snapshot time only.
//   - A structured trace record schema with JSONL and Chrome trace_event
//     exporters (record.go), consumed by cmd/difftrace.
//   - A per-node flight recorder (flight.go): a fixed-size always-on ring
//     of recent protocol activity, dumped when something goes wrong.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready;
// incrementing is one integer add, so hot paths can hold a *Counter and
// bump it per message without allocating.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value (queue depth, rate, joules).
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add shifts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// HistBuckets is the fixed bucket count of every Histogram. Bucket 0
// holds observations <= 0 and bucket i holds 2^(i-1) <= v < 2^i, so the
// buckets cover [1, 2^39) — microsecond-scale observations up to ~6 days
// — at power-of-two resolution with no per-histogram configuration.
const HistBuckets = 40

// Histogram accumulates int64 observations into fixed log2-scale buckets.
// Observe is allocation-free: bucket index is one bits.Len64 plus three
// adds.
type Histogram struct {
	buckets [HistBuckets]uint64
	count   uint64
	sum     int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile at bucket resolution
// (the top of the bucket containing it). q outside (0,1] is clamped.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			if i == 0 {
				return 0
			}
			return int64(1)<<uint(i) - 1
		}
	}
	return int64(1)<<(HistBuckets-1) - 1
}

// Collector publishes externally maintained counters (a layer's existing
// Stats struct) into snapshots without any hot-path cost: the layer keeps
// incrementing its plain struct fields as before, and emit is called once
// per metric at snapshot time only.
type Collector func(emit func(name string, v float64))

// Registry is one scope's named metrics — the simulator creates one per
// node plus one for the shared channel. Metric creation is
// create-or-get by name; hot paths resolve their metrics once at wiring
// time and then increment through the returned pointers. Names are
// reported in deterministic (sorted) order regardless of creation order.
type Registry struct {
	name       string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	collectors []Collector
}

// NewRegistry returns an empty registry for the named scope.
func NewRegistry(name string) *Registry {
	return &Registry{
		name:     name,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Name returns the scope name.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCollector registers a snapshot-time metrics source.
func (r *Registry) AddCollector(c Collector) { r.collectors = append(r.collectors, c) }

// Snapshot reads every metric into a name→value map. Histograms expand
// into .count, .mean and .p99 entries.
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+3*len(r.hists))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+".count"] = float64(h.Count())
		out[name+".mean"] = h.Mean()
		out[name+".p99"] = float64(h.Quantile(0.99))
	}
	for _, col := range r.collectors {
		col(func(name string, v float64) { out[name] = v })
	}
	return out
}

// Hub aggregates registries network-wide. Snapshots are stamped with the
// simulation clock, so two runs with equal seeds produce identical
// snapshot sequences.
type Hub struct {
	clock func() time.Duration
	regs  []*Registry
}

// NewHub returns a hub stamping snapshots via clock (nil leaves At zero).
func NewHub(clock func() time.Duration) *Hub { return &Hub{clock: clock} }

// Register adds a registry to the hub and returns it (for chaining).
func (h *Hub) Register(r *Registry) *Registry {
	h.regs = append(h.regs, r)
	return r
}

// Registries returns the registered scopes in registration order (shared
// slice; do not mutate).
func (h *Hub) Registries() []*Registry { return h.regs }

// Snapshot reads every registered scope and sums shared metric names into
// network-wide totals.
func (h *Hub) Snapshot() Snapshot {
	s := Snapshot{
		Scopes: make(map[string]map[string]float64, len(h.regs)),
		Totals: map[string]float64{},
	}
	if h.clock != nil {
		s.At = h.clock()
	}
	for _, r := range h.regs {
		m := r.Snapshot()
		s.Scopes[r.Name()] = m
		// Sum in sorted name order: float addition is not associative, so
		// map-iteration order would make totals differ across runs.
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s.Totals[name] += m[name]
		}
	}
	return s
}

// Snapshot is one point-in-time view of every metric in the network: the
// per-scope maps plus cross-scope sums. Mean-like histogram entries sum
// too; read those per scope.
type Snapshot struct {
	At     time.Duration
	Scopes map[string]map[string]float64
	Totals map[string]float64
}

// Total returns the network-wide sum for a metric name (0 if absent).
func (s Snapshot) Total(name string) float64 { return s.Totals[name] }

// Scope returns one scope's metrics (nil if absent).
func (s Snapshot) Scope(name string) map[string]float64 { return s.Scopes[name] }

// Write renders the totals as a sorted table — the at-a-glance health
// view of a run.
func (s Snapshot) Write(w io.Writer) {
	fmt.Fprintf(w, "metrics @ %v (%d scopes):\n", s.At, len(s.Scopes))
	names := make([]string, 0, len(s.Totals))
	for name := range s.Totals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "  %-36s %g\n", name, s.Totals[name])
	}
}
