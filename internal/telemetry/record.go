package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// Record is one span-style structured trace record: an event observed at
// one node at one layer, with enough context (verb, class, cause) to
// reconstruct per-flow paths, gradient timelines and message budgets
// offline. Message events use verbs "org" (originated here) and "fwd"
// (processed from a neighbor); fault events use layer "fault" and the
// fault kind as the verb.
type Record struct {
	// US is the simulation timestamp in microseconds.
	US    int64  `json:"us"`
	Node  uint32 `json:"node"`
	Layer string `json:"layer"`
	Verb  string `json:"verb"`
	Class string `json:"class,omitempty"`
	// ID is the message origination id ("%08x:%d"); empty on faults.
	ID string `json:"id,omitempty"`
	// From is the neighbor the message arrived from (0 when originated).
	From uint32 `json:"from,omitempty"`
	// Peer is the second endpoint of link-fault events.
	Peer uint32 `json:"peer,omitempty"`
	Hops int    `json:"hops,omitempty"`
	// Cause annotates why the event happened (e.g. a reinforcement's
	// exploratory cause, or a flight-path drop reason), free-form.
	Cause string `json:"cause,omitempty"`
	// Flow is the sampled flight-path flow ID; zero (omitted) on records
	// that are not span events.
	Flow uint16 `json:"flow,omitempty"`
}

// At returns the record's simulation time.
func (r Record) At() time.Duration { return time.Duration(r.US) * time.Microsecond }

// RunInfo is the self-describing header of an exported trace: the
// experiment configuration needed to replay the run (seed, topology,
// protocol rates, fault script) plus export accounting. Durations are
// strings in time.Duration syntax.
type RunInfo struct {
	Seed                int64    `json:"seed"`
	Topology            string   `json:"topology"`
	Nodes               int      `json:"nodes"`
	InterestInterval    string   `json:"interest_interval,omitempty"`
	GradientLifetime    string   `json:"gradient_lifetime,omitempty"`
	ExploratoryInterval string   `json:"exploratory_interval,omitempty"`
	ExploratoryEvery    int      `json:"exploratory_every,omitempty"`
	TTL                 int      `json:"ttl,omitempty"`
	FaultScript         []string `json:"fault_script,omitempty"`
	// DroppedEvents and DroppedFaults count records lost to the trace
	// memory bounds; non-zero means the tail of the run is missing.
	DroppedEvents int `json:"dropped_events,omitempty"`
	DroppedFaults int `json:"dropped_faults,omitempty"`
}

// header is the first JSONL line: a magic marker plus the run info, so a
// trace file is self-identifying.
type header struct {
	Trace   string  `json:"trace"`
	Version int     `json:"version"`
	Run     RunInfo `json:"run"`
	Records int     `json:"records"`
}

const (
	traceMagic   = "diffusion"
	traceVersion = 1
)

// WriteJSONL exports a trace as one JSON object per line: a header line
// carrying the run info, then one line per record in time order.
func WriteJSONL(w io.Writer, info RunInfo, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Trace: traceMagic, Version: traceVersion, Run: info, Records: len(recs)}); err != nil {
		return err
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrNotTrace marks input that does not start with a diffusion trace
// header.
var ErrNotTrace = errors.New("telemetry: not a diffusion JSONL trace (missing header line)")

// ReadJSONL parses a JSONL trace produced by WriteJSONL.
func ReadJSONL(r io.Reader) (RunInfo, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return RunInfo{}, nil, err
		}
		return RunInfo{}, nil, ErrNotTrace
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil || h.Trace != traceMagic {
		return RunInfo{}, nil, ErrNotTrace
	}
	recs := make([]Record, 0, h.Records)
	line := 1
	for sc.Scan() {
		line++
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return h.Run, recs, fmt.Errorf("telemetry: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	return h.Run, recs, sc.Err()
}

// chromeEvent is one entry of the Chrome trace_event "JSON Array Format".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts,omitempty"`
	PID  int            `json:"pid"`
	TID  uint32         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports a trace in Chrome trace_event format, loadable
// in chrome://tracing or Perfetto: one lane (thread) per node, message
// and fault events as thread-scoped instants, and the run info attached
// as trace metadata.
func WriteChromeTrace(w io.Writer, info RunInfo, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, `{"displayTimeUnit":"ms","otherData":`); err != nil {
		return err
	}
	infoJSON, err := json.Marshal(info)
	if err != nil {
		return err
	}
	bw.Write(infoJSON)
	io.WriteString(bw, `,"traceEvents":[`)

	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Name each node's lane. The whole trace is one process; tid = node.
	seen := map[uint32]bool{}
	for _, r := range recs {
		if seen[r.Node] {
			continue
		}
		seen[r.Node] = true
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: r.Node,
			Args: map[string]any{"name": fmt.Sprintf("node %d", r.Node)},
		}); err != nil {
			return err
		}
	}
	for _, r := range recs {
		name := r.Class
		if name == "" {
			name = r.Verb // faults have no class
		}
		args := map[string]any{"layer": r.Layer, "verb": r.Verb}
		if r.ID != "" {
			args["id"] = r.ID
		}
		if r.From != 0 {
			args["from"] = r.From
		}
		if r.Peer != 0 {
			args["peer"] = r.Peer
		}
		if r.Hops != 0 {
			args["hops"] = r.Hops
		}
		if err := emit(chromeEvent{
			Name: name, Ph: "i", TS: r.US, PID: 1, TID: r.Node, S: "t", Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
