package telemetry

import (
	"fmt"
	"sync"
	"time"

	"diffusion/internal/message"
)

// Flight-path spans: the causal trace of one sampled message across the
// mesh. Each layer that touches a sampled message (flow ID non-zero)
// records a compact Span into its node's SpanRing; an offline analyzer
// (internal/flightpath) merges the rings on (flow, hop, node) into
// per-message timelines. Recording is zero-alloc — a struct copy into a
// fixed ring under a mutex — and entirely skipped for unsampled traffic,
// so the hot path is untouched when the sampling knob is off.

// SpanEvent classifies one step of a message's flight path.
type SpanEvent uint8

// Span events, in rough lifecycle order.
const (
	// SpanRecv: the diffusion core received the message from a neighbor.
	SpanRecv SpanEvent = iota
	// SpanMatch: the message matched at least one interest entry.
	SpanMatch
	// SpanEnqueue: the link layer accepted the message into its queue.
	SpanEnqueue
	// SpanTx: the link layer put the last fragment/frame on the air/wire.
	SpanTx
	// SpanCustodyAccept: a custodian took responsibility for the message.
	SpanCustodyAccept
	// SpanCustodyReplay: a custodian re-sent the message toward a path.
	SpanCustodyReplay
	// SpanDeliver: the message reached a local subscriber.
	SpanDeliver
	// SpanDrop: the message went no further here; Reason says why.
	SpanDrop

	numSpanEvents
)

// NumSpanEvents is the number of defined span events.
const NumSpanEvents = int(numSpanEvents)

// String renders the event as it appears in trace records.
func (e SpanEvent) String() string {
	switch e {
	case SpanRecv:
		return "recv"
	case SpanMatch:
		return "match"
	case SpanEnqueue:
		return "enqueue"
	case SpanTx:
		return "tx"
	case SpanCustodyAccept:
		return "custody-accept"
	case SpanCustodyReplay:
		return "custody-replay"
	case SpanDeliver:
		return "deliver"
	case SpanDrop:
		return "drop"
	default:
		return fmt.Sprintf("SpanEvent(%d)", uint8(e))
	}
}

// SpanEventByName parses the String form; ok is false for unknown names.
func SpanEventByName(s string) (SpanEvent, bool) {
	for e := SpanEvent(0); e < numSpanEvents; e++ {
		if e.String() == s {
			return e, true
		}
	}
	return 0, false
}

// DropReason annotates a SpanDrop.
type DropReason uint8

// Drop reasons.
const (
	DropNone DropReason = iota
	// DropNoGradient: data arrived but no interest entry matched.
	DropNoGradient
	// DropNoPath: a matching entry exists but has no reinforced gradient.
	DropNoPath
	// DropLinkRefused: the link layer refused the send (queue full, down).
	DropLinkRefused
	// DropTTL: the hop count reached the configured TTL.
	DropTTL
	// DropDuplicate: the (RandID, PktNum) pair was already seen.
	DropDuplicate
)

// String renders the reason as it appears in a record's cause field.
func (r DropReason) String() string {
	switch r {
	case DropNone:
		return ""
	case DropNoGradient:
		return "no-gradient"
	case DropNoPath:
		return "no-path"
	case DropLinkRefused:
		return "link-refused"
	case DropTTL:
		return "ttl"
	case DropDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("DropReason(%d)", uint8(r))
	}
}

// SpanLayer names the layer that recorded a span.
type SpanLayer uint8

// Span layers.
const (
	SpanLayerCore SpanLayer = iota
	SpanLayerMac
	SpanLayerCustody
	SpanLayerTransport
)

// String renders the layer.
func (l SpanLayer) String() string {
	switch l {
	case SpanLayerCore:
		return "core"
	case SpanLayerMac:
		return "mac"
	case SpanLayerCustody:
		return "custody"
	case SpanLayerTransport:
		return "transport"
	default:
		return fmt.Sprintf("SpanLayer(%d)", uint8(l))
	}
}

// Span is one flight-path event: a sampled message observed at one node,
// one layer, one lifecycle step.
type Span struct {
	// At is node-local time: simulation time in the simulator, time since
	// process start in a live diffnode.
	At   time.Duration
	Node uint32
	// Peer is the neighbor involved: the sender on recv, the destination
	// on tx/enqueue (0 for broadcast), the replay target on custody-replay.
	Peer uint32
	// ID is the message origination id (for merging across flows that
	// collide on the 16-bit flow space).
	ID message.ID
	// Flow is the sampled flow ID (never zero in a recorded span).
	Flow uint16
	// Hop is the message's hop count when the event happened.
	Hop    uint8
	Event  SpanEvent
	Layer  SpanLayer
	Reason DropReason
	Class  message.Class
}

// TraceRecord converts the span to the JSONL trace-record schema. Layer
// and Verb carry the span layer and event; Cause the drop reason.
func (s Span) TraceRecord() Record {
	r := Record{
		US:    s.At.Microseconds(),
		Node:  s.Node,
		Layer: s.Layer.String(),
		Verb:  s.Event.String(),
		Class: s.Class.String(),
		ID:    s.ID.String(),
		Peer:  s.Peer,
		Hops:  int(s.Hop),
		Flow:  s.Flow,
	}
	if s.Reason != DropNone {
		r.Cause = s.Reason.String()
	}
	return r
}

// DefaultSpanSize is the per-node span-ring capacity wired up by default.
const DefaultSpanSize = 4096

// SpanRing is a bounded ring of the most recent spans at one node. Safe
// for concurrent use (a live diffnode records from the loop goroutine and
// the transport's reader while /spans scrapes it); Record never allocates.
type SpanRing struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	total uint64
}

// NewSpanRing returns a ring holding the last size spans (size <= 0 takes
// DefaultSpanSize).
func NewSpanRing(size int) *SpanRing {
	if size <= 0 {
		size = DefaultSpanSize
	}
	return &SpanRing{buf: make([]Span, size)}
}

// Record appends s, overwriting the oldest span when full.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Len returns the number of spans currently held.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lenLocked()
}

func (r *SpanRing) lenLocked() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of spans ever recorded (Len plus overwrites).
func (r *SpanRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Spans returns the held spans oldest-first (a copy).
func (r *SpanRing) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.lenLocked()
	out := make([]Span, 0, n)
	start := 0
	if r.total >= uint64(len(r.buf)) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
