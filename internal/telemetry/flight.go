package telemetry

import (
	"fmt"
	"io"
	"time"

	"diffusion/internal/message"
)

// Verb classifies a flight-recorder entry.
type Verb uint8

// Flight-recorder verbs.
const (
	VerbRecv Verb = iota
	VerbSend
	VerbFault
)

// String renders the verb.
func (v Verb) String() string {
	switch v {
	case VerbRecv:
		return "recv"
	case VerbSend:
		return "send"
	case VerbFault:
		return "fault"
	default:
		return fmt.Sprintf("Verb(%d)", uint8(v))
	}
}

// FlightRecord is one compact flight-recorder entry. For message verbs,
// Class/Hops/ID describe the message and Peer the neighbor it came from
// (recv) or goes to (send). For VerbFault, Kind holds the fault kind and
// Peer the other endpoint of link faults.
type FlightRecord struct {
	At    time.Duration
	Node  uint32
	Peer  uint32
	ID    message.ID
	Verb  Verb
	Class message.Class
	Kind  uint8
	Hops  uint8
}

// Flight is a fixed-size, always-on ring of the most recent records at
// one node — the crash dump that makes soak and churn failures
// self-diagnosing. Record overwrites the oldest entry and never
// allocates.
type Flight struct {
	buf   []FlightRecord
	next  int
	total uint64
}

// DefaultFlightSize is the per-node ring capacity the network wires up.
const DefaultFlightSize = 256

// NewFlight returns a ring holding the last size records (size <= 0 takes
// DefaultFlightSize).
func NewFlight(size int) *Flight {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &Flight{buf: make([]FlightRecord, size)}
}

// Record appends r, overwriting the oldest entry when full.
func (f *Flight) Record(r FlightRecord) {
	f.buf[f.next] = r
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
	}
	f.total++
}

// Len returns the number of records currently held.
func (f *Flight) Len() int {
	if f.total < uint64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Total returns the number of records ever written (Len plus overwrites).
func (f *Flight) Total() uint64 { return f.total }

// Records returns the held records oldest-first (a copy).
func (f *Flight) Records() []FlightRecord {
	n := f.Len()
	out := make([]FlightRecord, 0, n)
	start := 0
	if f.total >= uint64(len(f.buf)) {
		start = f.next
	}
	for i := 0; i < n; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}

// Dump writes the ring's contents as one line per record, oldest first.
// kindName renders fault kinds (nil prints the raw number).
func (f *Flight) Dump(w io.Writer, kindName func(uint8) string) {
	recs := f.Records()
	fmt.Fprintf(w, "flight recorder node: %d records held, %d total\n", len(recs), f.total)
	for _, r := range recs {
		switch r.Verb {
		case VerbFault:
			kind := fmt.Sprintf("kind=%d", r.Kind)
			if kindName != nil {
				kind = kindName(r.Kind)
			}
			if r.Peer != 0 {
				fmt.Fprintf(w, "%12v node=%d fault %s peer=%d\n", r.At, r.Node, kind, r.Peer)
			} else {
				fmt.Fprintf(w, "%12v node=%d fault %s\n", r.At, r.Node, kind)
			}
		default:
			fmt.Fprintf(w, "%12v node=%d %s %s id=%v peer=%d hops=%d\n",
				r.At, r.Node, r.Verb, r.Class, r.ID, r.Peer, r.Hops)
		}
	}
}
