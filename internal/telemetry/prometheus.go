package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders snapshots in the Prometheus text exposition format —
// the wall-clock serving path: a live node (cmd/diffnode) takes a Snapshot
// on its event loop and streams it to scrapers from GET /metrics. The
// registry/collector machinery is unchanged; only the rendering differs
// from the simulator's table output.
//
// Mapping: a metric named "core.bytes_sent" in scope "node3" becomes
//
//	diffusion_core_bytes_sent{scope="node3"} 42
//
// Dots and any other characters outside [a-zA-Z0-9_:] turn into
// underscores. Histogram-expanded entries (.count/.mean/.p99) are emitted
// like any other sample. Every metric name gets one # HELP/# TYPE pair
// (untyped: the registry does not distinguish counters from gauges at
// snapshot time) followed by one sample line per scope, names sorted, so
// output is deterministic.
//
// Labeled series: a registry name may carry extra labels after a '|',
// as "transport.peer_rtt_us|peer=3" — comma-separated key=value pairs.
// They render as additional labels next to scope:
//
//	diffusion_transport_peer_rtt_us{scope="node1",peer="3"} 512
//
// The registry machinery treats the whole string as an opaque name (the
// labels participate in Totals summing like any other name), so
// collectors emit one labeled name per peer and the rendering here is
// the only place that parses them.

// WritePrometheus renders s in the Prometheus text exposition format.
// Every sample carries a scope label; prefix (default "diffusion") is
// prepended to each metric name.
func WritePrometheus(w io.Writer, s Snapshot, prefix string) error {
	if prefix == "" {
		prefix = "diffusion"
	}
	// Collect the union of metric names, then the scopes carrying each.
	names := make([]string, 0, len(s.Totals))
	for name := range s.Totals {
		names = append(names, name)
	}
	sort.Strings(names)
	scopes := make([]string, 0, len(s.Scopes))
	for scope := range s.Scopes {
		scopes = append(scopes, scope)
	}
	sort.Strings(scopes)

	lastHelp := ""
	for _, name := range names {
		base, labels := splitLabels(name)
		prom := prefix + "_" + sanitizeMetricName(base)
		// Labeled variants of one base name share a single HELP/TYPE pair
		// (names are sorted, so they arrive consecutively).
		if prom != lastHelp {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s untyped\n",
				prom, escapeHelp(base), prom); err != nil {
				return err
			}
			lastHelp = prom
		}
		for _, scope := range scopes {
			v, ok := s.Scopes[scope][name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{scope=\"%s\"%s} %s\n",
				prom, escapeLabelValue(scope), labels, formatSampleValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// splitLabels separates a registry name's optional "|k=v,k2=v2" suffix,
// returning the base name and the rendered extra labels (",k=\"v\"..."
// or ""). Malformed pairs (no '=') are dropped rather than emitted as
// invalid exposition text.
func splitLabels(name string) (base, rendered string) {
	i := strings.IndexByte(name, '|')
	if i < 0 {
		return name, ""
	}
	var b strings.Builder
	for _, pair := range strings.Split(name[i+1:], ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" {
			continue
		}
		b.WriteByte(',')
		b.WriteString(sanitizeMetricName(k))
		b.WriteString("=\"")
		b.WriteString(escapeLabelValue(v))
		b.WriteByte('"')
	}
	return name[:i], b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	return labelEscaper.Replace(v)
}

// escapeHelp escapes a HELP text: backslash and newline only.
func escapeHelp(v string) string {
	return helpEscaper.Replace(v)
}

var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// sanitizeMetricName maps a registry metric name onto the Prometheus
// name alphabet [a-zA-Z0-9_:], collapsing every other rune to '_' and
// prefixing an underscore when the name would start with a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// formatSampleValue renders a float64 the way Prometheus expects: plain
// decimal or scientific notation, with IEEE special values spelled out.
func formatSampleValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
