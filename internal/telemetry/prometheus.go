package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file renders snapshots in the Prometheus text exposition format —
// the wall-clock serving path: a live node (cmd/diffnode) takes a Snapshot
// on its event loop and streams it to scrapers from GET /metrics. The
// registry/collector machinery is unchanged; only the rendering differs
// from the simulator's table output.
//
// Mapping: a metric named "core.bytes_sent" in scope "node3" becomes
//
//	diffusion_core_bytes_sent{scope="node3"} 42
//
// Dots and any other characters outside [a-zA-Z0-9_:] turn into
// underscores. Histogram-expanded entries (.count/.mean/.p99) are emitted
// like any other sample. Every metric name gets one # HELP/# TYPE pair
// (untyped: the registry does not distinguish counters from gauges at
// snapshot time) followed by one sample line per scope, names sorted, so
// output is deterministic.

// WritePrometheus renders s in the Prometheus text exposition format.
// Every sample carries a scope label; prefix (default "diffusion") is
// prepended to each metric name.
func WritePrometheus(w io.Writer, s Snapshot, prefix string) error {
	if prefix == "" {
		prefix = "diffusion"
	}
	// Collect the union of metric names, then the scopes carrying each.
	names := make([]string, 0, len(s.Totals))
	for name := range s.Totals {
		names = append(names, name)
	}
	sort.Strings(names)
	scopes := make([]string, 0, len(s.Scopes))
	for scope := range s.Scopes {
		scopes = append(scopes, scope)
	}
	sort.Strings(scopes)

	for _, name := range names {
		prom := prefix + "_" + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s untyped\n",
			prom, name, prom); err != nil {
			return err
		}
		for _, scope := range scopes {
			v, ok := s.Scopes[scope][name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{scope=%q} %s\n",
				prom, scope, formatSampleValue(v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeMetricName maps a registry metric name onto the Prometheus
// name alphabet [a-zA-Z0-9_:], collapsing every other rune to '_' and
// prefixing an underscore when the name would start with a digit.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// formatSampleValue renders a float64 the way Prometheus expects: plain
// decimal or scientific notation, with IEEE special values spelled out.
func formatSampleValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}
