package telemetry

import (
	"testing"
	"time"

	"diffusion/internal/message"
)

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 6; i++ {
		r.Record(Span{Flow: uint16(i + 1)})
	}
	if r.Len() != 4 || r.Total() != 6 {
		t.Fatalf("Len=%d Total=%d, want 4, 6", r.Len(), r.Total())
	}
	got := r.Spans()
	for i, s := range got {
		if want := uint16(i + 3); s.Flow != want {
			t.Errorf("span[%d].Flow = %d, want %d (oldest-first after wrap)", i, s.Flow, want)
		}
	}
}

func TestSpanRingDefaultSize(t *testing.T) {
	if got := NewSpanRing(0).buf; len(got) != DefaultSpanSize {
		t.Errorf("default ring size %d, want %d", len(got), DefaultSpanSize)
	}
}

func TestSpanTraceRecord(t *testing.T) {
	s := Span{
		At:     1500 * time.Microsecond,
		Node:   4,
		Peer:   3,
		ID:     message.ID{RandID: 0xAB, PktNum: 7},
		Flow:   0x1234,
		Hop:    2,
		Event:  SpanDrop,
		Layer:  SpanLayerCore,
		Reason: DropLinkRefused,
		Class:  message.Data,
	}
	r := s.TraceRecord()
	if r.US != 1500 || r.Node != 4 || r.Peer != 3 || r.Flow != 0x1234 || r.Hops != 2 {
		t.Errorf("record fields wrong: %+v", r)
	}
	if r.Layer != "core" || r.Verb != "drop" || r.Cause != "link-refused" || r.Class != "DATA" {
		t.Errorf("record names wrong: %+v", r)
	}
	s.Reason = DropNone
	if got := s.TraceRecord().Cause; got != "" {
		t.Errorf("DropNone should omit cause, got %q", got)
	}
}

func TestSpanEventNames(t *testing.T) {
	want := []string{"recv", "match", "enqueue", "tx", "custody-accept",
		"custody-replay", "deliver", "drop"}
	for e := SpanEvent(0); e < numSpanEvents; e++ {
		if e.String() != want[e] {
			t.Errorf("event %d = %q, want %q", e, e.String(), want[e])
		}
		got, ok := SpanEventByName(want[e])
		if !ok || got != e {
			t.Errorf("SpanEventByName(%q) = %v, %v", want[e], got, ok)
		}
	}
	if _, ok := SpanEventByName("bogus"); ok {
		t.Error("unknown name must not parse")
	}
}
