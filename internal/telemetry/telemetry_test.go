package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"diffusion/internal/message"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Errorf("gauge = %g, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 50} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 0+1+2+3+1000+1<<50 {
		t.Errorf("sum = %d", h.Sum())
	}
	// Quantile returns a bucket upper bound covering the observation.
	if q := h.Quantile(0.5); q < 3 || q > 4 {
		t.Errorf("p50 = %d, want bucket top covering 3", q)
	}
	if q := h.Quantile(1); q != int64(1)<<(HistBuckets-1)-1 {
		t.Errorf("p100 = %d, want overflow bucket top", q)
	}
	if h.Quantile(0.01) != 0 {
		t.Errorf("p1 = %d, want 0 (zero bucket)", h.Quantile(0.01))
	}
}

func TestRegistrySnapshotAndCollectors(t *testing.T) {
	r := NewRegistry("node-1")
	r.Counter("a").Add(3)
	if r.Counter("a") != r.Counter("a") {
		t.Error("Counter must be create-or-get")
	}
	r.Gauge("g").Set(7)
	r.Histogram("h").Observe(100)
	external := 42
	r.AddCollector(func(emit func(string, float64)) { emit("ext", float64(external)) })
	snap := r.Snapshot()
	if snap["a"] != 3 || snap["g"] != 7 || snap["ext"] != 42 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap["h.count"] != 1 || snap["h.mean"] != 100 {
		t.Errorf("histogram expansion = %v", snap)
	}
	external = 43
	if r.Snapshot()["ext"] != 43 {
		t.Error("collectors must read live values at snapshot time")
	}
}

func TestHubAggregates(t *testing.T) {
	now := 5 * time.Second
	h := NewHub(func() time.Duration { return now })
	a := h.Register(NewRegistry("node-1"))
	b := h.Register(NewRegistry("node-2"))
	a.Counter("sent").Add(2)
	b.Counter("sent").Add(3)
	s := h.Snapshot()
	if s.At != now {
		t.Errorf("At = %v", s.At)
	}
	if s.Total("sent") != 5 {
		t.Errorf("total = %g", s.Total("sent"))
	}
	if s.Scope("node-2")["sent"] != 3 {
		t.Errorf("scope = %v", s.Scope("node-2"))
	}
	var buf bytes.Buffer
	s.Write(&buf)
	if !strings.Contains(buf.String(), "sent") || !strings.Contains(buf.String(), "2 scopes") {
		t.Errorf("snapshot render:\n%s", buf.String())
	}
}

// The acceptance criterion: metric hot paths add no allocations per
// message.
func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op", n)
	}
	var g Gauge
	if n := testing.AllocsPerRun(100, func() { g.Add(1) }); n != 0 {
		t.Errorf("Gauge.Add allocates %.1f/op", n)
	}
	var h Histogram
	if n := testing.AllocsPerRun(100, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op", n)
	}
	f := NewFlight(64)
	rec := FlightRecord{At: time.Second, Node: 3, Verb: VerbRecv, Class: message.Data}
	if n := testing.AllocsPerRun(100, func() { f.Record(rec) }); n != 0 {
		t.Errorf("Flight.Record allocates %.1f/op", n)
	}
}

func TestFlightRing(t *testing.T) {
	f := NewFlight(4)
	for i := 1; i <= 6; i++ {
		f.Record(FlightRecord{At: time.Duration(i) * time.Second, Node: uint32(i)})
	}
	if f.Len() != 4 || f.Total() != 6 {
		t.Fatalf("len=%d total=%d", f.Len(), f.Total())
	}
	recs := f.Records()
	if recs[0].Node != 3 || recs[3].Node != 6 {
		t.Errorf("ring order = %v", recs)
	}
	var buf bytes.Buffer
	f.Dump(&buf, nil)
	if !strings.Contains(buf.String(), "4 records held, 6 total") {
		t.Errorf("dump:\n%s", buf.String())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	info := RunInfo{
		Seed: 7, Topology: "testbed", Nodes: 14,
		InterestInterval: "1m0s", FaultScript: []string{"crash node 2 at 10m0s"},
		DroppedEvents: 3,
	}
	recs := []Record{
		{US: 1000, Node: 1, Layer: "core", Verb: "org", Class: "INTEREST", ID: "0000abcd:1"},
		{US: 2000, Node: 2, Layer: "core", Verb: "fwd", Class: "INTEREST", ID: "0000abcd:1", From: 1, Hops: 1},
		{US: 3000, Node: 2, Layer: "fault", Verb: "node-down"},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, info, recs); err != nil {
		t.Fatal(err)
	}
	gotInfo, gotRecs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotInfo.Seed != 7 || gotInfo.Topology != "testbed" || gotInfo.DroppedEvents != 3 ||
		len(gotInfo.FaultScript) != 1 {
		t.Errorf("info = %+v", gotInfo)
	}
	if len(gotRecs) != 3 || gotRecs[1] != recs[1] {
		t.Errorf("records = %+v", gotRecs)
	}
	if gotRecs[0].At() != time.Millisecond {
		t.Errorf("At = %v", gotRecs[0].At())
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("want error on garbage input")
	}
	if _, _, err := ReadJSONL(strings.NewReader(`{"some":"json"}` + "\n")); err == nil {
		t.Error("want error on non-trace json")
	}
}

func TestChromeTraceShape(t *testing.T) {
	recs := []Record{
		{US: 1000, Node: 1, Layer: "core", Verb: "org", Class: "DATA", ID: "x:1"},
		{US: 1500, Node: 2, Layer: "fault", Verb: "node-down"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, RunInfo{Seed: 1}, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"thread_name"`, `"node 1"`, `"DATA"`, `"node-down"`, `"ph":"i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, out)
		}
	}
}
