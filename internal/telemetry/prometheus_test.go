package telemetry

import (
	"bufio"
	"math"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches one valid exposition-format sample line:
// name{scope="..."} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*\{scope="[^"\\]*"\} (NaN|[+-]Inf|-?[0-9.eE+-]+)$`)

func sampleSnapshot() Snapshot {
	h := NewHub(func() time.Duration { return time.Second })
	r1 := h.Register(NewRegistry("node1"))
	r1.Counter("core.bytes_sent").Add(42)
	r1.Gauge("mac.queue_depth").Set(3)
	r1.Histogram("rtt_us").Observe(100)
	r2 := h.Register(NewRegistry("node2"))
	r2.Counter("core.bytes_sent").Add(7)
	r2.Gauge("weird name-with.chars").Set(1)
	return h.Snapshot()
}

// TestWritePrometheusFormat checks every emitted line is either a comment
// or a well-formed sample, and the content is complete.
func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, sampleSnapshot(), ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines")
	}

	for _, want := range []string{
		`diffusion_core_bytes_sent{scope="node1"} 42`,
		`diffusion_core_bytes_sent{scope="node2"} 7`,
		`diffusion_mac_queue_depth{scope="node1"} 3`,
		`diffusion_rtt_us_count{scope="node1"} 1`,
		`diffusion_rtt_us_mean{scope="node1"} 100`,
		`diffusion_weird_name_with_chars{scope="node2"} 1`,
		"# TYPE diffusion_core_bytes_sent untyped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// A metric absent from a scope must not fabricate a zero sample.
	if strings.Contains(out, `diffusion_mac_queue_depth{scope="node2"}`) {
		t.Error("node2 must not report a metric it never registered")
	}
}

// TestWritePrometheusDeterministic checks two renders of one snapshot are
// byte-identical (sorted names and scopes), so scrape diffs are
// meaningful.
func TestWritePrometheusDeterministic(t *testing.T) {
	s := sampleSnapshot()
	var a, b strings.Builder
	WritePrometheus(&a, s, "")
	WritePrometheus(&b, s, "")
	if a.String() != b.String() {
		t.Fatal("renders of the same snapshot differ")
	}
}

// TestWritePrometheusSpecialValues checks IEEE specials render in the
// exposition spelling.
func TestWritePrometheusSpecialValues(t *testing.T) {
	h := NewHub(nil)
	r := h.Register(NewRegistry("n"))
	r.Gauge("nan").Set(math.NaN())
	r.Gauge("inf").Set(math.Inf(1))
	r.Gauge("neginf").Set(math.Inf(-1))
	var b strings.Builder
	if err := WritePrometheus(&b, h.Snapshot(), "x"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`x_nan{scope="n"} NaN`,
		`x_inf{scope="n"} +Inf`,
		`x_neginf{scope="n"} -Inf`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

// TestWritePrometheusEmpty: an empty registry (or a snapshot with no
// scopes at all) must render cleanly as zero samples, not error.
func TestWritePrometheusEmpty(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, Snapshot{}, ""); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty snapshot rendered %q", b.String())
	}
	h := NewHub(nil)
	h.Register(NewRegistry("empty"))
	b.Reset()
	if err := WritePrometheus(&b, h.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty registry rendered %q", b.String())
	}
}

// TestWritePrometheusLabels: the "name|k=v" convention renders extra
// labels next to scope, with one shared HELP/TYPE pair per base name and
// exposition-format escaping of label values.
func TestWritePrometheusLabels(t *testing.T) {
	h := NewHub(nil)
	r := h.Register(NewRegistry("node1"))
	r.Gauge("transport.peer_rtt_us|peer=2").Set(512)
	r.Gauge("transport.peer_rtt_us|peer=3").Set(1024)
	r.Gauge(`odd|key="quo\te"` + "\n").Set(1)
	r.Gauge("broken|novalue").Set(2)
	var b strings.Builder
	if err := WritePrometheus(&b, h.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`diffusion_transport_peer_rtt_us{scope="node1",peer="2"} 512`,
		`diffusion_transport_peer_rtt_us{scope="node1",peer="3"} 1024`,
		`diffusion_odd{scope="node1",key="\"quo\\te\"\n"} 1`,
		`diffusion_broken{scope="node1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# HELP diffusion_transport_peer_rtt_us"); got != 1 {
		t.Errorf("labeled variants emitted %d HELP lines, want 1:\n%s", got, out)
	}
}

// TestWritePrometheusScopeEscaping: scope names with exposition
// metacharacters must be escaped, not emitted raw.
func TestWritePrometheusScopeEscaping(t *testing.T) {
	h := NewHub(nil)
	r := h.Register(NewRegistry(`no"de\1` + "\n"))
	r.Counter("c").Inc()
	var b strings.Builder
	if err := WritePrometheus(&b, h.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	if want := `diffusion_c{scope="no\"de\\1\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("missing %q in:\n%s", want, b.String())
	}
}

// TestWritePrometheusNaNGauge: NaN gauges must render as literal NaN
// sample values without disturbing neighboring series.
func TestWritePrometheusNaNGauge(t *testing.T) {
	h := NewHub(nil)
	r := h.Register(NewRegistry("n"))
	r.Gauge("ratio").Set(math.NaN())
	r.Gauge("ok").Set(5)
	var b strings.Builder
	if err := WritePrometheus(&b, h.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`diffusion_ratio{scope="n"} NaN`,
		`diffusion_ok{scope="n"} 5`,
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q in:\n%s", want, b.String())
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"core.bytes_sent": "core_bytes_sent",
		"a b-c/d":         "a_b_c_d",
		"9lives":          "_9lives",
		"ok_name:sub":     "ok_name:sub",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
