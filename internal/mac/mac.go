// Package mac implements the paper's deliberately primitive link layer:
// carrier-sense multiple access with random backoff but "lacking RTS/CTS or
// ARQ", where every diffusion message is "broken into several 27-byte
// fragments" and "loss of a single fragment results in loss of the whole
// message" (section 6.1). The experiments depend on these weaknesses — they
// are what makes the testbed congest — so the MAC reproduces them rather
// than fixing them.
package mac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"diffusion/internal/radio"
	"diffusion/internal/sim"
	"diffusion/internal/telemetry"
)

// Params configures the MAC.
type Params struct {
	// FragmentPayload is the number of message bytes per fragment
	// (paper: 27).
	FragmentPayload int
	// MaxPayload bounds a single message.
	MaxPayload int
	// SlotTime is the backoff slot duration.
	SlotTime time.Duration
	// MaxBackoffSlots bounds the random backoff window.
	MaxBackoffSlots int
	// MaxAttempts bounds carrier-sense retries per fragment before the
	// whole message is dropped.
	MaxAttempts int
	// QueueLimit bounds the transmit queue (drop-tail beyond it).
	QueueLimit int
	// InterFragGap is idle time between fragments of one message.
	InterFragGap time.Duration
	// ReassemblyTimeout expires incomplete partial messages.
	ReassemblyTimeout time.Duration
	// TxTurnaround is the radio's receive-to-transmit turnaround: the
	// delay between a clear carrier-sense decision and energy on the air.
	// The transmission is committed when carrier sense passes and cannot
	// be aborted during the turnaround, exactly like the paper's
	// Radiometrix hardware. The sharded kernel also uses it as lookahead:
	// turnaround plus propagation bounds how soon one node's decision can
	// affect another. Zero means DefaultTxTurnaround.
	TxTurnaround time.Duration
	// DutyCycle enables energy-aware duty cycling (the paper's section
	// 6.1 analysis: "energy-conscious protocols like PAMAS or TDMA are
	// necessary for long-lived sensor networks"): the radio listens only
	// during the first DutyCycle fraction of every CyclePeriod, on a
	// schedule shared network-wide (as in TDMA/S-MAC-style designs).
	// Transmissions defer to active windows; frames that finish arriving
	// during sleep are lost. 0 or >=1 disables duty cycling.
	DutyCycle float64
	// CyclePeriod is the duty-cycle schedule period (default 500 ms when
	// duty cycling is enabled).
	CyclePeriod time.Duration
}

// DefaultParams returns testbed-like MAC parameters.
func DefaultParams() Params {
	return Params{
		FragmentPayload:   27,
		MaxPayload:        1024,
		SlotTime:          2 * time.Millisecond,
		MaxBackoffSlots:   64,
		MaxAttempts:       16,
		QueueLimit:        20,
		InterFragGap:      time.Millisecond,
		ReassemblyTimeout: 5 * time.Second,
		TxTurnaround:      DefaultTxTurnaround,
	}
}

// DefaultTxTurnaround is the receive-to-transmit turnaround assumed when
// Params.TxTurnaround is zero.
const DefaultTxTurnaround = time.Millisecond

// Broadcast is the link-layer broadcast address.
const Broadcast uint32 = 0xFFFFFFFF

// fragment header layout: dst(2) src(2) seq(2) idx(1) count(1). Node IDs
// are 16-bit on the air (the paper's radios used small ephemeral
// identifiers); the 32-bit broadcast address maps to 0xFFFF.
const fragHeaderSize = 8

// wireBroadcast is the 16-bit on-air broadcast address.
const wireBroadcast uint16 = 0xFFFF

// toWireID narrows a node ID for the air. IDs above 16 bits are a
// configuration error.
func toWireID(id uint32) uint16 {
	if id == Broadcast {
		return wireBroadcast
	}
	if id >= uint32(wireBroadcast) {
		panic(fmt.Sprintf("mac: node id %d exceeds the 16-bit air format", id))
	}
	return uint16(id)
}

// fromWireID widens an on-air ID.
func fromWireID(id uint16) uint32 {
	if id == wireBroadcast {
		return Broadcast
	}
	return uint32(id)
}

// Handler receives reassembled messages.
type Handler func(from uint32, payload []byte)

// Errors returned by Send.
var (
	ErrTooLarge  = errors.New("mac: payload exceeds MaxPayload")
	ErrQueueFull = errors.New("mac: transmit queue full")
	ErrDetached  = errors.New("mac: node is detached (crashed)")
)

// Stats counts MAC activity.
type Stats struct {
	MessagesQueued    int
	MessagesSent      int // all fragments transmitted
	MessagesDropped   int // queue overflow or backoff exhaustion
	MessagesDelivered int // reassembled and passed up
	FragmentsSent     int
	FragmentsReceived int
	Backoffs          int
	BackoffTime       time.Duration // cumulative carrier-sense backoff delay
	ReassemblyExpired int
	SleepDrops        int // frames missed because the radio was asleep
	SleepDeferrals    int // transmissions postponed to an active window
}

// Mac is one node's link layer instance.
type Mac struct {
	env     sim.Env
	tx      *radio.Transceiver
	params  Params
	handler Handler

	queue    []*outMsg
	sending  bool
	detached bool
	seq      uint16

	reasm map[reasmKey]*partial

	// backoffHist, when instrumented, observes every backoff wait (µs).
	backoffHist *telemetry.Histogram

	// spans and peek, when set via Trace, record flight-path span events
	// for sampled payloads without the MAC knowing the diffusion wire
	// format.
	spans *telemetry.SpanRing
	peek  func(payload []byte) (telemetry.Span, bool)

	Stats Stats
}

type outMsg struct {
	dst      uint32
	frags    [][]byte // pre-built frames including headers
	next     int
	attempts int
	// span is the trace-context template captured at enqueue time, so the
	// eventual tx (or drop) event carries the same flow and message ID.
	span   telemetry.Span
	traced bool
}

type reasmKey struct {
	src uint32
	seq uint16
}

type partial struct {
	frags   [][]byte
	have    int
	expires sim.Timer
}

// Attach creates a Mac for node id on the channel, delivering reassembled
// messages to h. env must be the node's own scheduling context (its
// sim.Port under the sharded kernel; a Scheduler works directly in unit
// tests).
func Attach(env sim.Env, ch *radio.Channel, id uint32, p Params, h Handler) *Mac {
	validate(p)
	m := &Mac{env: env, params: p, handler: h, reasm: map[reasmKey]*partial{}}
	m.tx = ch.Attach(id, m.onFrame)
	return m
}

func validate(p Params) {
	if p.FragmentPayload <= 0 || p.MaxPayload <= 0 || p.MaxAttempts <= 0 ||
		p.QueueLimit <= 0 || p.MaxBackoffSlots <= 0 || p.SlotTime <= 0 {
		panic(fmt.Sprintf("mac: invalid params %+v", p))
	}
	if p.DutyCycle < 0 {
		panic("mac: DutyCycle must be non-negative")
	}
}

// Turnaround returns the effective receive-to-transmit turnaround.
func (p Params) Turnaround() time.Duration {
	if p.TxTurnaround > 0 {
		return p.TxTurnaround
	}
	return DefaultTxTurnaround
}

// dutyCycled reports whether duty cycling is active.
func (m *Mac) dutyCycled() bool {
	return m.params.DutyCycle > 0 && m.params.DutyCycle < 1
}

// cyclePeriod returns the schedule period.
func (m *Mac) cyclePeriod() time.Duration {
	if m.params.CyclePeriod > 0 {
		return m.params.CyclePeriod
	}
	return 500 * time.Millisecond
}

// awake reports whether the radio is in its active window at time now.
func (m *Mac) awake(now time.Duration) bool {
	if !m.dutyCycled() {
		return true
	}
	period := m.cyclePeriod()
	phase := now % period
	return float64(phase) < m.params.DutyCycle*float64(period)
}

// activeRemaining returns how much of the current active window is left
// (zero while asleep).
func (m *Mac) activeRemaining(now time.Duration) time.Duration {
	if !m.dutyCycled() {
		return time.Duration(1<<62 - 1)
	}
	period := m.cyclePeriod()
	phase := now % period
	active := time.Duration(m.params.DutyCycle * float64(period))
	if phase >= active {
		return 0
	}
	return active - phase
}

// nextWake returns the start of the next active window.
func (m *Mac) nextWake(now time.Duration) time.Duration {
	period := m.cyclePeriod()
	return now - now%period + period
}

// ID returns the node's link-layer identifier.
func (m *Mac) ID() uint32 { return m.tx.ID() }

// Radio exposes the transceiver (for energy and traffic accounting).
func (m *Mac) Radio() *radio.Transceiver { return m.tx }

// Detach freezes the link layer for a crashed node: the transmit queue is
// dropped, pending reassembly state is discarded, and until Restart every
// Send errors and every incoming frame is ignored. The channel-level radio
// silence is the caller's job (radio.Channel.SetNodeDown); Detach makes
// sure no queued traffic survives the crash.
func (m *Mac) Detach() {
	if m.detached {
		return
	}
	m.detached = true
	m.Stats.MessagesDropped += len(m.queue)
	m.queue = nil
	m.sending = false
	for key, p := range m.reasm {
		p.expires.Cancel()
		delete(m.reasm, key)
	}
}

// Restart brings a detached link layer back up with an empty queue, as a
// freshly booted node's MAC would be. Restarting an attached MAC is a
// no-op.
func (m *Mac) Restart() { m.detached = false }

// Detached reports whether the MAC is currently detached.
func (m *Mac) Detached() bool { return m.detached }

// Send queues payload for dst (a neighbor ID or Broadcast). The message is
// fragmented; delivery is best-effort.
func (m *Mac) Send(dst uint32, payload []byte) error {
	if m.detached {
		return ErrDetached
	}
	if len(payload) > m.params.MaxPayload {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(payload), m.params.MaxPayload)
	}
	if len(m.queue) >= m.params.QueueLimit {
		m.Stats.MessagesDropped++
		return ErrQueueFull
	}
	m.seq++
	om := &outMsg{dst: dst, frags: m.fragment(dst, m.seq, payload)}
	if m.spans != nil && m.peek != nil {
		if sp, ok := m.peek(payload); ok {
			sp.At = m.env.Now()
			sp.Node = m.ID()
			sp.Peer = dst
			sp.Event = telemetry.SpanEnqueue
			sp.Layer = telemetry.SpanLayerMac
			om.span = sp
			om.traced = true
			m.spans.Record(sp)
		}
	}
	m.queue = append(m.queue, om)
	m.Stats.MessagesQueued++
	m.kick()
	return nil
}

// Trace enables flight-path span recording: peek extracts a span template
// (flow, hop count, message ID, class) from an encoded payload, returning
// false for unsampled payloads, and ring receives an enqueue event per
// sampled message admitted plus a tx event when its last fragment goes on
// the air (or a drop event when backoff exhaustion discards it).
func (m *Mac) Trace(ring *telemetry.SpanRing, peek func(payload []byte) (telemetry.Span, bool)) {
	m.spans = ring
	m.peek = peek
}

// fragment splits payload into framed fragments.
func (m *Mac) fragment(dst uint32, seq uint16, payload []byte) [][]byte {
	fp := m.params.FragmentPayload
	count := (len(payload) + fp - 1) / fp
	if count == 0 {
		count = 1 // empty payloads still occupy one fragment
	}
	frags := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo := i * fp
		hi := lo + fp
		if hi > len(payload) {
			hi = len(payload)
		}
		f := make([]byte, fragHeaderSize, fragHeaderSize+hi-lo)
		binary.BigEndian.PutUint16(f[0:], toWireID(dst))
		binary.BigEndian.PutUint16(f[2:], toWireID(m.ID()))
		binary.BigEndian.PutUint16(f[4:], seq)
		f[6] = byte(i)
		f[7] = byte(count)
		f = append(f, payload[lo:hi]...)
		frags = append(frags, f)
	}
	return frags
}

// kick starts the transmit pump if idle. The pump defers a random slot
// count before its first carrier-sense attempt: without this, neighbors
// that heard the same fragment end synchronize and collide in the
// inter-fragment gaps.
func (m *Mac) kick() {
	if m.sending || len(m.queue) == 0 {
		return
	}
	m.sending = true
	defer0 := time.Duration(m.env.Rand().Intn(4)) * m.params.SlotTime
	m.env.After(defer0, m.attempt)
}

// attempt tries to transmit the current fragment, backing off on carrier.
func (m *Mac) attempt() {
	if m.detached || len(m.queue) == 0 {
		m.sending = false
		return
	}
	cur := m.queue[0]
	if m.dutyCycled() {
		now := m.env.Now()
		needed := m.params.Turnaround() + m.airtimeOf(cur.frags[cur.next]) + m.params.InterFragGap
		if !m.awake(now) || m.activeRemaining(now) < needed {
			// Sleep (or not enough window left for the whole fragment):
			// defer to the next active window plus a small random offset
			// so deferred senders do not stampede at wake-up.
			m.Stats.SleepDeferrals++
			jitter := time.Duration(m.env.Rand().Intn(4)) * m.params.SlotTime
			m.env.After(m.nextWake(now)-now+jitter, m.attempt)
			return
		}
	}
	if m.tx.Busy() {
		cur.attempts++
		m.Stats.Backoffs++
		if cur.attempts > m.params.MaxAttempts {
			// Drop the whole message, as a primitive MAC would.
			m.queue = m.queue[1:]
			m.Stats.MessagesDropped++
			if cur.traced && m.spans != nil {
				sp := cur.span
				sp.At = m.env.Now()
				sp.Event = telemetry.SpanDrop
				sp.Reason = telemetry.DropLinkRefused
				m.spans.Record(sp)
			}
			m.env.After(0, m.attempt)
			return
		}
		// Binary-exponential-flavored backoff bounded by MaxBackoffSlots.
		window := 1 << uint(cur.attempts)
		if window > m.params.MaxBackoffSlots {
			window = m.params.MaxBackoffSlots
		}
		slots := 1 + m.env.Rand().Intn(window)
		wait := time.Duration(slots) * m.params.SlotTime
		m.Stats.BackoffTime += wait
		if m.backoffHist != nil {
			m.backoffHist.Observe(wait.Microseconds())
		}
		m.env.After(wait, m.attempt)
		return
	}
	// Carrier is clear: commit the transmission. After the turnaround the
	// fragment goes on the air regardless of what the channel does in the
	// meantime — the hardware cannot abort a committed send, and the
	// committed timestamp is what gives the sharded kernel its lookahead.
	m.env.AfterTx(m.params.Turnaround(), m.fire)
}

// fire puts the head fragment on the air (a committed transmission) and
// re-arms the pump after the airtime plus the inter-fragment gap.
func (m *Mac) fire() {
	if m.detached || len(m.queue) == 0 {
		// Crashed (or the queue was flushed) during the turnaround.
		m.sending = false
		return
	}
	if m.tx.Busy() {
		// Carrier appeared during the turnaround: the radio keeps sensing
		// right up to transmit start, so abort and take the normal
		// carrier-sense backoff path. Without this, two senders whose
		// pumps drift within one turnaround of each other would collide
		// every fragment forever.
		m.env.After(0, m.attempt)
		return
	}
	cur := m.queue[0]
	air := m.tx.Transmit(cur.frags[cur.next])
	m.Stats.FragmentsSent++
	cur.next++
	cur.attempts = 0
	if cur.next == len(cur.frags) {
		m.queue = m.queue[1:]
		m.Stats.MessagesSent++
		if cur.traced && m.spans != nil {
			sp := cur.span
			sp.At = m.env.Now()
			sp.Event = telemetry.SpanTx
			m.spans.Record(sp)
		}
	}
	m.env.After(air+m.params.InterFragGap, m.attempt)
}

// onFrame handles a frame from the radio.
func (m *Mac) onFrame(from uint32, frame []byte) {
	if m.detached {
		return // crashed nodes hear nothing
	}
	if len(frame) < fragHeaderSize {
		return // runt
	}
	if !m.awake(m.env.Now()) {
		m.Stats.SleepDrops++
		return // the radio was asleep when the frame finished arriving
	}
	dst := fromWireID(binary.BigEndian.Uint16(frame[0:]))
	src := fromWireID(binary.BigEndian.Uint16(frame[2:]))
	seq := binary.BigEndian.Uint16(frame[4:])
	idx := int(frame[6])
	count := int(frame[7])
	if dst != Broadcast && dst != m.ID() {
		return // unicast for someone else
	}
	if count == 0 || idx >= count {
		return // malformed
	}
	m.Stats.FragmentsReceived++
	key := reasmKey{src: src, seq: seq}
	p, ok := m.reasm[key]
	if !ok {
		p = &partial{frags: make([][]byte, count)}
		p.expires = m.env.After(m.params.ReassemblyTimeout, func() {
			if _, still := m.reasm[key]; still {
				delete(m.reasm, key)
				m.Stats.ReassemblyExpired++
			}
		})
		m.reasm[key] = p
	}
	if len(p.frags) != count {
		return // inconsistent fragment train; ignore
	}
	if p.frags[idx] != nil {
		return // duplicate fragment
	}
	p.frags[idx] = frame[fragHeaderSize:]
	p.have++
	if p.have < count {
		return
	}
	p.expires.Cancel()
	delete(m.reasm, key)
	var payload []byte
	for _, f := range p.frags {
		payload = append(payload, f...)
	}
	m.Stats.MessagesDelivered++
	if m.handler != nil {
		m.handler(src, payload)
	}
}

// airtimeOf estimates a frame's airtime via the transceiver's channel.
func (m *Mac) airtimeOf(frame []byte) time.Duration {
	return m.tx.Airtime(len(frame))
}

// QueueLen reports the number of queued messages (diagnostics).
func (m *Mac) QueueLen() int { return len(m.queue) }
