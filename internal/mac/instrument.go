package mac

import "diffusion/internal/telemetry"

// Instrument publishes the MAC's counters and live queue state on reg and
// attaches a backoff-delay histogram. The per-message hot path is
// unchanged apart from one nil-checked histogram observation per backoff.
func (m *Mac) Instrument(reg *telemetry.Registry) {
	m.backoffHist = reg.Histogram("mac.backoff_us")
	reg.AddCollector(func(emit func(string, float64)) {
		s := &m.Stats
		emit("mac.messages_queued", float64(s.MessagesQueued))
		emit("mac.messages_sent", float64(s.MessagesSent))
		emit("mac.messages_dropped", float64(s.MessagesDropped))
		emit("mac.messages_delivered", float64(s.MessagesDelivered))
		emit("mac.fragments_sent", float64(s.FragmentsSent))
		emit("mac.fragments_received", float64(s.FragmentsReceived))
		emit("mac.backoffs", float64(s.Backoffs))
		emit("mac.backoff_seconds", s.BackoffTime.Seconds())
		emit("mac.reassembly_expired", float64(s.ReassemblyExpired))
		emit("mac.sleep_drops", float64(s.SleepDrops))
		emit("mac.sleep_deferrals", float64(s.SleepDeferrals))
		emit("mac.queue_depth", float64(len(m.queue)))
		emit("mac.reassembly_pending", float64(len(m.reasm)))
	})
}
