package mac

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"diffusion/internal/radio"
	"diffusion/internal/sim"
	"diffusion/internal/topo"
)

type rxLog struct {
	from     []uint32
	payloads [][]byte
}

func (r *rxLog) handler() Handler {
	return func(from uint32, p []byte) {
		r.from = append(r.from, from)
		cp := make([]byte, len(p))
		copy(cp, p)
		r.payloads = append(r.payloads, cp)
	}
}

// twoNodes builds a 2-node link with the given channel params.
func twoNodes(seed int64, rp radio.Params) (*sim.Scheduler, *Mac, *Mac, *rxLog, *rxLog) {
	s := sim.New(seed)
	ch := radio.NewChannel(s, topo.Line(2, 5), rp)
	l1, l2 := &rxLog{}, &rxLog{}
	m1 := Attach(s, ch, 1, DefaultParams(), l1.handler())
	m2 := Attach(s, ch, 2, DefaultParams(), l2.handler())
	return s, m1, m2, l1, l2
}

func TestSingleFragmentDelivery(t *testing.T) {
	s, m1, _, _, l2 := twoNodes(1, radio.PerfectParams())
	payload := []byte("short")
	if err := m1.Send(Broadcast, payload); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(l2.payloads) != 1 || !bytes.Equal(l2.payloads[0], payload) {
		t.Fatalf("delivery: %v", l2.payloads)
	}
	if l2.from[0] != 1 {
		t.Errorf("source id = %d", l2.from[0])
	}
	if m1.Stats.FragmentsSent != 1 {
		t.Errorf("short payload should be one fragment: %+v", m1.Stats)
	}
}

func TestFragmentationAndReassembly(t *testing.T) {
	s, m1, _, _, l2 := twoNodes(1, radio.PerfectParams())
	payload := make([]byte, 112) // the paper's event size
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := m1.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// 112 bytes / 27 per fragment = 5 fragments.
	if m1.Stats.FragmentsSent != 5 {
		t.Errorf("fragments sent = %d, want 5", m1.Stats.FragmentsSent)
	}
	if len(l2.payloads) != 1 || !bytes.Equal(l2.payloads[0], payload) {
		t.Fatalf("reassembly failed: %d messages", len(l2.payloads))
	}
}

func TestEmptyPayload(t *testing.T) {
	s, m1, _, _, l2 := twoNodes(1, radio.PerfectParams())
	if err := m1.Send(Broadcast, nil); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(l2.payloads) != 1 || len(l2.payloads[0]) != 0 {
		t.Fatalf("empty payload should still deliver: %v", l2.payloads)
	}
}

func TestUnicastFiltering(t *testing.T) {
	s := sim.New(1)
	ch := radio.NewChannel(s, topo.Line(3, 5), radio.PerfectParams())
	l2, l3 := &rxLog{}, &rxLog{}
	m1 := Attach(s, ch, 1, DefaultParams(), nil)
	Attach(s, ch, 2, DefaultParams(), l2.handler())
	Attach(s, ch, 3, DefaultParams(), l3.handler())
	m1.Send(2, []byte("for-two"))
	s.Run()
	if len(l2.payloads) != 1 {
		t.Error("addressed node must receive")
	}
	if len(l3.payloads) != 0 {
		t.Error("overhearing node must drop unicast for another")
	}
}

func TestBroadcastReachesAll(t *testing.T) {
	s := sim.New(1)
	ch := radio.NewChannel(s, topo.Line(3, 5), radio.PerfectParams())
	l2, l3 := &rxLog{}, &rxLog{}
	m1 := Attach(s, ch, 1, DefaultParams(), nil)
	Attach(s, ch, 2, DefaultParams(), l2.handler())
	Attach(s, ch, 3, DefaultParams(), l3.handler())
	m1.Send(Broadcast, []byte("all"))
	s.Run()
	// Node 3 is 10m from node 1: in range.
	if len(l2.payloads) != 1 || len(l3.payloads) != 1 {
		t.Errorf("broadcast delivery: %d, %d", len(l2.payloads), len(l3.payloads))
	}
}

func TestLostFragmentLosesWholeMessage(t *testing.T) {
	// With heavy loss, partial fragment trains must never surface as
	// corrupted messages: either the exact payload arrives or nothing.
	p := radio.PerfectParams()
	p.BaseLoss = 0.3
	delivered, complete := 0, 0
	payload := make([]byte, 112)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	for seed := int64(0); seed < 100; seed++ {
		s, m1, _, _, l2 := twoNodes(seed, p)
		m1.Send(Broadcast, payload)
		s.Run()
		delivered += len(l2.payloads)
		for _, got := range l2.payloads {
			if bytes.Equal(got, payload) {
				complete++
			}
		}
	}
	if delivered != complete {
		t.Errorf("%d delivered but only %d intact", delivered, complete)
	}
	if delivered == 0 || delivered == 100 {
		t.Errorf("with 30%% fragment loss over 5 fragments, delivery should be partial: %d/100", delivered)
	}
	// Expected intact probability: 0.7^5 ≈ 17%.
	if delivered > 60 {
		t.Errorf("delivery %d/100 too high for per-fragment loss", delivered)
	}
}

func TestCarrierSenseDefersAndDelivers(t *testing.T) {
	// Two senders in range of each other: carrier sense should serialize
	// them so both messages deliver to the third node.
	s := sim.New(5)
	ch := radio.NewChannel(s, topo.New("t"), radio.PerfectParams())
	_ = ch
	tp := topo.New("triangle")
	tp.Add(topo.Node{ID: 1, X: 0})
	tp.Add(topo.Node{ID: 2, X: 5})
	tp.Add(topo.Node{ID: 3, X: 2.5, Y: 4})
	s = sim.New(5)
	ch = radio.NewChannel(s, tp, radio.PerfectParams())
	l3 := &rxLog{}
	m1 := Attach(s, ch, 1, DefaultParams(), nil)
	m2 := Attach(s, ch, 2, DefaultParams(), nil)
	Attach(s, ch, 3, DefaultParams(), l3.handler())
	// Start m2 mid-way through m1's first fragment: m2 must defer.
	m1.Send(Broadcast, make([]byte, 100))
	s.After(5*time.Millisecond, func() { m2.Send(Broadcast, make([]byte, 100)) })
	s.Run()
	if len(l3.payloads) != 2 {
		t.Errorf("carrier sense should let both messages through, got %d (backoffs=%d)",
			len(l3.payloads), m2.Stats.Backoffs)
	}
	if m2.Stats.Backoffs == 0 {
		t.Error("second sender should have backed off at least once")
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	// Nodes 1 and 3 cannot hear each other (20m apart) but both reach 2:
	// simultaneous sends must collide at 2 for at least some seeds.
	collided := 0
	for seed := int64(0); seed < 30; seed++ {
		s := sim.New(seed)
		ch := radio.NewChannel(s, topo.Line(3, 10), radio.PerfectParams())
		l2 := &rxLog{}
		m1 := Attach(s, ch, 1, DefaultParams(), nil)
		Attach(s, ch, 2, DefaultParams(), l2.handler())
		m3 := Attach(s, ch, 3, DefaultParams(), nil)
		m1.Send(Broadcast, make([]byte, 100))
		m3.Send(Broadcast, make([]byte, 100))
		s.Run()
		if len(l2.payloads) < 2 {
			collided++
		}
	}
	if collided == 0 {
		t.Error("hidden terminals should cause losses at the shared receiver")
	}
}

func TestQueueOverflow(t *testing.T) {
	s, m1, _, _, _ := twoNodes(1, radio.PerfectParams())
	var err error
	for i := 0; i <= DefaultParams().QueueLimit; i++ {
		err = m1.Send(Broadcast, make([]byte, 200))
	}
	if !errors.Is(err, ErrQueueFull) {
		t.Errorf("queue overflow should return ErrQueueFull, got %v", err)
	}
	if m1.Stats.MessagesDropped == 0 {
		t.Error("drop must be counted")
	}
	s.Run()
}

func TestTooLarge(t *testing.T) {
	_, m1, _, _, _ := twoNodes(1, radio.PerfectParams())
	if err := m1.Send(Broadcast, make([]byte, 4096)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized payload: %v", err)
	}
}

func TestReassemblyTimeout(t *testing.T) {
	// Lose fragments forever: partial state must expire, not leak.
	p := radio.PerfectParams()
	p.BaseLoss = 0.5
	s, m1, m2, _, _ := twoNodes(3, p)
	for i := 0; i < 10; i++ {
		d := time.Duration(i) * 2 * time.Second
		s.After(d, func() { m1.Send(Broadcast, make([]byte, 200)) })
	}
	s.RunUntil(2 * time.Minute)
	if len(m2.reasm) != 0 {
		t.Errorf("%d partial messages leaked", len(m2.reasm))
	}
	if m2.Stats.ReassemblyExpired == 0 {
		t.Error("expected some reassembly expirations under 50% loss")
	}
}

func TestBackoffExhaustionDrops(t *testing.T) {
	// Jam the channel: node 3 transmits long frames continuously so node
	// 1's carrier sense never clears.
	s := sim.New(7)
	tp := topo.Line(2, 5)
	ch := radio.NewChannel(s, tp, radio.PerfectParams())
	m1 := Attach(s, ch, 1, DefaultParams(), nil)
	jammer := ch.Attach(2, nil)
	var jam func()
	jam = func() {
		if s.Now() < 30*time.Second {
			air := jammer.Transmit(make([]byte, 200))
			s.After(air, jam)
		}
	}
	jam()
	s.After(time.Second, func() { m1.Send(Broadcast, []byte("x")) })
	s.RunUntil(time.Minute)
	if m1.Stats.MessagesDropped != 1 {
		t.Errorf("jammed sender should eventually drop: %+v", m1.Stats)
	}
}

func TestQuickReassemblyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64, n uint16) bool {
		size := int(n) % 900
		payload := make([]byte, size)
		r := rand.New(rand.NewSource(seed))
		r.Read(payload)
		s, m1, _, _, l2 := twoNodes(seed, radio.PerfectParams())
		if m1.Send(Broadcast, payload) != nil {
			return false
		}
		s.Run()
		return len(l2.payloads) == 1 && bytes.Equal(l2.payloads[0], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid params must panic")
		}
	}()
	s := sim.New(1)
	ch := radio.NewChannel(s, topo.Line(2, 5), radio.PerfectParams())
	Attach(s, ch, 1, Params{}, nil)
}

func TestDetachDropsQueueAndRejectsSends(t *testing.T) {
	s, m1, _, _, l2 := twoNodes(40, radio.PerfectParams())
	// Queue several multi-fragment messages, then detach mid-flight.
	for i := 0; i < 4; i++ {
		if err := m1.Send(Broadcast, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	m1.Detach()
	if !m1.Detached() {
		t.Error("Detached() must report true")
	}
	if err := m1.Send(Broadcast, []byte("x")); !errors.Is(err, ErrDetached) {
		t.Errorf("Send after Detach: err = %v, want ErrDetached", err)
	}
	if m1.Stats.MessagesDropped == 0 {
		t.Error("detaching must count the queued messages as dropped")
	}
	s.RunUntil(s.Now() + time.Minute)
	if len(l2.payloads) != 0 {
		t.Errorf("detached MAC delivered %d messages", len(l2.payloads))
	}
}

func TestDetachDropsReassemblyState(t *testing.T) {
	// Detach the RECEIVER mid-reassembly: the partial message must be
	// discarded, and fragments arriving after a restart must not resurrect
	// it (the message ID restarts stale).
	s, m1, m2, _, l2 := twoNodes(41, radio.PerfectParams())
	if err := m1.Send(Broadcast, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	// Let the first fragments land, then crash the receiver.
	s.RunUntil(s.Now() + 60*time.Millisecond)
	m2.Detach()
	m2.Restart()
	s.RunUntil(s.Now() + time.Minute)
	if len(l2.payloads) != 0 {
		t.Errorf("reassembly across a crash delivered %v", l2.payloads)
	}
}

func TestRestartResumesService(t *testing.T) {
	s, m1, m2, _, l2 := twoNodes(42, radio.PerfectParams())
	m2.Detach()
	m1.Send(Broadcast, []byte("lost"))
	s.RunUntil(s.Now() + time.Second)
	m2.Restart()
	if m2.Detached() {
		t.Error("Detached() must report false after Restart")
	}
	m1.Send(Broadcast, []byte("heard"))
	s.RunUntil(s.Now() + time.Second)
	if len(l2.payloads) != 1 || !bytes.Equal(l2.payloads[0], []byte("heard")) {
		t.Errorf("post-restart delivery: %v", l2.payloads)
	}
	// The restarted MAC can also send again.
	m2.Detach()
	m2.Restart()
	if err := m2.Send(Broadcast, []byte("back")); err != nil {
		t.Errorf("Send after Restart: %v", err)
	}
}
