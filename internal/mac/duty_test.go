package mac

import (
	"testing"
	"time"

	"diffusion/internal/radio"
	"diffusion/internal/sim"
	"diffusion/internal/topo"
)

// dutyPair builds two nodes whose MACs duty-cycle with the given fraction.
func dutyPair(seed int64, duty float64) (*sim.Scheduler, *Mac, *Mac, *rxLog) {
	s := sim.New(seed)
	ch := radio.NewChannel(s, topo.Line(2, 5), radio.PerfectParams())
	p := DefaultParams()
	p.DutyCycle = duty
	p.CyclePeriod = 500 * time.Millisecond
	l2 := &rxLog{}
	m1 := Attach(s, ch, 1, p, nil)
	m2 := Attach(s, ch, 2, p, l2.handler())
	return s, m1, m2, l2
}

func TestDutyCycleDelivers(t *testing.T) {
	// With a shared schedule, messages still deliver: senders defer to
	// active windows where the receiver is listening.
	s, m1, m2, l2 := dutyPair(1, 0.2)
	for i := 0; i < 20; i++ {
		d := time.Duration(i) * time.Second
		s.After(d, func() { m1.Send(Broadcast, make([]byte, 100)) })
	}
	s.RunUntil(time.Minute)
	if len(l2.payloads) < 18 {
		t.Errorf("duty-cycled delivery %d/20; schedule alignment broken", len(l2.payloads))
	}
	if m1.Stats.SleepDeferrals == 0 {
		t.Error("some sends should have deferred to active windows")
	}
	if m2.Stats.SleepDrops != 0 {
		t.Errorf("aligned schedules should not drop at the receiver: %d", m2.Stats.SleepDrops)
	}
}

func TestDutyCycleWindowFit(t *testing.T) {
	// A fragment near the end of the active window defers rather than
	// straddling into the receiver's sleep.
	s, m1, _, l2 := dutyPair(2, 0.1) // 50ms active, ~26ms per fragment
	m1.Send(Broadcast, make([]byte, 200))
	s.RunUntil(30 * time.Second)
	if len(l2.payloads) != 1 {
		t.Fatalf("long message should deliver across windows: %d", len(l2.payloads))
	}
	if m1.Stats.SleepDeferrals == 0 {
		t.Error("an 8-fragment message cannot fit one 50ms window without deferrals")
	}
}

func TestDutyCycleZeroAndFullAreOff(t *testing.T) {
	for _, duty := range []float64{0, 1} {
		s, m1, _, l2 := dutyPair(3, duty)
		m1.Send(Broadcast, make([]byte, 60))
		s.RunUntil(time.Second)
		if len(l2.payloads) != 1 {
			t.Errorf("duty=%v should behave as always-on", duty)
		}
		if m1.Stats.SleepDeferrals != 0 {
			t.Errorf("duty=%v must not defer", duty)
		}
	}
}

func TestUnsynchronizedSenderLosesFrames(t *testing.T) {
	// A sender that ignores the schedule (duty cycling off) talking to a
	// duty-cycled receiver loses the frames that land in sleep.
	s := sim.New(4)
	ch := radio.NewChannel(s, topo.Line(2, 5), radio.PerfectParams())
	pOn := DefaultParams()
	pOff := DefaultParams()
	pOn.DutyCycle = 0.2
	pOn.CyclePeriod = 500 * time.Millisecond
	l2 := &rxLog{}
	m1 := Attach(s, ch, 1, pOff, nil)
	m2 := Attach(s, ch, 2, pOn, l2.handler())
	for i := 0; i < 50; i++ {
		d := time.Duration(i)*time.Second + time.Duration(i*37)*time.Millisecond
		s.After(d, func() { m1.Send(Broadcast, make([]byte, 20)) })
	}
	s.RunUntil(2 * time.Minute)
	if m2.Stats.SleepDrops == 0 {
		t.Error("an unsynchronized sender should hit the receiver's sleep")
	}
	if len(l2.payloads) == 0 {
		t.Error("some frames should land in active windows")
	}
	if len(l2.payloads) >= 50 {
		t.Error("delivery should be partial")
	}
}

func TestNegativeDutyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative duty cycle must panic")
		}
	}()
	s := sim.New(5)
	ch := radio.NewChannel(s, topo.Line(2, 5), radio.PerfectParams())
	p := DefaultParams()
	p.DutyCycle = -0.5
	Attach(s, ch, 1, p, nil)
}
