// Package congestion closes the loop the paper says diffusion lacks
// (section 6.4: "the diffusion applications we currently use operate in an
// open loop; feedback and congestion control are needed").
//
// A sink-side Feedback agent counts the distinct events it receives per
// window and periodically publishes a feedback report on a companion
// channel. A source-side Controller subscribes to those reports, compares
// them with what it offered in the same window, and adapts its admission
// rate AIMD-style: heavy loss halves the rate (the source decimates its
// event stream), light loss restores it additively. The mechanism is
// application-level — pure diffusion flows, no core changes — exactly the
// kind of integrated, application-specific processing the paper's
// architecture is built for.
package congestion

import (
	"fmt"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// feedback channel naming: (type IS feedback, task IS <flow>).
const typeFeedback = "feedback"

func feedbackAttrs(flow string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.IS, typeFeedback),
		attr.StringAttr(attr.KeyTask, attr.IS, flow),
	}
}

func feedbackInterest(flow string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.EQ, typeFeedback),
		attr.StringAttr(attr.KeyTask, attr.EQ, flow),
	}
}

// Feedback is the sink-side reporter for one flow.
type Feedback struct {
	node   *core.Node
	clock  sim.Clock
	flow   string
	window time.Duration
	pub    core.PublicationHandle
	timer  sim.Timer
	seen   map[int32]bool
	epoch  int32
	closed bool

	// Reports counts feedback messages sent.
	Reports int
}

// FeedbackConfig configures NewFeedback.
type FeedbackConfig struct {
	Node  *core.Node
	Clock sim.Clock
	// Flow names the data flow being controlled; sources and sinks must
	// agree on it (typically the task attribute value).
	Flow string
	// Window is the reporting period (default 30 s).
	Window time.Duration
}

// NewFeedback starts sink-side reporting. The application must call Saw
// for every distinct event it receives (typically from its subscription
// callback).
func NewFeedback(cfg FeedbackConfig) *Feedback {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Flow == "" {
		panic("congestion: FeedbackConfig requires Node, Clock and Flow")
	}
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	f := &Feedback{
		node:   cfg.Node,
		clock:  cfg.Clock,
		flow:   cfg.Flow,
		window: cfg.Window,
		seen:   map[int32]bool{},
	}
	f.pub = cfg.Node.Publish(feedbackAttrs(cfg.Flow))
	f.arm()
	return f
}

// Close stops reporting.
func (f *Feedback) Close() {
	f.closed = true
	if f.timer != nil {
		f.timer.Cancel()
	}
	_ = f.node.Unpublish(f.pub)
}

// Saw records one received event by its sequence number.
func (f *Feedback) Saw(seq int32) {
	f.seen[seq] = true
}

func (f *Feedback) arm() {
	f.timer = f.clock.After(f.window, f.report)
}

func (f *Feedback) report() {
	if f.closed {
		return
	}
	f.epoch++
	count := int32(len(f.seen))
	f.seen = map[int32]bool{}
	f.Reports++
	// Feedback floods: it is small, rare, and must survive the very
	// congestion it reports. Reports deliberately carry no sequence
	// attribute, so event-identity filters (suppression) never mistake
	// them for the flow's own events.
	_ = f.node.SendExploratory(f.pub, attr.Vec{
		attr.Int32Attr(attr.KeyCount, attr.IS, count),
	})
	f.arm()
}

// Controller is the source-side rate adapter for one flow.
type Controller struct {
	node  *core.Node
	clock sim.Clock
	flow  string
	sub   core.SubscriptionHandle

	window      time.Duration
	windowStart time.Duration
	offered     int // app events offered this window
	admitted    int // events actually sent this window

	// rate is the admitted fraction in [MinRate, 1], adapted AIMD-style.
	rate     float64
	minRate  float64
	backoff  float64 // multiplicative decrease factor
	increase float64 // additive increase per good report
	highLoss float64 // loss ratio that triggers decrease
	lowLoss  float64 // loss ratio under which rate recovers
	carry    float64 // fractional admission accumulator

	// Offered, Admitted and Decimated count app events over the whole
	// run; Decreases and Increases count rate adaptations.
	Offered, Admitted, Decimated int
	Decreases, Increases         int
}

// ControllerConfig configures NewController.
type ControllerConfig struct {
	Node  *core.Node
	Clock sim.Clock
	// Flow must match the sink's Feedback flow.
	Flow string
	// Window should match the sink's reporting window (default 30 s).
	Window time.Duration
	// MinRate floors the admitted fraction (default 0.1).
	MinRate float64
	// HighLoss and LowLoss are the AIMD thresholds (defaults 0.4/0.15).
	HighLoss, LowLoss float64
}

// NewController starts source-side adaptation. The application routes its
// sends through Admit.
func NewController(cfg ControllerConfig) *Controller {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Flow == "" {
		panic("congestion: ControllerConfig requires Node, Clock and Flow")
	}
	if cfg.Window <= 0 {
		cfg.Window = 30 * time.Second
	}
	if cfg.MinRate <= 0 {
		cfg.MinRate = 0.1
	}
	if cfg.HighLoss <= 0 {
		cfg.HighLoss = 0.4
	}
	if cfg.LowLoss <= 0 {
		cfg.LowLoss = 0.15
	}
	c := &Controller{
		node:     cfg.Node,
		clock:    cfg.Clock,
		flow:     cfg.Flow,
		window:   cfg.Window,
		rate:     1,
		minRate:  cfg.MinRate,
		backoff:  0.5,
		increase: 0.1,
		highLoss: cfg.HighLoss,
		lowLoss:  cfg.LowLoss,
	}
	c.sub = cfg.Node.Subscribe(feedbackInterest(cfg.Flow), c.onFeedback)
	return c
}

// Close stops adaptation.
func (c *Controller) Close() { _ = c.node.Unsubscribe(c.sub) }

// Rate returns the current admitted fraction.
func (c *Controller) Rate() float64 { return c.rate }

// Admit decides whether the next application event should be sent. The
// application calls it once per event and sends only when it returns true;
// under backoff the stream is decimated evenly rather than paused.
func (c *Controller) Admit() bool {
	c.Offered++
	c.offered++
	c.carry += c.rate
	if c.carry >= 1 {
		c.carry--
		c.Admitted++
		c.admitted++
		return true
	}
	c.Decimated++
	return false
}

func (c *Controller) onFeedback(m *message.Message) {
	count, ok := m.Attrs.FindActual(attr.KeyCount)
	if !ok {
		return
	}
	received := float64(count.Val.Int32())
	sent := float64(c.admitted)
	c.admitted = 0
	c.offered = 0
	if sent <= 0 {
		return // nothing offered in the window; no signal
	}
	loss := 1 - received/sent
	if loss < 0 {
		loss = 0 // multiple sinks or window skew can over-count
	}
	switch {
	case loss >= c.highLoss:
		c.rate *= c.backoff
		if c.rate < c.minRate {
			c.rate = c.minRate
		}
		c.Decreases++
	case loss <= c.lowLoss && c.rate < 1:
		c.rate += c.increase
		if c.rate > 1 {
			c.rate = 1
		}
		c.Increases++
	}
}

// String renders controller state.
func (c *Controller) String() string {
	return fmt.Sprintf("congestion: flow=%q rate=%.2f offered=%d admitted=%d (-%d +%d)",
		c.flow, c.rate, c.Offered, c.Admitted, c.Decreases, c.Increases)
}
