package congestion

import "diffusion/internal/telemetry"

// Instrument publishes the sink-side feedback counters on reg.
func (f *Feedback) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("congestion.feedback_reports", float64(f.Reports))
	})
}

// Instrument publishes the source-side controller's counters and live
// throttle state on reg.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("congestion.offered", float64(c.Offered))
		emit("congestion.admitted", float64(c.Admitted))
		emit("congestion.decimated", float64(c.Decimated))
		emit("congestion.decreases", float64(c.Decreases))
		emit("congestion.increases", float64(c.Increases))
		emit("congestion.rate", c.rate)
	})
}
