package congestion

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

func flowInterest() attr.Vec {
	return attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "telemetry")}
}

func flowData() attr.Vec {
	return attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "telemetry")}
}

func TestControllerAdaptsToLoss(t *testing.T) {
	// Drive the controller directly with synthetic feedback: heavy loss
	// must halve the rate, sustained good windows restore it.
	tn := nettest.New(1)
	n := tn.AddNode(1, nil)
	c := NewController(ControllerConfig{Node: n, Clock: tn.Sched, Flow: "telemetry"})

	feed := func(sent int, received int32) {
		for i := 0; i < sent; i++ {
			c.Admit()
		}
		c.onFeedback(&message.Message{Attrs: attr.Vec{
			attr.Int32Attr(attr.KeyCount, attr.IS, received),
		}})
	}

	if c.Rate() != 1 {
		t.Fatal("initial rate must be 1")
	}
	feed(10, 2) // 80% loss
	if c.Rate() != 0.5 {
		t.Errorf("after heavy loss rate = %v, want 0.5", c.Rate())
	}
	feed(10, 1) // heavy loss again (5 admitted, 1 received)
	if c.Rate() != 0.25 {
		t.Errorf("rate = %v, want 0.25", c.Rate())
	}
	// Sustained clean windows recover additively.
	for i := 0; i < 10; i++ {
		sent := int(10 * c.Rate())
		feed(10, int32(sent))
	}
	if c.Rate() < 0.95 {
		t.Errorf("rate should recover to ~1, got %v", c.Rate())
	}
	// Floor.
	for i := 0; i < 10; i++ {
		feed(10, 0)
	}
	if c.Rate() != 0.1 {
		t.Errorf("rate must floor at MinRate: %v", c.Rate())
	}
}

func TestAdmitDecimatesEvenly(t *testing.T) {
	tn := nettest.New(2)
	n := tn.AddNode(1, nil)
	c := NewController(ControllerConfig{Node: n, Clock: tn.Sched, Flow: "telemetry"})
	c.rate = 0.25
	admitted := 0
	for i := 0; i < 100; i++ {
		if c.Admit() {
			admitted++
		}
	}
	if admitted != 25 {
		t.Errorf("rate 0.25 over 100 events admitted %d", admitted)
	}
	if c.Decimated != 75 {
		t.Errorf("decimated = %d", c.Decimated)
	}
}

func TestFeedbackLoopOverNetwork(t *testing.T) {
	// End to end on a lossy line: the sink's feedback reports reach the
	// source and the loss signal pushes the rate down.
	tn := nettest.New(3)
	nodes := tn.Line(3)
	tn.LossProb = 0.35 // brutal per-hop loss

	fb := NewFeedback(FeedbackConfig{
		Node:   nodes[0],
		Clock:  tn.Sched,
		Flow:   "telemetry",
		Window: 20 * time.Second,
	})
	nodes[0].Subscribe(flowInterest(), func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeySequence); ok {
			fb.Saw(a.Val.Int32())
		}
	})
	ctl := NewController(ControllerConfig{
		Node:   nodes[2],
		Clock:  tn.Sched,
		Flow:   "telemetry",
		Window: 20 * time.Second,
	})
	pub := nodes[2].Publish(flowData())
	seq := int32(0)
	tn.Sched.Every(2*time.Second, 2*time.Second, func() {
		seq++
		if ctl.Admit() {
			nodes[2].Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
		}
	})
	tn.Sched.RunUntil(10 * time.Minute)

	if fb.Reports == 0 {
		t.Fatal("sink never reported")
	}
	if ctl.Decreases == 0 {
		t.Errorf("35%% per-hop loss should trigger backoff: %v", ctl)
	}
	if ctl.Rate() >= 1 {
		t.Errorf("rate should have come down: %v", ctl)
	}
	if ctl.Decimated == 0 {
		t.Error("backoff should decimate the stream")
	}
}

func TestValidation(t *testing.T) {
	tn := nettest.New(9)
	n := tn.AddNode(1, nil)
	for name, fn := range map[string]func(){
		"feedback":   func() { NewFeedback(FeedbackConfig{Node: n, Clock: tn.Sched}) },
		"controller": func() { NewController(ControllerConfig{Node: n, Clock: tn.Sched}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s without flow must panic", name)
				}
			}()
			fn()
		}()
	}
}
