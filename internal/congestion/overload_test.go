package congestion_test

import (
	"testing"
	"time"

	"diffusion"
	"diffusion/internal/congestion"
	"diffusion/internal/core"
)

func TestClosedLoopImprovesOverload(t *testing.T) {
	// Overload the testbed radio (4 sources, one event per 1.5s each) and
	// compare goodput-efficiency with and without control: the controlled
	// system should deliver a clearly higher fraction of what it sends.
	run := func(controlled bool) (delivered, sent int) {
		net := diffusion.NewNetwork(diffusion.NetworkConfig{
			Seed:     7,
			Topology: diffusion.TestbedTopology(),
		})
		distinct := map[int32]bool{}
		var fb *congestion.Feedback
		sinkNode := net.Node(diffusion.TestbedSink)
		if controlled {
			fb = congestion.NewFeedback(congestion.FeedbackConfig{
				Node:  sinkNode.Node,
				Clock: net.Clock(),
				Flow:  "telemetry",
			})
		}
		sinkNode.Subscribe(flowInterestX(), func(m *diffusion.Message) {
			if a, ok := m.Attrs.FindActual(diffusion.KeySequence); ok {
				distinct[a.Val.Int32()] = true
				if fb != nil {
					fb.Saw(a.Val.Int32())
				}
			}
		})
		srcs := diffusion.TestbedSources()
		payload := make([]byte, 50)
		seq := int32(0)
		var ctls []*congestion.Controller
		var pubs []core.PublicationHandle
		var snodes []*diffusion.Node
		for _, id := range srcs {
			n := net.Node(id)
			snodes = append(snodes, n)
			pubs = append(pubs, n.Publish(flowDataX()))
			if controlled {
				ctls = append(ctls, congestion.NewController(congestion.ControllerConfig{
					Node:  n.Node,
					Clock: net.Clock(),
					Flow:  "telemetry",
				}))
			}
		}
		net.Every(1500*time.Millisecond, func() {
			seq++
			for i := range snodes {
				if controlled && !ctls[i].Admit() {
					continue
				}
				sent++
				snodes[i].Send(pubs[i], diffusion.Attributes{
					diffusion.Int32(diffusion.KeySequence, diffusion.IS, seq),
					diffusion.Blob(diffusion.KeyPayload, diffusion.IS, payload),
				})
			}
		})
		net.Run(20 * time.Minute)
		return len(distinct), sent
	}
	dc, sc := run(true)
	du, su := run(false)
	effC := float64(dc) / float64(sc)
	effU := float64(du) / float64(su)
	if effC <= effU {
		t.Errorf("closed loop should raise delivery efficiency: controlled %.2f (%d/%d) vs open %.2f (%d/%d)",
			effC, dc, sc, effU, du, su)
	}
	if dc == 0 {
		t.Error("controlled run must still deliver")
	}
}

func flowInterestX() diffusion.Attributes {
	return diffusion.Attributes{diffusion.String(diffusion.KeyTask, diffusion.EQ, "telemetry")}
}

func flowDataX() diffusion.Attributes {
	return diffusion.Attributes{diffusion.String(diffusion.KeyTask, diffusion.IS, "telemetry")}
}
