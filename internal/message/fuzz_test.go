package message

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics throws random byte soup at the wire decoder:
// link layers deliver whatever survives the radio, and the diffusion core
// must shrug off anything that is not a well-formed message.
func TestUnmarshalNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n)%512)
		r.Read(b)
		m, err := Unmarshal(b)
		// Either a clean error or a structurally valid message.
		if err != nil {
			return m == nil
		}
		return m.Class.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestBitFlippedMessages corrupts valid encodings bit by bit: decoding
// must never panic, and any message that does decode must be structurally
// valid.
func TestBitFlippedMessages(t *testing.T) {
	base := sample().Marshal()
	for i := 0; i < len(base); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), base...)
			mut[i] ^= 1 << bit
			m, err := Unmarshal(mut)
			if err == nil && !m.Class.Valid() {
				t.Fatalf("byte %d bit %d: invalid class decoded", i, bit)
			}
		}
	}
}

// TestTruncationsNeverPanic decodes every prefix of a valid encoding.
func TestTruncationsNeverPanic(t *testing.T) {
	base := sample().Marshal()
	for i := 0; i <= len(base); i++ {
		_, _ = Unmarshal(base[:i])
	}
}
