// Package message defines the diffusion message: a typed header plus an
// attribute vector, with a compact binary wire format. Following the paper,
// messages are identified for duplicate suppression by a (random origin id,
// packet number) pair rather than by any global node address, and carry only
// hop-local previous/next identifiers ("nodes do not need to have globally
// unique identifiers ... nodes, however, do need to distinguish between
// neighbors").
package message

import (
	"encoding/binary"
	"errors"
	"fmt"

	"diffusion/internal/attr"
)

// Class is the diffusion message type.
type Class uint8

// Message classes. Exploratory data is flooded along all gradients; plain
// data travels only on reinforced gradients (section 3.1).
const (
	Interest Class = iota
	Data
	ExploratoryData
	PositiveReinforcement
	NegativeReinforcement
	// CustodyAck confirms hop-by-hop custody transfer in store-and-carry
	// mode: the receiver now vouches for the message named by ID, so the
	// sender may release its own custody. It carries no attributes and is
	// never forwarded.
	CustodyAck

	numClasses
)

// NumClasses is the number of defined message classes, for sizing
// per-class counters.
const NumClasses = int(numClasses)

// String returns a short name for the class.
func (c Class) String() string {
	switch c {
	case Interest:
		return "INTEREST"
	case Data:
		return "DATA"
	case ExploratoryData:
		return "EXPLORATORY_DATA"
	case PositiveReinforcement:
		return "POSITIVE_REINFORCEMENT"
	case NegativeReinforcement:
		return "NEGATIVE_REINFORCEMENT"
	case CustodyAck:
		return "CUSTODY_ACK"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Valid reports whether c is a defined class.
func (c Class) Valid() bool { return c < numClasses }

// NodeID identifies a neighbor at the link layer. IDs may be ephemeral (the
// paper cites Elson & Estrin's random transaction identifiers); they only
// need to distinguish neighbors.
type NodeID uint32

// Broadcast is the link-layer broadcast destination.
const Broadcast NodeID = 0xFFFFFFFF

// String renders the node ID, with the broadcast address spelled out.
func (n NodeID) String() string {
	if n == Broadcast {
		return "BCAST"
	}
	return fmt.Sprintf("n%d", uint32(n))
}

// ID identifies a message origination for duplicate suppression: RandID is
// a random 32-bit value chosen by the originating diffusion instance and
// PktNum a per-instance counter, mirroring the (rdm_id, pkt_num) pair in
// the SCADDS implementation.
type ID struct {
	RandID uint32
	PktNum uint32
}

// String renders the id.
func (id ID) String() string { return fmt.Sprintf("%08x:%d", id.RandID, id.PktNum) }

// Message is one diffusion message.
type Message struct {
	Class Class
	// ID identifies the origination for loop and duplicate suppression.
	ID ID
	// PrevHop is the link-layer sender of this transmission; NextHop is
	// the link-layer destination (Broadcast or a specific neighbor).
	PrevHop, NextHop NodeID
	// HopCount counts link-layer hops since origination.
	HopCount uint8
	// Flow is the sampled trace-context flow ID, zero for unsampled
	// messages. Sampled messages carry it on the wire (flagged by the high
	// bit of the class byte); unsampled messages encode byte-identically
	// to the pre-trace format.
	Flow uint16
	// Attrs is the attribute vector naming the message's data or interest.
	Attrs attr.Vec
}

// headerSize is the fixed wire header length in bytes.
const headerSize = 1 + 1 + 4 + 4 + 4 + 4

// flowFlag marks a class byte whose header is followed by a 16-bit trace
// flow ID. Class values stay below it, so pre-trace decoders that validate
// the raw byte reject sampled messages instead of misparsing them.
const flowFlag = 0x80

// Size returns the encoded size of the message in bytes. This is the
// quantity the Figure 8 experiment accounts ("bytes sent from all diffusion
// modules").
func (m *Message) Size() int {
	n := headerSize + m.Attrs.Size()
	if m.Flow != 0 {
		n += 2
	}
	return n
}

// Clone returns a copy of the message with a copied attribute vector, so
// filters can rewrite messages without aliasing.
func (m *Message) Clone() *Message {
	c := *m
	c.Attrs = m.Attrs.Clone()
	return &c
}

// Marshal returns the wire encoding of m.
func (m *Message) Marshal() []byte {
	b := make([]byte, 0, m.Size())
	cls := byte(m.Class)
	if m.Flow != 0 {
		cls |= flowFlag
	}
	b = append(b, cls, m.HopCount)
	b = binary.BigEndian.AppendUint32(b, m.ID.RandID)
	b = binary.BigEndian.AppendUint32(b, m.ID.PktNum)
	b = binary.BigEndian.AppendUint32(b, uint32(m.PrevHop))
	b = binary.BigEndian.AppendUint32(b, uint32(m.NextHop))
	if m.Flow != 0 {
		b = binary.BigEndian.AppendUint16(b, m.Flow)
	}
	return m.Attrs.AppendEncode(b)
}

// Unmarshal errors.
var (
	ErrShortHeader = errors.New("message: short header")
	ErrBadClass    = errors.New("message: invalid class")
)

// Unmarshal decodes a message from b.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerSize {
		return nil, ErrShortHeader
	}
	m := &Message{
		Class:    Class(b[0] &^ flowFlag),
		HopCount: b[1],
		ID: ID{
			RandID: binary.BigEndian.Uint32(b[2:]),
			PktNum: binary.BigEndian.Uint32(b[6:]),
		},
		PrevHop: NodeID(binary.BigEndian.Uint32(b[10:])),
		NextHop: NodeID(binary.BigEndian.Uint32(b[14:])),
	}
	if !m.Class.Valid() {
		return nil, fmt.Errorf("%w: %d", ErrBadClass, b[0])
	}
	rest := b[headerSize:]
	if b[0]&flowFlag != 0 {
		if len(rest) < 2 {
			return nil, ErrShortHeader
		}
		m.Flow = binary.BigEndian.Uint16(rest)
		rest = rest[2:]
	}
	v, _, err := attr.DecodeVec(rest)
	if err != nil {
		return nil, err
	}
	m.Attrs = v
	return m, nil
}

// PeekClass reads the class of an encoded message without decoding it,
// ignoring the trace-context flag bit. ok is false for an empty buffer.
func PeekClass(b []byte) (c Class, ok bool) {
	if len(b) == 0 {
		return 0, false
	}
	return Class(b[0] &^ flowFlag), true
}

// PeekID reads the origination ID of an encoded message without decoding
// it; the zero ID for buffers shorter than the fixed header.
func PeekID(b []byte) ID {
	if len(b) < headerSize {
		return ID{}
	}
	return ID{
		RandID: binary.BigEndian.Uint32(b[2:]),
		PktNum: binary.BigEndian.Uint32(b[6:]),
	}
}

// PeekTrace reads the trace context out of an encoded message without
// decoding it: the flow ID (zero when unsampled or when b is not a sampled
// message header) and the hop count. Link layers use it to stamp span
// events without parsing attribute vectors.
func PeekTrace(b []byte) (flow uint16, hop uint8) {
	if len(b) < headerSize+2 || b[0]&flowFlag == 0 {
		return 0, 0
	}
	return binary.BigEndian.Uint16(b[headerSize:]), b[1]
}

// IsData reports whether the message carries data (exploratory or not).
func (m *Message) IsData() bool {
	return m.Class == Data || m.Class == ExploratoryData
}

// String renders a compact diagnostic form.
func (m *Message) String() string {
	return fmt.Sprintf("%s id=%s %s->%s hops=%d %s",
		m.Class, m.ID, m.PrevHop, m.NextHop, m.HopCount, m.Attrs)
}
