package message

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"diffusion/internal/attr"
)

func sample() *Message {
	return &Message{
		Class:    ExploratoryData,
		ID:       ID{RandID: 0xDEADBEEF, PktNum: 42},
		PrevHop:  7,
		NextHop:  Broadcast,
		HopCount: 3,
		Attrs: attr.Vec{
			attr.ClassIsData(),
			attr.StringAttr(attr.KeyTask, IS_, "detectAnimal"),
			attr.Int32Attr(attr.KeySequence, IS_, 9),
		},
	}
}

// IS_ aliases attr.IS for brevity in fixtures.
const IS_ = attr.IS

func TestMarshalRoundTrip(t *testing.T) {
	m := sample()
	b := m.Marshal()
	if len(b) != m.Size() {
		t.Errorf("Size()=%d, encoding %d bytes", m.Size(), len(b))
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != m.Class || got.ID != m.ID || got.PrevHop != m.PrevHop ||
		got.NextHop != m.NextHop || got.HopCount != m.HopCount {
		t.Errorf("header mismatch: got %v want %v", got, m)
	}
	if !got.Attrs.Equal(m.Attrs) {
		t.Errorf("attrs mismatch: got %v want %v", got.Attrs, m.Attrs)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrShortHeader) {
		t.Errorf("nil: %v", err)
	}
	b := sample().Marshal()
	if _, err := Unmarshal(b[:headerSize-1]); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[0] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadClass) {
		t.Errorf("bad class: %v", err)
	}
	// Truncated attribute section.
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("truncated attrs should fail")
	}
}

func TestClone(t *testing.T) {
	m := sample()
	c := m.Clone()
	c.Attrs[0] = attr.ClassIsInterest()
	c.HopCount = 99
	if m.Attrs[0].Val.Int32() != attr.ClassData || m.HopCount == 99 {
		t.Error("Clone must not alias the original")
	}
}

func TestIsData(t *testing.T) {
	cases := map[Class]bool{
		Interest:              false,
		Data:                  true,
		ExploratoryData:       true,
		PositiveReinforcement: false,
		NegativeReinforcement: false,
	}
	for c, want := range cases {
		if (&Message{Class: c}).IsData() != want {
			t.Errorf("IsData(%v) != %v", c, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if Broadcast.String() != "BCAST" {
		t.Error("broadcast rendering")
	}
	if NodeID(3).String() != "n3" {
		t.Error("node rendering")
	}
	for c := Class(0); c.Valid(); c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if s := sample().String(); s == "" {
		t.Error("message String")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Class:    Class(r.Intn(int(numClasses))),
			ID:       ID{RandID: r.Uint32(), PktNum: r.Uint32()},
			PrevHop:  NodeID(r.Uint32()),
			NextHop:  NodeID(r.Uint32()),
			HopCount: uint8(r.Intn(256)),
		}
		for i := 0; i < r.Intn(8); i++ {
			m.Attrs = append(m.Attrs,
				attr.Int64Attr(attr.Key(r.Intn(20)+1), attr.Op(r.Intn(8)), r.Int63()))
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return got.Class == m.Class && got.ID == m.ID && got.PrevHop == m.PrevHop &&
			got.NextHop == m.NextHop && got.HopCount == m.HopCount && got.Attrs.Equal(m.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestPaperMessageSizes checks that a realistic event message lands near the
// paper's 112-byte events: the Figure 8 experiment pads with a payload blob.
func TestPaperMessageSizes(t *testing.T) {
	m := &Message{
		Class: Data,
		Attrs: attr.Vec{
			attr.ClassIsData(),
			attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
			attr.Int32Attr(attr.KeySequence, attr.IS, 1),
			attr.BlobAttr(attr.KeyPayload, attr.IS, make([]byte, 50)),
		},
	}
	if m.Size() < 90 || m.Size() > 130 {
		t.Errorf("event message size %dB, want near the paper's ~112B", m.Size())
	}
}

// TestFlowRoundTrip checks the sampled trace-context encoding: the flow ID
// survives the codec, adds exactly two bytes, and the unsampled encoding is
// byte-identical to the pre-trace wire format.
func TestFlowRoundTrip(t *testing.T) {
	m := sample()
	plain := m.Marshal()
	m.Flow = 0x1A2B
	b := m.Marshal()
	if len(b) != m.Size() || len(b) != len(plain)+2 {
		t.Errorf("sampled encoding %dB, want %dB (Size()=%d)", len(b), len(plain)+2, m.Size())
	}
	if b[0]&0x80 == 0 {
		t.Error("sampled message must set the class flag bit")
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow != m.Flow || got.Class != m.Class || got.HopCount != m.HopCount {
		t.Errorf("got flow=%#x class=%v hops=%d, want %#x %v %d",
			got.Flow, got.Class, got.HopCount, m.Flow, m.Class, m.HopCount)
	}
	if !got.Attrs.Equal(m.Attrs) {
		t.Errorf("attrs mismatch: %v vs %v", got.Attrs, m.Attrs)
	}

	// Unsampled stays byte-identical to the legacy layout.
	m.Flow = 0
	again := m.Marshal()
	if string(again) != string(plain) {
		t.Error("unsampled encoding changed")
	}
	legacy, err := Unmarshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Flow != 0 {
		t.Errorf("legacy message decoded with flow %#x", legacy.Flow)
	}
}

// TestFlowTruncated checks that a sampled header cut before its flow bytes
// errors instead of misreading attributes.
func TestFlowTruncated(t *testing.T) {
	m := sample()
	m.Flow = 7
	b := m.Marshal()
	if _, err := Unmarshal(b[:headerSize+1]); !errors.Is(err, ErrShortHeader) {
		t.Errorf("truncated flow: %v", err)
	}
}

func TestPeekHelpers(t *testing.T) {
	m := sample()
	if f, _ := PeekTrace(m.Marshal()); f != 0 {
		t.Errorf("unsampled PeekTrace flow = %#x", f)
	}
	m.Flow = 0xBEEF
	m.HopCount = 5
	f, h := PeekTrace(m.Marshal())
	if f != 0xBEEF || h != 5 {
		t.Errorf("PeekTrace = %#x,%d want 0xbeef,5", f, h)
	}
	if c, ok := PeekClass(m.Marshal()); !ok || c != m.Class {
		t.Errorf("PeekClass = %v,%v want %v,true", c, ok, m.Class)
	}
	if _, ok := PeekClass(nil); ok {
		t.Error("PeekClass(nil) should report !ok")
	}
}
