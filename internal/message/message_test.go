package message

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"diffusion/internal/attr"
)

func sample() *Message {
	return &Message{
		Class:    ExploratoryData,
		ID:       ID{RandID: 0xDEADBEEF, PktNum: 42},
		PrevHop:  7,
		NextHop:  Broadcast,
		HopCount: 3,
		Attrs: attr.Vec{
			attr.ClassIsData(),
			attr.StringAttr(attr.KeyTask, IS_, "detectAnimal"),
			attr.Int32Attr(attr.KeySequence, IS_, 9),
		},
	}
}

// IS_ aliases attr.IS for brevity in fixtures.
const IS_ = attr.IS

func TestMarshalRoundTrip(t *testing.T) {
	m := sample()
	b := m.Marshal()
	if len(b) != m.Size() {
		t.Errorf("Size()=%d, encoding %d bytes", m.Size(), len(b))
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != m.Class || got.ID != m.ID || got.PrevHop != m.PrevHop ||
		got.NextHop != m.NextHop || got.HopCount != m.HopCount {
		t.Errorf("header mismatch: got %v want %v", got, m)
	}
	if !got.Attrs.Equal(m.Attrs) {
		t.Errorf("attrs mismatch: got %v want %v", got.Attrs, m.Attrs)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); !errors.Is(err, ErrShortHeader) {
		t.Errorf("nil: %v", err)
	}
	b := sample().Marshal()
	if _, err := Unmarshal(b[:headerSize-1]); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[0] = 99
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadClass) {
		t.Errorf("bad class: %v", err)
	}
	// Truncated attribute section.
	if _, err := Unmarshal(b[:len(b)-1]); err == nil {
		t.Error("truncated attrs should fail")
	}
}

func TestClone(t *testing.T) {
	m := sample()
	c := m.Clone()
	c.Attrs[0] = attr.ClassIsInterest()
	c.HopCount = 99
	if m.Attrs[0].Val.Int32() != attr.ClassData || m.HopCount == 99 {
		t.Error("Clone must not alias the original")
	}
}

func TestIsData(t *testing.T) {
	cases := map[Class]bool{
		Interest:              false,
		Data:                  true,
		ExploratoryData:       true,
		PositiveReinforcement: false,
		NegativeReinforcement: false,
	}
	for c, want := range cases {
		if (&Message{Class: c}).IsData() != want {
			t.Errorf("IsData(%v) != %v", c, want)
		}
	}
}

func TestStrings(t *testing.T) {
	if Broadcast.String() != "BCAST" {
		t.Error("broadcast rendering")
	}
	if NodeID(3).String() != "n3" {
		t.Error("node rendering")
	}
	for c := Class(0); c.Valid(); c++ {
		if c.String() == "" {
			t.Errorf("class %d has empty name", c)
		}
	}
	if s := sample().String(); s == "" {
		t.Error("message String")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := &Message{
			Class:    Class(r.Intn(int(numClasses))),
			ID:       ID{RandID: r.Uint32(), PktNum: r.Uint32()},
			PrevHop:  NodeID(r.Uint32()),
			NextHop:  NodeID(r.Uint32()),
			HopCount: uint8(r.Intn(256)),
		}
		for i := 0; i < r.Intn(8); i++ {
			m.Attrs = append(m.Attrs,
				attr.Int64Attr(attr.Key(r.Intn(20)+1), attr.Op(r.Intn(8)), r.Int63()))
		}
		got, err := Unmarshal(m.Marshal())
		if err != nil {
			return false
		}
		return got.Class == m.Class && got.ID == m.ID && got.PrevHop == m.PrevHop &&
			got.NextHop == m.NextHop && got.HopCount == m.HopCount && got.Attrs.Equal(m.Attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestPaperMessageSizes checks that a realistic event message lands near the
// paper's 112-byte events: the Figure 8 experiment pads with a payload blob.
func TestPaperMessageSizes(t *testing.T) {
	m := &Message{
		Class: Data,
		Attrs: attr.Vec{
			attr.ClassIsData(),
			attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
			attr.Int32Attr(attr.KeySequence, attr.IS, 1),
			attr.BlobAttr(attr.KeyPayload, attr.IS, make([]byte, 50)),
		},
	}
	if m.Size() < 90 || m.Size() > 130 {
		t.Errorf("event message size %dB, want near the paper's ~112B", m.Size())
	}
}
