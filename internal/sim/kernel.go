package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"
)

// Kernel is a sharded, parallel-capable discrete-event executor that
// produces bit-for-bit identical runs at any shard count.
//
// # Execution model
//
// Nodes are assigned to shards; each shard owns its nodes' event queue and
// executes it single-threaded, so node state needs no locks. Time advances
// in conservative windows: a window starting at the earliest pending node
// event tn extends to
//
//	w1 = min( earliest pending transmission + propagation,
//	          tn + turnaround + propagation,
//	          earliest global event,
//	          RunUntil horizon )
//
// Cross-node effects exist only through Port.ScheduleRemote, which (a) is
// only legal inside a transmission-commit event (AfterTx), and (b) requires
// a delay of at least the propagation time. Any transmission pending at the
// window start delivers at or after w1 by the first bound; any transmission
// committed during the window happens at least a turnaround after its
// scheduling event, so its deliveries land at or after tn+turnaround+
// propagation >= w1 by the second. Hence no event executed inside [tn, w1)
// can affect another shard within the window, and all shards may run it
// concurrently.
//
// Cross-node deliveries are buffered in per-shard outboxes and merged into
// the owning shards' queues at the window barrier. Merge timing cannot
// reorder execution because every event carries a canonical key — see
// evKey: (timestamp, class, origin, origin-sequence) — assigned by its
// single-writer origin, so the total execution order is independent of the
// shard layout. Per-node and per-link random streams are derived from the
// master seed (DeriveSeed) rather than drawn from a shared stream, so
// execution order cannot perturb random draws either.
//
// Global events — Kernel.After/Every, fault injection, experiment drivers —
// run between windows with exclusive access to every shard, so they may
// freely touch any node. Code running in node context must schedule through
// its own node's Port; scheduling on the Kernel from inside a parallel
// window panics. Ordering across contexts: at equal timestamps, global
// events run before node events, and a global event scheduled from node
// context runs at the next window barrier.
type Kernel struct {
	seed int64
	prop time.Duration
	turn time.Duration

	now     time.Duration
	stopped bool
	rng     *rand.Rand

	gq   eventHeap
	gseq uint64

	shards []*kshard
	nodes  map[uint32]*nodePort

	// parallelWindow is true while a multi-shard window is executing; it
	// is written by the coordinator strictly before spawning and after
	// joining the workers, so worker reads are race-free.
	parallelWindow bool
	// serial makes multi-shard windows run their busy shards inline, in
	// shard order, instead of spawning workers. Within a window the shards
	// are independent by construction, so any execution order — including
	// fully serial — produces the same merged schedule. Set when the host
	// has a single CPU, where goroutines can only add overhead while the
	// sharded queues still pay off (N small heaps beat one big one).
	serial      bool
	busyScratch []*kshard
}

// KernelConfig configures a Kernel.
type KernelConfig struct {
	// Seed drives every stream of randomness, via DeriveSeed.
	Seed int64
	// Shards is the number of event shards (clamped to >= 1). One shard
	// executes windows inline with zero goroutine traffic — the sequential
	// mode — and is the default.
	Shards int
	// Propagation is the minimum ScheduleRemote delay: the radio
	// propagation time. It must be positive; it is the irreducible part of
	// the conservative lookahead.
	Propagation time.Duration
	// TxTurnaround is the minimum AfterTx delay (smaller delays are
	// clamped up): the radio's receive-to-transmit turnaround. Larger
	// values widen windows and cut barrier overhead.
	TxTurnaround time.Duration
}

// NewKernel builds a kernel. Register nodes with AddNode before running.
func NewKernel(cfg KernelConfig) *Kernel {
	if cfg.Propagation <= 0 {
		panic("sim: KernelConfig.Propagation must be positive")
	}
	if cfg.TxTurnaround < 0 {
		cfg.TxTurnaround = 0
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	k := &Kernel{
		seed:   cfg.Seed,
		prop:   cfg.Propagation,
		turn:   cfg.TxTurnaround,
		rng:    newDerivedRand(cfg.Seed),
		nodes:  map[uint32]*nodePort{},
		serial: runtime.GOMAXPROCS(0) == 1,
	}
	k.shards = make([]*kshard, n)
	for i := range k.shards {
		k.shards[i] = &kshard{idx: i, out: make([][]*event, n)}
	}
	return k
}

// Shards returns the configured shard count.
func (k *Kernel) Shards() int { return len(k.shards) }

// AddNode registers node id on the given shard and returns its Port. The
// node's random stream is derived from the master seed and the id alone,
// so the shard layout never changes its draws.
func (k *Kernel) AddNode(id uint32, shard int) Port {
	if shard < 0 || shard >= len(k.shards) {
		panic(fmt.Sprintf("sim: shard %d out of range [0,%d)", shard, len(k.shards)))
	}
	if _, dup := k.nodes[id]; dup {
		panic(fmt.Sprintf("sim: node %d already registered", id))
	}
	p := &nodePort{
		k:   k,
		sh:  k.shards[shard],
		id:  id,
		rng: newDerivedRand(k.seed, NodeStream(id)...),
	}
	k.nodes[id] = p
	return p
}

// Port returns node id's scheduling handle; the node must have been
// registered with AddNode.
func (k *Kernel) Port(id uint32) Port {
	p, ok := k.nodes[id]
	if !ok {
		panic(fmt.Sprintf("sim: node %d not registered", id))
	}
	return p
}

// Now returns the current virtual time of the global context: the start of
// the executing window, or the exact event time between windows. Node
// logic should read its own Port's clock, which is always exact.
func (k *Kernel) Now() time.Duration { return k.now }

// Rand returns the global random stream (fault injection, experiment
// drivers). Node-scoped code must use its Port's stream.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// DeriveRand returns an independent stream derived from the kernel's seed
// and a tag path.
func (k *Kernel) DeriveRand(tags ...uint64) *rand.Rand {
	return newDerivedRand(k.seed, tags...)
}

// After schedules a global event at now+d. Global events run between
// windows with exclusive access to all shards. Calling After from node
// context during a parallel window panics — node code must use its own
// Port's clock.
func (k *Kernel) After(d time.Duration, fn func()) Timer {
	if k.parallelWindow {
		panic("sim: Kernel.After called from node context during a parallel window; schedule on the node's own clock instead")
	}
	if d < 0 {
		d = 0
	}
	k.gseq++
	ev := &event{key: evKey{at: k.now + d, kind: kindGlobal, b: k.gseq}, fn: fn}
	k.gq.push(ev)
	return ev
}

// Every schedules fn at now+d and then every period thereafter until the
// returned Timer is cancelled. Panics when period is not positive.
func (k *Kernel) Every(d, period time.Duration, fn func()) Timer {
	return repeatOn(k, d, period, fn)
}

// Stop halts the event loop at the next window barrier.
func (k *Kernel) Stop() { k.stopped = true }

// minNodeEvent returns the earliest pending node event time across all
// shards.
func (k *Kernel) minNodeEvent() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, sh := range k.shards {
		if ev := sh.q.peek(); ev != nil && (!ok || ev.key.at < min) {
			min, ok = ev.key.at, true
		}
	}
	return min, ok
}

// NextEventAt returns the timestamp of the next live event, or ok=false.
func (k *Kernel) NextEventAt() (time.Duration, bool) {
	tn, okn := k.minNodeEvent()
	if gev := k.gq.peek(); gev != nil && (!okn || gev.key.at < tn) {
		return gev.key.at, true
	}
	return tn, okn
}

// Pending returns the number of live queued events (O(shards)).
func (k *Kernel) Pending() int {
	n := k.gq.live
	for _, sh := range k.shards {
		n += sh.q.live
	}
	return n
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t.
func (k *Kernel) RunUntil(t time.Duration) {
	for !k.stopped {
		gev := k.gq.peek()
		tn, okn := k.minNodeEvent()
		if gev == nil && !okn {
			break
		}
		// Globals run first at equal timestamps, matching their kind-0
		// canonical keys.
		if gev != nil && (!okn || gev.key.at <= tn) {
			if gev.key.at > t {
				break
			}
			k.gq.popNext()
			k.now = gev.key.at
			gev.fn()
			continue
		}
		if tn > t {
			break
		}
		k.runWindow(tn, t)
	}
	if k.now < t {
		k.now = t
	}
}

// Run executes events until none remain (or Stop is called).
func (k *Kernel) Run() {
	for !k.stopped {
		at, ok := k.NextEventAt()
		if !ok {
			break
		}
		k.RunUntil(at)
	}
}

// runWindow executes one conservative window starting at tn, bounded by
// the RunUntil horizon. Every input to the window bound is a global
// property of the pending event set, so the window sequence — and with it
// every global-context clock reading — is identical at every shard count.
func (k *Kernel) runWindow(tn, horizon time.Duration) {
	k.now = tn
	w1 := tn + k.turn + k.prop
	for _, sh := range k.shards {
		sh.txq.pruneBelow(tn)
		if mt, ok := sh.txq.min(); ok && mt+k.prop < w1 {
			w1 = mt + k.prop
		}
	}
	if gev := k.gq.peek(); gev != nil && gev.key.at < w1 {
		w1 = gev.key.at
	}
	if horizon+1 < w1 {
		w1 = horizon + 1 // run events at <= horizon
	}

	busy := k.busyScratch[:0]
	for _, sh := range k.shards {
		if ev := sh.q.peek(); ev != nil && ev.key.at < w1 {
			busy = append(busy, sh)
		}
	}
	if len(busy) > 1 {
		k.parallelWindow = true
		if k.serial {
			// Single-CPU host: the shards are mutually independent inside
			// the window, so running them inline in shard order yields the
			// same merged schedule without goroutine traffic.
			for _, sh := range busy {
				sh.run(w1)
			}
		} else {
			// Parallel dispatch: the coordinator takes the first busy
			// shard, workers take the rest. The WaitGroup join gives the
			// barrier its happens-before edge.
			var wg sync.WaitGroup
			for _, sh := range busy[1:] {
				wg.Add(1)
				go func(sh *kshard) {
					defer wg.Done()
					sh.run(w1)
				}(sh)
			}
			busy[0].run(w1)
			wg.Wait()
		}
		k.parallelWindow = false
	} else {
		for _, sh := range busy {
			sh.run(w1)
		}
	}
	k.busyScratch = busy[:0]

	// Barrier: merge cross-shard deliveries into their owners' queues.
	// Order of insertion is irrelevant — the canonical keys order them.
	for _, src := range k.shards {
		for tgt, evs := range src.out {
			if len(evs) == 0 {
				continue
			}
			dst := &k.shards[tgt].q
			for i, ev := range evs {
				dst.push(ev)
				evs[i] = nil
			}
			src.out[tgt] = evs[:0]
		}
	}
}

// kshard is one shard: a queue of its nodes' events, the pending-
// transmission lookahead heap, and per-target outboxes. Only the owning
// worker touches it during a window; only the coordinator touches it at
// barriers.
type kshard struct {
	idx int
	now time.Duration
	q   eventHeap
	txq txHeap
	out [][]*event
	// inTx is true while executing a transmission-commit event — the only
	// context allowed to ScheduleRemote.
	inTx bool
}

// run executes this shard's events with timestamps < w1.
func (sh *kshard) run(w1 time.Duration) {
	for {
		ev := sh.q.peek()
		if ev == nil || ev.key.at >= w1 {
			return
		}
		sh.q.popNext()
		sh.now = ev.key.at
		if ev.tx {
			sh.inTx = true
			ev.fn()
			sh.inTx = false
		} else {
			ev.fn()
		}
	}
}

// nodePort is one node's scheduling handle on the Kernel.
type nodePort struct {
	k    *Kernel
	sh   *kshard
	id   uint32
	seq  uint64 // local event sequence (single writer: this node/barrier)
	rseq uint64 // remote send sequence (single writer: this node)
	rng  *rand.Rand
}

// Now returns the exact current time in this node's context: the executing
// event's timestamp during a window, the global time at a barrier.
func (p *nodePort) Now() time.Duration {
	if p.sh.now > p.k.now {
		return p.sh.now
	}
	return p.k.now
}

// Rand returns the node's derived random stream.
func (p *nodePort) Rand() *rand.Rand { return p.rng }

// After schedules fn in this node's context at now+d.
func (p *nodePort) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return p.push(p.Now()+d, fn, false)
}

// AfterTx schedules a transmission-commit event; d is clamped up to the
// kernel's turnaround time so committed transmissions can never outrun the
// conservative window bound.
func (p *nodePort) AfterTx(d time.Duration, fn func()) Timer {
	if d < p.k.turn {
		d = p.k.turn
	}
	at := p.Now() + d
	ev := p.push(at, fn, true)
	heap.Push(&p.sh.txq, at)
	return ev
}

func (p *nodePort) push(at time.Duration, fn func(), tx bool) *event {
	p.seq++
	ev := &event{
		key: evKey{at: at, kind: kindLocal, a: uint64(p.id), b: p.seq},
		fn:  fn,
		tx:  tx,
	}
	p.sh.q.push(ev)
	return ev
}

// ScheduleRemote schedules fn in node to's context, d from now, through
// the window barrier's outbox merge. Only legal inside a transmission-
// commit event with d >= the propagation delay — the two rules the
// conservative window bound is derived from.
func (p *nodePort) ScheduleRemote(to uint32, d time.Duration, fn func()) {
	if d < p.k.prop {
		panic(fmt.Sprintf("sim: ScheduleRemote delay %v below the propagation floor %v", d, p.k.prop))
	}
	if !p.sh.inTx {
		panic("sim: ScheduleRemote outside a transmission-commit (AfterTx) event")
	}
	tp, ok := p.k.nodes[to]
	if !ok {
		panic(fmt.Sprintf("sim: ScheduleRemote to unregistered node %d", to))
	}
	p.rseq++
	ev := &event{
		key: evKey{at: p.Now() + d, kind: kindRemote, a: uint64(p.id), b: p.rseq},
		fn:  fn,
	}
	p.sh.out[tp.sh.idx] = append(p.sh.out[tp.sh.idx], ev)
}
