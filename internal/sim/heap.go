package sim

import (
	"container/heap"
	"time"
)

// Event-class tags of the canonical order. Every event in a run — whether
// executed by the sequential Scheduler or by any shard layout of the
// Kernel — is totally ordered by its evKey, so execution order is a pure
// function of the seed and the program, never of the shard count.
const (
	kindGlobal uint8 = iota // network-scoped events; run at barriers
	kindLocal               // node-scoped events scheduled by the node itself
	kindRemote              // cross-node events (radio deliveries)
)

// evKey is the canonical total order of events: timestamp, then event
// class (globals before node events, locals before remote arrivals), then
// an origin/sequence pair that is unique within the class. For local
// events (a, b) is (node, per-node seq); for remote events it is (sender,
// per-sender send seq) — both assigned by a single deterministic writer,
// which is what makes the order shard-count independent.
type evKey struct {
	at   time.Duration
	kind uint8
	a, b uint64
}

func (k evKey) less(o evKey) bool {
	if k.at != o.at {
		return k.at < o.at
	}
	if k.kind != o.kind {
		return k.kind < o.kind
	}
	if k.a != o.a {
		return k.a < o.a
	}
	return k.b < o.b
}

type event struct {
	key evKey
	fn  func()
	// h is the owning heap (nil once popped); index is the heap position.
	h         *eventHeap
	index     int
	cancelled bool
	// tx marks transmission-commit events (AfterTx): the only events
	// allowed to schedule cross-node work, and the events whose timestamps
	// bound the Kernel's conservative windows.
	tx bool
}

// Cancel implements Timer.
func (e *event) Cancel() bool {
	if e.cancelled {
		return false
	}
	e.cancelled = true
	e.fn = nil
	if e.h != nil {
		e.h.onCancel()
	}
	return true
}

// eventHeap is a min-heap of events in canonical order with O(1) live
// accounting. Cancelled events are removed lazily: on pop when they reach
// the head, or in a bulk compaction once they outnumber the live entries —
// so a workload that arms and cancels many timers (reassembly timeouts,
// gradient expiries) cannot grow the heap without bound.
type eventHeap struct {
	s    evSlice
	live int
}

func (h *eventHeap) push(ev *event) {
	ev.h = h
	heap.Push(&h.s, ev)
	h.live++
}

// peek returns the earliest live event (discarding cancelled heads), or
// nil when none remain.
func (h *eventHeap) peek() *event {
	for len(h.s) > 0 {
		ev := h.s[0]
		if !ev.cancelled {
			return ev
		}
		h.drop()
	}
	return nil
}

// popNext removes and returns the earliest live event, or nil.
func (h *eventHeap) popNext() *event {
	ev := h.peek()
	if ev == nil {
		return nil
	}
	h.drop()
	h.live--
	return ev
}

// drop removes the head event without live accounting.
func (h *eventHeap) drop() {
	ev := heap.Pop(&h.s).(*event)
	ev.h = nil
	ev.index = -1
}

// onCancel is called by event.Cancel while the event is still queued; it
// triggers compaction once cancelled entries exceed half the heap.
func (h *eventHeap) onCancel() {
	h.live--
	if cancelled := len(h.s) - h.live; cancelled > h.live && cancelled > 16 {
		h.compact()
	}
}

// compact removes every cancelled entry and re-heapifies.
func (h *eventHeap) compact() {
	kept := h.s[:0]
	for _, ev := range h.s {
		if ev.cancelled {
			ev.h = nil
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(h.s); i++ {
		h.s[i] = nil
	}
	h.s = kept
	heap.Init(&h.s)
}

// evSlice implements heap.Interface; eventHeap wraps it with live/lazy
// accounting.
type evSlice []*event

func (h evSlice) Len() int           { return len(h) }
func (h evSlice) Less(i, j int) bool { return h[i].key.less(h[j].key) }
func (h evSlice) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *evSlice) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *evSlice) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// txHeap is a min-heap of pending transmission-commit timestamps; the
// Kernel reads its minimum to bound each conservative window. Entries for
// cancelled events are never removed early — that only narrows windows,
// which is safe.
type txHeap []time.Duration

func (h txHeap) Len() int           { return len(h) }
func (h txHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h txHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *txHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *txHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// pruneBelow discards entries earlier than t (transmissions that have
// already fired).
func (h *txHeap) pruneBelow(t time.Duration) {
	for len(*h) > 0 && (*h)[0] < t {
		heap.Pop(h)
	}
}

// min returns the earliest pending transmission time.
func (h txHeap) min() (time.Duration, bool) {
	if len(h) == 0 {
		return 0, false
	}
	return h[0], true
}
