package sim

import (
	"fmt"
	"testing"
	"time"
)

// newTestKernel returns a kernel with n shards and ids 1..nodes spread
// round-robin (round-robin is the worst case for locality, which is what a
// determinism test wants). Goroutine dispatch is forced on so the race
// detector exercises the parallel path even on single-CPU hosts, where
// NewKernel would default to inline windows.
func newTestKernel(seed int64, shards, nodes int) *Kernel {
	k := NewKernel(KernelConfig{
		Seed:         seed,
		Shards:       shards,
		Propagation:  3 * time.Microsecond,
		TxTurnaround: time.Millisecond,
	})
	k.serial = false
	for i := 0; i < nodes; i++ {
		k.AddNode(uint32(i+1), i%k.Shards())
	}
	return k
}

func TestKernelEveryRejectsNonPositivePeriod(t *testing.T) {
	for _, period := range []time.Duration{0, -time.Second} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Every(period=%v) must panic", period)
				}
			}()
			newTestKernel(1, 1, 1).Every(time.Second, period, func() {})
		}()
	}
}

func TestSchedulerEveryRejectsNonPositivePeriod(t *testing.T) {
	for _, period := range []time.Duration{0, -time.Millisecond} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Every(period=%v) must panic", period)
				}
			}()
			New(1).Every(time.Second, period, func() {})
		}()
	}
}

func TestKernelGlobalBeforeNodeAtEqualTime(t *testing.T) {
	k := newTestKernel(7, 2, 2)
	var order []string
	k.Port(1).After(time.Second, func() { order = append(order, "node") })
	k.After(time.Second, func() { order = append(order, "global") })
	k.Run()
	if len(order) != 2 || order[0] != "global" || order[1] != "node" {
		t.Errorf("order = %v, want [global node]", order)
	}
}

func TestKernelPortClockExactDuringWindow(t *testing.T) {
	k := newTestKernel(3, 2, 2)
	p := k.Port(1)
	var at time.Duration
	p.After(1500*time.Microsecond, func() { at = p.Now() })
	k.RunUntil(time.Second)
	if at != 1500*time.Microsecond {
		t.Errorf("node clock read %v inside its event, want 1.5ms", at)
	}
}

func TestScheduleRemoteOutsideTxPanics(t *testing.T) {
	k := newTestKernel(5, 2, 2)
	p := k.Port(1)
	panicked := false
	p.After(time.Millisecond, func() {
		defer func() { panicked = recover() != nil }()
		p.ScheduleRemote(2, 3*time.Microsecond, func() {})
	})
	k.Run()
	if !panicked {
		t.Error("ScheduleRemote outside a transmission-commit event must panic")
	}
}

func TestScheduleRemoteBelowPropagationPanics(t *testing.T) {
	k := newTestKernel(5, 2, 2)
	p := k.Port(1)
	panicked := false
	p.AfterTx(time.Millisecond, func() {
		defer func() { panicked = recover() != nil }()
		p.ScheduleRemote(2, time.Microsecond, func() {})
	})
	k.Run()
	if !panicked {
		t.Error("ScheduleRemote below the propagation floor must panic")
	}
}

// kernelWorkload drives a synthetic cross-node traffic pattern and returns
// per-node execution transcripts concatenated in node order: every event's
// (time, tag) as seen by its node. Node i periodically commits a
// transmission that delivers to both neighbors, which respond with their
// own local timers — enough cross-shard traffic to exercise windows,
// outboxes and barriers. Each node appends only to its own transcript
// (its events run single-threaded on its shard), so recording is
// race-free under parallel dispatch.
func kernelWorkload(seed int64, shards, nodes int) []string {
	return kernelWorkloadDispatch(seed, shards, nodes, false)
}

func kernelWorkloadDispatch(seed int64, shards, nodes int, serial bool) []string {
	k := newTestKernel(seed, shards, nodes)
	k.serial = serial
	logs := make([][]string, nodes+1)
	for i := 1; i <= nodes; i++ {
		id := uint32(i)
		p := k.Port(id)
		step := time.Duration(1+i%3) * 10 * time.Millisecond
		k.Every(step, step, func() { // global driver, like an experiment script
			p.AfterTx(time.Millisecond, func() {
				logs[id] = append(logs[id], fmt.Sprintf("%v tx", p.Now()))
				for _, nb := range []uint32{id%uint32(nodes) + 1, (id+1)%uint32(nodes) + 1} {
					to := nb
					tp := k.Port(to)
					jitter := time.Duration(p.Rand().Intn(1000)) * time.Microsecond
					p.ScheduleRemote(to, 3*time.Microsecond+jitter, func() {
						logs[to] = append(logs[to], fmt.Sprintf("%v rx", tp.Now()))
						tp.After(time.Duration(tp.Rand().Intn(2000))*time.Microsecond, func() {
							logs[to] = append(logs[to], fmt.Sprintf("%v app", tp.Now()))
						})
					})
				}
			})
		})
	}
	k.RunUntil(2 * time.Second)
	var out []string
	for i := 1; i <= nodes; i++ {
		for _, line := range logs[i] {
			out = append(out, fmt.Sprintf("n%d %s", i, line))
		}
	}
	return out
}

func TestKernelShardCountInvariance(t *testing.T) {
	// The complete execution transcript — order included — must be a pure
	// function of the seed, not of the shard layout.
	base := kernelWorkload(11, 1, 9)
	if len(base) == 0 {
		t.Fatal("workload produced no events")
	}
	for _, shards := range []int{2, 3, 4, 8} {
		got := kernelWorkload(11, shards, 9)
		if len(got) != len(base) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("shards=%d: transcript diverges at %d: %q != %q",
					shards, i, got[i], base[i])
			}
		}
	}
}

func TestKernelSerialDispatchMatchesParallel(t *testing.T) {
	// The single-CPU inline path must execute the exact same schedule as
	// goroutine dispatch: shard independence inside a window means any
	// execution order merges identically.
	par := kernelWorkloadDispatch(11, 4, 9, false)
	ser := kernelWorkloadDispatch(11, 4, 9, true)
	if len(par) == 0 {
		t.Fatal("workload produced no events")
	}
	if len(ser) != len(par) {
		t.Fatalf("serial dispatch: %d events, parallel %d", len(ser), len(par))
	}
	for i := range par {
		if ser[i] != par[i] {
			t.Fatalf("dispatch modes diverge at %d: %q != %q", i, ser[i], par[i])
		}
	}
}

func TestKernelSameSeedSameTranscript(t *testing.T) {
	a := kernelWorkload(23, 4, 6)
	b := kernelWorkload(23, 4, 6)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverge at %d: %q != %q", i, a[i], b[i])
		}
	}
	if c := kernelWorkload(24, 4, 6); len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical transcripts")
		}
	}
}

func TestKernelRunUntilAdvancesClock(t *testing.T) {
	k := newTestKernel(1, 2, 2)
	k.RunUntil(5 * time.Second)
	if k.Now() != 5*time.Second {
		t.Errorf("Now()=%v after RunUntil(5s)", k.Now())
	}
	fired := false
	k.Port(1).After(time.Second, func() { fired = true })
	k.RunUntil(5500 * time.Millisecond)
	if fired {
		t.Error("event before its time")
	}
	k.RunUntil(7 * time.Second)
	if !fired {
		t.Error("event missed by RunUntil")
	}
}

func TestKernelPendingAndNextEventAt(t *testing.T) {
	k := newTestKernel(1, 3, 3)
	if _, ok := k.NextEventAt(); ok {
		t.Error("empty kernel reports a next event")
	}
	k.Port(1).After(2*time.Second, func() {})
	tm := k.Port(2).After(time.Second, func() {})
	k.After(3*time.Second, func() {})
	if n := k.Pending(); n != 3 {
		t.Errorf("Pending=%d want 3", n)
	}
	if at, ok := k.NextEventAt(); !ok || at != time.Second {
		t.Errorf("NextEventAt=%v,%v want 1s", at, ok)
	}
	tm.Cancel()
	if n := k.Pending(); n != 2 {
		t.Errorf("Pending=%d after cancel, want 2", n)
	}
	if at, ok := k.NextEventAt(); !ok || at != 2*time.Second {
		t.Errorf("NextEventAt=%v,%v after cancel, want 2s", at, ok)
	}
}

func TestEventHeapCompaction(t *testing.T) {
	// Arm-and-cancel churn must not grow the heap without bound: cancelled
	// entries are compacted away once they outnumber the live ones.
	s := New(1)
	keep := s.After(time.Hour, func() {})
	_ = keep
	for i := 0; i < 10_000; i++ {
		s.After(time.Minute, func() {}).Cancel()
	}
	if got := len(s.events.s); got > 32 {
		t.Errorf("heap holds %d entries after cancel churn, want <= 32", got)
	}
	if s.Pending() != 1 {
		t.Errorf("Pending=%d want 1", s.Pending())
	}
}

func TestPendingConstantTimeAccounting(t *testing.T) {
	s := New(1)
	timers := make([]Timer, 0, 100)
	for i := 0; i < 100; i++ {
		timers = append(timers, s.After(time.Duration(i+1)*time.Millisecond, func() {}))
	}
	if s.Pending() != 100 {
		t.Fatalf("Pending=%d want 100", s.Pending())
	}
	for i, tm := range timers {
		if i%2 == 0 {
			tm.Cancel()
		}
	}
	if s.Pending() != 50 {
		t.Errorf("Pending=%d after 50 cancels, want 50", s.Pending())
	}
	// Double-cancel must not double-count.
	timers[0].Cancel()
	if s.Pending() != 50 {
		t.Errorf("Pending=%d after double cancel, want 50", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending=%d after Run, want 0", s.Pending())
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]bool{}
	for node := uint32(1); node <= 100; node++ {
		s := DeriveSeed(7, NodeStream(node)...)
		if seen[s] {
			t.Fatalf("derived seed collision at node %d", node)
		}
		seen[s] = true
	}
	if DeriveSeed(7, LinkStream(1, 2)...) == DeriveSeed(7, LinkStream(2, 1)...) {
		t.Error("link streams must be direction-sensitive")
	}
	if DeriveSeed(7, NodeStream(1)...) == DeriveSeed(8, NodeStream(1)...) {
		t.Error("derived seeds must depend on the master seed")
	}
}
