// Package sim provides the deterministic discrete-event scheduler that
// substitutes for the paper's wall-clock testbed runs. Node logic is written
// against the Clock interface and never blocks; the Scheduler executes
// events in virtual-time order, so a 30-minute experiment completes in
// milliseconds and every run is reproducible from its seed.
//
// A RealClock implementation of the same interface lets identical node code
// run live on goroutine timers (used by the examples' live mode).
package sim

import (
	"container/heap"
	"math/rand"
	"sync"
	"time"
)

// Clock is the time service node logic is written against.
type Clock interface {
	// Now returns the current time as an offset from the experiment start.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer that
	// can cancel the callback before it fires.
	After(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Cancel stops the timer; it reports whether the callback was still
	// pending (and is now guaranteed not to run).
	Cancel() bool
}

// Scheduler is a deterministic discrete-event executor implementing Clock.
// It is not safe for concurrent use; all node logic runs inside its event
// loop, exactly like the paper's single-threaded event-driven daemon.
type Scheduler struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns a Scheduler whose randomness derives entirely from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's seeded random source. All simulation
// randomness (jitter, loss draws, backoff) must come from here so runs are
// reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// After schedules fn at now+d. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.at(s.now+d, fn)
}

func (s *Scheduler) at(t time.Duration, fn func()) *event {
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	return ev
}

// Every schedules fn at now+d and then every period thereafter until the
// returned Timer is cancelled. The first firing is at now+d.
func (s *Scheduler) Every(d, period time.Duration, fn func()) Timer {
	rt := &repeatTimer{}
	var arm func(delay time.Duration)
	arm = func(delay time.Duration) {
		rt.inner = s.After(delay, func() {
			if rt.cancelled {
				return
			}
			fn()
			if !rt.cancelled {
				arm(period)
			}
		})
	}
	arm(d)
	return rt
}

type repeatTimer struct {
	inner     Timer
	cancelled bool
}

func (r *repeatTimer) Cancel() bool {
	if r.cancelled {
		return false
	}
	r.cancelled = true
	if r.inner != nil {
		return r.inner.Cancel()
	}
	return false
}

// Step executes the next pending event. It reports false when no events
// remain or the scheduler is stopped.
func (s *Scheduler) Step() bool {
	for s.events.Len() > 0 && !s.stopped {
		ev := heap.Pop(&s.events).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain (or Stop is called). Use RunUntil
// for open-ended workloads with repeating timers.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Pending later events remain queued.
func (s *Scheduler) RunUntil(t time.Duration) {
	for !s.stopped {
		ev := s.peek()
		if ev == nil || ev.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

func (s *Scheduler) peek() *event {
	for s.events.Len() > 0 {
		ev := s.events[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&s.events)
	}
	return nil
}

// Stop halts the event loop; subsequent Step calls return false.
func (s *Scheduler) Stop() { s.stopped = true }

// NextEventAt returns the timestamp of the next live event, or ok=false
// when the queue is empty. Real-time pacing drivers use it to sleep until
// the wall clock catches up with virtual time.
func (s *Scheduler) NextEventAt() (time.Duration, bool) {
	ev := s.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Pending returns the number of live queued events (diagnostics).
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.events {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int
	cancelled bool
}

// Cancel implements Timer.
func (e *event) Cancel() bool {
	if e.cancelled {
		return false
	}
	e.cancelled = true
	e.fn = nil
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// RealClock implements Clock over the wall clock, so the same node logic
// can run live (the examples use it for interactive demos). It is safe for
// concurrent use.
type RealClock struct {
	mu    sync.Mutex
	start time.Time
}

// NewRealClock returns a RealClock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns the elapsed wall time since the clock was created.
func (c *RealClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Since(c.start)
}

// After schedules fn on a goroutine timer.
func (c *RealClock) After(d time.Duration, fn func()) Timer {
	return &realTimer{t: time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (r *realTimer) Cancel() bool { return r.t.Stop() }
