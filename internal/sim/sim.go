// Package sim provides the deterministic discrete-event engines that
// substitute for the paper's wall-clock testbed runs. Node logic is written
// against the Clock interface and never blocks; events execute in virtual-
// time order, so a 30-minute experiment completes in milliseconds and every
// run is reproducible from its seed.
//
// Two engines implement the Executor interface:
//
//   - Scheduler: the single-queue event loop mirroring the paper's
//     single-threaded daemon. Simple, and the reference for unit tests.
//   - Kernel (kernel.go): a sharded conservative parallel engine that
//     executes the same canonical event order across any shard count, so
//     parallel runs are bit-for-bit identical to sequential ones.
//
// A RealClock implementation of the same Clock interface lets identical
// node code run live on goroutine timers (used by the examples' live mode).
package sim

import (
	"math/rand"
	"sync"
	"time"
)

// Clock is the time service node logic is written against.
type Clock interface {
	// Now returns the current time as an offset from the experiment start.
	Now() time.Duration
	// After schedules fn to run once, d from now. It returns a Timer that
	// can cancel the callback before it fires.
	After(d time.Duration, fn func()) Timer
}

// Timer is a cancellable pending callback.
type Timer interface {
	// Cancel stops the timer; it reports whether the callback was still
	// pending (and is now guaranteed not to run).
	Cancel() bool
}

// Env is the scheduling surface one node's protocol stack runs against: a
// clock, a deterministic random stream, and the transmission-commit timer.
type Env interface {
	Clock
	// AfterTx schedules a transmission-commit event: the only kind of
	// event allowed to put a frame on the air (and hence to schedule
	// cross-node work). Engines may clamp d up to the configured radio
	// turnaround time; the MAC models that turnaround explicitly, so the
	// clamp is never hit in practice.
	AfterTx(d time.Duration, fn func()) Timer
	// Rand returns the stream all of this context's randomness must come
	// from, so runs are reproducible.
	Rand() *rand.Rand
}

// Port is one node's scheduling handle. Everything a node schedules goes
// through its own Port; cross-node effects go through ScheduleRemote, which
// is how the Kernel keeps shards from touching each other's queues.
type Port interface {
	Env
	// ScheduleRemote schedules fn to run in node to's context, d from now.
	// It may only be called from within a transmission-commit (AfterTx)
	// event, and d must be at least the engine's configured propagation
	// delay — together these give the conservative engine its lookahead.
	ScheduleRemote(to uint32, d time.Duration, fn func())
}

// Executor is a deterministic discrete-event engine: the global (network-
// scoped) scheduling context plus per-node ports. Scheduler and Kernel
// implement it.
type Executor interface {
	Clock
	// Rand returns the global random stream (fault injection, experiment
	// drivers). Node-scoped code must use its Port's stream instead.
	Rand() *rand.Rand
	// Every schedules fn at now+d and then every period thereafter until
	// the returned Timer is cancelled. It panics when period is not
	// positive (a zero period would re-arm at the same timestamp forever,
	// livelocking the event loop).
	Every(d, period time.Duration, fn func()) Timer
	// Port returns node id's scheduling handle.
	Port(id uint32) Port
	// DeriveRand returns an independent deterministic stream derived from
	// the engine's seed and a tag path (see DeriveSeed).
	DeriveRand(tags ...uint64) *rand.Rand
	// RunUntil executes events with timestamps <= t, then advances the
	// clock to t.
	RunUntil(t time.Duration)
	// Run executes events until none remain (or Stop is called).
	Run()
	// Stop halts the event loop.
	Stop()
	// NextEventAt returns the timestamp of the next live event, or
	// ok=false when no events are queued.
	NextEventAt() (time.Duration, bool)
	// Pending returns the number of live queued events (diagnostics).
	Pending() int
}

// Scheduler is the single-queue deterministic executor implementing Clock.
// It is not safe for concurrent use; all node logic runs inside its event
// loop, exactly like the paper's single-threaded event-driven daemon.
type Scheduler struct {
	seed    int64
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool
}

// New returns a Scheduler whose randomness derives entirely from seed.
func New(seed int64) *Scheduler {
	return &Scheduler{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the scheduler's seeded random source. All simulation
// randomness (jitter, loss draws, backoff) must come from here so runs are
// reproducible.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// DeriveRand returns an independent stream derived from the scheduler's
// seed and a tag path.
func (s *Scheduler) DeriveRand(tags ...uint64) *rand.Rand {
	return newDerivedRand(s.seed, tags...)
}

// After schedules fn at now+d. Negative d is treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.at(s.now+d, fn)
}

// AfterTx schedules a transmission-commit event. On the single-queue
// Scheduler it is equivalent to After; the Kernel uses the tx tag to bound
// its conservative windows.
func (s *Scheduler) AfterTx(d time.Duration, fn func()) Timer {
	return s.After(d, fn)
}

func (s *Scheduler) at(t time.Duration, fn func()) *event {
	s.seq++
	ev := &event{key: evKey{at: t, kind: kindGlobal, b: s.seq}, fn: fn}
	s.events.push(ev)
	return ev
}

// Port returns a scheduling handle for node id. On the single-queue
// Scheduler every port shares the one queue, clock and random stream, so
// unit tests drive MACs and radios exactly as before sharding existed.
func (s *Scheduler) Port(id uint32) Port { return schedPort{s} }

// schedPort adapts the Scheduler to the Port interface.
type schedPort struct{ s *Scheduler }

func (p schedPort) Now() time.Duration                     { return p.s.now }
func (p schedPort) After(d time.Duration, fn func()) Timer { return p.s.After(d, fn) }
func (p schedPort) AfterTx(d time.Duration, fn func()) Timer {
	return p.s.After(d, fn)
}
func (p schedPort) Rand() *rand.Rand { return p.s.rng }
func (p schedPort) ScheduleRemote(to uint32, d time.Duration, fn func()) {
	p.s.After(d, fn)
}

// Every schedules fn at now+d and then every period thereafter until the
// returned Timer is cancelled. The first firing is at now+d. It panics when
// period is not positive: re-arming at the same timestamp would livelock
// the event loop.
func (s *Scheduler) Every(d, period time.Duration, fn func()) Timer {
	return repeatOn(s, d, period, fn)
}

// repeatOn implements Every over any Clock, validating the period.
func repeatOn(c Clock, d, period time.Duration, fn func()) Timer {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	rt := &repeatTimer{}
	var arm func(delay time.Duration)
	arm = func(delay time.Duration) {
		rt.inner = c.After(delay, func() {
			if rt.cancelled {
				return
			}
			fn()
			if !rt.cancelled {
				arm(period)
			}
		})
	}
	arm(d)
	return rt
}

type repeatTimer struct {
	inner     Timer
	cancelled bool
}

func (r *repeatTimer) Cancel() bool {
	if r.cancelled {
		return false
	}
	r.cancelled = true
	if r.inner != nil {
		return r.inner.Cancel()
	}
	return false
}

// Step executes the next pending event. It reports false when no events
// remain or the scheduler is stopped.
func (s *Scheduler) Step() bool {
	if s.stopped {
		return false
	}
	ev := s.events.popNext()
	if ev == nil {
		return false
	}
	if ev.key.at > s.now {
		s.now = ev.key.at
	}
	ev.fn()
	return true
}

// Run executes events until none remain (or Stop is called). Use RunUntil
// for open-ended workloads with repeating timers.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to
// t. Pending later events remain queued.
func (s *Scheduler) RunUntil(t time.Duration) {
	for !s.stopped {
		ev := s.events.peek()
		if ev == nil || ev.key.at > t {
			break
		}
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Stop halts the event loop; subsequent Step calls return false.
func (s *Scheduler) Stop() { s.stopped = true }

// NextEventAt returns the timestamp of the next live event, or ok=false
// when the queue is empty. Real-time pacing drivers use it to sleep until
// the wall clock catches up with virtual time.
func (s *Scheduler) NextEventAt() (time.Duration, bool) {
	ev := s.events.peek()
	if ev == nil {
		return 0, false
	}
	return ev.key.at, true
}

// Pending returns the number of live queued events (diagnostics). It is
// O(1): the heap tracks its live count as events are pushed, popped and
// cancelled.
func (s *Scheduler) Pending() int { return s.events.live }

// RealClock implements Clock over the wall clock, so the same node logic
// can run live (the examples use it for interactive demos). It is safe for
// concurrent use.
type RealClock struct {
	mu    sync.Mutex
	start time.Time
}

// NewRealClock returns a RealClock anchored at the current instant.
func NewRealClock() *RealClock { return &RealClock{start: time.Now()} }

// Now returns the elapsed wall time since the clock was created.
func (c *RealClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Since(c.start)
}

// After schedules fn on a goroutine timer.
func (c *RealClock) After(d time.Duration, fn func()) Timer {
	return &realTimer{t: time.AfterFunc(d, fn)}
}

type realTimer struct{ t *time.Timer }

func (r *realTimer) Cancel() bool { return r.t.Stop() }
