package sim

import "math/rand"

// Seed-stream derivation. Every random stream in a simulation — the
// global stream, one per node, one per directed radio link — is derived
// from the master seed and a tag path with a splitmix64-style mixer, so:
//
//   - adding or removing a stream never perturbs any other stream, and
//   - no stream's draws depend on event execution order, which is what
//     lets the Kernel run node logic on different shards and still
//     reproduce a sequential run bit for bit.

// splitmix64 advances a splitmix64 state and returns the mixed output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9E3779B97F4A7C15
	z := *state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// DeriveSeed mixes a master seed with a tag path into an independent
// stream seed. Distinct tag paths give statistically independent streams.
func DeriveSeed(seed int64, tags ...uint64) int64 {
	state := uint64(seed)
	out := splitmix64(&state)
	for _, t := range tags {
		state ^= t * 0xFF51AFD7ED558CCD
		out = splitmix64(&state)
	}
	return int64(out)
}

// smSource is a splitmix64 rand.Source64: two words of state, so a
// thousand-node network can afford one independent stream per directed
// link (math/rand's default source is ~5 KB per instance).
type smSource struct{ state uint64 }

func (s *smSource) Uint64() uint64  { return splitmix64(&s.state) }
func (s *smSource) Int63() int64    { return int64(s.Uint64() >> 1) }
func (s *smSource) Seed(seed int64) { s.state = uint64(seed) }

// newDerivedRand returns a lightweight deterministic *rand.Rand for the
// derived stream (seed, tags...).
func newDerivedRand(seed int64, tags ...uint64) *rand.Rand {
	return rand.New(&smSource{state: uint64(DeriveSeed(seed, tags...))})
}

// Well-known stream tags.
const (
	// streamNode prefixes per-node streams: (streamNode, nodeID).
	streamNode uint64 = 1
	// streamLink prefixes per-directed-link streams: (streamLink, from, to).
	streamLink uint64 = 2
)

// NodeStream returns the tag path of node id's stream.
func NodeStream(id uint32) []uint64 { return []uint64{streamNode, uint64(id)} }

// LinkStream returns the tag path of the directed link from→to's stream.
func LinkStream(from, to uint32) []uint64 {
	return []uint64{streamLink, uint64(from), uint64(to)}
}
