package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("events out of order: %v", got)
	}
	if s.Now() != 30*time.Millisecond {
		t.Errorf("clock = %v, want 30ms", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events must run FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.After(10*time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 15*time.Millisecond {
		t.Errorf("nested scheduling: %v", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Cancel() {
		t.Error("first Cancel should report pending")
	}
	if tm.Cancel() {
		t.Error("second Cancel should report not pending")
	}
	s.Run()
	if ran {
		t.Error("cancelled event must not run")
	}
}

func TestNegativeDelayRunsImmediately(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran || s.Now() != 0 {
		t.Errorf("negative delay: ran=%v now=%v", ran, s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("RunUntil(5s) ran %d events, want 5", count)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("clock should advance to the horizon: %v", s.Now())
	}
	if s.Pending() != 5 {
		t.Errorf("Pending()=%d, want 5", s.Pending())
	}
	s.RunUntil(20 * time.Second)
	if count != 10 {
		t.Errorf("second RunUntil: count=%d", count)
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	var at []time.Duration
	var tm Timer
	tm = s.Every(time.Second, 2*time.Second, func() {
		at = append(at, s.Now())
		if len(at) == 3 {
			tm.Cancel()
		}
	})
	s.RunUntil(time.Minute)
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	if len(at) != 3 {
		t.Fatalf("Every fired %d times: %v", len(at), at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("firing %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestEveryCancelBeforeFirst(t *testing.T) {
	s := New(1)
	n := 0
	tm := s.Every(time.Second, time.Second, func() { n++ })
	tm.Cancel()
	s.RunUntil(10 * time.Second)
	if n != 0 {
		t.Errorf("cancelled Every fired %d times", n)
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.Every(time.Second, time.Second, func() {
		n++
		if n == 3 {
			s.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Errorf("Stop: ran %d events", n)
	}
	if s.Step() {
		t.Error("Step after Stop must return false")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int {
		s := New(seed)
		var draws []int
		s.Every(time.Second, time.Second, func() {
			draws = append(draws, s.Rand().Intn(1000))
			if len(draws) == 50 {
				s.Stop()
			}
		})
		s.Run()
		return draws
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical runs")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should give different draws")
	}
}

// Property: after Run, the clock equals the max scheduled event time and
// events executed in nondecreasing time order.
func TestQuickOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := New(seed)
		var times []time.Duration
		var maxT time.Duration
		n := r.Intn(50) + 1
		for i := 0; i < n; i++ {
			d := time.Duration(r.Intn(1000)) * time.Millisecond
			if d > maxT {
				maxT = d
			}
			s.After(d, func() { times = append(times, s.Now()) })
		}
		s.Run()
		if len(times) != n || s.Now() != maxT {
			return false
		}
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	done := make(chan struct{})
	c.After(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RealClock timer did not fire")
	}
	if c.Now() <= 0 {
		t.Error("RealClock.Now should advance")
	}
	tm := c.After(time.Hour, func() { t.Error("must not fire") })
	if !tm.Cancel() {
		t.Error("Cancel on pending real timer")
	}
}

func TestNextEventAt(t *testing.T) {
	s := New(1)
	if _, ok := s.NextEventAt(); ok {
		t.Error("empty queue has no next event")
	}
	tm := s.After(5*time.Second, func() {})
	if at, ok := s.NextEventAt(); !ok || at != 5*time.Second {
		t.Errorf("next event at %v, %v", at, ok)
	}
	tm.Cancel()
	if _, ok := s.NextEventAt(); ok {
		t.Error("cancelled events must not count as next")
	}
}
