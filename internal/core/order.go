package core

import (
	"cmp"
	"slices"
)

// Determinism-ordering utilities. Every snapshot of a Go map the core
// iterates with externally visible effects (transmissions, callback
// invocations, stats in a fixed order) funnels through these, so the
// canonical orders live in one place:
//
//   - interest entries: ascending attribute hash,
//   - subscriptions/filters: ascending handle (tag),
//   - neighbor IDs: ascending numeric ID.
//
// They used to be four hand-rolled insertion sorts (entriesInOrder,
// subsInOrder, matchingEntries, sortNodeIDs); a broker-scale node can see
// thousands of matches per message, so the shared implementation is the
// standard-library pattern-defeating quicksort, which allocates nothing.

// sortAscending orders any snapshot of ordered elements — message IDs,
// handles-as-tags, neighbor IDs.
func sortAscending[T cmp.Ordered](s []T) {
	slices.Sort(s)
}

// sortEntriesByHash orders interest entries by their canonical hash.
func sortEntriesByHash(s []*interestEntry) {
	slices.SortFunc(s, func(a, b *interestEntry) int {
		return cmp.Compare(a.hash, b.hash)
	})
}

// entriesInOrder returns a fresh snapshot of every interest entry in
// canonical hash order (control-plane paths: neighbor recovery re-offers).
func (n *Node) entriesInOrder() []*interestEntry {
	out := make([]*interestEntry, 0, len(n.entries))
	for _, e := range n.entries {
		out = append(out, e)
	}
	sortEntriesByHash(out)
	return out
}
