package core

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
)

func dataAttrs(seq int32) attr.Vec {
	return attr.Vec{
		attr.ClassIsData(),
		attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
		attr.Int32Attr(attr.KeySequence, attr.IS, seq),
	}
}

func filterPattern() attr.Vec {
	return attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "surveillance")}
}

func TestFilterInterceptsAndConsumes(t *testing.T) {
	tn := newTestNet(20)
	nodes := tn.line(3)
	relay := nodes[1]

	var delivered int
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) { delivered++ })

	// A consuming filter on the relay: swallow all matching data.
	var swallowed int
	relay.AddFilter(filterPattern(), 10, func(m *message.Message, h FilterHandle) {
		if m.IsData() {
			swallowed++
			return // consumed: never reaches the core
		}
		relay.SendMessageToNext(m, h)
	})

	pub := nodes[2].Publish(surveillancePublication())
	tn.s.Every(2*time.Second, time.Second, func() { nodes[2].Send(pub, nil) })
	tn.s.RunUntil(10 * time.Second)

	if swallowed == 0 {
		t.Fatal("filter never triggered")
	}
	if delivered != 0 {
		t.Errorf("consumed data still delivered %d times", delivered)
	}
}

func TestFilterPassThroughPreservesDelivery(t *testing.T) {
	tn := newTestNet(21)
	nodes := tn.line(3)
	relay := nodes[1]

	var observed, delivered int
	relay.AddFilter(filterPattern(), 10, func(m *message.Message, h FilterHandle) {
		observed++
		relay.SendMessageToNext(m, h)
	})
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) { delivered++ })
	pub := nodes[2].Publish(surveillancePublication())
	tn.s.Every(2*time.Second, time.Second, func() { nodes[2].Send(pub, nil) })
	tn.s.RunUntil(10 * time.Second)

	if observed == 0 || delivered == 0 {
		t.Fatalf("observed=%d delivered=%d; pass-through must not break diffusion",
			observed, delivered)
	}
}

func TestFilterPriorityOrder(t *testing.T) {
	tn := newTestNet(22)
	n := tn.addNode(1, nil)

	var order []string
	n.AddFilter(filterPattern(), 5, func(m *message.Message, h FilterHandle) {
		order = append(order, "low")
		n.SendMessageToNext(m, h)
	})
	n.AddFilter(filterPattern(), 20, func(m *message.Message, h FilterHandle) {
		order = append(order, "high")
		n.SendMessageToNext(m, h)
	})
	n.AddFilter(filterPattern(), 20, func(m *message.Message, h FilterHandle) {
		order = append(order, "high2")
		n.SendMessageToNext(m, h)
	})

	n.Receive(2, (&message.Message{
		Class: message.Data,
		ID:    message.ID{RandID: 1, PktNum: 1},
		Attrs: dataAttrs(1),
	}).Marshal())
	tn.s.RunUntil(time.Second)

	want := []string{"high", "high2", "low"}
	if len(order) != 3 {
		t.Fatalf("chain ran %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("chain order %v, want %v", order, want)
		}
	}
}

func TestFilterMatchingSelectivity(t *testing.T) {
	tn := newTestNet(23)
	n := tn.addNode(1, nil)
	var hits int
	n.AddFilter(attr.Vec{attr.StringAttr(attr.KeyTask, attr.EQ, "other")}, 10,
		func(m *message.Message, h FilterHandle) {
			hits++
			n.SendMessageToNext(m, h)
		})
	n.Receive(2, (&message.Message{
		Class: message.Data,
		ID:    message.ID{RandID: 2, PktNum: 1},
		Attrs: dataAttrs(1),
	}).Marshal())
	tn.s.RunUntil(time.Second)
	if hits != 0 {
		t.Error("filter must not trigger on non-matching task")
	}
}

func TestFilterSeesLocallyOriginatedMessages(t *testing.T) {
	// The chain runs for locally originated interests and data too, so
	// in-network processing can act at the edge nodes.
	tn := newTestNet(24)
	nodes := tn.line(2)
	var classes []message.Class
	nodes[0].AddFilter(nil, 10, func(m *message.Message, h FilterHandle) {
		classes = append(classes, m.Class)
		nodes[0].SendMessageToNext(m, h)
	})
	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(2 * time.Second)
	found := false
	for _, c := range classes {
		if c == message.Interest {
			found = true
		}
	}
	if !found {
		t.Errorf("filter should see the locally originated interest: %v", classes)
	}
}

func TestRemoveFilter(t *testing.T) {
	tn := newTestNet(25)
	n := tn.addNode(1, nil)
	hits := 0
	h := n.AddFilter(filterPattern(), 10, func(m *message.Message, fh FilterHandle) {
		hits++
		n.SendMessageToNext(m, fh)
	})
	if n.Filters() != 1 {
		t.Fatal("filter count")
	}
	if err := n.RemoveFilter(h); err != nil {
		t.Fatal(err)
	}
	n.Receive(2, (&message.Message{
		Class: message.Data,
		ID:    message.ID{RandID: 3, PktNum: 1},
		Attrs: dataAttrs(1),
	}).Marshal())
	tn.s.RunUntil(time.Second)
	if hits != 0 {
		t.Error("removed filter must not run")
	}
}

func TestInjectMessage(t *testing.T) {
	// A filter-originated message behaves like a fresh local origination:
	// it gets an ID, traverses the chain, and the core floods it.
	tn := newTestNet(26)
	nodes := tn.line(2)
	// The tap supplies actuals for the interest's formals, as in the
	// paper's section 3.2 example of subscribing for subscriptions.
	var taps int
	nodes[1].Subscribe(attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
		attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
	}, func(*message.Message) { taps++ })

	nodes[0].InjectMessage(&message.Message{
		Class:   message.Interest,
		NextHop: message.Broadcast,
		Attrs: attr.Vec{
			attr.ClassIsInterest(),
			attr.StringAttr(attr.KeyTask, attr.EQ, "surveillance"),
		},
	})
	tn.s.RunUntil(2 * time.Second)
	if taps == 0 {
		t.Error("injected interest should flood to the neighbor")
	}
	if nodes[1].Entries() != 1 {
		t.Error("injected interest should set up gradients")
	}
}

func TestFilterValidation(t *testing.T) {
	tn := newTestNet(27)
	n := tn.addNode(1, nil)
	for name, fn := range map[string]func(){
		"zero priority": func() { n.AddFilter(nil, 0, func(*message.Message, FilterHandle) {}) },
		"nil callback":  func() { n.AddFilter(nil, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSendMessageToNextAfterRemoval(t *testing.T) {
	// A message in flight when its filter is removed still reaches the
	// core rather than vanishing.
	tn := newTestNet(28)
	nodes := tn.line(2)
	var delivered int
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) { delivered++ })

	var h FilterHandle
	h = nodes[0].AddFilter(filterPattern(), 10, func(m *message.Message, fh FilterHandle) {
		nodes[0].RemoveFilter(h)
		nodes[0].SendMessageToNext(m, fh)
	})
	pub := nodes[1].Publish(surveillancePublication())
	tn.s.After(2*time.Second, func() { nodes[1].Send(pub, nil) })
	tn.s.RunUntil(5 * time.Second)
	if delivered != 1 {
		t.Errorf("delivered=%d, want 1", delivered)
	}
}

func TestProcessNoForward(t *testing.T) {
	// A filter that consumes interests and hands them to the core via
	// ProcessNoForward gets gradient setup and local delivery but no
	// re-flood.
	tn := newTestNet(29)
	nodes := tn.line(3)
	relay := nodes[1]
	relay.AddFilter(attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
	}, 50, func(m *message.Message, h FilterHandle) {
		relay.ProcessNoForward(m)
	})
	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(5 * time.Second)

	// The relay absorbed the interest (gradient toward node 1) ...
	if relay.Entries() != 1 {
		t.Fatal("relay should hold the interest entry")
	}
	if _, ok := firstEntry(relay).gradients[1]; !ok {
		t.Error("gradient toward the sink must exist")
	}
	// ... but never re-flooded it, so node 3 knows nothing.
	if relay.Stats.SentByClass[message.Interest] != 0 {
		t.Error("ProcessNoForward must suppress the re-flood")
	}
	if nodes[2].Entries() != 0 {
		t.Error("downstream node must not receive the scoped interest")
	}
}

func TestSendDirect(t *testing.T) {
	tn := newTestNet(30)
	nodes := tn.line(3)
	var got int
	nodes[2].Subscribe(attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
		attr.StringAttr(attr.KeyTask, attr.IS, "direct"),
	}, func(*message.Message) { got++ })

	// Unicast an interest directly from node 2 to node 3, bypassing the
	// chain and core: node 3 processes it normally.
	nodes[1].SendDirect(&message.Message{
		Class:   message.Interest,
		NextHop: 3,
		Attrs: attr.Vec{
			attr.ClassIsInterest(),
			attr.StringAttr(attr.KeyTask, attr.EQ, "direct"),
		},
	})
	tn.s.RunUntil(2 * time.Second)
	if got != 1 {
		t.Errorf("direct unicast delivered %d times", got)
	}
	// Node 1 must not have heard the unicast.
	if nodes[0].Entries() != 0 {
		t.Error("unicast must not reach non-addressed neighbors")
	}
	if nodes[1].Stats.SentByClass[message.Interest] != 1 {
		t.Errorf("SendDirect accounting: %v", nodes[1].Stats.SentByClass)
	}
}
