package core

import (
	"diffusion/internal/message"
)

// NeighborDead tells the diffusion core that a link-layer failure detector
// declared peer dead. The paper's soft state would eventually stop using
// the dead neighbor on its own — gradients expire without interest
// refreshes, reinforcement decays — but only after multiples of the
// refresh intervals. This call collapses that window to the detector's
// timeout by purging every piece of protocol state that routes traffic
// through the dead peer and re-priming the discovery machinery:
//
//   - gradients toward the peer are dropped, so plain data stops being
//     unicast into a black hole;
//   - reinforcement and exploratory-arrival traces naming the peer are
//     cleared, so the next reinforcement retraces a live path instead of
//     the dead one;
//   - every publication's next data message is exploratory again, flooding
//     along surviving gradients to re-prime alternate paths;
//   - every active subscription re-originates its interest promptly (the
//     usual initial jitter applies), rebuilding gradients around the hole.
//
// Call it from the same executor that owns the node (the rt.Loop in live
// deployments). NeighborRecovered (custody.go) is the inverse call: a
// recovered peer's own traffic would rebuild state on its own within the
// refresh intervals, but the recovery hook collapses that window too and
// replays any custodial data waiting on the healed link.
func (n *Node) NeighborDead(peer uint32) {
	if n.detached {
		return
	}
	nb := message.NodeID(peer)
	n.Stats.NeighborDeaths++
	// Only entries that ever referenced the dead neighbor can hold state
	// naming it; the per-neighbor touch index yields exactly those, so the
	// purge is proportional to the peer's footprint, not the entry table.
	touched := n.getEntryBuf()
	for _, e := range n.nbTouch[nb] {
		touched = append(touched, e)
	}
	for _, e := range touched {
		if _, ok := e.gradients[nb]; ok {
			delete(e.gradients, nb)
			n.Stats.GradientsExpired++
			n.noteStaleHop(e, nb)
			n.noteEntryEmptiness(e)
		}
		if e.hasReinforcedUpstream && e.reinforcedUpstream == nb {
			e.hasReinforcedUpstream = false
			// Forget the reinforcement cause too: the next exploratory
			// arrival must be allowed to reinforce a fresh upstream even if
			// it reuses an ID this entry already acted on.
			e.lastReinforcedID = message.ID{}
		}
		if e.hasExpFrom && e.lastExpFrom == nb {
			e.hasExpFrom = false
		}
		delete(e.dupFrom, nb)
	}
	n.putEntryBuf(touched)
	// Custody retains gradient-less entries as cached interests (see
	// housekeeping). Without it, collect every empty entry — the old full
	// scan purged any empty entry here, touched by this neighbor or not,
	// and the empty-entry set preserves exactly that behaviour.
	if !n.custodyOn() {
		for _, e := range n.emptyEntries {
			n.dropEntry(e)
		}
	}
	for id, from := range n.expFrom {
		if from == nb {
			delete(n.expFrom, id)
		}
	}
	for _, p := range n.pubs {
		// Next Send per publication goes exploratory, flooding along the
		// surviving gradients.
		p.sentAny = false
	}
	for _, s := range n.subs {
		if s.passive || s.local {
			continue
		}
		if s.refresh != nil {
			s.refresh.Cancel()
		}
		n.armRefresh(s)
	}
}
