package core

import (
	"diffusion/internal/match"
	"diffusion/internal/message"
)

// The unified MatchIndex: every match site of the node — gradient-entry
// matching for data, local subscription delivery, the filter chain,
// custody replay candidate selection, dead-neighbor purge — runs on the
// inverted attribute indexes below instead of linear table scans, which
// is what lets one node carry millions of subscriptions (ROADMAP item 1;
// the paper's section 6.3 anticipates exactly this class of matching
// optimization).
//
// Exactness and determinism contract:
//
//   - attr.Match / attr.OneWayMatch stay the oracle. The index pre-filter
//     may over-include; every candidate is verified against the compiled
//     form of the exact matcher before it is returned, so match results
//     are identical to the old scans (internal/match's differential test
//     pins this).
//   - Results are consumed in the same canonical orders as the scans
//     they replace: entries ascending by attribute hash, subscriptions
//     and filters ascending by handle. Traces stay byte-identical at any
//     shard count.
//   - Lookups are allocation-free in steady state: tag results land in
//     pooled buffers (free lists on the node — callbacks can re-enter
//     the core, so a single scratch buffer would be clobbered mid-use;
//     the pool hands nested calls distinct buffers).
type matchIndexes struct {
	// entries indexes interest-entry attributes; tag = entry hash.
	// Two-way: data matches an entry iff attr.Match(entry, data).
	entries *match.Index
	// subs indexes subscription attributes; tag = subscription handle.
	// Two-way, like deliverLocal's attr.Match.
	subs *match.Index
	// filters indexes filter patterns; tag = filter handle. One-way:
	// every formal of the filter satisfied by an actual of the message.
	filters *match.Index

	tagBufs [][]uint64
}

func (x *matchIndexes) init() {
	x.entries = match.New(match.TwoWay)
	x.subs = match.New(match.TwoWay)
	x.filters = match.New(match.OneWay)
}

// getTags hands out a pooled tag buffer; putTags returns it. Buffers must
// be returned before any user callback runs — nested core entry then
// draws a fresh buffer instead of clobbering a live one.
func (x *matchIndexes) getTags() []uint64 {
	if n := len(x.tagBufs); n > 0 {
		b := x.tagBufs[n-1]
		x.tagBufs = x.tagBufs[:n-1]
		return b[:0]
	}
	return make([]uint64, 0, 16)
}

func (x *matchIndexes) putTags(b []uint64) {
	x.tagBufs = append(x.tagBufs, b)
}

// getEntryBuf hands out a pooled entry snapshot buffer (matchingEntries
// results). Unlike tag buffers these stay live across callbacks — nested
// calls pull distinct buffers from the free list.
func (n *Node) getEntryBuf() []*interestEntry {
	if l := len(n.entryBufs); l > 0 {
		b := n.entryBufs[l-1]
		n.entryBufs = n.entryBufs[:l-1]
		return b[:0]
	}
	return make([]*interestEntry, 0, 8)
}

func (n *Node) putEntryBuf(b []*interestEntry) {
	n.entryBufs = append(n.entryBufs, b)
}

func (n *Node) getSubBuf() []*subscription {
	if l := len(n.subBufs); l > 0 {
		b := n.subBufs[l-1]
		n.subBufs = n.subBufs[:l-1]
		return b[:0]
	}
	return make([]*subscription, 0, 8)
}

func (n *Node) putSubBuf(b []*subscription) {
	n.subBufs = append(n.subBufs, b)
}

// dropEntry removes an interest entry from the table and every secondary
// index. All entry deletions go through here.
func (n *Node) dropEntry(e *interestEntry) {
	delete(n.entries, e.hash)
	n.midx.entries.Remove(e.slot)
	delete(n.emptyEntries, e.hash)
	for nb := range e.touched {
		set := n.nbTouch[nb]
		delete(set, e.hash)
		if len(set) == 0 {
			delete(n.nbTouch, nb)
		}
	}
}

// touchNeighbor records that entry e references neighbor nb (a gradient,
// reinforcement trace, exploratory arrival or duplicate counter), so
// NeighborDead can purge by neighbor instead of scanning every entry.
// The set is conservative — it only grows while the entry lives — and is
// bounded by the entry's historical neighbor count.
func (n *Node) touchNeighbor(e *interestEntry, nb message.NodeID) {
	if e.touched[nb] {
		return
	}
	if e.touched == nil {
		e.touched = map[message.NodeID]bool{}
	}
	e.touched[nb] = true
	set := n.nbTouch[nb]
	if set == nil {
		set = map[uint64]*interestEntry{}
		n.nbTouch[nb] = set
	}
	set[e.hash] = e
}

// noteEntryEmptiness keeps the empty-entry set (no gradients, no local
// sinks — the GC condition) in sync after any gradient or localSubs
// mutation. NeighborDead's sweep uses it to preserve the old full-scan
// GC semantics without the full scan.
func (n *Node) noteEntryEmptiness(e *interestEntry) {
	if len(e.gradients) == 0 && len(e.localSubs) == 0 {
		n.emptyEntries[e.hash] = e
	} else {
		delete(n.emptyEntries, e.hash)
	}
}

// MatchStats aggregates the inverted-index counters across the node's
// three match indexes (interest entries, subscriptions, filters).
type MatchStats struct {
	// IndexKeys is the number of distinct attribute keys with postings.
	IndexKeys int
	// IndexSize is the number of indexed vectors.
	IndexSize int
	// FallbackSize is the number of vectors with no indexable pivot
	// (scanned on every lookup).
	FallbackSize int
	// Lookups, CandidatesScanned, FallbackScans and Hits mirror
	// match.Stats, summed across the three indexes.
	Lookups           uint64
	CandidatesScanned uint64
	FallbackScans     uint64
	Hits              uint64
}

// MatchStats returns the node's aggregated match-index counters.
func (n *Node) MatchStats() MatchStats {
	var out MatchStats
	for _, ix := range []*match.Index{n.midx.entries, n.midx.subs, n.midx.filters} {
		out.IndexKeys += ix.Keys()
		out.IndexSize += ix.Len()
		out.FallbackSize += ix.FallbackLen()
		st := ix.Stats()
		out.Lookups += st.Lookups
		out.CandidatesScanned += st.CandidatesScanned
		out.FallbackScans += st.FallbackScanned
		out.Hits += st.Hits
	}
	return out
}
