package core

import (
	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// classSlugs are snake_case metric-name suffixes indexed by message class.
var classSlugs = [message.NumClasses]string{
	"interest", "data", "exploratory_data",
	"positive_reinforcement", "negative_reinforcement", "custody_ack",
}

// Instrument publishes the diffusion core's counters and live table sizes
// on reg. Everything is read at snapshot time from the node's existing
// Stats struct and maps; the message hot path is untouched.
func (n *Node) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		s := &n.Stats
		emit("core.bytes_sent", float64(s.BytesSent))
		for c, slug := range classSlugs {
			emit("core.sent."+slug, float64(s.SentByClass[c]))
			emit("core.received."+slug, float64(s.ReceivedByClass[c]))
		}
		emit("core.cache_hits", float64(s.Duplicates))
		emit("core.cache_misses", float64(s.SeenMisses))
		emit("core.local_deliveries", float64(s.LocalDeliveries))
		emit("core.data_suppressed", float64(s.DataSuppressed))
		emit("core.data_no_path", float64(s.DataNoPath))
		emit("core.neg_reinforcements", float64(s.NegReinforcements))
		emit("core.link_send_errors", float64(s.LinkSendErrors))
		emit("core.interests_seen", float64(s.InterestsSeen))
		emit("core.gradients_created", float64(s.GradientsCreated))
		emit("core.gradients_expired", float64(s.GradientsExpired))
		emit("core.neighbor_deaths", float64(s.NeighborDeaths))
		emit("core.neighbor_recoveries", float64(s.NeighborRecoveries))
		emit("core.filter_invocations", float64(s.FilterInvocations))
		emit("core.interest_entries", float64(len(n.entries)))
		emit("core.seen_cache_size", float64(len(n.seen)))
		emit("core.custody_captured", float64(s.CustodyCaptured))
		emit("core.energy_shifts", float64(s.EnergyShifts))
		ms := n.MatchStats()
		emit("match.index_keys", float64(ms.IndexKeys))
		emit("match.index_size", float64(ms.IndexSize))
		emit("match.fallback_size", float64(ms.FallbackSize))
		emit("match.lookups", float64(ms.Lookups))
		emit("match.candidates_scanned", float64(ms.CandidatesScanned))
		emit("match.fallback_scans", float64(ms.FallbackScans))
		emit("match.hits", float64(ms.Hits))
		if q := n.cfg.Custody; q != nil {
			c := q.Counters()
			emit("custody.accepted", float64(c.Accepted))
			emit("custody.released", float64(c.Released))
			emit("custody.replayed", float64(c.Replayed))
			emit("custody.shed", float64(c.Shed))
			emit("custody.restored", float64(c.Restored))
			emit("custody.queue_len", float64(q.Len()))
			emit("custody.queue_limit", float64(q.Limit()))
		}
	})
}
