package core

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
)

// TestPushDeliversWithoutInterests exercises one-phase push: local-only
// subscriptions, exploratory floods from the source, reinforcement-installed
// paths for the plain data in between.
func TestPushDeliversWithoutInterests(t *testing.T) {
	tn := newTestNet(40)
	nodes := tn.line(4)
	sink, source := nodes[0], nodes[3]

	var got []message.Class
	sink.SubscribeLocal(surveillanceInterest(), func(m *message.Message) {
		got = append(got, m.Class)
	})
	pub := source.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(time.Second, time.Second, func() {
		seq++
		source.SendPush(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(30 * time.Second)

	// No interest ever flooded.
	for i, n := range nodes {
		if n.Stats.SentByClass[message.Interest] != 0 {
			t.Errorf("node %d sent %d interests; push must not flood interests",
				i+1, n.Stats.SentByClass[message.Interest])
		}
	}
	if len(got) < 20 {
		t.Fatalf("sink received %d of %d push events", len(got), seq)
	}
	plain := 0
	for _, c := range got {
		if c == message.Data {
			plain++
		}
	}
	if plain == 0 {
		t.Error("reinforcement-installed path should carry plain push data")
	}
	// The relays learned the flow purely from reinforcements.
	if nodes[1].Entries() == 0 || nodes[2].Entries() == 0 {
		t.Error("reinforcements should install entries at relays")
	}
}

func TestPushPlainDataNeedsReinforcedPath(t *testing.T) {
	// Without any sink, push exploratory still floods (that is its point)
	// but plain push data dies at the source.
	tn := newTestNet(41)
	nodes := tn.line(3)
	source := nodes[2]
	pub := source.Publish(surveillancePublication())
	for i := 0; i < 8; i++ {
		i := i
		tn.s.After(time.Duration(i)*time.Second, func() {
			source.SendPush(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, int32(i))})
		})
	}
	tn.s.RunUntil(30 * time.Second)
	if nodes[0].Stats.ReceivedByClass[message.ExploratoryData] == 0 {
		t.Error("push exploratory data should flood to everyone")
	}
	if source.Stats.DataNoPath == 0 && source.Stats.DataSuppressed == 0 {
		t.Error("plain push data without a sink should be dropped at the source")
	}
}

func TestPushAndPullCoexist(t *testing.T) {
	// A pull sink and a push sink on the same network, different tasks.
	tn := newTestNet(42)
	nodes := tn.line(3)
	pullGot, pushGot := 0, 0
	nodes[0].Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "pull-task"),
	}, func(*message.Message) { pullGot++ })
	nodes[0].SubscribeLocal(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "push-task"),
	}, func(*message.Message) { pushGot++ })

	src := nodes[2]
	pullPub := src.Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "pull-task")})
	pushPub := src.Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "push-task")})
	seq := int32(0)
	tn.s.Every(2*time.Second, 2*time.Second, func() {
		seq++
		extra := attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)}
		src.Send(pullPub, extra)
		src.SendPush(pushPub, extra)
	})
	tn.s.RunUntil(time.Minute)
	if pullGot < 20 || pushGot < 20 {
		t.Errorf("both variants should deliver: pull=%d push=%d (of %d)", pullGot, pushGot, seq)
	}
}
