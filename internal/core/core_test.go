package core

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// testNet is a perfect in-memory link layer with an explicit adjacency
// graph, so core-protocol tests are independent of the MAC and radio.
type testNet struct {
	s     *sim.Scheduler
	nodes map[uint32]*Node
	adj   map[uint32]map[uint32]bool
	dead  map[uint32]bool
	cut   map[[2]uint32]bool // partitioned links (both directions)
	delay time.Duration
}

func newTestNet(seed int64) *testNet {
	return &testNet{
		s:     sim.New(seed),
		nodes: map[uint32]*Node{},
		adj:   map[uint32]map[uint32]bool{},
		dead:  map[uint32]bool{},
		cut:   map[[2]uint32]bool{},
		delay: time.Millisecond,
	}
}

// setCut partitions (or heals) the link between a and b.
func (tn *testNet) setCut(a, b uint32, down bool) {
	tn.cut[linkKey(a, b)] = down
}

func linkKey(a, b uint32) [2]uint32 {
	if a > b {
		a, b = b, a
	}
	return [2]uint32{a, b}
}

type testLink struct {
	net *testNet
	id  uint32
}

func (l *testLink) ID() uint32 { return l.id }

func (l *testLink) Send(dst uint32, payload []byte) error {
	if l.net.dead[l.id] {
		return nil
	}
	data := make([]byte, len(payload))
	copy(data, payload)
	from := l.id
	for nb := range l.net.adj[l.id] {
		if dst != Broadcast && dst != nb {
			continue
		}
		nb := nb
		if l.net.dead[nb] || l.net.cut[linkKey(l.id, nb)] {
			continue
		}
		l.net.s.After(l.net.delay, func() {
			if l.net.dead[nb] || l.net.dead[from] {
				return
			}
			if n := l.net.nodes[nb]; n != nil {
				n.Receive(from, data)
			}
		})
	}
	return nil
}

// addNode creates a node with fast test timings.
func (tn *testNet) addNode(id uint32, tweak func(*Config)) *Node {
	cfg := Config{
		Clock:            tn.s,
		Rand:             tn.s.Rand(),
		Link:             &testLink{net: tn, id: id},
		InterestInterval: 10 * time.Second,
		ExploratoryEvery: 5,
		ForwardJitter:    5 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	n := NewNode(cfg)
	tn.nodes[id] = n
	if tn.adj[id] == nil {
		tn.adj[id] = map[uint32]bool{}
	}
	return n
}

func (tn *testNet) connect(a, b uint32) {
	if tn.adj[a] == nil {
		tn.adj[a] = map[uint32]bool{}
	}
	if tn.adj[b] == nil {
		tn.adj[b] = map[uint32]bool{}
	}
	tn.adj[a][b] = true
	tn.adj[b][a] = true
}

// line builds nodes 1..n connected in a chain.
func (tn *testNet) line(n int) []*Node {
	nodes := make([]*Node, n)
	for i := 1; i <= n; i++ {
		nodes[i-1] = tn.addNode(uint32(i), nil)
		if i > 1 {
			tn.connect(uint32(i-1), uint32(i))
		}
	}
	return nodes
}

func surveillanceInterest() attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "surveillance"),
		attr.Int32Attr(attr.KeyInterval, attr.IS, 1000),
	}
}

func surveillancePublication() attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
	}
}

func TestInterestPropagatesAndSetsGradients(t *testing.T) {
	tn := newTestNet(1)
	nodes := tn.line(3)
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) {})
	tn.s.RunUntil(2 * time.Second)

	// Node 2 must hold an interest entry with a gradient toward node 1.
	if nodes[1].Entries() != 1 {
		t.Fatalf("node 2 entries = %d, want 1", nodes[1].Entries())
	}
	e2 := firstEntry(nodes[1])
	if g, ok := e2.gradients[1]; !ok || g == nil {
		t.Error("node 2 must have a gradient toward node 1")
	}
	e3 := firstEntry(nodes[2])
	if _, ok := e3.gradients[2]; !ok {
		t.Error("node 3 must have a gradient toward node 2")
	}
}

func firstEntry(n *Node) *interestEntry {
	for _, e := range n.entries {
		return e
	}
	return nil
}

// TestDiffusionPhases is the Figure 1 schematic as an integration test:
// interest propagation, gradient setup, exploratory delivery, reinforced
// high-rate delivery.
func TestDiffusionPhases(t *testing.T) {
	tn := newTestNet(2)
	nodes := tn.line(4)
	sink, source := nodes[0], nodes[3]

	var got []message.Class
	sink.Subscribe(surveillanceInterest(), func(m *message.Message) {
		got = append(got, m.Class)
	})
	pub := source.Publish(surveillancePublication())

	// Source reports every second once tasked.
	seq := int32(0)
	tn.s.Every(3*time.Second, time.Second, func() {
		seq++
		source.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(20 * time.Second)

	if len(got) < 10 {
		t.Fatalf("sink received %d messages, want most of %d", len(got), seq)
	}
	if got[0] != message.ExploratoryData {
		t.Errorf("first delivery should be exploratory, got %v", got[0])
	}
	plain := 0
	for _, c := range got {
		if c == message.Data {
			plain++
		}
	}
	if plain == 0 {
		t.Error("reinforced path should carry plain data messages")
	}
	// Intermediate nodes must have a reinforced gradient toward the sink
	// side.
	e := firstEntry(nodes[2]) // node 3
	reinforced := false
	for _, g := range e.gradients {
		if g.reinforced(tn.s.Now()) {
			reinforced = true
		}
	}
	if !reinforced {
		t.Error("intermediate node should hold a reinforced gradient")
	}
}

func TestDataSuppressedWithoutInterest(t *testing.T) {
	tn := newTestNet(3)
	nodes := tn.line(2)
	src := nodes[1]
	pub := src.Publish(surveillancePublication())
	src.Send(pub, nil)
	tn.s.RunUntil(time.Second)
	if src.Stats.DataSuppressed != 1 {
		t.Errorf("data without gradients must be suppressed: %+v", src.Stats)
	}
	if src.Stats.BytesSent != 0 {
		t.Error("suppressed data must not reach the link")
	}
}

func TestPassiveInterestTap(t *testing.T) {
	// The paper's "subscribe for subscriptions": a source learns that a
	// sink's interest arrived without flooding anything itself.
	tn := newTestNet(4)
	nodes := tn.line(3)
	source := nodes[2]

	var seen []*message.Message
	source.Subscribe(attr.Vec{
		attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
		attr.StringAttr(attr.KeyTask, attr.IS, "surveillance"),
	}, func(m *message.Message) { seen = append(seen, m.Clone()) })

	tn.s.RunUntil(2 * time.Second)
	if len(seen) != 0 {
		t.Fatal("tap must not fire before any interest exists")
	}
	if source.Stats.SentByClass[message.Interest] != 0 {
		t.Fatal("passive subscription must not originate interests")
	}

	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(4 * time.Second)
	if len(seen) == 0 {
		t.Fatal("tap should deliver the sink's interest")
	}
	if seen[0].Class != message.Interest {
		t.Errorf("tap delivered %v", seen[0].Class)
	}
}

func TestUnsubscribeStopsRefreshAndGradientsExpire(t *testing.T) {
	tn := newTestNet(5)
	var nodes []*Node
	for i := 1; i <= 3; i++ {
		id := uint32(i)
		nodes = append(nodes, tn.addNode(id, func(c *Config) {
			c.InterestInterval = 5 * time.Second
			c.GradientLifetime = 12 * time.Second
		}))
		if i > 1 {
			tn.connect(uint32(i-1), id)
		}
	}
	h := nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(3 * time.Second)
	if nodes[1].Entries() != 1 {
		t.Fatal("gradient should exist while subscribed")
	}
	if err := nodes[0].Unsubscribe(h); err != nil {
		t.Fatal(err)
	}
	tn.s.RunUntil(60 * time.Second)
	if nodes[1].Entries() != 0 {
		t.Error("entries must expire after refreshes stop")
	}
	if err := nodes[0].Unsubscribe(h); err == nil {
		t.Error("double unsubscribe must fail")
	}
}

func TestInterestRefreshKeepsGradientsAlive(t *testing.T) {
	tn := newTestNet(6)
	nodes := tn.line(3)
	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(90 * time.Second) // 9 refresh cycles
	if nodes[2].Entries() != 1 {
		t.Error("periodic refresh must keep gradients alive")
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	tn := newTestNet(7)
	var nodes []*Node
	for i := 1; i <= 6; i++ {
		nodes = append(nodes, tn.addNode(uint32(i), func(c *Config) { c.TTL = 3 }))
		if i > 1 {
			tn.connect(uint32(i-1), uint32(i))
		}
	}
	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(5 * time.Second)
	if nodes[3].Entries() == 0 {
		t.Error("interest should reach hop 3")
	}
	if nodes[5].Entries() != 0 {
		t.Error("interest must not travel past the TTL")
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// In a triangle, each node hears each flood twice; duplicates must be
	// counted and not re-forwarded.
	tn := newTestNet(8)
	a := tn.addNode(1, nil)
	b := tn.addNode(2, nil)
	c := tn.addNode(3, nil)
	tn.connect(1, 2)
	tn.connect(2, 3)
	tn.connect(1, 3)
	a.Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(2 * time.Second)
	if b.Stats.Duplicates == 0 && c.Stats.Duplicates == 0 {
		t.Error("triangle flood must produce duplicates")
	}
	// Each node forwards the single interest exactly once.
	if b.Stats.SentByClass[message.Interest] != 1 {
		t.Errorf("node 2 forwarded interest %d times, want 1",
			b.Stats.SentByClass[message.Interest])
	}
}

func TestNegativeReinforcementPrunesDuplicatePaths(t *testing.T) {
	// Diamond: 1 - {2,3} - 4. Both relays initially deliver; duplicate
	// plain data must trigger negative reinforcement until only one
	// reinforced path remains.
	tn := newTestNet(9)
	n1 := tn.addNode(1, nil)
	n2 := tn.addNode(2, nil)
	n3 := tn.addNode(3, nil)
	n4 := tn.addNode(4, nil)
	tn.connect(1, 2)
	tn.connect(1, 3)
	tn.connect(2, 4)
	tn.connect(3, 4)

	n1.Subscribe(surveillanceInterest(), nil)
	pub := n4.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(2*time.Second, 500*time.Millisecond, func() {
		seq++
		n4.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(60 * time.Second)

	negrf := n1.Stats.NegReinforcements + n2.Stats.NegReinforcements +
		n3.Stats.NegReinforcements + n4.Stats.NegReinforcements
	if negrf == 0 {
		t.Error("duplicate delivery in a diamond should trigger negative reinforcement")
	}
	// Pruning must bound duplicate plain-data delivery: without it, every
	// one of the ~116 events would arrive at the sink twice. Compare with
	// an identical run with negative reinforcement disabled.
	dupsWith := n1.Stats.Duplicates
	tn2 := newTestNet(9)
	d1 := tn2.addNode(1, func(c *Config) { c.DisableNegRF = true })
	tn2.addNode(2, func(c *Config) { c.DisableNegRF = true })
	tn2.addNode(3, func(c *Config) { c.DisableNegRF = true })
	d4 := tn2.addNode(4, func(c *Config) { c.DisableNegRF = true })
	tn2.connect(1, 2)
	tn2.connect(1, 3)
	tn2.connect(2, 4)
	tn2.connect(3, 4)
	d1.Subscribe(surveillanceInterest(), nil)
	pub2 := d4.Publish(surveillancePublication())
	seq2 := int32(0)
	tn2.s.Every(2*time.Second, 500*time.Millisecond, func() {
		seq2++
		d4.Send(pub2, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq2)})
	})
	tn2.s.RunUntil(60 * time.Second)
	dupsWithout := d1.Stats.Duplicates
	if dupsWith >= dupsWithout {
		t.Errorf("negative reinforcement should reduce sink duplicates: with=%d without=%d",
			dupsWith, dupsWithout)
	}
}

func TestPathRepairAfterNodeFailure(t *testing.T) {
	// Diamond with distinct path lengths: 1-2-4 and 1-3-4. Kill whichever
	// relay carries data; periodic exploratory messages must re-establish
	// delivery through the other relay (section 3.1 path repair).
	tn := newTestNet(10)
	n1 := tn.addNode(1, nil)
	tn.addNode(2, nil)
	tn.addNode(3, nil)
	n4 := tn.addNode(4, nil)
	tn.connect(1, 2)
	tn.connect(1, 3)
	tn.connect(2, 4)
	tn.connect(3, 4)

	var deliveries []time.Duration
	n1.Subscribe(surveillanceInterest(), func(m *message.Message) {
		deliveries = append(deliveries, tn.s.Now())
	})
	pub := n4.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(2*time.Second, time.Second, func() {
		seq++
		n4.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})

	tn.s.RunUntil(10 * time.Second)
	if len(deliveries) == 0 {
		t.Fatal("no deliveries before failure")
	}
	// Kill the relay on the reinforced path.
	e := firstEntry(n4)
	victim := uint32(2)
	for nb, g := range e.gradients {
		if g.reinforced(tn.s.Now()) {
			victim = uint32(nb)
		}
	}
	tn.dead[victim] = true
	before := len(deliveries)
	tn.s.RunUntil(120 * time.Second)
	after := len(deliveries) - before
	if after < 20 {
		t.Errorf("only %d deliveries after killing node %d; repair failed", after, victim)
	}
}

func TestPathRepair(t *testing.T) {
	// The ISSUE's acceptance criterion, at the core layer: crash the
	// reinforced next-hop with Detach (the fault-injection primitive, not
	// just a silent link) and delivery must resume within two exploratory
	// intervals — the bound the paper's repair-cadence argument implies
	// (section 3.1: exploratory data periodically re-discovers routes;
	// reinforcement re-converges on the first one that delivers).
	const exploratory = 15 * time.Second
	tn := newTestNet(12)
	tweak := func(c *Config) {
		c.ExploratoryEvery = 0
		c.ExploratoryInterval = exploratory
	}
	n1 := tn.addNode(1, tweak)
	tn.addNode(2, tweak)
	tn.addNode(3, tweak)
	n4 := tn.addNode(4, tweak)
	tn.connect(1, 2)
	tn.connect(1, 3)
	tn.connect(2, 4)
	tn.connect(3, 4)

	sentAt := map[int32]time.Duration{}
	firstRx := map[int32]time.Duration{}
	n1.Subscribe(surveillanceInterest(), func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeySequence); ok {
			if _, seen := firstRx[a.Val.Int32()]; !seen {
				firstRx[a.Val.Int32()] = tn.s.Now()
			}
		}
	})
	pub := n4.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(2*time.Second, time.Second, func() {
		seq++
		sentAt[seq] = tn.s.Now()
		n4.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})

	// Let the path converge, then crash the relay the sink reinforced.
	var victim uint32
	var killAt time.Duration
	var killSeq int32
	tn.s.After(30*time.Second, func() {
		up, ok := n1.ReinforcedUpstream(surveillanceInterest())
		if !ok {
			return
		}
		victim = up
		killAt = tn.s.Now()
		killSeq = seq
		tn.nodes[victim].Detach()
		tn.dead[victim] = true // transceiver gone too, as in a real crash
	})
	tn.s.RunUntil(2 * time.Minute)

	if victim == 0 {
		t.Fatal("no reinforced upstream at the sink after 30s; path never converged")
	}
	if victim != 2 && victim != 3 {
		t.Fatalf("reinforced upstream is %d, expected relay 2 or 3", victim)
	}
	// First delivery of an event originated after the crash bounds the
	// repair time.
	repairAt := time.Duration(-1)
	for s, at := range firstRx {
		if s > killSeq && (repairAt < 0 || at < repairAt) {
			repairAt = at
		}
	}
	if repairAt < 0 {
		t.Fatalf("no post-crash events delivered after killing node %d", victim)
	}
	if ttr := repairAt - killAt; ttr > 2*exploratory {
		t.Errorf("repair took %v after killing node %d; want <= 2 exploratory intervals (%v)",
			ttr, victim, 2*exploratory)
	}
}

func TestDetachFreezesAndRestartRejoins(t *testing.T) {
	// Detach must silence the node (no sends, no receives, no timer
	// activity) and Restart must bring it back with fresh protocol state
	// that still serves its application: the subscription re-floods
	// interests and delivery resumes.
	tn := newTestNet(13)
	nodes := tn.line(3)
	sink, relay, source := nodes[0], nodes[1], nodes[2]

	got := 0
	sink.Subscribe(surveillanceInterest(), func(*message.Message) { got++ })
	pub := source.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(2*time.Second, time.Second, func() {
		seq++
		source.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(10 * time.Second)
	if got == 0 {
		t.Fatal("no deliveries before crash")
	}

	relay.Detach()
	if !relay.Detached() {
		t.Error("Detached() must report true after Detach")
	}
	if err := relay.Send(0, nil); err != ErrDetached {
		// Send checks detachment before handle validity.
		t.Errorf("Send on detached node: err = %v, want ErrDetached", err)
	}
	before := got
	beforeSent := relay.Stats.BytesSent
	tn.s.RunUntil(25 * time.Second)
	if got != before {
		t.Errorf("%d deliveries through a 1-wide cut with the relay detached", got-before)
	}
	if relay.Stats.BytesSent != beforeSent {
		t.Errorf("detached relay sent %d bytes", relay.Stats.BytesSent-beforeSent)
	}

	relay.Restart()
	if relay.Detached() {
		t.Error("Detached() must report false after Restart")
	}
	if relay.Entries() != 0 {
		t.Errorf("restarted relay has %d stale entries", relay.Entries())
	}
	tn.s.RunUntil(60 * time.Second)
	if got <= before {
		t.Error("delivery did not resume after the relay restarted")
	}
}

func TestSendErrorsOnUnknownHandles(t *testing.T) {
	tn := newTestNet(11)
	n := tn.addNode(1, nil)
	if err := n.Send(99, nil); err == nil {
		t.Error("Send on unknown publication must fail")
	}
	if err := n.Unpublish(99); err == nil {
		t.Error("Unpublish on unknown handle must fail")
	}
	if err := n.Unsubscribe(99); err == nil {
		t.Error("Unsubscribe on unknown handle must fail")
	}
	if err := n.RemoveFilter(99); err == nil {
		t.Error("RemoveFilter on unknown handle must fail")
	}
	pub := n.Publish(surveillancePublication())
	if err := n.Unpublish(pub); err != nil {
		t.Error(err)
	}
	if err := n.Send(pub, nil); err == nil {
		t.Error("Send after Unpublish must fail")
	}
}

func TestMultipleSubscriptionsDelivered(t *testing.T) {
	tn := newTestNet(12)
	nodes := tn.line(2)
	var a, b int
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) { a++ })
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) { b++ })
	pub := nodes[1].Publish(surveillancePublication())
	tn.s.After(2*time.Second, func() { nodes[1].Send(pub, nil) })
	tn.s.RunUntil(5 * time.Second)
	if a != 1 || b != 1 {
		t.Errorf("both subscriptions should deliver once: a=%d b=%d", a, b)
	}
}

func TestExploratoryCadence(t *testing.T) {
	tn := newTestNet(13)
	nodes := tn.line(2)
	var classes []message.Class
	nodes[0].Subscribe(surveillanceInterest(), func(m *message.Message) {
		classes = append(classes, m.Class)
	})
	pub := nodes[1].Publish(surveillancePublication())
	// Space the sends so the reinforcement triggered by the first
	// exploratory message establishes the high-rate path before plain data
	// follows (back-to-back sends would be dropped: no reinforced
	// gradient exists yet, which is faithful diffusion behaviour).
	for i := 0; i < 10; i++ {
		i := i
		tn.s.After(time.Second+time.Duration(i)*500*time.Millisecond, func() {
			nodes[1].Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, int32(i))})
		})
	}
	tn.s.RunUntil(10 * time.Second)
	if len(classes) != 10 {
		t.Fatalf("delivered %d of 10", len(classes))
	}
	// ExploratoryEvery=5: messages 0 and 5 are exploratory.
	exp := 0
	for _, c := range classes {
		if c == message.ExploratoryData {
			exp++
		}
	}
	if exp != 2 {
		t.Errorf("%d exploratory messages, want 2", exp)
	}
}

func TestReceiveGarbage(t *testing.T) {
	tn := newTestNet(14)
	n := tn.addNode(1, nil)
	n.Receive(2, []byte{1, 2, 3})
	n.Receive(2, nil)
	tn.s.RunUntil(time.Second)
	// Must not panic or create state.
	if n.Entries() != 0 {
		t.Error("garbage must not create entries")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("missing Link must panic")
		}
	}()
	NewNode(Config{Clock: sim.New(1), Rand: sim.New(1).Rand()})
}

func TestCloseCancelsTimers(t *testing.T) {
	tn := newTestNet(15)
	nodes := tn.line(2)
	nodes[0].Subscribe(surveillanceInterest(), nil)
	tn.s.RunUntil(time.Second)
	sent := nodes[0].Stats.SentByClass[message.Interest]
	nodes[0].Close()
	tn.s.RunUntil(5 * time.Minute)
	if nodes[0].Stats.SentByClass[message.Interest] != sent {
		t.Error("Close must stop interest refreshes")
	}
}
