// Package core implements directed diffusion: the gradient-based,
// attribute-named communication core of the paper, together with the
// publish/subscribe Network Routing API (paper Figure 4) and the filter API
// (paper Figure 5).
//
// A Node is event-driven and single-threaded, exactly like the paper's
// reference daemon: it reacts to link-layer receptions and clock callbacks
// and never blocks. All state transitions happen on the owning executor —
// the simulator's event loop (internal/sim) or a wall-clock rt.Loop
// (internal/rt), which serializes receptions, timers and control-plane
// calls onto one goroutine so the same node code runs live unmodified.
//
// The protocol follows section 3.1:
//
//   - Sinks subscribe; subscriptions periodically originate interests that
//     flood hop-by-hop, and every receiving node stores the interest and
//     sets up a gradient toward the neighbor it came from.
//   - Sources publish; data is sent only when matching gradients exist.
//     Periodically (and initially) data is marked exploratory and flooded
//     along all gradients; other data follows reinforced gradients only.
//   - A sink reinforces the neighbor that delivered the first copy of new
//     exploratory data; reinforcement propagates hop-by-hop toward the
//     source, creating the high-rate delivery path.
//   - Duplicate non-exploratory data triggers negative reinforcement,
//     which tears down redundant reinforced paths.
//   - Filters (see filter.go) interpose on every message before the core
//     processes it, enabling in-network processing.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/custody"
	"diffusion/internal/match"
	"diffusion/internal/message"
	"diffusion/internal/sim"
	"diffusion/internal/telemetry"
)

// Link is the hop-by-hop communication service beneath diffusion: broadcast
// or unicast to immediate neighbors, best effort. internal/mac implements
// it over the simulated radio; internal/transport implements it over UDP
// datagrams and in-process channels for live deployments.
type Link interface {
	// ID returns this node's link-layer identifier.
	ID() uint32
	// Send transmits payload to dst (a neighbor ID or message.Broadcast).
	Send(dst uint32, payload []byte) error
}

// Broadcast aliases the link broadcast address at the diffusion layer.
const Broadcast = uint32(message.Broadcast)

// self returns this node's identifier as a message.NodeID.
func selfID(n *Node) message.NodeID { return message.NodeID(n.ID()) }

// Config parameterizes a Node. Zero fields take the paper's testbed
// defaults.
type Config struct {
	// Clock schedules timers; Rand supplies jitter. Both are required.
	Clock sim.Clock
	Rand  *rand.Rand
	// Link is the hop-by-hop transport. Required.
	Link Link
	// InterestInterval is the period between interest refreshes
	// (testbed: 60 s).
	InterestInterval time.Duration
	// GradientLifetime is how long a gradient survives without refresh.
	GradientLifetime time.Duration
	// ExploratoryInterval is the period between exploratory data
	// messages per publication (testbed and simulation: one every
	// 50-60 s; with the testbed's 6 s events this yields the paper's
	// 1-in-10 ratio). It applies when ExploratoryEvery is zero.
	ExploratoryInterval time.Duration
	// ExploratoryEvery, when positive, switches to a count-based cadence:
	// every Nth data message per publication is exploratory (ablations).
	ExploratoryEvery int
	// ReinforcementTimeout is how long a gradient stays reinforced
	// without a fresh positive reinforcement; defaults to 2.5 exploratory
	// intervals so one lost reinforcement does not break a path.
	ReinforcementTimeout time.Duration
	// TTL bounds interest and exploratory flooding in hops.
	TTL uint8
	// ForwardJitter is the maximum random delay before re-flooding an
	// interest or exploratory message, de-synchronizing neighbors.
	ForwardJitter time.Duration
	// SeenTTL is how long message IDs stay in the duplicate-suppression
	// cache.
	SeenTTL time.Duration
	// NegativeReinforcement enables duplicate-triggered negative
	// reinforcement (on by default; DisableNegRF turns it off).
	DisableNegRF bool
	// Flight, when set, records every reception and transmission into the
	// node's flight-recorder ring (always-on crash diagnostics). Nil
	// disables recording.
	Flight *telemetry.Flight
	// Custody, when set, enables disruption-tolerant custody transfer
	// (custody.go): data with no forward path is queued here instead of
	// dropped and replayed when gradients reform. The same queue is fed by
	// the live transport's custody accepts; back it with a custody.Store
	// for crash durability.
	Custody *custody.Queue
	// EnergyAware enables energy-aware reinforcement at sinks: instead of
	// always reinforcing the first neighbor to deliver new exploratory
	// data, the sink briefly collects the duplicate deliverers and picks
	// the candidate that has carried the least plain data recently,
	// spreading the high-rate path across relays (Raicu et al.'s
	// e3D-style load balancing). Off by default: the paper's low-delay
	// heuristic.
	EnergyAware bool
	// TraceSample, in (0,1], enables flight-path tracing: each locally
	// originated message (published data, interest floods) is tagged with
	// a random 16-bit flow ID with this probability, and every layer that
	// handles a sampled message records a span into Spans. Zero disables
	// tracing entirely — the sampling draw then consumes no randomness, so
	// untraced runs are bit-identical to pre-trace builds.
	TraceSample float64
	// Spans receives flight-path span events for sampled messages.
	// Required when TraceSample > 0.
	Spans *telemetry.SpanRing
}

func (c *Config) fill() {
	if c.Clock == nil || c.Rand == nil || c.Link == nil {
		panic("core: Config requires Clock, Rand and Link")
	}
	if c.InterestInterval <= 0 {
		c.InterestInterval = 60 * time.Second
	}
	if c.GradientLifetime <= 0 {
		c.GradientLifetime = c.InterestInterval*2 + c.InterestInterval/2
	}
	if c.ExploratoryEvery <= 0 && c.ExploratoryInterval <= 0 {
		c.ExploratoryInterval = 60 * time.Second
	}
	if c.ReinforcementTimeout <= 0 {
		base := c.ExploratoryInterval
		if base <= 0 {
			base = 60 * time.Second
		}
		c.ReinforcementTimeout = base*2 + base/2
	}
	if c.TTL == 0 {
		c.TTL = 16
	}
	if c.ForwardJitter <= 0 {
		// Re-flood de-synchronization. At 13 kb/s a flooded message takes
		// tens of milliseconds of airtime per hop; neighbors that re-flood
		// within the same window collide at hidden terminals, so the
		// window must cover several message airtimes.
		c.ForwardJitter = 500 * time.Millisecond
	}
	if c.SeenTTL <= 0 {
		c.SeenTTL = 2 * time.Minute
	}
}

// Handles returned by the NR API calls.
type (
	// SubscriptionHandle identifies an active subscription.
	SubscriptionHandle int
	// PublicationHandle identifies an active publication.
	PublicationHandle int
	// FilterHandle identifies an installed filter.
	FilterHandle int
)

// DataCallback is invoked on local delivery of a matching message (paper:
// "a callback function is then invoked whenever relevant data arrives at
// the node"). The callback must not retain or mutate m.
type DataCallback func(m *message.Message)

// Stats counts a node's diffusion-layer activity. BytesSent over all nodes,
// normalized per distinct delivered event, is the Figure 8 metric.
type Stats struct {
	BytesSent          int
	SentByClass        [message.NumClasses]int
	ReceivedByClass    [message.NumClasses]int
	Duplicates         int // duplicate-suppression cache hits
	SeenMisses         int // cache misses (new message IDs cached)
	LocalDeliveries    int
	DataSuppressed     int // data with no matching gradient state
	DataNoPath         int // locally originated data with no reinforced path
	NegReinforcements  int
	LinkSendErrors     int
	InterestsSeen      int // distinct (non-duplicate) interests processed
	GradientsCreated   int
	GradientsExpired   int
	FilterInvocations  int // messages handed to a filter callback
	NeighborDeaths     int // dead-neighbor events from the failure detector
	NeighborRecoveries int // recovered-neighbor events
	CustodyCaptured    int // data taken into local custody (no forward path)
	EnergyShifts       int // reinforcements steered off the first deliverer
}

type subscription struct {
	attrs   attr.Vec
	cb      DataCallback
	passive bool // taps interests locally, originates no interest flood
	local   bool // SubscribeLocal: sink entry installed, no interest flood
	refresh sim.Timer
	// ihash is the hash of the subscription's on-the-wire interest form,
	// precomputed so interest origination finds its sibling subscriptions
	// by table lookup instead of rehashing every subscription.
	ihash uint64
	// slot is the subscription's handle in the delivery match index.
	slot match.Handle
}

type publication struct {
	attrs   attr.Vec
	count   int           // data messages sent
	lastExp time.Duration // time of the last exploratory message
	sentAny bool
}

// Node is one diffusion instance.
type Node struct {
	cfg    Config
	randID uint32
	pktNum uint32

	subs    map[SubscriptionHandle]*subscription
	pubs    map[PublicationHandle]*publication
	filters []*filter
	nextSub SubscriptionHandle
	nextPub PublicationHandle
	nextFil FilterHandle

	// subsByHash groups subscription handles by their interest-form hash,
	// so a locally originated interest finds its sibling subscriptions
	// without scanning the subscription table.
	subsByHash map[uint64][]SubscriptionHandle
	// filtersByHandle resolves a filter handle to its chain entry in O(1)
	// (SendMessageToNext and indexed chain dispatch).
	filtersByHandle map[FilterHandle]*filter

	// midx holds the inverted match indexes behind every match site; see
	// matchindex.go for the exactness and determinism contract.
	midx matchIndexes
	// emptyEntries tracks entries with no gradients and no local sinks —
	// the GC condition — so purge paths need not scan the entry table.
	emptyEntries map[uint64]*interestEntry
	// nbTouch maps a neighbor to the entries whose state references it
	// (conservatively), so NeighborDead purges by neighbor.
	nbTouch map[message.NodeID]map[uint64]*interestEntry
	// entryBufs/subBufs are free lists for pooled match-result snapshots
	// (see matchindex.go).
	entryBufs [][]*interestEntry
	subBufs   [][]*subscription

	entries map[uint64]*interestEntry // keyed by attr hash
	seen    map[message.ID]time.Duration
	// expFrom records which neighbor delivered each exploratory data
	// message, so positive reinforcement can retrace that message's exact
	// path (reinforcements carry the exploratory ID they reinforce).
	expFrom map[message.ID]message.NodeID
	// expCand collects every neighbor that delivered a copy of an
	// exploratory message (first arrival and duplicates), the candidate
	// set for energy-aware reinforcement. Populated only with EnergyAware.
	expCand map[message.ID][]message.NodeID

	// custodyLink is the link's custody-transfer surface, when it has one
	// (the UDP transport). Nil means store-and-carry replay (simulator).
	custodyLink CustodyLink

	// suppressForward disables core re-flooding for the message being
	// processed (set by ProcessNoForward).
	suppressForward bool

	// detached marks a crashed node: all timers are cancelled and every
	// reception, transmission and API send is ignored until Restart.
	detached bool

	housekeep sim.Timer

	Stats Stats
}

// NewNode creates a diffusion node. The node is live immediately; the
// caller must wire its Receive method as the link-layer upcall.
func NewNode(cfg Config) *Node {
	cfg.fill()
	n := &Node{
		cfg:             cfg,
		randID:          cfg.Rand.Uint32(),
		subs:            map[SubscriptionHandle]*subscription{},
		pubs:            map[PublicationHandle]*publication{},
		subsByHash:      map[uint64][]SubscriptionHandle{},
		filtersByHandle: map[FilterHandle]*filter{},
		emptyEntries:    map[uint64]*interestEntry{},
		nbTouch:         map[message.NodeID]map[uint64]*interestEntry{},
		entries:         map[uint64]*interestEntry{},
		seen:            map[message.ID]time.Duration{},
		expFrom:         map[message.ID]message.NodeID{},
		expCand:         map[message.ID][]message.NodeID{},
	}
	n.midx.init()
	if cfg.Custody != nil {
		if cl, ok := cfg.Link.(CustodyLink); ok {
			n.custodyLink = cl
		}
	}
	n.housekeep = everyClock(cfg.Clock, housekeepInterval, n.housekeeping)
	return n
}

// housekeepInterval is the period of the state GC pass; it must be well
// under SeenTTL so table sizes track traffic rate, not run length.
const housekeepInterval = 5 * time.Second

// everyClock arms a self-rearming timer on any Clock implementation.
func everyClock(c sim.Clock, period time.Duration, fn func()) sim.Timer {
	rt := &repeating{}
	var arm func()
	arm = func() {
		rt.inner = c.After(period, func() {
			if rt.stopped {
				return
			}
			fn()
			if !rt.stopped {
				arm()
			}
		})
	}
	arm()
	return rt
}

type repeating struct {
	inner   sim.Timer
	stopped bool
}

func (r *repeating) Cancel() bool {
	if r.stopped {
		return false
	}
	r.stopped = true
	if r.inner != nil {
		return r.inner.Cancel()
	}
	return false
}

// ID returns the node's link-layer identifier.
func (n *Node) ID() uint32 { return n.cfg.Link.ID() }

// Close cancels the node's timers. The node must not be used afterwards.
func (n *Node) Close() {
	n.housekeep.Cancel()
	for _, s := range n.subs {
		if s.refresh != nil {
			s.refresh.Cancel()
		}
	}
}

// Detach models a node crash: every timer is cancelled and, until Restart,
// the node ignores receptions, sends nothing, and rejects API sends with
// ErrDetached. Application state (subscriptions, publications, filters)
// survives — it lives in the node's nonvolatile program — but all protocol
// state behaves as if frozen in dead RAM. Detaching twice is a no-op.
func (n *Node) Detach() {
	if n.detached {
		return
	}
	n.detached = true
	n.housekeep.Cancel()
	for _, s := range n.subs {
		if s.refresh != nil {
			s.refresh.Cancel()
			s.refresh = nil
		}
	}
}

// Restart reboots a detached node: gradients, the duplicate-suppression
// cache and reinforcement traces are dropped (volatile protocol state does
// not survive a crash), and the application layer re-subscribes and
// re-publishes — active subscriptions restart their interest floods and
// every publication's next data message is exploratory again, exactly as a
// freshly booted daemon would behave. Restarting an attached node is a
// no-op.
func (n *Node) Restart() {
	if !n.detached {
		return
	}
	n.detached = false
	n.entries = map[uint64]*interestEntry{}
	n.midx.entries.Reset()
	n.emptyEntries = map[uint64]*interestEntry{}
	n.nbTouch = map[message.NodeID]map[uint64]*interestEntry{}
	n.seen = map[message.ID]time.Duration{}
	n.expFrom = map[message.ID]message.NodeID{}
	n.expCand = map[message.ID][]message.NodeID{}
	for _, p := range n.pubs {
		p.count = 0
		p.lastExp = 0
		p.sentAny = false
	}
	for h, s := range n.subs {
		switch {
		case s.local:
			// Re-install the local sink entry (SubscribeLocal does this at
			// subscription time).
			e := n.entryFor(interestFromSub(s.attrs))
			if e.localSubs == nil {
				e.localSubs = map[SubscriptionHandle]bool{}
			}
			e.localSubs[h] = true
			n.noteEntryEmptiness(e)
		case !s.passive:
			n.armRefresh(s)
		}
	}
	n.housekeep = everyClock(n.cfg.Clock, housekeepInterval, n.housekeeping)
}

// Detached reports whether the node is currently crashed.
func (n *Node) Detached() bool { return n.detached }

// nextID allocates a fresh message ID.
func (n *Node) nextID() message.ID {
	n.pktNum++
	return message.ID{RandID: n.randID, PktNum: n.pktNum}
}

// allocFlow draws the flight-path sampling decision for one locally
// originated message: zero (unsampled) or a non-zero 16-bit flow ID. The
// random stream is consumed only when tracing is enabled, so a run with
// TraceSample == 0 is byte-identical to one on a build without tracing.
func (n *Node) allocFlow() uint16 {
	if n.cfg.Spans == nil || n.cfg.TraceSample <= 0 {
		return 0
	}
	if n.cfg.TraceSample < 1 && n.cfg.Rand.Float64() >= n.cfg.TraceSample {
		return 0
	}
	f := uint16(n.cfg.Rand.Uint32())
	if f == 0 {
		f = 1 // zero means unsampled on the wire
	}
	return f
}

// span records a flight-path event for m. A nil ring or an unsampled
// message (flow zero) costs one branch.
func (n *Node) span(ev telemetry.SpanEvent, layer telemetry.SpanLayer, m *message.Message, peer uint32, reason telemetry.DropReason) {
	if n.cfg.Spans == nil || m.Flow == 0 {
		return
	}
	n.cfg.Spans.Record(telemetry.Span{
		At: n.cfg.Clock.Now(), Node: n.ID(), Peer: peer, ID: m.ID,
		Flow: m.Flow, Hop: m.HopCount, Event: ev, Layer: layer,
		Reason: reason, Class: m.Class,
	})
}

// API errors.
var (
	ErrUnknownHandle = errors.New("core: unknown handle")
	ErrNoGradient    = errors.New("core: no matching gradient state")
	ErrDetached      = errors.New("core: node is detached (crashed)")
)

// Subscribe registers interest in the given attributes and returns a
// handle. Unless the subscription is a passive interest tap (it contains a
// "class EQ interest" formal — the paper's "subscribe for subscriptions"
// idiom), an interest is originated immediately and refreshed every
// InterestInterval.
func (n *Node) Subscribe(attrs attr.Vec, cb DataCallback) SubscriptionHandle {
	n.nextSub++
	h := n.nextSub
	s := &subscription{attrs: attrs.Clone(), cb: cb, passive: isPassive(attrs)}
	n.installSub(h, s)
	if !s.passive {
		n.armRefresh(s)
	}
	return h
}

// installSub registers a new subscription in the table and the secondary
// structures: the delivery match index and the interest-hash grouping.
func (n *Node) installSub(h SubscriptionHandle, s *subscription) {
	s.ihash = interestFromSub(s.attrs).Hash()
	s.slot = n.midx.subs.Add(s.attrs, uint64(h))
	n.subs[h] = s
	n.subsByHash[s.ihash] = append(n.subsByHash[s.ihash], h)
}

// armRefresh starts (or restarts) a subscription's periodic interest
// origination, with a small initial jitter so co-located sinks do not
// synchronize floods.
func (n *Node) armRefresh(s *subscription) {
	first := time.Duration(n.cfg.Rand.Int63n(int64(n.cfg.ForwardJitter) + 1))
	var arm func()
	arm = func() {
		if n.detached {
			return
		}
		n.originateInterest(s)
		jitter := time.Duration(n.cfg.Rand.Int63n(int64(n.cfg.InterestInterval) / 10))
		s.refresh = n.cfg.Clock.After(n.cfg.InterestInterval+jitter-n.cfg.InterestInterval/20, arm)
	}
	s.refresh = n.cfg.Clock.After(first, arm)
}

// isPassive reports whether attrs describe an interest tap rather than a
// data subscription.
func isPassive(attrs attr.Vec) bool {
	for _, a := range attrs {
		if a.Key == attr.KeyClass && a.Op == attr.EQ &&
			a.Val.Numeric() && int32(a.Val.AsFloat()) == attr.ClassInterest {
			return true
		}
	}
	return false
}

// SubscribeLocal registers a subscription that never floods an interest —
// the sink side of one-phase push diffusion: matching exploratory data
// arriving at this node is delivered and reinforced, and the
// reinforcements (not interests) install the delivery path hop-by-hop
// back to the sources.
func (n *Node) SubscribeLocal(attrs attr.Vec, cb DataCallback) SubscriptionHandle {
	n.nextSub++
	h := n.nextSub
	n.installSub(h, &subscription{attrs: attrs.Clone(), cb: cb, passive: true, local: true})
	// Install the local entry so matching data finds a sink here.
	e := n.entryFor(interestFromSub(attrs))
	if e.localSubs == nil {
		e.localSubs = map[SubscriptionHandle]bool{}
	}
	e.localSubs[h] = true
	n.noteEntryEmptiness(e)
	return h
}

// Unsubscribe cancels a subscription. Gradients elsewhere expire on their
// own once refreshes stop, exactly as in the paper.
func (n *Node) Unsubscribe(h SubscriptionHandle) error {
	s, ok := n.subs[h]
	if !ok {
		return fmt.Errorf("%w: subscription %d", ErrUnknownHandle, h)
	}
	if s.refresh != nil {
		s.refresh.Cancel()
	}
	delete(n.subs, h)
	n.midx.subs.Remove(s.slot)
	if list := n.subsByHash[s.ihash]; len(list) <= 1 {
		delete(n.subsByHash, s.ihash)
	} else {
		for i, hh := range list {
			if hh == h {
				list[i] = list[len(list)-1]
				n.subsByHash[s.ihash] = list[:len(list)-1]
				break
			}
		}
	}
	// Drop local-sink membership. The only entry that can hold h as a sink
	// is the subscription's own interest entry: every membership site
	// (coreInterest's local branch, SubscribeLocal, Restart) keys by exactly
	// interestFromSub(s.attrs).Hash(), which is s.ihash.
	if e, ok := n.entries[s.ihash]; ok {
		delete(e.localSubs, h)
		n.noteEntryEmptiness(e)
	}
	return nil
}

// Publish declares that this node can supply data matching attrs. The
// attributes given must cover what later Send calls emit.
func (n *Node) Publish(attrs attr.Vec) PublicationHandle {
	n.nextPub++
	n.pubs[n.nextPub] = &publication{attrs: attrs.Clone()}
	return n.nextPub
}

// Unpublish withdraws a publication.
func (n *Node) Unpublish(h PublicationHandle) error {
	if _, ok := n.pubs[h]; !ok {
		return fmt.Errorf("%w: publication %d", ErrUnknownHandle, h)
	}
	delete(n.pubs, h)
	return nil
}

// Send emits one data message for publication h, merging the publication
// attributes with extra. Following the paper, "if there are no active
// subscriptions, published data does not leave the node": without matching
// gradient state the message is counted in DataSuppressed and dropped.
// Messages are periodically marked exploratory (time-based by default,
// count-based when ExploratoryEvery is set); the first message always is.
func (n *Node) Send(h PublicationHandle, extra attr.Vec) error {
	return n.send(h, extra, false)
}

// SendExploratory emits one data message for publication h that is always
// exploratory: it floods along all gradients regardless of reinforcement.
// Use it for infrequent one-shot reports (monitoring scans, elections)
// where flooding robustness matters more than path efficiency.
func (n *Node) SendExploratory(h PublicationHandle, extra attr.Vec) error {
	return n.send(h, extra, true)
}

// SendPush emits one-phase-push data: exploratory messages flood the whole
// network without any interest state, and plain data follows the gradients
// installed by sink reinforcements. Pair with SubscribeLocal on the sinks.
func (n *Node) SendPush(h PublicationHandle, extra attr.Vec) error {
	return n.send(h, extra.With(attr.AlgorithmIsPush()), false)
}

func (n *Node) send(h PublicationHandle, extra attr.Vec, forceExploratory bool) error {
	if n.detached {
		return ErrDetached
	}
	p, ok := n.pubs[h]
	if !ok {
		return fmt.Errorf("%w: publication %d", ErrUnknownHandle, h)
	}
	attrs := p.attrs.With(extra...)
	if _, ok := attrs.FindActual(attr.KeyClass); !ok {
		attrs = attrs.With(attr.ClassIsData())
	}
	cls := message.Data
	switch {
	case forceExploratory:
		cls = message.ExploratoryData
	case n.cfg.ExploratoryEvery > 0:
		if p.count%n.cfg.ExploratoryEvery == 0 {
			cls = message.ExploratoryData
		}
	case !p.sentAny || n.cfg.Clock.Now()-p.lastExp >= n.cfg.ExploratoryInterval:
		cls = message.ExploratoryData
	}
	if cls == message.ExploratoryData {
		p.lastExp = n.cfg.Clock.Now()
	}
	p.sentAny = true
	p.count++
	m := &message.Message{
		Class:   cls,
		ID:      n.nextID(),
		PrevHop: selfID(n),
		NextHop: message.Broadcast,
		Flow:    n.allocFlow(),
		Attrs:   attrs,
	}
	n.dispatch(m)
	return nil
}

// Receive is the link-layer upcall: the MAC delivers every reassembled
// payload here. Malformed payloads are dropped.
func (n *Node) Receive(from uint32, payload []byte) {
	if n.detached {
		return
	}
	m, err := message.Unmarshal(payload)
	if err != nil {
		return
	}
	// Trust the link sender over the (spoofable, possibly stale) header.
	m.PrevHop = message.NodeID(from)
	if int(m.Class) < len(n.Stats.ReceivedByClass) {
		n.Stats.ReceivedByClass[m.Class]++
	}
	if n.cfg.Flight != nil {
		n.cfg.Flight.Record(telemetry.FlightRecord{
			At: n.cfg.Clock.Now(), Node: n.ID(), Peer: from, ID: m.ID,
			Verb: telemetry.VerbRecv, Class: m.Class, Hops: m.HopCount,
		})
	}
	n.span(telemetry.SpanRecv, telemetry.SpanLayerCore, m, from, telemetry.DropNone)
	n.dispatch(m)
}

// dispatch runs a message through the filter chain; if no filter consumes
// it, the core processes it. A detached node processes nothing, so filter
// timers that fire across a crash cannot resurrect traffic.
func (n *Node) dispatch(m *message.Message) {
	if n.detached {
		return
	}
	// Custody acks are pure link-local control: they release the named
	// item and are never filtered, forwarded, or seen-cached (their ID is
	// the acknowledged message's ID, which must stay ack-able).
	if m.Class == message.CustodyAck {
		if m.PrevHop != selfID(n) {
			n.custodyDischarge(m.ID)
		}
		return
	}
	n.runChainFrom(m, 0)
}

// transmit sends m out the link to m.NextHop, accounting bytes. Jittered
// forwards scheduled before a crash land here after it; a detached node
// transmits nothing.
// transmit hands m to the link layer. The returned error is the link's
// admission verdict (e.g. a full MAC transmit queue); soft-state traffic
// ignores it — the next refresh retries — but custody replay uses it as
// backpressure, keeping custody of anything the link would have dropped.
func (n *Node) transmit(m *message.Message) error {
	if n.detached {
		return nil
	}
	payload := m.Marshal()
	n.Stats.BytesSent += len(payload)
	if int(m.Class) < len(n.Stats.SentByClass) {
		n.Stats.SentByClass[m.Class]++
	}
	if n.cfg.Flight != nil {
		n.cfg.Flight.Record(telemetry.FlightRecord{
			At: n.cfg.Clock.Now(), Node: n.ID(), Peer: uint32(m.NextHop), ID: m.ID,
			Verb: telemetry.VerbSend, Class: m.Class, Hops: m.HopCount,
		})
	}
	// Store-and-carry custody holds every outgoing data message until the
	// next hop's CustodyAck releases it: originations survive first-hop
	// loss, and forwards (usually already admitted at receive time — the
	// Accept is then a held no-op) survive collisions past the MAC.
	if n.carryMode() && m.IsData() {
		if _, fresh := n.cfg.Custody.Accept(m.ID, payload); fresh {
			n.Stats.CustodyCaptured++
		}
	}
	// Reinforced-class data over a custody-capable link moves hop-by-hop
	// under custody transfer: take custody locally (durable when the queue
	// is journaled), then offer it to the next hop. The item stays queued —
	// surviving a partition or our own crash — until the peer's durable
	// accept releases it.
	if m.Class == message.Data && m.NextHop != message.Broadcast &&
		n.custodyLink != nil && n.custodyOn() {
		if held, _ := n.cfg.Custody.Accept(m.ID, payload); held {
			n.span(telemetry.SpanCustodyAccept, telemetry.SpanLayerCustody, m, n.ID(), telemetry.DropNone)
			if err := n.custodyLink.SendCustody(uint32(m.NextHop), m.ID, payload); err != nil {
				n.Stats.LinkSendErrors++
				n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.NextHop), telemetry.DropLinkRefused)
				return err
			}
			return nil
		}
		// Custody refused (queue full): fall through to best-effort send.
	}
	if err := n.cfg.Link.Send(uint32(m.NextHop), payload); err != nil {
		n.Stats.LinkSendErrors++
		n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.NextHop), telemetry.DropLinkRefused)
		return err
	}
	return nil
}

// SendDirect transmits m to m.NextHop without further filter or core
// processing. Filters use it to take over forwarding decisions (for
// example the geographic scoping filter).
func (n *Node) SendDirect(m *message.Message) {
	out := m.Clone()
	out.PrevHop = selfID(n)
	if out.ID == (message.ID{}) {
		out.ID = n.nextID()
	}
	n.markSeen(out.ID)
	n.transmit(out)
}

// originateInterest floods one interest for subscription s.
func (n *Node) originateInterest(s *subscription) {
	attrs := s.attrs
	if _, ok := attrs.FindActual(attr.KeyClass); !ok {
		attrs = attrs.With(attr.ClassIsInterest())
	}
	m := &message.Message{
		Class:   message.Interest,
		ID:      n.nextID(),
		PrevHop: selfID(n),
		NextHop: message.Broadcast,
		Flow:    n.allocFlow(),
		Attrs:   attrs,
	}
	n.dispatch(m)
}

// markSeen records a message ID in the duplicate-suppression cache. Every
// insertion is by definition a cache miss (Duplicates counts the hits).
func (n *Node) markSeen(id message.ID) {
	n.Stats.SeenMisses++
	n.seen[id] = n.cfg.Clock.Now()
}

// wasSeen reports whether id is in the cache.
func (n *Node) wasSeen(id message.ID) bool {
	_, ok := n.seen[id]
	return ok
}

// housekeeping purges expired gradients, empty entries, and old seen-IDs,
// then gives custodial data a periodic chance to move (the catch-all
// replay trigger: it needs no event, so it also drains custody restored
// from the journal after a warm restart).
func (n *Node) housekeeping() {
	now := n.cfg.Clock.Now()
	for id, at := range n.seen {
		if now-at > n.cfg.SeenTTL {
			delete(n.seen, id)
			delete(n.expFrom, id)
			delete(n.expCand, id)
		}
	}
	for _, e := range n.entries {
		expired := false
		for nb, g := range e.gradients {
			if now > g.expires {
				delete(e.gradients, nb)
				n.Stats.GradientsExpired++
				n.noteStaleHop(e, nb)
				expired = true
			}
		}
		if expired {
			n.noteEntryEmptiness(e)
		}
		// Stale duplicate counters from a closed negative-reinforcement
		// window would otherwise pin one map entry per neighbor forever.
		if len(e.dupFrom) > 0 && now-e.dupSince > negRFWindow {
			for k := range e.dupFrom {
				delete(e.dupFrom, k)
			}
		}
		// Decay the per-neighbor data-forwarding load so energy-aware
		// reinforcement tracks recent traffic, not history.
		for nb, v := range e.load {
			if v <= 1 {
				delete(e.load, nb)
			} else {
				e.load[nb] = v / 2
			}
		}
		// With custody on, an interest whose gradients all decayed is
		// retained as a cached interest: a mobile custodian (the ferry)
		// must still know *what* is wanted to re-offer the interest and
		// route its custodial data at the next contact. The cache is
		// bounded by the number of distinct interests, not by traffic.
		if len(e.gradients) == 0 && len(e.localSubs) == 0 && !n.custodyOn() {
			n.dropEntry(e)
		}
	}
	n.ReplayCustody()
}

// ActiveSubscriptions returns the handles of every live subscription in
// ascending order. A live daemon's shutdown path uses it to withdraw the
// application layer without bookkeeping of its own.
func (n *Node) ActiveSubscriptions() []SubscriptionHandle {
	out := make([]SubscriptionHandle, 0, len(n.subs))
	for h := range n.subs {
		out = append(out, h)
	}
	sortAscending(out)
	return out
}

// ActivePublications returns the handles of every live publication in
// ascending order.
func (n *Node) ActivePublications() []PublicationHandle {
	out := make([]PublicationHandle, 0, len(n.pubs))
	for h := range n.pubs {
		out = append(out, h)
	}
	sortAscending(out)
	return out
}

// SubscriptionAttrs returns the attribute formals of a live subscription
// (control-plane introspection); ok is false for unknown handles.
func (n *Node) SubscriptionAttrs(h SubscriptionHandle) (attr.Vec, bool) {
	s, ok := n.subs[h]
	if !ok {
		return nil, false
	}
	return s.attrs.Clone(), true
}

// PublicationAttrs returns the attributes of a live publication; ok is
// false for unknown handles.
func (n *Node) PublicationAttrs(h PublicationHandle) (attr.Vec, bool) {
	p, ok := n.pubs[h]
	if !ok {
		return nil, false
	}
	return p.attrs.Clone(), true
}

// Entries returns the number of live interest entries (diagnostics).
func (n *Node) Entries() int { return len(n.entries) }

// SeenSize returns the duplicate-suppression cache population; bounded by
// traffic rate × SeenTTL, not by run length (soak tests assert this).
func (n *Node) SeenSize() int { return len(n.seen) }

// ExpFromSize returns the exploratory-arrival trace population; entries
// age out with their seen-cache records.
func (n *Node) ExpFromSize() int { return len(n.expFrom) }
