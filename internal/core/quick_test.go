package core

import (
	"math/rand"
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
)

// TestRandomizedChurn subjects random small networks to random
// subscribe/publish/send/unsubscribe/failure churn and checks the node
// invariants: no panics, duplicate suppression holds (no subscription sees
// the same message ID twice), and state does not leak after everything is
// torn down.
func TestRandomizedChurn(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		runChurn(t, seed)
	}
}

func runChurn(t *testing.T, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tn := newTestNet(seed)
	n := r.Intn(5) + 3
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = tn.addNode(uint32(i+1), nil)
	}
	// Random connected topology: a spanning chain plus random extras.
	for i := 2; i <= n; i++ {
		tn.connect(uint32(i-1), uint32(i))
	}
	for i := 0; i < n; i++ {
		a, b := uint32(r.Intn(n)+1), uint32(r.Intn(n)+1)
		if a != b {
			tn.connect(a, b)
		}
	}

	tasks := []string{"alpha", "beta"}
	seen := map[SubscriptionHandle]map[message.ID]bool{}
	var subs []struct {
		node *Node
		h    SubscriptionHandle
	}
	var pubs []struct {
		node *Node
		h    PublicationHandle
		task string
	}

	// Random operations over 5 virtual minutes.
	for op := 0; op < 40; op++ {
		at := time.Duration(r.Intn(300)) * time.Second
		node := nodes[r.Intn(n)]
		task := tasks[r.Intn(len(tasks))]
		switch r.Intn(5) {
		case 0: // subscribe
			tn.s.After(at, func() {
				var h SubscriptionHandle
				rec := map[message.ID]bool{}
				h = node.Subscribe(attr.Vec{
					attr.StringAttr(attr.KeyTask, attr.EQ, task),
				}, func(m *message.Message) {
					if rec[m.ID] {
						t.Errorf("seed %d: subscription %d saw message %v twice", seed, h, m.ID)
					}
					rec[m.ID] = true
				})
				seen[h] = rec
				subs = append(subs, struct {
					node *Node
					h    SubscriptionHandle
				}{node, h})
			})
		case 1: // publish
			tn.s.After(at, func() {
				h := node.Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, task)})
				pubs = append(pubs, struct {
					node *Node
					h    PublicationHandle
					task string
				}{node, h, task})
			})
		case 2: // send on a random existing publication
			tn.s.After(at, func() {
				if len(pubs) == 0 {
					return
				}
				p := pubs[r.Intn(len(pubs))]
				_ = p.node.Send(p.h, attr.Vec{
					attr.Int32Attr(attr.KeySequence, attr.IS, int32(r.Intn(1000))),
				})
			})
		case 3: // unsubscribe a random subscription
			tn.s.After(at, func() {
				if len(subs) == 0 {
					return
				}
				i := r.Intn(len(subs))
				_ = subs[i].node.Unsubscribe(subs[i].h)
				subs = append(subs[:i], subs[i+1:]...)
			})
		case 4: // garbage from a phantom neighbor
			tn.s.After(at, func() {
				g := make([]byte, r.Intn(60))
				r.Read(g)
				node.Receive(uint32(r.Intn(n)+50), g)
			})
		}
	}
	tn.s.RunUntil(10 * time.Minute)

	// Tear everything down; entries must drain once gradients expire.
	for _, s := range subs {
		_ = s.node.Unsubscribe(s.h)
	}
	for _, p := range pubs {
		_ = p.node.Unpublish(p.h)
	}
	tn.s.RunUntil(30 * time.Minute)
	for i, node := range nodes {
		if node.Entries() != 0 {
			t.Errorf("seed %d: node %d retains %d entries after teardown",
				seed, i+1, node.Entries())
		}
	}
}

// TestSeenCacheBounded checks that the duplicate-suppression cache drains
// by TTL instead of growing without bound.
func TestSeenCacheBounded(t *testing.T) {
	tn := newTestNet(77)
	nodes := tn.line(2)
	nodes[0].Subscribe(surveillanceInterest(), nil)
	pub := nodes[1].Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(time.Second, time.Second, func() {
		seq++
		nodes[1].Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(20 * time.Minute)
	// SeenTTL is 2 minutes in the default config: the cache holds at most
	// a couple of minutes' worth of IDs, not 20 minutes' worth.
	if len(nodes[0].seen) > 600 {
		t.Errorf("seen cache grew to %d entries", len(nodes[0].seen))
	}
	if len(nodes[0].expFrom) > len(nodes[0].seen) {
		t.Error("expFrom must not outlive the seen cache")
	}
}
