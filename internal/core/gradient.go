package core

import (
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/match"
	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// interestEntry is the per-interest state a task-aware node keeps: the
// interest's attributes and a gradient per neighbor that sent it (paper:
// "each sensor node that receives an interest remembers which neighbor or
// neighbors sent it that interest; to each such neighbor, it sets up a
// gradient").
type interestEntry struct {
	attrs attr.Vec
	hash  uint64
	// gradients maps a downstream neighbor (toward a sink) to its state.
	gradients map[message.NodeID]*gradient
	// localSubs are this node's own subscriptions fed by the entry: the
	// node is a sink for the interest.
	localSubs map[SubscriptionHandle]bool
	// lastExpFrom is the neighbor that delivered the most recent new
	// exploratory data for this entry; reinforcement propagates to it.
	lastExpFrom message.NodeID
	hasExpFrom  bool
	// reinforcedUpstream is the neighbor we last sent positive
	// reinforcement to (toward the source).
	reinforcedUpstream    message.NodeID
	hasReinforcedUpstream bool
	// lastReinforcedID suppresses repeat reinforcements for the same
	// exploratory message.
	lastReinforcedID message.ID
	// dup tracking for dampened negative reinforcement: duplicates per
	// sending neighbor within the current window.
	dupFrom  map[message.NodeID]int
	dupSince time.Duration
	// freshHops is this node's distance from the sink measured within the
	// newest interest flood epoch only (distinguished by interest message
	// ID, reset each refresh). Unlike hops below — a lifetime minimum that
	// can only shrink — it tracks the current topology, so custody's
	// sinkward walk can make strict-descent comparisons against it after
	// churn has lengthened paths. Within one epoch every node's value
	// derives from the same flood, so the descent is consistent
	// fleet-wide and the walk cannot cycle.
	freshHops    uint8
	freshHopsID  message.ID
	hasFreshHops bool
	// hops is the smallest hop count at which this interest has reached
	// us (as it would leave this node), so a recovered neighbor can be
	// re-offered the interest with an honest TTL budget.
	hops    uint8
	hasHops bool
	// load counts plain data recently received per upstream neighbor —
	// the energy-aware reinforcement signal, halved every housekeeping
	// pass.
	load map[message.NodeID]int
	// staleHops remembers neighbors whose gradients for this entry decayed
	// or died while custody was enabled: the last known next hops toward a
	// sink. Store-and-carry replay falls back to them when no live
	// gradient exists — the unicast, ack-gated re-offer is harmless toward
	// an absent neighbor (no ack, so the item is retained), and it lets a
	// custodian drain at the instant of the next contact instead of
	// waiting for an interest to re-cross the partition. Bounded by the
	// entry's historical neighbor count.
	staleHops map[message.NodeID]bool
	// slot is the entry's handle in the gradient match index.
	slot match.Handle
	// touched is the conservative, grow-only set of neighbors whose
	// NeighborDead-purged state (gradients, reinforcement traces,
	// exploratory arrivals, duplicate counters) this entry has ever
	// referenced; nbTouch on the node is its inverse.
	touched map[message.NodeID]bool
}

// gradient is the per-neighbor demand state. Reinforced gradients carry
// high-rate (non-exploratory) data; the reinforcement decays unless
// periodically refreshed by positive reinforcement, so stale high-rate
// paths fade instead of accumulating.
type gradient struct {
	expires         time.Duration
	reinforcedUntil time.Duration
	// hops is the neighbor's own distance from the sink, as carried by
	// the last interest it forwarded here (its HopCount on arrival).
	// Custody replay uses it to walk stranded items strictly sinkward
	// when no reinforced path exists; refreshed on every interest copy,
	// so it tracks the live topology at the interest cadence.
	hops    uint8
	hasHops bool
}

// reinforced reports whether the gradient carries high-rate data at time
// now.
func (g *gradient) reinforced(now time.Duration) bool {
	return now < g.reinforcedUntil
}

// hasReinforcedDownstream reports whether any neighbor holds a reinforced
// gradient on this entry (someone downstream wants high-rate data).
func (e *interestEntry) hasReinforcedDownstream(now time.Duration) bool {
	for _, g := range e.gradients {
		if g.reinforced(now) {
			return true
		}
	}
	return false
}

// entryFor finds or creates the interest entry for the given attributes.
func (n *Node) entryFor(attrs attr.Vec) *interestEntry {
	h := attrs.Hash()
	if e, ok := n.entries[h]; ok {
		return e
	}
	// Inner maps are allocated lazily at their write sites: a broker-scale
	// node carries one entry per local subscription, and most of those
	// never see a gradient, a duplicate or an energy-aware load sample.
	e := &interestEntry{attrs: attrs.Clone(), hash: h}
	e.slot = n.midx.entries.Add(e.attrs, h)
	n.entries[h] = e
	n.noteEntryEmptiness(e)
	return e
}

// lookupEntry returns the entry with exactly these attributes, if any.
func (n *Node) lookupEntry(attrs attr.Vec) (*interestEntry, bool) {
	e, ok := n.entries[attrs.Hash()]
	return e, ok
}

// ReinforcedUpstream returns the neighbor this node last positively
// reinforced (toward the data source) for the interest matching attrs,
// trying both the given attributes and their on-the-wire interest form.
// Fault-injection harnesses walk this hop-by-hop from the sink to locate
// the reinforced relay chain.
func (n *Node) ReinforcedUpstream(attrs attr.Vec) (uint32, bool) {
	for _, v := range []attr.Vec{attrs, interestFromSub(attrs)} {
		if e, ok := n.lookupEntry(v); ok && e.hasReinforcedUpstream {
			return uint32(e.reinforcedUpstream), true
		}
	}
	return 0, false
}

// matchingEntries returns entries whose interest attributes two-way match
// the given data attributes, ascending by hash (the same canonical order
// the old full-table scan produced). The result comes from the node's
// snapshot pool; callers must release it with putEntryBuf, and may hold it
// across re-entrant core calls — nested lookups draw distinct buffers.
func (n *Node) matchingEntries(data attr.Vec) []*interestEntry {
	tags := n.midx.getTags()
	tags = n.midx.entries.Lookup(data, tags)
	sortAscending(tags) // tags are entry hashes
	out := n.getEntryBuf()
	for _, h := range tags {
		if e, ok := n.entries[h]; ok {
			out = append(out, e)
		}
	}
	n.midx.putTags(tags)
	return out
}

// processCore is the diffusion core: it runs after the filter chain.
func (n *Node) processCore(m *message.Message) {
	local := m.PrevHop == selfID(n)
	switch m.Class {
	case message.Interest:
		n.coreInterest(m, local)
	case message.Data, message.ExploratoryData:
		n.coreData(m, local)
	case message.PositiveReinforcement:
		n.coreReinforce(m)
	case message.NegativeReinforcement:
		n.coreNegReinforce(m)
	}
}

// coreInterest handles an interest message (local origination or from a
// neighbor).
func (n *Node) coreInterest(m *message.Message, local bool) {
	e := n.entryFor(m.Attrs)
	now := n.cfg.Clock.Now()

	if local {
		// Local origination: mark our subscriptions as sinks of the entry.
		// The interest-hash grouping yields exactly the subscriptions whose
		// wire form is this entry's attributes.
		for _, h := range n.subsByHash[e.hash] {
			if s := n.subs[h]; s != nil && !s.passive {
				if e.localSubs == nil {
					e.localSubs = map[SubscriptionHandle]bool{}
				}
				e.localSubs[h] = true
			}
		}
		n.noteEntryEmptiness(e)
	} else {
		// Gradient setup/refresh toward the sending neighbor. Every copy
		// of the interest refreshes its sender's gradient, even if the
		// message ID was already seen via another neighbor.
		g, ok := e.gradients[m.PrevHop]
		if !ok {
			g = &gradient{}
			if e.gradients == nil {
				e.gradients = map[message.NodeID]*gradient{}
			}
			e.gradients[m.PrevHop] = g
			n.Stats.GradientsCreated++
			n.touchNeighbor(e, m.PrevHop)
			n.noteEntryEmptiness(e)
		}
		g.expires = now + n.cfg.GradientLifetime
		g.hops = m.HopCount
		g.hasHops = true
		if h := m.HopCount + 1; !e.hasFreshHops || e.freshHopsID != m.ID || h < e.freshHops {
			e.freshHops = h
			e.freshHopsID = m.ID
			e.hasFreshHops = true
		}
		if h := m.HopCount + 1; !e.hasHops || h < e.hops {
			e.hops = h
			e.hasHops = true
		}
	}

	if n.wasSeen(m.ID) {
		n.Stats.Duplicates++
		n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropDuplicate)
		return
	}
	n.markSeen(m.ID)
	n.Stats.InterestsSeen++

	// Local delivery to passive interest taps ("subscribe for
	// subscriptions"). Locally originated interests deliver too: a tap
	// and a sink may share a node, and the tap's formals cannot match the
	// sink's own formal-only interest, so there is no self-delivery.
	n.deliverLocal(m)

	// Re-flood with jitter. TTL bounds the flood. Filters that take over
	// forwarding (ProcessNoForward) suppress this step.
	if m.HopCount >= n.cfg.TTL || n.suppressForward {
		if m.HopCount >= n.cfg.TTL {
			n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropTTL)
		}
		return
	}
	fwd := m.Clone()
	fwd.HopCount++
	fwd.PrevHop = selfID(n)
	fwd.NextHop = message.Broadcast
	delay := time.Duration(n.cfg.Rand.Int63n(int64(n.cfg.ForwardJitter) + 1))
	n.cfg.Clock.After(delay, func() { n.transmit(fwd) })
}

// interestFromSub derives the on-the-wire interest attributes for a
// subscription (adding the implicit class).
func interestFromSub(attrs attr.Vec) attr.Vec {
	if _, ok := attrs.FindActual(attr.KeyClass); ok {
		return attrs
	}
	return attrs.With(attr.ClassIsInterest())
}

// coreData handles (exploratory) data.
func (n *Node) coreData(m *message.Message, local bool) {
	if n.wasSeen(m.ID) {
		n.Stats.Duplicates++
		n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropDuplicate)
		// A duplicate unicast to us in store-and-carry mode is a custody
		// re-offer (the sender never got its ack): re-acknowledge instead
		// of treating it as a redundant path — negative reinforcement of
		// a custody retry would tear down the very gradient the drain
		// needs.
		if n.carryMode() && !local && m.NextHop == selfID(n) {
			n.custodyReoffer(m)
			return
		}
		// A duplicate non-exploratory message means a redundant reinforced
		// path is feeding us: negatively reinforce the sender (3.1:
		// "negative reinforcements suppress loops or duplicate paths").
		// The reaction is dampened — it takes repeated duplicates from
		// the same neighbor within a short window — so an occasional
		// flood-remnant duplicate does not tear down a path other
		// sources still depend on.
		if m.Class == message.Data && !local && !n.cfg.DisableNegRF {
			n.noteDuplicateData(m)
		}
		// Duplicate exploratory deliverers are exactly the alternative
		// paths energy-aware reinforcement chooses between.
		if m.Class == message.ExploratoryData && !local && n.cfg.EnergyAware {
			n.addExpCand(m.ID, m.PrevHop)
		}
		// A duplicate arriving where custody of the same ID is still held
		// is a custody replay racing the original: the flood copy beat the
		// custody walk here. If this node is a sink for the message, the
		// seen-hit proves the application already got it — the custody
		// entry has served its purpose, so release it rather than vouch
		// forever for delivered data.
		if n.custodyOn() && n.cfg.Custody.Has(m.ID) {
			entries := n.matchingEntries(m.Attrs)
			for _, e := range entries {
				if len(e.localSubs) > 0 {
					n.custodyDischarge(m.ID)
					break
				}
			}
			n.putEntryBuf(entries)
		}
		return
	}
	n.markSeen(m.ID)

	// Store-and-carry custody: receiving a data message makes this node a
	// custodian. Admit it durably and confirm to the sender, which keeps
	// its own copy until the ack arrives; a full queue withholds the ack
	// (backpressure — the sender re-offers later, nothing is lost).
	if n.carryMode() && !local {
		n.custodyAdmit(m)
	}

	entries := n.matchingEntries(m.Attrs)
	defer n.putEntryBuf(entries)
	if len(entries) == 0 && !(m.Class == message.ExploratoryData && isPush(m.Attrs)) {
		// No gradient state: nothing to do ("data is sent only where
		// interests have established gradients"). One-phase-push
		// exploratory data is the exception: it floods without interest
		// state, and reinforcements install the state afterwards. With
		// custody enabled this is the disruption case — the soft state
		// decayed under us — so the data is held instead of dropped.
		if n.custodyCapture(m) {
			return
		}
		n.Stats.DataSuppressed++
		n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropNoGradient)
		return
	}
	n.span(telemetry.SpanMatch, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropNone)

	// Data loops back to co-located subscriptions as well — the daemon
	// delivers a local publication to a local matching subscription, as
	// the reference implementation does.
	n.deliverLocal(m)

	now := n.cfg.Clock.Now()
	isSinkFor := false
	anyForward := false
	reinforcedTargets := map[message.NodeID]bool{}
	if m.Class == message.ExploratoryData && !local {
		n.expFrom[m.ID] = m.PrevHop
		if n.cfg.EnergyAware {
			n.addExpCand(m.ID, m.PrevHop)
		}
	}
	for _, e := range entries {
		if m.Class == message.ExploratoryData && !local {
			e.lastExpFrom = m.PrevHop
			e.hasExpFrom = true
			n.touchNeighbor(e, m.PrevHop)
		}
		// The per-neighbor load signal feeds energy-aware reinforcement
		// only; skip the bookkeeping entirely when that mode is off.
		if m.Class == message.Data && !local && n.cfg.EnergyAware {
			if e.load == nil {
				e.load = map[message.NodeID]int{}
			}
			e.load[m.PrevHop]++
		}
		if len(e.localSubs) > 0 {
			isSinkFor = true
		}
		for nb, g := range e.gradients {
			if nb == m.PrevHop {
				continue // never send data back where it came from
			}
			if m.Class == message.ExploratoryData {
				anyForward = true
			} else if g.reinforced(now) {
				reinforcedTargets[nb] = true
			}
		}
	}
	// Data arriving at its sink has reached its destination: any custody
	// this node holds for it (a durable transport accept) is discharged.
	if isSinkFor {
		n.custodyDischarge(m.ID)
	}

	if m.Class == message.ExploratoryData && isPush(m.Attrs) {
		// Push exploratory floods to everyone, interest state or not.
		anyForward = true
	}
	switch m.Class {
	case message.ExploratoryData:
		if anyForward && m.HopCount < n.cfg.TTL && !n.suppressForward {
			// Exploratory data floods along all gradients; one broadcast
			// reaches every gradient neighbor (the traffic model in 6.1
			// counts it as flooded from each node).
			fwd := m.Clone()
			fwd.HopCount++
			fwd.PrevHop = selfID(n)
			fwd.NextHop = message.Broadcast
			delay := time.Duration(n.cfg.Rand.Int63n(int64(n.cfg.ForwardJitter) + 1))
			n.cfg.Clock.After(delay, func() {
				// A link-refused forward (MAC queue overflow, typically
				// under a custody replay burst) is a congestion loss:
				// with custody on the message is held like any other
				// disruption and retried at the link's pace, instead of
				// becoming drop-tail loss mid-relay.
				if n.transmit(fwd) != nil {
					n.custodyCapture(fwd)
				}
			})
		} else if anyForward && m.HopCount >= n.cfg.TTL {
			n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropTTL)
		}
		// Sink behaviour: reinforce the neighbor that delivered the first
		// copy of this exploratory message. Intermediate nodes with live
		// reinforced downstream demand refresh their existing upstream
		// when it delivered this exploratory first — hop-local
		// maintenance so one lost reinforcement does not break the path —
		// but never start new branches: path creation and migration stay
		// sink-driven (via the expFrom trace), which keeps redundant
		// parallel paths from accumulating.
		if !local {
			for _, e := range entries {
				sink := len(e.localSubs) > 0
				refresh := e.hasReinforcedDownstream(now) &&
					e.hasReinforcedUpstream && e.reinforcedUpstream == m.PrevHop
				switch {
				case sink && n.cfg.EnergyAware:
					n.reinforceEnergyAware(e, m.PrevHop, m.ID, m.Flow)
				case sink || refresh:
					n.reinforceUpstream(e, m.PrevHop, m.ID, m.Flow)
				}
			}
		}
		// Exploratory data that can go nowhere from here (gradients all
		// point back where it came from, or decayed to nothing) and has
		// no sink here either is the other disruption case: hold it.
		if !anyForward && !isSinkFor && !n.custodyCapture(m) {
			n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropNoPath)
		}
		// In custody-transfer mode the origin also vouches for exploratory
		// data it could flood: the broadcast is fire-and-forget — no hop
		// acknowledges it — and under membership churn whole stretches of a
		// stream travel in this class (every NeighborRecovered re-primes the
		// publication), so a partition boundary would swallow them silently.
		// The item is replayed later as plain data down a reinforced
		// gradient and handed custodian-to-custodian; if the flood copy did
		// arrive, the sink's duplicate arrival discharges the chain instead
		// of delivering twice.
		if local && anyForward && !isSinkFor && n.custodyLink != nil {
			n.custodyCapture(m)
		}
	case message.Data:
		if local && len(reinforcedTargets) == 0 {
			// Locally originated data with no reinforced path yet: it is
			// dropped, as in the paper ("subsequent messages are sent
			// only on reinforced paths").
			n.Stats.DataNoPath++
		}
		if len(reinforcedTargets) == 0 && !isSinkFor && !n.custodyCapture(m) {
			// Reinforced-class data with nowhere to go: the reinforced
			// path decayed (partition) or never reformed after a restart.
			// Custody holds it until reinforcement returns; without custody
			// this hop is where the flow dies.
			n.span(telemetry.SpanDrop, telemetry.SpanLayerCore, m, uint32(m.PrevHop), telemetry.DropNoPath)
		}
		// Sorted iteration: map order would make runs nondeterministic.
		targets := make([]message.NodeID, 0, len(reinforcedTargets))
		for nb := range reinforcedTargets {
			targets = append(targets, nb)
		}
		sortAscending(targets)
		for _, nb := range targets {
			out := m.Clone()
			out.HopCount++
			out.PrevHop = selfID(n)
			out.NextHop = nb
			// Same congestion rule as the exploratory forward: a frame
			// the link refuses goes into custody, not the floor.
			if n.transmit(out) != nil {
				n.custodyCapture(out)
			}
		}
	}
}

// reinforceUpstream sends positive reinforcement for entry e to neighbor
// nb, at most once per exploratory message. The reinforcement carries the
// ID of the exploratory data being reinforced, so each upstream node can
// retrace that message's exact arrival path via its expFrom record. It
// inherits the exploratory message's trace flow, so a sampled flow's
// timeline shows the reinforcement chain it triggered.
func (n *Node) reinforceUpstream(e *interestEntry, nb message.NodeID, cause message.ID, flow uint16) {
	if e.lastReinforcedID == cause {
		return
	}
	e.lastReinforcedID = cause
	e.reinforcedUpstream = nb
	e.hasReinforcedUpstream = true
	n.touchNeighbor(e, nb)
	n.transmit(&message.Message{
		Class:   message.PositiveReinforcement,
		ID:      cause,
		PrevHop: selfID(n),
		NextHop: nb,
		Flow:    flow,
		Attrs:   e.attrs.Clone(),
	})
}

// isPush reports whether attrs carry the one-phase-push marker.
func isPush(attrs attr.Vec) bool {
	a, ok := attrs.FindActual(attr.KeyAlgorithm)
	return ok && a.Val.Numeric() && int32(a.Val.AsFloat()) == attr.AlgorithmPush
}

// coreReinforce handles positive reinforcement from a downstream neighbor:
// mark its gradient reinforced and propagate toward the data source. In
// one-phase push there is no interest flood, so the reinforcement itself
// installs the entry at each hop (reinforcements carry the sink's
// subscription attributes).
func (n *Node) coreReinforce(m *message.Message) {
	e, ok := n.lookupEntry(m.Attrs)
	if !ok {
		e = n.entryFor(m.Attrs)
	}
	now := n.cfg.Clock.Now()
	g, ok := e.gradients[m.PrevHop]
	if !ok {
		g = &gradient{}
		if e.gradients == nil {
			e.gradients = map[message.NodeID]*gradient{}
		}
		e.gradients[m.PrevHop] = g
		n.Stats.GradientsCreated++
		n.touchNeighbor(e, m.PrevHop)
		n.noteEntryEmptiness(e)
	}
	// Reinforcement is live evidence of demand: it refreshes the gradient
	// lifetime too. In one-phase push this is the only refresh there is
	// (no interests ever flood).
	g.expires = now + n.cfg.GradientLifetime
	g.reinforcedUntil = now + n.cfg.ReinforcementTimeout
	// Propagate along the exact path the reinforced exploratory message
	// took (m.ID names it). Fall back to the most recent exploratory
	// arrival for this entry when the per-message record has expired. The
	// data's origin has no record of an upstream and stops the chain.
	if from, ok := n.expFrom[m.ID]; ok && from != m.PrevHop {
		n.reinforceUpstream(e, from, m.ID, m.Flow)
	} else if !ok && e.hasExpFrom && e.lastExpFrom != m.PrevHop {
		n.reinforceUpstream(e, e.lastExpFrom, m.ID, m.Flow)
	}
	// A fresh reinforced gradient is exactly what stuck custodial data has
	// been waiting for.
	n.ReplayCustody()
}

// expCandLimit bounds the per-message candidate set for energy-aware
// reinforcement; a sink has few enough neighbors that more is noise.
const expCandLimit = 8

// addExpCand records nb as a deliverer of exploratory message id.
func (n *Node) addExpCand(id message.ID, nb message.NodeID) {
	cands := n.expCand[id]
	if len(cands) >= expCandLimit {
		return
	}
	for _, c := range cands {
		if c == nb {
			return
		}
	}
	n.expCand[id] = append(cands, nb)
}

// reinforceEnergyAware is the sink-side reinforcement decision with
// EnergyAware set: instead of reinforcing the first deliverer
// immediately, wait two forwarding-jitter windows for the duplicate
// copies of the same exploratory message to arrive, then reinforce the
// candidate that has forwarded the least plain data to us recently
// (ties keep the first deliverer — the paper's low-delay choice). The
// deferral costs one round-trip of path-switch latency per exploratory
// cycle and in exchange rotates the high-rate path off relays that have
// been burning energy.
func (n *Node) reinforceEnergyAware(e *interestEntry, first message.NodeID, cause message.ID, flow uint16) {
	if e.lastReinforcedID == cause {
		return
	}
	n.cfg.Clock.After(2*n.cfg.ForwardJitter, func() {
		if n.detached || e.lastReinforcedID == cause {
			return
		}
		best := first
		bestLoad := e.load[first]
		for _, c := range n.expCand[cause] {
			if c == best {
				continue
			}
			if l := e.load[c]; l < bestLoad {
				best, bestLoad = c, l
			}
		}
		if best != first {
			n.Stats.EnergyShifts++
		}
		n.reinforceUpstream(e, best, cause, flow)
	})
}

// coreNegReinforce handles negative reinforcement: the sending neighbor no
// longer wants high-rate data from us.
func (n *Node) coreNegReinforce(m *message.Message) {
	e, ok := n.lookupEntry(m.Attrs)
	if !ok {
		return
	}
	if g, ok := e.gradients[m.PrevHop]; ok {
		g.reinforcedUntil = 0
	}
	// If nobody downstream wants high-rate data and we are not a sink,
	// propagate the teardown upstream (3.1: "this negative reinforcement
	// propagates neighbor-to-neighbor, removing gradients").
	if len(e.localSubs) > 0 {
		return
	}
	if e.hasReinforcedDownstream(n.cfg.Clock.Now()) {
		return
	}
	if e.hasReinforcedUpstream {
		up := e.reinforcedUpstream
		e.hasReinforcedUpstream = false
		n.transmit(&message.Message{
			Class:   message.NegativeReinforcement,
			ID:      n.nextID(),
			PrevHop: selfID(n),
			NextHop: up,
			Attrs:   e.attrs.Clone(),
		})
		n.Stats.NegReinforcements++
	}
}

// negRFThreshold and negRFWindow dampen duplicate-triggered negative
// reinforcement: it takes this many duplicates from one neighbor within
// the window to trigger a teardown.
const (
	negRFThreshold = 3
	negRFWindow    = 15 * time.Second
)

// noteDuplicateData records a duplicate plain-data reception and sends
// negative reinforcement to the sender once duplicates persist.
func (n *Node) noteDuplicateData(m *message.Message) {
	entries := n.matchingEntries(m.Attrs)
	defer n.putEntryBuf(entries)
	if len(entries) == 0 {
		return
	}
	e := entries[0]
	now := n.cfg.Clock.Now()
	if now-e.dupSince > negRFWindow {
		e.dupSince = now
		for k := range e.dupFrom {
			delete(e.dupFrom, k)
		}
	}
	if e.dupFrom == nil {
		e.dupFrom = map[message.NodeID]int{}
	}
	e.dupFrom[m.PrevHop]++
	n.touchNeighbor(e, m.PrevHop)
	if e.dupFrom[m.PrevHop] < negRFThreshold {
		return
	}
	delete(e.dupFrom, m.PrevHop)
	n.transmit(&message.Message{
		Class:   message.NegativeReinforcement,
		ID:      n.nextID(),
		PrevHop: selfID(n),
		NextHop: m.PrevHop,
		Flow:    m.Flow,
		Attrs:   e.attrs.Clone(),
	})
	n.Stats.NegReinforcements++
}

// deliverLocal invokes the callbacks of every subscription matching m, in
// ascending handle order (the order the old full-table walk produced).
func (n *Node) deliverLocal(m *message.Message) {
	tags := n.midx.getTags()
	tags = n.midx.subs.Lookup(m.Attrs, tags)
	if len(tags) == 0 {
		n.midx.putTags(tags)
		return
	}
	sortAscending(tags) // tags are subscription handles
	// Resolve handles to subscriptions before any callback runs: this is
	// the snapshot the pre-index delivery loop took, so a callback that
	// unsubscribes another matched subscription does not suppress its
	// delivery mid-message.
	subs := n.getSubBuf()
	for _, t := range tags {
		if s, ok := n.subs[SubscriptionHandle(t)]; ok && s.cb != nil {
			subs = append(subs, s)
		}
	}
	n.midx.putTags(tags)
	delivered := false
	for _, s := range subs {
		n.Stats.LocalDeliveries++
		delivered = true
		s.cb(m)
	}
	n.putSubBuf(subs)
	if delivered {
		n.span(telemetry.SpanDeliver, telemetry.SpanLayerCore, m, n.ID(), telemetry.DropNone)
	}
}
