package core

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
)

// TestNeighborDeadPurgesGradientState checks the bookkeeping effects of a
// dead-neighbor event in isolation: gradients toward the peer vanish,
// empty entries are collected, and the accounting moves.
func TestNeighborDeadPurgesGradientState(t *testing.T) {
	tn := newTestNet(11)
	nodes := tn.line(2)
	nodes[0].Subscribe(surveillanceInterest(), func(*message.Message) {})
	tn.s.RunUntil(2 * time.Second)

	relay := nodes[1]
	if relay.Entries() != 1 {
		t.Fatalf("relay entries = %d, want 1", relay.Entries())
	}
	expiredBefore := relay.Stats.GradientsExpired

	// The sink (neighbor 1) dies: the relay's only gradient pointed there,
	// so the whole entry must be collected.
	relay.NeighborDead(1)
	if relay.Stats.NeighborDeaths != 1 {
		t.Fatalf("neighbor deaths = %d, want 1", relay.Stats.NeighborDeaths)
	}
	if relay.Stats.GradientsExpired != expiredBefore+1 {
		t.Fatalf("gradients expired = %d, want %d",
			relay.Stats.GradientsExpired, expiredBefore+1)
	}
	if relay.Entries() != 0 {
		t.Fatalf("relay entries after death = %d, want 0", relay.Entries())
	}

	// A dead-neighbor event on a detached node is ignored.
	relay.Detach()
	relay.NeighborDead(2)
	if relay.Stats.NeighborDeaths != 1 {
		t.Fatal("detached node processed a dead-neighbor event")
	}
}

// TestNeighborDeadRepairsAroundDeadRelay is the diamond-repair scenario:
// sink 1 and source 4 joined through relays 2 and 3. After the reinforced
// relay dies and the failure detector notifies its neighbors, delivery
// must resume over the surviving relay — driven by the prompt interest
// re-flood and the re-primed exploratory data, not by waiting out the
// soft-state lifetimes (which are set long enough here that passive decay
// alone could not repair within the test horizon).
func TestNeighborDeadRepairsAroundDeadRelay(t *testing.T) {
	tn := newTestNet(7)
	slow := func(c *Config) {
		c.InterestInterval = 30 * time.Second
		c.GradientLifetime = 75 * time.Second
		c.ExploratoryEvery = 0
		c.ExploratoryInterval = 60 * time.Second
		c.ReinforcementTimeout = 150 * time.Second
	}
	sink := tn.addNode(1, slow)
	tn.addNode(2, slow)
	tn.addNode(3, slow)
	source := tn.addNode(4, slow)
	tn.connect(1, 2)
	tn.connect(1, 3)
	tn.connect(2, 4)
	tn.connect(3, 4)

	delivered := 0
	sink.Subscribe(surveillanceInterest(), func(m *message.Message) { delivered++ })
	pub := source.Publish(surveillancePublication())
	seq := int32(0)
	tn.s.Every(time.Second, 500*time.Millisecond, func() {
		seq++
		source.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(5 * time.Second)

	relay, ok := sink.ReinforcedUpstream(surveillanceInterest())
	if !ok || (relay != 2 && relay != 3) {
		t.Fatalf("sink reinforced upstream = %d/%v, want relay 2 or 3", relay, ok)
	}
	if delivered == 0 {
		t.Fatal("no deliveries before the fault")
	}

	// Kill the reinforced relay and deliver the detector's verdict to its
	// neighbors, exactly what the live stack does via OnStateChange.
	tn.dead[relay] = true
	sink.NeighborDead(relay)
	source.NeighborDead(relay)

	before := delivered
	tn.s.RunUntil(10 * time.Second)
	if delivered <= before {
		t.Fatalf("no deliveries in 5s after repair (total %d)", delivered)
	}
	other := uint32(5 - relay) // 2↔3
	if up, ok := sink.ReinforcedUpstream(surveillanceInterest()); !ok || up != other {
		t.Fatalf("sink reinforced upstream after repair = %d/%v, want %d", up, ok, other)
	}
	// The repaired path must deliver most of the post-fault traffic: sends
	// are every 500ms, so 5 sim-seconds offer ~10 opportunities.
	if delivered-before < 5 {
		t.Fatalf("only %d deliveries in 5s after repair", delivered-before)
	}
}
