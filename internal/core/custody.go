package core

import (
	"slices"

	"diffusion/internal/custody"
	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// Custody-aware forwarding: the disruption-tolerance layer over the
// gradient machinery (internal/custody holds the queue and the durable
// store). With Config.Custody set, a data message that cannot make
// forward progress — no matching interest entry, no gradient, no
// reinforced next hop — is taken into custody instead of dropped, and
// replayed into the gradient path once the soft state reforms: on
// positive reinforcement, on a neighbor-recovery event from the failure
// detector, at every housekeeping pass, and (in the live daemon) after a
// warm restart reloads the custody store.
//
// Two transfer modes share the one queue:
//
//   - With a custody-capable link (the UDP transport's kindCustody
//     frames), plain data moves hop-by-hop under custody transfer: the
//     sender keeps the item queued until the receiver durably accepts
//     and acknowledges it, so a crash or partition anywhere between two
//     custodians loses nothing. Local delivery at a sink discharges
//     custody.
//   - Without one (the simulator's radio MAC), custody is store-and-
//     carry with in-band acknowledgment: every node that transmits a data
//     message holds it in its custody queue, every node that receives one
//     durably admits it and confirms with a CustodyAck message, and only
//     that ack releases the sender's copy. Stuck or unacknowledged items
//     are re-offered as unicast exploratory data with their original
//     message IDs each housekeeping pass; the receiver refloods them
//     along its own gradients. Duplicate suppression at every hop keeps
//     delivery exactly-once; mobile relays (the ferry experiment) chain
//     this into multi-hop store-and-forward across partitions.

// CustodyLink is the optional link-layer surface for hop-by-hop custody
// transfer. The UDP transport implements it; the send must eventually be
// acknowledged by the peer's durable accept, with the transport
// retransmitting and re-offering on neighbor recovery until then.
type CustodyLink interface {
	SendCustody(dst uint32, id message.ID, payload []byte) error
}

// custodyOn reports whether custody forwarding is enabled.
func (n *Node) custodyOn() bool { return n.cfg.Custody != nil }

// CustodyQueue returns the node's custody queue for inspection (length,
// counters), or nil when custody is disabled. The queue is internally
// locked, so reads are safe from any goroutine.
func (n *Node) CustodyQueue() *custody.Queue { return n.cfg.Custody }

// carryMode reports store-and-carry custody: enabled, but with no
// custody-capable link layer, so hop-by-hop transfer is confirmed by
// in-band CustodyAck messages instead of the transport's durable-accept
// acknowledgment.
func (n *Node) carryMode() bool { return n.custodyOn() && n.custodyLink == nil }

// sendCustodyAck confirms custody of id to peer: this node (or its
// downstream chain) now vouches for the message, so peer may release its
// copy. Best-effort — a lost ack just means peer re-offers and is
// re-acknowledged.
func (n *Node) sendCustodyAck(id message.ID, peer message.NodeID) {
	n.transmit(&message.Message{
		Class:   message.CustodyAck,
		ID:      id,
		PrevHop: selfID(n),
		NextHop: peer,
	})
}

// custodyAdmit durably admits a data message received from a neighbor and
// acknowledges the sender. Withholding the ack when the queue is full is
// the backpressure path: the sender keeps custody and re-offers later.
func (n *Node) custodyAdmit(m *message.Message) {
	held, fresh := n.cfg.Custody.Accept(m.ID, m.Marshal())
	if fresh {
		n.Stats.CustodyCaptured++
	}
	if held {
		n.span(telemetry.SpanCustodyAccept, telemetry.SpanLayerCustody, m, uint32(m.PrevHop), telemetry.DropNone)
		n.sendCustodyAck(m.ID, m.PrevHop)
	}
}

// custodyReoffer handles a duplicate data message unicast to this node in
// store-and-carry mode: a custody re-offer, meaning the sender never got
// an ack for it. Re-acknowledge whenever this node vouches for the
// message — it holds it, its released-ID memory shows the downstream
// chain accepted it, or a local sink already consumed it (the seen-cache
// hit proves delivery happened). A fresh admission covers the remaining
// case: the earlier copy was seen but dropped under queue-full
// backpressure that has since cleared.
func (n *Node) custodyReoffer(m *message.Message) {
	entries := n.matchingEntries(m.Attrs)
	sink := false
	for _, e := range entries {
		if len(e.localSubs) > 0 {
			sink = true
			break
		}
	}
	n.putEntryBuf(entries)
	if sink {
		n.sendCustodyAck(m.ID, m.PrevHop)
		return
	}
	n.custodyAdmit(m)
}

// noteStaleHop records a purged gradient's neighbor as a last-known next
// hop for custody replay (see interestEntry.staleHops). Only custody
// needs the memory; without it the purge is total, as before.
func (n *Node) noteStaleHop(e *interestEntry, nb message.NodeID) {
	if !n.custodyOn() {
		return
	}
	if e.staleHops == nil {
		e.staleHops = map[message.NodeID]bool{}
	}
	e.staleHops[nb] = true
}

// custodyCapture takes local custody of a data message with no forward
// path. Returns true when the message is now (or already was) vouched
// for, so the caller can treat it as handled rather than dropped.
func (n *Node) custodyCapture(m *message.Message) bool {
	if !n.custodyOn() || !m.IsData() {
		return false
	}
	held, fresh := n.cfg.Custody.Accept(m.ID, m.Marshal())
	if fresh {
		n.Stats.CustodyCaptured++
	}
	if held {
		n.span(telemetry.SpanCustodyAccept, telemetry.SpanLayerCustody, m, n.ID(), telemetry.DropNone)
	}
	return held
}

// custodyDischarge releases custody of id after local delivery at a sink
// (the message reached its destination; this node no longer vouches for
// it).
func (n *Node) custodyDischarge(id message.ID) {
	if n.custodyOn() {
		n.cfg.Custody.Release(id)
	}
}

// ReplayCustody walks the custody queue and re-sends every item that has
// a forward path again. Safe to call at any time from the node's
// executor; it is invoked automatically from housekeeping, reinforcement
// arrival and NeighborRecovered. Items that still have no path stay
// queued for the next trigger.
func (n *Node) ReplayCustody() {
	if !n.custodyOn() || n.detached {
		return
	}
	for _, it := range n.cfg.Custody.Items() {
		if n.replayItem(it) {
			return
		}
	}
}

// replayItem gives one custody item a chance to move. stop=true aborts the
// whole pass (link backpressure: the MAC queue that refused this frame
// would refuse the rest too, and stopping paces a large drain to the
// link's rate instead of turning drop-tail into churn).
func (n *Node) replayItem(it custody.Item) (stop bool) {
	m, err := message.Unmarshal(it.Payload)
	if err != nil {
		// Poison item (torn write that survived CRC by miracle, or a
		// version skew): custody cannot do anything with it.
		n.cfg.Custody.Release(it.ID)
		return false
	}
	m.ID = it.ID
	// Never replay toward the hop the message arrived from: in
	// store-and-carry mode that neighbor's duplicate cache would
	// swallow the copy (a silent loss after the optimistic release),
	// and in custody-transfer mode bouncing it straight back wastes a
	// durable round-trip the sender just paid for. Data captured at
	// its own source carries PrevHop == self, which never matches a
	// gradient.
	avoid := m.PrevHop
	now := n.cfg.Clock.Now()
	entries := n.matchingEntries(m.Attrs)
	defer n.putEntryBuf(entries)

	// The role may have moved here since capture (warm restart):
	// deliver locally and discharge. A seen-cache hit means the message
	// already went through this node's delivery path in this session —
	// the flood copy of an origin-captured exploratory, typically — so
	// discharge without a second delivery. Delivering marks the ID seen:
	// a replay pass that wins the race against the transport's pending
	// deliverUp dispatch for the same frame must not let coreData
	// deliver it a second time.
	for _, e := range entries {
		if len(e.localSubs) > 0 {
			if !n.wasSeen(m.ID) {
				n.markSeen(m.ID)
				n.deliverLocal(m)
			}
			n.custodyDischarge(it.ID)
			break
		}
	}
	if !n.cfg.Custody.Has(it.ID) {
		return false
	}

	// Collect live forwarding options, deterministically ordered.
	var reinforced, gradients []message.NodeID
	seenNb := map[message.NodeID]bool{}
	for _, e := range entries {
		for nb, g := range e.gradients {
			if nb == avoid || seenNb[nb] {
				continue
			}
			seenNb[nb] = true
			gradients = append(gradients, nb)
			if g.reinforced(now) {
				reinforced = append(reinforced, nb)
			}
		}
	}
	sortAscending(reinforced)
	sortAscending(gradients)

	switch {
	case n.custodyLink != nil:
		// Hop-by-hop custody transfer: hand the item to the first
		// reinforced next hop as plain data. transmit() routes it
		// through the custody link, and the item stays queued until
		// the peer's durable accept releases it; re-invocations before
		// the ack are deduplicated by the transport.
		targets := reinforced
		if len(targets) == 0 {
			// No reinforced hop (the path decayed, or this node was never
			// on one): walk the item strictly SINKWARD along plain
			// gradients, using the per-gradient hop distances the interest
			// flood refreshes. This is how stranded data escapes the
			// duplicate-cache moat a fault leaves behind — every node that
			// saw the flood while the sink was cut off drops a re-flood,
			// but a custody handoff rides the transport's durable
			// accept/ack path, and a holder that already saw the ID keeps
			// it queued and walks it onward (a prior holder re-holds: the
			// transport accepts link offers with AcceptOffer, which
			// re-admits released IDs rather than blind-acking them, so a
			// revisit under changed topology moves the item instead of
			// vanishing it). Strict descent against the entry's
			// current-epoch distance (freshHops, consistent fleet-wide
			// within one interest flood) plus the avoid rule keeps each
			// pass cycle-free and the copy count low. Churn can
			// transiently leave no strictly-closer hop; the item just
			// waits out the next interest refresh. Candidates are tried
			// closest-first: a
			// stale gradient toward a peer the transport no longer knows
			// must not wedge the item behind a failed send.
			type cand struct {
				nb   message.NodeID
				hops uint8
			}
			var cands []cand
			candSeen := map[message.NodeID]bool{}
			for _, e := range entries {
				if !e.hasFreshHops {
					continue
				}
				for nb, g := range e.gradients {
					if nb == avoid || !g.hasHops || g.hops >= e.freshHops || candSeen[nb] {
						continue
					}
					candSeen[nb] = true
					cands = append(cands, cand{nb, g.hops})
				}
			}
			slices.SortFunc(cands, func(a, b cand) int {
				if a.hops != b.hops {
					return int(a.hops) - int(b.hops)
				}
				return int(a.nb) - int(b.nb)
			})
			for _, c := range cands {
				targets = append(targets, c.nb)
			}
			if len(targets) == 0 {
				return false
			}
		}
		for _, nb := range targets {
			out := m.Clone()
			out.Class = message.Data
			out.PrevHop = selfID(n)
			out.NextHop = nb
			n.markSeen(out.ID)
			n.span(telemetry.SpanCustodyReplay, telemetry.SpanLayerCustody, out, uint32(out.NextHop), telemetry.DropNone)
			if n.transmit(out) == nil {
				n.cfg.Custody.NoteReplay()
				break
			}
		}
	default:
		// Store-and-carry: re-offer to one live next hop — reinforced
		// if available — as unicast exploratory data (the receiver
		// refloods it along its own gradients), keeping custody until
		// that hop's CustodyAck arrives; until then every replay
		// trigger re-offers it again. Unicast matters twice over: only
		// the addressed peer processes the offer, so an overhearing
		// third node's released-ID memory cannot acknowledge — and so
		// discharge — data it no longer holds; and the offer escapes
		// the duplicate-suppression drop that would silently swallow a
		// re-flooded broadcast at nodes that saw the ID before.
		targets := gradients
		if len(reinforced) > 0 {
			targets = reinforced
		}
		if len(targets) == 0 {
			// No live gradient: fall back on stale gradient memory,
			// the last known next hops toward a sink before the soft
			// state decayed or the neighbor died. A wrong guess costs
			// one unanswered frame (no ack, item retained), while a
			// right one drains custody at the instant of a contact —
			// without this, draining depends on an interest making it
			// back across the partition first, one lost frame away
			// from stranding data for a whole contact cycle.
			var stale []message.NodeID
			for _, e := range entries {
				for nb := range e.staleHops {
					if nb != avoid && !seenNb[nb] {
						seenNb[nb] = true
						stale = append(stale, nb)
					}
				}
			}
			sortAscending(stale)
			targets = stale
		}
		if len(targets) == 0 {
			return false
		}
		out := m.Clone()
		out.Class = message.ExploratoryData
		out.PrevHop = selfID(n)
		out.NextHop = targets[0]
		n.markSeen(out.ID)
		n.span(telemetry.SpanCustodyReplay, telemetry.SpanLayerCustody, out, uint32(out.NextHop), telemetry.DropNone)
		if n.transmit(out) != nil {
			return true
		}
		n.cfg.Custody.NoteReplay()
	}
	return false
}

// NeighborRecovered tells the diffusion core that the failure detector
// heard from peer again (or that a mobile contact came into range). It is
// NeighborDead's inverse: where a death purges state toward the peer,
// a recovery re-primes state *through* it without waiting out the
// refresh intervals:
//
//   - every cached interest entry is re-offered to the peer as a unicast
//     interest, rebuilding its gradient toward us immediately (the
//     peer's own jittered re-flood then propagates it outward) — a sink
//     behind a healed partition becomes reachable within a forwarding
//     jitter instead of an interest interval;
//   - active subscriptions re-originate their interest floods promptly,
//     pulling data through the recovered link;
//   - every publication's next data message is exploratory, re-priming
//     reinforcement across the healed path;
//   - custodial data is replayed (ReplayCustody) now that paths may
//     exist again.
//
// Call it from the executor that owns the node, exactly like
// NeighborDead.
func (n *Node) NeighborRecovered(peer uint32) {
	if n.detached {
		return
	}
	n.Stats.NeighborRecoveries++
	nb := message.NodeID(peer)
	for _, e := range n.entriesInOrder() {
		if len(e.localSubs) > 0 {
			continue // our own subscriptions re-flood below
		}
		m := &message.Message{
			Class:    message.Interest,
			ID:       n.nextID(),
			PrevHop:  selfID(n),
			NextHop:  nb,
			HopCount: e.hops,
			Attrs:    e.attrs.Clone(),
		}
		n.markSeen(m.ID)
		n.transmit(m)
	}
	for _, p := range n.pubs {
		p.sentAny = false
	}
	for _, s := range n.subs {
		if s.passive || s.local {
			continue
		}
		if s.refresh != nil {
			s.refresh.Cancel()
		}
		n.armRefresh(s)
	}
	n.ReplayCustody()
}
