package core

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/custody"
	"diffusion/internal/message"
)

// withCustody equips a test node with a (journal-free) custody queue.
func withCustody(c *Config) {
	c.Custody = custody.NewQueue(256, nil)
}

// TestCustodySurvivesPartitionAndReplays is the store-and-carry zero-loss
// scenario: sink 1 — relay 2 — source 3, the sink-side link partitioned
// for longer than every piece of soft state survives (gradient lifetime
// 25 s here, partition 35 s), the source publishing throughout. Without
// custody every message sent during the partition is silently dropped
// once the gradients decay; with custody each one is captured at the
// stuck hop and replayed after the heal, and the duplicate-suppression
// caches keep delivery exactly-once.
func TestCustodySurvivesPartitionAndReplays(t *testing.T) {
	tn := newTestNet(23)
	sink := tn.addNode(1, withCustody)
	relay := tn.addNode(2, withCustody)
	source := tn.addNode(3, withCustody)
	tn.connect(1, 2)
	tn.connect(2, 3)

	delivered := map[int32]int{}
	sink.Subscribe(surveillanceInterest(), func(m *message.Message) {
		a, ok := m.Attrs.FindActual(attr.KeySequence)
		if !ok {
			t.Errorf("delivery without sequence attr")
			return
		}
		delivered[int32(a.Val.AsFloat())]++
	})
	pub := source.Publish(surveillancePublication())

	var sent int32
	tn.s.Every(100*time.Millisecond, 500*time.Millisecond, func() {
		if tn.s.Now() >= 55*time.Second {
			return
		}
		sent++
		source.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, sent)})
	})

	// Healthy phase.
	tn.s.RunUntil(10 * time.Second)
	if len(delivered) == 0 {
		t.Fatal("no deliveries in the healthy phase")
	}

	// Partition the sink-side link and deliver the detector verdicts, as
	// the live stack would. The partition outlives the gradient lifetime
	// (25 s): by the heal, no soft state bridges the cut.
	tn.setCut(1, 2, true)
	sink.NeighborDead(2)
	relay.NeighborDead(1)
	tn.s.RunUntil(45 * time.Second)

	if relay.Stats.CustodyCaptured == 0 && source.Stats.CustodyCaptured == 0 {
		t.Fatal("nothing captured into custody during the partition")
	}

	// Heal. Recovery hooks fire exactly as the live detector would.
	tn.setCut(1, 2, false)
	sink.NeighborRecovered(2)
	relay.NeighborRecovered(1)
	tn.s.RunUntil(80 * time.Second)

	// Zero reinforced-message loss, zero duplicate deliveries.
	if int32(len(delivered)) != sent {
		missing := []int32{}
		for s := int32(1); s <= sent; s++ {
			if delivered[s] == 0 {
				missing = append(missing, s)
			}
		}
		t.Fatalf("delivered %d of %d distinct messages; missing %v",
			len(delivered), sent, missing)
	}
	for s, cnt := range delivered {
		if cnt != 1 {
			t.Fatalf("sequence %d delivered %d times, want exactly once", s, cnt)
		}
	}
	for name, n := range map[string]*Node{"sink": sink, "relay": relay, "source": source} {
		if n.cfg.Custody.Len() != 0 {
			t.Fatalf("%s still holds %d custodial items after drain", name, n.cfg.Custody.Len())
		}
	}
	if c := relay.cfg.Custody.Counters(); c.Replayed == 0 {
		t.Fatal("relay never replayed custodial data")
	}
}

// TestNeighborRecoveredReoffersInterests checks the recovery hook's
// interest re-offer: a neighbor that lost its interest cache (warm
// restart) gets the cached interest unicast immediately, rebuilding its
// gradient toward us without waiting for the sink's next refresh.
func TestNeighborRecoveredReoffersInterests(t *testing.T) {
	tn := newTestNet(31)
	nodes := tn.line(3)
	sink, relay, edge := nodes[0], nodes[1], nodes[2]
	sink.Subscribe(surveillanceInterest(), func(*message.Message) {})
	tn.s.RunUntil(3 * time.Second)
	if edge.Entries() != 1 {
		t.Fatalf("edge entries = %d, want 1 before the crash", edge.Entries())
	}

	// Edge node crashes and reboots: its interest cache is gone.
	edge.Detach()
	edge.Restart()
	if edge.Entries() != 0 {
		t.Fatalf("edge entries = %d after restart, want 0", edge.Entries())
	}

	before := relay.Stats.SentByClass[message.Interest]
	relay.NeighborRecovered(3)
	if relay.Stats.NeighborRecoveries != 1 {
		t.Fatalf("neighbor recoveries = %d, want 1", relay.Stats.NeighborRecoveries)
	}
	if relay.Stats.SentByClass[message.Interest] != before+1 {
		t.Fatalf("relay sent %d interests on recovery, want 1",
			relay.Stats.SentByClass[message.Interest]-before)
	}
	tn.s.RunUntil(3*time.Second + 100*time.Millisecond)
	if edge.Entries() != 1 {
		t.Fatalf("edge entries = %d after re-offer, want 1", edge.Entries())
	}

	// The re-offered interest carried the cached hop budget, so the entry
	// can still bound further flooding.
	if e := relay.entriesInOrder(); len(e) != 1 || !e[0].hasHops {
		t.Fatal("relay entry lost its hop budget")
	}
}

// TestEnergyAwareReinforcementSpreadsLoad runs the diamond (sink 1,
// relays 2 and 3, source 4) with energy-aware reinforcement: the sink
// must rotate the reinforced path across both relays instead of pinning
// the first deliverer forever.
func TestEnergyAwareReinforcementSpreadsLoad(t *testing.T) {
	tn := newTestNet(47)
	aware := func(c *Config) { c.EnergyAware = true }
	sink := tn.addNode(1, aware)
	r2 := tn.addNode(2, aware)
	r3 := tn.addNode(3, aware)
	source := tn.addNode(4, aware)
	tn.connect(1, 2)
	tn.connect(1, 3)
	tn.connect(2, 4)
	tn.connect(3, 4)

	delivered := 0
	sink.Subscribe(surveillanceInterest(), func(*message.Message) { delivered++ })
	pub := source.Publish(surveillancePublication())
	var seq int32
	tn.s.Every(100*time.Millisecond, 500*time.Millisecond, func() {
		seq++
		source.Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.s.RunUntil(60 * time.Second)

	if delivered == 0 {
		t.Fatal("no deliveries")
	}
	if r2.Stats.SentByClass[message.Data] == 0 || r3.Stats.SentByClass[message.Data] == 0 {
		t.Fatalf("load not spread: relay data sends %d / %d",
			r2.Stats.SentByClass[message.Data], r3.Stats.SentByClass[message.Data])
	}
	if sink.Stats.EnergyShifts == 0 {
		t.Fatal("sink never shifted reinforcement off the first deliverer")
	}
}
