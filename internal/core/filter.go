package core

import (
	"fmt"
	"sort"

	"diffusion/internal/attr"
	"diffusion/internal/match"
	"diffusion/internal/message"
)

// This file implements the paper's filter architecture (sections 3.3 and
// 4.1, Figure 5). Filters are the only extension point: application code
// registers an attribute pattern and a priority; every message traverses
// the matching filters in descending priority order before the diffusion
// core processes it. A filter that wants the message to continue calls
// SendMessageToNext; otherwise the message is consumed. Filters may also
// originate messages (InjectMessage) or bypass processing entirely
// (SendDirect), which is how in-network aggregation, nested queries and
// geographic scoping are built without touching the core.

// FilterCallback is invoked for each message matching the filter. msg is
// owned by the callback until it passes it on; h identifies the filter for
// SendMessageToNext.
type FilterCallback func(msg *message.Message, h FilterHandle)

type filter struct {
	handle   FilterHandle
	attrs    attr.Vec
	priority int16
	cb       FilterCallback
	// pos is the filter's current position in the priority-sorted chain,
	// maintained on every install/remove.
	pos int
	// slot is the filter's handle in the chain match index.
	slot match.Handle
}

// AddFilter installs a filter triggered by messages whose attributes
// two-way match attrs. priority must be positive; higher priorities run
// earlier. Registration order breaks ties.
func (n *Node) AddFilter(attrs attr.Vec, priority int16, cb FilterCallback) FilterHandle {
	if priority <= 0 {
		panic(fmt.Sprintf("core: filter priority must be positive, got %d", priority))
	}
	if cb == nil {
		panic("core: filter callback must not be nil")
	}
	n.nextFil++
	f := &filter{handle: n.nextFil, attrs: attrs.Clone(), priority: priority, cb: cb}
	n.filters = append(n.filters, f)
	// Keep the chain sorted: higher priority first, then insertion order.
	sort.SliceStable(n.filters, func(i, j int) bool {
		return n.filters[i].priority > n.filters[j].priority
	})
	n.renumberFilters()
	n.filtersByHandle[f.handle] = f
	f.slot = n.midx.filters.Add(f.attrs, uint64(f.handle))
	return f.handle
}

// RemoveFilter uninstalls a filter.
func (n *Node) RemoveFilter(h FilterHandle) error {
	f, ok := n.filtersByHandle[h]
	if !ok {
		return fmt.Errorf("%w: filter %d", ErrUnknownHandle, h)
	}
	n.filters = append(n.filters[:f.pos], n.filters[f.pos+1:]...)
	n.renumberFilters()
	delete(n.filtersByHandle, h)
	n.midx.filters.Remove(f.slot)
	return nil
}

// renumberFilters refreshes every filter's chain position after an
// install or removal reshuffles the slice.
func (n *Node) renumberFilters() {
	for i, f := range n.filters {
		f.pos = i
	}
}

// runChainFrom delivers m to the first matching filter at chain position
// start or later, or to the core when none matches.
//
// Filter matching is one-way: every formal in the filter's attributes must
// be satisfied by an actual in the message (attr.OneWayMatch). A filter
// registered with no attributes therefore sees every message, one with
// "class EQ interest" sees interests only, and one with a task formal sees
// data carrying that task actual. (Subscription delivery, by contrast, uses
// the full two-way match of section 3.2.)
func (n *Node) runChainFrom(m *message.Message, start int) {
	if start < len(n.filters) {
		// One-way index lookup yields every matching filter; the earliest
		// chain position at or past start is exactly the filter the old
		// in-order scan would have stopped at.
		tags := n.midx.getTags()
		tags = n.midx.filters.Lookup(m.Attrs, tags)
		var best *filter
		for _, t := range tags {
			f := n.filtersByHandle[FilterHandle(t)]
			if f != nil && f.pos >= start && (best == nil || f.pos < best.pos) {
				best = f
			}
		}
		n.midx.putTags(tags)
		if best != nil {
			n.Stats.FilterInvocations++
			best.cb(m, best.handle)
			return
		}
	}
	n.processCore(m)
}

// SendMessageToNext passes m to the next matching filter after the given
// filter in the chain (or to the core). It is the paper's
// sendMessageToNext: filters that only observe or rewrite call it to keep
// the message moving.
func (n *Node) SendMessageToNext(m *message.Message, h FilterHandle) {
	if f, ok := n.filtersByHandle[h]; ok {
		n.runChainFrom(m, f.pos+1)
		return
	}
	// Unknown handle (filter was removed mid-flight): fall through to the
	// core rather than dropping the message.
	n.processCore(m)
}

// InjectMessage introduces a (typically filter-originated) message into
// the node as if it had just arrived: it traverses the full filter chain
// and then the core. A zero ID is assigned; PrevHop is forced to this
// node. This is the paper's sendMessage used to originate new messages
// from in-network processing code.
func (n *Node) InjectMessage(m *message.Message) {
	out := m.Clone()
	if out.ID == (message.ID{}) {
		out.ID = n.nextID()
	}
	out.PrevHop = selfID(n)
	n.dispatch(out)
}

// Filters returns the number of installed filters (diagnostics).
func (n *Node) Filters() int { return len(n.filters) }

// ProcessNoForward runs the diffusion core on m (gradient setup, local
// delivery, reinforcement handling) but suppresses any re-flooding, so a
// filter can take over the forwarding decision — the mechanism behind
// geographic interest scoping ("we are currently exploring using filters
// to optimize diffusion (avoiding flooding) with geographic information",
// section 4.2).
func (n *Node) ProcessNoForward(m *message.Message) {
	n.suppressForward = true
	defer func() { n.suppressForward = false }()
	n.processCore(m)
}
