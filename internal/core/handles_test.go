package core

import (
	"testing"
)

// TestHandleEnumeration covers the shutdown-path introspection API: live
// handles enumerate in order, attrs round out, and withdrawn handles
// disappear.
func TestHandleEnumeration(t *testing.T) {
	tn := newTestNet(9)
	n := tn.addNode(1, nil)

	s1 := n.Subscribe(surveillanceInterest(), nil)
	s2 := n.Subscribe(surveillanceInterest(), nil)
	p1 := n.Publish(surveillancePublication())

	subs := n.ActiveSubscriptions()
	if len(subs) != 2 || subs[0] != s1 || subs[1] != s2 {
		t.Fatalf("ActiveSubscriptions = %v, want [%d %d]", subs, s1, s2)
	}
	pubs := n.ActivePublications()
	if len(pubs) != 1 || pubs[0] != p1 {
		t.Fatalf("ActivePublications = %v, want [%d]", pubs, p1)
	}

	if got, ok := n.SubscriptionAttrs(s1); !ok || len(got) != len(surveillanceInterest()) {
		t.Fatalf("SubscriptionAttrs(%d) = %v, %v", s1, got, ok)
	}
	if got, ok := n.PublicationAttrs(p1); !ok || len(got) != len(surveillancePublication()) {
		t.Fatalf("PublicationAttrs(%d) = %v, %v", p1, got, ok)
	}
	if _, ok := n.SubscriptionAttrs(999); ok {
		t.Fatal("unknown subscription handle must report !ok")
	}
	if _, ok := n.PublicationAttrs(999); ok {
		t.Fatal("unknown publication handle must report !ok")
	}

	// Withdrawing everything (the SIGTERM path) empties both sets.
	for _, h := range n.ActivePublications() {
		if err := n.Unpublish(h); err != nil {
			t.Fatal(err)
		}
	}
	for _, h := range n.ActiveSubscriptions() {
		if err := n.Unsubscribe(h); err != nil {
			t.Fatal(err)
		}
	}
	if len(n.ActiveSubscriptions())+len(n.ActivePublications()) != 0 {
		t.Fatal("handles survived withdrawal")
	}
}
