package trafficmodel

import (
	"math"
	"testing"
)

func TestPaperEndpoints(t *testing.T) {
	p := Testbed()
	// "Aggregation to provide a flat 990B/event."
	agg := p.BytesPerEvent(1, true).Total()
	if math.Abs(agg-990) > 25 {
		t.Errorf("aggregated bytes/event = %.0f, paper predicts 990", agg)
	}
	// "990 ... without aggregation" at one source (identical to the
	// aggregated case).
	one := p.BytesPerEvent(1, false).Total()
	if math.Abs(one-agg) > 1e-9 {
		t.Errorf("one source: agg %.0f vs no-agg %.0f must coincide", agg, one)
	}
	// "to 3289B/event ... as the number of sources rise ... to 4". The
	// paper's exact accounting is unspecified; we accept within 5%.
	four := p.BytesPerEvent(4, false).Total()
	if math.Abs(four-3289)/3289 > 0.05 {
		t.Errorf("4-source no-agg = %.0f, paper predicts 3289 (±5%%)", four)
	}
}

func TestAggregatedFlat(t *testing.T) {
	p := Testbed()
	base := p.BytesPerEvent(1, true).Total()
	for s := 2; s <= 8; s++ {
		if v := p.BytesPerEvent(s, true).Total(); v != base {
			t.Errorf("aggregated cost at %d sources = %.0f, want flat %.0f", s, v, base)
		}
	}
}

func TestNoAggregationGrowsLinearly(t *testing.T) {
	p := Testbed()
	series := p.Series(4, false)
	for i := 1; i < len(series); i++ {
		if series[i] <= series[i-1] {
			t.Fatalf("no-agg series must increase: %v", series)
		}
	}
	// The per-source increments are constant (linear growth).
	d1 := series[1] - series[0]
	d2 := series[3] - series[2]
	if math.Abs(d1-d2) > 1e-9 {
		t.Errorf("increments differ: %v vs %v", d1, d2)
	}
}

func TestSavingsGrowWithSources(t *testing.T) {
	p := Testbed()
	prev := p.Savings(1)
	if prev != 0 {
		t.Errorf("no savings possible with one source, got %.2f", prev)
	}
	for s := 2; s <= 5; s++ {
		sv := p.Savings(s)
		if sv <= prev {
			t.Fatalf("savings must grow with sources: %d -> %.3f (prev %.3f)", s, sv, prev)
		}
		prev = sv
	}
	// At 4 sources the model predicts roughly 70% savings (the measured
	// 42% is lower because of MAC collisions, section 6.1).
	if sv := p.Savings(4); sv < 0.6 || sv > 0.8 {
		t.Errorf("model savings at 4 sources = %.2f, expect ~0.7", sv)
	}
}

// TestSimulationRatioExplainsGap reproduces the section 6.1 explanation:
// with the simulation's 1:100 exploratory:data ratio, aggregation savings
// approach the 3-5x of [23], while the testbed's 1:10 ratio caps them
// near 1.7-3x.
func TestSimulationRatioExplainsGap(t *testing.T) {
	sim, tb := Simulation(), Testbed()
	simFactor := sim.BytesPerEvent(4, false).Total() / sim.BytesPerEvent(4, true).Total()
	tbFactor := tb.BytesPerEvent(4, false).Total() / tb.BytesPerEvent(4, true).Total()
	if simFactor <= tbFactor {
		t.Errorf("simulation ratio should amplify savings: sim %.2fx vs testbed %.2fx",
			simFactor, tbFactor)
	}
	if simFactor < 3 {
		t.Errorf("simulation-parameter savings factor %.2fx, paper reports 3-5x", simFactor)
	}
}

func TestBreakdownComponents(t *testing.T) {
	p := Testbed()
	c := p.BytesPerEvent(2, false)
	if c.Total() <= 0 {
		t.Fatal("total must be positive")
	}
	sum := c.Interests + c.Exploratory + c.Data + c.Reinforcements
	if math.Abs(sum-c.Total()) > 1e-9 {
		t.Error("Total must equal the component sum")
	}
	// Plain data dominates on the testbed parameters.
	if c.Data <= c.Interests || c.Data <= c.Reinforcements {
		t.Errorf("data should dominate: %+v", c)
	}
	if c.String() == "" {
		t.Error("String")
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero nodes": func() {
			(Params{MessageBytes: 1, PathHops: 1, EventInterval: 1, InterestInterval: 1}).BytesPerEvent(1, false)
		},
		"zero sources": func() { Testbed().BytesPerEvent(0, false) },
		"bad ratio": func() {
			p := Testbed()
			p.ExploratoryRatio = 2
			p.BytesPerEvent(1, false)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}
