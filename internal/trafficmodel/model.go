// Package trafficmodel implements the paper's section 6.1 analytic traffic
// model, which the authors use to confirm the Figure 8 measurements:
//
//	"We approximate all messages as 127B long and add together interest
//	messages (sent every 60s and flooded from each node), reinforcement
//	messages (sent on the reinforced path between the sink and each
//	source), simple data messages (9 out of every 10 data messages, sent
//	only on the reinforced path, and either aggregated or not), and
//	exploratory data messages (1 out of every 10 data messages, sent from
//	each source and flooded in turn from each node, again possibly
//	aggregated). ... Summing the message cost and normalizing per event we
//	expect aggregation to provide a flat 990B/event independent of the
//	number of sources, and we expect bytes sent per event to increase from
//	990 to 3289B/event without aggregation as the number of sources rise
//	from 1 to 4."
//
// With the testbed parameters (14 nodes, 127-byte messages, one event per
// 6 s, interests every 60 s, a 1:10 exploratory ratio, and a 5-hop
// reinforced path) this model yields 990 B/event for the aggregated case at
// any source count, and 990→3429 B/event for 1→4 unaggregated sources —
// within ~4% of the paper's 3289 (the paper's exact per-component
// accounting is not fully specified). The shape — aggregation flat,
// no-aggregation rising roughly linearly — is exact.
package trafficmodel

import (
	"fmt"
	"time"
)

// Params parameterizes the model.
type Params struct {
	// Nodes is the network size (floods cost one transmission per node).
	Nodes int
	// MessageBytes approximates every message's size.
	MessageBytes int
	// PathHops is the reinforced path length between sink and sources.
	PathHops int
	// EventInterval is the per-source data generation period.
	EventInterval time.Duration
	// InterestInterval is the interest refresh period.
	InterestInterval time.Duration
	// ExploratoryRatio is the fraction of data messages sent exploratory.
	ExploratoryRatio float64
}

// Testbed returns the paper's testbed parameters.
func Testbed() Params {
	return Params{
		Nodes:            14,
		MessageBytes:     127,
		PathHops:         5,
		EventInterval:    6 * time.Second,
		InterestInterval: 60 * time.Second,
		ExploratoryRatio: 0.1,
	}
}

// Simulation returns the parameters of the paper's earlier ns-2 study
// ([23]: exploratory every 50 s, data every 0.5 s, 64-byte messages), used
// by the section 6.1 discussion of why simulation showed 3-5x savings but
// the testbed only 1.7x: the exploratory:data ratio is 1:100 instead of
// 1:10.
func Simulation() Params {
	return Params{
		Nodes:            50,
		MessageBytes:     64,
		PathHops:         5,
		EventInterval:    500 * time.Millisecond,
		InterestInterval: 60 * time.Second,
		ExploratoryRatio: 0.01,
	}
}

// Components is the per-event byte breakdown.
type Components struct {
	Interests      float64
	Exploratory    float64
	Data           float64
	Reinforcements float64
}

// Total sums the components.
func (c Components) Total() float64 {
	return c.Interests + c.Exploratory + c.Data + c.Reinforcements
}

// String renders the breakdown.
func (c Components) String() string {
	return fmt.Sprintf("interests=%.0fB expl=%.0fB data=%.0fB reinf=%.0fB total=%.0fB/event",
		c.Interests, c.Exploratory, c.Data, c.Reinforcements, c.Total())
}

// validate panics on nonsensical parameters: the model is configured by
// experiment code, not runtime input.
func (p Params) validate() {
	if p.Nodes <= 0 || p.MessageBytes <= 0 || p.PathHops <= 0 ||
		p.EventInterval <= 0 || p.InterestInterval <= 0 ||
		p.ExploratoryRatio < 0 || p.ExploratoryRatio > 1 {
		panic(fmt.Sprintf("trafficmodel: invalid params %+v", p))
	}
}

// BytesPerEvent returns the modelled bytes sent across all diffusion
// modules per distinct event for the given source count, with or without
// in-network aggregation. Sources generate synchronized events, so the
// distinct-event rate equals the per-source rate, as in Figure 8.
func (p Params) BytesPerEvent(sources int, aggregated bool) Components {
	p.validate()
	if sources <= 0 {
		panic("trafficmodel: sources must be positive")
	}
	msg := float64(p.MessageBytes)
	n := float64(p.Nodes)
	l := float64(p.PathHops)
	s := float64(sources)
	if aggregated {
		// Aggregation collapses the event streams into a single flow at
		// the first hop; the paper models the result as the one-source
		// cost, flat in the number of sources.
		s = 1
	}
	// Interest floods amortized over the events between refreshes.
	interests := msg * n * float64(p.EventInterval) / float64(p.InterestInterval)
	// Exploratory data floods network-wide, one flood per (surviving)
	// source, for the exploratory fraction of events.
	exploratory := msg * p.ExploratoryRatio * n * s
	// Plain data travels the reinforced path per surviving source.
	data := msg * (1 - p.ExploratoryRatio) * l * s
	// Reinforcements retrace the path once per exploratory round.
	reinforcements := msg * p.ExploratoryRatio * l * s
	return Components{
		Interests:      interests,
		Exploratory:    exploratory,
		Data:           data,
		Reinforcements: reinforcements,
	}
}

// Savings returns the modelled fractional traffic reduction from
// aggregation at the given source count (the paper's simulation-vs-testbed
// discussion compares this across exploratory ratios).
func (p Params) Savings(sources int) float64 {
	with := p.BytesPerEvent(sources, true).Total()
	without := p.BytesPerEvent(sources, false).Total()
	return 1 - with/without
}

// Series returns bytes/event for sources 1..maxSources, matching the
// Figure 8 x-axis.
func (p Params) Series(maxSources int, aggregated bool) []float64 {
	out := make([]float64, maxSources)
	for s := 1; s <= maxSources; s++ {
		out[s-1] = p.BytesPerEvent(s, aggregated).Total()
	}
	return out
}
