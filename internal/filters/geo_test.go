package filters

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

func TestRegionOf(t *testing.T) {
	full := attr.Vec{
		attr.Float64Attr(attr.KeyX, attr.GE, -100),
		attr.Float64Attr(attr.KeyX, attr.LE, 200),
		attr.Float64Attr(attr.KeyY, attr.GE, 100),
		attr.Float64Attr(attr.KeyY, attr.LE, 400),
	}
	r, ok := RegionOf(full)
	if !ok {
		t.Fatal("fully bounded region should parse")
	}
	if r.MinX != -100 || r.MaxX != 200 || r.MinY != 100 || r.MaxY != 400 {
		t.Errorf("region %+v", r)
	}
	if !r.Contains(125, 220) || r.Contains(125, 500) {
		t.Error("containment")
	}
	if _, ok := RegionOf(full[:3]); ok {
		t.Error("partially bounded region must not parse")
	}
	if _, ok := RegionOf(nil); ok {
		t.Error("empty attrs have no region")
	}
	// Integer attributes work too, and tighter bounds win.
	r, ok = RegionOf(attr.Vec{
		attr.Int32Attr(attr.KeyX, attr.GE, 0),
		attr.Int32Attr(attr.KeyX, attr.GE, 10),
		attr.Int32Attr(attr.KeyX, attr.LE, 20),
		attr.Int32Attr(attr.KeyY, attr.GE, 0),
		attr.Int32Attr(attr.KeyY, attr.LE, 5),
	})
	if !ok || r.MinX != 10 {
		t.Errorf("tightest bound must win: %+v %v", r, ok)
	}
}

// geoChain builds a line 1-2-3-4-5 at x = 0,10,20,30,40, y=0, with each
// node given its neighbors' positions, and a GeoScope filter installed.
func geoChain(seed int64) (*nettest.Net, []*core.Node, []*GeoScope) {
	tn := nettest.New(seed)
	nodes := tn.Line(5)
	pos := map[uint32][2]float64{}
	for i := uint32(1); i <= 5; i++ {
		pos[i] = [2]float64{float64(i-1) * 10, 0}
	}
	var scopes []*GeoScope
	for i := uint32(1); i <= 5; i++ {
		nbrs := map[uint32][2]float64{}
		if i > 1 {
			nbrs[i-1] = pos[i-1]
		}
		if i < 5 {
			nbrs[i+1] = pos[i+1]
		}
		scopes = append(scopes, NewGeoScope(tn.Nodes[i], pos[i][0], pos[i][1], nbrs))
	}
	return tn, nodes, scopes
}

func regionInterest() attr.Vec {
	// Region around node 5 (x in [35,45]).
	return attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "geo-task"),
		attr.Float64Attr(attr.KeyX, attr.GE, 35),
		attr.Float64Attr(attr.KeyX, attr.LE, 45),
		attr.Float64Attr(attr.KeyY, attr.GE, -5),
		attr.Float64Attr(attr.KeyY, attr.LE, 5),
	}
}

func TestGeoScopeDeliversIntoRegion(t *testing.T) {
	tn, nodes, scopes := geoChain(1)
	var got int
	nodes[0].Subscribe(regionInterest(), func(*message.Message) { got++ })

	// Node 5 is in the region and publishes matching data with its
	// position as actuals.
	pub := nodes[4].Publish(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, "geo-task"),
		attr.Float64Attr(attr.KeyX, attr.IS, 40),
		attr.Float64Attr(attr.KeyY, attr.IS, 0),
	})
	tn.Sched.Every(2*time.Second, time.Second, func() { nodes[4].Send(pub, nil) })
	tn.Sched.RunUntil(15 * time.Second)

	if got < 5 {
		t.Fatalf("scoped interest should still deliver data: got %d", got)
	}
	// The relays outside the region must have unicast, not flooded.
	unicasts := 0
	for _, g := range scopes[1:4] {
		unicasts += g.Unicasts
	}
	if unicasts == 0 {
		t.Error("relays outside the region should greedy-unicast the interest")
	}
}

func TestGeoScopeCutsInterestTraffic(t *testing.T) {
	// Comb topology: a main line 1..5 toward the region, with off-path
	// branch nodes 6,7,8 hanging off the middle relays. Flooding covers
	// the branches; greedy geographic unicast skips them entirely.
	run := func(withGeo bool) int {
		tn := nettest.New(2)
		nodes := tn.Line(5)
		for i, branch := range []uint32{6, 7, 8} {
			tn.AddNode(branch, nil)
			tn.Connect(uint32(i+2), branch) // off nodes 2, 3, 4
		}
		if withGeo {
			pos := map[uint32][2]float64{}
			for i := uint32(1); i <= 5; i++ {
				pos[i] = [2]float64{float64(i-1) * 10, 0}
			}
			for i := uint32(1); i <= 5; i++ {
				nbrs := map[uint32][2]float64{}
				if i > 1 {
					nbrs[i-1] = pos[i-1]
				}
				if i < 5 {
					nbrs[i+1] = pos[i+1]
				}
				NewGeoScope(tn.Nodes[i], pos[i][0], pos[i][1], nbrs)
			}
		}
		nodes[0].Subscribe(regionInterest(), nil)
		tn.Sched.RunUntil(time.Minute)
		total := 0
		for _, n := range tn.Nodes {
			total += n.Stats.SentByClass[message.Interest]
		}
		return total
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("geo scoping should reduce interest transmissions: with=%d without=%d",
			with, without)
	}
}

func TestGeoScopePassesUnscopedInterests(t *testing.T) {
	tn, nodes, scopes := geoChain(3)
	nodes[0].Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "anywhere"),
	}, nil)
	tn.Sched.RunUntil(5 * time.Second)
	if nodes[4].Entries() == 0 {
		t.Error("unscoped interest must still flood end to end")
	}
	for _, g := range scopes {
		if g.Unicasts != 0 {
			t.Error("unscoped interests must not be unicast")
		}
	}
}

func TestElectionPicksBestCandidate(t *testing.T) {
	// Three candidates in a clique; node 2 has the best (lowest) score.
	tn := nettest.New(4)
	for i := uint32(1); i <= 3; i++ {
		tn.AddNode(i, nil)
	}
	tn.Connect(1, 2)
	tn.Connect(2, 3)
	tn.Connect(1, 3)

	results := map[uint32]bool{}
	scores := map[uint32]float64{1: 30, 2: 5, 3: 20}
	for id, sc := range scores {
		id := id
		NewElection(ElectionConfig{
			Node:       tn.Nodes[id],
			Clock:      tn.Sched,
			Rand:       tn.Sched.Rand(),
			Name:       "camera",
			Score:      sc,
			ScoreScale: 50,
			Window:     20 * time.Second,
			OnDecided:  func(won bool) { results[id] = won },
		})
	}
	tn.Sched.RunUntil(time.Minute)

	if len(results) != 3 {
		t.Fatalf("only %d candidates decided", len(results))
	}
	winners := 0
	for id, won := range results {
		if won {
			winners++
			if id != 2 {
				t.Errorf("node %d won; best score was node 2", id)
			}
		}
	}
	if winners != 1 {
		t.Errorf("%d winners, want exactly 1", winners)
	}
}

func TestElectionTieBreaksByID(t *testing.T) {
	tn := nettest.New(5)
	tn.AddNode(1, nil)
	tn.AddNode(2, nil)
	tn.Connect(1, 2)
	results := map[uint32]bool{}
	for _, id := range []uint32{1, 2} {
		id := id
		NewElection(ElectionConfig{
			Node:       tn.Nodes[id],
			Clock:      tn.Sched,
			Rand:       tn.Sched.Rand(),
			Name:       "tie",
			Score:      10,
			ScoreScale: 50,
			Window:     20 * time.Second,
			OnDecided:  func(won bool) { results[id] = won },
		})
	}
	tn.Sched.RunUntil(time.Minute)
	if !results[1] || results[2] {
		t.Errorf("tie must break toward the lower ID: %v", results)
	}
}

func TestElectionSoleCandidateWins(t *testing.T) {
	tn := nettest.New(6)
	tn.AddNode(1, nil)
	won := false
	decided := false
	NewElection(ElectionConfig{
		Node:       tn.Nodes[1],
		Clock:      tn.Sched,
		Rand:       tn.Sched.Rand(),
		Name:       "solo",
		Score:      99,
		ScoreScale: 100,
		Window:     10 * time.Second,
		OnDecided:  func(w bool) { won, decided = w, true },
	})
	tn.Sched.RunUntil(time.Minute)
	if !decided || !won {
		t.Errorf("sole candidate must win: decided=%v won=%v", decided, won)
	}
}

func TestNestedQueryResponder(t *testing.T) {
	// Chain: user(1) - audio(2) - light(3). The responder on the audio
	// node activates on the user's nested query, sub-tasks the light
	// sensor, and reports audio data per light event.
	tn := nettest.New(7)
	nodes := tn.Line(3)
	user, audio, light := nodes[0], nodes[1], nodes[2]

	resp := NewNestedQueryResponder(NestedQueryConfig{
		Node: audio,
		TriggerWatch: attr.Vec{
			attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest),
			attr.StringAttr(attr.KeyType, attr.IS, "audio"),
		},
		InitialInterest: attr.Vec{
			attr.StringAttr(attr.KeyType, attr.EQ, "light"),
		},
		Publication: attr.Vec{
			attr.StringAttr(attr.KeyType, attr.IS, "audio"),
		},
		OnInitial: func(m *message.Message) attr.Vec {
			seq, _ := m.Attrs.FindActual(attr.KeySequence)
			return attr.Vec{seq}
		},
	})

	var audioEvents []int32
	user.Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyType, attr.EQ, "audio"),
	}, func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeySequence); ok {
			audioEvents = append(audioEvents, a.Val.Int32())
		}
	})

	lightPub := light.Publish(attr.Vec{attr.StringAttr(attr.KeyType, attr.IS, "light")})
	seq := int32(0)
	tn.Sched.Every(5*time.Second, 2*time.Second, func() {
		seq++
		light.Send(lightPub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, seq)})
	})
	tn.Sched.RunUntil(time.Minute)

	if !resp.Active() {
		t.Fatal("responder never activated")
	}
	if resp.Reports == 0 {
		t.Fatal("responder sent no audio reports")
	}
	if len(audioEvents) < 10 {
		t.Errorf("user received %d audio events", len(audioEvents))
	}
	// Light data must have been localized: the user never subscribed to
	// light, so no light data should reach it.
	resp.Close()
	if resp.Active() {
		t.Error("Close must deactivate")
	}
}
