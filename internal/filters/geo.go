package filters

import (
	"math"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
)

// GeoScope implements the geographic interest-scoping optimization the
// paper leaves as future work ("we are currently exploring using filters
// to optimize diffusion (avoiding flooding) with geographic information",
// sections 4.2 and 7, citing GEAR). When an interest names a rectangular
// region (x/y GE/LE formals) and this node lies outside it, GeoScope
// replaces the core's broadcast re-flood with a greedy unicast toward the
// neighbor closest to the region, eliminating flood traffic outside the
// region. Inside the region (or when no neighbor makes progress) normal
// flooding resumes.
type GeoScope struct {
	node   *core.Node
	handle core.FilterHandle

	x, y      float64
	neighbors map[uint32][2]float64
	seen      map[message.ID]bool

	// Unicasts counts scoped greedy forwards; Floods counts interests
	// passed through to normal core flooding.
	Unicasts, Floods int
}

// NewGeoScope installs the scoping filter on n. The node knows its own
// position and its neighbors' positions (the paper assumes "sensors know
// their locations").
func NewGeoScope(n *core.Node, x, y float64, neighbors map[uint32][2]float64) *GeoScope {
	g := &GeoScope{
		node:      n,
		x:         x,
		y:         y,
		neighbors: neighbors,
		seen:      map[message.ID]bool{},
	}
	// Trigger on interests only: they carry a "class IS interest" actual.
	pattern := attr.Vec{attr.Int32Attr(attr.KeyClass, attr.EQ, attr.ClassInterest)}
	g.handle = n.AddFilter(pattern, 200, g.onMessage)
	return g
}

// Remove uninstalls the filter.
func (g *GeoScope) Remove() { _ = g.node.RemoveFilter(g.handle) }

// Rect is a closed axis-aligned rectangle.
type Rect struct {
	MinX, MaxX, MinY, MaxY float64
}

// Contains reports whether (x, y) lies in r.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.MinX && x <= r.MaxX && y >= r.MinY && y <= r.MaxY
}

// center returns the rectangle's midpoint.
func (r Rect) center() (float64, float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

// RegionOf extracts a rectangular region from interest attributes (x GE a,
// x LE b, y GE c, y LE d). It reports ok=false unless both axes are fully
// bounded.
func RegionOf(attrs attr.Vec) (Rect, bool) {
	r := Rect{
		MinX: math.Inf(-1), MaxX: math.Inf(1),
		MinY: math.Inf(-1), MaxY: math.Inf(1),
	}
	for _, a := range attrs {
		if !a.Val.Numeric() {
			continue
		}
		v := a.Val.AsFloat()
		switch {
		case a.Key == attr.KeyX && (a.Op == attr.GE || a.Op == attr.GT):
			r.MinX = math.Max(r.MinX, v)
		case a.Key == attr.KeyX && (a.Op == attr.LE || a.Op == attr.LT):
			r.MaxX = math.Min(r.MaxX, v)
		case a.Key == attr.KeyY && (a.Op == attr.GE || a.Op == attr.GT):
			r.MinY = math.Max(r.MinY, v)
		case a.Key == attr.KeyY && (a.Op == attr.LE || a.Op == attr.LT):
			r.MaxY = math.Min(r.MaxY, v)
		}
	}
	bounded := !math.IsInf(r.MinX, -1) && !math.IsInf(r.MaxX, 1) &&
		!math.IsInf(r.MinY, -1) && !math.IsInf(r.MaxY, 1)
	return r, bounded
}

func (g *GeoScope) onMessage(m *message.Message, h core.FilterHandle) {
	rect, ok := RegionOf(m.Attrs)
	if !ok || rect.Contains(g.x, g.y) {
		// No region, or we are inside it: normal flooding.
		g.Floods++
		g.node.SendMessageToNext(m, h)
		return
	}
	if g.seen[m.ID] {
		// Already scoped this interest origination once; let the core's
		// duplicate suppression handle the copy (no re-unicast).
		g.node.SendMessageToNext(m, h)
		return
	}
	cx, cy := rect.center()
	own := math.Hypot(g.x-cx, g.y-cy)
	best, found := uint32(0), false
	bestDist := own
	for id, p := range g.neighbors {
		d := math.Hypot(p[0]-cx, p[1]-cy)
		if d < bestDist || (d == bestDist && found && id < best) {
			best = id
			bestDist = d
			found = true
		}
	}
	if !found {
		// No neighbor makes progress toward the region: fall back to
		// flooding rather than dropping the interest (greedy dead end).
		g.Floods++
		g.node.SendMessageToNext(m, h)
		return
	}
	g.seen[m.ID] = true
	// Let the core absorb the interest (gradient setup, local delivery)
	// without re-flooding, then forward a single unicast copy greedily.
	g.node.ProcessNoForward(m)
	out := m.Clone()
	out.HopCount++
	out.NextHop = message.NodeID(best)
	g.node.SendDirect(out)
	g.Unicasts++
}
