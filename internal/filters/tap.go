package filters

import (
	"fmt"
	"io"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
)

// Tap is a pass-through observation filter. The paper notes filters are
// "very useful for debugging and monitoring"; Tap records or logs every
// matching message without perturbing diffusion.
type Tap struct {
	node   *core.Node
	handle core.FilterHandle

	// Count per message class.
	Count [5]int
	// Last holds the most recent matching message (cloned).
	Last *message.Message

	w io.Writer
}

// NewTap installs a tap on n for messages matching pattern (nil = all).
// If w is non-nil every message is also printed to it. The tap runs at a
// very high priority so it sees messages before other filters.
func NewTap(n *core.Node, pattern attr.Vec, w io.Writer) *Tap {
	t := &Tap{node: n, w: w}
	t.handle = n.AddFilter(pattern, 30000, t.onMessage)
	return t
}

// Remove uninstalls the tap.
func (t *Tap) Remove() { _ = t.node.RemoveFilter(t.handle) }

// Total returns the number of observed messages.
func (t *Tap) Total() int {
	n := 0
	for _, c := range t.Count {
		n += c
	}
	return n
}

func (t *Tap) onMessage(m *message.Message, h core.FilterHandle) {
	if int(m.Class) < len(t.Count) {
		t.Count[m.Class]++
	}
	t.Last = m.Clone()
	if t.w != nil {
		fmt.Fprintf(t.w, "tap@%d %v\n", t.node.ID(), m)
	}
	t.node.SendMessageToNext(m, h)
}
