package filters

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

func TestCacheRepliesToLateSubscriber(t *testing.T) {
	// Line: sink2(1) - cache(2) - source(3). The source reports once;
	// later a new sink subscribes and must get the cached reading from
	// node 2 without the source sending anything again.
	tn := nettest.New(1)
	nodes := tn.Line(3)
	cache := NewCache(nodes[1], tn.Sched, CacheOptions{})

	// Prime the flow: an early sink pulls one report through the cache.
	early := 0
	h := nodes[0].Subscribe(sinkInterest(), func(*message.Message) { early++ })
	pub := nodes[2].Publish(sourcePub())
	tn.Sched.After(2*time.Second, func() {
		nodes[2].Send(pub, attr.Vec{
			attr.Int32Attr(attr.KeySequence, attr.IS, 41),
			attr.StringAttr(attr.KeyInstance, attr.IS, "door-sensor"),
		})
	})
	tn.Sched.RunUntil(5 * time.Second)
	if early != 1 || cache.Cached == 0 {
		t.Fatalf("priming failed: early=%d cached=%d", early, cache.Cached)
	}
	_ = nodes[0].Unsubscribe(h)

	// A new subscriber arrives; the source stays silent.
	var lateSeq int32 = -1
	nodes[0].Subscribe(sinkInterest(), func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeySequence); ok {
			lateSeq = a.Val.Int32()
		}
	})
	tn.Sched.RunUntil(15 * time.Second)
	if cache.Replays == 0 {
		t.Fatal("cache never replayed")
	}
	if lateSeq != 41 {
		t.Errorf("late subscriber got seq %d, want the cached 41", lateSeq)
	}
}

func TestCacheTTLExpires(t *testing.T) {
	tn := nettest.New(2)
	nodes := tn.Line(3)
	cache := NewCache(nodes[1], tn.Sched, CacheOptions{TTL: 5 * time.Second})
	got := 0
	h := nodes[0].Subscribe(sinkInterest(), func(*message.Message) { got++ })
	pub := nodes[2].Publish(sourcePub())
	tn.Sched.After(2*time.Second, func() {
		nodes[2].Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, 1)})
	})
	tn.Sched.RunUntil(4 * time.Second)
	_ = nodes[0].Unsubscribe(h)
	// Wait well past the TTL, then re-subscribe: stale data must not
	// replay.
	tn.Sched.RunUntil(30 * time.Second)
	replaysBefore := cache.Replays
	nodes[0].Subscribe(sinkInterest(), nil)
	tn.Sched.RunUntil(time.Minute)
	if cache.Replays != replaysBefore {
		t.Errorf("stale cache entry replayed (%d -> %d)", replaysBefore, cache.Replays)
	}
}

func TestCacheAnswersEachInterestOnce(t *testing.T) {
	// Interest refreshes carry fresh IDs, so the cache answers each
	// origination once; the same origination's flood copies do not
	// multiply replays.
	tn := nettest.New(3)
	nodes := tn.Line(3)
	cache := NewCache(nodes[1], tn.Sched, CacheOptions{TTL: time.Hour})
	nodes[0].Subscribe(sinkInterest(), nil)
	pub := nodes[2].Publish(sourcePub())
	tn.Sched.After(2*time.Second, func() {
		nodes[2].Send(pub, attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, 7)})
	})
	// nettest refresh interval is 10s: about 6 originations per minute.
	tn.Sched.RunUntil(65 * time.Second)
	if cache.Replays == 0 || cache.Replays > 8 {
		t.Errorf("replays = %d, want one per interest origination", cache.Replays)
	}
}
