package filters

import (
	"math/rand"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Election implements the paper's SRM-inspired triggered-sensor election
// (section 5.2): when multiple sensors could serve a nested query and one
// "best" sensor is wanted, candidates "nominate themselves after a random
// delay as the best, informing their peers of their location and
// election... better peers can then dispute the claim. Use of location as
// an external frame of reference defines a best node and allows timers to
// be weighted by distance to minimize the number of disputed claims."
//
// Scores are caller-defined (typically distance to an ideal point); lower
// is better. Claim timers are proportional to score plus jitter, so the
// best candidate usually claims first and everyone else stands down
// silently.
type Election struct {
	cfg      ElectionConfig
	node     *core.Node
	sub      core.SubscriptionHandle
	pub      core.PublicationHandle
	claim    sim.Timer
	decide   sim.Timer
	myClaim  bool
	bestSeen float64
	bestID   int32
	anySeen  bool
	done     bool

	// Claims counts nomination messages this candidate sent; Disputes
	// counts claims it sent after hearing a worse claim.
	Claims, Disputes int
}

// ElectionConfig configures one candidate's participation.
type ElectionConfig struct {
	Node  *core.Node
	Clock sim.Clock
	Rand  *rand.Rand
	// Name identifies the election; all candidates must agree on it.
	Name string
	// Score ranks this candidate; lower is better. Ties break toward the
	// lower node ID.
	Score float64
	// ScoreScale converts score units into claim delay (delay =
	// Score/ScoreScale × Window/4). Defaults to the score itself taking
	// up to a quarter window.
	ScoreScale float64
	// Window is the total election duration; the decision fires at its
	// end.
	Window time.Duration
	// OnDecided is called exactly once with the outcome.
	OnDecided func(won bool)
}

// NewElection enters this node into the election. Candidates must be
// created on all participating nodes within roughly one claim delay of
// each other (the paper's election likewise assumes a common trigger).
func NewElection(cfg ElectionConfig) *Election {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Rand == nil {
		panic("filters: ElectionConfig requires Node, Clock and Rand")
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * time.Second
	}
	if cfg.ScoreScale <= 0 {
		cfg.ScoreScale = 1
	}
	e := &Election{cfg: cfg, node: cfg.Node}
	task := "election:" + cfg.Name

	e.sub = cfg.Node.Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, task),
	}, e.onClaim)
	e.pub = cfg.Node.Publish(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.IS, task),
	})

	// Claim delay: proportional to score, at most a quarter window, plus
	// up to 10% window of jitter to split equal scores.
	frac := cfg.Score / cfg.ScoreScale
	if frac > 1 {
		frac = 1
	}
	if frac < 0 {
		frac = 0
	}
	delay := time.Duration(frac * float64(cfg.Window) / 4)
	delay += time.Duration(cfg.Rand.Int63n(int64(cfg.Window)/10 + 1))
	e.claim = cfg.Clock.After(delay, e.sendClaim)
	e.decide = cfg.Clock.After(cfg.Window, e.conclude)
	return e
}

// onClaim processes a peer's nomination.
func (e *Election) onClaim(m *message.Message) {
	if e.done {
		return
	}
	score, ok := m.Attrs.FindActual(attr.KeyConfidence)
	idAttr, ok2 := m.Attrs.FindActual(attr.KeySequence)
	if !ok || !ok2 {
		return
	}
	s := score.Val.AsFloat()
	id := idAttr.Val.Int32()
	if !e.anySeen || s < e.bestSeen || (s == e.bestSeen && id < e.bestID) {
		e.anySeen = true
		e.bestSeen = s
		e.bestID = id
	}
	if e.peerBetter() {
		// Stand down: a better peer claimed first.
		if e.claim != nil {
			e.claim.Cancel()
		}
		return
	}
	// We are better than the claimant: dispute immediately (the paper's
	// "better peers can then dispute the claim").
	if !e.myClaim {
		e.Disputes++
		e.sendClaim()
	}
}

// peerBetter reports whether the best heard claim beats us.
func (e *Election) peerBetter() bool {
	if !e.anySeen {
		return false
	}
	if e.bestSeen != e.cfg.Score {
		return e.bestSeen < e.cfg.Score
	}
	return e.bestID < int32(e.node.ID())
}

// sendClaim broadcasts our nomination.
func (e *Election) sendClaim() {
	if e.done || e.myClaim || e.peerBetter() {
		return
	}
	e.myClaim = true
	e.Claims++
	_ = e.node.Send(e.pub, attr.Vec{
		attr.Float64Attr(attr.KeyConfidence, attr.IS, e.cfg.Score),
		attr.Int32Attr(attr.KeySequence, attr.IS, int32(e.node.ID())),
	})
}

// conclude decides the election for this candidate.
func (e *Election) conclude() {
	if e.done {
		return
	}
	e.done = true
	won := e.myClaim && !e.peerBetter()
	_ = e.node.Unsubscribe(e.sub)
	_ = e.node.Unpublish(e.pub)
	if e.cfg.OnDecided != nil {
		e.cfg.OnDecided(won)
	}
}
