package filters

import (
	"math"
	"strings"
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

// fusionNet: sink(1) - fusion relay(2) - seismic(3) and infrared(4) both
// attached to the relay.
func fusionNet(seed int64) (*nettest.Net, *Fusion) {
	tn := nettest.New(seed)
	tn.Line(2)
	tn.AddNode(3, nil)
	tn.AddNode(4, nil)
	tn.Connect(2, 3)
	tn.Connect(2, 4)
	fu := NewFusion(tn.Nodes[2], tn.Sched, nil, 500*time.Millisecond)
	return tn, fu
}

func detection(tnode string, conf float64, seq int32) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.IS, tnode),
		attr.Float64Attr(attr.KeyConfidence, attr.IS, conf),
		attr.Int32Attr(attr.KeySequence, attr.IS, seq),
	}
}

func TestFusionCombinesModalities(t *testing.T) {
	tn, fu := fusionNet(1)
	var got []*message.Message
	tn.Nodes[1].Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "detect"),
	}, func(m *message.Message) { got = append(got, m.Clone()) })

	seismicPub := tn.Nodes[3].Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "detect")})
	infraredPub := tn.Nodes[4].Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "detect")})
	// The paper's example: seismic and infrared detections of one event
	// fuse to "80% chance of detection": 1-(1-0.5)(1-0.6) = 0.8.
	tn.Sched.After(2*time.Second, func() {
		tn.Nodes[3].Send(seismicPub, detection("seismic", 0.5, 1))
	})
	tn.Sched.After(2*time.Second+100*time.Millisecond, func() {
		tn.Nodes[4].Send(infraredPub, detection("infrared", 0.6, 1))
	})
	tn.Sched.RunUntil(time.Minute)

	if fu.Reports == 0 || fu.Fused == 0 {
		t.Fatalf("fusion did not fold: %+v", fu)
	}
	if len(got) != 1 {
		t.Fatalf("sink received %d reports, want 1 fused", len(got))
	}
	conf, _ := got[0].Attrs.FindActual(attr.KeyConfidence)
	if math.Abs(conf.Val.Float64()-0.8) > 1e-9 {
		t.Errorf("fused confidence %v, want 0.8", conf.Val)
	}
	mods, _ := got[0].Attrs.FindActual(attr.KeySubtype)
	s := mods.Val.Str()
	if !strings.Contains(s, "seismic") || !strings.Contains(s, "infrared") {
		t.Errorf("modalities: %q", s)
	}
	count, _ := got[0].Attrs.FindActual(attr.KeyCount)
	if count.Val.Int32() != 2 {
		t.Errorf("count %v", count.Val)
	}
}

func TestFusionSingleModalityPassesThrough(t *testing.T) {
	tn, fu := fusionNet(2)
	var confs []float64
	tn.Nodes[1].Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "detect"),
	}, func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeyConfidence); ok {
			confs = append(confs, a.Val.Float64())
		}
	})
	pub := tn.Nodes[3].Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "detect")})
	tn.Sched.After(2*time.Second, func() { tn.Nodes[3].Send(pub, detection("seismic", 0.7, 9)) })
	tn.Sched.RunUntil(30 * time.Second)
	if len(confs) != 1 || math.Abs(confs[0]-0.7) > 1e-9 {
		t.Errorf("lone detection should pass with its own confidence: %v", confs)
	}
	if fu.Reports != 1 {
		t.Errorf("reports=%d", fu.Reports)
	}
}

func TestFusionDistinctEventsStaySeparate(t *testing.T) {
	tn, _ := fusionNet(3)
	var got int
	tn.Nodes[1].Subscribe(attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "detect"),
	}, func(*message.Message) { got++ })
	pub := tn.Nodes[3].Publish(attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "detect")})
	tn.Sched.After(2*time.Second, func() { tn.Nodes[3].Send(pub, detection("seismic", 0.5, 1)) })
	tn.Sched.After(3*time.Second, func() { tn.Nodes[3].Send(pub, detection("seismic", 0.5, 2)) })
	tn.Sched.RunUntil(30 * time.Second)
	if got != 2 {
		t.Errorf("two distinct events should both deliver: %d", got)
	}
}
