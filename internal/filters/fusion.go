package filters

import (
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Fusion is the collaborative signal processing filter the paper leaves as
// future work (section 5.3: "at the time our filter architecture was not
// in place; interesting future work is to evaluate how sensor fusion would
// be done as a filter", and section 5.1's example output: "seismic and
// infrared sensors indicate 80% chance of detection").
//
// The filter holds the first detection of an event for a short window,
// folds in detections of the same event from other sensor modalities, and
// forwards a single fused report: confidences combine as independent
// evidence (1 − ∏(1−pᵢ)), and the contributing modalities are recorded in
// a subtype attribute.
type Fusion struct {
	node   *core.Node
	clock  sim.Clock
	handle core.FilterHandle

	window  time.Duration
	pending map[string]*fusionEvent

	// Fused counts detections folded into pending reports; Reports counts
	// fused messages sent onward.
	Fused, Reports int
}

type fusionEvent struct {
	msg        *message.Message
	handle     core.FilterHandle
	miss       float64 // ∏(1−pᵢ)
	modalities []string
}

// NewFusion installs the fusion filter on n for messages matching pattern.
// Events are identified by (task, sequence); modalities by the type
// attribute; confidence by the confidence attribute.
func NewFusion(n *core.Node, clock sim.Clock, pattern attr.Vec, window time.Duration) *Fusion {
	if window <= 0 {
		window = 500 * time.Millisecond
	}
	f := &Fusion{
		node:    n,
		clock:   clock,
		window:  window,
		pending: map[string]*fusionEvent{},
	}
	f.handle = n.AddFilter(pattern, 110, f.onMessage)
	return f
}

// Remove uninstalls the filter.
func (f *Fusion) Remove() { _ = f.node.RemoveFilter(f.handle) }

func (f *Fusion) onMessage(m *message.Message, h core.FilterHandle) {
	if !m.IsData() {
		f.node.SendMessageToNext(m, h)
		return
	}
	id, ok := identity(m.Attrs, []attr.Key{attr.KeyTask, attr.KeySequence})
	if !ok {
		f.node.SendMessageToNext(m, h)
		return
	}
	conf := 0.0
	if a, ok := m.Attrs.FindActual(attr.KeyConfidence); ok && a.Val.Numeric() {
		conf = a.Val.AsFloat()
	}
	if conf < 0 {
		conf = 0
	}
	if conf > 1 {
		conf = 1
	}
	modality := "unknown"
	if a, ok := m.Attrs.FindActual(attr.KeyType); ok && a.Val.Type == attr.TypeString {
		modality = a.Val.Str()
	}

	if ev, exists := f.pending[id]; exists {
		ev.miss *= 1 - conf
		ev.modalities = append(ev.modalities, modality)
		f.Fused++
		return
	}
	f.pending[id] = &fusionEvent{
		msg:        m.Clone(),
		handle:     h,
		miss:       1 - conf,
		modalities: []string{modality},
	}
	f.clock.After(f.window, func() { f.flush(id) })
}

func (f *Fusion) flush(id string) {
	ev, ok := f.pending[id]
	if !ok {
		return
	}
	delete(f.pending, id)
	f.Reports++
	out := ev.msg
	fused := 1 - ev.miss
	out.Attrs = out.Attrs.
		Without(attr.KeyConfidence).
		Without(attr.KeySubtype).
		With(
			attr.Float64Attr(attr.KeyConfidence, attr.IS, fused),
			attr.StringAttr(attr.KeySubtype, attr.IS, joinModalities(ev.modalities)),
			attr.Int32Attr(attr.KeyCount, attr.IS, int32(len(ev.modalities))),
		)
	f.node.SendMessageToNext(out, ev.handle)
}

func joinModalities(mods []string) string {
	out := ""
	for i, m := range mods {
		if i > 0 {
			out += "+"
		}
		out += m
	}
	return out
}
