package filters

import (
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Cache is the in-network data cache the paper's filter section motivates
// ("filters are typically used for in-network aggregation, collaborative
// signal processing, caching, and similar tasks") and that section 5.2's
// direct queries rely on ("he requests the status of the triggered sensor
// (either by subscribing or asking for recent data)").
//
// The filter remembers the most recent data message per identity passing
// through its node. When a fresh interest arrives whose formals the cached
// data satisfies, the cache replays the data immediately — so a new sink
// gets the current reading from the nearest caching node instead of
// waiting for the source's next report to cross the whole network.
type Cache struct {
	node   *core.Node
	clock  sim.Clock
	handle core.FilterHandle

	identityKeys []attr.Key
	ttl          time.Duration
	entries      map[string]cacheEntry
	answered     map[message.ID]bool

	// Cached counts stored messages; Replays counts cache answers.
	Cached, Replays int
}

type cacheEntry struct {
	attrs attr.Vec
	// comp is the compiled form of attrs, built once at store time so
	// every later interest probe matches without re-partitioning the
	// vector (satisfying the compiled-predicate fast path).
	comp *attr.Compiled
	at   time.Duration
}

// CacheOptions configures NewCache.
type CacheOptions struct {
	// Pattern selects which messages the cache sees (nil = all).
	Pattern attr.Vec
	// IdentityKeys define which attribute values distinguish cached
	// items (default {KeyType, KeyTask, KeyInstance}: one slot per flow,
	// holding its most recent reading).
	IdentityKeys []attr.Key
	// TTL bounds staleness of replayed data (default 60 s).
	TTL time.Duration
	// Priority in the filter chain (default 120, above aggregation).
	Priority int16
}

// NewCache installs a data cache on n.
func NewCache(n *core.Node, clock sim.Clock, opt CacheOptions) *Cache {
	if opt.IdentityKeys == nil {
		opt.IdentityKeys = []attr.Key{attr.KeyType, attr.KeyTask, attr.KeyInstance}
	}
	if opt.TTL <= 0 {
		opt.TTL = 60 * time.Second
	}
	if opt.Priority == 0 {
		opt.Priority = 120
	}
	c := &Cache{
		node:         n,
		clock:        clock,
		identityKeys: opt.IdentityKeys,
		ttl:          opt.TTL,
		entries:      map[string]cacheEntry{},
		answered:     map[message.ID]bool{},
	}
	c.handle = n.AddFilter(opt.Pattern, opt.Priority, c.onMessage)
	return c
}

// Remove uninstalls the cache.
func (c *Cache) Remove() { _ = c.node.RemoveFilter(c.handle) }

// Len returns the number of cached items (expired entries included until
// touched).
func (c *Cache) Len() int { return len(c.entries) }

func (c *Cache) onMessage(m *message.Message, h core.FilterHandle) {
	now := c.clock.Now()
	switch m.Class {
	case message.Data, message.ExploratoryData:
		// Remember the freshest reading per identity. The paper's core
		// also caches for duplicate suppression; this cache is the
		// application-level "recent data" store.
		if id, ok := cacheIdentity(m.Attrs, c.identityKeys); ok {
			stored := m.Attrs.Clone()
			c.entries[id] = cacheEntry{attrs: stored, comp: attr.Compile(stored), at: now}
			c.Cached++
		}
	case message.Interest:
		// Pass the interest down first: the core sets up the gradient
		// toward the asker, which the replayed data then rides.
		c.node.SendMessageToNext(m, h)
		c.maybeReplay(m, now)
		return
	}
	c.node.SendMessageToNext(m, h)
}

// cacheIdentity keys a cached item by whichever identity-key actuals are
// present (unlike event suppression, a flow need not carry every key);
// ok is false when none are.
func cacheIdentity(attrs attr.Vec, keys []attr.Key) (string, bool) {
	var id []byte
	found := false
	for _, k := range keys {
		a, ok := attrs.FindActual(k)
		if !ok {
			id = append(id, 0xFF)
			continue
		}
		found = true
		id = append(id, byte(k), ':')
		id = append(id, a.Val.String()...)
		id = append(id, '|')
	}
	return string(id), found
}

// maybeReplay answers a fresh interest from the cache.
func (c *Cache) maybeReplay(m *message.Message, now time.Duration) {
	if c.answered[m.ID] {
		return // one answer per interest origination, across copies
	}
	for id, e := range c.entries {
		if now-e.at > c.ttl {
			delete(c.entries, id)
			continue
		}
		// Match is symmetric, so probing the compiled cached vector
		// against the interest is the old attr.Match(m.Attrs, e.attrs).
		if !e.comp.MatchVec(m.Attrs) {
			continue
		}
		c.answered[m.ID] = true
		c.Replays++
		// Replay as a fresh exploratory origination: the gradients the
		// interest just refreshed will carry it back toward the asker,
		// and duplicate suppression keeps replays from other caching
		// nodes from multiplying.
		c.node.InjectMessage(&message.Message{
			Class:   message.ExploratoryData,
			NextHop: message.Broadcast,
			Attrs:   e.attrs.Clone(),
		})
		return
	}
}
