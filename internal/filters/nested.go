package filters

import (
	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
)

// NestedQueryResponder implements the triggered-sensor side of a nested
// query (section 5.2): "nested queries can be implemented by enabling code
// at each triggered sensor that watches for a nested query. This code then
// sub-tasks the relevant initial sensors and activates its local triggered
// sensor on demand."
//
// The responder passively watches for the nested-query interest; on its
// first arrival it publishes the triggered sensor's data and subscribes to
// the initial sensors. Each initial-sensor report is handed to OnInitial,
// whose non-nil result is sent as triggered data — localizing the
// initial-sensor traffic near the triggering event instead of hauling it
// to the distant user.
type NestedQueryResponder struct {
	cfg    NestedQueryConfig
	watch  core.SubscriptionHandle
	sub    core.SubscriptionHandle
	pub    core.PublicationHandle
	active bool

	// Activations counts watch hits that (re)confirmed the nested query;
	// Reports counts triggered data messages sent.
	Activations, Reports int
}

// NestedQueryConfig configures a responder.
type NestedQueryConfig struct {
	Node *core.Node
	// TriggerWatch is the passive interest tap identifying the nested
	// query: it must contain a "class EQ interest" formal plus actuals
	// satisfying the query's formals (section 3.2 style).
	TriggerWatch attr.Vec
	// InitialInterest is the sub-task subscription issued toward the
	// initial sensors once the nested query arrives.
	InitialInterest attr.Vec
	// Publication describes the triggered sensor's data.
	Publication attr.Vec
	// OnInitial inspects each initial-sensor report and returns the extra
	// attributes of the triggered data to send, or nil to stay silent.
	OnInitial func(m *message.Message) attr.Vec
}

// NewNestedQueryResponder installs the responder on cfg.Node.
func NewNestedQueryResponder(cfg NestedQueryConfig) *NestedQueryResponder {
	if cfg.Node == nil || cfg.OnInitial == nil {
		panic("filters: NestedQueryConfig requires Node and OnInitial")
	}
	r := &NestedQueryResponder{cfg: cfg}
	r.watch = cfg.Node.Subscribe(cfg.TriggerWatch, r.onQuery)
	return r
}

// Active reports whether the nested query has been activated.
func (r *NestedQueryResponder) Active() bool { return r.active }

// Deactivate tears down the sub-task and publication (the watch remains,
// so a later query re-activates).
func (r *NestedQueryResponder) Deactivate() {
	if !r.active {
		return
	}
	r.active = false
	_ = r.cfg.Node.Unsubscribe(r.sub)
	_ = r.cfg.Node.Unpublish(r.pub)
}

// Close removes all responder state from the node.
func (r *NestedQueryResponder) Close() {
	r.Deactivate()
	_ = r.cfg.Node.Unsubscribe(r.watch)
}

func (r *NestedQueryResponder) onQuery(*message.Message) {
	r.Activations++
	if r.active {
		return
	}
	r.active = true
	r.pub = r.cfg.Node.Publish(r.cfg.Publication)
	r.sub = r.cfg.Node.Subscribe(r.cfg.InitialInterest, r.onInitial)
}

func (r *NestedQueryResponder) onInitial(m *message.Message) {
	extra := r.cfg.OnInitial(m)
	if extra == nil {
		return
	}
	r.Reports++
	_ = r.cfg.Node.Send(r.pub, extra)
}
