// Package filters provides the library of in-network processing filters
// the paper builds on top of the diffusion filter API (section 3.3, 5.1,
// 5.2): duplicate-suppression aggregation, delayed counting aggregation, a
// debugging tap, geographic interest scoping, and the SRM-style election
// used to choose a triggered sensor.
package filters

import (
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Suppression is the Figure 8 aggregation filter: it passes the first
// unique event and suppresses subsequent events with identical identity
// ("all nodes were configured with aggregation filters that pass the first
// unique event and suppress subsequent events with identical sequence
// numbers"). Identity is the tuple of values of the IdentityKeys actuals.
type Suppression struct {
	node   *core.Node
	clock  sim.Clock
	handle core.FilterHandle

	identityKeys []attr.Key
	ttl          time.Duration
	seen         map[string]time.Duration

	// Suppressed counts swallowed duplicates; Passed counts forwarded
	// uniques.
	Suppressed, Passed int
}

// SuppressionOptions configures NewSuppression.
type SuppressionOptions struct {
	// Pattern selects which messages the filter sees (one-way filter
	// match); nil sees everything.
	Pattern attr.Vec
	// IdentityKeys define event identity; default {KeyTask, KeySequence}.
	IdentityKeys []attr.Key
	// TTL is how long an identity is remembered (default 2 minutes).
	TTL time.Duration
	// Priority of the filter in the chain (default 100).
	Priority int16
}

// NewSuppression installs a suppression filter on n.
func NewSuppression(n *core.Node, clock sim.Clock, opt SuppressionOptions) *Suppression {
	if opt.IdentityKeys == nil {
		opt.IdentityKeys = []attr.Key{attr.KeyTask, attr.KeySequence}
	}
	if opt.TTL <= 0 {
		opt.TTL = 2 * time.Minute
	}
	if opt.Priority == 0 {
		opt.Priority = 100
	}
	s := &Suppression{
		node:         n,
		clock:        clock,
		identityKeys: opt.IdentityKeys,
		ttl:          opt.TTL,
		seen:         map[string]time.Duration{},
	}
	s.handle = n.AddFilter(opt.Pattern, opt.Priority, s.onMessage)
	return s
}

// Remove uninstalls the filter.
func (s *Suppression) Remove() { _ = s.node.RemoveFilter(s.handle) }

func (s *Suppression) onMessage(m *message.Message, h core.FilterHandle) {
	if !m.IsData() {
		s.node.SendMessageToNext(m, h)
		return
	}
	id, ok := identity(m.Attrs, s.identityKeys)
	if !ok {
		// Not an event we can identify: let it through untouched.
		s.node.SendMessageToNext(m, h)
		return
	}
	now := s.clock.Now()
	s.gc(now)
	if at, dup := s.seen[id]; dup && now-at <= s.ttl {
		s.Suppressed++
		return // consumed: the duplicate stops here
	}
	s.seen[id] = now
	s.Passed++
	s.node.SendMessageToNext(m, h)
}

// gc drops expired identities; called inline, amortized by the small map.
func (s *Suppression) gc(now time.Duration) {
	if len(s.seen) < 1024 {
		return
	}
	for k, at := range s.seen {
		if now-at > s.ttl {
			delete(s.seen, k)
		}
	}
}

// identity renders the identity-key actuals of attrs as a map key. The
// second result is false unless every identity key has an actual: a
// message without a full identity (for example, no sequence number) is not
// an aggregatable event and must pass through.
func identity(attrs attr.Vec, keys []attr.Key) (string, bool) {
	var id []byte
	for _, k := range keys {
		a, ok := attrs.FindActual(k)
		if !ok {
			return "", false
		}
		id = append(id, byte(k), ':')
		id = append(id, a.Val.String()...)
		id = append(id, '|')
	}
	return string(id), true
}

// CountingAggregator is the paper's "more sophisticated filter": it delays
// the first copy of each event for Window, counts further detections of
// the same event arriving meanwhile, and forwards a single message
// carrying a "count" attribute. It trades latency for aggregation quality
// (section 6.1 discusses exactly this trade-off).
type CountingAggregator struct {
	node   *core.Node
	clock  sim.Clock
	handle core.FilterHandle

	identityKeys []attr.Key
	window       time.Duration
	pending      map[string]*pendingEvent

	// Merged counts events folded into a pending message; Flushed counts
	// forwarded aggregates.
	Merged, Flushed int
}

type pendingEvent struct {
	msg    *message.Message
	handle core.FilterHandle
	count  int32
}

// NewCountingAggregator installs a counting aggregator on n.
func NewCountingAggregator(n *core.Node, clock sim.Clock, pattern attr.Vec, window time.Duration, priority int16) *CountingAggregator {
	if window <= 0 {
		window = 250 * time.Millisecond
	}
	if priority == 0 {
		priority = 100
	}
	c := &CountingAggregator{
		node:         n,
		clock:        clock,
		identityKeys: []attr.Key{attr.KeyTask, attr.KeySequence},
		window:       window,
		pending:      map[string]*pendingEvent{},
	}
	c.handle = n.AddFilter(pattern, priority, c.onMessage)
	return c
}

// Remove uninstalls the filter, flushing nothing.
func (c *CountingAggregator) Remove() { _ = c.node.RemoveFilter(c.handle) }

func (c *CountingAggregator) onMessage(m *message.Message, h core.FilterHandle) {
	if !m.IsData() {
		c.node.SendMessageToNext(m, h)
		return
	}
	id, ok := identity(m.Attrs, c.identityKeys)
	if !ok {
		c.node.SendMessageToNext(m, h)
		return
	}
	if p, exists := c.pending[id]; exists {
		p.count++
		c.Merged++
		return // folded into the pending aggregate
	}
	p := &pendingEvent{msg: m.Clone(), handle: h, count: 1}
	c.pending[id] = p
	c.clock.After(c.window, func() { c.flush(id) })
}

func (c *CountingAggregator) flush(id string) {
	p, ok := c.pending[id]
	if !ok {
		return
	}
	delete(c.pending, id)
	out := p.msg
	out.Attrs = out.Attrs.Without(attr.KeyCount).
		With(attr.Int32Attr(attr.KeyCount, attr.IS, p.count))
	c.Flushed++
	c.node.SendMessageToNext(out, p.handle)
}
