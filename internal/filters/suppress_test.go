package filters

import (
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/nettest"
)

func sinkInterest() attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyTask, attr.EQ, "surveillance"),
	}
}

func sourcePub() attr.Vec {
	return attr.Vec{attr.StringAttr(attr.KeyTask, attr.IS, "surveillance")}
}

func seqAttr(i int32) attr.Vec {
	return attr.Vec{attr.Int32Attr(attr.KeySequence, attr.IS, i)}
}

// yShape builds the Figure-8-style aggregation scenario in miniature:
// sources 4 and 5 both feed relay 2 through distinct first hops (3 and 6),
// relay 2 feeds sink 1. Both sources emit identical event streams.
//
//	1 - 2 - 3 - 4
//	     \- 6 - 5
func yShape(seed int64) (*nettest.Net, *core.Node, []*core.Node, *core.Node) {
	tn := nettest.New(seed)
	sink := tn.AddNode(1, nil)
	relay := tn.AddNode(2, nil)
	tn.AddNode(3, nil)
	s1 := tn.AddNode(4, nil)
	tn.AddNode(6, nil)
	s2 := tn.AddNode(5, nil)
	tn.Connect(1, 2)
	tn.Connect(2, 3)
	tn.Connect(3, 4)
	tn.Connect(2, 6)
	tn.Connect(6, 5)
	return tn, sink, []*core.Node{s1, s2}, relay
}

func TestSuppressionPassesFirstAndDropsDuplicates(t *testing.T) {
	tn, sink, sources, relay := yShape(1)
	sup := NewSuppression(relay, tn.Sched, SuppressionOptions{})

	delivered := map[int32]int{}
	sink.Subscribe(sinkInterest(), func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeySequence); ok {
			delivered[a.Val.Int32()]++
		}
	})
	pubs := []core.PublicationHandle{
		sources[0].Publish(sourcePub()),
		sources[1].Publish(sourcePub()),
	}
	// Both sources emit the same sequence numbers every 2 seconds,
	// mirroring the Figure 8 synchronized event generation.
	seq := int32(0)
	tn.Sched.Every(3*time.Second, 2*time.Second, func() {
		seq++
		for i, src := range sources {
			src.Send(pubs[i], seqAttr(seq))
		}
	})
	tn.Sched.RunUntil(60 * time.Second)

	if sup.Suppressed == 0 {
		t.Fatalf("relay suppressed nothing (passed=%d)", sup.Passed)
	}
	if len(delivered) < 20 {
		t.Fatalf("sink saw only %d distinct events", len(delivered))
	}
	// The sink must see each event at most once via the suppressing relay.
	for s, n := range delivered {
		if n > 1 {
			t.Errorf("event %d delivered %d times despite suppression", s, n)
		}
	}
}

func TestSuppressionReducesTraffic(t *testing.T) {
	run := func(withFilter bool) int {
		tn, sink, sources, relay := yShape(2)
		if withFilter {
			NewSuppression(relay, tn.Sched, SuppressionOptions{})
			// Suppress at the first hops too, as in the testbed where
			// every node carried the filter.
			NewSuppression(tn.Nodes[3], tn.Sched, SuppressionOptions{})
			NewSuppression(tn.Nodes[6], tn.Sched, SuppressionOptions{})
			NewSuppression(sink, tn.Sched, SuppressionOptions{})
		}
		events := 0
		sink.Subscribe(sinkInterest(), func(m *message.Message) { events++ })
		pubs := []core.PublicationHandle{
			sources[0].Publish(sourcePub()),
			sources[1].Publish(sourcePub()),
		}
		seq := int32(0)
		tn.Sched.Every(3*time.Second, 2*time.Second, func() {
			seq++
			for i, src := range sources {
				src.Send(pubs[i], seqAttr(seq))
			}
		})
		tn.Sched.RunUntil(2 * time.Minute)
		bytes := 0
		for _, n := range tn.Nodes {
			bytes += n.Stats.BytesSent
		}
		return bytes
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Errorf("suppression should cut diffusion bytes: with=%d without=%d", with, without)
	}
}

func TestSuppressionIgnoresNonEvents(t *testing.T) {
	tn := nettest.New(3)
	nodes := tn.Line(2)
	sup := NewSuppression(nodes[1], tn.Sched, SuppressionOptions{})
	var got int
	nodes[0].Subscribe(sinkInterest(), func(*message.Message) { got++ })
	pub := nodes[1].Publish(sourcePub())
	// No sequence attribute: identity is absent, so nothing is suppressed
	// even though the payload repeats.
	tn.Sched.After(2*time.Second, func() { nodes[1].Send(pub, nil) })
	tn.Sched.After(4*time.Second, func() { nodes[1].Send(pub, nil) })
	tn.Sched.RunUntil(10 * time.Second)
	if sup.Suppressed != 0 {
		t.Error("messages without identity keys must pass")
	}
	if got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
}

func TestSuppressionTTLExpiry(t *testing.T) {
	tn := nettest.New(4)
	nodes := tn.Line(2)
	sup := NewSuppression(nodes[1], tn.Sched, SuppressionOptions{TTL: 5 * time.Second})
	var got int
	nodes[0].Subscribe(sinkInterest(), func(*message.Message) { got++ })
	pub := nodes[1].Publish(sourcePub())
	tn.Sched.After(2*time.Second, func() { nodes[1].Send(pub, seqAttr(7)) })
	tn.Sched.After(3*time.Second, func() { nodes[1].Send(pub, seqAttr(7)) }) // dup
	tn.Sched.After(20*time.Second, func() { nodes[1].Send(pub, seqAttr(7)) })
	tn.Sched.RunUntil(30 * time.Second)
	if sup.Suppressed != 1 {
		t.Errorf("suppressed=%d, want 1 (TTL should have expired)", sup.Suppressed)
	}
	if got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
}

func TestSuppressionLeavesInterestsAlone(t *testing.T) {
	tn := nettest.New(5)
	nodes := tn.Line(3)
	NewSuppression(nodes[1], tn.Sched, SuppressionOptions{})
	nodes[0].Subscribe(sinkInterest(), nil)
	tn.Sched.RunUntil(2 * time.Second)
	if nodes[2].Entries() == 0 {
		t.Error("interests must pass through the suppression filter")
	}
}

func TestCountingAggregator(t *testing.T) {
	tn, sink, sources, relay := yShape(6)
	agg := NewCountingAggregator(relay, tn.Sched, nil, 500*time.Millisecond, 0)

	var counts []int32
	sink.Subscribe(sinkInterest(), func(m *message.Message) {
		if a, ok := m.Attrs.FindActual(attr.KeyCount); ok {
			counts = append(counts, a.Val.Int32())
		}
	})
	pubs := []core.PublicationHandle{
		sources[0].Publish(sourcePub()),
		sources[1].Publish(sourcePub()),
	}
	seq := int32(0)
	tn.Sched.Every(3*time.Second, 2*time.Second, func() {
		seq++
		for i, src := range sources {
			src.Send(pubs[i], seqAttr(seq))
		}
	})
	tn.Sched.RunUntil(time.Minute)

	if agg.Flushed == 0 {
		t.Fatal("aggregator never flushed")
	}
	if agg.Merged == 0 {
		t.Error("aggregator should merge the second source's copies")
	}
	merged := false
	for _, c := range counts {
		if c >= 2 {
			merged = true
		}
	}
	if !merged {
		t.Errorf("sink should see count>=2 on some events: %v", counts)
	}
}

func TestTap(t *testing.T) {
	tn := nettest.New(7)
	nodes := tn.Line(3)
	tap := NewTap(nodes[1], nil, nil)
	nodes[0].Subscribe(sinkInterest(), nil)
	pub := nodes[2].Publish(sourcePub())
	tn.Sched.After(2*time.Second, func() { nodes[2].Send(pub, seqAttr(1)) })
	tn.Sched.RunUntil(5 * time.Second)
	if tap.Count[message.Interest] == 0 {
		t.Error("tap should see interests")
	}
	if tap.Count[message.ExploratoryData] == 0 {
		t.Error("tap should see exploratory data")
	}
	if tap.Last == nil || tap.Total() == 0 {
		t.Error("tap bookkeeping")
	}
	tap.Remove()
	before := tap.Total()
	tn.Sched.After(time.Second, func() { nodes[2].Send(pub, seqAttr(2)) })
	tn.Sched.RunUntil(10 * time.Second)
	if tap.Total() != before {
		t.Error("removed tap must not observe")
	}
}
