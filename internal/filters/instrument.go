package filters

import "diffusion/internal/telemetry"

// Instrument publishes the suppression filter's counters on reg.
func (s *Suppression) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("filter.suppression.suppressed", float64(s.Suppressed))
		emit("filter.suppression.passed", float64(s.Passed))
	})
}

// Instrument publishes the counting aggregator's counters on reg.
func (c *CountingAggregator) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("filter.counting.merged", float64(c.Merged))
		emit("filter.counting.flushed", float64(c.Flushed))
		emit("filter.counting.pending", float64(len(c.pending)))
	})
}
