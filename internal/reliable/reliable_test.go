package reliable

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"diffusion/internal/nettest"
)

// object builds a deterministic test payload.
func object(n int, seed int64) []byte {
	out := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(out)
	return out
}

// transfer runs one sender->receiver transfer over a line of hops with the
// given loss probability, returning the received object (nil on failure)
// and the sender/receiver for inspection.
func transfer(t *testing.T, seed int64, hops int, loss float64, size int, horizon time.Duration) ([]byte, *Sender, *Receiver) {
	t.Helper()
	tn := nettest.New(seed)
	nodes := tn.Line(hops + 1)
	tn.LossProb = loss

	var got []byte
	done := false
	recv := Fetch(ReceiverConfig{
		Node:  nodes[0],
		Clock: tn.Sched,
		Name:  "snapshot-7",
		OnComplete: func(data []byte) {
			done = true
			got = append([]byte{}, data...)
		},
		NackDelay: 2 * time.Second,
	})
	_ = done
	sender := Offer(SenderConfig{
		Node:  nodes[hops],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
		Name:  "snapshot-7",
	}, object(size, seed))
	tn.Sched.RunUntil(horizon)
	return got, sender, recv
}

func TestLosslessTransfer(t *testing.T) {
	got, sender, recv := transfer(t, 1, 3, 0, 1000, 2*time.Minute)
	if got == nil {
		t.Fatal("transfer did not complete")
	}
	if !bytes.Equal(got, object(1000, 1)) {
		t.Fatal("object corrupted in transit")
	}
	if recv.NacksSent != 0 {
		t.Errorf("lossless transfer sent %d NACKs", recv.NacksSent)
	}
	if sender.Retransmits != 0 {
		t.Errorf("lossless transfer retransmitted %d chunks", sender.Retransmits)
	}
	if sender.Chunks() != 16 {
		t.Errorf("1000B at 64B/chunk = 16 chunks, got %d", sender.Chunks())
	}
}

func TestLossyTransferRecovers(t *testing.T) {
	got, sender, recv := transfer(t, 2, 3, 0.10, 2000, 20*time.Minute)
	if got == nil {
		have, total := recv.Progress()
		t.Fatalf("transfer did not complete: %d/%d chunks, %d nacks, %d retransmits",
			have, total, recv.NacksSent, sender.Retransmits)
	}
	if !bytes.Equal(got, object(2000, 2)) {
		t.Fatal("object corrupted in transit")
	}
	if recv.NacksSent == 0 || sender.Retransmits == 0 {
		t.Errorf("10%% loss should exercise repair: nacks=%d retransmits=%d",
			recv.NacksSent, sender.Retransmits)
	}
}

func TestManySeedsUnderLoss(t *testing.T) {
	completed := 0
	for seed := int64(10); seed < 20; seed++ {
		got, _, _ := transfer(t, seed, 2, 0.08, 800, 20*time.Minute)
		if got != nil && bytes.Equal(got, object(800, seed)) {
			completed++
		}
	}
	if completed < 9 {
		t.Errorf("only %d/10 lossy transfers completed", completed)
	}
}

func TestEmptyObject(t *testing.T) {
	got, sender, _ := transfer(t, 3, 1, 0, 0, time.Minute)
	if got == nil || len(got) != 0 {
		t.Fatalf("empty object should transfer as one empty chunk: %v", got)
	}
	if sender.Chunks() != 1 {
		t.Errorf("empty object chunks = %d", sender.Chunks())
	}
}

func TestGiveUpWhenSenderDies(t *testing.T) {
	tn := nettest.New(4)
	nodes := tn.Line(3)
	failedWith := -1
	Fetch(ReceiverConfig{
		Node:       nodes[0],
		Clock:      tn.Sched,
		Name:       "doomed",
		OnComplete: func([]byte) { t.Error("must not complete") },
		OnFail:     func(missing int) { failedWith = missing },
		NackDelay:  time.Second,
		MaxNacks:   3,
	})
	sender := Offer(SenderConfig{
		Node:  nodes[2],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
		Name:  "doomed",
	}, object(500, 4))
	// Kill the sender's node after the train starts.
	tn.Sched.After(700*time.Millisecond, func() {
		sender.Close()
		tn.Kill(3)
	})
	tn.Sched.RunUntil(5 * time.Minute)
	if failedWith < 0 {
		t.Fatal("receiver should give up after MaxNacks quiet rounds")
	}
	if failedWith == 0 {
		t.Error("give-up should report missing chunks")
	}
}

func TestCloseStopsCallbacks(t *testing.T) {
	tn := nettest.New(5)
	nodes := tn.Line(2)
	recv := Fetch(ReceiverConfig{
		Node:       nodes[0],
		Clock:      tn.Sched,
		Name:       "cancelled",
		OnComplete: func([]byte) { t.Error("closed receiver must not complete") },
		OnFail:     func(int) { t.Error("closed receiver must not fail") },
	})
	Offer(SenderConfig{
		Node:  nodes[1],
		Clock: tn.Sched,
		Rand:  tn.Sched.Rand(),
		Name:  "cancelled",
	}, object(300, 5))
	tn.Sched.After(400*time.Millisecond, recv.Close)
	tn.Sched.RunUntil(2 * time.Minute)
}

func TestMissingCodec(t *testing.T) {
	in := []int{0, 5, 65535}
	got, ok := decodeMissing(encodeMissing(in, 64))
	if !ok || len(got) != 3 || got[0] != 0 || got[1] != 5 || got[2] != 65535 {
		t.Errorf("round trip: %v %v", got, ok)
	}
	capped, _ := decodeMissing(encodeMissing([]int{1, 2, 3}, 2))
	if len(capped) != 2 {
		t.Errorf("cap: %v", capped)
	}
	if _, ok := decodeMissing([]byte{1}); ok {
		t.Error("odd-length blob must fail")
	}
}

func TestValidation(t *testing.T) {
	tn := nettest.New(6)
	n := tn.AddNode(1, nil)
	for name, fn := range map[string]func(){
		"sender no name": func() {
			Offer(SenderConfig{Node: n, Clock: tn.Sched, Rand: tn.Sched.Rand()}, nil)
		},
		"receiver no callback": func() {
			Fetch(ReceiverConfig{Node: n, Clock: tn.Sched, Name: "x"})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s must panic", name)
				}
			}()
			fn()
		}()
	}
}
