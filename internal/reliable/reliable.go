// Package reliable implements the retransmission scheme the paper leaves
// as future work (section 3.1: "we are also developing retransmission
// scheme for applications that transfer large, persistent data objects").
//
// A large object is named by attributes like any other diffusion data and
// transferred as a train of chunk messages. Recovery is receiver-driven:
// after the train goes quiet, the receiver floods a compact NACK listing
// its missing chunks on a companion repair channel, and the sender
// retransmits exactly those chunks. Both directions are ordinary diffusion
// flows — the chunks ride reinforced gradients, the NACKs flood — so the
// scheme needs nothing from the core beyond the public API.
package reliable

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/core"
	"diffusion/internal/message"
	"diffusion/internal/sim"
)

// Channel types on the wire.
const (
	typeBulk = "bulk"
	typeNack = "bulk-nack"
)

// dataAttrs names the chunk channel of an object.
func dataAttrs(name string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.IS, typeBulk),
		attr.StringAttr(attr.KeyInstance, attr.IS, name),
	}
}

// dataInterest is the receiver's subscription for the chunk channel.
func dataInterest(name string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.EQ, typeBulk),
		attr.StringAttr(attr.KeyInstance, attr.EQ, name),
		// Supply actuals so senders' passive taps could match if needed.
		attr.StringAttr(attr.KeyTask, attr.IS, "fetch"),
	}
}

// nackAttrs and nackInterest name the repair channel.
func nackAttrs(name string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.IS, typeNack),
		attr.StringAttr(attr.KeyInstance, attr.IS, name),
	}
}

func nackInterest(name string) attr.Vec {
	return attr.Vec{
		attr.StringAttr(attr.KeyType, attr.EQ, typeNack),
		attr.StringAttr(attr.KeyInstance, attr.EQ, name),
	}
}

// encodeMissing packs chunk indices as uint16s, capped at cap entries.
func encodeMissing(missing []int, cap int) []byte {
	if len(missing) > cap {
		missing = missing[:cap]
	}
	out := make([]byte, 0, 2*len(missing))
	for _, m := range missing {
		out = binary.BigEndian.AppendUint16(out, uint16(m))
	}
	return out
}

func decodeMissing(b []byte) ([]int, bool) {
	if len(b)%2 != 0 {
		return nil, false
	}
	out := make([]int, 0, len(b)/2)
	for off := 0; off < len(b); off += 2 {
		out = append(out, int(binary.BigEndian.Uint16(b[off:])))
	}
	return out, true
}

// Sender serves one object.
type Sender struct {
	cfg    SenderConfig
	chunks [][]byte
	pub    core.PublicationHandle
	nackIn core.SubscriptionHandle
	queue  []int
	queued map[int]bool
	pump   bool
	// reprime forces the next transmission exploratory: a NACK proves the
	// receiver is alive but the delivery path may be cold, so the first
	// repair floods to re-establish it.
	reprime bool

	// ChunksSent counts all chunk transmissions; Retransmits counts the
	// NACK-driven subset.
	ChunksSent, Retransmits int
}

// SenderConfig configures Offer.
type SenderConfig struct {
	Node  *core.Node
	Clock sim.Clock
	Rand  *rand.Rand
	// Name identifies the object; receivers fetch it by this name.
	Name string
	// ChunkSize is the payload bytes per chunk (default 64, comfortably
	// inside one radio message train).
	ChunkSize int
	// Pace is the inter-chunk send spacing (default 250 ms — the radio
	// is slow, and pacing keeps the train from overrunning MAC queues).
	Pace time.Duration
}

// Offer starts serving the object: the chunk train begins immediately
// (chunk 0 is exploratory and establishes the delivery path) and NACKs are
// served for as long as the Sender lives.
func Offer(cfg SenderConfig, data []byte) *Sender {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Rand == nil || cfg.Name == "" {
		panic("reliable: SenderConfig requires Node, Clock, Rand and Name")
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 64
	}
	if cfg.Pace <= 0 {
		cfg.Pace = 250 * time.Millisecond
	}
	s := &Sender{cfg: cfg, queued: map[int]bool{}}
	for off := 0; off < len(data); off += cfg.ChunkSize {
		end := off + cfg.ChunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := make([]byte, end-off)
		copy(chunk, data[off:end])
		s.chunks = append(s.chunks, chunk)
	}
	if len(s.chunks) == 0 {
		s.chunks = [][]byte{{}}
	}
	if len(s.chunks) > 0xFFFF {
		panic(fmt.Sprintf("reliable: object needs %d chunks; the 16-bit chunk index allows 65535", len(s.chunks)))
	}
	s.pub = cfg.Node.Publish(dataAttrs(cfg.Name))
	s.nackIn = cfg.Node.Subscribe(nackInterest(cfg.Name), s.onNack)
	for i := range s.chunks {
		s.enqueue(i, false)
	}
	return s
}

// Close stops serving (pending queue entries still drain).
func (s *Sender) Close() {
	_ = s.cfg.Node.Unsubscribe(s.nackIn)
	_ = s.cfg.Node.Unpublish(s.pub)
}

// Chunks returns the chunk count of the object.
func (s *Sender) Chunks() int { return len(s.chunks) }

func (s *Sender) enqueue(i int, retransmit bool) {
	if i < 0 || i >= len(s.chunks) || s.queued[i] {
		return
	}
	if retransmit {
		s.Retransmits++
	}
	s.queued[i] = true
	s.queue = append(s.queue, i)
	s.kick()
}

func (s *Sender) kick() {
	if s.pump || len(s.queue) == 0 {
		return
	}
	s.pump = true
	s.cfg.Clock.After(s.cfg.Pace, s.sendNext)
}

func (s *Sender) sendNext() {
	s.pump = false
	if len(s.queue) == 0 {
		return
	}
	i := s.queue[0]
	s.queue = s.queue[1:]
	delete(s.queued, i)
	s.ChunksSent++
	extras := attr.Vec{
		attr.Int32Attr(attr.KeySequence, attr.IS, int32(i)),
		attr.Int32Attr(attr.KeyCount, attr.IS, int32(len(s.chunks))),
		attr.BlobAttr(attr.KeyPayload, attr.IS, s.chunks[i]),
	}
	if s.reprime {
		s.reprime = false
		_ = s.cfg.Node.SendExploratory(s.pub, extras)
	} else {
		_ = s.cfg.Node.Send(s.pub, extras)
	}
	s.kick()
}

func (s *Sender) onNack(m *message.Message) {
	blob, ok := m.Attrs.FindActual(attr.KeyPayload)
	if !ok || blob.Val.Type != attr.TypeBlob {
		return
	}
	missing, ok := decodeMissing(blob.Val.Blob())
	if !ok {
		return
	}
	s.reprime = true
	if len(missing) == 0 {
		// An empty list is a restart request: the receiver never caught
		// any of the train (for example, the initial interest flood was
		// lost and the whole train fell into the void).
		for i := range s.chunks {
			s.enqueue(i, true)
		}
		return
	}
	for _, i := range missing {
		s.enqueue(i, true)
	}
}

// Receiver reassembles one object.
type Receiver struct {
	cfg      ReceiverConfig
	sub      core.SubscriptionHandle
	nackPub  core.PublicationHandle
	chunks   [][]byte
	have     int
	total    int
	nacks    int
	timer    sim.Timer
	complete bool
	failed   bool

	// NacksSent counts repair requests issued.
	NacksSent int
}

// ReceiverConfig configures Fetch.
type ReceiverConfig struct {
	Node  *core.Node
	Clock sim.Clock
	// Name identifies the object to fetch.
	Name string
	// OnComplete receives the reassembled object exactly once.
	OnComplete func(data []byte)
	// OnFail fires once if MaxNacks repair rounds pass without progress.
	OnFail func(missing int)
	// NackDelay is the quiet time before requesting repairs (default 3 s;
	// it should exceed the sender's pace comfortably).
	NackDelay time.Duration
	// MaxNacks bounds repair rounds without progress (default 12).
	MaxNacks int
	// MaxNackList caps missing indices per NACK (default 64).
	MaxNackList int
}

// Fetch subscribes for the object and drives receiver-side repair.
func Fetch(cfg ReceiverConfig) *Receiver {
	if cfg.Node == nil || cfg.Clock == nil || cfg.Name == "" || cfg.OnComplete == nil {
		panic("reliable: ReceiverConfig requires Node, Clock, Name and OnComplete")
	}
	if cfg.NackDelay <= 0 {
		cfg.NackDelay = 3 * time.Second
	}
	if cfg.MaxNacks <= 0 {
		cfg.MaxNacks = 12
	}
	if cfg.MaxNackList <= 0 {
		cfg.MaxNackList = 64
	}
	r := &Receiver{cfg: cfg}
	r.nackPub = cfg.Node.Publish(nackAttrs(cfg.Name))
	r.sub = cfg.Node.Subscribe(dataInterest(cfg.Name), r.onChunk)
	r.arm()
	return r
}

// Close stops the receiver (it fires neither callback afterwards).
func (r *Receiver) Close() {
	r.complete = true
	if r.timer != nil {
		r.timer.Cancel()
	}
	_ = r.cfg.Node.Unsubscribe(r.sub)
	_ = r.cfg.Node.Unpublish(r.nackPub)
}

// Progress returns (received, total) chunk counts; total is 0 until the
// first chunk arrives.
func (r *Receiver) Progress() (int, int) { return r.have, r.total }

func (r *Receiver) arm() {
	if r.timer != nil {
		r.timer.Cancel()
	}
	r.timer = r.cfg.Clock.After(r.cfg.NackDelay, r.quiet)
}

func (r *Receiver) onChunk(m *message.Message) {
	if r.complete || r.failed {
		return
	}
	seq, ok1 := m.Attrs.FindActual(attr.KeySequence)
	count, ok2 := m.Attrs.FindActual(attr.KeyCount)
	blob, ok3 := m.Attrs.FindActual(attr.KeyPayload)
	if !ok1 || !ok2 || !ok3 || blob.Val.Type != attr.TypeBlob {
		return
	}
	total := int(count.Val.Int32())
	i := int(seq.Val.Int32())
	if total <= 0 || total > 0xFFFF || i < 0 || i >= total {
		return
	}
	if r.chunks == nil {
		r.chunks = make([][]byte, total)
		r.total = total
	}
	if r.total != total || r.chunks[i] != nil {
		return // inconsistent train or duplicate
	}
	c := blob.Val.Blob()
	cp := make([]byte, len(c))
	copy(cp, c)
	r.chunks[i] = cp
	r.have++
	r.nacks = 0 // progress resets the give-up budget
	if r.have == r.total {
		r.finish()
		return
	}
	r.arm()
}

func (r *Receiver) finish() {
	r.complete = true
	if r.timer != nil {
		r.timer.Cancel()
	}
	var data []byte
	for _, c := range r.chunks {
		data = append(data, c...)
	}
	r.cfg.OnComplete(data)
}

// quiet fires when the train stalls: request repairs or give up.
func (r *Receiver) quiet() {
	if r.complete || r.failed {
		return
	}
	missing := r.missing()
	if r.chunks != nil && len(missing) == 0 {
		return // finished concurrently
	}
	r.nacks++
	if r.nacks > r.cfg.MaxNacks {
		r.failed = true
		if r.cfg.OnFail != nil {
			r.cfg.OnFail(len(missing))
		}
		return
	}
	// NACKs flood (exploratory): they are rare, small, and must reach the
	// sender even when the repair channel's path is cold. An empty list
	// (nothing received yet) asks the sender to restart the train.
	r.NacksSent++
	_ = r.cfg.Node.SendExploratory(r.nackPub, attr.Vec{
		attr.BlobAttr(attr.KeyPayload, attr.IS,
			encodeMissing(missing, r.cfg.MaxNackList)),
	})
	r.arm()
}

func (r *Receiver) missing() []int {
	var out []int
	for i, c := range r.chunks {
		if c == nil {
			out = append(out, i)
		}
	}
	return out
}
