// Package topo models node placement. It embeds a reconstruction of the
// paper's Figure 7 testbed — 14 PC/104 nodes on two floors of ISI, with the
// sink typically 4 hops from the sources and the network about 5 hops
// across — and provides grid/line/random generators for scaling studies.
//
// Coordinates are meters in an abstract floor plan. What matters for the
// experiments is the resulting connectivity graph (multi-hop paths, hidden
// terminals, borderline lossy links), not geographic fidelity: the paper
// itself notes "the exact topology varies depending on the level of RF
// activity".
package topo

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Node is a placed sensor node.
type Node struct {
	ID    uint32
	X, Y  float64
	Floor int
}

// Topology is a set of placed nodes.
type Topology struct {
	Name  string
	nodes map[uint32]Node
	order []uint32
	// FloorPenalty is extra effective distance (meters) added to links
	// that cross floors, modelling the attenuation between the testbed's
	// 10th and 11th floors.
	FloorPenalty float64
}

// New returns an empty topology.
func New(name string) *Topology {
	return &Topology{Name: name, nodes: map[uint32]Node{}}
}

// Add places a node. Adding a duplicate ID panics: topologies are built by
// trusted construction code, and a silent overwrite would corrupt an
// experiment.
func (t *Topology) Add(n Node) {
	if _, dup := t.nodes[n.ID]; dup {
		panic(fmt.Sprintf("topo: duplicate node id %d", n.ID))
	}
	t.nodes[n.ID] = n
	t.order = append(t.order, n.ID)
}

// IDs returns all node IDs in insertion order.
func (t *Topology) IDs() []uint32 {
	out := make([]uint32, len(t.order))
	copy(out, t.order)
	return out
}

// Len returns the number of nodes.
func (t *Topology) Len() int { return len(t.order) }

// Node returns the node with the given ID.
func (t *Topology) Node(id uint32) (Node, bool) {
	n, ok := t.nodes[id]
	return n, ok
}

// Distance returns the effective link distance between two nodes: Euclidean
// distance plus the floor penalty for cross-floor pairs. It panics on
// unknown IDs.
func (t *Topology) Distance(a, b uint32) float64 {
	na, ok := t.nodes[a]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %d", a))
	}
	nb, ok := t.nodes[b]
	if !ok {
		panic(fmt.Sprintf("topo: unknown node %d", b))
	}
	d := math.Hypot(na.X-nb.X, na.Y-nb.Y)
	if na.Floor != nb.Floor {
		d += t.FloorPenalty
	}
	return d
}

// NeighborsWithin returns the IDs of all other nodes within effective
// distance r of id, sorted ascending.
func (t *Topology) NeighborsWithin(id uint32, r float64) []uint32 {
	var out []uint32
	for _, other := range t.order {
		if other == id {
			continue
		}
		if t.Distance(id, other) <= r {
			out = append(out, other)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HopDistance returns the minimum hop count between a and b treating every
// pair within range r as a link, or -1 if unreachable. Used by tests and by
// the analytic traffic model to derive path lengths.
func (t *Topology) HopDistance(a, b uint32, r float64) int {
	if a == b {
		return 0
	}
	dist := map[uint32]int{a: 0}
	queue := []uint32{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.NeighborsWithin(cur, r) {
			if _, seen := dist[nb]; seen {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return -1
}

// Connected reports whether the graph induced by range r is connected.
func (t *Topology) Connected(r float64) bool {
	if len(t.order) == 0 {
		return true
	}
	first := t.order[0]
	for _, id := range t.order[1:] {
		if t.HopDistance(first, id, r) < 0 {
			return false
		}
	}
	return true
}

// Diameter returns the maximum pairwise hop distance at range r, or -1 if
// the graph is disconnected.
func (t *Topology) Diameter(r float64) int {
	max := 0
	for i, a := range t.order {
		for _, b := range t.order[i+1:] {
			h := t.HopDistance(a, b, r)
			if h < 0 {
				return -1
			}
			if h > max {
				max = h
			}
		}
	}
	return max
}

// Well-known testbed roles (paper section 6).
const (
	// TestbedSink is node "D" of the Figure 8 aggregation experiment.
	TestbedSink uint32 = 28
	// TestbedUser is node "U" of the Figure 9 nested-query experiment.
	TestbedUser uint32 = 39
	// TestbedAudio is the triggered audio sensor "A" at node 20.
	TestbedAudio uint32 = 20
)

// TestbedSources are the Figure 8 data sources ("S" at nodes 25, 16, 22,
// 13), which double as the Figure 9 light sensors ("L"). Experiments use
// prefixes of this list when fewer sources are wanted.
func TestbedSources() []uint32 { return []uint32{25, 16, 22, 13} }

// Testbed returns a reconstruction of the paper's Figure 7 topology: 14
// nodes, light nodes 11, 13 and 16 on the 10th floor, the rest on the 11th.
// With the default radio range (~13.5 m solid, fading to nothing by ~19 m)
// the sink at node 28 is 4-5 hops from the sources, the light sensors are
// one hop from the audio node 20, and the user node 39 is two hops from it.
func Testbed() *Topology {
	t := New("isi-testbed")
	t.FloorPenalty = 2.0
	for _, n := range []Node{
		// Source / light-sensor cluster (west side).
		{ID: 13, X: 0, Y: 0, Floor: 10},
		{ID: 16, X: -1, Y: 5, Floor: 10},
		{ID: 22, X: 1, Y: -5, Floor: 11},
		{ID: 25, X: -3, Y: -1, Floor: 11},
		{ID: 17, X: -8, Y: 3, Floor: 11},
		// Audio sensor and first relay column.
		{ID: 20, X: 10, Y: 0, Floor: 11},
		{ID: 11, X: 9, Y: 9, Floor: 10},
		// Mid relays.
		{ID: 21, X: 20, Y: 0, Floor: 11},
		{ID: 14, X: 19, Y: -9, Floor: 11},
		// User node.
		{ID: 39, X: 24, Y: 12, Floor: 11},
		// East relays and sink.
		{ID: 24, X: 30, Y: 0, Floor: 11},
		{ID: 12, X: 29, Y: 9, Floor: 11},
		{ID: 27, X: 31, Y: -9, Floor: 11},
		{ID: 28, X: 40, Y: 0, Floor: 11},
	} {
		t.Add(n)
	}
	return t
}

// WriteDOT renders the connectivity graph induced by radio range r as
// Graphviz DOT, with node positions pinned to their coordinates — the
// topology-visualization tool the paper's section 7 asks for ("tools are
// needed to report the changing radio topology").
func (t *Topology) WriteDOT(w io.Writer, r float64) {
	fmt.Fprintf(w, "graph %q {\n", t.Name)
	fmt.Fprintln(w, "  node [shape=circle];")
	for _, id := range t.order {
		n := t.nodes[id]
		fmt.Fprintf(w, "  n%d [pos=\"%g,%g!\" label=\"%d\"];\n", id, n.X, n.Y, id)
	}
	for i, a := range t.order {
		for _, b := range t.order[i+1:] {
			if t.Distance(a, b) <= r {
				fmt.Fprintf(w, "  n%d -- n%d;\n", a, b)
			}
		}
	}
	fmt.Fprintln(w, "}")
}

// Grid returns a cols×rows grid with the given spacing, nodes numbered from
// 1 in row-major order.
func Grid(cols, rows int, spacing float64) *Topology {
	t := New(fmt.Sprintf("grid-%dx%d", cols, rows))
	id := uint32(1)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			t.Add(Node{ID: id, X: float64(c) * spacing, Y: float64(r) * spacing, Floor: 1})
			id++
		}
	}
	return t
}

// Line returns n nodes in a line with the given spacing, numbered from 1.
func Line(n int, spacing float64) *Topology {
	t := New(fmt.Sprintf("line-%d", n))
	for i := 0; i < n; i++ {
		t.Add(Node{ID: uint32(i + 1), X: float64(i) * spacing, Floor: 1})
	}
	return t
}

// Random places n nodes uniformly at random in a w×h field using rng,
// numbered from 1.
func Random(n int, w, h float64, rng *rand.Rand) *Topology {
	t := New(fmt.Sprintf("random-%d", n))
	for i := 0; i < n; i++ {
		t.Add(Node{ID: uint32(i + 1), X: rng.Float64() * w, Y: rng.Float64() * h, Floor: 1})
	}
	return t
}

// Mobility. A Trajectory models a mobile node — a message ferry, a data
// mule, a commuter — as a piecewise-linear path over timed waypoints,
// and Contacts derives the deterministic contact schedule between that
// path and static nodes. Disruption-tolerance experiments turn the
// schedule into link up/down and NeighborDead/NeighborRecovered events;
// motion deliberately stays out of the radio model, so the schedule,
// not radio luck, decides connectivity, and mobile scenarios remain
// deterministic and comparable across protocol arms.

// Waypoint is a point on a mobile node's path, reached at time T.
type Waypoint struct {
	T    time.Duration
	X, Y float64
}

// Trajectory is a piecewise-linear mobility path: constant-speed motion
// between consecutive waypoints (equal consecutive positions model a
// dwell). Waypoints must be in nondecreasing time order. With Cyclic
// set, the path repeats with period last.T−first.T; the last waypoint's
// position should match the first for continuous motion.
type Trajectory struct {
	Waypoints []Waypoint
	Cyclic    bool
}

// At returns the mobile node's position at time t: the first waypoint's
// position before the path starts, the last's after it ends (unless
// Cyclic), linear interpolation in between.
func (tr *Trajectory) At(t time.Duration) (x, y float64) {
	wps := tr.Waypoints
	if len(wps) == 0 {
		return 0, 0
	}
	first, last := wps[0], wps[len(wps)-1]
	if tr.Cyclic && last.T > first.T && t > last.T {
		t = first.T + (t-first.T)%(last.T-first.T)
	}
	if t <= first.T {
		return first.X, first.Y
	}
	for i := 1; i < len(wps); i++ {
		a, b := wps[i-1], wps[i]
		if t > b.T {
			continue
		}
		if b.T == a.T {
			return b.X, b.Y
		}
		f := float64(t-a.T) / float64(b.T-a.T)
		return a.X + f*(b.X-a.X), a.Y + f*(b.Y-a.Y)
	}
	return last.X, last.Y
}

// Contact is one maximal window during which a mobile node is within
// contact radius of the static node Peer: [From, To).
type Contact struct {
	Peer     uint32
	From, To time.Duration
}

// Contacts returns the maximal windows during which the trajectory is
// within radius of each listed static node, sampled every step over
// [0, until); window edges are step-granular, and windows still open at
// until are closed there. The result is ordered by start time then
// peer, and is a pure function of its arguments. Radius is plain
// Euclidean distance — a mobile node dwells wherever it likes,
// regardless of floors. It panics on unknown peers.
func (t *Topology) Contacts(tr *Trajectory, peers []uint32, radius float64, until, step time.Duration) []Contact {
	if until <= 0 || step <= 0 {
		return nil
	}
	var out []Contact
	for _, p := range peers {
		pn, ok := t.nodes[p]
		if !ok {
			panic(fmt.Sprintf("topo: unknown node %d", p))
		}
		in := false
		var from time.Duration
		for at := time.Duration(0); at < until; at += step {
			x, y := tr.At(at)
			near := math.Hypot(x-pn.X, y-pn.Y) <= radius
			switch {
			case near && !in:
				in, from = true, at
			case !near && in:
				in = false
				out = append(out, Contact{Peer: p, From: from, To: at})
			}
		}
		if in {
			out = append(out, Contact{Peer: p, From: from, To: until})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Peer < out[j].Peer
	})
	return out
}

// Partition assigns every node to one of n shards for parallel simulation.
// Nodes are sorted along the longer axis of the topology's bounding box and
// cut into n contiguous, equal-count strips, so each shard owns a spatially
// compact region: most radio neighbors land on the same shard and cross-
// shard traffic stays small. The assignment is a pure function of the
// topology and n — independent of map iteration order — so every run
// partitions identically. n is clamped to [1, Len()].
func (t *Topology) Partition(n int) map[uint32]int {
	if n < 1 {
		n = 1
	}
	if n > len(t.order) {
		n = len(t.order)
	}
	ids := t.IDs()
	var spanX, spanY float64
	if len(ids) > 0 {
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, id := range ids {
			nd := t.nodes[id]
			minX, maxX = math.Min(minX, nd.X), math.Max(maxX, nd.X)
			minY, maxY = math.Min(minY, nd.Y), math.Max(maxY, nd.Y)
		}
		spanX, spanY = maxX-minX, maxY-minY
	}
	key := func(id uint32) float64 {
		if spanY > spanX {
			return t.nodes[id].Y
		}
		return t.nodes[id].X
	}
	sort.SliceStable(ids, func(i, j int) bool {
		ki, kj := key(ids[i]), key(ids[j])
		if ki != kj {
			return ki < kj
		}
		return ids[i] < ids[j] // deterministic tie-break
	})
	out := make(map[uint32]int, len(ids))
	for i, id := range ids {
		// Equal-count strips: node i of m goes to shard i*n/m.
		out[id] = i * n / len(ids)
	}
	return out
}
