package topo

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// solidRange mirrors the radio default used by the experiments: links up to
// this effective distance are reliable.
const solidRange = 13.5

func TestTestbedTopology(t *testing.T) {
	tb := Testbed()
	if tb.Len() != 14 {
		t.Fatalf("testbed has %d nodes, want 14 (Figure 7)", tb.Len())
	}
	// Paper: light nodes 11, 13, 16 on the 10th floor.
	for _, id := range []uint32{11, 13, 16} {
		n, ok := tb.Node(id)
		if !ok || n.Floor != 10 {
			t.Errorf("node %d should be on floor 10", id)
		}
	}
	if !tb.Connected(solidRange) {
		t.Fatal("testbed must be connected at solid radio range")
	}
	// Paper: "the network is typically 5 hops across".
	if d := tb.Diameter(solidRange); d < 4 || d > 7 {
		t.Errorf("diameter %d, want about 5", d)
	}
	// Paper: sink D at 28, sources typically 4 hops away.
	for _, src := range TestbedSources() {
		h := tb.HopDistance(src, TestbedSink, solidRange)
		if h < 3 || h > 6 {
			t.Errorf("source %d is %d hops from sink, want about 4", src, h)
		}
	}
	// Paper (section 6.2): one hop from the light sensors to the audio
	// sensor, two hops from there to the user node.
	for _, l := range TestbedSources() {
		h := tb.HopDistance(l, TestbedAudio, solidRange)
		if h < 1 || h > 2 {
			t.Errorf("light %d is %d hops from audio node, want 1", l, h)
		}
	}
	if h := tb.HopDistance(TestbedAudio, TestbedUser, solidRange); h != 2 {
		t.Errorf("audio to user is %d hops, want 2", h)
	}
	// Flat queries should travel farther than nested ones: lights are 3
	// hops from the user.
	for _, l := range TestbedSources() {
		h := tb.HopDistance(l, TestbedUser, solidRange)
		if h < 2 || h > 4 {
			t.Errorf("light %d is %d hops from user, want about 3", l, h)
		}
	}
}

func TestFloorPenalty(t *testing.T) {
	tb := Testbed()
	d := tb.Distance(13, 20) // cross-floor: 10m + penalty
	if math.Abs(d-12.0) > 1e-9 {
		t.Errorf("distance 13-20 = %v, want 12 (10m + 2m floor penalty)", d)
	}
	d = tb.Distance(20, 21) // same floor
	if math.Abs(d-10.0) > 1e-9 {
		t.Errorf("distance 20-21 = %v, want 10", d)
	}
	if tb.Distance(13, 20) != tb.Distance(20, 13) {
		t.Error("distance must be symmetric")
	}
}

func TestNeighborsWithin(t *testing.T) {
	tb := Testbed()
	nbrs := tb.NeighborsWithin(28, solidRange)
	if len(nbrs) == 0 {
		t.Fatal("sink must have neighbors")
	}
	for i := 1; i < len(nbrs); i++ {
		if nbrs[i-1] >= nbrs[i] {
			t.Error("neighbors must be sorted")
		}
	}
	for _, nb := range nbrs {
		if nb == 28 {
			t.Error("a node is not its own neighbor")
		}
		if tb.Distance(28, nb) > solidRange {
			t.Error("neighbor beyond range")
		}
	}
	// The far light cluster must not be direct neighbors of the sink.
	for _, src := range TestbedSources() {
		for _, nb := range nbrs {
			if nb == src {
				t.Errorf("source %d must not be adjacent to the sink", src)
			}
		}
	}
}

func TestHopDistance(t *testing.T) {
	l := Line(5, 10)
	if h := l.HopDistance(1, 5, 12); h != 4 {
		t.Errorf("line hop distance = %d, want 4", h)
	}
	if h := l.HopDistance(1, 5, 25); h != 2 {
		t.Errorf("line hop distance at double range = %d, want 2", h)
	}
	if h := l.HopDistance(1, 1, 12); h != 0 {
		t.Errorf("self distance = %d", h)
	}
	if h := l.HopDistance(1, 5, 5); h != -1 {
		t.Errorf("disconnected should be -1, got %d", h)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(4, 3, 10)
	if g.Len() != 12 {
		t.Fatalf("grid size %d", g.Len())
	}
	n, ok := g.Node(1)
	if !ok || n.X != 0 || n.Y != 0 {
		t.Error("node 1 at origin")
	}
	n, _ = g.Node(12)
	if n.X != 30 || n.Y != 20 {
		t.Errorf("node 12 at (%v,%v)", n.X, n.Y)
	}
	if !g.Connected(10.1) {
		t.Error("grid should be connected at spacing range")
	}
	if g.Connected(9.9) {
		t.Error("grid should be disconnected below spacing")
	}
	if d := g.Diameter(10.1); d != 5 {
		t.Errorf("4x3 grid manhattan diameter = %d, want 5", d)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(20, 100, 100, rand.New(rand.NewSource(5)))
	b := Random(20, 100, 100, rand.New(rand.NewSource(5)))
	for _, id := range a.IDs() {
		na, _ := a.Node(id)
		nb, _ := b.Node(id)
		if na != nb {
			t.Fatal("same seed must give same placement")
		}
		if na.X < 0 || na.X > 100 || na.Y < 0 || na.Y > 100 {
			t.Fatal("node outside field")
		}
	}
}

func TestDuplicateIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add must panic")
		}
	}()
	tp := New("dup")
	tp.Add(Node{ID: 1})
	tp.Add(Node{ID: 1})
}

func TestUnknownNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Distance on unknown node must panic")
		}
	}()
	Testbed().Distance(1, 2)
}

func TestEmptyTopology(t *testing.T) {
	e := New("empty")
	if !e.Connected(10) {
		t.Error("empty topology is vacuously connected")
	}
	if e.Len() != 0 || len(e.IDs()) != 0 {
		t.Error("empty topology invariants")
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	Testbed().WriteDOT(&buf, solidRange)
	s := buf.String()
	if !strings.Contains(s, `graph "isi-testbed"`) {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "n28 [pos=") {
		t.Error("sink node missing")
	}
	if strings.Count(s, " -- ") < 10 {
		t.Errorf("too few edges:\n%s", s)
	}
	// Distant pairs must not be edges.
	if strings.Contains(s, "n13 -- n28") || strings.Contains(s, "n28 -- n13") {
		t.Error("source and sink are not adjacent")
	}
}

func TestTrajectoryAt(t *testing.T) {
	sec := func(s int) time.Duration { return time.Duration(s) * 1e9 }
	tr := &Trajectory{Waypoints: []Waypoint{
		{T: sec(0), X: 0},
		{T: sec(10), X: 0},  // dwell
		{T: sec(20), X: 40}, // travel at 4 m/s
		{T: sec(30), X: 40}, // dwell
		{T: sec(40), X: 0},  // return
	}, Cyclic: true}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{sec(0), 0}, {sec(5), 0}, {sec(10), 0},
		{sec(15), 20}, {sec(20), 40}, {sec(25), 40},
		{sec(35), 20}, {sec(40), 0},
		// Cyclic wrap: t=45 ≡ t=5, t=55 ≡ t=15.
		{sec(45), 0}, {sec(55), 20}, {sec(95), 20},
	}
	for _, c := range cases {
		x, y := tr.At(c.at)
		if math.Abs(x-c.want) > 1e-9 || y != 0 {
			t.Errorf("At(%v) = (%g, %g), want (%g, 0)", c.at, x, y, c.want)
		}
	}
	// Non-cyclic trajectories park at the endpoints.
	tr.Cyclic = false
	if x, _ := tr.At(sec(99)); x != 0 {
		t.Errorf("non-cyclic At(99s) = %g, want terminal 0", x)
	}
	if x, _ := (&Trajectory{}).At(sec(1)); x != 0 {
		t.Error("empty trajectory should sit at the origin")
	}
}

func TestContacts(t *testing.T) {
	sec := func(s int) time.Duration { return time.Duration(s) * 1e9 }
	line := Line(5, 10) // nodes 1..5 at x = 0, 10, 20, 30, 40
	// Shuttle between the two inner relays (x=10 and x=30), dwelling 10 s
	// at each end, 10 s travel, 40 s cycle.
	tr := &Trajectory{Waypoints: []Waypoint{
		{T: sec(0), X: 10},
		{T: sec(10), X: 10},
		{T: sec(20), X: 30},
		{T: sec(30), X: 30},
		{T: sec(40), X: 10},
	}, Cyclic: true}
	contacts := line.Contacts(tr, []uint32{2, 4}, 5, sec(40), sec(1)/4)
	if len(contacts) != 3 {
		t.Fatalf("got %d contacts, want 3: %+v", len(contacts), contacts)
	}
	// Within radius 5 of node 2 (x=10) while x ≤ 15: [0, 12.5s) and from
	// 37.5s to the horizon; within radius of node 4 (x=30) while x ≥ 25:
	// [17.5s, 32.5s).
	check := func(c Contact, peer uint32, from, to time.Duration) {
		t.Helper()
		if c.Peer != peer || c.From != from || c.To != to {
			t.Errorf("contact %+v, want peer %d [%v, %v)", c, peer, from, to)
		}
	}
	check(contacts[0], 2, sec(0), sec(12)+sec(1)/2+sec(1)/4)
	check(contacts[1], 4, sec(17)+sec(1)/2, sec(32)+sec(1)/2+sec(1)/4)
	check(contacts[2], 2, sec(37)+sec(1)/2, sec(40))
	// No overlap between the two peers' windows: the islands stay isolated.
	if contacts[0].To > contacts[1].From || contacts[1].To > contacts[2].From {
		t.Error("contact windows overlap; islands are bridged")
	}
	// Determinism: the schedule is a pure function of its inputs.
	again := line.Contacts(tr, []uint32{2, 4}, 5, sec(40), sec(1)/4)
	for i := range contacts {
		if contacts[i] != again[i] {
			t.Fatal("contact schedule is not deterministic")
		}
	}
}
