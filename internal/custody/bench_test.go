package custody

import (
	"fmt"
	"path/filepath"
	"testing"

	"diffusion/internal/message"
)

// BenchmarkCustodyEnqueue measures the durable custody admission path:
// one fsync'd log append per accepted message. This is the per-message
// price of the zero-loss guarantee; BENCH_custody.json records it
// together with the bytes fsync'd per message.
func BenchmarkCustodyEnqueue(b *testing.B) {
	store, _, err := OpenStore(filepath.Join(b.TempDir(), "custody.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	q := NewQueue(b.N+1, store)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Accept(message.ID{RandID: 1, PktNum: uint32(i)}, payload)
	}
	b.StopTimer()
	st := store.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.BytesFsynced)/float64(st.Appends), "fsync-bytes/msg")
	}
}

// BenchmarkCustodyReplay measures the warm-restart path: recovering a
// populated log and snapshotting the queue for replay.
func BenchmarkCustodyReplay(b *testing.B) {
	const items = 256
	path := filepath.Join(b.TempDir(), "custody.log")
	store, _, err := OpenStore(path)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < items; i++ {
		if err := store.JournalAccept(message.ID{RandID: 2, PktNum: uint32(i)}, payload); err != nil {
			b.Fatal(err)
		}
	}
	store.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, recovered, err := OpenStore(path)
		if err != nil {
			b.Fatal(err)
		}
		if len(recovered) != items {
			b.Fatalf("recovered %d items, want %d", len(recovered), items)
		}
		q := NewQueue(items, nil)
		q.Restore(recovered)
		if q.Len() != items {
			b.Fatal("restore lost items")
		}
		s.Close()
	}
}

// BenchmarkCustodyQueueMemory measures the journal-free (simulator) path.
func BenchmarkCustodyQueueMemory(b *testing.B) {
	q := NewQueue(b.N+1, nil)
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Accept(message.ID{RandID: 3, PktNum: uint32(i)}, payload)
	}
	if q.Len() != b.N {
		b.Fatal(fmt.Sprintf("queue len %d", q.Len()))
	}
}
