// Package custody implements disruption-tolerant custody transfer for
// reinforced-class diffusion data. Directed diffusion is soft state all
// the way down: gradients, reinforcement and the duplicate cache all decay
// within a few refresh intervals, so any partition that outlives them
// silently drops every in-flight data message. Custody closes that gap
// the way delay-tolerant networks do — a node that cannot make forward
// progress with a data message takes *custody* of it: the message is held
// in a bounded queue (durably, when a Store backs the queue) until a
// forwarding path exists again, then replayed into the gradient machinery
// with its original message ID so the existing duplicate-suppression
// caches keep delivery exactly-once.
//
// The package has two pieces:
//
//   - Queue: the bounded in-memory custody queue, deterministic and
//     shared between the simulator and the live daemon. Admission never
//     sheds custodial data to make room for more custodial data — when
//     the queue is full, new custody is refused (the Shed counter) and
//     the soft-state machinery is left to retry, mirroring how the
//     reliable-unicast queue sheds interest/exploratory traffic before
//     reinforced data.
//   - Store (store.go): an fsync'd append-only log of accept/release
//     records with CRC framing, giving the queue crash durability in the
//     live daemon. Recovery scans the intact prefix and truncates a torn
//     tail (a crash mid-append), so a SIGKILL between write and sync
//     costs at most the record being appended.
package custody

import (
	"sync"

	"diffusion/internal/message"
)

// Item is one custodial message: the marshalled wire form plus the
// original message ID it is keyed on.
type Item struct {
	ID      message.ID
	Payload []byte
}

// Journal is the durability hook the live daemon attaches (a *Store). The
// queue calls it under its lock: an accept that fails to journal is
// refused, so a custody acknowledgment is never sent for data that is not
// actually on disk.
type Journal interface {
	JournalAccept(id message.ID, payload []byte) error
	JournalRelease(id message.ID) error
}

// Counters is the custody accounting every node exports.
type Counters struct {
	Accepted uint64 // custody taken (fresh admissions)
	Released uint64 // custody discharged (delivered or handed off)
	Replayed uint64 // replay transmissions of custodial data
	Shed     uint64 // admissions refused because the queue was full
	Restored uint64 // items reloaded from the journal at warm restart
}

// Queue is a bounded FIFO of custodial data, keyed by message ID. All
// methods are safe for concurrent use: the live daemon's transport
// goroutines accept custody while the node loop replays it. In the
// simulator every caller is the single event thread, so the lock costs
// nothing and determinism is preserved (iteration is always in FIFO
// order, never map order).
type Queue struct {
	mu      sync.Mutex
	limit   int
	journal Journal
	order   []message.ID
	items   map[message.ID][]byte
	// released remembers recently discharged custody so a retransmitted
	// offer (the acknowledgment was lost) is re-acknowledged without
	// re-accepting, keeping hop-by-hop transfer exactly-once. Bounded
	// FIFO; the sink's seen-cache is the backstop beyond it.
	released map[message.ID]bool
	relOrder []message.ID
	c        Counters
}

// DefaultLimit bounds the custody queue when no limit is configured.
const DefaultLimit = 1024

// releasedMemoryFactor sizes the released-ID memory relative to the
// queue limit.
const releasedMemoryFactor = 4

// NewQueue returns a custody queue holding at most limit items (0 or
// negative: DefaultLimit). journal may be nil (simulator, tests).
func NewQueue(limit int, journal Journal) *Queue {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Queue{
		limit:    limit,
		journal:  journal,
		items:    map[message.ID][]byte{},
		released: map[message.ID]bool{},
	}
}

// Restore loads items recovered from a journal at warm restart, in order,
// without re-journaling them. Items beyond the queue limit are dropped
// (counted as shed).
func (q *Queue) Restore(items []Item) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, it := range items {
		if _, ok := q.items[it.ID]; ok {
			continue
		}
		if len(q.order) >= q.limit {
			q.c.Shed++
			continue
		}
		buf := make([]byte, len(it.Payload))
		copy(buf, it.Payload)
		q.items[it.ID] = buf
		q.order = append(q.order, it.ID)
		q.c.Restored++
	}
}

// Accept takes custody of (id, payload). held reports whether this node
// now vouches for the message (safe to acknowledge a custody offer);
// fresh reports whether it was newly admitted (deliver it onward).
// Duplicates of queued or recently released custody are held but not
// fresh; a full queue or a failed journal append refuses custody
// entirely.
func (q *Queue) Accept(id message.ID, payload []byte) (held, fresh bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[id]; ok {
		return true, false
	}
	if q.released[id] {
		return true, false
	}
	return q.admitLocked(id, payload)
}

// AcceptOffer takes custody of (id, payload) offered hop-by-hop over a
// custody link. It differs from Accept in one case: an ID found in the
// released memory is re-admitted instead of blind-acknowledged. A link
// offerer discharges its copy the moment we acknowledge, so acking data
// this node released earlier would drop it from the network entirely
// whenever a custody walk revisits a prior holder — which changed
// topology makes legitimate, not a protocol error. Re-admission costs at
// worst one duplicate copy walking to the sink, where the duplicate cache
// discharges it; the blind ack costs the message. Store-and-carry keeps
// plain Accept: its re-offers are broadcast-adjacent and the released
// memory is what makes lost-ack retransmissions exactly-once there.
func (q *Queue) AcceptOffer(id message.ID, payload []byte) (held, fresh bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[id]; ok {
		return true, false
	}
	if q.released[id] {
		delete(q.released, id)
		for i, rid := range q.relOrder {
			if rid == id {
				q.relOrder = append(q.relOrder[:i], q.relOrder[i+1:]...)
				break
			}
		}
	}
	return q.admitLocked(id, payload)
}

// admitLocked appends a new item (id not queued or released). Callers
// hold q.mu.
func (q *Queue) admitLocked(id message.ID, payload []byte) (held, fresh bool) {
	if len(q.order) >= q.limit {
		q.c.Shed++
		return false, false
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	if q.journal != nil {
		if err := q.journal.JournalAccept(id, buf); err != nil {
			q.c.Shed++
			return false, false
		}
	}
	q.items[id] = buf
	q.order = append(q.order, id)
	q.c.Accepted++
	return true, true
}

// Release discharges custody of id — the message was delivered locally or
// a downstream custodian acknowledged it. Returns false when id is not in
// custody.
func (q *Queue) Release(id message.ID) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.items[id]; !ok {
		return false
	}
	if q.journal != nil {
		// A failed release journal entry is not fatal: the worst case is
		// a re-replay after restart, which the released-memory and the
		// sink's duplicate cache absorb.
		_ = q.journal.JournalRelease(id)
	}
	delete(q.items, id)
	for i, oid := range q.order {
		if oid == id {
			q.order = append(q.order[:i], q.order[i+1:]...)
			break
		}
	}
	q.released[id] = true
	q.relOrder = append(q.relOrder, id)
	for len(q.relOrder) > q.limit*releasedMemoryFactor {
		delete(q.released, q.relOrder[0])
		q.relOrder = q.relOrder[1:]
	}
	q.c.Released++
	return true
}

// NoteReplay counts one replay transmission of custodial data.
func (q *Queue) NoteReplay() {
	q.mu.Lock()
	q.c.Replayed++
	q.mu.Unlock()
}

// Has reports whether id is currently in custody.
func (q *Queue) Has(id message.ID) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.items[id]
	return ok
}

// Items snapshots the queue in FIFO admission order.
func (q *Queue) Items() []Item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Item, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, Item{ID: id, Payload: q.items[id]})
	}
	return out
}

// Len returns the number of items in custody.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.order)
}

// Limit returns the queue's admission bound.
func (q *Queue) Limit() int { return q.limit }

// Counters snapshots the custody accounting.
func (q *Queue) Counters() Counters {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.c
}
