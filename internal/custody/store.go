package custody

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"diffusion/internal/message"
)

// Store is the custody queue's durability backend: an append-only log of
// accept and release records, each CRC-framed and fsync'd before the
// append returns, so a custody acknowledgment is never sent for data the
// disk has not seen. The log is the diffnode state file's companion —
// where the state file persists the node's *role* (a few hundred bytes,
// rewritten whole), the custody log persists queued *data* and therefore
// appends.
//
// Record layout (all integers big endian):
//
//	u32  body length
//	u32  CRC-32 (IEEE) of the body
//	body: op (1 byte: opAccept | opRelease)
//	      message ID (8 bytes: RandID, PktNum)
//	      payload (opAccept only)
//
// Recovery replays the longest intact prefix. A torn tail — short header,
// implausible length, or CRC mismatch, exactly what a SIGKILL between
// write and sync leaves behind — is truncated away and counted, never
// fatal: losing the record being appended is the contract, losing the
// queue is not. When releases dominate the live set the log is compacted
// by rewriting only the live accepts through a temp file and rename, the
// same atomicity discipline the state file uses.
type Store struct {
	mu   sync.Mutex
	path string
	f    *os.File

	live      map[message.ID][]byte
	liveOrder []message.ID
	releases  int // release records in the current log generation

	stats StoreStats
}

// StoreStats is the store's observable accounting; BytesFsynced per
// message is the custody benchmark's headline figure.
type StoreStats struct {
	Appends       uint64
	BytesAppended uint64
	BytesFsynced  uint64
	Syncs         uint64
	Compactions   uint64
	TailTruncated uint64 // bytes discarded by torn-tail recovery
	Recovered     uint64 // live items reloaded at open
}

// Record ops.
const (
	opAccept  = 1
	opRelease = 2
)

// recordHeaderSize frames every record: length + CRC.
const recordHeaderSize = 8

// maxRecordBody bounds a single record body (op + id + payload); it
// mirrors the transport's payload cap with headroom.
const maxRecordBody = 64*1024 + 16

// compactMinReleases is the floor before a runtime compaction triggers.
const compactMinReleases = 64

// OpenStore opens (or creates) the custody log at path, recovers the live
// item set in admission order, and truncates any torn tail. The returned
// items feed Queue.Restore.
func OpenStore(path string) (*Store, []Item, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("custody: open %s: %w", path, err)
	}
	s := &Store{path: path, f: f, live: map[message.ID][]byte{}}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, nil, err
	}
	items := make([]Item, 0, len(s.liveOrder))
	for _, id := range s.liveOrder {
		items = append(items, Item{ID: id, Payload: s.live[id]})
	}
	s.stats.Recovered = uint64(len(items))
	// A log carrying releases or a torn tail is rewritten clean at boot,
	// so restart cost does not accumulate across crashes.
	if s.releases > 0 || s.stats.TailTruncated > 0 {
		if err := s.compactLocked(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return s, items, nil
}

// recover scans the log from the start, applying intact records and
// truncating at the first damaged one.
func (s *Store) recover() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("custody: %s: %w", s.path, err)
	}
	var off int64
	hdr := make([]byte, recordHeaderSize)
	for {
		n, err := io.ReadFull(s.f, hdr)
		if err == io.EOF {
			break
		}
		if err == io.ErrUnexpectedEOF {
			s.stats.TailTruncated += uint64(n)
			break
		}
		if err != nil {
			return fmt.Errorf("custody: %s: %w", s.path, err)
		}
		bodyLen := binary.BigEndian.Uint32(hdr[0:])
		crc := binary.BigEndian.Uint32(hdr[4:])
		if bodyLen < 9 || bodyLen > maxRecordBody {
			s.truncateTailAt(off)
			break
		}
		body := make([]byte, bodyLen)
		bn, err := io.ReadFull(s.f, body)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			s.stats.TailTruncated += uint64(recordHeaderSize + bn)
			s.setFileEnd(off)
			return nil
		}
		if err != nil {
			return fmt.Errorf("custody: %s: %w", s.path, err)
		}
		if crc32.ChecksumIEEE(body) != crc {
			s.truncateTailAt(off)
			break
		}
		id := message.ID{
			RandID: binary.BigEndian.Uint32(body[1:]),
			PktNum: binary.BigEndian.Uint32(body[5:]),
		}
		switch body[0] {
		case opAccept:
			if _, ok := s.live[id]; !ok {
				s.live[id] = body[9:]
				s.liveOrder = append(s.liveOrder, id)
			}
		case opRelease:
			if _, ok := s.live[id]; ok {
				delete(s.live, id)
				for i, oid := range s.liveOrder {
					if oid == id {
						s.liveOrder = append(s.liveOrder[:i], s.liveOrder[i+1:]...)
						break
					}
				}
			}
			s.releases++
		default:
			s.truncateTailAt(off)
			return nil
		}
		off += int64(recordHeaderSize) + int64(bodyLen)
	}
	s.setFileEnd(off)
	return nil
}

// truncateTailAt records how many bytes past off are being discarded.
func (s *Store) truncateTailAt(off int64) {
	if end, err := s.f.Seek(0, io.SeekEnd); err == nil && end > off {
		s.stats.TailTruncated += uint64(end - off)
	}
	s.setFileEnd(off)
}

// setFileEnd truncates the file to off and positions for appending.
func (s *Store) setFileEnd(off int64) {
	s.f.Truncate(off)
	s.f.Seek(off, io.SeekStart)
}

// encodeRecord frames one record.
func encodeRecord(op byte, id message.ID, payload []byte) []byte {
	body := make([]byte, 9+len(payload))
	body[0] = op
	binary.BigEndian.PutUint32(body[1:], id.RandID)
	binary.BigEndian.PutUint32(body[5:], id.PktNum)
	copy(body[9:], payload)
	rec := make([]byte, recordHeaderSize+len(body))
	binary.BigEndian.PutUint32(rec[0:], uint32(len(body)))
	binary.BigEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(body))
	copy(rec[recordHeaderSize:], body)
	return rec
}

// appendLocked writes one record and syncs it to disk.
func (s *Store) appendLocked(op byte, id message.ID, payload []byte) error {
	rec := encodeRecord(op, id, payload)
	if _, err := s.f.Write(rec); err != nil {
		return fmt.Errorf("custody: append %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("custody: sync %s: %w", s.path, err)
	}
	s.stats.Appends++
	s.stats.BytesAppended += uint64(len(rec))
	s.stats.BytesFsynced += uint64(len(rec))
	s.stats.Syncs++
	return nil
}

// JournalAccept durably records custody of (id, payload) (custody.Journal).
func (s *Store) JournalAccept(id message.ID, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(opAccept, id, payload); err != nil {
		return err
	}
	if _, ok := s.live[id]; !ok {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		s.live[id] = buf
		s.liveOrder = append(s.liveOrder, id)
	}
	return nil
}

// JournalRelease durably records the discharge of id (custody.Journal),
// compacting the log when releases dominate the live set.
func (s *Store) JournalRelease(id message.ID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(opRelease, id, nil); err != nil {
		return err
	}
	if _, ok := s.live[id]; ok {
		delete(s.live, id)
		for i, oid := range s.liveOrder {
			if oid == id {
				s.liveOrder = append(s.liveOrder[:i], s.liveOrder[i+1:]...)
				break
			}
		}
	}
	s.releases++
	if s.releases >= compactMinReleases && s.releases >= len(s.liveOrder) {
		return s.compactLocked()
	}
	return nil
}

// compactLocked rewrites the log with only the live accepts, through a
// temp file and rename so a crash mid-compaction leaves the old log.
func (s *Store) compactLocked() error {
	tmp := s.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("custody: compact %s: %w", s.path, err)
	}
	var written uint64
	for _, id := range s.liveOrder {
		rec := encodeRecord(opAccept, id, s.live[id])
		if _, err := tf.Write(rec); err != nil {
			tf.Close()
			os.Remove(tmp)
			return fmt.Errorf("custody: compact %s: %w", s.path, err)
		}
		written += uint64(len(rec))
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("custody: compact %s: %w", s.path, err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return fmt.Errorf("custody: compact %s: %w", s.path, err)
	}
	// Make the rename itself durable.
	if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
		dir.Sync()
		dir.Close()
	}
	old := s.f
	s.f = tf
	old.Close()
	s.releases = 0
	s.stats.Compactions++
	s.stats.BytesAppended += written
	s.stats.BytesFsynced += written
	s.stats.Syncs++
	return nil
}

// Stats snapshots the store accounting.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Live returns the number of live (unreleased) records.
func (s *Store) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.liveOrder)
}

// Close closes the log file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
