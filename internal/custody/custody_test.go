package custody

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"diffusion/internal/message"
)

func mid(n uint32) message.ID { return message.ID{RandID: 0xabc0, PktNum: n} }

func TestQueueAcceptReleaseDedup(t *testing.T) {
	q := NewQueue(4, nil)
	held, fresh := q.Accept(mid(1), []byte("a"))
	if !held || !fresh {
		t.Fatalf("first accept: held=%v fresh=%v", held, fresh)
	}
	held, fresh = q.Accept(mid(1), []byte("a"))
	if !held || fresh {
		t.Fatalf("duplicate accept: held=%v fresh=%v, want held, not fresh", held, fresh)
	}
	if !q.Release(mid(1)) {
		t.Fatal("release failed")
	}
	// A retransmitted offer after release is re-acknowledged, not
	// re-admitted: hop-by-hop transfer stays exactly-once.
	held, fresh = q.Accept(mid(1), []byte("a"))
	if !held || fresh {
		t.Fatalf("post-release accept: held=%v fresh=%v, want held, not fresh", held, fresh)
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", q.Len())
	}
	c := q.Counters()
	if c.Accepted != 1 || c.Released != 1 {
		t.Fatalf("counters = %+v, want 1 accepted, 1 released", c)
	}
}

func TestQueueAcceptOfferReholdsReleased(t *testing.T) {
	q := NewQueue(4, nil)
	q.Accept(mid(1), []byte("a"))
	q.Release(mid(1))
	// A link offer for released custody is re-admitted, not blind-acked:
	// the offerer discharges on our ack, so acking data we no longer hold
	// would drop it from the network when a walk revisits a prior holder.
	held, fresh := q.AcceptOffer(mid(1), []byte("a"))
	if !held || !fresh {
		t.Fatalf("offer of released id: held=%v fresh=%v, want re-admitted", held, fresh)
	}
	if !q.Has(mid(1)) {
		t.Fatal("released id not re-held after AcceptOffer")
	}
	// While held, a retransmitted offer is re-acked without re-admission,
	// same as Accept.
	if held, fresh := q.AcceptOffer(mid(1), []byte("a")); !held || fresh {
		t.Fatalf("duplicate offer: held=%v fresh=%v, want held, not fresh", held, fresh)
	}
	if c := q.Counters(); c.Accepted != 2 || c.Released != 1 {
		t.Fatalf("counters = %+v, want 2 accepted, 1 released", c)
	}
	// The released-memory entry was consumed: release and re-offer again
	// to prove the cycle is repeatable, then check plain Accept still
	// blind-acks what AcceptOffer would re-hold.
	q.Release(mid(1))
	if held, fresh := q.Accept(mid(1), []byte("a")); !held || fresh {
		t.Fatalf("plain accept of released id: held=%v fresh=%v, want held, not fresh", held, fresh)
	}
	if q.Has(mid(1)) {
		t.Fatal("plain Accept re-admitted a released id")
	}
}

func TestQueueAdmissionNeverEvictsCustody(t *testing.T) {
	q := NewQueue(2, nil)
	q.Accept(mid(1), []byte("a"))
	q.Accept(mid(2), []byte("b"))
	held, fresh := q.Accept(mid(3), []byte("c"))
	if held || fresh {
		t.Fatalf("over-limit accept: held=%v fresh=%v, want refused", held, fresh)
	}
	// The queued custodial data survives; the newcomer was shed.
	if !q.Has(mid(1)) || !q.Has(mid(2)) || q.Has(mid(3)) {
		t.Fatal("full queue evicted custodial data instead of shedding the newcomer")
	}
	if c := q.Counters(); c.Shed != 1 {
		t.Fatalf("shed = %d, want 1", c.Shed)
	}
	q.Release(mid(1))
	if held, fresh := q.Accept(mid(3), []byte("c")); !held || !fresh {
		t.Fatalf("accept after release: held=%v fresh=%v", held, fresh)
	}
}

func TestQueueItemsFIFO(t *testing.T) {
	q := NewQueue(8, nil)
	for i := uint32(1); i <= 5; i++ {
		q.Accept(mid(i), []byte{byte(i)})
	}
	q.Release(mid(2))
	items := q.Items()
	want := []uint32{1, 3, 4, 5}
	if len(items) != len(want) {
		t.Fatalf("items = %d, want %d", len(items), len(want))
	}
	for i, it := range items {
		if it.ID != mid(want[i]) {
			t.Fatalf("items[%d] = %v, want %v", i, it.ID, mid(want[i]))
		}
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custody.log")
	s, items, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("fresh store recovered %d items", len(items))
	}
	if err := s.JournalAccept(mid(1), []byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := s.JournalAccept(mid(2), []byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := s.JournalRelease(mid(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, items, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(items) != 1 || items[0].ID != mid(2) || !bytes.Equal(items[0].Payload, []byte("beta")) {
		t.Fatalf("recovered %+v, want just id 2 / beta", items)
	}
}

// TestStoreTornTailRecovery simulates a SIGKILL mid-append: the log ends
// in a partial record, which recovery must truncate away while keeping
// every fully synced record.
func TestStoreTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custody.log")
	s, _, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s.JournalAccept(mid(1), []byte("keep-one"))
	s.JournalAccept(mid(2), []byte("keep-two"))
	s.Close()

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		tail []byte
	}{
		{"partial-header", []byte{0x00, 0x00}},
		{"partial-body", encodeRecord(opAccept, mid(3), []byte("torn"))[:recordHeaderSize+4]},
		{"corrupt-crc", func() []byte {
			r := encodeRecord(opAccept, mid(3), []byte("torn"))
			r[len(r)-1] ^= 0xff
			return r
		}()},
		{"garbage", []byte("not a record at all, just garbage bytes")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "custody.log")
			if err := os.WriteFile(p, append(append([]byte{}, intact...), tc.tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			s, items, err := OpenStore(p)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s.Close()
			if len(items) != 2 || items[0].ID != mid(1) || items[1].ID != mid(2) {
				t.Fatalf("recovered %+v, want ids 1 and 2", items)
			}
			if s.Stats().TailTruncated == 0 {
				t.Fatal("recovery did not count the truncated tail")
			}
			// The store must be appendable after recovery.
			if err := s.JournalAccept(mid(4), []byte("after")); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestStoreReplayAfterCrashLoop drives accept/release/crash cycles and
// checks no synced accept is ever lost.
func TestStoreReplayAfterCrashLoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custody.log")
	expect := map[message.ID]bool{}
	for round := 0; round < 5; round++ {
		s, items, err := OpenStore(path)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := map[message.ID]bool{}
		for _, it := range items {
			got[it.ID] = true
		}
		for id := range expect {
			if !got[id] {
				t.Fatalf("round %d: synced item %v lost", round, id)
			}
		}
		id := mid(uint32(100 + round))
		s.JournalAccept(id, []byte(fmt.Sprintf("round-%d", round)))
		expect[id] = true
		if round%2 == 1 {
			rel := mid(uint32(100 + round - 1))
			s.JournalRelease(rel)
			delete(expect, rel)
		}
		// Simulate SIGKILL: append garbage to the file as a torn tail and
		// drop the handle without a clean close.
		f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		f.Write([]byte{0xde, 0xad})
		f.Close()
		s.Close()
	}
}

func TestStoreCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "custody.log")
	s, _, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 128)
	for i := uint32(0); i < compactMinReleases+8; i++ {
		s.JournalAccept(mid(i), payload)
		s.JournalRelease(mid(i))
	}
	s.JournalAccept(mid(9999), payload)
	if s.Stats().Compactions == 0 {
		t.Fatal("no compaction after releases dominated the log")
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Without compaction the log would hold every accept/release pair
	// (~12 KB here); compaction keeps it to the records since the last
	// rewrite.
	uncompacted := int64((compactMinReleases + 8) * (2*recordHeaderSize + 18 + len(payload)))
	if fi.Size() > uncompacted/2 {
		t.Fatalf("log is %d bytes after compaction (uncompacted would be ~%d)", fi.Size(), uncompacted)
	}
	s.Close()
	s2, items, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(items) != 1 || items[0].ID != mid(9999) {
		t.Fatalf("recovered %+v, want just id 9999", items)
	}
}

func TestQueueWithJournalRefusesOnAppendError(t *testing.T) {
	q := NewQueue(8, failingJournal{})
	if held, _ := q.Accept(mid(1), []byte("a")); held {
		t.Fatal("accept succeeded despite journal failure")
	}
	if q.Len() != 0 {
		t.Fatal("item admitted despite journal failure")
	}
}

type failingJournal struct{}

func (failingJournal) JournalAccept(message.ID, []byte) error {
	return fmt.Errorf("disk full")
}
func (failingJournal) JournalRelease(message.ID) error { return nil }

func TestQueueRestore(t *testing.T) {
	q := NewQueue(2, nil)
	q.Restore([]Item{
		{ID: mid(1), Payload: []byte("a")},
		{ID: mid(2), Payload: []byte("b")},
		{ID: mid(3), Payload: []byte("c")}, // beyond limit: shed
	})
	if q.Len() != 2 || !q.Has(mid(1)) || !q.Has(mid(2)) {
		t.Fatalf("restore: len=%d", q.Len())
	}
	c := q.Counters()
	if c.Restored != 2 || c.Shed != 1 || c.Accepted != 0 {
		t.Fatalf("counters = %+v", c)
	}
}
