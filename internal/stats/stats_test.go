package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty is 0")
	}
	if Mean([]float64{2, 4, 6}) != 4 {
		t.Error("mean of 2,4,6")
	}
	if Mean([]float64{-1, 1}) != 0 {
		t.Error("mean with negatives")
	}
}

func TestStdDev(t *testing.T) {
	if StdDev(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("stddev of <2 samples is 0")
	}
	// Known value: {2,4,4,4,5,5,7,9} has sample stddev ~2.138.
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.1381) > 1e-3 {
		t.Errorf("stddev = %v", got)
	}
	if StdDev([]float64{3, 3, 3}) != 0 {
		t.Error("constant sample has zero stddev")
	}
}

func TestTCritical(t *testing.T) {
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("df=0 must be infinite")
	}
	if math.Abs(TCritical95(4)-2.776) > 1e-9 {
		t.Error("df=4 critical value")
	}
	if TCritical95(1000) != 1.960 {
		t.Error("large df uses normal value")
	}
	// Critical values decrease with df.
	for df := 2; df < 40; df++ {
		if TCritical95(df) > TCritical95(df-1) {
			t.Fatalf("t-values must decrease with df at %d", df)
		}
	}
}

func TestSummarize(t *testing.T) {
	// Five repetitions, as in the paper's Figure 8 methodology.
	xs := []float64{10, 12, 11, 9, 13}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 11 {
		t.Errorf("summary: %+v", s)
	}
	// CI = t(4) * sd/sqrt(5) = 2.776 * 1.5811/2.2361 ≈ 1.963
	if math.Abs(s.CI95-1.963) > 0.01 {
		t.Errorf("CI95 = %v", s.CI95)
	}
	if math.Abs(s.Lo()-(11-s.CI95)) > 1e-12 || math.Abs(s.Hi()-(11+s.CI95)) > 1e-12 {
		t.Error("interval bounds")
	}
	if s.String() == "" {
		t.Error("String")
	}
}

func TestSummarizeSmall(t *testing.T) {
	s := Summarize([]float64{7})
	if s.CI95 != 0 || s.Mean != 7 {
		t.Errorf("single sample: %+v", s)
	}
	s = Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty: %+v", s)
	}
}

func TestOverlaps(t *testing.T) {
	a := Summarize([]float64{10, 10.1, 9.9, 10, 10})
	b := Summarize([]float64{10.05, 10.1, 10, 10.02, 9.98})
	c := Summarize([]float64{20, 20.1, 19.9, 20, 20})
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("near-identical samples should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("distant samples should not overlap")
	}
}

// Property: the CI of a constant sample is zero and contains the mean; CI
// shrinks as n grows for iid draws (statistically, via fixed seed).
func TestQuickCIProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(c float64, n uint8) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e300 {
			return true // summing huge constants legitimately overflows
		}
		k := int(n)%20 + 2
		xs := make([]float64, k)
		for i := range xs {
			xs[i] = c
		}
		s := Summarize(xs)
		return s.CI95 == 0 && s.Mean == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
	wide := make([]float64, 5)
	narrow := make([]float64, 50)
	src := rand.New(rand.NewSource(3))
	for i := range narrow {
		v := src.NormFloat64()
		if i < 5 {
			wide[i] = v
		}
		narrow[i] = v
	}
	if Summarize(narrow).CI95 >= Summarize(wide).CI95 {
		t.Error("more samples should narrow the interval")
	}
}
