// Package stats provides the small statistical toolkit the evaluation
// needs: means, standard deviations, and Student-t 95% confidence
// intervals over multi-seed experiment repetitions, matching the paper's
// methodology ("each point in this graph represents the mean of five
// 30-minute experiments with 95% confidence intervals").
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator). It
// returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// t95 holds two-sided 95% Student-t critical values indexed by degrees of
// freedom (1-based). Beyond the table the normal value 1.960 applies.
var t95 = []float64{
	0,      // unused (df=0)
	12.706, // df=1
	4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	switch {
	case df <= 0:
		return math.Inf(1)
	case df < len(t95):
		return t95[df]
	default:
		return 1.960
	}
}

// Summary describes a sample with its 95% confidence half-interval.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if s.N >= 2 {
		s.CI95 = TCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// String renders "mean ± ci (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.1f ± %.1f (n=%d)", s.Mean, s.CI95, s.N)
}

// Lo and Hi return the confidence interval bounds.
func (s Summary) Lo() float64 { return s.Mean - s.CI95 }

// Hi returns the upper bound of the 95% interval.
func (s Summary) Hi() float64 { return s.Mean + s.CI95 }

// Overlaps reports whether two summaries' 95% intervals overlap.
func (s Summary) Overlaps(o Summary) bool {
	return s.Lo() <= o.Hi() && o.Lo() <= s.Hi()
}
