// Package transport provides live link layers for the diffusion stack:
// implementations of core.Link that move marshalled diffusion messages
// between real processes (UDP, udp.go) or between in-process nodes on
// goroutines (Mesh, mesh.go), in contrast to internal/mac which models the
// paper's radio inside the simulator.
//
// Both transports share the same framing, neighbor-table broadcast
// semantics, per-packet telemetry accounting, and optional injected loss
// and latency — the latter so a live run can be parity-tested against the
// simulated radio's loss models (internal/radio) without real packet
// drops. Delivery is best effort and unordered, exactly the service the
// diffusion core was designed for: duplicate suppression, exploratory
// flooding and reinforcement already assume a lossy link.
//
// On top of that baseline the UDP endpoint offers two resilience options
// the paper's soft-state repair needs in real deployments:
//
//   - a heartbeat failure detector (liveness.go) that classifies each
//     neighbor alive → suspect → dead from frame arrivals and probe
//     responses, so the diffusion layer can stop using gradients toward
//     dead peers instead of waiting for them to age out; and
//   - reliable unicast (reliable.go): per-neighbor ack/retransmit with
//     capped exponential backoff, a bounded send queue with an
//     overload-shedding policy that drops exploratory/interest traffic
//     before reinforced data, and duplicate suppression on receive.
//
// A transport delivers received payloads through a Deliver callback from
// its own reader goroutine; callers that feed a single-threaded core.Node
// must post the upcall onto the node's rt.Loop. cmd/diffnode wires this
// up.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// Broadcast is the link-layer broadcast destination, aliased from the
// message package (the value core.Broadcast resolves to).
const Broadcast = uint32(message.Broadcast)

// Deliver is the reception upcall: one reassembled payload from a
// neighbor. Implementations call it from transport-owned goroutines; the
// payload is owned by the callee.
type Deliver func(from uint32, payload []byte)

// Frame layout: a fixed header in front of the diffusion payload.
//
//	byte  0     magic (frameMagic)
//	byte  1     version (frameVersion)
//	byte  2     kind (data, reliable data, ack, ping, pong, custody, custody ack)
//	bytes 3-6   sender link ID, big endian
//	bytes 7-10  destination link ID (Broadcast for floods), big endian
//	bytes 11-14 sender boot nonce (distinguishes process incarnations)
//	bytes 15-18 sequence number (reliable/heartbeat frames; 0 otherwise)
//	bytes 19-   diffusion message payload (data kinds only)
//
// The boot nonce lets a receiver detect that a neighbor restarted: the
// reliable-delivery duplicate window resets instead of black-holing the
// rebooted sender's restarted sequence space.
//
// Trace extension (optional): when bit 7 of the kind byte
// (kindTraceFlag) is set, three extension bytes follow the fixed header
// before the payload — a 16-bit flight-path flow ID (big endian) and the
// message's hop count — so the transport can stamp tx/recv spans without
// parsing diffusion payloads. Frames from pre-extension peers never set
// the bit and decode exactly as before; frames with the bit are decoded
// by pre-extension peers as an unknown kind and dropped, never
// misparsed.
const (
	frameMagic    = 0xD1
	frameVersion  = 2
	headerSize    = 19
	kindTraceFlag = 0x80
	traceExtSize  = 3
)

// Frame kinds.
const (
	kindData       = 0 // fire-and-forget diffusion payload
	kindReliable   = 1 // acked diffusion payload (reliable unicast)
	kindAck        = 2 // acknowledges a kindReliable seq
	kindPing       = 3 // heartbeat probe
	kindPong       = 4 // heartbeat response
	kindCustody    = 5 // custody offer: acked only after durable accept
	kindCustodyAck = 6 // acknowledges a kindCustody seq (custody.go)
	kindAnnounce   = 7 // membership announce: addresses, vocab digest, gossip (discovery.go)
	kindProbe      = 8 // membership probe: solicits a unicast announce
	kindLeave      = 9 // graceful departure: demote me now, don't wait for timeouts
	numKinds       = 10
)

// maxPayload bounds a single framed message; UDP datagrams beyond this are
// rejected at send time rather than silently truncated on the wire.
const maxPayload = 60 * 1024

// Frame errors.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrTooLarge    = fmt.Errorf("transport: payload exceeds %d bytes", maxPayload)
	errShortFrame  = errors.New("transport: short frame")
	errBadMagic    = errors.New("transport: bad magic")
	errBadVersion  = errors.New("transport: unsupported version")
	errBadKind     = errors.New("transport: unknown frame kind")
	errNotNeighbor = errors.New("transport: sender is not a configured neighbor")
)

// frame is one decoded transport header plus its payload.
type frame struct {
	kind    uint8
	from    uint32
	dst     uint32
	boot    uint32
	seq     uint32
	flow    uint16 // trace extension; 0 when absent
	hop     uint8
	payload []byte // aliases the receive buffer
}

// encodeFrame builds the wire form of one untraced frame.
func encodeFrame(kind uint8, from, dst, boot, seq uint32, payload []byte) []byte {
	return encodeFrameTraced(kind, from, dst, boot, seq, 0, 0, payload)
}

// encodeFrameTraced builds the wire form of one frame, appending the
// trace extension when flow is non-zero.
func encodeFrameTraced(kind uint8, from, dst, boot, seq uint32, flow uint16, hop uint8, payload []byte) []byte {
	ext := 0
	if flow != 0 {
		ext = traceExtSize
		kind |= kindTraceFlag
	}
	b := make([]byte, headerSize+ext+len(payload))
	b[0] = frameMagic
	b[1] = frameVersion
	b[2] = kind
	binary.BigEndian.PutUint32(b[3:], from)
	binary.BigEndian.PutUint32(b[7:], dst)
	binary.BigEndian.PutUint32(b[11:], boot)
	binary.BigEndian.PutUint32(b[15:], seq)
	if ext > 0 {
		binary.BigEndian.PutUint16(b[headerSize:], flow)
		b[headerSize+2] = hop
	}
	copy(b[headerSize+ext:], payload)
	return b
}

// decodeFrame validates the header and returns its fields. The returned
// payload aliases b.
func decodeFrame(b []byte) (frame, error) {
	if len(b) < headerSize {
		return frame{}, errShortFrame
	}
	if b[0] != frameMagic {
		return frame{}, errBadMagic
	}
	if b[1] != frameVersion {
		return frame{}, errBadVersion
	}
	if b[2]&^kindTraceFlag >= numKinds {
		return frame{}, errBadKind
	}
	f := frame{
		kind:    b[2] &^ kindTraceFlag,
		from:    binary.BigEndian.Uint32(b[3:]),
		dst:     binary.BigEndian.Uint32(b[7:]),
		boot:    binary.BigEndian.Uint32(b[11:]),
		seq:     binary.BigEndian.Uint32(b[15:]),
		payload: b[headerSize:],
	}
	if b[2]&kindTraceFlag != 0 {
		if len(b) < headerSize+traceExtSize {
			return frame{}, errShortFrame
		}
		f.flow = binary.BigEndian.Uint16(b[headerSize:])
		f.hop = b[headerSize+2]
		f.payload = b[headerSize+traceExtSize:]
	}
	return f, nil
}

// bootCounter makes boot nonces distinct within a process even when two
// endpoints start in the same nanosecond.
var bootCounter atomic.Uint32

// newBootNonce returns a nonce that differs across process incarnations
// (and across endpoints within one process). It deliberately does not use
// any configured seed: two runs of the same config must get different
// nonces, that is the point.
func newBootNonce() uint32 {
	return uint32(time.Now().UnixNano()) ^ (bootCounter.Add(1) << 20)
}

// Stats is the per-packet accounting both transports maintain. Fields are
// atomics because sends happen on the node's loop while receptions land on
// the transport's reader goroutine; the simulator's plain Stats structs
// rely on single-threadedness the live runtime does not have.
type Stats struct {
	Sent         atomic.Uint64 // datagrams handed to the medium
	SentBytes    atomic.Uint64
	Recv         atomic.Uint64 // well-formed datagrams delivered up
	RecvBytes    atomic.Uint64
	SendErrors   atomic.Uint64 // socket/medium write failures
	RecvDropped  atomic.Uint64 // malformed, unknown-sender or oversize
	LossInjected atomic.Uint64 // injected-loss discards
	QueueDrops   atomic.Uint64 // bounded-queue overflow discards

	// Heartbeat / failure-detector accounting (liveness.go).
	HeartbeatsSent atomic.Uint64 // pings + pongs written
	HeartbeatsRecv atomic.Uint64 // pings + pongs received
	PeerSuspects   atomic.Uint64 // alive → suspect transitions
	PeerDeaths     atomic.Uint64 // suspect → dead transitions
	PeerRecoveries atomic.Uint64 // suspect/dead → alive transitions
	RTTMicrosSum   atomic.Uint64 // sum of measured heartbeat RTTs
	RTTCount       atomic.Uint64

	// Reliable-unicast accounting (reliable.go).
	Retransmits   atomic.Uint64 // frames re-sent after an ack timeout
	AcksSent      atomic.Uint64
	AcksRecv      atomic.Uint64
	ReliableDrops atomic.Uint64 // frames abandoned after max retries
	DupSuppressed atomic.Uint64 // duplicate reliable frames not delivered

	// Custody-transfer accounting (custody.go).
	CustodySent        atomic.Uint64 // first transmissions of custody offers
	CustodyRetransmits atomic.Uint64 // offer retransmissions (incl. re-offers)
	CustodyAcksSent    atomic.Uint64 // durable accepts acknowledged
	CustodyAcksRecv    atomic.Uint64
	CustodyRejected    atomic.Uint64 // offers refused by Accept (queue full)

	// Partition accounting (runtime impairment, udp.go).
	PartitionDropped atomic.Uint64

	// Membership / discovery accounting (discovery.go).
	AnnouncesSent     atomic.Uint64
	AnnouncesRecv     atomic.Uint64
	ProbesSent        atomic.Uint64
	ProbesRecv        atomic.Uint64
	LeavesSent        atomic.Uint64
	LeavesRecv        atomic.Uint64
	GossipLearned     atomic.Uint64 // peers first learned from a gossip list
	MemberJoins       atomic.Uint64 // discovered peers promoted to neighbors
	MemberRejoins     atomic.Uint64 // boot-nonce changes on promoted peers
	MemberEvictions   atomic.Uint64 // neighbors displaced by the degree cap
	MemberDemotions   atomic.Uint64 // handshake failures / peer dropped us
	MemberDepartures  atomic.Uint64 // explicit leave frames honored
	MemberDeadRemoved atomic.Uint64 // discovered neighbors removed on death
	MemberQuarantined atomic.Uint64 // peers refused for vocabulary mismatch
}

// Instrument publishes the transport counters on reg at snapshot time,
// mirroring how the MAC and core layers instrument: the datagram paths
// keep bumping atomics and pay nothing string-keyed.
func (s *Stats) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("transport.sent", float64(s.Sent.Load()))
		emit("transport.sent_bytes", float64(s.SentBytes.Load()))
		emit("transport.recv", float64(s.Recv.Load()))
		emit("transport.recv_bytes", float64(s.RecvBytes.Load()))
		emit("transport.send_errors", float64(s.SendErrors.Load()))
		emit("transport.recv_dropped", float64(s.RecvDropped.Load()))
		emit("transport.loss_injected", float64(s.LossInjected.Load()))
		emit("transport.queue_drops", float64(s.QueueDrops.Load()))
		emit("transport.heartbeats_sent", float64(s.HeartbeatsSent.Load()))
		emit("transport.heartbeats_recv", float64(s.HeartbeatsRecv.Load()))
		emit("transport.peer_suspects", float64(s.PeerSuspects.Load()))
		emit("transport.peer_deaths", float64(s.PeerDeaths.Load()))
		emit("transport.peer_recoveries", float64(s.PeerRecoveries.Load()))
		if c := s.RTTCount.Load(); c > 0 {
			emit("transport.heartbeat_rtt_mean_us", float64(s.RTTMicrosSum.Load())/float64(c))
		} else {
			emit("transport.heartbeat_rtt_mean_us", 0)
		}
		emit("transport.retransmits", float64(s.Retransmits.Load()))
		emit("transport.acks_sent", float64(s.AcksSent.Load()))
		emit("transport.acks_recv", float64(s.AcksRecv.Load()))
		emit("transport.reliable_drops", float64(s.ReliableDrops.Load()))
		emit("transport.dup_suppressed", float64(s.DupSuppressed.Load()))
		emit("transport.custody_sent", float64(s.CustodySent.Load()))
		emit("transport.custody_retransmits", float64(s.CustodyRetransmits.Load()))
		emit("transport.custody_acks_sent", float64(s.CustodyAcksSent.Load()))
		emit("transport.custody_acks_recv", float64(s.CustodyAcksRecv.Load()))
		emit("transport.custody_rejected", float64(s.CustodyRejected.Load()))
		emit("transport.partition_dropped", float64(s.PartitionDropped.Load()))
		emit("discovery.announces_sent", float64(s.AnnouncesSent.Load()))
		emit("discovery.announces_recv", float64(s.AnnouncesRecv.Load()))
		emit("discovery.probes_sent", float64(s.ProbesSent.Load()))
		emit("discovery.probes_recv", float64(s.ProbesRecv.Load()))
		emit("discovery.leaves_sent", float64(s.LeavesSent.Load()))
		emit("discovery.leaves_recv", float64(s.LeavesRecv.Load()))
		emit("discovery.gossip_learned", float64(s.GossipLearned.Load()))
		emit("discovery.joins", float64(s.MemberJoins.Load()))
		emit("discovery.rejoins", float64(s.MemberRejoins.Load()))
		emit("discovery.evictions", float64(s.MemberEvictions.Load()))
		emit("discovery.demotions", float64(s.MemberDemotions.Load()))
		emit("discovery.departures", float64(s.MemberDepartures.Load()))
		emit("discovery.dead_removed", float64(s.MemberDeadRemoved.Load()))
		emit("discovery.quarantined", float64(s.MemberQuarantined.Load()))
	})
}

func (s *Stats) onSend(n int) {
	s.Sent.Add(1)
	s.SentBytes.Add(uint64(n))
}

func (s *Stats) onRecv(n int) {
	s.Recv.Add(1)
	s.RecvBytes.Add(uint64(n))
}
