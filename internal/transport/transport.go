// Package transport provides live link layers for the diffusion stack:
// implementations of core.Link that move marshalled diffusion messages
// between real processes (UDP, udp.go) or between in-process nodes on
// goroutines (Mesh, mesh.go), in contrast to internal/mac which models the
// paper's radio inside the simulator.
//
// Both transports share the same framing, neighbor-table broadcast
// semantics, per-packet telemetry accounting, and optional injected loss
// and latency — the latter so a live run can be parity-tested against the
// simulated radio's loss models (internal/radio) without real packet
// drops. Delivery is best effort and unordered, exactly the service the
// diffusion core was designed for: duplicate suppression, exploratory
// flooding and reinforcement already assume a lossy link.
//
// A transport delivers received payloads through a Deliver callback from
// its own reader goroutine; callers that feed a single-threaded core.Node
// must post the upcall onto the node's rt.Loop. cmd/diffnode wires this
// up.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// Broadcast is the link-layer broadcast destination, aliased from the
// message package (the value core.Broadcast resolves to).
const Broadcast = uint32(message.Broadcast)

// Deliver is the reception upcall: one reassembled payload from a
// neighbor. Implementations call it from transport-owned goroutines; the
// payload is owned by the callee.
type Deliver func(from uint32, payload []byte)

// Frame layout: a fixed header in front of the diffusion payload.
//
//	byte  0     magic (frameMagic)
//	byte  1     version (frameVersion)
//	bytes 2-5   sender link ID, big endian
//	bytes 6-9   destination link ID (Broadcast for floods), big endian
//	bytes 10-   diffusion message payload
const (
	frameMagic   = 0xD1
	frameVersion = 1
	headerSize   = 10
)

// maxPayload bounds a single framed message; UDP datagrams beyond this are
// rejected at send time rather than silently truncated on the wire.
const maxPayload = 60 * 1024

// Frame errors.
var (
	ErrClosed      = errors.New("transport: closed")
	ErrTooLarge    = fmt.Errorf("transport: payload exceeds %d bytes", maxPayload)
	errShortFrame  = errors.New("transport: short frame")
	errBadMagic    = errors.New("transport: bad magic")
	errBadVersion  = errors.New("transport: unsupported version")
	errNotNeighbor = errors.New("transport: sender is not a configured neighbor")
)

// encodeFrame prepends the transport header to payload.
func encodeFrame(from, dst uint32, payload []byte) []byte {
	b := make([]byte, headerSize+len(payload))
	b[0] = frameMagic
	b[1] = frameVersion
	binary.BigEndian.PutUint32(b[2:], from)
	binary.BigEndian.PutUint32(b[6:], dst)
	copy(b[headerSize:], payload)
	return b
}

// decodeFrame validates the header and returns its fields. The returned
// payload aliases b.
func decodeFrame(b []byte) (from, dst uint32, payload []byte, err error) {
	if len(b) < headerSize {
		return 0, 0, nil, errShortFrame
	}
	if b[0] != frameMagic {
		return 0, 0, nil, errBadMagic
	}
	if b[1] != frameVersion {
		return 0, 0, nil, errBadVersion
	}
	return binary.BigEndian.Uint32(b[2:]), binary.BigEndian.Uint32(b[6:]), b[headerSize:], nil
}

// Stats is the per-packet accounting both transports maintain. Fields are
// atomics because sends happen on the node's loop while receptions land on
// the transport's reader goroutine; the simulator's plain Stats structs
// rely on single-threadedness the live runtime does not have.
type Stats struct {
	Sent         atomic.Uint64 // datagrams handed to the medium
	SentBytes    atomic.Uint64
	Recv         atomic.Uint64 // well-formed datagrams delivered up
	RecvBytes    atomic.Uint64
	SendErrors   atomic.Uint64 // socket/medium write failures
	RecvDropped  atomic.Uint64 // malformed, unknown-sender or oversize
	LossInjected atomic.Uint64 // injected-loss discards
}

// Instrument publishes the transport counters on reg at snapshot time,
// mirroring how the MAC and core layers instrument: the datagram paths
// keep bumping atomics and pay nothing string-keyed.
func (s *Stats) Instrument(reg *telemetry.Registry) {
	reg.AddCollector(func(emit func(string, float64)) {
		emit("transport.sent", float64(s.Sent.Load()))
		emit("transport.sent_bytes", float64(s.SentBytes.Load()))
		emit("transport.recv", float64(s.Recv.Load()))
		emit("transport.recv_bytes", float64(s.RecvBytes.Load()))
		emit("transport.send_errors", float64(s.SendErrors.Load()))
		emit("transport.recv_dropped", float64(s.RecvDropped.Load()))
		emit("transport.loss_injected", float64(s.LossInjected.Load()))
	})
}

func (s *Stats) onSend(n int) {
	s.Sent.Add(1)
	s.SentBytes.Add(uint64(n))
}

func (s *Stats) onRecv(n int) {
	s.Recv.Add(1)
	s.RecvBytes.Add(uint64(n))
}
