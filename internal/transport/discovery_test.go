package transport

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"diffusion/internal/message"
)

// Discovery tests drive the membership engine two ways: raw-socket fake
// peers craft exact frames (boot nonces, digests, peering bits) to pin
// down the protocol state machine, and small all-real-endpoint meshes
// prove gossip, probing and the two-way handshake compose end to end.

var testVocab = VocabDigest([]string{"class", "temperature", "seq"})

// memberLog records OnMember callbacks as "peer:event" strings.
type memberLog struct {
	mu  sync.Mutex
	evs []string
}

func (l *memberLog) on(peer uint32, ev MemberEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, fmt.Sprintf("%d:%s", peer, ev))
}

func (l *memberLog) has(want string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, e := range l.evs {
		if e == want {
			return true
		}
	}
	return false
}

// discoEndpoint builds a discovery-enabled endpoint with fast timers.
func discoEndpoint(t *testing.T, id uint32, disco DiscoveryConfig, mod func(*UDPConfig)) (*UDP, *memberLog) {
	t.Helper()
	log := &memberLog{}
	if disco.Interval == 0 {
		disco.Interval = 40 * time.Millisecond
	}
	if disco.VocabDigest == 0 {
		disco.VocabDigest = testVocab
	}
	if disco.OnMember == nil {
		disco.OnMember = log.on
	}
	cfg := UDPConfig{
		ID:     id,
		Listen: "127.0.0.1:0",
		Seed:   int64(id),
		Deliver: func(uint32, []byte) {
		},
		Liveness:  &LivenessConfig{Interval: 25 * time.Millisecond},
		Discovery: &disco,
	}
	if mod != nil {
		mod(&cfg)
	}
	u, err := ListenUDP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { u.Close() })
	return u, log
}

// memberOf finds one row of the endpoint's membership view.
func memberOf(u *UDP, id uint32) (Member, bool) {
	for _, m := range u.Members() {
		if m.ID == id {
			return m, true
		}
	}
	return Member{}, false
}

// fakePeer is a raw UDP socket speaking hand-crafted v2 frames.
type fakePeer struct {
	t    *testing.T
	id   uint32
	boot uint32
	conn *net.UDPConn
}

func newFakePeer(t *testing.T, id, boot uint32) *fakePeer {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &fakePeer{t: t, id: id, boot: boot, conn: conn}
}

func (p *fakePeer) addr() string { return p.conn.LocalAddr().String() }

func (p *fakePeer) send(to *net.UDPAddr, kind uint8, payload []byte) {
	p.t.Helper()
	if _, err := p.conn.WriteToUDP(encodeFrame(kind, p.id, Broadcast, p.boot, 0, payload), to); err != nil {
		p.t.Fatal(err)
	}
}

// announce sends an announce with this peer's own address, the test
// vocabulary digest unless overridden, and the given peering bit.
func (p *fakePeer) announce(to *net.UDPAddr, peered bool, digest uint64, gossip ...gossipEntry) {
	p.t.Helper()
	var flags byte
	if peered {
		flags |= annFlagPeered
	}
	p.announceFlags(to, flags, digest, gossip...)
}

// announceFlags is announce with the raw flags byte exposed.
func (p *fakePeer) announceFlags(to *net.UDPAddr, flags byte, digest uint64, gossip ...gossipEntry) {
	p.t.Helper()
	a := announce{flags: flags, digest: digest, httpPort: 8080, energy: 1000, addr: p.addr(), gossip: gossip}
	p.send(to, kindAnnounce, encodeAnnounce(a))
}

// expectKind reads frames until one of the wanted kind arrives (true) or
// the deadline passes (false).
func (p *fakePeer) expectKind(kind uint8, timeout time.Duration) (frame, bool) {
	p.t.Helper()
	buf := make([]byte, maxPayload+headerSize+traceExtSize)
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		p.conn.SetReadDeadline(deadline)
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			return frame{}, false
		}
		f, err := decodeFrame(buf[:n])
		if err != nil {
			continue
		}
		if f.kind == kind {
			// The payload aliases buf; copy so callers can keep it.
			cp := make([]byte, len(f.payload))
			copy(cp, f.payload)
			f.payload = cp
			return f, true
		}
	}
	return frame{}, false
}

func TestVocabDigest(t *testing.T) {
	a := VocabDigest([]string{"class", "type"})
	if a != VocabDigest([]string{"class", "type"}) {
		t.Error("digest not deterministic")
	}
	if a == VocabDigest([]string{"type", "class"}) {
		t.Error("digest must be order-sensitive: keys are numbered by registration order")
	}
	if VocabDigest([]string{"ab"}) == VocabDigest([]string{"a", "b"}) {
		t.Error("digest must separate key boundaries")
	}
}

func TestClusterScore(t *testing.T) {
	if clusterScore(7, 42) != clusterScore(7, 42) {
		t.Error("score not deterministic")
	}
	if clusterScore(7, 42) == clusterScore(7, 43) {
		t.Error("score must rotate with the boot nonce")
	}
	if clusterScore(7, 42) == clusterScore(8, 42) {
		t.Error("score must vary with the node ID")
	}
}

func TestAnnounceCodecRoundTrip(t *testing.T) {
	in := announce{
		flags:    annFlagPeered,
		digest:   0xDEADBEEFCAFE1234,
		httpPort: 8443,
		energy:   750,
		addr:     "127.0.0.1:7001",
		gossip: []gossipEntry{
			{id: 9, addr: "127.0.0.1:7009"},
			{id: 11, addr: "10.0.0.2:7011"},
		},
	}
	out, err := decodeAnnounce(encodeAnnounce(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.flags != in.flags || out.digest != in.digest || out.httpPort != in.httpPort ||
		out.energy != in.energy || out.addr != in.addr || len(out.gossip) != 2 ||
		out.gossip[0] != in.gossip[0] || out.gossip[1] != in.gossip[1] {
		t.Errorf("round trip mismatch: %+v != %+v", out, in)
	}

	if _, err := decodeAnnounce(nil); err == nil {
		t.Error("empty payload must not decode")
	}
	enc := encodeAnnounce(in)
	enc[0] = 99
	if _, err := decodeAnnounce(enc); err == nil {
		t.Error("unknown codec version must not decode")
	}
	enc[0] = discoVersion
	if _, err := decodeAnnounce(enc[:len(enc)-3]); err == nil {
		t.Error("truncated gossip must not decode")
	}
}

func TestDiscoveryPromotesAnnouncingPeer(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	x := newFakePeer(t, 2, 7)

	x.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")
	if !log.has("2:joined") {
		t.Errorf("missing joined event, got %v", log.evs)
	}
	m, _ := memberOf(u, 2)
	if m.Origin != "discovered" {
		t.Errorf("origin = %q, want discovered", m.Origin)
	}
	if m.HTTPAddr != "127.0.0.1:8080" {
		t.Errorf("http addr = %q", m.HTTPAddr)
	}
	if m.Score != clusterScore(2, 7) {
		t.Errorf("score = %d, want clusterScore(2,7)", m.Score)
	}
	if !m.HasHealth {
		t.Error("promoted peer must be tracked by the failure detector")
	}

	// The promotion announce must carry the peering bit — that is the
	// handshake completing from our side.
	f, ok := x.expectKind(kindAnnounce, 2*time.Second)
	if !ok {
		t.Fatal("no announce reply")
	}
	a, err := decodeAnnounce(f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if a.flags&annFlagPeered == 0 {
		t.Error("promotion announce must set the peering bit")
	}

	// Completing the handshake from the peer's side marks it peered.
	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Peered
	}, "handshake completion")
}

func TestDiscoveryQuarantineOnVocabMismatch(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	x := newFakePeer(t, 2, 7)

	x.announce(u.LocalAddr(), false, testVocab+1)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "quarantined"
	}, "peer 2 quarantined")
	if !log.has("2:quarantined") {
		t.Errorf("missing quarantined event, got %v", log.evs)
	}
	if got := u.Stats().MemberQuarantined.Load(); got == 0 {
		t.Error("quarantine counter not bumped")
	}
	// The reply lets the mismatched peer quarantine us symmetrically.
	if _, ok := x.expectKind(kindAnnounce, 2*time.Second); !ok {
		t.Fatal("quarantined peer must still get an announce reply")
	}
	if health := u.PeerHealth(); len(health) != 0 {
		t.Errorf("quarantined peer must not reach the detector: %v", health)
	}

	// A restart with the fixed vocabulary clears the quarantine.
	x.boot = 8
	x.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 rehabilitated")
}

func TestDiscoveryDegreeCapEviction(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{DegreeCap: 1}, nil)
	weak, strong := newFakePeer(t, 2, 7), newFakePeer(t, 3, 7)
	if better(
		&discoRec{id: weak.id, score: clusterScore(weak.id, weak.boot), energy: 1000},
		&discoRec{id: strong.id, score: clusterScore(strong.id, strong.boot), energy: 1000},
	) {
		weak, strong = strong, weak
	}

	weak.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, weak.id)
		return ok && m.Membership == "neighbor"
	}, "weak peer promoted into the free slot")

	// A better-scored peer displaces it; the cap holds at 1.
	strong.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		s, ok1 := memberOf(u, strong.id)
		w, ok2 := memberOf(u, weak.id)
		return ok1 && ok2 && s.Membership == "neighbor" && w.Membership == "candidate"
	}, "strong peer evicts weak")
	if !log.has(fmt.Sprintf("%d:evicted", weak.id)) {
		t.Errorf("missing evicted event, got %v", log.evs)
	}
	if len(u.Neighbors()) != 1 {
		t.Errorf("degree cap violated: table %v", u.Neighbors())
	}
	// The evictee is told immediately (announce without the peering bit).
	// Earlier announces from its promotion still sit in the socket buffer,
	// so drain until the bit-clear one arrives.
	deadline := time.Now().Add(2 * time.Second)
	notified := false
	for !notified && time.Now().Before(deadline) {
		f, ok := weak.expectKind(kindAnnounce, time.Until(deadline))
		if !ok {
			break
		}
		if a, err := decodeAnnounce(f.payload); err == nil && a.flags&annFlagPeered == 0 {
			notified = true
		}
	}
	if !notified {
		t.Error("evictee never got a peering-bit-clear announce")
	}

	// The weak peer announcing again does not displace the strong one.
	weak.announce(u.LocalAddr(), true, testVocab)
	time.Sleep(150 * time.Millisecond)
	if m, _ := memberOf(u, strong.id); m.Membership != "neighbor" {
		t.Error("weaker peer displaced a stronger neighbor")
	}
}

// TestDiscoveryLonelyRescue: pure score preference starves the globally
// weakest node once the mesh saturates (at n = cap+2 the top cap+1 nodes
// form a full clique and the bottom one is isolated forever). An
// announce carrying the loneliness flag must be admitted even though its
// score beats nobody, and the rescued slot must be protected so a
// stronger peer cannot score its way back in and re-isolate it.
func TestDiscoveryLonelyRescue(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{DegreeCap: 1}, nil)
	weak, strong := newFakePeer(t, 2, 7), newFakePeer(t, 3, 7)
	if better(
		&discoRec{id: weak.id, score: clusterScore(weak.id, weak.boot), energy: 1000},
		&discoRec{id: strong.id, score: clusterScore(strong.id, strong.boot), energy: 1000},
	) {
		weak, strong = strong, weak
	}

	strong.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, strong.id)
		return ok && m.Membership == "neighbor"
	}, "strong peer promoted into the free slot")

	// Without the flag the weaker peer loses on score and stays out.
	weak.announce(u.LocalAddr(), true, testVocab)
	time.Sleep(150 * time.Millisecond)
	if m, _ := memberOf(u, weak.id); m.Membership == "neighbor" {
		t.Fatal("weaker peer displaced a stronger neighbor without the loneliness flag")
	}

	// The loneliness flag overrides the score order: weak is admitted and
	// the stronger occupant is evicted.
	weak.announceFlags(u.LocalAddr(), annFlagPeered|annFlagLonely, testVocab)
	waitFor(t, func() bool {
		w, ok1 := memberOf(u, weak.id)
		s, ok2 := memberOf(u, strong.id)
		return ok1 && ok2 && w.Membership == "neighbor" && s.Membership != "neighbor"
	}, "lonely peer admitted over the score order")
	if !log.has(fmt.Sprintf("%d:joined", weak.id)) || !log.has(fmt.Sprintf("%d:evicted", strong.id)) {
		t.Errorf("missing join/evict events, got %v", log.evs)
	}

	// The rescued slot is protected: the stronger peer's re-announce must
	// not evict the lonely-admitted neighbor.
	strong.announce(u.LocalAddr(), true, testVocab)
	time.Sleep(150 * time.Millisecond)
	if m, _ := memberOf(u, weak.id); m.Membership != "neighbor" {
		t.Error("score eviction re-isolated the lonely-admitted neighbor")
	}
	if m, _ := memberOf(u, strong.id); m.Membership == "neighbor" {
		t.Error("degree cap violated: both peers promoted")
	}
}

func TestDiscoveryHandshakeTimeoutDemotes(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	x := newFakePeer(t, 2, 7)

	// X announces but never sets the peering bit (it is full elsewhere):
	// the one-way slot must be reclaimed after three announce intervals.
	x.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "candidate"
	}, "one-way peer demoted")
	if !log.has("2:demoted") {
		t.Errorf("missing demoted event, got %v", log.evs)
	}
}

// TestHandshakeBackoffEscalation pins the damping schedule: 5 intervals
// after the first failed handshake, doubling per failure, then jumping
// to the quiescent ceiling after courtshipQuiesceAfter straight
// failures — a saturated peer is left alone until it courts us itself.
func TestHandshakeBackoffEscalation(t *testing.T) {
	d := &discovery{cfg: DiscoveryConfig{Interval: time.Millisecond}}
	r := &discoRec{}
	for i, want := range []time.Duration{5, 10, 20, 5 << 10, 5 << 10} {
		if got := d.handshakeBackoffLocked(r); got != want*time.Millisecond {
			t.Errorf("failure %d: delay %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

// TestDiscoveryHandshakeBackoff drives the courtship damping end to end:
// a failed handshake notifies the peer with a bit-clear announce and
// opens a retry window during which unpeered announces cannot re-promote;
// a reciprocating announce bypasses the window and completes the link.
func TestDiscoveryHandshakeBackoff(t *testing.T) {
	u, _ := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	x := newFakePeer(t, 2, 7)

	x.announce(u.LocalAddr(), false, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "candidate"
	}, "one-way peer demoted")

	// The demote is announced to the peer with the peering bit cleared so
	// it can free its own slot without waiting out its failure detector.
	sawClear := false
	for !sawClear {
		f, ok := x.expectKind(kindAnnounce, time.Second)
		if !ok {
			t.Fatal("no bit-clear announce after the handshake demote")
		}
		if a, err := decodeAnnounce(f.payload); err == nil && a.flags&annFlagPeered == 0 {
			sawClear = true
		}
	}

	// Inside the retry window an unpeered announce must not re-promote —
	// that repeat courtship is exactly what the backoff damps.
	x.announce(u.LocalAddr(), false, testVocab)
	time.Sleep(100 * time.Millisecond) // window is 5 announce intervals (200ms)
	if m, _ := memberOf(u, 2); m.Membership != "candidate" {
		t.Fatalf("unpeered announce re-promoted inside the retry window: %s", m.Membership)
	}

	// A reciprocating announce completes the handshake immediately: the
	// peer holds a slot for us, so the damping no longer applies.
	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor" && m.Peered
	}, "reciprocating announce promoted through the retry window")
}

func TestDiscoveryLeaveDemotes(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	x := newFakePeer(t, 2, 7)

	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")

	x.send(u.LocalAddr(), kindLeave, nil)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "left"
	}, "peer 2 left")
	if !log.has("2:left") {
		t.Errorf("missing left event, got %v", log.evs)
	}
	if health := u.PeerHealth(); len(health) != 0 {
		t.Errorf("departed peer still tracked by the detector: %v", health)
	}
}

// TestDiscoveryChurnToRemoval walks a discovered peer through the full
// liveness lifecycle: promoted → suspect → dead → removed from the table,
// then re-announced under a new boot nonce as a fresh incarnation.
func TestDiscoveryChurnToRemoval(t *testing.T) {
	var states struct {
		mu  sync.Mutex
		seq []PeerState
	}
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, func(cfg *UDPConfig) {
		cfg.Liveness = &LivenessConfig{
			Interval:     20 * time.Millisecond,
			SuspectAfter: 60 * time.Millisecond,
			DeadAfter:    140 * time.Millisecond,
			OnStateChange: func(peer uint32, s PeerState) {
				states.mu.Lock()
				states.seq = append(states.seq, s)
				states.mu.Unlock()
			},
		}
	})
	x := newFakePeer(t, 2, 7)

	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")

	// Silence: the detector must walk it through suspect to dead, and
	// discovery must then remove it from the live table.
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "dead"
	}, "silent peer removed as dead")
	states.mu.Lock()
	seq := append([]PeerState(nil), states.seq...)
	states.mu.Unlock()
	sawSuspect, sawDead := false, false
	for _, s := range seq {
		if s == PeerSuspect {
			sawSuspect = true
		}
		if s == PeerDead && sawSuspect {
			sawDead = true
		}
	}
	if !sawDead {
		t.Errorf("liveness transitions missing suspect→dead: %v", seq)
	}
	if !log.has("2:dead") {
		t.Errorf("missing dead event, got %v", log.evs)
	}
	if len(u.Neighbors()) != 0 {
		t.Errorf("dead peer still in the table: %v", u.Neighbors())
	}
	if health := u.PeerHealth(); len(health) != 0 {
		t.Errorf("dead peer still probed: %v", health)
	}

	// A new incarnation re-announces and walks back in as a fresh peer.
	x.boot = 8
	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor" && m.HasHealth && m.Health.State == PeerAlive
	}, "new incarnation promoted")
	if m, _ := memberOf(u, 2); m.Score != clusterScore(2, 8) {
		t.Error("score must be recomputed for the new boot nonce")
	}
}

// TestDiscoveryRebootClearsRetransmitState pins the no-stale-state
// guarantee: a promoted peer re-announcing under a new boot nonce must
// not inherit pending reliable retransmissions or custody offers aimed at
// its previous incarnation.
func TestDiscoveryRebootClearsRetransmitState(t *testing.T) {
	u, log := discoEndpoint(t, 1, DiscoveryConfig{}, func(cfg *UDPConfig) {
		// Huge RTOs: nothing retires on its own during the test.
		cfg.Reliable = &ReliableConfig{RTO: time.Hour, MaxRTO: time.Hour}
		cfg.Custody = &CustodyOptions{
			RTO: time.Hour, MaxRTO: time.Hour,
			Accept:  func(uint32, message.ID, []byte) (bool, bool) { return true, true },
			Release: func(uint32, message.ID) {},
		}
	})
	x := newFakePeer(t, 2, 1)

	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool {
		m, ok := memberOf(u, 2)
		return ok && m.Membership == "neighbor"
	}, "peer 2 promoted")

	// One unacked reliable frame and one unacked custody offer in flight
	// toward incarnation 1 (the fake peer never acks anything).
	if err := u.Send(2, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := u.SendCustody(2, message.ID{RandID: 42}, []byte("custody")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return u.rel.pending(2) == 1 && u.CustodyPending() == 1 }, "in-flight state")

	// New incarnation announces: both must be dropped, not retransmitted
	// into the reset sequence space.
	x.boot = 2
	x.announce(u.LocalAddr(), true, testVocab)
	waitFor(t, func() bool { return u.rel.pending(2) == 0 && u.CustodyPending() == 0 },
		"stale retransmit state dropped on boot change")
	if !log.has("2:rejoined") {
		t.Errorf("missing rejoined event, got %v", log.evs)
	}
	if m, _ := memberOf(u, 2); m.Membership != "neighbor" {
		t.Error("rejoined peer must stay a neighbor")
	}
}

// TestDiscoveryGossipMesh proves the full bootstrap path with real
// endpoints: two nodes seeded only with a third find each other through
// its gossip, probe, handshake, and end up mutually promoted; a graceful
// Leave then demotes everywhere without waiting for timeouts.
func TestDiscoveryGossipMesh(t *testing.T) {
	seed, _ := discoEndpoint(t, 1, DiscoveryConfig{}, nil)
	seedAddr := seed.LocalAddr().String()
	b, _ := discoEndpoint(t, 2, DiscoveryConfig{Seeds: []string{seedAddr}}, nil)
	c, _ := discoEndpoint(t, 3, DiscoveryConfig{Seeds: []string{seedAddr}}, nil)

	mutual := func(x *UDP, id uint32) bool {
		m, ok := memberOf(x, id)
		return ok && m.Membership == "neighbor" && m.Peered
	}
	waitFor(t, func() bool {
		return mutual(seed, 2) && mutual(seed, 3) && mutual(b, 1) && mutual(c, 1) &&
			mutual(b, 3) && mutual(c, 2) // via the seed's gossip
	}, "three-node mesh fully meshed through one seed")
	if got := b.Stats().GossipLearned.Load() + c.Stats().GossipLearned.Load(); got == 0 {
		t.Error("b and c must have learned each other from gossip")
	}

	c.Leave()
	waitFor(t, func() bool {
		mb, okb := memberOf(b, 3)
		ms, oks := memberOf(seed, 3)
		return okb && oks && mb.Membership == "left" && ms.Membership == "left"
	}, "graceful leave demoted everywhere")
}

// TestDiscoverySaturationQuiesce reproduces the DESIGN.md §10 saturation
// case: n = cap + 2 at degree cap 8, so the regular graph cannot fit
// everyone at full degree and at least one node converges sub-cap next
// to a saturated clique. Before the courtship quiesce ceiling that node
// re-courted its full peers forever — the damped candidate record
// expired after ten quiet intervals, gossip re-taught it with a fresh
// backoff counter, and discovery.demotions grew without bound. The fix
// must make the mesh go quiet: after convergence the fleet-wide demotion
// total has to stop growing and stay stopped.
func TestDiscoverySaturationQuiesce(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second saturation soak skipped in -short mode")
	}
	const (
		n        = 10
		cap      = 8
		interval = 20 * time.Millisecond
	)
	nodes := make([]*UDP, 0, n)
	defer func() {
		for _, u := range nodes {
			u.Close()
		}
	}()
	mk := func(id uint32, seeds []string) *UDP {
		u, err := ListenUDP(UDPConfig{
			ID:       id,
			Listen:   "127.0.0.1:0",
			Seed:     int64(id),
			Deliver:  func(uint32, []byte) {},
			Liveness: &LivenessConfig{Interval: 50 * time.Millisecond},
			Discovery: &DiscoveryConfig{
				Seeds:       seeds,
				Interval:    interval,
				DegreeCap:   cap,
				VocabDigest: testVocab,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	seed := mk(1, nil)
	nodes = append(nodes, seed)
	seedAddr := []string{seed.LocalAddr().String()}
	for id := 2; id <= n; id++ {
		nodes = append(nodes, mk(uint32(id), seedAddr))
	}

	converged := func() bool {
		for _, u := range nodes {
			ok := false
			for _, m := range u.Members() {
				if m.MembershipCode == MembershipNeighbor && m.Peered {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(30 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			t.Fatal("saturated mesh did not converge in 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}

	demotions := func() uint64 {
		var total uint64
		for _, u := range nodes {
			total += u.Stats().MemberDemotions.Load()
		}
		return total
	}
	// Quiescence: no demotion anywhere for 4 full seconds (200 announce
	// intervals — pre-fix the churn loop demoted roughly every dozen
	// intervals per courting pair, so a window this long cannot happen by
	// luck). Allow up to 45s for the escalating schedule to play out.
	last, lastChange := demotions(), time.Now()
	soak := time.Now().Add(45 * time.Second)
	for {
		time.Sleep(100 * time.Millisecond)
		if now, cur := time.Now(), demotions(); cur != last {
			last, lastChange = cur, now
		} else if now.Sub(lastChange) >= 4*time.Second {
			break
		}
		if time.Now().After(soak) {
			t.Fatalf("demotions never quiesced: total %d still growing after 45s", last)
		}
	}
	t.Logf("saturated n=%d cap=%d mesh quiesced at %d total demotions", n, cap, last)
}
