package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// defaultMeshQueue bounds each link's delivery queue when Mesh.QueueLimit
// is zero.
const defaultMeshQueue = 256

// Mesh is the in-process transport: a set of nodes connected by an
// explicit adjacency graph, with deliveries queued to a per-link bounded
// queue and handed to the receiver's Deliver callback from one delivery
// goroutine per link (optionally delayed and dropped). It gives
// live-runtime tests the multi-goroutine concurrency shape of the UDP
// path — every node on its own rt.Loop, deliveries crossing goroutines —
// without sockets, so a whole cluster runs in one test process.
//
// The bounded queue matches the UDP endpoint's accounting: when a
// receiver falls behind and its queue overflows, the overflowing frame is
// dropped and counted in the receiver's Stats.QueueDrops, instead of the
// mesh spawning an unbounded goroutine (or growing an unbounded buffer)
// per delivery. Call Close to stop the delivery goroutines.
type Mesh struct {
	mu     sync.Mutex
	links  map[uint32]*MeshLink
	adj    map[uint32]map[uint32]bool
	rng    *rand.Rand
	closed bool

	// Latency delays every delivery by this much before it is queued to
	// the receiver (zero = queued immediately).
	Latency time.Duration
	// Loss drops each delivery independently with this probability.
	Loss float64
	// QueueLimit bounds each link's delivery queue (0 = defaultMeshQueue).
	// Set it before the first Attach.
	QueueLimit int
}

// NewMesh returns an empty mesh; seed drives the loss stream.
func NewMesh(seed int64) *Mesh {
	return &Mesh{
		links: map[uint32]*MeshLink{},
		adj:   map[uint32]map[uint32]bool{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Attach adds a node, starts its delivery goroutine, and returns its
// link. Attaching an existing ID panics (test-configuration error).
func (m *Mesh) Attach(id uint32, deliver Deliver) *MeshLink {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.links[id]; dup {
		panic(fmt.Sprintf("transport: mesh node %d attached twice", id))
	}
	limit := m.QueueLimit
	if limit <= 0 {
		limit = defaultMeshQueue
	}
	l := &MeshLink{
		mesh:    m,
		id:      id,
		deliver: deliver,
		queue:   make(chan meshPacket, limit),
		done:    make(chan struct{}),
	}
	m.links[id] = l
	if m.adj[id] == nil {
		m.adj[id] = map[uint32]bool{}
	}
	go l.run()
	return l
}

// Connect makes a and b bidirectional neighbors.
func (m *Mesh) Connect(a, b uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.adj[a] == nil {
		m.adj[a] = map[uint32]bool{}
	}
	if m.adj[b] == nil {
		m.adj[b] = map[uint32]bool{}
	}
	m.adj[a][b] = true
	m.adj[b][a] = true
}

// Line connects ids into a chain in order.
func (m *Mesh) Line(ids ...uint32) {
	for i := 1; i < len(ids); i++ {
		m.Connect(ids[i-1], ids[i])
	}
}

// Close stops every link's delivery goroutine and waits for them to
// drain. Sends after Close are dropped silently (the medium is gone).
func (m *Mesh) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	links := make([]*MeshLink, 0, len(m.links))
	for _, l := range m.links {
		links = append(links, l)
	}
	m.mu.Unlock()
	for _, l := range links {
		close(l.queue)
		<-l.done
	}
}

// meshPacket is one queued delivery.
type meshPacket struct {
	from uint32
	data []byte
}

// MeshLink is one node's core.Link on a Mesh.
type MeshLink struct {
	mesh    *Mesh
	id      uint32
	deliver Deliver
	stats   Stats
	queue   chan meshPacket
	done    chan struct{}
}

// ID returns the node's link-layer identifier (core.Link).
func (l *MeshLink) ID() uint32 { return l.id }

// Stats returns the link's packet accounting.
func (l *MeshLink) Stats() *Stats { return &l.stats }

// run is the link's delivery goroutine: it drains the bounded queue into
// the Deliver callback until Close.
func (l *MeshLink) run() {
	defer close(l.done)
	for pkt := range l.queue {
		l.stats.onRecv(headerSize + len(pkt.data))
		if l.deliver != nil {
			l.deliver(pkt.from, pkt.data)
		}
	}
}

// enqueue puts one delivery on the link's bounded queue, counting an
// overflow drop when the receiver has fallen behind. The mesh lock makes
// the closed check and the channel send atomic with respect to Close.
func (l *MeshLink) enqueue(from uint32, data []byte) {
	m := l.mesh
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	select {
	case l.queue <- meshPacket{from: from, data: data}:
	default:
		l.stats.QueueDrops.Add(1)
	}
}

// Send delivers payload to dst (a neighbor or Broadcast), applying the
// mesh's loss and latency (core.Link). Each receiver gets its own copy.
func (l *MeshLink) Send(dst uint32, payload []byte) error {
	if len(payload) > maxPayload {
		l.stats.SendErrors.Add(1)
		return ErrTooLarge
	}
	m := l.mesh
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	if dst != Broadcast && !m.adj[l.id][dst] {
		// Match the UDP transport: unicast to a non-neighbor is an error
		// the diffusion layer counts as a link send failure.
		m.mu.Unlock()
		l.stats.SendErrors.Add(1)
		return fmt.Errorf("transport: %d is not a neighbor of %d", dst, l.id)
	}
	var targets []*MeshLink
	for nb := range m.adj[l.id] {
		if dst != Broadcast && dst != nb {
			continue
		}
		if to, ok := m.links[nb]; ok {
			if m.Loss > 0 && m.rng.Float64() < m.Loss {
				l.stats.LossInjected.Add(1)
				continue
			}
			targets = append(targets, to)
		}
	}
	latency := m.Latency
	m.mu.Unlock()
	for _, to := range targets {
		to := to
		data := make([]byte, len(payload))
		copy(data, payload)
		l.stats.onSend(headerSize + len(data))
		if latency > 0 {
			time.AfterFunc(latency, func() { to.enqueue(l.id, data) })
		} else {
			to.enqueue(l.id, data)
		}
	}
	return nil
}
