package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Mesh is the in-process transport: a set of nodes connected by an
// explicit adjacency graph, with deliveries handed straight to the
// receiver's Deliver callback (optionally delayed and dropped). It gives
// live-runtime tests the multi-goroutine concurrency shape of the UDP
// path — every node on its own rt.Loop, deliveries crossing goroutines —
// without sockets, so a whole cluster runs in one test process.
type Mesh struct {
	mu    sync.Mutex
	links map[uint32]*MeshLink
	adj   map[uint32]map[uint32]bool
	rng   *rand.Rand

	// Latency delays every delivery (zero = immediate, on the sender's
	// goroutine).
	Latency time.Duration
	// Loss drops each delivery independently with this probability.
	Loss float64
}

// NewMesh returns an empty mesh; seed drives the loss stream.
func NewMesh(seed int64) *Mesh {
	return &Mesh{
		links: map[uint32]*MeshLink{},
		adj:   map[uint32]map[uint32]bool{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Attach adds a node and returns its link. Attaching an existing ID
// panics (test-configuration error).
func (m *Mesh) Attach(id uint32, deliver Deliver) *MeshLink {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.links[id]; dup {
		panic(fmt.Sprintf("transport: mesh node %d attached twice", id))
	}
	l := &MeshLink{mesh: m, id: id, deliver: deliver}
	m.links[id] = l
	if m.adj[id] == nil {
		m.adj[id] = map[uint32]bool{}
	}
	return l
}

// Connect makes a and b bidirectional neighbors.
func (m *Mesh) Connect(a, b uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.adj[a] == nil {
		m.adj[a] = map[uint32]bool{}
	}
	if m.adj[b] == nil {
		m.adj[b] = map[uint32]bool{}
	}
	m.adj[a][b] = true
	m.adj[b][a] = true
}

// Line connects ids into a chain in order.
func (m *Mesh) Line(ids ...uint32) {
	for i := 1; i < len(ids); i++ {
		m.Connect(ids[i-1], ids[i])
	}
}

// MeshLink is one node's core.Link on a Mesh.
type MeshLink struct {
	mesh    *Mesh
	id      uint32
	deliver Deliver
	stats   Stats
}

// ID returns the node's link-layer identifier (core.Link).
func (l *MeshLink) ID() uint32 { return l.id }

// Stats returns the link's packet accounting.
func (l *MeshLink) Stats() *Stats { return &l.stats }

// Send delivers payload to dst (a neighbor or Broadcast), applying the
// mesh's loss and latency (core.Link). Each receiver gets its own copy.
func (l *MeshLink) Send(dst uint32, payload []byte) error {
	if len(payload) > maxPayload {
		l.stats.SendErrors.Add(1)
		return ErrTooLarge
	}
	m := l.mesh
	m.mu.Lock()
	if dst != Broadcast && !m.adj[l.id][dst] {
		// Match the UDP transport: unicast to a non-neighbor is an error
		// the diffusion layer counts as a link send failure.
		m.mu.Unlock()
		l.stats.SendErrors.Add(1)
		return fmt.Errorf("transport: %d is not a neighbor of %d", dst, l.id)
	}
	var targets []*MeshLink
	for nb := range m.adj[l.id] {
		if dst != Broadcast && dst != nb {
			continue
		}
		if to, ok := m.links[nb]; ok {
			if m.Loss > 0 && m.rng.Float64() < m.Loss {
				l.stats.LossInjected.Add(1)
				continue
			}
			targets = append(targets, to)
		}
	}
	latency := m.Latency
	m.mu.Unlock()
	for _, to := range targets {
		to := to
		data := make([]byte, len(payload))
		copy(data, payload)
		l.stats.onSend(headerSize + len(data))
		deliver := func() {
			to.stats.onRecv(headerSize + len(data))
			to.deliver(l.id, data)
		}
		if latency > 0 {
			time.AfterFunc(latency, deliver)
		} else {
			deliver()
		}
	}
	return nil
}
