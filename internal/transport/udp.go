package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// UDPConfig parameterizes a UDP link endpoint.
type UDPConfig struct {
	// ID is this node's link-layer identifier. Required, and must not be
	// the broadcast address.
	ID uint32
	// Listen is the local UDP address to bind ("127.0.0.1:7001"; port 0
	// picks a free port, see LocalAddr).
	Listen string
	// Neighbors maps neighbor link IDs to their UDP addresses. Broadcast
	// sends one datagram per neighbor — the neighbor table takes the place
	// of the radio's spatial reachability. The table is static for the
	// life of the endpoint, like the paper's testbed's fixed node
	// placement.
	Neighbors map[uint32]string
	// Deliver receives every well-formed datagram from a configured
	// neighbor. Required. Called from the endpoint's reader goroutine.
	Deliver Deliver
	// Loss, in [0,1), drops each outgoing datagram independently with
	// this probability — injected loss for parity testing against the
	// simulated radio. Zero means lossless.
	Loss float64
	// Latency delays each outgoing datagram by this much before it is
	// written to the socket, emulating propagation plus airtime.
	Latency time.Duration
	// Seed seeds the loss-draw stream (only used when Loss > 0).
	Seed int64
}

// UDP is a core.Link over UDP datagrams: unicast sends one datagram to the
// neighbor's address, broadcast sends one per neighbor. It accepts frames
// only from configured neighbors, so a stray datagram cannot inject
// traffic under an unknown ID.
type UDP struct {
	id       uint32
	conn     *net.UDPConn
	peers    map[uint32]*net.UDPAddr
	deliver  Deliver
	loss     float64
	latency  time.Duration
	stats    Stats
	readerWG sync.WaitGroup

	mu     sync.Mutex
	rng    *rand.Rand
	closed bool
}

// ListenUDP binds cfg.Listen and starts the reader goroutine. The caller
// must Close the endpoint to release both.
func ListenUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.ID == Broadcast {
		return nil, fmt.Errorf("transport: node ID %d is the broadcast address", cfg.ID)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("transport: UDPConfig requires Deliver")
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", cfg.Listen, err)
	}
	peers := make(map[uint32]*net.UDPAddr, len(cfg.Neighbors))
	for id, addr := range cfg.Neighbors {
		a, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: neighbor %d %q: %w", id, addr, err)
		}
		peers[id] = a
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	u := &UDP{
		id:      cfg.ID,
		conn:    conn,
		peers:   peers,
		deliver: cfg.Deliver,
		loss:    cfg.Loss,
		latency: cfg.Latency,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	u.readerWG.Add(1)
	go u.readLoop()
	return u, nil
}

// ID returns this node's link-layer identifier (core.Link).
func (u *UDP) ID() uint32 { return u.id }

// LocalAddr returns the bound address (useful with port 0).
func (u *UDP) LocalAddr() *net.UDPAddr { return u.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns the endpoint's packet accounting.
func (u *UDP) Stats() *Stats { return &u.stats }

// Neighbors returns the configured neighbor IDs (fresh slice, any order).
func (u *UDP) Neighbors() []uint32 {
	out := make([]uint32, 0, len(u.peers))
	for id := range u.peers {
		out = append(out, id)
	}
	return out
}

// Send transmits payload to dst — a neighbor ID or Broadcast — as one
// datagram per destination (core.Link). Sends to unknown unicast
// destinations are errors; injected loss consumes destinations silently,
// like the radio it stands in for.
func (u *UDP) Send(dst uint32, payload []byte) error {
	if len(payload) > maxPayload {
		u.stats.SendErrors.Add(1)
		return ErrTooLarge
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.mu.Unlock()
	if dst != Broadcast {
		peer, ok := u.peers[dst]
		if !ok {
			u.stats.SendErrors.Add(1)
			return fmt.Errorf("transport: %d is not a neighbor of %d", dst, u.id)
		}
		u.sendTo(peer, dst, payload)
		return nil
	}
	for id, peer := range u.peers {
		u.sendTo(peer, id, payload)
	}
	return nil
}

// sendTo frames and writes one datagram, applying injected loss and
// latency.
func (u *UDP) sendTo(peer *net.UDPAddr, dst uint32, payload []byte) {
	if u.loss > 0 {
		u.mu.Lock()
		drop := u.rng.Float64() < u.loss
		u.mu.Unlock()
		if drop {
			u.stats.LossInjected.Add(1)
			return
		}
	}
	frame := encodeFrame(u.id, dst, payload)
	if u.latency > 0 {
		time.AfterFunc(u.latency, func() { u.write(frame, peer) })
		return
	}
	u.write(frame, peer)
}

// write puts one frame on the wire, accounting the outcome.
func (u *UDP) write(frame []byte, peer *net.UDPAddr) {
	if _, err := u.conn.WriteToUDP(frame, peer); err != nil {
		u.stats.SendErrors.Add(1)
		return
	}
	u.stats.onSend(len(frame))
}

// readLoop receives datagrams until the socket closes, validating the
// frame and the sender before delivering.
func (u *UDP) readLoop() {
	defer u.readerWG.Done()
	buf := make([]byte, maxPayload+headerSize)
	for {
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or a transient error after close): exit.
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		from, dst, payload, err := decodeFrame(buf[:n])
		if err != nil {
			u.stats.RecvDropped.Add(1)
			continue
		}
		if _, ok := u.peers[from]; !ok || from == u.id {
			u.stats.RecvDropped.Add(1)
			continue
		}
		if dst != Broadcast && dst != u.id {
			u.stats.RecvDropped.Add(1)
			continue
		}
		u.stats.onRecv(n)
		out := make([]byte, len(payload))
		copy(out, payload)
		u.deliver(from, out)
	}
}

// Close shuts the endpoint down and waits for the reader goroutine to
// exit. It is idempotent; Sends after Close return ErrClosed.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	u.readerWG.Wait()
	return err
}
