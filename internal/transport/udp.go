package transport

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// UDPConfig parameterizes a UDP link endpoint.
type UDPConfig struct {
	// ID is this node's link-layer identifier. Required, and must not be
	// the broadcast address.
	ID uint32
	// Listen is the local UDP address to bind ("127.0.0.1:7001"; port 0
	// picks a free port, see LocalAddr).
	Listen string
	// Neighbors maps neighbor link IDs to their UDP addresses. Broadcast
	// sends one datagram per neighbor — the neighbor table takes the place
	// of the radio's spatial reachability. The table is static for the
	// life of the endpoint, like the paper's testbed's fixed node
	// placement.
	Neighbors map[uint32]string
	// Deliver receives every well-formed datagram from a configured
	// neighbor. Required. Called from the endpoint's reader goroutine.
	Deliver Deliver
	// Loss, in [0,1), drops each outgoing datagram independently with
	// this probability — injected loss for parity testing against the
	// simulated radio. Zero means lossless. Adjustable at runtime with
	// SetLoss.
	Loss float64
	// Latency delays each outgoing datagram by this much before it is
	// written to the socket, emulating propagation plus airtime.
	Latency time.Duration
	// Seed seeds the loss-draw and probe-jitter streams.
	Seed int64
	// Liveness, when non-nil, enables the heartbeat failure detector
	// (liveness.go): neighbors are classified alive/suspect/dead and
	// state changes surface through Liveness.OnStateChange and
	// PeerHealth.
	Liveness *LivenessConfig
	// Reliable, when non-nil, enables reliable unicast (reliable.go):
	// unicast sends are acked and retransmitted with capped backoff,
	// queued per neighbor with overload shedding, and duplicates from
	// retransmission are suppressed on receive. Broadcast stays
	// fire-and-forget.
	Reliable *ReliableConfig
	// Custody, when non-nil, enables custody transfer (custody.go):
	// SendCustody offers are retransmitted until the peer durably accepts
	// them, received offers are acked only after the Accept callback
	// persists them, and pending offers are re-sent the moment the
	// failure detector hears a neighbor again. Pair with Liveness for the
	// recovery re-offers.
	Custody *CustodyOptions
	// Discovery, when non-nil, enables the membership subsystem
	// (discovery.go): the endpoint announces itself to seed addresses,
	// gossips known peers, promotes discovered peers to full neighbors
	// under a degree cap and demotes them on death or explicit leave.
	// Requires Liveness. The static Neighbors table remains valid — its
	// entries are pinned members the discovery layer never evicts.
	Discovery *DiscoveryConfig
	// Spans, when non-nil, records flight-path tx/recv spans for sampled
	// payloads (message flow ID non-zero): sampled frames carry the trace
	// extension on the wire and stamp the ring on both ends. Nil disables
	// transport-layer tracing; unsampled traffic never pays for it either
	// way.
	Spans *telemetry.SpanRing
	// SpanClock overrides the span timestamp source, so transport spans
	// share a time base with the node's other layers (the daemon passes
	// its event loop's Now). Nil means time since the endpoint was
	// created.
	SpanClock func() time.Duration
}

// peerEntry is one row of the live neighbor table: the peer's address,
// whether the operator pinned it (configured) or discovery promoted it,
// and per-peer payload traffic counters (announce/heartbeat chatter is
// excluded, so the counters identify which links actually carry data).
type peerEntry struct {
	addr       *net.UDPAddr
	configured bool
	dataRecv   atomic.Uint64
	dataSent   atomic.Uint64
}

// UDP is a core.Link over UDP datagrams: unicast sends one datagram to the
// neighbor's address, broadcast sends one per neighbor. Payload frames are
// accepted only from table members — configured or promoted by discovery —
// so a stray datagram cannot inject traffic under an unknown ID;
// membership frames (announce/probe/leave) are the one exception, since
// their whole point is to introduce unknown peers.
type UDP struct {
	id        uint32
	boot      uint32
	conn      *net.UDPConn
	deliver   Deliver
	stats     Stats
	det       *detector
	rel       *reliable
	cus       *custodian
	disco     *discovery
	spans     *telemetry.SpanRing
	spanClock func() time.Duration
	start     time.Time
	readerWG  sync.WaitGroup

	// peersMu guards the neighbor table. Static without discovery;
	// discovery adds and removes rows at runtime. Leaf lock: nothing else
	// is acquired while it is held.
	peersMu sync.RWMutex
	peers   map[uint32]*peerEntry

	mu      sync.Mutex
	rng     *rand.Rand
	loss    float64
	latency time.Duration
	blocked map[uint32]bool
	closed  bool
}

// ListenUDP binds cfg.Listen and starts the reader goroutine (plus the
// failure-detector goroutine when cfg.Liveness is set). The caller must
// Close the endpoint to release them.
func ListenUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.ID == Broadcast {
		return nil, fmt.Errorf("transport: node ID %d is the broadcast address", cfg.ID)
	}
	if cfg.Deliver == nil {
		return nil, fmt.Errorf("transport: UDPConfig requires Deliver")
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", cfg.Listen, err)
	}
	peers := make(map[uint32]*peerEntry, len(cfg.Neighbors))
	for id, addr := range cfg.Neighbors {
		a, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, fmt.Errorf("transport: neighbor %d %q: %w", id, addr, err)
		}
		peers[id] = &peerEntry{addr: a, configured: true}
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	u := &UDP{
		id:        cfg.ID,
		boot:      newBootNonce(),
		conn:      conn,
		peers:     peers,
		deliver:   cfg.Deliver,
		spans:     cfg.Spans,
		spanClock: cfg.SpanClock,
		start:     time.Now(),
		loss:      cfg.Loss,
		latency:   cfg.Latency,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		blocked:   map[uint32]bool{},
	}
	if cfg.Reliable != nil {
		u.rel = newReliable(*cfg.Reliable, &u.stats, u.writeTo)
	}
	if cfg.Custody != nil {
		if cfg.Custody.Accept == nil {
			conn.Close()
			return nil, fmt.Errorf("transport: CustodyOptions requires Accept")
		}
		u.cus = newCustodian(*cfg.Custody, &u.stats, u.writeTo)
	}
	if cfg.Discovery != nil {
		if cfg.Liveness == nil {
			conn.Close()
			return nil, fmt.Errorf("transport: Discovery requires Liveness (promoted peers need the failure detector)")
		}
		disco, err := newDiscovery(*cfg.Discovery, u, cfg.Seed^int64(cfg.ID))
		if err != nil {
			conn.Close()
			return nil, err
		}
		u.disco = disco
	}
	if cfg.Liveness != nil {
		// Chain the endpoint's own reactions around the caller's
		// state-change hook: a recovered neighbor gets pending custody
		// re-offered before the diffusion layer even reacts, and a dead
		// discovered neighbor is removed from the table after the caller
		// has seen the death.
		user := cfg.Liveness.OnStateChange
		lv := *cfg.Liveness
		lv.OnStateChange = func(peer uint32, state PeerState) {
			if state == PeerAlive && u.cus != nil {
				u.cus.reoffer(peer)
			}
			if user != nil {
				user(peer, state)
			}
			if state == PeerDead && u.disco != nil {
				u.disco.onPeerDead(peer)
			}
		}
		ids := make([]uint32, 0, len(peers))
		for id := range peers {
			ids = append(ids, id)
		}
		u.det = newDetector(lv, cfg.Seed^int64(cfg.ID), ids, &u.stats,
			func(peer, seq uint32) { u.writeTo(peer, kindPing, seq, nil) })
		go u.det.run()
	}
	if u.disco != nil {
		go u.disco.run()
	}
	u.readerWG.Add(1)
	go u.readLoop()
	return u, nil
}

// spanNow is the timestamp source for span events.
func (u *UDP) spanNow() time.Duration {
	if u.spanClock != nil {
		return u.spanClock()
	}
	return time.Since(u.start)
}

// ID returns this node's link-layer identifier (core.Link).
func (u *UDP) ID() uint32 { return u.id }

// Boot returns this endpoint's boot nonce — the value receivers use to
// tell process incarnations apart, and the one a span collector needs to
// scope spans to one incarnation.
func (u *UDP) Boot() uint32 { return u.boot }

// LocalAddr returns the bound address (useful with port 0).
func (u *UDP) LocalAddr() *net.UDPAddr { return u.conn.LocalAddr().(*net.UDPAddr) }

// Stats returns the endpoint's packet accounting.
func (u *UDP) Stats() *Stats { return &u.stats }

// Neighbors returns the current neighbor-table IDs — configured plus
// discovery-promoted — as a fresh slice, any order.
func (u *UDP) Neighbors() []uint32 {
	u.peersMu.RLock()
	defer u.peersMu.RUnlock()
	out := make([]uint32, 0, len(u.peers))
	for id := range u.peers {
		out = append(out, id)
	}
	return out
}

// peerAddr looks up a table member's address (nil when id is not a
// neighbor).
func (u *UDP) peerAddr(id uint32) *net.UDPAddr {
	u.peersMu.RLock()
	e := u.peers[id]
	u.peersMu.RUnlock()
	if e == nil {
		return nil
	}
	return e.addr
}

// isConfigured reports whether id is an operator-pinned neighbor.
func (u *UDP) isConfigured(id uint32) bool {
	u.peersMu.RLock()
	e := u.peers[id]
	u.peersMu.RUnlock()
	return e != nil && e.configured
}

// configuredCount counts operator-pinned neighbors.
func (u *UDP) configuredCount() int {
	u.peersMu.RLock()
	defer u.peersMu.RUnlock()
	n := 0
	for _, e := range u.peers {
		if e.configured {
			n++
		}
	}
	return n
}

// configuredPeers snapshots the operator-pinned rows of the table.
func (u *UDP) configuredPeers() map[uint32]*net.UDPAddr {
	u.peersMu.RLock()
	defer u.peersMu.RUnlock()
	out := map[uint32]*net.UDPAddr{}
	for id, e := range u.peers {
		if e.configured {
			out[id] = e.addr
		}
	}
	return out
}

// addNeighbor installs (or re-addresses) a discovered peer in the live
// table and registers it with the failure detector. Discovery only.
func (u *UDP) addNeighbor(id uint32, addr *net.UDPAddr) {
	u.peersMu.Lock()
	if e, ok := u.peers[id]; ok {
		e.addr = addr
	} else {
		u.peers[id] = &peerEntry{addr: addr}
	}
	u.peersMu.Unlock()
	if u.det != nil {
		u.det.addPeer(id)
	}
}

// removeNeighbor drops a discovered peer from the live table along with
// its detector, reliable-unicast and custody state. Configured peers are
// pinned: the call is a no-op for them.
func (u *UDP) removeNeighbor(id uint32) {
	u.peersMu.Lock()
	e, ok := u.peers[id]
	if !ok || e.configured {
		u.peersMu.Unlock()
		return
	}
	delete(u.peers, id)
	u.peersMu.Unlock()
	if u.det != nil {
		u.det.removePeer(id)
	}
	u.forgetPeer(id)
}

// forgetPeer drops retransmission state toward a peer whose incarnation
// changed: its receive windows reset with its boot nonce, so old reliable
// frames and custody offers are noise at best. Custody data itself stays
// in the queue — NeighborRecovered replays it.
func (u *UDP) forgetPeer(id uint32) {
	if u.rel != nil {
		u.rel.dropPeer(id)
	}
	if u.cus != nil {
		u.cus.dropPeer(id)
	}
}

// refreshPeer resets a table member's failure-detector record to
// freshly-alive (a peer that just re-announced under a new boot earns a
// full grace window).
func (u *UDP) refreshPeer(id uint32) {
	if u.det != nil {
		u.det.addPeer(id)
	}
}

// Members returns the endpoint's full membership view: every neighbor-
// table row (with per-peer traffic counters and liveness health) merged
// with every discovery record, sorted by ID. Without discovery it is just
// the configured table.
func (u *UDP) Members() []Member {
	health := u.PeerHealth()
	seen := map[uint32]bool{}
	var rows []Member
	u.peersMu.RLock()
	for id, e := range u.peers {
		m := Member{
			ID:             id,
			Addr:           e.addr.String(),
			Origin:         "discovered",
			Membership:     "neighbor",
			MembershipCode: MembershipNeighbor,
			DataRecv:       e.dataRecv.Load(),
			DataSent:       e.dataSent.Load(),
		}
		if e.configured {
			m.Origin = "configured"
		}
		if h, ok := health[id]; ok {
			m.Health, m.HasHealth = h, true
		}
		rows = append(rows, m)
		seen[id] = true
	}
	u.peersMu.RUnlock()
	if u.disco != nil {
		rows = u.disco.fillMembers(rows, seen)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	return rows
}

// DegreeCap returns the discovery degree cap (0 without discovery — the
// static table is whatever the operator wrote).
func (u *UDP) DegreeCap() int {
	if u.disco == nil {
		return 0
	}
	return u.disco.cfg.DegreeCap
}

// DiscoveryEnabled reports whether the membership subsystem is running.
func (u *UDP) DiscoveryEnabled() bool { return u.disco != nil }

// Leave sends a graceful-departure frame to every neighbor so they demote
// this node immediately instead of waiting out failure-detector timeouts.
// Call it right before Close on planned shutdowns. No-op without
// discovery.
func (u *UDP) Leave() {
	if u.disco != nil {
		u.disco.leave()
	}
}

// writeDisco frames and writes one membership frame (announce, probe or
// leave) to an explicit address — the peer need not be in the neighbor
// table, which is the point of discovery. Runtime impairment (partition,
// loss, latency) applies exactly as on the writeTo path; dst 0 means the
// peer's ID is unknown (a seed address) and the frame is headed to the
// broadcast ID, which every receiver accepts.
func (u *UDP) writeDisco(dst uint32, addr *net.UDPAddr, kind uint8, payload []byte) {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	if dst != 0 && u.blocked[dst] {
		u.mu.Unlock()
		u.stats.PartitionDropped.Add(1)
		return
	}
	drop := u.loss > 0 && u.rng.Float64() < u.loss
	latency := u.latency
	u.mu.Unlock()
	if drop {
		u.stats.LossInjected.Add(1)
		return
	}
	hdrDst := dst
	if hdrDst == 0 {
		hdrDst = Broadcast
	}
	frame := encodeFrame(kind, u.id, hdrDst, u.boot, 0, payload)
	if latency > 0 {
		time.AfterFunc(latency, func() { u.write(frame, addr) })
		return
	}
	u.write(frame, addr)
}

// PeerHealth returns every neighbor's liveness snapshot, or nil when the
// endpoint runs without a failure detector.
func (u *UDP) PeerHealth() map[uint32]PeerHealth {
	if u.det == nil {
		return nil
	}
	return u.det.snapshot()
}

// Isolated reports whether the failure detector considers every neighbor
// dead — the condition /healthz turns into a 503. Always false without a
// detector.
func (u *UDP) Isolated() bool {
	return u.det != nil && u.det.allDead()
}

// PeerRetransmits snapshots per-neighbor reliable-unicast retransmission
// counts (nil when reliable unicast is disabled).
func (u *UDP) PeerRetransmits() map[uint32]uint64 {
	if u.rel == nil {
		return nil
	}
	return u.rel.perPeerRetransmits()
}

// SetLoss changes the injected-loss probability at runtime (chaos
// harness). Values are clamped to [0,1].
func (u *UDP) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	u.mu.Lock()
	u.loss = p
	u.mu.Unlock()
}

// Loss returns the current injected-loss probability.
func (u *UDP) Loss() float64 {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.loss
}

// Block partitions this endpoint from peer: frames to and from it are
// dropped (and counted in Stats.PartitionDropped) until Unblock. The
// failure detector keeps probing through the partition, so it will mark
// the peer suspect and then dead.
func (u *UDP) Block(peer uint32) {
	u.mu.Lock()
	u.blocked[peer] = true
	u.mu.Unlock()
}

// Unblock heals a partition created by Block.
func (u *UDP) Unblock(peer uint32) {
	u.mu.Lock()
	delete(u.blocked, peer)
	u.mu.Unlock()
}

// SetBlocked replaces the whole blocked-peer set (chaos harness: one call
// describes the partition).
func (u *UDP) SetBlocked(peers []uint32) {
	set := make(map[uint32]bool, len(peers))
	for _, p := range peers {
		set[p] = true
	}
	u.mu.Lock()
	u.blocked = set
	u.mu.Unlock()
}

// Blocked returns the currently blocked peers (fresh slice, any order).
func (u *UDP) Blocked() []uint32 {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]uint32, 0, len(u.blocked))
	for p := range u.blocked {
		out = append(out, p)
	}
	return out
}

// Send transmits payload to dst — a neighbor ID or Broadcast — as one
// datagram per destination (core.Link). Sends to unknown unicast
// destinations are errors; injected loss consumes destinations silently,
// like the radio it stands in for. With the reliable option enabled,
// unicast payloads go through the acked/retransmitted path; broadcast is
// always fire-and-forget (flooding is its own redundancy).
func (u *UDP) Send(dst uint32, payload []byte) error {
	if len(payload) > maxPayload {
		u.stats.SendErrors.Add(1)
		return ErrTooLarge
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	u.mu.Unlock()
	if dst != Broadcast {
		if u.peerAddr(dst) == nil {
			u.stats.SendErrors.Add(1)
			return fmt.Errorf("transport: %d is not a neighbor of %d", dst, u.id)
		}
		if u.rel != nil {
			u.rel.send(dst, payload)
			return nil
		}
		u.writeTo(dst, kindData, 0, payload)
		return nil
	}
	for _, id := range u.Neighbors() {
		u.writeTo(id, kindData, 0, payload)
	}
	return nil
}

// SendCustody offers custody of a diffusion payload to neighbor dst
// (core.CustodyLink). The offer is retransmitted with capped backoff —
// and re-sent on neighbor recovery — until dst durably accepts it; the
// CustodyOptions.Release callback then fires. Requires the Custody
// option.
func (u *UDP) SendCustody(dst uint32, id message.ID, payload []byte) error {
	if u.cus == nil {
		return fmt.Errorf("transport: custody transfer not enabled")
	}
	if len(payload) > maxPayload {
		u.stats.SendErrors.Add(1)
		return ErrTooLarge
	}
	if u.peerAddr(dst) == nil || dst == Broadcast {
		u.stats.SendErrors.Add(1)
		return fmt.Errorf("transport: %d is not a neighbor of %d", dst, u.id)
	}
	u.mu.Lock()
	closed := u.closed
	u.mu.Unlock()
	if closed {
		return ErrClosed
	}
	u.cus.send(dst, id, payload)
	return nil
}

// CustodyPending returns the number of outstanding custody offers
// (introspection; 0 without the Custody option).
func (u *UDP) CustodyPending() int {
	if u.cus == nil {
		return 0
	}
	return u.cus.pending()
}

// writeTo frames and writes one datagram to neighbor id, applying runtime
// impairment — blocked peers, injected loss, injected latency — in that
// order. It is the single egress point: data, reliable frames,
// retransmissions, acks and heartbeats all pass through it, so a
// partition or loss ramp affects every frame kind, exactly like a real
// bad link.
func (u *UDP) writeTo(id uint32, kind uint8, seq uint32, payload []byte) {
	u.peersMu.RLock()
	e := u.peers[id]
	u.peersMu.RUnlock()
	if e == nil {
		return
	}
	peer := e.addr
	switch kind {
	case kindData, kindReliable, kindCustody:
		e.dataSent.Add(1)
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return
	}
	if u.blocked[id] {
		u.mu.Unlock()
		u.stats.PartitionDropped.Add(1)
		return
	}
	drop := u.loss > 0 && u.rng.Float64() < u.loss
	latency := u.latency
	u.mu.Unlock()
	if drop {
		u.stats.LossInjected.Add(1)
		return
	}
	switch kind {
	case kindPing, kindPong:
		u.stats.HeartbeatsSent.Add(1)
	case kindAck:
		u.stats.AcksSent.Add(1)
	case kindCustodyAck:
		u.stats.CustodyAcksSent.Add(1)
	}
	var flow uint16
	var hop uint8
	if u.spans != nil {
		if flow, hop = message.PeekTrace(payload); flow != 0 {
			cls, _ := message.PeekClass(payload)
			u.spans.Record(telemetry.Span{
				At: u.spanNow(), Node: u.id, Peer: id,
				ID: message.PeekID(payload), Flow: flow, Hop: hop,
				Event: telemetry.SpanTx, Layer: telemetry.SpanLayerTransport,
				Class: cls,
			})
		}
	}
	frame := encodeFrameTraced(kind, u.id, id, u.boot, seq, flow, hop, payload)
	if latency > 0 {
		time.AfterFunc(latency, func() { u.write(frame, peer) })
		return
	}
	u.write(frame, peer)
}

// write puts one frame on the wire, accounting the outcome.
func (u *UDP) write(frame []byte, peer *net.UDPAddr) {
	if _, err := u.conn.WriteToUDP(frame, peer); err != nil {
		u.stats.SendErrors.Add(1)
		return
	}
	u.stats.onSend(len(frame))
}

// readLoop receives datagrams until the socket closes, validating the
// frame and the sender, then dispatching on kind. Any valid frame counts
// as proof of life for the failure detector. The per-neighbor duplicate
// windows are owned by this goroutine, so they need no locking.
func (u *UDP) readLoop() {
	defer u.readerWG.Done()
	buf := make([]byte, maxPayload+headerSize+traceExtSize)
	dups := map[uint32]*dupWindow{}
	// Custody offers number their own wire-seq space, so they get their
	// own duplicate windows — a shared window would let a reliable frame
	// and a custody offer with colliding seqs suppress each other.
	cusDups := map[uint32]*dupWindow{}
	for {
		n, src, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			// Closed socket (or a transient error after close): exit.
			u.mu.Lock()
			closed := u.closed
			u.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		f, err := decodeFrame(buf[:n])
		if err != nil {
			u.stats.RecvDropped.Add(1)
			continue
		}
		u.peersMu.RLock()
		entry := u.peers[f.from]
		u.peersMu.RUnlock()
		if f.from == u.id {
			u.stats.RecvDropped.Add(1)
			continue
		}
		if entry == nil {
			// Unknown senders may only speak the membership protocol —
			// that is how they become known.
			if u.disco != nil {
				switch f.kind {
				case kindAnnounce, kindProbe, kindLeave:
					if f.dst == Broadcast || f.dst == u.id {
						u.disco.onFrame(f, src)
						continue
					}
				}
			}
			u.stats.RecvDropped.Add(1)
			continue
		}
		if f.dst != Broadcast && f.dst != u.id {
			u.stats.RecvDropped.Add(1)
			continue
		}
		u.mu.Lock()
		blocked := u.blocked[f.from]
		u.mu.Unlock()
		if blocked {
			u.stats.PartitionDropped.Add(1)
			continue
		}
		if u.det != nil {
			if f.kind == kindPong {
				u.det.onPong(f.from, f.seq) // records RTT, then marks heard
			} else {
				u.det.markHeard(f.from)
			}
		}
		if u.spans != nil && f.flow != 0 {
			cls, _ := message.PeekClass(f.payload)
			u.spans.Record(telemetry.Span{
				At: u.spanNow(), Node: u.id, Peer: f.from,
				ID: message.PeekID(f.payload), Flow: f.flow, Hop: f.hop,
				Event: telemetry.SpanRecv, Layer: telemetry.SpanLayerTransport,
				Class: cls,
			})
		}
		switch f.kind {
		case kindPing:
			u.stats.HeartbeatsRecv.Add(1)
			u.writeTo(f.from, kindPong, f.seq, nil)
		case kindPong:
			u.stats.HeartbeatsRecv.Add(1)
		case kindAck:
			if u.rel != nil {
				u.rel.onAck(f.from, f.seq)
			}
		case kindReliable:
			// Ack first, duplicates included: the sender needs the ack to
			// stop retransmitting whether or not we deliver.
			u.writeTo(f.from, kindAck, f.seq, nil)
			w := dups[f.from]
			if w == nil {
				w = &dupWindow{}
				dups[f.from] = w
			}
			if !w.fresh(f.boot, f.seq) {
				u.stats.DupSuppressed.Add(1)
				continue
			}
			u.deliverUp(f.from, entry, f.payload, n)
		case kindData:
			u.deliverUp(f.from, entry, f.payload, n)
		case kindCustody:
			if u.cus == nil {
				// This node runs without custody, so it cannot vouch for
				// the payload and must not ack — responsibility stays with
				// the sender, which keeps the offer pending (visible in its
				// /custody pending count) and retransmits at the capped
				// backoff. The data itself is still delivered, deduplicated
				// by offer seq so those retransmits cannot double-deliver:
				// a mixed deployment makes progress, it just cannot drain
				// upstream custody queues. Enable custody at this node
				// (memory-only suffices) to complete transfers.
				w := cusDups[f.from]
				if w == nil {
					w = &dupWindow{}
					cusDups[f.from] = w
				}
				if !w.fresh(f.boot, f.seq) {
					u.stats.DupSuppressed.Add(1)
					continue
				}
				u.deliverUp(f.from, entry, f.payload, n)
				continue
			}
			id, ok := custodyPayloadID(f.payload)
			if !ok {
				u.stats.RecvDropped.Add(1)
				continue
			}
			// Durable accept BEFORE the ack: the sender discharges its
			// custody on our acknowledgment, so the ack must mean the
			// payload is safe here. held-but-not-fresh covers lost acks:
			// re-acked, not re-delivered.
			held, fresh := u.cus.cfg.Accept(f.from, id, f.payload)
			if !held {
				u.stats.CustodyRejected.Add(1)
				continue
			}
			u.writeTo(f.from, kindCustodyAck, f.seq, nil)
			if fresh {
				u.deliverUp(f.from, entry, f.payload, n)
			}
		case kindCustodyAck:
			if u.cus != nil {
				u.cus.onAck(f.from, f.seq)
			}
		case kindAnnounce, kindProbe:
			if u.disco != nil {
				u.disco.onFrame(f, src)
			}
		case kindLeave:
			if u.disco != nil {
				u.disco.onFrame(f, src)
			} else if u.det != nil {
				// No membership engine, but the peer said goodbye: treat it
				// as instantly dead so the diffusion layer repairs now
				// rather than after DeadAfter of silence.
				u.stats.LeavesRecv.Add(1)
				u.det.forceDead(f.from)
			}
		}
	}
}

// deliverUp copies a payload out of the receive buffer and hands it to the
// Deliver callback, counting it against the sender's table entry.
func (u *UDP) deliverUp(from uint32, e *peerEntry, payload []byte, n int) {
	u.stats.onRecv(n)
	if e != nil {
		e.dataRecv.Add(1)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	u.deliver(from, out)
}

// Close shuts the endpoint down — failure detector, retransmit timers,
// socket — and waits for the reader goroutine to exit. It is idempotent;
// Sends after Close return ErrClosed.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	if u.disco != nil {
		u.disco.close()
	}
	if u.det != nil {
		u.det.close()
	}
	if u.rel != nil {
		u.rel.close()
	}
	if u.cus != nil {
		u.cus.close()
	}
	err := u.conn.Close()
	u.readerWG.Wait()
	return err
}
