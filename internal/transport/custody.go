package transport

import (
	"sync"
	"time"

	"diffusion/internal/message"
)

// This file implements the UDP endpoint's custody-transfer option: the
// link-layer half of disruption tolerance (internal/custody holds the
// durable queue, internal/core decides what to hand off and when).
// Custody frames differ from reliable unicast in one crucial way: the
// acknowledgment is sent only after the receiver has *durably* accepted
// the payload (fsync'd into its custody log), not on arrival. Combined
// with unbounded retransmission — a custody offer is never abandoned,
// only superseded — this makes the hand-off a transactional transfer of
// responsibility: at every instant, at least one node's disk vouches for
// the message.
//
//   - The sender keeps one pending offer per message ID, retransmitting
//     with capped exponential backoff for as long as the offer stands.
//     Re-offering the same ID is idempotent; re-offering it to a
//     different peer (the reinforced path moved) supersedes the old
//     offer.
//   - On a neighbor-recovery event from the failure detector, pending
//     offers toward that neighbor are re-sent immediately instead of
//     waiting out the backoff — partitions heal at detector speed.
//   - The receive side acks if and only if the Accept callback reports
//     the payload held (already-queued and recently-released duplicates
//     re-ack without re-admitting), and delivers it up only when it is
//     fresh, keeping hop-by-hop transfer exactly-once.

// CustodyOptions wires the endpoint's custody frames to the custody
// queue. Accept and Release are required; they are called from the
// endpoint's goroutines (Accept from the reader — it may block briefly on
// the journal fsync, which is the price of ack-after-durability).
type CustodyOptions struct {
	// Accept durably admits custody of (id, payload) offered by from.
	// held reports the payload is vouched for (ack it); fresh reports it
	// was newly admitted (deliver it up).
	Accept func(from uint32, id message.ID, payload []byte) (held, fresh bool)
	// Release reports that peer acknowledged — durably accepted — custody
	// of id, so this node's custody of it can be discharged.
	Release func(peer uint32, id message.ID)
	// RTO is the initial retransmit timeout (default 500ms); MaxRTO caps
	// the exponential backoff (default 10s). Custody tolerates long RTOs:
	// it is the partition-scale path, not the hot path.
	RTO    time.Duration
	MaxRTO time.Duration
}

func (c *CustodyOptions) fill() {
	if c.RTO <= 0 {
		c.RTO = 500 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 10 * time.Second
	}
}

// custodyPayloadID extracts the message ID from a marshalled diffusion
// payload (message.Marshal layout: class, hopcount, RandID, PktNum, ...).
func custodyPayloadID(payload []byte) (message.ID, bool) {
	m, err := message.Unmarshal(payload)
	if err != nil {
		return message.ID{}, false
	}
	return m.ID, true
}

// cusFrame is one pending custody offer.
type cusFrame struct {
	peer    uint32
	seq     uint32
	id      message.ID
	payload []byte
	tries   int
	timer   *time.Timer
}

// custodian is the sender half of custody transfer for one endpoint.
type custodian struct {
	cfg   CustodyOptions
	stats *Stats
	write func(peer uint32, kind uint8, seq uint32, payload []byte)

	mu      sync.Mutex
	nextSeq uint32
	byID    map[message.ID]*cusFrame // pending offers, keyed by message ID
	bySeq   map[uint32]*cusFrame     // the same offers, keyed by wire seq
	closed  bool
}

func newCustodian(cfg CustodyOptions, stats *Stats,
	write func(peer uint32, kind uint8, seq uint32, payload []byte)) *custodian {
	cfg.fill()
	return &custodian{
		cfg:   cfg,
		stats: stats,
		write: write,
		byID:  map[message.ID]*cusFrame{},
		bySeq: map[uint32]*cusFrame{},
	}
}

// send offers custody of (id, payload) to peer. A pending offer of the
// same ID to the same peer makes this a no-op (the core replays
// periodically; the wire must not amplify that). An offer to a different
// peer supersedes the old one — the reinforced path moved.
func (c *custodian) send(peer uint32, id message.ID, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if f, ok := c.byID[id]; ok {
		if f.peer == peer {
			c.mu.Unlock()
			return
		}
		c.dropLocked(f)
	}
	c.nextSeq++
	f := &cusFrame{peer: peer, seq: c.nextSeq, id: id, payload: buf, tries: 1}
	c.byID[id] = f
	c.bySeq[f.seq] = f
	c.armLocked(f)
	c.mu.Unlock()

	c.stats.CustodySent.Add(1)
	c.write(peer, kindCustody, f.seq, buf)
}

// dropLocked forgets a pending offer (superseded or acked).
func (c *custodian) dropLocked(f *cusFrame) {
	if f.timer != nil {
		f.timer.Stop()
	}
	delete(c.byID, f.id)
	delete(c.bySeq, f.seq)
}

// armLocked schedules the next retransmission: RTO doubled per attempt,
// capped at MaxRTO, never abandoned.
func (c *custodian) armLocked(f *cusFrame) {
	rto := c.cfg.RTO << (f.tries - 1)
	if rto > c.cfg.MaxRTO || rto <= 0 {
		rto = c.cfg.MaxRTO
	}
	seq := f.seq
	f.timer = time.AfterFunc(rto, func() { c.onTimeout(seq) })
}

// onTimeout retransmits an unacknowledged offer.
func (c *custodian) onTimeout(seq uint32) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	f, ok := c.bySeq[seq]
	if !ok {
		c.mu.Unlock()
		return
	}
	f.tries++
	c.armLocked(f)
	peer, payload := f.peer, f.payload
	c.mu.Unlock()
	c.stats.CustodyRetransmits.Add(1)
	c.write(peer, kindCustody, seq, payload)
}

// onAck completes a custody transfer: the peer durably holds the message,
// so local custody is discharged via the Release callback.
func (c *custodian) onAck(peer, seq uint32) {
	c.stats.CustodyAcksRecv.Add(1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	f, ok := c.bySeq[seq]
	if !ok || f.peer != peer {
		c.mu.Unlock()
		return
	}
	c.dropLocked(f)
	id := f.id
	c.mu.Unlock()
	if c.cfg.Release != nil {
		c.cfg.Release(peer, id)
	}
}

// reoffer re-sends every pending offer toward peer immediately, resetting
// its backoff — the failure detector just heard from it again.
func (c *custodian) reoffer(peer uint32) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	var out []*cusFrame
	for _, f := range c.bySeq {
		if f.peer != peer {
			continue
		}
		if f.timer != nil {
			f.timer.Stop()
		}
		f.tries = 1
		c.armLocked(f)
		out = append(out, f)
	}
	c.mu.Unlock()
	for _, f := range out {
		c.stats.CustodyRetransmits.Add(1)
		c.write(peer, kindCustody, f.seq, f.payload)
	}
}

// dropPeer forgets every pending offer toward one peer. The custody queue
// still holds the data — nothing is released — so when the peer (or a
// replacement upstream) comes back, the core's NeighborRecovered replay
// re-offers it under fresh wire sequence numbers. Discovery calls this
// when a peer is removed or restarts with a new boot nonce.
func (c *custodian) dropPeer(peer uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.bySeq {
		if f.peer == peer {
			c.dropLocked(f)
		}
	}
}

// pending returns the number of outstanding custody offers (tests,
// introspection).
func (c *custodian) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.bySeq)
}

// close stops every retransmit timer. Pending offers are not released:
// the custody queue still holds the data, and a restart re-offers it.
func (c *custodian) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, f := range c.bySeq {
		if f.timer != nil {
			f.timer.Stop()
		}
	}
	c.byID = map[message.ID]*cusFrame{}
	c.bySeq = map[uint32]*cusFrame{}
}
