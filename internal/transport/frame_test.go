package transport

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"diffusion/internal/attr"
	"diffusion/internal/message"
	"diffusion/internal/telemetry"
)

// TestFrameTraceRoundTrip checks the v2 trace extension: flow and hop
// survive the codec, the kind flag is masked off, and the payload is
// unchanged.
func TestFrameTraceRoundTrip(t *testing.T) {
	payload := []byte("event-bytes")
	b := encodeFrameTraced(kindReliable, 4, 3, 0xB007, 99, 0x1A2B, 5, payload)
	if b[2]&kindTraceFlag == 0 {
		t.Fatal("traced frame must set the kind flag bit")
	}
	f, err := decodeFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if f.kind != kindReliable || f.flow != 0x1A2B || f.hop != 5 {
		t.Errorf("decoded kind=%d flow=%#x hop=%d, want %d %#x %d",
			f.kind, f.flow, f.hop, kindReliable, 0x1A2B, 5)
	}
	if f.from != 4 || f.dst != 3 || f.boot != 0xB007 || f.seq != 99 {
		t.Errorf("header fields wrong: %+v", f)
	}
	if !bytes.Equal(f.payload, payload) {
		t.Errorf("payload %q, want %q", f.payload, payload)
	}
}

// TestFramePreExtensionPeer checks both directions of compatibility with
// peers that predate the trace extension: their frames (no flag bit)
// decode as unsampled rather than erroring, and a zero flow never emits
// the extension, keeping our frames byte-identical to the old layout.
func TestFramePreExtensionPeer(t *testing.T) {
	legacy := encodeFrame(kindData, 1, 2, 3, 4, []byte("x"))
	if legacy[2]&kindTraceFlag != 0 {
		t.Fatal("untraced frame must not set the flag bit")
	}
	if got := encodeFrameTraced(kindData, 1, 2, 3, 4, 0, 9, []byte("x")); !bytes.Equal(got, legacy) {
		t.Error("zero flow must encode byte-identically to the legacy frame")
	}
	f, err := decodeFrame(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if f.flow != 0 || f.hop != 0 {
		t.Errorf("legacy frame decoded with trace context flow=%#x hop=%d", f.flow, f.hop)
	}
	if string(f.payload) != "x" {
		t.Errorf("legacy payload %q", f.payload)
	}
}

// TestFrameTraceErrors: a flagged frame truncated before its extension is
// a short frame, and the flag does not smuggle unknown kinds past
// validation.
func TestFrameTraceErrors(t *testing.T) {
	b := encodeFrameTraced(kindData, 1, 2, 3, 4, 7, 1, nil)
	if _, err := decodeFrame(b[:headerSize+1]); !errors.Is(err, errShortFrame) {
		t.Errorf("truncated extension: %v", err)
	}
	bad := append([]byte(nil), b...)
	bad[2] = kindTraceFlag | numKinds
	if _, err := decodeFrame(bad); !errors.Is(err, errBadKind) {
		t.Errorf("flagged unknown kind: %v", err)
	}
}

// TestUDPTraceSpans sends a sampled diffusion message between two UDP
// endpoints with span rings and checks that the transport stamps a tx
// span on the sender and a recv span on the receiver, carrying the flow
// through the frame extension.
func TestUDPTraceSpans(t *testing.T) {
	m := &message.Message{
		Class:    message.Data,
		ID:       message.ID{RandID: 0xFEED, PktNum: 3},
		PrevHop:  1,
		NextHop:  2,
		HopCount: 4,
		Flow:     0x77AA,
		Attrs:    attr.Vec{attr.ClassIsData()},
	}
	payload := m.Marshal()

	got := make(chan []byte, 1)
	rxSpans := telemetry.NewSpanRing(16)
	rx, err := ListenUDP(UDPConfig{
		ID: 2, Listen: "127.0.0.1:0",
		Neighbors: map[uint32]string{1: "127.0.0.1:1"}, // fixed below
		Deliver:   func(from uint32, p []byte) { got <- p },
		Spans:     rxSpans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()

	txSpans := telemetry.NewSpanRing(16)
	tx, err := ListenUDP(UDPConfig{
		ID: 1, Listen: "127.0.0.1:0",
		Neighbors: map[uint32]string{2: rx.LocalAddr().String()},
		Deliver:   func(uint32, []byte) {},
		Spans:     txSpans,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tx.Close()
	// Point rx's neighbor table at tx's real port so the sender passes
	// validation.
	rx.peersMu.Lock()
	rx.peers[1] = &peerEntry{addr: tx.LocalAddr(), configured: true}
	rx.peersMu.Unlock()

	if err := tx.Send(2, payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if !bytes.Equal(p, payload) {
			t.Error("payload corrupted through the traced frame")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("payload not delivered")
	}

	txs := txSpans.Spans()
	if len(txs) != 1 || txs[0].Event != telemetry.SpanTx || txs[0].Flow != 0x77AA ||
		txs[0].Hop != 4 || txs[0].Peer != 2 || txs[0].ID != m.ID {
		t.Errorf("sender spans: %+v", txs)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rxSpans.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rxs := rxSpans.Spans()
	if len(rxs) != 1 || rxs[0].Event != telemetry.SpanRecv || rxs[0].Flow != 0x77AA ||
		rxs[0].Hop != 4 || rxs[0].Peer != 1 || rxs[0].Node != 2 {
		t.Errorf("receiver spans: %+v", rxs)
	}

	// Unsampled payloads must not produce spans.
	m.Flow = 0
	if err := tx.Send(2, m.Marshal()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("unsampled payload not delivered")
	}
	if txSpans.Len() != 1 || rxSpans.Len() != 1 {
		t.Errorf("unsampled send recorded spans: tx=%d rx=%d", txSpans.Len(), rxSpans.Len())
	}
}
