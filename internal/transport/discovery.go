package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// This file implements the UDP endpoint's membership subsystem: neighbor
// discovery, runtime join/leave, and a degree cap with deterministic
// cluster-head preference. The paper's protocol assumes neighbors simply
// exist — its testbed had fixed placement — but a production mesh must
// bootstrap itself. Discovery adds three frame kinds on the existing v2
// framing:
//
//   - announce: "here I am" — carries the node's advertised UDP address,
//     HTTP control-plane port, key-vocabulary digest, energy level, a
//     peering bit ("I currently have you as my neighbor") and a gossip
//     sample of other known peers. Boot-nonce-scoped like every frame, so
//     a restart is recognized as a fresh incarnation.
//   - probe: "who are you?" — an empty solicitation that asks the target
//     to reply with a unicast announce. Used toward peers learned only
//     from gossip, whose digest and boot nonce we do not yet know.
//   - leave: "I am going away" — graceful departure, demote me now
//     instead of waiting out the failure detector's timeouts.
//
// A node seeds itself from one or more -seed addresses; everything else
// spreads by gossip. Peers whose announces check out are promoted to full
// neighbors — heartbeats, reliable unicast, custody re-offers, the works —
// and demoted on death or explicit leave, driving the same
// core.NeighborDead/NeighborRecovered hooks as configured peers.
//
// The degree cap bounds per-node neighbor count so flooding cost stays
// sub-linear as membership grows (CCIC-WSN's cluster argument). When the
// cap is hit, slots are contested by cluster-head score — a deterministic
// splitmix64 hash of (node ID, boot nonce), with an energy-aware
// tiebreak. Folding the boot nonce in rotates headship across restarts,
// LEACH-style, so no node is a head forever. Both sides compute identical
// scores from the wire header alone, so no negotiation is needed. Score
// decides which links FORM, never breaks ones that work: only one-way
// placeholder slots (promoted but never reciprocated) lose to a better
// candidate. At mesh scale, letting score evict mutual links makes every
// node chase the same top scorers and the churn cascades — pairs break
// faster than new ones complete, and the mesh never settles.
//
// Promotion is a two-way handshake. A neighborhood must be symmetric —
// the receive path drops frames from unknown senders — so a promoted peer
// is only useful once it has promoted us back. The announce peering bit
// carries that fact: a promoted peer that never sets it within three
// announce intervals is demoted back to candidate (it is full, and we are
// below its cut), and a previously-peered neighbor that clears it has
// dropped us, so we drop it too.
//
// Pure score preference has a starvation mode: once the mesh saturates,
// the globally lowest-scored nodes beat nobody's weakest neighbor and
// stay isolated forever (visible already at n = cap+2, where the top
// cap+1 nodes form a full clique). The loneliness override breaks it,
// HyParView-style: an announce advertises "I have zero peered neighbors",
// and a full node admits such a peer by evicting its weakest neighbor
// regardless of score — rate-limited to one per interval, with the
// admitted peer's slot protected from score-based eviction so the mesh
// does not churn it right back out.

// MemberEvent classifies a membership change surfaced through
// DiscoveryConfig.OnMember.
type MemberEvent uint8

// Membership events.
const (
	// MemberJoined: a discovered peer was promoted to full neighbor.
	MemberJoined MemberEvent = iota
	// MemberRejoined: a promoted peer re-announced under a new boot nonce
	// — same identity, fresh incarnation, stale link state dropped.
	MemberRejoined
	// MemberLeft: the peer sent an explicit leave frame.
	MemberLeft
	// MemberEvicted: the degree cap displaced the peer in favor of one
	// with a better cluster-head score.
	MemberEvicted
	// MemberDemoted: the peering handshake failed — the peer never
	// promoted us back, or stopped listing us as its neighbor.
	MemberDemoted
	// MemberDead: the failure detector declared the discovered peer dead
	// and it was removed from the neighbor table.
	MemberDead
	// MemberQuarantined: the peer's key-vocabulary digest does not match
	// ours; it is recorded but never promoted.
	MemberQuarantined
)

// String renders the event.
func (e MemberEvent) String() string {
	switch e {
	case MemberJoined:
		return "joined"
	case MemberRejoined:
		return "rejoined"
	case MemberLeft:
		return "left"
	case MemberEvicted:
		return "evicted"
	case MemberDemoted:
		return "demoted"
	case MemberDead:
		return "dead"
	case MemberQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// Membership table states, as reported in Member.Membership /
// Member.MembershipCode. Neighbor means the peer is in the live neighbor
// table; everything else is a discovery record only.
const (
	MembershipCandidate uint8 = iota
	MembershipNeighbor
	MembershipQuarantined
	MembershipLeft
	MembershipDead
)

// memberState is the discovery record's lifecycle state (the exported
// Membership* codes, typed for internal use).
type memberState uint8

const (
	stCandidate   = memberState(MembershipCandidate)
	stNeighbor    = memberState(MembershipNeighbor)
	stQuarantined = memberState(MembershipQuarantined)
	stLeft        = memberState(MembershipLeft)
	stDead        = memberState(MembershipDead)
)

func (s memberState) String() string {
	switch s {
	case stCandidate:
		return "candidate"
	case stNeighbor:
		return "neighbor"
	case stQuarantined:
		return "quarantined"
	case stLeft:
		return "left"
	case stDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Member is one row of the endpoint's membership view: every peer in the
// live neighbor table plus every discovery record not (or no longer) in
// it.
type Member struct {
	ID             uint32
	Addr           string // UDP address ("" if never learned)
	HTTPAddr       string // control-plane address derived from the announce ("" if unknown)
	Origin         string // "configured" | "discovered"
	Membership     string // "neighbor" | "candidate" | "quarantined" | "left" | "dead"
	MembershipCode uint8  // the Membership* constant behind Membership
	Peered         bool   // the peer currently lists us as its neighbor
	Score          uint64 // cluster-head score for the peer's current boot
	Energy         float64
	Boot           uint32 // the peer's boot nonce from its last full announce
	HasBoot        bool   // Boot is meaningful (probes carry no nonce)
	DataRecv       uint64 // payload frames delivered from this peer
	DataSent       uint64 // payload frames sent toward this peer
	Health         PeerHealth
	HasHealth      bool
}

// DiscoveryConfig parameterizes the membership subsystem. Requires the
// Liveness option: promotion without a failure detector would leave dead
// discovered neighbors in the table forever.
type DiscoveryConfig struct {
	// Seeds are UDP addresses announced to every interval regardless of
	// membership — the bootstrap entry points. May be empty on the seed
	// node itself, which just listens.
	Seeds []string
	// Advertise is the UDP address announced to peers (default: the bound
	// address — correct on loopback and when listening on a routable IP).
	Advertise string
	// HTTPPort is the node's control-plane port, carried in announces so
	// peers can derive the /neighbors address for mesh walking (0 = none).
	HTTPPort uint16
	// VocabDigest is the node's key-vocabulary digest (VocabDigest over
	// the registration-ordered key names). Announcing peers with a
	// different digest are quarantined, never promoted: attribute keys are
	// numbered in registration order, so a mismatched vocabulary would
	// silently mis-parse every named interest.
	VocabDigest uint64
	// Energy in (0,1] is this node's energy level, the cluster-head
	// tiebreak (default 1).
	Energy float64
	// Interval is the announce period (default 1s).
	Interval time.Duration
	// DegreeCap bounds configured + discovered neighbors (default 8).
	// Configured peers count toward the cap but are never evicted.
	DegreeCap int
	// GossipFanout is how many known peers each announce samples
	// (default 8).
	GossipFanout int
	// OnMember, when set, is invoked on membership changes. Called from
	// transport-owned goroutines; do not call back into the endpoint
	// synchronously — post onto the node's loop instead.
	OnMember func(peer uint32, ev MemberEvent)
}

// fill applies defaults.
func (c *DiscoveryConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.DegreeCap <= 0 {
		c.DegreeCap = 8
	}
	if c.GossipFanout <= 0 {
		c.GossipFanout = 8
	}
	if c.Energy <= 0 || c.Energy > 1 {
		c.Energy = 1
	}
}

// VocabDigest hashes an ordered key vocabulary (FNV-1a 64 with length
// separators). Attribute keys are numbered by registration order, so two
// nodes interoperate only when their ordered vocabularies are identical —
// this digest rides in every announce to enforce exactly that.
func VocabDigest(keys []string) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
		h ^= 0xff // separator: ["ab"] and ["a","b"] must differ
		h *= prime64
	}
	return h
}

// splitmix64 is the finalizer of the splitmix64 generator — a cheap,
// well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// clusterScore is a peer's deterministic cluster-head score: any two
// nodes compute the same value from the wire header alone. Folding the
// boot nonce in re-rolls the score each restart, rotating headship
// LEACH-style so no node stays a hot spot across its lifetime.
func clusterScore(id, boot uint32) uint64 {
	return splitmix64(uint64(id)<<32 | uint64(boot))
}

// Announce payload wire format (version 1):
//
//	[0]     codec version
//	[1]     flags (bit0: peering — "I have you as my neighbor")
//	[2:10]  vocabulary digest, big endian
//	[10:12] HTTP control-plane port, big endian (0 = none)
//	[12:14] energy, permille, big endian
//	[14]    advertised-UDP-address length, then that many bytes
//	[...]   gossip count, then per entry: peer ID u32 BE,
//	        address length byte, address bytes
const (
	discoVersion  = 1
	annFlagPeered = 1 << 0 // "I have you as my neighbor"
	annFlagLonely = 1 << 1 // "I have no peered neighbors at all — admit me"
)

// announce is a decoded announce payload.
type announce struct {
	flags    byte
	digest   uint64
	httpPort uint16
	energy   uint16 // permille
	addr     string // advertised UDP address
	gossip   []gossipEntry
}

type gossipEntry struct {
	id   uint32
	addr string
}

// encodeAnnounce renders a to wire format. Addresses longer than 255
// bytes cannot be encoded; the constructor rejects such an Advertise and
// gossip skips them.
func encodeAnnounce(a announce) []byte {
	n := 15 + len(a.addr) + 1
	for _, g := range a.gossip {
		n += 5 + len(g.addr)
	}
	b := make([]byte, 0, n)
	b = append(b, discoVersion, a.flags)
	b = binary.BigEndian.AppendUint64(b, a.digest)
	b = binary.BigEndian.AppendUint16(b, a.httpPort)
	b = binary.BigEndian.AppendUint16(b, a.energy)
	b = append(b, byte(len(a.addr)))
	b = append(b, a.addr...)
	b = append(b, byte(len(a.gossip)))
	for _, g := range a.gossip {
		b = binary.BigEndian.AppendUint32(b, g.id)
		b = append(b, byte(len(g.addr)))
		b = append(b, g.addr...)
	}
	return b
}

// decodeAnnounce parses a wire announce, copying all strings out of the
// receive buffer.
func decodeAnnounce(b []byte) (announce, error) {
	var a announce
	if len(b) < 16 {
		return a, fmt.Errorf("transport: announce too short (%d bytes)", len(b))
	}
	if b[0] != discoVersion {
		return a, fmt.Errorf("transport: announce version %d, want %d", b[0], discoVersion)
	}
	a.flags = b[1]
	a.digest = binary.BigEndian.Uint64(b[2:10])
	a.httpPort = binary.BigEndian.Uint16(b[10:12])
	a.energy = binary.BigEndian.Uint16(b[12:14])
	alen := int(b[14])
	p := 15
	if len(b) < p+alen+1 {
		return a, fmt.Errorf("transport: announce address truncated")
	}
	a.addr = string(b[p : p+alen])
	p += alen
	count := int(b[p])
	p++
	for i := 0; i < count; i++ {
		if len(b) < p+5 {
			return a, fmt.Errorf("transport: announce gossip truncated")
		}
		id := binary.BigEndian.Uint32(b[p : p+4])
		glen := int(b[p+4])
		p += 5
		if len(b) < p+glen {
			return a, fmt.Errorf("transport: announce gossip truncated")
		}
		a.gossip = append(a.gossip, gossipEntry{id: id, addr: string(b[p : p+glen])})
		p += glen
	}
	return a, nil
}

// discoRec is one peer's discovery record — the endpoint's view of a
// peer's announced identity and its place in the membership lifecycle.
type discoRec struct {
	id         uint32
	cfg        bool // statically configured: pinned, never evicted or demoted
	addr       *net.UDPAddr
	httpPort   uint16
	boot       uint32
	haveBoot   bool
	score      uint64
	energy     uint16 // permille
	state      memberState
	peered     bool      // peer's last announce this boot listed us as its neighbor
	protected  bool      // admitted via the loneliness override: immune to score eviction
	backoff    uint8     // consecutive failed handshakes, drives exponential retry damping
	promotedAt time.Time // when we promoted it (handshake deadline base)
	retryAt    time.Time // do not re-promote before this (handshake damping)
	lastHeard  time.Time // last announce/probe from the peer
	lastReply  time.Time // last rate-limited announce we sent it in response
	lastProbe  time.Time // last solicitation we sent it
}

// memberEvt is a deferred OnMember callback, fired after d.mu unlocks.
type memberEvt struct {
	peer uint32
	ev   MemberEvent
}

// discoSend is a deferred frame send, flushed after d.mu unlocks.
type discoSend struct {
	dst    uint32 // 0 when the peer ID is unknown (header dst = Broadcast)
	addr   *net.UDPAddr
	kind   uint8
	peered bool // announce peering bit
}

// discovery is one endpoint's membership engine. Lock order: d.mu may be
// held while taking the detector's or peer table's lock, never the
// reverse — detector callbacks fire outside its own lock.
type discovery struct {
	cfg       DiscoveryConfig
	u         *UDP
	seeds     []*net.UDPAddr
	advertise string
	energy    uint16 // permille

	mu              sync.Mutex
	rng             *rand.Rand
	recs            map[uint32]*discoRec
	lastLonelyEvict time.Time // rate limit on loneliness-override evictions
	lonelyRR        uint32    // rotates the single per-batch loneliness bid

	stop chan struct{}
	done chan struct{}
}

// newDiscovery builds the engine (ListenUDP starts its goroutine).
func newDiscovery(cfg DiscoveryConfig, u *UDP, seed int64) (*discovery, error) {
	cfg.fill()
	d := &discovery{
		cfg:  cfg,
		u:    u,
		rng:  rand.New(rand.NewSource(seed)),
		recs: map[uint32]*discoRec{},
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, s := range cfg.Seeds {
		a, err := net.ResolveUDPAddr("udp", s)
		if err != nil {
			return nil, fmt.Errorf("transport: seed %q: %w", s, err)
		}
		d.seeds = append(d.seeds, a)
	}
	d.advertise = cfg.Advertise
	if d.advertise == "" {
		d.advertise = u.LocalAddr().String()
	}
	if len(d.advertise) > 255 {
		return nil, fmt.Errorf("transport: advertise address %q too long", d.advertise)
	}
	d.energy = uint16(cfg.Energy * 1000)
	return d, nil
}

// run is the announce goroutine: an immediate round, then one per
// Interval. Each round also sweeps the record table (handshake deadlines,
// stale-record expiry).
func (d *discovery) run() {
	defer close(d.done)
	d.round()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.round()
		}
	}
}

// round sweeps the table and announces to seeds, neighbors and a probe
// batch of candidates.
func (d *discovery) round() {
	now := time.Now()
	var sends []discoSend
	var events []memberEvt

	d.mu.Lock()
	for id, r := range d.recs {
		if r.cfg {
			continue
		}
		switch r.state {
		case stNeighbor:
			// Handshake deadline: a promoted peer that never peered back
			// within three intervals is full (we are below its cut) — stop
			// holding a one-way slot for it.
			if !r.peered && now.Sub(r.promotedAt) > 3*d.cfg.Interval {
				d.demoteLocked(r, stCandidate)
				r.retryAt = now.Add(d.handshakeBackoffLocked(r))
				d.u.stats.MemberDemotions.Add(1)
				events = append(events, memberEvt{id, MemberDemoted})
				if r.addr != nil {
					// Tell the peer explicitly (bit clear): if it admitted
					// us in a race with this deadline, it frees its slot now
					// instead of waiting out its failure detector against
					// our heartbeat silence — the lag that otherwise keeps
					// an asymmetric pair oscillating.
					r.lastReply = now
					sends = append(sends, discoSend{dst: id, addr: r.addr, kind: kindAnnounce})
				}
			}
		default:
			// Non-neighbor records expire after prolonged silence so the
			// table tracks the mesh, not its history — except records inside
			// their courtship retry window. Their silence is self-inflicted
			// (we stopped probing them, so they stopped replying), and
			// deleting them would wipe the escalating backoff counter; seed
			// gossip re-teaches the record moments later with a fresh
			// counter, and the saturation courtship loop the backoff exists
			// to damp starts over at the floor.
			if now.Sub(r.lastHeard) > 10*d.cfg.Interval && !now.Before(r.retryAt) {
				delete(d.recs, id)
			}
		}
	}

	// Announce to every neighbor — dynamic and configured — with the
	// peering bit set; that bit is the other side's proof the handshake
	// completed.
	covered := map[string]bool{}
	for _, r := range d.recs {
		if r.state == stNeighbor && r.addr != nil {
			sends = append(sends, discoSend{dst: r.id, addr: r.addr, kind: kindAnnounce, peered: true})
			covered[r.addr.String()] = true
		}
	}
	for id, addr := range d.u.configuredPeers() {
		if covered[addr.String()] {
			continue
		}
		sends = append(sends, discoSend{dst: id, addr: addr, kind: kindAnnounce, peered: true})
		covered[addr.String()] = true
	}
	// Seeds are announced to every round regardless of membership: they
	// are the mesh's rendezvous points, and their gossip replies are what
	// spreads knowledge of everyone else.
	for _, s := range d.seeds {
		as := s.String()
		if covered[as] || as == d.advertise {
			continue
		}
		sends = append(sends, discoSend{dst: 0, addr: s, kind: kindAnnounce})
		covered[as] = true
	}
	// While below the cap, solicit announces from a few candidates per
	// round (oldest-probed first). Candidates learned from gossip only
	// become neighbors through a full announce — probes carry no digest
	// or boot nonce — so this is what turns gossip into edges.
	if d.roomLocked() > 0 {
		var due []*discoRec
		for _, r := range d.recs {
			if !r.cfg && r.state == stCandidate && r.addr != nil && now.After(r.retryAt) {
				due = append(due, r)
			}
		}
		for len(due) > 0 && len(due) > 4 {
			// Keep the 4 least-recently-probed.
			worst := 0
			for i, r := range due {
				if r.lastProbe.After(due[worst].lastProbe) {
					worst = i
				}
			}
			due = append(due[:worst], due[worst+1:]...)
		}
		for _, r := range due {
			r.lastProbe = now
			sends = append(sends, discoSend{dst: r.id, addr: r.addr, kind: kindProbe})
		}
	}
	d.mu.Unlock()

	d.flush(sends)
	d.fire(events)
}

// roomLocked is the number of free neighbor slots under the degree cap.
func (d *discovery) roomLocked() int {
	dyn := 0
	for _, r := range d.recs {
		if !r.cfg && r.state == stNeighbor {
			dyn++
		}
	}
	return d.cfg.DegreeCap - d.u.configuredCount() - dyn
}

// better reports whether a is preferred over b for a neighbor slot:
// higher cluster-head score, then higher energy, then higher ID. Strictly
// lexicographic and identical on every node, so the mesh-wide matching
// converges instead of oscillating.
func better(a, b *discoRec) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.energy != b.energy {
		return a.energy > b.energy
	}
	return a.id > b.id
}

// weakestLocked returns the least-preferred evictable dynamic neighbor
// (nil when there is none). Configured neighbors are pinned by the
// operator, and loneliness-admitted ones are protected — evicting those
// would re-isolate the node the override just rescued. Unless
// includePeered is set, mutual links are off the table too: only one-way
// placeholder slots are offered up.
func (d *discovery) weakestLocked(includePeered bool) *discoRec {
	var w *discoRec
	for _, r := range d.recs {
		if r.cfg || r.protected || r.state != stNeighbor {
			continue
		}
		if r.peered && !includePeered {
			continue
		}
		if w == nil || better(w, r) {
			w = r
		}
	}
	return w
}

// promoteLocked installs r as a full neighbor: peer table, failure
// detector, reliable/custody machinery all see it from here on.
func (d *discovery) promoteLocked(r *discoRec, now time.Time) {
	r.state = stNeighbor
	r.promotedAt = now
	d.u.addNeighbor(r.id, r.addr)
	d.u.stats.MemberJoins.Add(1)
}

// Courtship damping schedule. A failed two-way handshake retries after
// 5 announce intervals, doubling per consecutive failure; after
// courtshipQuiesceAfter straight failures the peer is treated as
// saturated and the retry jumps to courtshipQuiesceIntervals — far past
// any plausible soft-state horizon, so the courtship effectively stops.
const (
	courtshipQuiesceAfter     = 3
	courtshipQuiesceIntervals = 5 << 10 // 5120 announce intervals
)

// handshakeBackoffLocked returns the retry damping after a failed
// two-way handshake and escalates it for the next failure: 5 intervals,
// then 10, then 20, then the quiescent ceiling. Without the ceiling a
// sub-cap node bordering a saturated clique courts the same full peers
// forever — promote, hold the one-way slot three intervals, demote,
// retry — and every cycle purges its gradients (the demote is a
// NeighborDead to the core) while flooding announces. Quiescing is safe
// because the damped record is passive, not blind: the counter resets
// the moment the peer does reciprocate or returns with a new boot, and
// a peer that later frees a slot courts us itself — its peered announce
// bypasses retryAt via the peerWantsUs override in considerLocked.
func (d *discovery) handshakeBackoffLocked(r *discoRec) time.Duration {
	if r.backoff >= courtshipQuiesceAfter {
		return courtshipQuiesceIntervals * d.cfg.Interval
	}
	delay := 5 * d.cfg.Interval << r.backoff
	r.backoff++
	return delay
}

// demoteLocked removes r from the neighbor table into the given record
// state, dropping its detector, reliable and custody state.
func (d *discovery) demoteLocked(r *discoRec, to memberState) {
	r.state = to
	r.peered = false
	r.protected = false
	d.u.removeNeighbor(r.id)
}

// considerLocked decides whether candidate r earns a neighbor slot:
// promote into free room, or evict a strictly weaker dynamic neighbor.
// peerWantsUs (the announce carried the peering bit) overrides the
// handshake-damping retry window — if the peer already holds a slot for
// us, reciprocating immediately is what completes the handshake. lonely
// (the announce carried the loneliness flag) admits a peer the score
// order would starve: an isolated node evicts our weakest neighbor
// regardless of score, rate-limited to one such eviction per interval,
// and the rescued peer's slot is protected so a later high-score
// announce cannot re-isolate it. The evictee keeps its other links and
// is therefore not lonely itself, so the displacement terminates instead
// of cascading.
func (d *discovery) considerLocked(r *discoRec, now time.Time, peerWantsUs, lonely bool) (promoted bool, evicted *discoRec) {
	if !now.After(r.retryAt) && !peerWantsUs && !lonely {
		return false, nil
	}
	if d.roomLocked() > 0 {
		d.promoteLocked(r, now)
		return true, nil
	}
	// Score eviction: a strictly better candidate may displace a one-way
	// placeholder, never a completed mutual link.
	w := d.weakestLocked(false)
	protect := false
	if w == nil || !better(r, w) {
		if !lonely || now.Sub(d.lastLonelyEvict) < d.cfg.Interval {
			return false, nil
		}
		// Loneliness override: admit the isolated peer over whatever slot
		// is cheapest — a placeholder if there is one, a mutual link as
		// the last resort (its holder keeps cap-1 other links and is not
		// itself lonely, so the displacement terminates).
		if w == nil {
			w = d.weakestLocked(true)
		}
		if w == nil {
			return false, nil
		}
		d.lastLonelyEvict = now
		protect = true
	}
	d.demoteLocked(w, stCandidate)
	w.retryAt = now.Add(d.handshakeBackoffLocked(w))
	d.u.stats.MemberEvictions.Add(1)
	d.promoteLocked(r, now)
	r.protected = protect
	return true, w
}

// onFrame dispatches a discovery frame from the endpoint's read loop.
// src is the datagram's wire source address.
func (d *discovery) onFrame(f frame, src *net.UDPAddr) {
	switch f.kind {
	case kindAnnounce:
		d.u.stats.AnnouncesRecv.Add(1)
		a, err := decodeAnnounce(f.payload)
		if err != nil {
			d.u.stats.RecvDropped.Add(1)
			return
		}
		d.onAnnounce(f.from, f.boot, a, src)
	case kindProbe:
		d.u.stats.ProbesRecv.Add(1)
		d.onProbe(f.from, src)
	case kindLeave:
		d.u.stats.LeavesRecv.Add(1)
		d.onLeave(f.from)
	}
}

// onAnnounce is the heart of the membership protocol; see the file
// comment for the lifecycle it implements.
func (d *discovery) onAnnounce(from, boot uint32, a announce, src *net.UDPAddr) {
	addr, err := net.ResolveUDPAddr("udp", a.addr)
	if err != nil || addr.Port == 0 {
		addr = src // unusable advertised address: fall back to the wire source
	}
	now := time.Now()
	var sends []discoSend
	var events []memberEvt

	d.mu.Lock()
	r := d.recs[from]
	if r == nil {
		r = &discoRec{id: from, cfg: d.u.isConfigured(from)}
		if r.cfg {
			r.state = stNeighbor
		}
		d.recs[from] = r
	}
	r.lastHeard = now

	// Vocabulary gate: a peer whose ordered key vocabulary differs would
	// mis-parse every named interest we exchange. Record it, reply so it
	// quarantines us symmetrically, but never promote. (Configured peers
	// are exempt: the operator pinned them, and key-vocabulary state files
	// can legitimately differ transiently during a rolling restart.)
	if !r.cfg && a.digest != d.cfg.VocabDigest {
		wasNeighbor := r.state == stNeighbor
		if wasNeighbor {
			d.demoteLocked(r, stQuarantined)
		}
		if r.state != stQuarantined {
			r.state = stQuarantined
		}
		if wasNeighbor || r.boot != boot || !r.haveBoot {
			d.u.stats.MemberQuarantined.Add(1)
			events = append(events, memberEvt{from, MemberQuarantined})
		}
		r.boot, r.haveBoot = boot, true
		r.addr, r.httpPort = addr, a.httpPort
		if now.Sub(r.lastReply) >= d.cfg.Interval/2 {
			r.lastReply = now
			sends = append(sends, discoSend{dst: from, addr: addr, kind: kindAnnounce})
		}
		d.mu.Unlock()
		d.flush(sends)
		d.fire(events)
		return
	}
	if r.state == stQuarantined {
		r.state = stCandidate // digest matches now: restarted with fixed keys
	}

	// Boot-nonce change: same identity, new incarnation. Its receive
	// windows and sequence spaces reset with the boot, so retransmitting
	// old reliable frames or custody offers at it is at best noise — drop
	// that state and give the detector a fresh grace window.
	if r.haveBoot && r.boot != boot {
		d.u.forgetPeer(from)
		r.peered = false
		r.backoff = 0
		if r.state == stNeighbor {
			d.u.refreshPeer(from)
			r.promotedAt = now
			d.u.stats.MemberRejoins.Add(1)
			events = append(events, memberEvt{from, MemberRejoined})
		}
	}
	r.boot, r.haveBoot = boot, true
	r.score = clusterScore(from, boot)
	r.httpPort, r.energy = a.httpPort, a.energy
	peerWantsUs := a.flags&annFlagPeered != 0
	peerLonely := a.flags&annFlagLonely != 0
	if peerWantsUs {
		r.peered = true
		r.backoff = 0
	}
	if r.addr == nil || r.addr.String() != addr.String() {
		r.addr = addr
		if r.state == stNeighbor && !r.cfg {
			d.u.addNeighbor(from, addr) // re-point the live table at the new address
		}
	}

	promotedNow := false
	switch {
	case r.cfg:
		// Pinned by the operator: metadata refresh only.
	case r.state == stNeighbor:
		if !peerWantsUs && r.peered {
			// It held a slot for us and let it go (evicted us, or left and
			// came back smaller): symmetry is gone, drop it too. This is a
			// failed handshake from our side — escalate the same damping as
			// the deadline path, or a pair straddling a saturation boundary
			// re-courts at the floor forever.
			d.demoteLocked(r, stCandidate)
			r.retryAt = now.Add(d.handshakeBackoffLocked(r))
			d.u.stats.MemberDemotions.Add(1)
			events = append(events, memberEvt{from, MemberDemoted})
		}
	default:
		promoted, evicted := d.considerLocked(r, now, peerWantsUs, peerLonely)
		if promoted {
			promotedNow = true
			events = append(events, memberEvt{from, MemberJoined})
			// The promotion announce (peering bit set) is what completes
			// the handshake — send it now, not at the next tick.
			r.lastReply = now
			sends = append(sends, discoSend{dst: from, addr: addr, kind: kindAnnounce, peered: true})
		}
		if evicted != nil {
			events = append(events, memberEvt{evicted.id, MemberEvicted})
			if evicted.addr != nil {
				// Tell the evictee immediately (bit clear) so it frees its
				// slot for someone else instead of waiting out the deadline.
				evicted.lastReply = now
				sends = append(sends, discoSend{dst: evicted.id, addr: evicted.addr, kind: kindAnnounce})
			}
		}
	}

	// Gossip: first sighting of unknown peers. They enter as candidates
	// and get probed; the probe solicits their full announce, which is
	// what can promote them. Sampling every record — not just neighbors —
	// is what lets bottom-scored nodes find each other once the
	// high-score slots fill up.
	for _, g := range a.gossip {
		if g.id == d.u.id || g.id == Broadcast || g.id == from {
			continue
		}
		if _, ok := d.recs[g.id]; ok {
			continue
		}
		ga, err := net.ResolveUDPAddr("udp", g.addr)
		if err != nil {
			continue
		}
		nr := &discoRec{id: g.id, cfg: d.u.isConfigured(g.id), addr: ga, lastHeard: now, lastProbe: now}
		if nr.cfg {
			nr.state = stNeighbor
		}
		d.recs[g.id] = nr
		d.u.stats.GossipLearned.Add(1)
		if !nr.cfg {
			sends = append(sends, discoSend{dst: g.id, addr: ga, kind: kindProbe})
		}
	}

	// Rate-limited reply, so a pair of nodes converges in one exchange
	// instead of one announce interval per direction — skipped when the
	// promotion announce above already answered.
	if !promotedNow && now.Sub(r.lastReply) >= d.cfg.Interval/2 {
		r.lastReply = now
		sends = append(sends, discoSend{
			dst: from, addr: addr, kind: kindAnnounce,
			peered: r.cfg || r.state == stNeighbor,
		})
	}
	d.mu.Unlock()

	d.flush(sends)
	d.fire(events)
}

// onProbe answers a solicitation with a unicast announce to the wire
// source. A probe proves the prober exists but carries no digest or boot
// nonce, so it can create a candidate record — never promote.
func (d *discovery) onProbe(from uint32, src *net.UDPAddr) {
	now := time.Now()
	d.mu.Lock()
	r := d.recs[from]
	if r == nil {
		r = &discoRec{id: from, cfg: d.u.isConfigured(from), addr: src}
		if r.cfg {
			r.state = stNeighbor
		}
		d.recs[from] = r
	}
	r.lastHeard = now
	if r.addr == nil {
		r.addr = src
	}
	reply := now.Sub(r.lastReply) >= d.cfg.Interval/2
	if reply {
		r.lastReply = now
	}
	peered := r.cfg || r.state == stNeighbor
	d.mu.Unlock()
	if reply {
		d.flush([]discoSend{{dst: from, addr: src, kind: kindAnnounce, peered: peered}})
	}
}

// onLeave handles a graceful departure: demote immediately instead of
// waiting out SuspectAfter/DeadAfter. A configured peer cannot be removed
// from the table, so it is force-marked dead in the detector — any later
// frame from it recovers it as usual.
func (d *discovery) onLeave(from uint32) {
	var events []memberEvt
	d.mu.Lock()
	r := d.recs[from]
	if r != nil && !r.cfg {
		if r.state == stNeighbor {
			d.demoteLocked(r, stLeft)
			d.u.stats.MemberDepartures.Add(1)
			events = append(events, memberEvt{from, MemberLeft})
		} else {
			r.state = stLeft
		}
	}
	cfgPeer := d.u.isConfigured(from)
	d.mu.Unlock()
	if cfgPeer && d.u.det != nil {
		d.u.det.forceDead(from)
	}
	d.fire(events)
}

// onPeerDead reacts to the failure detector declaring a peer dead: a
// discovered neighbor is removed from the live table (its slot frees up
// for someone alive), keeping only the discovery record. A re-announce —
// same or new boot — walks it back in through the normal promotion path.
func (d *discovery) onPeerDead(peer uint32) {
	var events []memberEvt
	d.mu.Lock()
	r := d.recs[peer]
	if r != nil && !r.cfg && r.state == stNeighbor {
		d.demoteLocked(r, stDead)
		r.retryAt = time.Now().Add(d.cfg.Interval)
		d.u.stats.MemberDeadRemoved.Add(1)
		events = append(events, memberEvt{peer, MemberDead})
	}
	d.mu.Unlock()
	d.fire(events)
}

// leave notifies every neighbor of a graceful shutdown.
func (d *discovery) leave() {
	var sends []discoSend
	d.mu.Lock()
	for _, r := range d.recs {
		if r.state == stNeighbor && !r.cfg && r.addr != nil {
			sends = append(sends, discoSend{dst: r.id, addr: r.addr, kind: kindLeave})
		}
	}
	d.mu.Unlock()
	for id, addr := range d.u.configuredPeers() {
		sends = append(sends, discoSend{dst: id, addr: addr, kind: kindLeave})
	}
	d.flush(sends)
}

// gossipSample draws up to GossipFanout known peer addresses, excluding
// the announce's destination.
func (d *discovery) gossipSample(exclude uint32) []gossipEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	var pool []gossipEntry
	for id, r := range d.recs {
		if id == exclude || r.addr == nil || r.state == stQuarantined {
			continue
		}
		as := r.addr.String()
		if len(as) > 255 {
			continue
		}
		pool = append(pool, gossipEntry{id: id, addr: as})
	}
	d.rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > d.cfg.GossipFanout {
		pool = pool[:d.cfg.GossipFanout]
	}
	return pool
}

// isLonely reports whether this node currently has no mutual neighbor
// link at all — the condition the announce loneliness flag advertises.
func (d *discovery) isLonely() bool {
	if d.u.configuredCount() > 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, r := range d.recs {
		if r.state == stNeighbor && (r.peered || r.cfg) {
			return false
		}
	}
	return true
}

// flush puts deferred sends on the wire (outside d.mu).
func (d *discovery) flush(sends []discoSend) {
	lonelyIdx := d.pickLonelyBid(sends)
	for i, s := range sends {
		switch s.kind {
		case kindAnnounce:
			a := announce{
				digest:   d.cfg.VocabDigest,
				httpPort: d.cfg.HTTPPort,
				energy:   d.energy,
				addr:     d.advertise,
				gossip:   d.gossipSample(s.dst),
			}
			if s.peered {
				a.flags |= annFlagPeered
			}
			if i == lonelyIdx {
				a.flags |= annFlagLonely
			}
			d.u.writeDisco(s.dst, s.addr, kindAnnounce, encodeAnnounce(a))
			d.u.stats.AnnouncesSent.Add(1)
		case kindProbe:
			d.u.writeDisco(s.dst, s.addr, kindProbe, nil)
			d.u.stats.ProbesSent.Add(1)
		case kindLeave:
			d.u.writeDisco(s.dst, s.addr, kindLeave, nil)
			d.u.stats.LeavesSent.Add(1)
		}
	}
}

// pickLonelyBid chooses at most one announce per batch to carry the
// loneliness flag, returning its index (-1: none). The flag solicits a
// rescue eviction; stamping every outgoing announce would recruit every
// recipient at once, and a mesh's worth of simultaneous rescues
// oversubscribes the lonely node — n-1 freshly protected slots pointed
// at a node with room for a fraction of them, most torn down again in
// the churn that follows. One bid per batch, rotating targets, finds a
// single rescuer within a round or two.
func (d *discovery) pickLonelyBid(sends []discoSend) int {
	var ann []int
	for i, s := range sends {
		if s.kind == kindAnnounce {
			ann = append(ann, i)
		}
	}
	if len(ann) == 0 || !d.isLonely() {
		return -1
	}
	d.mu.Lock()
	i := ann[int(d.lonelyRR)%len(ann)]
	d.lonelyRR++
	d.mu.Unlock()
	return i
}

// fire invokes deferred membership callbacks (outside d.mu).
func (d *discovery) fire(events []memberEvt) {
	if d.cfg.OnMember == nil {
		return
	}
	for _, e := range events {
		d.cfg.OnMember(e.peer, e.ev)
	}
}

// fillMembers merges discovery metadata into the peer-table member rows
// (matched by ID) and appends rows for records not in the table. The
// record state overrides the table's membership verdict: the table
// snapshot was taken under a different lock, so a demote+promote landing
// between the two snapshots would otherwise show both the evictee's
// stale "neighbor" row and the newcomer's — a phantom degree above the
// cap. Under d.mu the record states are the consistent truth.
func (d *discovery) fillMembers(rows []Member, seen map[uint32]bool) []Member {
	d.mu.Lock()
	defer d.mu.Unlock()
	for id, r := range d.recs {
		if seen[id] {
			for i := range rows {
				if rows[i].ID == id {
					if !r.cfg {
						rows[i].Membership = r.state.String()
						rows[i].MembershipCode = uint8(r.state)
					}
					d.annotateLocked(&rows[i], r)
					break
				}
			}
			continue
		}
		m := Member{
			ID:             id,
			Origin:         "discovered",
			Membership:     r.state.String(),
			MembershipCode: uint8(r.state),
		}
		if r.cfg {
			m.Origin = "configured"
		}
		d.annotateLocked(&m, r)
		rows = append(rows, m)
	}
	return rows
}

// annotateLocked copies a record's announced metadata into a member row.
func (d *discovery) annotateLocked(m *Member, r *discoRec) {
	if r.addr != nil {
		m.Addr = r.addr.String()
		if r.httpPort != 0 {
			if host, _, err := net.SplitHostPort(m.Addr); err == nil {
				m.HTTPAddr = net.JoinHostPort(host, fmt.Sprintf("%d", r.httpPort))
			}
		}
	}
	m.Peered = r.peered || r.cfg
	m.Score = r.score
	m.Energy = float64(r.energy) / 1000
	m.Boot, m.HasBoot = r.boot, r.haveBoot
}

// close stops the announce goroutine.
func (d *discovery) close() {
	close(d.stop)
	<-d.done
}
