package transport

import (
	"testing"
	"time"
)

func TestMeshDeliversAlongAdjacency(t *testing.T) {
	m := NewMesh(1)
	c1, c2, c3 := &collector{}, &collector{}, &collector{}
	l1 := m.Attach(1, c1.deliver)
	m.Attach(2, c2.deliver)
	m.Attach(3, c3.deliver)
	m.Line(1, 2, 3)

	// Broadcast from 1 reaches only its neighbor 2, not 3.
	if err := l1.Send(Broadcast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if got, from := c2.snapshot(); len(got) != 1 || got[0] != "hello" || from[0] != 1 {
		t.Fatalf("node 2 got %v from %v", got, from)
	}
	if c3.count() != 0 {
		t.Fatal("broadcast must not skip hops")
	}

	// Unicast to a non-neighbor errors; to a neighbor delivers.
	if err := l1.Send(3, []byte("skip")); err == nil {
		t.Fatal("unicast across two hops must error")
	}
	if err := l1.Send(2, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	if c2.count() != 2 {
		t.Fatalf("node 2 got %d messages, want 2", c2.count())
	}
	if l1.Stats().Sent.Load() != 2 || l1.Stats().SendErrors.Load() != 1 {
		t.Fatalf("accounting: %d sent %d errors, want 2/1",
			l1.Stats().Sent.Load(), l1.Stats().SendErrors.Load())
	}
}

func TestMeshLossAndLatency(t *testing.T) {
	m := NewMesh(3)
	m.Loss = 1.0
	c2 := &collector{}
	l1 := m.Attach(1, (&collector{}).deliver)
	m.Attach(2, c2.deliver)
	m.Connect(1, 2)
	for i := 0; i < 10; i++ {
		if err := l1.Send(2, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if c2.count() != 0 || l1.Stats().LossInjected.Load() != 10 {
		t.Fatalf("loss=1.0: delivered %d, accounted %d",
			c2.count(), l1.Stats().LossInjected.Load())
	}

	m.Loss = 0
	m.Latency = 30 * time.Millisecond
	start := time.Now()
	if err := l1.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if c2.count() != 0 {
		t.Fatal("latency>0 must not deliver synchronously")
	}
	waitFor(t, func() bool { return c2.count() == 1 }, "delayed mesh delivery")
	if el := time.Since(start); el < m.Latency {
		t.Fatalf("delivered after %v, want >= %v", el, m.Latency)
	}
}

func TestMeshCopiesPayloadPerReceiver(t *testing.T) {
	m := NewMesh(5)
	var got []byte
	l1 := m.Attach(1, nil)
	m.Attach(2, func(from uint32, p []byte) { got = p })
	m.Connect(1, 2)
	buf := []byte("mutate-me")
	if err := l1.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	if string(got) != "mutate-me" {
		t.Fatalf("receiver saw sender's mutation: %q", got)
	}
	_ = l1
}
