package transport

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestMeshDeliversAlongAdjacency(t *testing.T) {
	m := NewMesh(1)
	defer m.Close()
	c1, c2, c3 := &collector{}, &collector{}, &collector{}
	l1 := m.Attach(1, c1.deliver)
	m.Attach(2, c2.deliver)
	m.Attach(3, c3.deliver)
	m.Line(1, 2, 3)

	// Broadcast from 1 reaches only its neighbor 2, not 3.
	if err := l1.Send(Broadcast, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.count() == 1 }, "broadcast delivery")
	if got, from := c2.snapshot(); got[0] != "hello" || from[0] != 1 {
		t.Fatalf("node 2 got %v from %v", got, from)
	}
	if c3.count() != 0 {
		t.Fatal("broadcast must not skip hops")
	}

	// Unicast to a non-neighbor errors; to a neighbor delivers.
	if err := l1.Send(3, []byte("skip")); err == nil {
		t.Fatal("unicast across two hops must error")
	}
	if err := l1.Send(2, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.count() == 2 }, "unicast delivery")
	if l1.Stats().Sent.Load() != 2 || l1.Stats().SendErrors.Load() != 1 {
		t.Fatalf("accounting: %d sent %d errors, want 2/1",
			l1.Stats().Sent.Load(), l1.Stats().SendErrors.Load())
	}
}

func TestMeshLossAndLatency(t *testing.T) {
	m := NewMesh(3)
	defer m.Close()
	m.Loss = 1.0
	c2 := &collector{}
	l1 := m.Attach(1, (&collector{}).deliver)
	m.Attach(2, c2.deliver)
	m.Connect(1, 2)
	for i := 0; i < 10; i++ {
		if err := l1.Send(2, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	if c2.count() != 0 || l1.Stats().LossInjected.Load() != 10 {
		t.Fatalf("loss=1.0: delivered %d, accounted %d",
			c2.count(), l1.Stats().LossInjected.Load())
	}

	m.Loss = 0
	m.Latency = 30 * time.Millisecond
	start := time.Now()
	if err := l1.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.count() == 1 }, "delayed mesh delivery")
	if el := time.Since(start); el < m.Latency {
		t.Fatalf("delivered after %v, want >= %v", el, m.Latency)
	}
}

func TestMeshCopiesPayloadPerReceiver(t *testing.T) {
	m := NewMesh(5)
	defer m.Close()
	var mu sync.Mutex
	var got []byte
	l1 := m.Attach(1, nil)
	m.Attach(2, func(from uint32, p []byte) {
		mu.Lock()
		got = p
		mu.Unlock()
	})
	m.Connect(1, 2)
	buf := []byte("mutate-me")
	if err := l1.Send(2, buf); err != nil {
		t.Fatal(err)
	}
	// Send copies the payload synchronously, so mutating after return is
	// safe even though delivery is queued.
	buf[0] = 'X'
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got != nil
	}, "queued delivery")
	mu.Lock()
	defer mu.Unlock()
	if string(got) != "mutate-me" {
		t.Fatalf("receiver saw sender's mutation: %q", got)
	}
}

// TestMeshQueueOverflowCountsDrops wedges a receiver's delivery callback
// and overflows its bounded queue: the mesh must drop (not buffer or
// spawn) and account the drops in the receiver's stats.
func TestMeshQueueOverflowCountsDrops(t *testing.T) {
	m := NewMesh(9)
	m.QueueLimit = 4
	defer m.Close()
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	l1 := m.Attach(1, nil)
	l2 := m.Attach(2, func(from uint32, p []byte) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	})
	m.Connect(1, 2)

	// First send occupies the delivery goroutine; wait until it is wedged
	// inside the callback so queue occupancy is deterministic.
	if err := l1.Send(2, []byte("wedge")); err != nil {
		t.Fatal(err)
	}
	<-entered
	// Four more fill the queue; everything beyond overflows.
	const extra = 10
	for i := 0; i < extra; i++ {
		if err := l1.Send(2, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := l2.Stats().QueueDrops.Load(), uint64(extra-m.QueueLimit); got != want {
		t.Fatalf("queue drops = %d, want %d", got, want)
	}
	close(release)
}

// TestMeshCloseStopsDeliveryGoroutines checks Close reaps every per-link
// delivery goroutine and that sends after Close fail cleanly.
func TestMeshCloseStopsDeliveryGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	m := NewMesh(11)
	links := make([]*MeshLink, 8)
	for i := range links {
		links[i] = m.Attach(uint32(i+1), (&collector{}).deliver)
	}
	m.Line(1, 2, 3, 4, 5, 6, 7, 8)
	if err := links[0].Send(Broadcast, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // idempotent
	if err := links[0].Send(2, []byte("late")); err != ErrClosed {
		t.Fatalf("Send after Close = %v, want ErrClosed", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, n)
	}
}
