package transport

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkDiscoveryConvergence measures mesh bootstrap: n in-process
// endpoints, one acting as the only seed, everyone else knowing nothing
// but the seed's address. The metric is wall time until every node holds
// at least one mutually-peered neighbor, plus the announce-frame overhead
// paid to get there. Baselines live in BENCH_discovery.json; CI's bench
// guard runs one iteration of each size.
func BenchmarkDiscoveryConvergence(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var msSum, perNodeSum float64
			for i := 0; i < b.N; i++ {
				ms, perNode := convergeOnce(b, n)
				msSum += ms
				perNodeSum += perNode
			}
			b.ReportMetric(msSum/float64(b.N), "ms/converge")
			b.ReportMetric(perNodeSum/float64(b.N), "announces/node")
			b.ReportMetric(0, "ns/op") // wall-clock metrics above are the signal
		})
	}
}

// convergeOnce bootstraps an n-node mesh from one seed and returns the
// time to full convergence (ms) and announce frames sent per node.
func convergeOnce(b *testing.B, n int) (ms, announcesPerNode float64) {
	b.Helper()
	const interval = 25 * time.Millisecond
	nodes := make([]*UDP, 0, n)
	defer func() {
		for _, u := range nodes {
			u.Close()
		}
	}()
	mk := func(id uint32, seeds []string) *UDP {
		u, err := ListenUDP(UDPConfig{
			ID:       id,
			Listen:   "127.0.0.1:0",
			Seed:     int64(id),
			Deliver:  func(uint32, []byte) {},
			Liveness: &LivenessConfig{Interval: 50 * time.Millisecond},
			Discovery: &DiscoveryConfig{
				Seeds:       seeds,
				Interval:    interval,
				VocabDigest: testVocab,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		return u
	}

	start := time.Now()
	seed := mk(1, nil)
	nodes = append(nodes, seed)
	seedAddr := []string{seed.LocalAddr().String()}
	for id := 2; id <= n; id++ {
		nodes = append(nodes, mk(uint32(id), seedAddr))
	}

	converged := func() bool {
		for _, u := range nodes {
			ok := false
			for _, m := range u.Members() {
				if m.MembershipCode == MembershipNeighbor && m.Peered {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	deadline := time.Now().Add(60 * time.Second)
	for !converged() {
		if time.Now().After(deadline) {
			b.Fatalf("n=%d mesh did not converge in 60s", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	var announces uint64
	for _, u := range nodes {
		announces += u.Stats().AnnouncesSent.Load()
	}
	return float64(elapsed.Microseconds()) / 1000, float64(announces) / float64(n)
}
