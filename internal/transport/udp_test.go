package transport

import (
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// collector accumulates deliveries thread-safely for assertions.
type collector struct {
	mu   sync.Mutex
	got  []string
	from []uint32
}

func (c *collector) deliver(from uint32, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.got = append(c.got, string(payload))
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func (c *collector) snapshot() ([]string, []uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.got...), append([]uint32(nil), c.from...)
}

// waitFor polls cond for up to 5 s.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// pair builds two connected loopback UDP endpoints.
func pair(t *testing.T, aCfg, bCfg UDPConfig) (*UDP, *UDP, *collector, *collector) {
	t.Helper()
	ca, cb := &collector{}, &collector{}
	aCfg.ID, aCfg.Listen, aCfg.Deliver = 1, "127.0.0.1:0", ca.deliver
	a, err := ListenUDP(aCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	bCfg.ID, bCfg.Listen, bCfg.Deliver = 2, "127.0.0.1:0", cb.deliver
	bCfg.Neighbors = map[uint32]string{1: a.LocalAddr().String()}
	b, err := ListenUDP(bCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	// a learns b's address only now that b is bound; rebuild a with the
	// full neighbor table instead of mutating (the table is static).
	a.Close()
	aCfg.Listen = a.LocalAddr().String()
	aCfg.Neighbors = map[uint32]string{2: b.LocalAddr().String()}
	a2, err := ListenUDP(aCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	return a2, b, ca, cb
}

func TestUDPUnicastRoundTrip(t *testing.T) {
	a, b, ca, cb := pair(t, UDPConfig{}, UDPConfig{})
	if err := a.Send(2, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.count() == 1 }, "b to receive")
	got, from := cb.snapshot()
	if got[0] != "ping" || from[0] != 1 {
		t.Fatalf("b received %q from %d", got[0], from[0])
	}
	if err := b.Send(1, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return ca.count() == 1 }, "a to receive")
	got, from = ca.snapshot()
	if got[0] != "pong" || from[0] != 2 {
		t.Fatalf("a received %q from %d", got[0], from[0])
	}
	if a.Stats().Sent.Load() != 1 || a.Stats().Recv.Load() != 1 {
		t.Fatalf("a accounting: %d sent %d recv, want 1/1",
			a.Stats().Sent.Load(), a.Stats().Recv.Load())
	}
	if a.Stats().SentBytes.Load() != uint64(headerSize+4) {
		t.Fatalf("a sent %d bytes, want %d", a.Stats().SentBytes.Load(), headerSize+4)
	}
}

func TestUDPBroadcastFansOutToNeighbors(t *testing.T) {
	// Hub node 1 with neighbors 2 and 3; broadcast must reach both.
	c2, c3 := &collector{}, &collector{}
	b, err := ListenUDP(UDPConfig{ID: 2, Listen: "127.0.0.1:0", Deliver: c2.deliver,
		Neighbors: map[uint32]string{1: "127.0.0.1:1"}}) // placeholder addr; b never sends
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	c, err := ListenUDP(UDPConfig{ID: 3, Listen: "127.0.0.1:0", Deliver: c3.deliver,
		Neighbors: map[uint32]string{1: "127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hub, err := ListenUDP(UDPConfig{ID: 1, Listen: "127.0.0.1:0", Deliver: (&collector{}).deliver,
		Neighbors: map[uint32]string{
			2: b.LocalAddr().String(),
			3: c.LocalAddr().String(),
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	if err := hub.Send(Broadcast, []byte("flood")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return c2.count() == 1 && c3.count() == 1 }, "both neighbors")
	if hub.Stats().Sent.Load() != 2 {
		t.Fatalf("broadcast sent %d datagrams, want 2", hub.Stats().Sent.Load())
	}
}

func TestUDPRejectsStrangersAndMalformed(t *testing.T) {
	a, b, _, cb := pair(t, UDPConfig{}, UDPConfig{})

	// A frame claiming an unconfigured sender ID must be dropped.
	stranger, err := ListenUDP(UDPConfig{ID: 99, Listen: "127.0.0.1:0",
		Deliver:   (&collector{}).deliver,
		Neighbors: map[uint32]string{2: b.LocalAddr().String()}})
	if err != nil {
		t.Fatal(err)
	}
	defer stranger.Close()
	if err := stranger.Send(2, []byte("spoof")); err != nil {
		t.Fatal(err)
	}
	// Raw garbage straight at the socket must be dropped too.
	raw, err := net.Dial("udp", b.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}

	waitFor(t, func() bool { return b.Stats().RecvDropped.Load() >= 2 }, "drop accounting")
	if cb.count() != 0 {
		t.Fatalf("b delivered %d datagrams from a stranger", cb.count())
	}

	// A legitimate frame still gets through afterwards.
	if err := a.Send(2, []byte("real")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.count() == 1 }, "legit delivery")

	// Unicast to an unknown neighbor errors without touching the wire.
	if err := a.Send(42, []byte("x")); err == nil {
		t.Fatal("send to unknown neighbor must error")
	}
	if a.Stats().SendErrors.Load() == 0 {
		t.Fatal("unknown-neighbor send must be accounted")
	}
	// Oversize payloads are rejected before framing.
	if err := a.Send(2, make([]byte, maxPayload+1)); err != ErrTooLarge {
		t.Fatalf("oversize send = %v, want ErrTooLarge", err)
	}
}

func TestUDPInjectedLossDropsEverything(t *testing.T) {
	a, _, _, cb := pair(t, UDPConfig{Loss: 1.0, Seed: 7}, UDPConfig{})
	for i := 0; i < 20; i++ {
		if err := a.Send(2, []byte("doomed")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return a.Stats().LossInjected.Load() == 20 }, "loss accounting")
	if got := a.Stats().Sent.Load(); got != 0 {
		t.Fatalf("loss=1.0 still sent %d datagrams", got)
	}
	time.Sleep(20 * time.Millisecond)
	if cb.count() != 0 {
		t.Fatalf("b received %d datagrams through loss=1.0", cb.count())
	}
}

func TestUDPInjectedLatencyDelays(t *testing.T) {
	const lat = 50 * time.Millisecond
	a, _, _, cb := pair(t, UDPConfig{Latency: lat}, UDPConfig{})
	start := time.Now()
	if err := a.Send(2, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.count() == 1 }, "delayed delivery")
	if el := time.Since(start); el < lat {
		t.Fatalf("delivery after %v, want >= %v", el, lat)
	}
}

func TestUDPCloseIsIdempotentAndLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		u, err := ListenUDP(UDPConfig{ID: 1, Listen: "127.0.0.1:0",
			Deliver: (&collector{}).deliver})
		if err != nil {
			t.Fatal(err)
		}
		if err := u.Close(); err != nil {
			t.Fatal(err)
		}
		if err := u.Close(); err != nil {
			t.Fatal(err)
		}
		if err := u.Send(2, []byte("late")); err != ErrClosed {
			t.Fatalf("Send after Close = %v, want ErrClosed", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > before+2 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, n)
	}
}
