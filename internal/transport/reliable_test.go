package transport

import (
	"sync"
	"testing"
	"time"

	"diffusion/internal/message"
)

// payloadOf builds a minimal payload whose leading byte is the message
// class — all the shedding policy looks at.
func payloadOf(c message.Class, tag string) []byte {
	return append([]byte{byte(c)}, tag...)
}

// writeLog records frames the reliable sender puts on the wire.
type writeLog struct {
	mu   sync.Mutex
	tags []string
	seqs []uint32
}

func (w *writeLog) write(peer uint32, kind uint8, seq uint32, payload []byte) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tags = append(w.tags, string(payload[1:]))
	w.seqs = append(w.seqs, seq)
}

func (w *writeLog) snapshot() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.tags...)
}

func TestDupWindow(t *testing.T) {
	var w dupWindow
	if !w.fresh(100, 5) {
		t.Fatal("first frame must be fresh")
	}
	if w.fresh(100, 5) {
		t.Fatal("retransmission must be a duplicate")
	}
	if !w.fresh(100, 6) || !w.fresh(100, 9) {
		t.Fatal("forward progress must be fresh")
	}
	// Reordered delivery inside the window: 7 and 8 unseen, 6 seen.
	if !w.fresh(100, 7) || !w.fresh(100, 8) {
		t.Fatal("reordered unseen seqs must be fresh")
	}
	if w.fresh(100, 6) || w.fresh(100, 8) || w.fresh(100, 9) {
		t.Fatal("seen seqs must be duplicates")
	}
	// Jump far ahead, then a seq far beyond the 64-deep window: stale
	// replay, suppressed.
	if !w.fresh(100, 200) {
		t.Fatal("forward jump must be fresh")
	}
	if w.fresh(100, 100) {
		t.Fatal("seq beyond the window must be suppressed")
	}
	// A new boot nonce resets the window: the peer restarted and its
	// sequence space starts over.
	if !w.fresh(200, 1) {
		t.Fatal("restarted peer's first frame must be fresh")
	}
	if w.fresh(200, 1) || !w.fresh(200, 2) {
		t.Fatal("window must track the new incarnation")
	}
	// A jump > 64 ahead clears the bitmap without losing freshness.
	if !w.fresh(200, 500) || w.fresh(200, 500) {
		t.Fatal("large jump must stay consistent")
	}
}

func TestSheddable(t *testing.T) {
	cases := []struct {
		class message.Class
		want  bool
	}{
		{message.Interest, true},
		{message.ExploratoryData, true},
		{message.Data, false},
		{message.PositiveReinforcement, false},
		{message.NegativeReinforcement, false},
	}
	for _, c := range cases {
		if got := sheddable(payloadOf(c.class, "x")); got != c.want {
			t.Errorf("sheddable(%v) = %v, want %v", c.class, got, c.want)
		}
	}
	if !sheddable(nil) {
		t.Error("empty payload should be sheddable")
	}
}

// TestReliableShedsInterestBeforeData fills a bounded queue and checks the
// overload policy: queued interest/exploratory traffic is dropped first,
// then incoming sheddable traffic, and only then the oldest data frame —
// reinforced data survives as long as anything else can go.
func TestReliableShedsInterestBeforeData(t *testing.T) {
	var stats Stats
	log := &writeLog{}
	r := newReliable(ReliableConfig{
		RTO: time.Hour, Window: 1, QueueLimit: 3, MaxRetries: 1,
	}, &stats, log.write)
	defer r.close()

	r.send(9, payloadOf(message.Data, "d1")) // in flight (window 1)
	r.send(9, payloadOf(message.Interest, "i1"))
	r.send(9, payloadOf(message.Data, "d2")) // queue: [i1 d2], pending 3
	// Queue full; a queued interest exists, so it is shed for new data.
	r.send(9, payloadOf(message.Data, "d3"))
	if got := stats.QueueDrops.Load(); got != 1 {
		t.Fatalf("queue drops = %d, want 1 (i1 shed)", got)
	}
	// Queue full of data; an incoming exploratory frame sheds itself.
	r.send(9, payloadOf(message.ExploratoryData, "e1"))
	if got := stats.QueueDrops.Load(); got != 2 {
		t.Fatalf("queue drops = %d, want 2 (e1 shed)", got)
	}
	// Queue full of data and more data arrives: the oldest queued data
	// frame gives way.
	r.send(9, payloadOf(message.Data, "d4"))
	if got := stats.QueueDrops.Load(); got != 3 {
		t.Fatalf("queue drops = %d, want 3 (d2 evicted)", got)
	}
	if got := r.pending(9); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}

	// Drain by acking whatever is written; the wire sequence must be all
	// data, in order, with the shed frames never transmitted.
	for i := 0; i < 3; i++ {
		log.mu.Lock()
		seq := log.seqs[len(log.seqs)-1]
		log.mu.Unlock()
		r.onAck(9, seq)
	}
	want := []string{"d1", "d3", "d4"}
	got := log.snapshot()
	if len(got) != len(want) {
		t.Fatalf("wire = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("wire = %v, want %v", got, want)
		}
	}
	if r.pending(9) != 0 {
		t.Fatalf("pending after drain = %d", r.pending(9))
	}
}

// TestReliableRetransmitsThenGivesUp leaves acks unanswered: the sender
// must retransmit MaxRetries times with backoff and then abandon the
// frame, freeing the window.
func TestReliableRetransmitsThenGivesUp(t *testing.T) {
	var stats Stats
	log := &writeLog{}
	r := newReliable(ReliableConfig{
		RTO: 5 * time.Millisecond, MaxRTO: 20 * time.Millisecond,
		MaxRetries: 2, Window: 4, QueueLimit: 8,
	}, &stats, log.write)
	defer r.close()

	r.send(3, payloadOf(message.Data, "lost"))
	waitFor(t, func() bool { return stats.ReliableDrops.Load() == 1 }, "give-up")
	if got := stats.Retransmits.Load(); got != 2 {
		t.Fatalf("retransmits = %d, want 2", got)
	}
	if got := len(log.snapshot()); got != 3 {
		t.Fatalf("wire attempts = %d, want 3 (1 + 2 retries)", got)
	}
	if r.pending(3) != 0 {
		t.Fatalf("abandoned frame still pending")
	}
}

// TestUDPReliableEndToEnd runs reliable unicast over real sockets through
// a one-way ack blackout: the receiver keeps delivering exactly once
// (duplicates suppressed), and once the blackout heals the sender's
// window drains.
func TestUDPReliableEndToEnd(t *testing.T) {
	rel := &ReliableConfig{RTO: 15 * time.Millisecond, MaxRTO: 30 * time.Millisecond,
		MaxRetries: 50, Window: 4, QueueLimit: 16}
	a, b, _, cb := pair(t, UDPConfig{Reliable: rel}, UDPConfig{Reliable: rel})

	// Plain delivery: one send, one delivery, acked.
	if err := a.Send(2, payloadOf(message.Data, "first")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.count() == 1 }, "reliable delivery")
	waitFor(t, func() bool { return a.rel.pending(2) == 0 }, "ack to drain window")
	if a.Stats().AcksRecv.Load() == 0 || b.Stats().AcksSent.Load() == 0 {
		t.Fatalf("ack accounting: recv=%d sent=%d",
			a.Stats().AcksRecv.Load(), b.Stats().AcksSent.Load())
	}

	// Blackout b→a (egress loss on b only): data still flows a→b, but
	// acks die, so a retransmits and b must suppress the duplicates.
	b.SetLoss(1)
	if err := a.Send(2, payloadOf(message.Data, "second")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return cb.count() == 2 }, "delivery through blackout")
	waitFor(t, func() bool { return b.Stats().DupSuppressed.Load() >= 1 }, "dup suppression")
	if cb.count() != 2 {
		t.Fatalf("duplicate reached the application: %d deliveries", cb.count())
	}
	if a.Stats().Retransmits.Load() == 0 {
		t.Fatal("no retransmissions through an ack blackout")
	}

	// Heal: the next retransmission gets acked and the window drains.
	b.SetLoss(0)
	waitFor(t, func() bool { return a.rel.pending(2) == 0 }, "window drain after heal")
	if cb.count() != 2 {
		t.Fatalf("deliveries after heal = %d, want still 2", cb.count())
	}
}
