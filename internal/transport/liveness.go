package transport

import (
	"math/rand"
	"sync"
	"time"
)

// This file implements the UDP endpoint's neighbor failure detector: a
// lightweight heartbeat protocol plus a timeout classifier. Every frame
// heard from a neighbor — data, ack or heartbeat — counts as proof of
// life; in quiet periods the detector sends ping probes and expects pongs.
// Silence beyond SuspectAfter marks the peer suspect, beyond DeadAfter
// dead. Suspect and dead peers keep being probed, with exponential backoff
// plus jitter (so a whole cluster does not probe a rebooting node in
// lockstep), and any frame from the peer — including one with a fresh boot
// nonce after a crash-restart — flips it back to alive immediately.
//
// The detector deliberately lives below the diffusion layer: the paper's
// soft state would eventually stop using a dead neighbor's gradients on
// its own, but only after interest refreshes and reinforcement decay time
// out. The detector turns "stopped hearing frames" into an explicit event
// the node can react to within a couple of heartbeat intervals.

// PeerState classifies a neighbor's liveness.
type PeerState uint8

// Peer liveness states.
const (
	PeerAlive PeerState = iota
	PeerSuspect
	PeerDead
)

// String renders the state.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return "unknown"
	}
}

// PeerHealth is one neighbor's liveness snapshot.
type PeerHealth struct {
	State PeerState
	// LastHeard is how long ago the last frame from this peer arrived
	// (measured from endpoint start when nothing was ever heard).
	LastHeard time.Duration
	// RTTMicros is the most recent heartbeat round-trip time in
	// microseconds (0 until a probe has completed).
	RTTMicros int64
}

// LivenessConfig parameterizes the failure detector. The zero value of
// every field takes a default derived from Interval.
type LivenessConfig struct {
	// Interval is the heartbeat period toward an alive neighbor
	// (default 1s).
	Interval time.Duration
	// SuspectAfter is the silence that marks a peer suspect
	// (default 3×Interval).
	SuspectAfter time.Duration
	// DeadAfter is the silence that marks a peer dead (default
	// 8×Interval; must exceed SuspectAfter).
	DeadAfter time.Duration
	// MaxProbeBackoff caps the exponential probe backoff toward suspect
	// and dead peers (default 8×Interval).
	MaxProbeBackoff time.Duration
	// OnStateChange, when set, is invoked on every peer state transition.
	// It is called from transport-owned goroutines and must not call back
	// into the endpoint synchronously; post onto the node's loop instead.
	OnStateChange func(peer uint32, state PeerState)
	// Seed drives the probe jitter stream (0 takes the endpoint's seed).
	Seed int64
}

// fill applies defaults.
func (c *LivenessConfig) fill() {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 3 * c.Interval
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 8 * c.Interval
		if c.DeadAfter <= c.SuspectAfter {
			c.DeadAfter = 2 * c.SuspectAfter
		}
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 8 * c.Interval
	}
}

// peerLiveness is the detector's per-neighbor record.
type peerLiveness struct {
	state     PeerState
	lastHeard time.Time
	nextProbe time.Time
	backoff   time.Duration // current probe period (grows while silent)
	pingSeq   uint32        // seq of the outstanding probe
	pingAt    time.Time     // when it was sent
	rttMicros int64         // latest completed round trip
}

// detector is one endpoint's failure detector. sendProbe writes a ping
// frame to the peer through the endpoint's impairment path.
type detector struct {
	cfg       LivenessConfig
	stats     *Stats
	sendProbe func(peer uint32, seq uint32)

	mu      sync.Mutex
	rng     *rand.Rand
	peers   map[uint32]*peerLiveness
	nextSeq uint32

	stop chan struct{}
	done chan struct{}
}

// newDetector builds a detector for the given peers; run starts its
// goroutine.
func newDetector(cfg LivenessConfig, seed int64, peers []uint32, stats *Stats,
	sendProbe func(peer, seq uint32)) *detector {
	cfg.fill()
	if cfg.Seed != 0 {
		seed = cfg.Seed
	}
	d := &detector{
		cfg:       cfg,
		stats:     stats,
		sendProbe: sendProbe,
		rng:       rand.New(rand.NewSource(seed)),
		peers:     make(map[uint32]*peerLiveness, len(peers)),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	now := time.Now()
	for _, id := range peers {
		// A fresh endpoint grants every neighbor a full DeadAfter of grace:
		// peers start alive with "heard at boot".
		d.peers[id] = &peerLiveness{
			state:     PeerAlive,
			lastHeard: now,
			nextProbe: now, // probe immediately so RTTs appear early
			backoff:   cfg.Interval,
		}
	}
	return d
}

// run is the detector goroutine: a coarse tick drives probing and state
// classification. The tick is a fraction of the heartbeat interval so
// transitions land within ~Interval/4 of their deadline.
func (d *detector) run() {
	defer close(d.done)
	tick := d.cfg.Interval / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.tick(time.Now())
		}
	}
}

// tick classifies every peer and sends due probes.
func (d *detector) tick(now time.Time) {
	type transition struct {
		peer  uint32
		state PeerState
	}
	var transitions []transition
	type probe struct {
		peer uint32
		seq  uint32
	}
	var probes []probe

	d.mu.Lock()
	for id, p := range d.peers {
		silence := now.Sub(p.lastHeard)
		want := p.state
		switch {
		case silence >= d.cfg.DeadAfter:
			want = PeerDead
		case silence >= d.cfg.SuspectAfter:
			want = PeerSuspect
		}
		// Only the detector goroutine worsens a state; recovery happens in
		// markHeard. A peer never goes dead → suspect here.
		if want > p.state {
			if want == PeerSuspect {
				d.stats.PeerSuspects.Add(1)
			}
			if want == PeerDead {
				d.stats.PeerDeaths.Add(1)
			}
			p.state = want
			transitions = append(transitions, transition{id, want})
		}
		if !now.Before(p.nextProbe) {
			d.nextSeq++
			p.pingSeq = d.nextSeq
			p.pingAt = now
			probes = append(probes, probe{id, p.pingSeq})
			if p.state == PeerAlive {
				p.backoff = d.cfg.Interval
			} else {
				// Exponential backoff while the peer stays silent, capped.
				p.backoff *= 2
				if p.backoff > d.cfg.MaxProbeBackoff {
					p.backoff = d.cfg.MaxProbeBackoff
				}
			}
			// ±25% jitter de-synchronizes probes across the cluster.
			jitter := time.Duration(d.rng.Int63n(int64(p.backoff)/2+1)) - p.backoff/4
			p.nextProbe = now.Add(p.backoff + jitter)
		}
	}
	d.mu.Unlock()

	for _, pr := range probes {
		d.sendProbe(pr.peer, pr.seq)
	}
	if d.cfg.OnStateChange != nil {
		for _, tr := range transitions {
			d.cfg.OnStateChange(tr.peer, tr.state)
		}
	}
}

// markHeard records proof of life from a peer (any well-formed frame).
func (d *detector) markHeard(peer uint32) {
	d.mu.Lock()
	p, ok := d.peers[peer]
	if !ok {
		d.mu.Unlock()
		return
	}
	p.lastHeard = time.Now()
	recovered := p.state != PeerAlive
	if recovered {
		p.state = PeerAlive
		p.backoff = d.cfg.Interval
		p.nextProbe = p.lastHeard.Add(p.backoff)
		d.stats.PeerRecoveries.Add(1)
	}
	d.mu.Unlock()
	if recovered && d.cfg.OnStateChange != nil {
		d.cfg.OnStateChange(peer, PeerAlive)
	}
}

// addPeer registers a peer with the detector, or resets an existing
// record to freshly-alive. Discovery calls it when a peer is promoted to
// neighbor and again when a promoted peer re-announces with a new boot
// nonce: either way the peer earns a full DeadAfter of grace, and no
// OnStateChange fires (membership events cover the promotion itself).
func (d *detector) addPeer(peer uint32) {
	now := time.Now()
	d.mu.Lock()
	if p, ok := d.peers[peer]; ok {
		p.state = PeerAlive
		p.lastHeard = now
		p.nextProbe = now
		p.backoff = d.cfg.Interval
	} else {
		d.peers[peer] = &peerLiveness{
			state:     PeerAlive,
			lastHeard: now,
			nextProbe: now,
			backoff:   d.cfg.Interval,
		}
	}
	d.mu.Unlock()
}

// removePeer forgets a peer entirely: no more probes, no snapshot entry,
// no further transitions. Discovery calls it when a discovered neighbor is
// demoted or removed.
func (d *detector) removePeer(peer uint32) {
	d.mu.Lock()
	delete(d.peers, peer)
	d.mu.Unlock()
}

// forceDead marks a peer dead immediately, as if DeadAfter of silence had
// elapsed — the reaction to an explicit leave frame from a configured
// neighbor. The usual OnStateChange fires, and any later frame from the
// peer recovers it through markHeard as normal.
func (d *detector) forceDead(peer uint32) {
	d.mu.Lock()
	p, ok := d.peers[peer]
	changed := ok && p.state != PeerDead
	if changed {
		p.state = PeerDead
		// Backdate the silence so a snapshot agrees with the state and the
		// probe path treats the peer like any other dead one.
		p.lastHeard = time.Now().Add(-d.cfg.DeadAfter)
		d.stats.PeerDeaths.Add(1)
	}
	d.mu.Unlock()
	if changed && d.cfg.OnStateChange != nil {
		d.cfg.OnStateChange(peer, PeerDead)
	}
}

// onPong completes an outstanding probe, recording its round trip.
func (d *detector) onPong(peer, seq uint32) {
	d.mu.Lock()
	p, ok := d.peers[peer]
	if ok && p.pingSeq == seq && !p.pingAt.IsZero() {
		rtt := time.Since(p.pingAt)
		p.rttMicros = rtt.Microseconds()
		p.pingAt = time.Time{}
		d.stats.RTTMicrosSum.Add(uint64(rtt.Microseconds()))
		d.stats.RTTCount.Add(1)
	}
	d.mu.Unlock()
	d.markHeard(peer)
}

// snapshot returns every peer's health.
func (d *detector) snapshot() map[uint32]PeerHealth {
	now := time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint32]PeerHealth, len(d.peers))
	for id, p := range d.peers {
		out[id] = PeerHealth{
			State:     p.state,
			LastHeard: now.Sub(p.lastHeard),
			RTTMicros: p.rttMicros,
		}
	}
	return out
}

// allDead reports whether the endpoint has neighbors and every one of
// them is dead — the "isolated node" condition health checks act on.
func (d *detector) allDead() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.peers) == 0 {
		return false
	}
	for _, p := range d.peers {
		if p.state != PeerDead {
			return false
		}
	}
	return true
}

// close stops the detector goroutine.
func (d *detector) close() {
	close(d.stop)
	<-d.done
}
