package transport

import (
	"sync"
	"time"

	"diffusion/internal/message"
)

// This file implements the UDP endpoint's reliable-unicast option:
// per-neighbor ack/retransmit for unicast sends. Broadcast stays
// fire-and-forget — flooding is already redundant by design — but the
// paper's reinforced paths concentrate all high-rate data onto single
// unicast hops, so one lossy link multiplies into end-to-end loss the
// soft-state machinery is too slow to repair. Reliable unicast closes
// that gap hop by hop:
//
//   - every reliable frame carries a per-neighbor sequence number and is
//     retransmitted on an ack timeout with capped exponential backoff,
//     up to MaxRetries attempts;
//   - the per-neighbor send queue is bounded. When it overflows, the
//     shedding policy mirrors internal/congestion's semantics: interest
//     and exploratory traffic (the soft state that will be re-originated
//     anyway) is dropped before reinforced data and reinforcements;
//   - the receive side suppresses duplicates created by retransmission
//     with a per-neighbor sliding window keyed on the sender's boot
//     nonce, so a restarted neighbor's fresh sequence space is not
//     mistaken for replays.

// ReliableConfig parameterizes reliable unicast. Zero fields take
// defaults.
type ReliableConfig struct {
	// RTO is the initial ack timeout before the first retransmission
	// (default 200ms).
	RTO time.Duration
	// MaxRTO caps the exponential retransmit backoff (default 3s).
	MaxRTO time.Duration
	// MaxRetries is how many retransmissions are attempted before a frame
	// is abandoned (default 5; the failure detector will usually declare
	// the peer dead around the same time).
	MaxRetries int
	// Window is the maximum number of unacked frames in flight per
	// neighbor (default 16).
	Window int
	// QueueLimit bounds in-flight plus queued frames per neighbor
	// (default 64); beyond it the shedding policy applies.
	QueueLimit int
}

// fill applies defaults.
func (c *ReliableConfig) fill() {
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 3 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 5
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.QueueLimit < c.Window {
		c.QueueLimit = 64
		if c.QueueLimit < c.Window {
			c.QueueLimit = 4 * c.Window
		}
	}
}

// sheddable reports whether a queued payload may be dropped under
// overload: interests and exploratory data are periodically re-originated
// soft state, so losing one costs a refresh interval, not data. The class
// is the payload's leading byte (message.Marshal's layout).
func sheddable(payload []byte) bool {
	cls, ok := message.PeekClass(payload)
	if !ok {
		return true
	}
	switch cls {
	case message.Interest, message.ExploratoryData:
		return true
	}
	return false
}

// relFrame is one queued or in-flight reliable payload.
type relFrame struct {
	seq     uint32
	payload []byte
	tries   int // transmission attempts so far
	timer   *time.Timer
}

// relPeer is the sender-side state toward one neighbor.
type relPeer struct {
	nextSeq  uint32
	inflight map[uint32]*relFrame
	queue    []*relFrame
	// retransmits counts this neighbor's ack-timeout resends, for the
	// per-peer metrics series (Stats.Retransmits keeps the endpoint sum).
	retransmits uint64
}

// reliable is the sender half of reliable unicast for one endpoint.
type reliable struct {
	cfg   ReliableConfig
	stats *Stats
	write func(peer uint32, kind uint8, seq uint32, payload []byte)

	mu     sync.Mutex
	peers  map[uint32]*relPeer
	closed bool
}

func newReliable(cfg ReliableConfig, stats *Stats,
	write func(peer uint32, kind uint8, seq uint32, payload []byte)) *reliable {
	cfg.fill()
	return &reliable{cfg: cfg, stats: stats, write: write, peers: map[uint32]*relPeer{}}
}

// send enqueues payload toward peer, applying the overload-shedding
// policy, and pumps the window. Shedding is not an error: the link-layer
// contract is best effort, and the diffusion layer's own refresh
// machinery recovers what overload drops.
func (r *reliable) send(peer uint32, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	p, ok := r.peers[peer]
	if !ok {
		p = &relPeer{inflight: map[uint32]*relFrame{}}
		r.peers[peer] = p
	}
	if len(p.inflight)+len(p.queue) >= r.cfg.QueueLimit {
		if !r.shedLocked(p, buf) {
			r.mu.Unlock()
			return // the new frame itself was shed
		}
	}
	p.nextSeq++
	p.queue = append(p.queue, &relFrame{seq: p.nextSeq, payload: buf})
	sends := r.pumpLocked(peer, p)
	r.mu.Unlock()
	r.flush(peer, sends)
}

// shedLocked makes room in a full queue. It prefers dropping a queued
// sheddable frame (oldest first); failing that, an incoming sheddable
// frame; failing that, the oldest queued frame of any class. In-flight
// frames are never shed — they are already on the wire. Returns false
// when the incoming frame is the one dropped.
func (r *reliable) shedLocked(p *relPeer, incoming []byte) bool {
	for i, f := range p.queue {
		if sheddable(f.payload) {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			r.stats.QueueDrops.Add(1)
			return true
		}
	}
	if sheddable(incoming) || len(p.queue) == 0 {
		r.stats.QueueDrops.Add(1)
		return false
	}
	p.queue = p.queue[1:]
	r.stats.QueueDrops.Add(1)
	return true
}

// pumpLocked moves queued frames into the in-flight window, arming their
// retransmit timers, and returns the frames to put on the wire (written
// by the caller outside the lock).
func (r *reliable) pumpLocked(peer uint32, p *relPeer) []*relFrame {
	var out []*relFrame
	for len(p.inflight) < r.cfg.Window && len(p.queue) > 0 {
		f := p.queue[0]
		p.queue = p.queue[1:]
		p.inflight[f.seq] = f
		f.tries = 1
		r.armLocked(peer, f)
		out = append(out, f)
	}
	return out
}

// armLocked schedules frame f's next ack timeout: RTO doubled per attempt,
// capped at MaxRTO.
func (r *reliable) armLocked(peer uint32, f *relFrame) {
	rto := r.cfg.RTO << (f.tries - 1)
	if rto > r.cfg.MaxRTO || rto <= 0 {
		rto = r.cfg.MaxRTO
	}
	seq := f.seq
	f.timer = time.AfterFunc(rto, func() { r.onTimeout(peer, seq) })
}

// flush writes frames to the wire.
func (r *reliable) flush(peer uint32, frames []*relFrame) {
	for _, f := range frames {
		r.write(peer, kindReliable, f.seq, f.payload)
	}
}

// onTimeout retransmits an unacked frame or abandons it after MaxRetries.
func (r *reliable) onTimeout(peer, seq uint32) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	p, ok := r.peers[peer]
	if !ok {
		r.mu.Unlock()
		return
	}
	f, ok := p.inflight[seq]
	if !ok {
		r.mu.Unlock()
		return
	}
	if f.tries > r.cfg.MaxRetries {
		delete(p.inflight, seq)
		r.stats.ReliableDrops.Add(1)
		sends := r.pumpLocked(peer, p)
		r.mu.Unlock()
		r.flush(peer, sends)
		return
	}
	f.tries++
	p.retransmits++
	r.stats.Retransmits.Add(1)
	r.armLocked(peer, f)
	r.mu.Unlock()
	r.write(peer, kindReliable, seq, f.payload)
}

// onAck completes an in-flight frame and pumps the window.
func (r *reliable) onAck(peer, seq uint32) {
	r.stats.AcksRecv.Add(1)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	p, ok := r.peers[peer]
	if !ok {
		r.mu.Unlock()
		return
	}
	f, ok := p.inflight[seq]
	if !ok {
		r.mu.Unlock()
		return
	}
	f.timer.Stop()
	delete(p.inflight, seq)
	sends := r.pumpLocked(peer, p)
	r.mu.Unlock()
	r.flush(peer, sends)
}

// perPeerRetransmits snapshots every neighbor's retransmission count.
func (r *reliable) perPeerRetransmits() map[uint32]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[uint32]uint64, len(r.peers))
	for id, p := range r.peers {
		out[id] = p.retransmits
	}
	return out
}

// pending returns in-flight plus queued frames toward peer (tests).
func (r *reliable) pending(peer uint32) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[peer]
	if !ok {
		return 0
	}
	return len(p.inflight) + len(p.queue)
}

// dropPeer discards all sender-side state toward one peer: in-flight
// timers stopped, queue dropped, sequence space forgotten. Discovery calls
// it when a peer is removed or re-announces under a new boot nonce — the
// restarted peer's receive windows reset with its boot, so retransmitting
// old frames at it would only produce spurious deliveries.
func (r *reliable) dropPeer(peer uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.peers[peer]
	if !ok {
		return
	}
	for _, f := range p.inflight {
		f.timer.Stop()
	}
	delete(r.peers, peer)
}

// close stops every retransmit timer and drops all queues.
func (r *reliable) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for _, p := range r.peers {
		for _, f := range p.inflight {
			f.timer.Stop()
		}
		p.inflight = map[uint32]*relFrame{}
		p.queue = nil
	}
}

// dupWindow is the receive-side duplicate-suppression state toward one
// neighbor: a 64-entry sliding bitmap below the highest sequence seen,
// keyed on the sender's boot nonce. It is owned by the endpoint's single
// reader goroutine, so it needs no locking.
type dupWindow struct {
	boot uint32
	max  uint32
	mask uint64 // bit k set ⇒ seq (max-1-k) was seen
	init bool
}

// fresh reports whether (boot, seq) is a first sighting, updating the
// window. A changed boot nonce resets the window: the neighbor restarted
// and its sequence space started over.
func (w *dupWindow) fresh(boot, seq uint32) bool {
	if !w.init || w.boot != boot {
		w.init = true
		w.boot = boot
		w.max = seq
		w.mask = 0
		return true
	}
	switch {
	case seq == w.max:
		return false
	case seq > w.max:
		shift := uint64(seq - w.max)
		if shift >= 64 {
			w.mask = 0
		} else {
			w.mask = w.mask<<shift | 1<<(shift-1)
		}
		w.max = seq
		return true
	default:
		d := uint64(w.max - seq)
		if d > 64 {
			// Older than the window: a stale replay beyond any plausible
			// retransmission horizon. Count it as a duplicate.
			return false
		}
		bit := uint64(1) << (d - 1)
		if w.mask&bit != 0 {
			return false
		}
		w.mask |= bit
		return true
	}
}
